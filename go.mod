module github.com/graphpart/graphpart

go 1.22
