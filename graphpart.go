// Package graphpart is a graph edge partitioning library built around TLP,
// the Two-stage Local Partitioning algorithm of Ji, Bu, Li and Wu ("Local
// Graph Edge Partitioning with a Two-Stage Heuristic Method", ICDCS 2019),
// together with the offline and streaming baselines the paper evaluates
// against (a METIS-style multilevel partitioner, LDG, DBH, Random, plus
// PowerGraph-Greedy, HDRF and FENNEL), quality metrics (replication factor,
// balance, per-partition modularity), synthetic dataset generators, and a
// PowerGraph-style gather-apply-scatter engine that makes the cost of
// replication observable.
//
// # Quick start
//
//	g, _, err := graphpart.LoadEdgeList("graph.txt")
//	if err != nil { ... }
//	tlp := graphpart.NewTLP(graphpart.TLPOptions{Seed: 42})
//	assignment, err := tlp.Partition(g, 10)
//	if err != nil { ... }
//	m, err := graphpart.ComputeMetrics(g, assignment)
//	fmt.Println(m.ReplicationFactor)
//
// The exported identifiers alias the internal implementation packages, so
// the full method sets of Graph, Assignment, Metrics etc. are available
// through this package without importing anything else.
package graphpart

import (
	"io"

	"github.com/graphpart/graphpart/internal/core"
	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/refine"
	"github.com/graphpart/graphpart/internal/wire"
)

// Graph is an immutable simple undirected graph in CSR form.
type Graph = graph.Graph

// Vertex identifies a vertex as a dense index in [0, NumVertices).
type Vertex = graph.Vertex

// EdgeID identifies an undirected edge as a dense index in [0, NumEdges).
type EdgeID = graph.EdgeID

// Edge is an undirected edge with canonical orientation U < V.
type Edge = graph.Edge

// Builder accumulates edges and produces an immutable Graph.
type Builder = graph.Builder

// IDMap maps between original and dense vertex ids for parsed edge lists.
type IDMap = graph.IDMap

// GraphStats summarises the structure of a graph.
type GraphStats = graph.Stats

// NewBuilder returns a builder for a graph with a fixed vertex count.
func NewBuilder(numVertices int) *Builder { return graph.NewBuilder(numVertices) }

// NewGrowingBuilder returns a builder whose vertex count grows with input.
func NewGrowingBuilder() *Builder { return graph.NewGrowingBuilder() }

// FromEdges builds a graph from an edge list, rejecting self-loops and
// duplicates.
func FromEdges(numVertices int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(numVertices, edges)
}

// LoadEdgeList reads a SNAP-style edge list file; ".gz" files are
// transparently decompressed.
func LoadEdgeList(path string) (*Graph, *IDMap, error) {
	return graph.LoadEdgeListFile(path)
}

// ReadEdgeList parses a SNAP-style edge list from a reader.
func ReadEdgeList(r io.Reader) (*Graph, *IDMap, error) { return graph.ReadEdgeList(r) }

// SaveEdgeList writes a graph as an edge list file; ".gz" compresses.
func SaveEdgeList(path string, g *Graph) error { return graph.SaveEdgeListFile(path, g) }

// ComputeGraphStats calculates structural statistics for g.
func ComputeGraphStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// Assignment maps every edge of a graph to one of P partitions.
type Assignment = partition.Assignment

// Metrics summarises the quality of an edge partitioning.
type Metrics = partition.Metrics

// Partitioner is the contract all edge partitioners implement.
type Partitioner = partition.Partitioner

// ValidateOptions tunes structural validation of an assignment.
type ValidateOptions = partition.ValidateOptions

// Capacity returns the per-partition edge bound C = ceil(m/p).
func Capacity(numEdges, p int) int { return partition.Capacity(numEdges, p) }

// ComputeMetrics calculates the full quality metrics of a complete
// assignment.
func ComputeMetrics(g *Graph, a *Assignment) (Metrics, error) { return partition.Compute(g, a) }

// ReplicationFactor computes only RF (Definition 4 of the paper).
func ReplicationFactor(g *Graph, a *Assignment) (float64, error) {
	return partition.ReplicationFactor(g, a)
}

// Validate checks that an assignment is a valid balanced p-edge
// partitioning.
func Validate(g *Graph, a *Assignment, opts ValidateOptions) error {
	return partition.Validate(g, a, opts)
}

// TLPOptions configures the TLP partitioner; see the core package docs for
// field semantics. The zero value uses the paper's defaults.
type TLPOptions = core.Options

// TLPStats reports per-stage selection statistics of a TLP run (Table VI).
type TLPStats = core.Stats

// TLP is the paper's two-stage local partitioner.
type TLP = core.TLP

// TLPR is the fixed-ratio ablation variant (Section IV.C).
type TLPR = core.TLPR

// NewTLP returns a TLP partitioner; invalid options panic (use core.New for
// the error-returning constructor semantics via NewTLPChecked).
func NewTLP(opts TLPOptions) *TLP { return core.MustNew(opts) }

// NewTLPChecked is NewTLP returning an error instead of panicking.
func NewTLPChecked(opts TLPOptions) (*TLP, error) { return core.New(opts) }

// NewTLPR returns the TLP_R variant with stage ratio r in [0, 1].
func NewTLPR(r float64, opts TLPOptions) (*TLPR, error) { return core.NewTLPR(r, opts) }

// Dataset describes one synthetic analogue of the paper's Table III.
type Dataset = gen.Dataset

// Datasets returns the nine Table III analogues G1..G9.
func Datasets() []Dataset { return gen.Datasets() }

// DatasetByNotation returns a dataset by its paper notation (e.g. "G3").
func DatasetByNotation(notation string) (Dataset, error) {
	return gen.DatasetByNotation(notation)
}

// Engine executes gather-apply-scatter vertex programs over an
// edge-partitioned graph, counting replica-synchronisation messages.
type Engine = engine.Engine

// EngineStats aggregates engine execution counters.
type EngineStats = engine.Stats

// Program is a GAS vertex program.
type Program = engine.Program

// NewEngine builds an engine from a complete edge partitioning.
func NewEngine(g *Graph, a *Assignment) (*Engine, error) { return engine.New(g, a) }

// NewPageRank returns the PageRank vertex program for an n-vertex graph.
func NewPageRank(n int, damping, tolerance float64) Program {
	return engine.NewPageRank(n, damping, tolerance)
}

// NewSSSP returns a single-source shortest paths program.
func NewSSSP(source Vertex) Program { return &engine.SSSP{Source: source} }

// NewComponents returns a connected-components labelling program.
func NewComponents() Program { return &engine.Components{} }

// Transport moves typed messages between the engine's share-nothing
// machines; it is the seam where a network transport lands.
type Transport = engine.Transport

// MemTransport is the in-process Transport implementation.
type MemTransport = engine.MemTransport

// NewMemTransport returns an in-process transport for p machines.
func NewMemTransport(p int) *MemTransport { return engine.NewMemTransport(p) }

// TCPTransport is the Transport implementation that moves engine messages
// over real TCP sockets using the deterministic wire codec. Runs over it
// are bit-identical to MemTransport and RunSequential.
type TCPTransport = wire.TCPTransport

// NewTCPTransport builds a loopback TCP mesh hosting all p machines in this
// process. The caller must Close it after the run.
func NewTCPTransport(p int) (*TCPTransport, error) { return wire.NewTCPTransport(p) }

// RunCluster executes a vertex program with one OS process per machine,
// communicating over TCP. The returned values and stats are bit-identical
// to RunSequential and to an in-process engine run. The current binary must
// call MaybeWorker early in main for re-exec workers to take over.
func RunCluster(g *Graph, a *Assignment, prog Program, maxSupersteps int) ([]float64, EngineStats, error) {
	return wire.RunCluster(g, a, prog, maxSupersteps, nil)
}

// MaybeWorker checks whether this process was spawned as a RunCluster
// machine worker; if so it runs the worker to completion and returns true,
// and the caller must exit immediately without doing anything else.
func MaybeWorker() bool { return wire.MaybeWorker() }

// ClusterTelemetry is the merged observability of one traced cluster run:
// per-worker telemetry snapshots keyed by the run's trace id, exportable as
// a single multi-lane Chrome trace with barrier-skew instants.
type ClusterTelemetry = wire.ClusterTelemetry

// RunClusterTraced is RunCluster plus cluster-wide telemetry: when
// telemetry is enabled, every worker process records spans and metrics and
// ships a snapshot back at drain. Record-only — values and stats stay
// bit-identical to RunCluster and RunSequential. Returns nil telemetry when
// telemetry is disabled.
func RunClusterTraced(g *Graph, a *Assignment, prog Program, maxSupersteps int) ([]float64, EngineStats, *ClusterTelemetry, error) {
	return wire.RunClusterTraced(g, a, prog, maxSupersteps, nil)
}

// TrafficMatrix is the per-link p x p traffic of an engine run.
type TrafficMatrix = engine.TrafficMatrix

// TrafficTotals is cumulative transport traffic by message kind.
type TrafficTotals = engine.Totals

// RunSequential executes a vertex program with a plain sequential loop —
// the single-machine oracle the share-nothing runtime is bit-identical to.
func RunSequential(g *Graph, prog Program, maxSupersteps int) ([]float64, int, error) {
	return engine.RunSequential(g, prog, maxSupersteps)
}

// RefineOptions tunes the move/swap local-search refinement.
type RefineOptions = refine.Options

// RefineStats reports what a refinement run did.
type RefineStats = refine.Stats

// Refine post-processes a finished edge partitioning in place with move/swap
// local search: per-vertex replica-reduction moves under the capacity bound
// plus load-preserving boundary-edge swaps, run to convergence or a budget.
// It never increases the replication factor, and its output is bit-identical
// for any worker count.
func Refine(g *Graph, a *Assignment, opts RefineOptions) (RefineStats, error) {
	return refine.Run(g, a, opts)
}

// PartitionState is the mutable incremental view over a complete assignment
// (per-vertex replica sets, boundary-edge index, O(1) RF deltas) that the
// refiner searches over; exported for callers building their own local
// optimisation or incremental maintenance on top.
type PartitionState = partition.State

// NewPartitionState builds the incremental view of a complete assignment in
// O(n + m).
func NewPartitionState(g *Graph, a *Assignment) (*PartitionState, error) {
	return partition.NewState(g, a)
}

// Report is the detailed per-partition quality breakdown.
type Report = partition.Report

// PartitionDetail describes one partition inside a Report.
type PartitionDetail = partition.PartitionDetail

// BuildReport computes the detailed report for a complete assignment.
func BuildReport(g *Graph, a *Assignment) (Report, error) {
	return partition.BuildReport(g, a)
}
