// Quickstart: generate a graph, partition it with TLP, inspect the quality
// metrics, and compare against random edge placement.
package main

import (
	"fmt"
	"log"

	graphpart "github.com/graphpart/graphpart"
)

func main() {
	// Use the email-Eu-core analogue (G1): 1005 vertices, 25571 edges,
	// strong community structure.
	dataset, err := graphpart.DatasetByNotation("G1")
	if err != nil {
		log.Fatal(err)
	}
	g := dataset.Generate(42)
	fmt.Println("graph:", graphpart.ComputeGraphStats(g))

	const p = 10
	tlp := graphpart.NewTLP(graphpart.TLPOptions{Seed: 42})
	assignment, err := tlp.Partition(g, p)
	if err != nil {
		log.Fatal(err)
	}
	if err := graphpart.Validate(g, assignment, graphpart.ValidateOptions{}); err != nil {
		log.Fatal(err)
	}
	m, err := graphpart.ComputeMetrics(g, assignment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TLP:    RF=%.3f balance=%.3f spanned=%d\n",
		m.ReplicationFactor, m.Balance, m.SpannedVertices)

	random := graphpart.NewRandom(42)
	ra, err := random.Partition(g, p)
	if err != nil {
		log.Fatal(err)
	}
	rm, err := graphpart.ComputeMetrics(g, ra)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Random: RF=%.3f balance=%.3f spanned=%d\n",
		rm.ReplicationFactor, rm.Balance, rm.SpannedVertices)
	fmt.Printf("TLP cuts replication by %.1fx\n", rm.ReplicationFactor/m.ReplicationFactor)
}
