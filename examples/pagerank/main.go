// PageRank on the GAS engine: demonstrates the paper's motivation — a lower
// replication factor means less master/mirror synchronisation traffic for
// the same computation. The same PageRank runs over a TLP partitioning and
// a random partitioning of the same graph; results are identical, message
// counts are not.
package main

import (
	"fmt"
	"log"
	"math"

	graphpart "github.com/graphpart/graphpart"
)

func main() {
	dataset, err := graphpart.DatasetByNotation("G2")
	if err != nil {
		log.Fatal(err)
	}
	g := dataset.Generate(7)
	fmt.Println("graph:", graphpart.ComputeGraphStats(g))
	const p = 10
	const supersteps = 20

	type contender struct {
		name string
		pt   graphpart.Partitioner
	}
	var ranks [][]float64
	for _, c := range []contender{
		{"TLP", graphpart.NewTLP(graphpart.TLPOptions{Seed: 7})},
		{"Random", graphpart.NewRandom(7)},
	} {
		a, err := c.pt.Partition(g, p)
		if err != nil {
			log.Fatal(err)
		}
		rf, err := graphpart.ReplicationFactor(g, a)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := graphpart.NewEngine(g, a)
		if err != nil {
			log.Fatal(err)
		}
		values, stats, err := eng.Run(graphpart.NewPageRank(g.NumVertices(), 0.85, 0), supersteps)
		if err != nil {
			log.Fatal(err)
		}
		ranks = append(ranks, values)
		fmt.Printf("%-7s RF=%.3f  supersteps=%d  gatherMsgs=%d  applyMsgs=%d  total=%d  wire=%.1f MB\n",
			c.name, rf, stats.Supersteps, stats.GatherMessages, stats.ApplyMessages,
			stats.Messages(), float64(stats.Bytes())/1e6)
	}

	// The partitioning must not change the computed ranks: the runtime folds
	// gather contributions in canonical slot order, so different
	// partitionings produce bit-identical values, not merely close ones.
	maxDiff := 0.0
	for v := range ranks[0] {
		if d := math.Abs(ranks[0][v] - ranks[1][v]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max rank difference between partitionings: %g (bit-identical computation)\n", maxDiff)
}
