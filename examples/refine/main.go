// Refine: post-process partitionings with the move/swap local search and
// show what the recovered replication factor buys at the system level —
// the same PageRank, bit-identical ranks, fewer messages and bytes on the
// wire (DESIGN.md §15).
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	graphpart "github.com/graphpart/graphpart"
)

const (
	p          = 10
	supersteps = 10
)

// runPageRank executes bounded PageRank on the share-nothing engine over
// the given assignment and returns the ranks with the traffic stats.
func runPageRank(g *graphpart.Graph, a *graphpart.Assignment) ([]float64, graphpart.EngineStats) {
	e, err := graphpart.NewEngine(g, a)
	if err != nil {
		log.Fatal(err)
	}
	ranks, stats, err := e.Run(graphpart.NewPageRank(g.NumVertices(), 0.85, 1e-9), supersteps)
	if err != nil {
		log.Fatal(err)
	}
	return ranks, stats
}

func main() {
	d, err := graphpart.DatasetByNotation("G1")
	if err != nil {
		log.Fatal(err)
	}
	g := d.Generate(7)
	fmt.Println("graph:", graphpart.ComputeGraphStats(g))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "partitioner\tRF\trefined RF\tmoves\tswaps\tmsgs\trefined msgs\tbytes saved")
	for _, c := range []struct {
		name string
		pt   graphpart.Partitioner
	}{
		{"TLP", graphpart.NewTLP(graphpart.TLPOptions{Seed: 7})},
		{"METIS", graphpart.NewMETIS(graphpart.METISConfig{Seed: 7})},
		{"Random", graphpart.NewRandom(7)},
	} {
		base, err := c.pt.Partition(g, p)
		if err != nil {
			log.Fatal(err)
		}
		refined := base.Clone()
		stats, err := graphpart.Refine(g, refined, graphpart.RefineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		ranksBefore, trafficBefore := runPageRank(g, base)
		ranksAfter, trafficAfter := runPageRank(g, refined)
		for v := range ranksBefore {
			if math.Abs(ranksBefore[v]-ranksAfter[v]) > 1e-12 {
				log.Fatalf("%s: rank %d diverged after refinement", c.name, v)
			}
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%d\t%d\t%d\t%d\t%d\n",
			c.name, stats.RFBefore, stats.RFAfter, stats.Moves, stats.Swaps,
			trafficBefore.Messages(), trafficAfter.Messages(),
			trafficBefore.Bytes()-trafficAfter.Bytes())
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrefinement is nearly free where TLP already consolidated, and claws")
	fmt.Println("back a large slice of the streaming baselines' traffic — with ranks")
	fmt.Println("that stay exactly identical, because results never depend on the cut.")
}
