// Cluster: run PageRank on a simulated BSP cluster (one node per partition,
// messages serialized to a 12-byte wire format, delivered with Pregel
// semantics) and show how the partitioning quality translates into bytes on
// the network — the end-to-end version of the paper's cost argument.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	graphpart "github.com/graphpart/graphpart"
)

func main() {
	d, err := graphpart.DatasetByNotation("G1")
	if err != nil {
		log.Fatal(err)
	}
	g := d.Generate(3)
	fmt.Println("graph:", graphpart.ComputeGraphStats(g))
	const p = 10
	const iterations = 10

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "partitioner\tRF\tnet msgs\tnet bytes\tbytes/iter")
	for _, c := range []struct {
		name string
		pt   graphpart.Partitioner
	}{
		{"TLP", graphpart.NewTLP(graphpart.TLPOptions{Seed: 3})},
		{"METIS", graphpart.NewMETIS(graphpart.METISConfig{Seed: 3})},
		{"DBH", graphpart.NewDBH(3)},
		{"Random", graphpart.NewRandom(3)},
	} {
		a, err := c.pt.Partition(g, p)
		if err != nil {
			log.Fatal(err)
		}
		rf, err := graphpart.ReplicationFactor(g, a)
		if err != nil {
			log.Fatal(err)
		}
		_, stats, err := graphpart.RunDistributedPageRank(g, a, 0.85, iterations)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%d\t%d\n", c.name, rf,
			stats.NetworkMessages, stats.NetworkBytes, stats.NetworkBytes/int64(iterations))
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnetwork bytes scale with (replicas - masters): the replication")
	fmt.Println("factor is the communication bill of the partitioning.")
}
