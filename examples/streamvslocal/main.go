// Streaming vs local partitioning: sweeps the partition count and contrasts
// the quality of the streaming baselines (LDG, DBH) against local TLP and
// offline METIS — the trade-off that motivates the paper: offline needs the
// whole graph, streaming needs all received data, local needs only one
// partition plus its frontier in memory.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	graphpart "github.com/graphpart/graphpart"
)

func main() {
	d, err := graphpart.DatasetByNotation("G2")
	if err != nil {
		log.Fatal(err)
	}
	g := d.Generate(11)
	fmt.Println("graph:", graphpart.ComputeGraphStats(g))
	fmt.Println()
	fmt.Println("memory model (what each class must hold during partitioning):")
	fmt.Println("  offline  (METIS): the whole graph, every level of the hierarchy")
	fmt.Println("  streaming (LDG) : all placements made so far (grows with the stream)")
	fmt.Println("  local     (TLP) : one partition + its frontier (O(L*d))")
	fmt.Println()

	contenders := []struct {
		name string
		pt   graphpart.Partitioner
	}{
		{"TLP (local)", graphpart.NewTLP(graphpart.TLPOptions{Seed: 11})},
		{"METIS (offline)", graphpart.NewMETIS(graphpart.METISConfig{Seed: 11})},
		{"LDG (streaming)", graphpart.NewLDG(11, graphpart.OrderShuffled)},
		{"DBH (streaming)", graphpart.NewDBH(11)},
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "p\tTLP (local)\tMETIS (offline)\tLDG (streaming)\tDBH (streaming)")
	for _, p := range []int{5, 10, 20, 40} {
		row := fmt.Sprintf("%d", p)
		for _, c := range contenders {
			a, err := c.pt.Partition(g, p)
			if err != nil {
				log.Fatal(err)
			}
			rf, err := graphpart.ReplicationFactor(g, a)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("\t%.3f", rf)
		}
		fmt.Fprintln(tw, row)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlower RF is better; local TLP tracks offline quality while")
	fmt.Println("holding only a single partition in memory.")
}
