// Compare every partitioner in the library on one graph, reporting
// replication factor, balance and runtime — a miniature of the paper's
// Fig. 8 extended with the Greedy/HDRF/FENNEL partitioners.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	graphpart "github.com/graphpart/graphpart"
)

func main() {
	dataset := "G3"
	if len(os.Args) > 1 {
		dataset = os.Args[1]
	}
	d, err := graphpart.DatasetByNotation(dataset)
	if err != nil {
		log.Fatal(err)
	}
	g := d.Generate(42)
	fmt.Println("graph:", graphpart.ComputeGraphStats(g))
	const p = 10

	names := make([]string, 0)
	all := graphpart.AllPartitioners(42)
	for name := range all {
		names = append(names, name) //lint:ignore GL001 sorted on the next line
	}
	sort.Strings(names)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tRF\tbalance\ttime")
	type row struct {
		name string
		rf   float64
	}
	var rows []row
	for _, name := range names {
		pt := all[name]
		watch := graphpart.StartWatch()
		a, err := pt.Partition(g, p)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := watch.Elapsed()
		m, err := graphpart.ComputeMetrics(g, a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%v\n", pt.Name(), m.ReplicationFactor, m.Balance,
			elapsed.Round(time.Millisecond))
		rows = append(rows, row{pt.Name(), m.ReplicationFactor})
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].rf < rows[j].rf })
	fmt.Printf("\nbest RF: %s (%.3f), worst: %s (%.3f)\n",
		rows[0].name, rows[0].rf, rows[len(rows)-1].name, rows[len(rows)-1].rf)
}
