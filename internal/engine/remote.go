package engine

import (
	"fmt"

	"github.com/graphpart/graphpart/internal/graph"
)

// NumPhases is the number of globally barriered phases in one superstep.
// External drivers (the wire package's process-per-machine cluster) execute
// phases 0..NumPhases-1 in order on every machine, with a transport Flip
// between consecutive phases — the same schedule Run uses in process.
const NumPhases = numPhases

// P returns the number of machines (partitions) the engine was built for.
func (e *Engine) P() int { return e.p }

// MasterValue is one mastered vertex's final value, as reported by a
// MachineHost at the end of an out-of-process run.
type MasterValue struct {
	// Vertex is the global vertex id.
	Vertex graph.Vertex
	// Value is the master replica's value.
	Value float64
}

// MachineHost exposes one machine's phase execution so a single partition
// can be driven from outside Run — the seam the process-per-machine TCP
// cluster stands on. A worker process builds the full Engine (machine state
// derives deterministically from the graph and assignment), takes the Host
// for its own machine id, and steps it phase by phase under an external
// coordinator; the other machines' state sits idle in that process.
//
// The determinism contract is unchanged: phases must run in order with a
// transport Flip between them, and every machine must be on the same phase
// between two barriers. MachineHost does not add synchronisation of its
// own — the external coordinator owns the barrier, exactly as Run's
// command/done handshake does in process.
type MachineHost struct {
	e *Engine
	m *machine
}

// Host returns the phase driver for machine k.
func (e *Engine) Host(k int) (*MachineHost, error) {
	if k < 0 || k >= e.p {
		return nil, fmt.Errorf("engine: no machine %d (p=%d)", k, e.p)
	}
	return &MachineHost{e: e, m: e.machines[k]}, nil
}

// Reset prepares the hosted machine for a fresh run of prog over tr, and
// returns its initial active-master count.
func (h *MachineHost) Reset(prog Program, tr Transport) (activeMasters int, err error) {
	if prog == nil {
		return 0, fmt.Errorf("engine: nil program")
	}
	if tr == nil {
		return 0, fmt.Errorf("engine: nil transport")
	}
	h.m.reset(prog, tr)
	mHostResets.Add(1)
	return h.m.activeMasters, nil
}

// Step executes one phase (0..NumPhases-1) on the hosted machine. The
// caller must Flip the transport after every machine has stepped the phase.
func (h *MachineHost) Step(phase int) error {
	if phase < 0 || phase >= numPhases {
		return fmt.Errorf("engine: phase %d out of range [0,%d)", phase, numPhases)
	}
	h.m.step(phase)
	mHostSteps.Add(1)
	return nil
}

// ActiveMasters returns the machine's active mastered-vertex count as of the
// last finalize phase; the coordinator sums it across machines for the
// termination check.
func (h *MachineHost) ActiveMasters() int { return h.m.activeMasters }

// Replicas returns the number of vertex replicas the machine holds.
func (h *MachineHost) Replicas() int { return len(h.m.verts) }

// Masters returns the number of vertices the machine masters.
func (h *MachineHost) Masters() int {
	n := 0
	for i := range h.m.verts {
		if h.m.isMaster[i] {
			n++
		}
	}
	return n
}

// MasterValues returns the final value of every vertex this machine
// masters. Call it only between supersteps (or after the run); values are
// read from machine state the coordinator barrier must have quiesced.
func (h *MachineHost) MasterValues() []MasterValue {
	out := make([]MasterValue, 0, len(h.m.verts))
	for i, v := range h.m.verts {
		if h.m.isMaster[i] {
			out = append(out, MasterValue{Vertex: v, Value: h.m.value[i]})
		}
	}
	return out
}
