// Package engine is a PowerGraph-style gather-apply-scatter (GAS) runtime
// running on an edge-partitioned graph — the distributed-computation
// substrate that motivates the paper's problem: every spanned vertex has one
// master replica and mirrors in every other partition whose edge set touches
// it, and each superstep synchronises gather results from mirrors to the
// master and the applied value back from the master to the mirrors.
//
// The runtime is share-nothing: each partition is a machine (one goroutine)
// owning purely local state — local replica values, local adjacency, local
// activation — and the only way state crosses a partition boundary is a
// typed Message through a Transport. The transport accounts messages and
// wire bytes per link, making the cost of a high replication factor
// directly observable: with every vertex active, a superstep moves exactly
// 2 * (total replicas - masters) messages.
//
// Supersteps run in five globally barriered phases (gather, apply, scatter,
// activate, finalize), and masters fold gather contributions in canonical
// slot order, so a run is deterministic and bit-identical to RunSequential
// for any partitioning and any scheduling of the machine goroutines.
package engine

import (
	"fmt"
	"sort"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/obs"
	"github.com/graphpart/graphpart/internal/partition"
)

// Program is a vertex program in the gather-sum-apply-scatter model.
// Values are float64; programs needing richer state encode it.
type Program interface {
	// Name identifies the program.
	Name() string
	// Init returns vertex v's value before the first superstep.
	Init(v graph.Vertex, degree int) float64
	// Gather produces the contribution of edge (v, u) to v's
	// accumulator, given u's current value and degree.
	Gather(v, u graph.Vertex, uValue float64, uDegree int) float64
	// Sum combines two gather contributions (must be commutative and
	// associative).
	Sum(a, b float64) float64
	// Apply computes v's new value from the gathered total.
	Apply(v graph.Vertex, old, gathered float64, degree int) float64
	// Converged reports whether the change from old to new is small
	// enough to deactivate the vertex this round.
	Converged(old, new float64) bool
}

// Stats aggregates what the runtime did during a run.
type Stats struct {
	// Supersteps executed (may be fewer than requested on convergence).
	Supersteps int
	// GatherMessages counts mirror->master accumulator flushes.
	GatherMessages int64
	// ApplyMessages counts master->mirror value broadcasts.
	ApplyMessages int64
	// ActivateMessages counts activation notices and fan-outs.
	ActivateMessages int64
	// GatherBytes, ApplyBytes and ActivateBytes are the wire bytes of the
	// corresponding message kinds.
	GatherBytes   int64
	ApplyBytes    int64
	ActivateBytes int64
	// TotalReplicas is the number of (vertex, partition) placements.
	TotalReplicas int
	// Masters is the number of vertices with at least one edge.
	Masters int
	// PerStep is the traffic of each executed superstep.
	PerStep []Totals
	// Links is the cumulative per-link p x p traffic matrix.
	Links *TrafficMatrix
}

// Messages returns total synchronisation traffic across message kinds.
func (s Stats) Messages() int64 {
	return s.GatherMessages + s.ApplyMessages + s.ActivateMessages
}

// Bytes returns total wire bytes across message kinds.
func (s Stats) Bytes() int64 { return s.GatherBytes + s.ApplyBytes + s.ActivateBytes }

// Engine executes vertex programs over one partitioned graph. Build it once
// per assignment; Run may be called repeatedly but not concurrently —
// machines reuse their per-run buffers across runs.
type Engine struct {
	g *graph.Graph
	p int
	// machines[k] is partition k's share-nothing runtime.
	machines []*machine
	// masterOf[v] is the machine owning v's master replica (the partition
	// with the most incident edges, ties to the lowest id), or -1 for
	// isolated vertices.
	masterOf []int32
	stats    Stats
}

// New builds an engine from a complete edge partitioning of g. Capacity
// validation is skipped — the runtime executes whatever a partitioner
// produced, balanced or not — but the assignment must cover every edge.
func New(g *graph.Graph, a *partition.Assignment) (*Engine, error) {
	if err := partition.Validate(g, a, partition.ValidateOptions{SkipCapacity: true}); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	p := a.P()
	n := g.NumVertices()
	e := &Engine{
		g:        g,
		p:        p,
		machines: make([]*machine, p),
		masterOf: make([]int32, n),
	}
	for k := range e.machines {
		e.machines[k] = &machine{id: k}
	}
	// Single pass over the edge list builds every machine's local vertex
	// table and local adjacency (global ids plus local indices).
	lidx := make([]map[graph.Vertex]int32, p)
	for k := range lidx {
		lidx[k] = make(map[graph.Vertex]int32)
	}
	intern := func(k int, v graph.Vertex) int32 {
		if i, ok := lidx[k][v]; ok {
			return i
		}
		m := e.machines[k]
		i := int32(len(m.verts))
		lidx[k][v] = i
		m.verts = append(m.verts, v)
		m.adjNbr = append(m.adjNbr, nil)
		m.adjLocal = append(m.adjLocal, nil)
		return i
	}
	for id, ed := range g.Edges() {
		k, _ := a.PartitionOf(graph.EdgeID(id))
		iu := intern(k, ed.U)
		iv := intern(k, ed.V)
		m := e.machines[k]
		m.adjNbr[iu] = append(m.adjNbr[iu], ed.V)
		m.adjLocal[iu] = append(m.adjLocal[iu], iv)
		m.adjNbr[iv] = append(m.adjNbr[iv], ed.U)
		m.adjLocal[iv] = append(m.adjLocal[iv], iu)
	}
	// Master election from local incidence: the partition with the most
	// incident edges wins, ties to the lowest machine id.
	for v := range e.masterOf {
		e.masterOf[v] = -1
	}
	bestInc := make([]int32, n)
	for k, m := range e.machines {
		for i, v := range m.verts {
			if c := int32(len(m.adjNbr[i])); c > bestInc[v] {
				bestInc[v], e.masterOf[v] = c, int32(k)
			}
		}
	}
	// Per-machine static tables: sorted local adjacency, canonical slots,
	// degrees and master routing.
	for k, m := range e.machines {
		nl := len(m.verts)
		m.adjSlot = make([][]int32, nl)
		m.degree = make([]int32, nl)
		m.isMaster = make([]bool, nl)
		m.masterMachine = make([]int32, nl)
		m.masterLidx = make([]int32, nl)
		m.mirrorMachine = make([][]int32, nl)
		m.mirrorLidx = make([][]int32, nl)
		for i, v := range m.verts {
			sortAdjPair(m.adjNbr[i], m.adjLocal[i])
			nbrs := g.Neighbors(v)
			slots := make([]int32, len(m.adjNbr[i]))
			for j, u := range m.adjNbr[i] {
				slots[j] = int32(sort.Search(len(nbrs), func(x int) bool { return nbrs[x] >= u }))
			}
			m.adjSlot[i] = slots
			m.degree[i] = int32(len(nbrs))
			mk := e.masterOf[v]
			m.isMaster[i] = mk == int32(k)
			m.masterMachine[i] = mk
		}
	}
	// Cross-machine routing: each replica learns its master's local index,
	// and each master collects its mirrors sorted by machine id.
	for k, m := range e.machines {
		for i, v := range m.verts {
			mk := int(m.masterMachine[i])
			mi := lidx[mk][v]
			m.masterLidx[i] = mi
			if mk != k {
				mm := e.machines[mk]
				mm.mirrorMachine[mi] = append(mm.mirrorMachine[mi], int32(k))
				mm.mirrorLidx[mi] = append(mm.mirrorLidx[mi], int32(i))
			}
		}
	}
	// Per-run buffers: replica state, master accumulators and the reusable
	// messages (slots are static, so flushes are built once).
	for _, m := range e.machines {
		nl := len(m.verts)
		m.value = make([]float64, nl)
		m.active = make([]bool, nl)
		m.nextActive = make([]bool, nl)
		m.changed = make([]bool, nl)
		m.bcastActive = make([]bool, nl)
		m.acc = make([][]float64, nl)
		m.flush = make([]*GatherFlush, nl)
		m.bcast = make([][]*ApplyBroadcast, nl)
		m.notice = make([]*Activate, nl)
		m.fan = make([][]*Activate, nl)
		for i := range m.verts {
			if m.isMaster[i] {
				m.acc[i] = make([]float64, m.degree[i])
				bs := make([]*ApplyBroadcast, len(m.mirrorMachine[i]))
				fs := make([]*Activate, len(m.mirrorMachine[i]))
				for mi := range bs {
					bs[mi] = &ApplyBroadcast{MirrorLocal: m.mirrorLidx[i][mi]}
					fs[mi] = &Activate{Local: m.mirrorLidx[i][mi]}
				}
				m.bcast[i] = bs
				m.fan[i] = fs
			} else {
				m.flush[i] = &GatherFlush{
					MasterLocal: m.masterLidx[i],
					Slots:       m.adjSlot[i],
					Contribs:    make([]float64, len(m.adjSlot[i])),
				}
				m.notice[i] = &Activate{Local: m.masterLidx[i]}
			}
		}
		e.stats.TotalReplicas += nl
	}
	for v := 0; v < n; v++ {
		if e.masterOf[v] >= 0 {
			e.stats.Masters++
		}
	}
	return e, nil
}

// sortAdjPair sorts a local adjacency (global neighbour ids with parallel
// local indices) by global id. Neighbour ids within a vertex are unique, so
// the order is total.
func sortAdjPair(nbrs []graph.Vertex, locals []int32) {
	if len(nbrs) < 24 {
		for i := 1; i < len(nbrs); i++ {
			n, l := nbrs[i], locals[i]
			j := i - 1
			for j >= 0 && nbrs[j] > n {
				nbrs[j+1], locals[j+1] = nbrs[j], locals[j]
				j--
			}
			nbrs[j+1], locals[j+1] = n, l
		}
		return
	}
	sort.Sort(&adjPairSorter{nbrs, locals})
}

type adjPairSorter struct {
	nbrs   []graph.Vertex
	locals []int32
}

func (s *adjPairSorter) Len() int           { return len(s.nbrs) }
func (s *adjPairSorter) Less(i, j int) bool { return s.nbrs[i] < s.nbrs[j] }
func (s *adjPairSorter) Swap(i, j int) {
	s.nbrs[i], s.nbrs[j] = s.nbrs[j], s.nbrs[i]
	s.locals[i], s.locals[j] = s.locals[j], s.locals[i]
}

// ReplicationFactor returns total replicas over active vertices — the
// engine-visible RF (isolated vertices excluded, unlike the paper's
// Definition 4 which divides by |V|).
func (e *Engine) ReplicationFactor() float64 {
	if e.stats.Masters == 0 {
		return 0
	}
	return float64(e.stats.TotalReplicas) / float64(e.stats.Masters)
}

// Run executes prog for at most maxSupersteps over an in-process transport,
// returning the final vertex values and execution stats. Vertices all start
// active; a vertex deactivates when Converged, and reactivates if any
// neighbour changed in the previous superstep. Run stops early when every
// vertex is inactive. Run must not be called concurrently on one Engine.
func (e *Engine) Run(prog Program, maxSupersteps int) ([]float64, Stats, error) {
	return e.RunWith(prog, maxSupersteps, nil)
}

// RunWith is Run over a caller-supplied Transport (nil means a fresh
// MemTransport), whose cumulative traffic lands in the returned Stats.
func (e *Engine) RunWith(prog Program, maxSupersteps int, tr Transport) ([]float64, Stats, error) {
	if prog == nil {
		return nil, Stats{}, fmt.Errorf("engine: nil program")
	}
	if maxSupersteps < 1 {
		return nil, Stats{}, fmt.Errorf("engine: need at least one superstep")
	}
	if tr == nil {
		tr = NewMemTransport(e.p)
	}
	stats := e.stats
	activeMasters := 0
	for _, m := range e.machines {
		m.reset(prog, tr)
		activeMasters += m.activeMasters
	}
	// One long-lived goroutine per machine; the coordinator drives them
	// phase by phase over control channels. The command/done handshake is
	// the barrier — and the happens-before edge that makes the transport's
	// lock-free buffers safe.
	cmds := make([]chan int, e.p)
	done := make(chan struct{}, e.p)
	for k, m := range e.machines {
		cmds[k] = make(chan int)
		go m.loop(cmds[k], done)
	}
	defer func() {
		for _, c := range cmds {
			close(c)
		}
	}()
	rsp := obs.Start("engine.run", obs.String("program", prog.Name()),
		obs.Int("p", e.p), obs.Int("replicas", e.stats.TotalReplicas))
	var prev Totals
	for step := 0; step < maxSupersteps && activeMasters > 0; step++ {
		stats.Supersteps++
		ssp := rsp.Child("engine.superstep", obs.Int("step", step))
		for ph := 0; ph < numPhases; ph++ {
			psp := ssp.Child(phaseSpanNames[ph])
			for _, c := range cmds {
				c <- ph
			}
			for range e.machines {
				<-done
			}
			tr.Flip()
			psp.End()
		}
		activeMasters = 0
		for _, m := range e.machines {
			activeMasters += m.activeMasters
		}
		tot := tr.Totals()
		delta := tot.Sub(prev)
		stats.PerStep = append(stats.PerStep, delta)
		assertStepBalanced(e.machines, step, delta)
		prev = tot
		ssp.EndWith(obs.Int64("gather_messages", delta.GatherMessages),
			obs.Int64("apply_messages", delta.ApplyMessages),
			obs.Int64("activate_messages", delta.ActivateMessages),
			obs.Int64("bytes", delta.Bytes()),
			obs.Int("active_masters", activeMasters))
	}
	stats.GatherMessages = prev.GatherMessages
	stats.ApplyMessages = prev.ApplyMessages
	stats.ActivateMessages = prev.ActivateMessages
	stats.GatherBytes = prev.GatherBytes
	stats.ApplyBytes = prev.ApplyBytes
	stats.ActivateBytes = prev.ActivateBytes
	stats.Links = tr.Traffic()
	assertTrafficConsistent(stats)
	recordRunMetrics(&stats)
	rsp.EndWith(obs.Int("supersteps", stats.Supersteps),
		obs.Int64("messages", stats.Messages()),
		obs.Int64("bytes", stats.Bytes()))
	// Assemble the result from master replicas; isolated vertices keep
	// their initial value.
	n := e.g.NumVertices()
	values := make([]float64, n)
	for v := 0; v < n; v++ {
		values[v] = prog.Init(graph.Vertex(v), e.g.Degree(graph.Vertex(v)))
	}
	for _, m := range e.machines {
		for i, v := range m.verts {
			if m.isMaster[i] {
				values[v] = m.value[i]
			}
		}
	}
	return values, stats, nil
}

// RunSequential executes prog on g as one plain sequential loop — no
// partitions, no goroutines, no messages. It is the oracle the
// share-nothing runtime is tested against: for any complete partitioning
// and any machine scheduling, Run returns bit-identical values and the same
// superstep count, because masters fold gather contributions in the same
// canonical sorted-neighbour order this loop uses.
func RunSequential(g *graph.Graph, prog Program, maxSupersteps int) ([]float64, int, error) {
	if prog == nil {
		return nil, 0, fmt.Errorf("engine: nil program")
	}
	if maxSupersteps < 1 {
		return nil, 0, fmt.Errorf("engine: need at least one superstep")
	}
	n := g.NumVertices()
	values := make([]float64, n)
	degree := make([]int, n)
	active := make([]bool, n)
	for v := 0; v < n; v++ {
		degree[v] = g.Degree(graph.Vertex(v))
		values[v] = prog.Init(graph.Vertex(v), degree[v])
		active[v] = degree[v] > 0
	}
	gathered := make([]float64, n)
	changed := make([]bool, n)
	steps := 0
	for step := 0; step < maxSupersteps; step++ {
		anyActive := false
		for v := 0; v < n; v++ {
			if active[v] {
				anyActive = true
				break
			}
		}
		if !anyActive {
			break
		}
		steps++
		// Gather over the previous superstep's values for every active
		// vertex, folding the sorted neighbour list left to right.
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			nbrs := g.Neighbors(graph.Vertex(v))
			sum := prog.Gather(graph.Vertex(v), nbrs[0], values[nbrs[0]], degree[nbrs[0]])
			for _, u := range nbrs[1:] {
				sum = prog.Sum(sum, prog.Gather(graph.Vertex(v), u, values[u], degree[u]))
			}
			gathered[v] = sum
		}
		// Apply.
		for v := 0; v < n; v++ {
			changed[v] = false
			if !active[v] {
				continue
			}
			nv := prog.Apply(graph.Vertex(v), values[v], gathered[v], degree[v])
			conv := prog.Converged(values[v], nv)
			values[v] = nv
			active[v] = !conv
			changed[v] = !conv
		}
		// Scatter: neighbours of changed vertices reactivate.
		for v := 0; v < n; v++ {
			if !changed[v] {
				continue
			}
			for _, u := range g.Neighbors(graph.Vertex(v)) {
				active[u] = true
			}
		}
	}
	return values, steps, nil
}
