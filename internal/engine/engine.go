// Package engine is a PowerGraph-style gather-apply-scatter (GAS) execution
// engine running on an edge-partitioned graph — the distributed-computation
// substrate that motivates the paper's problem: every spanned vertex has one
// master replica and mirrors in every other partition whose edge set touches
// it, and each superstep synchronises gather results from mirrors to the
// master and the applied value back from the master to the mirrors. The
// engine counts those synchronisation messages, making the cost of a high
// replication factor directly observable: messages per superstep =
// 2 * (total replicas - active vertices).
//
// Partitions execute as goroutines ("machines") with channel-based message
// exchange, so the simulation exercises real concurrency, not just a loop.
package engine

import (
	"fmt"
	"sync"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
)

// Program is a vertex program in the gather-sum-apply-scatter model.
// Values are float64; programs needing richer state encode it.
type Program interface {
	// Name identifies the program.
	Name() string
	// Init returns vertex v's value before the first superstep.
	Init(v graph.Vertex, degree int) float64
	// Gather produces the contribution of edge (v, u) to v's
	// accumulator, given u's current value and degree.
	Gather(v, u graph.Vertex, uValue float64, uDegree int) float64
	// Sum combines two gather contributions (must be commutative and
	// associative).
	Sum(a, b float64) float64
	// Apply computes v's new value from the gathered total.
	Apply(v graph.Vertex, old, gathered float64, degree int) float64
	// Converged reports whether the change from old to new is small
	// enough to deactivate the vertex this round.
	Converged(old, new float64) bool
}

// Stats aggregates what the engine did during Run.
type Stats struct {
	// Supersteps executed (may be fewer than requested on convergence).
	Supersteps int
	// GatherMessages counts mirror->master accumulator messages.
	GatherMessages int64
	// ApplyMessages counts master->mirror value broadcasts.
	ApplyMessages int64
	// TotalReplicas is the number of (vertex, partition) placements.
	TotalReplicas int
	// Masters is the number of vertices with at least one edge.
	Masters int
}

// Messages returns total synchronisation traffic.
func (s Stats) Messages() int64 { return s.GatherMessages + s.ApplyMessages }

// Engine executes vertex programs over one partitioned graph.
type Engine struct {
	g *graph.Graph
	p int
	// vertsOf[k] lists the vertices with >= 1 edge in partition k.
	vertsOf [][]graph.Vertex
	// masterOf[v] is the partition owning v's master replica (the
	// partition with the most incident edges, ties to the lowest id),
	// or -1 for isolated vertices.
	masterOf []int32
	// adjOf[k][i] lists, for vertex vertsOf[k][i], the edges of partition
	// k incident to it (as the neighbour vertex).
	adjOf [][][]graph.Vertex
	// replicaCount[v] is the number of partitions holding v.
	replicaCount []int16
	stats        Stats
}

// New builds an engine from a complete edge partitioning of g.
func New(g *graph.Graph, a *partition.Assignment) (*Engine, error) {
	if err := partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 1e9}); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	p := a.P()
	e := &Engine{
		g:        g,
		p:        p,
		vertsOf:  make([][]graph.Vertex, p),
		masterOf: make([]int32, g.NumVertices()),
		adjOf:    make([][][]graph.Vertex, p),
	}
	n := g.NumVertices()
	// Count per-partition incidence to pick masters.
	inc := make([][]int32, p)
	for k := range inc {
		inc[k] = make([]int32, n)
	}
	for id, ed := range g.Edges() {
		k, _ := a.PartitionOf(graph.EdgeID(id))
		inc[k][ed.U]++
		inc[k][ed.V]++
	}
	for v := 0; v < n; v++ {
		best, bestInc := int32(-1), int32(0)
		for k := 0; k < p; k++ {
			if inc[k][v] > bestInc {
				best, bestInc = int32(k), inc[k][v]
			}
		}
		e.masterOf[v] = best
	}
	// Per-partition local structures.
	idxOf := make([]int32, n)
	for k := 0; k < p; k++ {
		for v := 0; v < n; v++ {
			idxOf[v] = -1
		}
		var verts []graph.Vertex
		var adj [][]graph.Vertex
		for id, ed := range g.Edges() {
			kk, _ := a.PartitionOf(graph.EdgeID(id))
			if kk != k {
				continue
			}
			for _, end := range []graph.Vertex{ed.U, ed.V} {
				if idxOf[end] == -1 {
					idxOf[end] = int32(len(verts))
					verts = append(verts, end)
					adj = append(adj, nil)
				}
			}
			adj[idxOf[ed.U]] = append(adj[idxOf[ed.U]], ed.V)
			adj[idxOf[ed.V]] = append(adj[idxOf[ed.V]], ed.U)
			e.stats.TotalReplicas += 0 // counted below
		}
		e.vertsOf[k] = verts
		e.adjOf[k] = adj
	}
	e.replicaCount = make([]int16, n)
	for k := 0; k < p; k++ {
		e.stats.TotalReplicas += len(e.vertsOf[k])
		for _, u := range e.vertsOf[k] {
			e.replicaCount[u]++
		}
	}
	for v := 0; v < n; v++ {
		if e.masterOf[v] >= 0 {
			e.stats.Masters++
		}
	}
	return e, nil
}

// ReplicationFactor returns total replicas over active vertices — the
// engine-visible RF (isolated vertices excluded, unlike the paper's
// Definition 4 which divides by |V|).
func (e *Engine) ReplicationFactor() float64 {
	if e.stats.Masters == 0 {
		return 0
	}
	return float64(e.stats.TotalReplicas) / float64(e.stats.Masters)
}

// Run executes prog for at most maxSupersteps, returning the final vertex
// values and execution stats. Vertices all start active; a vertex
// deactivates when Converged, and reactivates if any neighbour changed in
// the previous superstep. Run stops early when every vertex is inactive.
func (e *Engine) Run(prog Program, maxSupersteps int) ([]float64, Stats, error) {
	if prog == nil {
		return nil, Stats{}, fmt.Errorf("engine: nil program")
	}
	if maxSupersteps < 1 {
		return nil, Stats{}, fmt.Errorf("engine: need at least one superstep")
	}
	n := e.g.NumVertices()
	values := make([]float64, n)
	degree := make([]int, n)
	for v := 0; v < n; v++ {
		degree[v] = e.g.Degree(graph.Vertex(v))
		values[v] = prog.Init(graph.Vertex(v), degree[v])
	}
	stats := e.stats
	active := make([]bool, n)
	for v := range active {
		active[v] = degree[v] > 0
	}
	type partial struct {
		v   graph.Vertex
		sum float64
		set bool
	}
	// Reused per superstep: per-partition gather outputs.
	partials := make([][]partial, e.p)
	for step := 0; step < maxSupersteps; step++ {
		anyActive := false
		for v := 0; v < n; v++ {
			if active[v] {
				anyActive = true
				break
			}
		}
		if !anyActive {
			break
		}
		stats.Supersteps++
		// GATHER phase: every partition computes local partial sums for
		// its replicas, concurrently (one goroutine per "machine").
		var wg sync.WaitGroup
		for k := 0; k < e.p; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				verts := e.vertsOf[k]
				out := partials[k][:0]
				if cap(partials[k]) < len(verts) {
					out = make([]partial, 0, len(verts))
				}
				for i, v := range verts {
					if !active[v] {
						continue
					}
					var sum float64
					set := false
					for _, u := range e.adjOf[k][i] {
						c := prog.Gather(v, u, values[u], degree[u])
						if !set {
							sum, set = c, true
						} else {
							sum = prog.Sum(sum, c)
						}
					}
					if set {
						out = append(out, partial{v: v, sum: sum, set: true})
					}
				}
				partials[k] = out
			}(k)
		}
		wg.Wait()
		// Mirror -> master accumulation. Each partial computed on a
		// non-master replica is one gather message.
		gathered := make(map[graph.Vertex]float64, n/4)
		for k := 0; k < e.p; k++ {
			for _, pt := range partials[k] {
				if int32(k) != e.masterOf[pt.v] {
					stats.GatherMessages++
				}
				if prev, ok := gathered[pt.v]; ok {
					gathered[pt.v] = prog.Sum(prev, pt.sum)
				} else {
					gathered[pt.v] = pt.sum
				}
			}
		}
		// APPLY phase at masters; then master -> mirror broadcast, one
		// message per mirror of a changed vertex.
		changed := make([]bool, n)
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			gv, ok := gathered[graph.Vertex(v)]
			if !ok {
				gv = 0
			}
			nv := prog.Apply(graph.Vertex(v), values[v], gv, degree[v])
			if prog.Converged(values[v], nv) {
				active[v] = false
			} else {
				changed[v] = true
			}
			if nv != values[v] {
				// Broadcast to mirrors: replicas - 1 messages.
				stats.ApplyMessages += int64(e.replicasOf(graph.Vertex(v)) - 1)
			}
			values[v] = nv
		}
		// SCATTER/activation: neighbours of changed vertices reactivate.
		for v := 0; v < n; v++ {
			if !changed[v] {
				continue
			}
			for _, u := range e.g.Neighbors(graph.Vertex(v)) {
				active[u] = true
			}
		}
	}
	return values, stats, nil
}

// replicasOf counts the partitions holding vertex v (1 minimum so isolated
// vertices never produce negative message counts).
func (e *Engine) replicasOf(v graph.Vertex) int {
	if c := int(e.replicaCount[v]); c > 0 {
		return c
	}
	return 1
}
