package engine_test

import (
	"testing"

	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/engine/transporttest"
)

// TestMemTransportConformance runs the shared transport contract suite
// against the in-memory reference implementation. The TCP transport runs
// the identical suite (internal/wire); the suite is the single statement of
// the delivery contract both must satisfy.
func TestMemTransportConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T, p int) engine.Transport {
		return engine.NewMemTransport(p)
	})
}
