package engine_test

import (
	"fmt"
	"sort"
	"testing"

	graphpart "github.com/graphpart/graphpart"
	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

// oracleGraph builds a connected random graph: a random tree plus extra
// edges, the same shape the in-package tests use.
func oracleGraph(seed uint64, n, extra int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex(r.Intn(i)))
	}
	for b.NumEdgesAdded() < n-1+extra {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// TestOracleBitIdentical is the acceptance oracle of the share-nothing
// refactor: for every registered partitioner, at p in {2, 8, 32}, for
// PageRank and connected components, the message-passing runtime must
// return values bit-for-bit equal to the plain sequential reference loop,
// with the same superstep count.
func TestOracleBitIdentical(t *testing.T) {
	g := oracleGraph(7, 600, 2400)
	n := g.NumVertices()
	programs := []struct {
		name string
		make func() engine.Program
		max  int
	}{
		{"pagerank", func() engine.Program { return engine.NewPageRank(n, 0.85, 1e-8) }, 30},
		{"components", func() engine.Program { return &engine.Components{} }, 50},
	}
	parts := graphpart.AllPartitioners(42)
	names := make([]string, 0, len(parts))
	for name := range parts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, pr := range programs {
		want, wantSteps, err := engine.RunSequential(g, pr.make(), pr.max)
		if err != nil {
			t.Fatalf("sequential %s: %v", pr.name, err)
		}
		for _, name := range names {
			for _, p := range []int{2, 8, 32} {
				t.Run(fmt.Sprintf("%s/%s/p%d", pr.name, name, p), func(t *testing.T) {
					a, err := parts[name].Partition(g, p)
					if err != nil {
						t.Fatalf("partition: %v", err)
					}
					e, err := engine.New(g, a)
					if err != nil {
						t.Fatalf("engine.New: %v", err)
					}
					got, stats, err := e.Run(pr.make(), pr.max)
					if err != nil {
						t.Fatalf("Run: %v", err)
					}
					if stats.Supersteps != wantSteps {
						t.Fatalf("supersteps = %d, sequential ran %d", stats.Supersteps, wantSteps)
					}
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("vertex %d: runtime %v != sequential %v (not bit-identical)",
								v, got[v], want[v])
						}
					}
				})
			}
		}
	}
}

// TestOracleRepeatRuns checks an Engine's reusable buffers are reset
// correctly: back-to-back runs of different programs on one Engine match
// the oracle each time.
func TestOracleRepeatRuns(t *testing.T) {
	g := oracleGraph(11, 300, 900)
	a, err := graphpart.AllPartitioners(7)["tlp"].Partition(g, 8)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	e, err := engine.New(g, a)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	for round := 0; round < 2; round++ {
		for _, pr := range []engine.Program{engine.NewPageRank(g.NumVertices(), 0.85, 1e-8), &engine.Components{}} {
			want, wantSteps, err := engine.RunSequential(g, pr, 40)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			got, stats, err := e.Run(pr, 40)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if stats.Supersteps != wantSteps {
				t.Fatalf("round %d %s: supersteps = %d, want %d", round, pr.Name(), stats.Supersteps, wantSteps)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("round %d %s vertex %d: %v != %v", round, pr.Name(), v, got[v], want[v])
				}
			}
		}
	}
}
