package engine

import (
	"math"
	"testing"

	"github.com/graphpart/graphpart/internal/core"
	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
	"github.com/graphpart/graphpart/internal/streaming"
)

func testGraph(seed uint64, n, extra int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex(r.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

func partitioned(t *testing.T, g *graph.Graph, p int) *partition.Assignment {
	t.Helper()
	a, err := core.MustNew(core.Options{Seed: 1}).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRejectsIncomplete(t *testing.T) {
	g := testGraph(1, 20, 20)
	a := partition.MustNew(g.NumEdges(), 2)
	if _, err := New(g, a); err == nil {
		t.Fatal("incomplete assignment accepted")
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	g := testGraph(2, 20, 20)
	e, err := New(g, partitioned(t, g, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(nil, 5); err == nil {
		t.Fatal("nil program accepted")
	}
	if _, _, err := e.Run(&DegreeCount{}, 0); err == nil {
		t.Fatal("zero supersteps accepted")
	}
}

func TestDegreeCountExact(t *testing.T) {
	g := testGraph(3, 100, 200)
	e, err := New(g, partitioned(t, g, 4))
	if err != nil {
		t.Fatal(err)
	}
	values, _, err := e.Run(&DegreeCount{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if int(values[v]) != g.Degree(graph.Vertex(v)) {
			t.Fatalf("vertex %d: engine degree %v, true %d", v, values[v], g.Degree(graph.Vertex(v)))
		}
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	g := testGraph(4, 150, 450)
	for _, p := range []int{1, 3, 8} {
		e, err := New(g, partitioned(t, g, p))
		if err != nil {
			t.Fatal(err)
		}
		values, stats, err := e.Run(NewPageRank(g.NumVertices(), 0.85, 0), 30)
		if err != nil {
			t.Fatal(err)
		}
		ref := ReferencePageRank(g, 0.85, stats.Supersteps)
		for v := 0; v < g.NumVertices(); v++ {
			if math.Abs(values[v]-ref[v]) > 1e-6 {
				t.Fatalf("p=%d vertex %d: engine %v, reference %v", p, v, values[v], ref[v])
			}
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := testGraph(5, 120, 360)
	e, err := New(g, partitioned(t, g, 5))
	if err != nil {
		t.Fatal(err)
	}
	values, _, err := e.Run(NewPageRank(g.NumVertices(), 0.85, 1e-12), 100)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	// Undirected connected-ish graph: total rank stays ~1.
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("rank sum %v, want ~1", sum)
	}
}

func TestSSSPMatchesBFS(t *testing.T) {
	g := testGraph(6, 200, 300)
	e, err := New(g, partitioned(t, g, 6))
	if err != nil {
		t.Fatal(err)
	}
	src := graph.Vertex(0)
	values, _, err := e.Run(&SSSP{Source: src}, 200)
	if err != nil {
		t.Fatal(err)
	}
	ref := ReferenceSSSP(g, src)
	for v := 0; v < g.NumVertices(); v++ {
		if values[v] != ref[v] && !(math.IsInf(values[v], 1) && math.IsInf(ref[v], 1)) {
			t.Fatalf("vertex %d: engine %v, BFS %v", v, values[v], ref[v])
		}
	}
}

func TestComponentsMatchesReference(t *testing.T) {
	// Two disjoint triangles plus isolated vertex.
	g := graph.MustFromEdges(7, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	})
	e, err := New(g, partitioned(t, g, 2))
	if err != nil {
		t.Fatal(err)
	}
	values, _, err := e.Run(&Components{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if values[v] != 0 {
			t.Fatalf("vertex %d label %v, want 0", v, values[v])
		}
	}
	for v := 3; v < 6; v++ {
		if values[v] != 3 {
			t.Fatalf("vertex %d label %v, want 3", v, values[v])
		}
	}
	if values[6] != 6 {
		t.Fatalf("isolated vertex label %v, want 6", values[6])
	}
}

func TestConvergenceStopsEarly(t *testing.T) {
	g := testGraph(7, 50, 100)
	e, err := New(g, partitioned(t, g, 3))
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := e.Run(&DegreeCount{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// DegreeCount stabilises after two supersteps (set, then confirm).
	if stats.Supersteps > 3 {
		t.Fatalf("degree count ran %d supersteps", stats.Supersteps)
	}
}

// TestMessagesTrackRF is the engine-level restatement of the paper's claim:
// lower replication factor means less synchronisation traffic, on the same
// graph, same program, same superstep count.
func TestMessagesTrackRF(t *testing.T) {
	g := gen.PlantedCommunities(gen.CommunityConfig{
		Vertices: 500, Communities: 10, TargetEdges: 5000, IntraFraction: 0.85,
	}, rng.New(8))
	p := 10
	aTLP := partitioned(t, g, p)
	aRand, err := streaming.NewRandom(9).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	rfTLP, err := partition.ReplicationFactor(g, aTLP)
	if err != nil {
		t.Fatal(err)
	}
	rfRand, err := partition.ReplicationFactor(g, aRand)
	if err != nil {
		t.Fatal(err)
	}
	if rfTLP >= rfRand {
		t.Skipf("TLP RF %.3f not below random %.3f on this seed", rfTLP, rfRand)
	}
	eTLP, err := New(g, aTLP)
	if err != nil {
		t.Fatal(err)
	}
	eRand, err := New(g, aRand)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 5
	_, sTLP, err := eTLP.Run(NewPageRank(g.NumVertices(), 0.85, 0), steps)
	if err != nil {
		t.Fatal(err)
	}
	_, sRand, err := eRand.Run(NewPageRank(g.NumVertices(), 0.85, 0), steps)
	if err != nil {
		t.Fatal(err)
	}
	if sTLP.Messages() >= sRand.Messages() {
		t.Fatalf("TLP messages %d not below random %d despite lower RF (%.3f vs %.3f)",
			sTLP.Messages(), sRand.Messages(), rfTLP, rfRand)
	}
}

func TestEngineRF(t *testing.T) {
	g := testGraph(10, 80, 160)
	a := partitioned(t, g, 4)
	e, err := New(g, a)
	if err != nil {
		t.Fatal(err)
	}
	rf := e.ReplicationFactor()
	if rf < 1 || rf > 4 {
		t.Fatalf("engine RF %v out of range", rf)
	}
	// Engine RF >= paper RF because the engine divides by active
	// vertices, the paper by all vertices.
	paperRF, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if rf < paperRF-1e-9 {
		t.Fatalf("engine RF %v below paper RF %v", rf, paperRF)
	}
}

func TestMastersCoverActiveVertices(t *testing.T) {
	g := testGraph(11, 60, 120)
	e, err := New(g, partitioned(t, g, 3))
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.Vertex(v)) > 0 {
			active++
		}
	}
	if e.stats.Masters != active {
		t.Fatalf("masters %d, active vertices %d", e.stats.Masters, active)
	}
}

func BenchmarkEnginePageRank(b *testing.B) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 5000, TargetEdges: 25000, Exponent: 2.1}, rng.New(12))
	a, err := core.MustNew(core.Options{Seed: 1}).Partition(g, 8)
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(g, a)
	if err != nil {
		b.Fatal(err)
	}
	prog := NewPageRank(g.NumVertices(), 0.85, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Run(prog, 10); err != nil {
			b.Fatal(err)
		}
	}
}
