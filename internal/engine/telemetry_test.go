package engine_test

import (
	"testing"

	graphpart "github.com/graphpart/graphpart"
	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/obs"
)

// TestTelemetryPreservesOracle re-runs the bit-identical oracle with span
// recording enabled: tracing an engine run must not change a single output
// bit or the superstep count, and the expected span shapes must appear.
func TestTelemetryPreservesOracle(t *testing.T) {
	g := oracleGraph(7, 400, 1600)
	a, err := graphpart.AllPartitioners(42)["tlp"].Partition(g, 8)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}

	pr := func() engine.Program { return engine.NewPageRank(g.NumVertices(), 0.85, 1e-8) }
	want, wantSteps, err := engine.RunSequential(g, pr(), 30)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}

	e, err := engine.New(g, a)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	off, offStats, err := e.Run(pr(), 30)
	if err != nil {
		t.Fatalf("Run (telemetry off): %v", err)
	}

	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.ResetTrace()
		obs.Default.Reset()
	})
	obs.ResetTrace()
	on, onStats, err := e.Run(pr(), 30)
	if err != nil {
		t.Fatalf("Run (telemetry on): %v", err)
	}

	if offStats.Supersteps != wantSteps || onStats.Supersteps != wantSteps {
		t.Fatalf("supersteps: off=%d on=%d sequential=%d", offStats.Supersteps, onStats.Supersteps, wantSteps)
	}
	for v := range want {
		if off[v] != want[v] {
			t.Fatalf("vertex %d (telemetry off): %v != sequential %v", v, off[v], want[v])
		}
		if on[v] != off[v] {
			t.Fatalf("vertex %d: traced run %v != untraced run %v (not bit-identical)", v, on[v], off[v])
		}
	}

	recs, _ := obs.TraceRecords()
	counts := map[string]int{}
	for _, rec := range recs {
		counts[rec.Name]++
	}
	if counts["engine.run"] != 1 {
		t.Fatalf("engine.run spans = %d, want 1 (names: %v)", counts["engine.run"], counts)
	}
	if counts["engine.superstep"] != wantSteps {
		t.Fatalf("engine.superstep spans = %d, want %d", counts["engine.superstep"], wantSteps)
	}
	for _, phase := range []string{"engine.gather", "engine.apply", "engine.scatter", "engine.activate", "engine.finalize"} {
		if counts[phase] != wantSteps {
			t.Fatalf("%s spans = %d, want one per superstep (%d)", phase, counts[phase], wantSteps)
		}
	}
}
