package engine

import "testing"

// TestTrafficMatrixConsistent runs the engine in the default (non-sanitizer)
// build and checks the per-link traffic matrix against the per-kind stats
// counters: a zero diagonal (machine-local state never touches the
// transport) and row/column grand totals equal to the counters — the same
// books the tagged sanitizer balances on every run.
func TestTrafficMatrixConsistent(t *testing.T) {
	g := testGraph(21, 300, 700)
	for _, p := range []int{2, 8} {
		e, err := New(g, partitioned(t, g, p))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		_, stats, err := e.Run(NewPageRank(g.NumVertices(), 0.85, 1e-8), 25)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		links := stats.Links
		if links == nil {
			t.Fatalf("p=%d: no traffic matrix", p)
		}
		if links.P() != p {
			t.Fatalf("p=%d: matrix is %dx%d", p, links.P(), links.P())
		}
		for i := 0; i < p; i++ {
			if links.Messages[i][i] != 0 || links.Bytes[i][i] != 0 {
				t.Errorf("p=%d: diagonal [%d][%d] nonzero: %d msgs / %d bytes",
					p, i, i, links.Messages[i][i], links.Bytes[i][i])
			}
		}
		if got, want := links.TotalMessages(), stats.Messages(); got != want {
			t.Errorf("p=%d: matrix totals %d messages, stats count %d", p, got, want)
		}
		if got, want := links.TotalBytes(), stats.Bytes(); got != want {
			t.Errorf("p=%d: matrix totals %d bytes, stats count %d", p, got, want)
		}
		if p > 1 && stats.Messages() == 0 {
			t.Errorf("p=%d: no messages moved for a partitioned run", p)
		}
		// The per-superstep attribution must also add back up to the totals.
		var perStep int64
		for _, s := range stats.PerStep {
			perStep += s.Messages()
		}
		if perStep != stats.Messages() {
			t.Errorf("p=%d: per-step messages sum to %d, total is %d", p, perStep, stats.Messages())
		}
	}
}
