// Package transporttest is the reusable conformance suite for
// engine.Transport implementations. It encodes the delivery-order contract
// the runtime's determinism rests on — per-sender send order, Flip-barrier
// delivery, ascending-sender-id drain grouping, cumulative traffic
// accounting — as ordinary subtests, so every transport (in-memory, TCP,
// and any future latency-injecting or lossy wrapper) proves the same
// contract with one call:
//
//	transporttest.Run(t, func(t *testing.T, p int) engine.Transport {
//		return engine.NewMemTransport(p)
//	})
//
// Factories register cleanup with t.Cleanup when the transport holds
// resources (sockets, goroutines). The suite follows the runtime's usage
// discipline — Flip never overlaps Send or Drain, inbox k is drained only
// by one goroutine, delivered batches are drained before the next Flip —
// and only promises behaviour under that discipline, exactly like the
// interface contract.
package transporttest

import (
	"fmt"
	"sync"
	"testing"

	"github.com/graphpart/graphpart/internal/engine"
)

// Factory builds a fresh transport for p machines. Implementations needing
// teardown (sockets, reader goroutines) register it with t.Cleanup.
type Factory func(t *testing.T, p int) engine.Transport

// Run executes the full conformance suite against transports built by f.
func Run(t *testing.T, f Factory) {
	t.Run("FlipBarrierDelivery", func(t *testing.T) { testFlipBarrier(t, f) })
	t.Run("PerSenderOrder", func(t *testing.T) { testPerSenderOrder(t, f) })
	t.Run("AscendingSenderGrouping", func(t *testing.T) { testGrouping(t, f) })
	t.Run("MessageKindsRoundTrip", func(t *testing.T) { testKinds(t, f) })
	t.Run("ConcurrentSenders", func(t *testing.T) { testConcurrentSenders(t, f) })
	t.Run("TrafficAccounting", func(t *testing.T) { testAccounting(t, f) })
}

// act builds an Activate whose Local encodes (sender, sequence) so tests can
// recover provenance from a drained inbox.
func act(sender, seq int) *engine.Activate {
	return &engine.Activate{Local: int32(sender*100000 + seq)}
}

func senderOf(m engine.Message) int { return int(m.(*engine.Activate).Local) / 100000 }
func seqOf(m engine.Message) int    { return int(m.(*engine.Activate).Local) % 100000 }

// testFlipBarrier checks messages become drainable exactly at the Flip
// after they were sent: nothing before any Flip, nothing sent after a Flip
// leaks into that Flip's batch.
func testFlipBarrier(t *testing.T, f Factory) {
	tr := f(t, 2)
	tr.Send(0, 1, act(0, 0))
	if got := tr.Drain(1); len(got) != 0 {
		t.Fatalf("drained %d messages before any Flip, want 0", len(got))
	}
	tr.Flip()
	tr.Send(0, 1, act(0, 1)) // belongs to the next batch
	got := tr.Drain(1)
	if len(got) != 1 || seqOf(got[0]) != 0 {
		t.Fatalf("first batch = %v, want exactly the pre-Flip message", got)
	}
	tr.Flip()
	got = tr.Drain(1)
	if len(got) != 1 || seqOf(got[0]) != 1 {
		t.Fatalf("second batch = %v, want exactly the post-Flip message", got)
	}
	tr.Flip()
	if got := tr.Drain(1); len(got) != 0 {
		t.Fatalf("empty phase drained %d messages, want 0", len(got))
	}
}

// testPerSenderOrder checks a single sender's messages arrive in send order.
func testPerSenderOrder(t *testing.T, f Factory) {
	tr := f(t, 3)
	const n = 200
	for i := 0; i < n; i++ {
		tr.Send(0, 2, act(0, i))
	}
	tr.Flip()
	got := tr.Drain(2)
	if len(got) != n {
		t.Fatalf("drained %d messages, want %d", len(got), n)
	}
	for i, m := range got {
		if seqOf(m) != i {
			t.Fatalf("message %d has sequence %d: per-sender order not preserved", i, seqOf(m))
		}
	}
}

// testGrouping checks a drained inbox is grouped by ascending sender id
// with per-sender order preserved, regardless of send interleaving.
func testGrouping(t *testing.T, f Factory) {
	tr := f(t, 4)
	// Interleave sends from three senders into inbox 3.
	for i := 0; i < 50; i++ {
		tr.Send(2, 3, act(2, i))
		tr.Send(0, 3, act(0, i))
		tr.Send(1, 3, act(1, i))
	}
	tr.Flip()
	got := tr.Drain(3)
	if len(got) != 150 {
		t.Fatalf("drained %d messages, want 150", len(got))
	}
	lastSender, lastSeq := -1, -1
	for i, m := range got {
		s, q := senderOf(m), seqOf(m)
		if s < lastSender {
			t.Fatalf("message %d from sender %d after sender %d: not grouped ascending", i, s, lastSender)
		}
		if s > lastSender {
			lastSender, lastSeq = s, -1
		}
		if q != lastSeq+1 {
			t.Fatalf("sender %d message out of order: seq %d after %d", s, q, lastSeq)
		}
		lastSeq = q
	}
	if lastSender != 2 {
		t.Fatalf("last sender = %d, want 2 (all three groups present)", lastSender)
	}
}

// testKinds checks every message kind crosses the transport with its fields
// intact (by value — a wire transport decodes fresh structs).
func testKinds(t *testing.T, f Factory) {
	tr := f(t, 2)
	gf := &engine.GatherFlush{
		MasterLocal: 7,
		Slots:       []int32{0, 3, 9},
		Contribs:    []float64{0.25, -1.5, 3.75},
	}
	ab := &engine.ApplyBroadcast{MirrorLocal: 11, Value: 2.5, Changed: true, Active: false}
	av := &engine.Activate{Local: 13}
	tr.Send(0, 1, gf)
	tr.Send(0, 1, ab)
	tr.Send(0, 1, av)
	tr.Flip()
	got := tr.Drain(1)
	if len(got) != 3 {
		t.Fatalf("drained %d messages, want 3", len(got))
	}
	g, ok := got[0].(*engine.GatherFlush)
	if !ok {
		t.Fatalf("message 0 is %T, want *GatherFlush", got[0])
	}
	if g.MasterLocal != 7 || len(g.Slots) != 3 || g.Slots[1] != 3 || g.Contribs[2] != 3.75 || g.Contribs[1] != -1.5 {
		t.Errorf("GatherFlush corrupted in transit: %+v", g)
	}
	b, ok := got[1].(*engine.ApplyBroadcast)
	if !ok {
		t.Fatalf("message 1 is %T, want *ApplyBroadcast", got[1])
	}
	if b.MirrorLocal != 11 || b.Value != 2.5 || !b.Changed || b.Active {
		t.Errorf("ApplyBroadcast corrupted in transit: %+v", b)
	}
	a, ok := got[2].(*engine.Activate)
	if !ok {
		t.Fatalf("message 2 is %T, want *Activate", got[2])
	}
	if a.Local != 13 {
		t.Errorf("Activate corrupted in transit: %+v", a)
	}
}

// testConcurrentSenders checks distinct senders may send concurrently (the
// runtime's machines do) without losing messages, order, or grouping.
func testConcurrentSenders(t *testing.T, f Factory) {
	const p, per = 6, 120
	tr := f(t, p)
	var wg sync.WaitGroup
	for s := 0; s < p; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				for to := 0; to < p; to++ {
					if to != s {
						tr.Send(s, to, act(s, i))
					}
				}
			}
		}(s)
	}
	wg.Wait()
	tr.Flip()
	for k := 0; k < p; k++ {
		got := tr.Drain(k)
		if len(got) != (p-1)*per {
			t.Fatalf("inbox %d drained %d messages, want %d", k, len(got), (p-1)*per)
		}
		lastSender, lastSeq := -1, -1
		for i, m := range got {
			s, q := senderOf(m), seqOf(m)
			if s == k {
				t.Fatalf("inbox %d contains a message from itself", k)
			}
			if s < lastSender {
				t.Fatalf("inbox %d message %d: sender %d after %d", k, i, s, lastSender)
			}
			if s > lastSender {
				lastSender, lastSeq = s, -1
			}
			if q != lastSeq+1 {
				t.Fatalf("inbox %d sender %d: seq %d after %d", k, s, q, lastSeq)
			}
			lastSeq = q
		}
	}
}

// testAccounting checks the cumulative counters: totals match the per-link
// matrix, bytes are at least the payload (WireSize) bytes, per-kind counts
// are attributed correctly, and counters accumulate across Flips.
func testAccounting(t *testing.T, f Factory) {
	tr := f(t, 3)
	var wantMsgs, wantPayload int64
	send := func(from, to int, m engine.Message) {
		tr.Send(from, to, m)
		wantMsgs++
		wantPayload += int64(m.WireSize())
	}
	for phase := 0; phase < 3; phase++ {
		send(0, 1, &engine.GatherFlush{MasterLocal: 1, Slots: []int32{0, 1}, Contribs: []float64{1, 2}})
		send(1, 2, &engine.ApplyBroadcast{MirrorLocal: 2, Value: 1})
		send(2, 0, &engine.Activate{Local: 3})
		send(2, 1, &engine.Activate{Local: 4})
		tr.Flip()
		for k := 0; k < 3; k++ {
			tr.Drain(k)
		}
	}
	tot := tr.Totals()
	if tot.Messages() != wantMsgs {
		t.Errorf("Totals().Messages() = %d, want %d", tot.Messages(), wantMsgs)
	}
	if tot.GatherMessages != 3 || tot.ApplyMessages != 3 || tot.ActivateMessages != 6 {
		t.Errorf("per-kind counts = %d/%d/%d, want 3/3/6",
			tot.GatherMessages, tot.ApplyMessages, tot.ActivateMessages)
	}
	if tot.Bytes() < wantPayload {
		t.Errorf("Totals().Bytes() = %d, want >= payload bytes %d", tot.Bytes(), wantPayload)
	}
	links := tr.Traffic()
	if links.P() != 3 {
		t.Fatalf("Traffic().P() = %d, want 3", links.P())
	}
	if got := links.TotalMessages(); got != tot.Messages() {
		t.Errorf("matrix total %d messages != totals %d", got, tot.Messages())
	}
	if got := links.TotalBytes(); got != tot.Bytes() {
		t.Errorf("matrix total %d bytes != totals %d", got, tot.Bytes())
	}
	wantLinks := map[[2]int]int64{{0, 1}: 3, {1, 2}: 3, {2, 0}: 3, {2, 1}: 3}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got := links.Messages[i][j]; got != wantLinks[[2]int{i, j}] {
				t.Errorf("link %d->%d carried %d messages, want %d", i, j, got, wantLinks[[2]int{i, j}])
			}
		}
	}
	if err := checkDiagonal(links); err != nil {
		t.Error(err)
	}
}

// checkDiagonal verifies no traffic was accounted machine-local.
func checkDiagonal(links *engine.TrafficMatrix) error {
	for i := range links.Messages {
		if links.Messages[i][i] != 0 || links.Bytes[i][i] != 0 {
			return fmt.Errorf("traffic matrix diagonal [%d][%d] nonzero: %d messages / %d bytes",
				i, i, links.Messages[i][i], links.Bytes[i][i])
		}
	}
	return nil
}
