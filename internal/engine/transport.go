package engine

// Transport moves typed messages between machines. It is the only channel
// through which state crosses a partition boundary, and it owns the traffic
// accounting: message counts and wire bytes, cumulatively and per link.
//
// The runtime drives a transport in BSP phases: machines Send during a
// phase, the runtime calls Flip at the phase barrier, and receivers Drain
// the delivered batch in a later phase. Implementations must support
// concurrent Send calls from distinct senders (a machine only ever sends as
// itself), must preserve per-sender send order, and must present each
// drained inbox grouped by ascending sender id — the delivery-order
// contract the runtime's determinism rests on. This interface is the seam
// where a network transport, latency/loss injection and backpressure land;
// MemTransport is the in-process implementation.
type Transport interface {
	// Send enqueues m from machine from to machine to. The message becomes
	// drainable only after the next Flip.
	Send(from, to int, m Message)
	// Flip completes a phase: everything sent since the previous Flip is
	// delivered. The runtime calls it between phase barriers, never
	// concurrently with Send or Drain.
	Flip()
	// Drain removes and returns machine k's delivered inbox, grouped by
	// ascending sender id with per-sender order preserved. Only machine k
	// may drain inbox k. The returned slice is valid until the next
	// Drain(k) — implementations reuse the backing buffer, so callers
	// consume the batch before draining again (the runtime's phases do).
	Drain(k int) []Message
	// Totals returns the cumulative per-kind traffic counters.
	Totals() Totals
	// Traffic returns a copy of the cumulative per-link traffic matrix.
	Traffic() *TrafficMatrix
}

// Totals is cumulative transport traffic broken down by message kind.
type Totals struct {
	GatherMessages   int64
	ApplyMessages    int64
	ActivateMessages int64
	GatherBytes      int64
	ApplyBytes       int64
	ActivateBytes    int64
}

// Messages returns the total message count across kinds.
func (t Totals) Messages() int64 {
	return t.GatherMessages + t.ApplyMessages + t.ActivateMessages
}

// Bytes returns the total wire bytes across kinds.
func (t Totals) Bytes() int64 { return t.GatherBytes + t.ApplyBytes + t.ActivateBytes }

// Sub returns t - o field by field; the runtime uses it to attribute
// cumulative counters to individual supersteps.
func (t Totals) Sub(o Totals) Totals {
	return Totals{
		GatherMessages:   t.GatherMessages - o.GatherMessages,
		ApplyMessages:    t.ApplyMessages - o.ApplyMessages,
		ActivateMessages: t.ActivateMessages - o.ActivateMessages,
		GatherBytes:      t.GatherBytes - o.GatherBytes,
		ApplyBytes:       t.ApplyBytes - o.ApplyBytes,
		ActivateBytes:    t.ActivateBytes - o.ActivateBytes,
	}
}

// TrafficMatrix is the per-link traffic of a run: Messages[i][j] counts the
// messages machine i sent to machine j, Bytes[i][j] the wire bytes. The
// diagonal stays zero — machine-local state never touches the transport.
type TrafficMatrix struct {
	Messages [][]int64
	Bytes    [][]int64
}

// P returns the machine count of the matrix.
func (m *TrafficMatrix) P() int { return len(m.Messages) }

// TotalMessages sums the message count over every link.
func (m *TrafficMatrix) TotalMessages() int64 {
	var total int64
	for _, row := range m.Messages {
		for _, c := range row {
			total += c
		}
	}
	return total
}

// TotalBytes sums the wire bytes over every link.
func (m *TrafficMatrix) TotalBytes() int64 {
	var total int64
	for _, row := range m.Bytes {
		for _, c := range row {
			total += c
		}
	}
	return total
}

// MemTransport is the in-process Transport: double-buffered per-link queues
// with single-writer counters and no copying. Sends land in the "sending"
// buffer while receivers drain the "delivered" buffer, so a phase may send
// and drain concurrently without locks; Flip swaps the buffers at the phase
// barrier. Memory visibility across machines comes from the runtime's
// barrier (a channel handshake), not from the transport itself.
type MemTransport struct {
	p int
	// sending[from][to] and delivered[from][to] are the double-buffered
	// queues; each queue has exactly one writer (sender from, or receiver
	// to at drain time), so no locks are needed.
	sending   [][][]Message
	delivered [][][]Message
	// msgs[from][to] / bytes[from][to] are the per-link counters;
	// kindTotals[from] the per-sender per-kind counters. All single-writer.
	msgs      [][]int64
	bytes     [][]int64
	kindMsgs  [][numKinds]int64
	kindBytes [][numKinds]int64
	// drain[k] is inbox k's reusable drain buffer; each Drain(k) refills it
	// in place, honouring the interface's valid-until-next-Drain contract.
	drain [][]Message
}

// NewMemTransport returns an in-process transport for p machines.
func NewMemTransport(p int) *MemTransport {
	t := &MemTransport{
		p:         p,
		sending:   make([][][]Message, p),
		delivered: make([][][]Message, p),
		msgs:      make([][]int64, p),
		bytes:     make([][]int64, p),
		kindMsgs:  make([][numKinds]int64, p),
		kindBytes: make([][numKinds]int64, p),
		drain:     make([][]Message, p),
	}
	for i := 0; i < p; i++ {
		t.sending[i] = make([][]Message, p)
		t.delivered[i] = make([][]Message, p)
		t.msgs[i] = make([]int64, p)
		t.bytes[i] = make([]int64, p)
	}
	return t
}

// Send implements Transport.
func (t *MemTransport) Send(from, to int, m Message) {
	t.sending[from][to] = append(t.sending[from][to], m)
	sz := int64(m.WireSize())
	t.msgs[from][to]++
	t.bytes[from][to] += sz
	k := m.MessageKind()
	t.kindMsgs[from][k]++
	t.kindBytes[from][k] += sz
}

// Flip implements Transport.
func (t *MemTransport) Flip() {
	t.sending, t.delivered = t.delivered, t.sending
}

// Drain implements Transport. The batch is collected into inbox k's
// reusable buffer: once the first supersteps grow it to the inbox's
// high-water mark, steady-state drains allocate nothing.
func (t *MemTransport) Drain(k int) []Message {
	out := t.drain[k][:0]
	for from := 0; from < t.p; from++ {
		q := t.delivered[from][k]
		if len(q) == 0 {
			continue
		}
		out = append(out, q...)
		t.delivered[from][k] = q[:0]
	}
	t.drain[k] = out
	return out
}

// Totals implements Transport.
func (t *MemTransport) Totals() Totals {
	var out Totals
	for from := 0; from < t.p; from++ {
		out.GatherMessages += t.kindMsgs[from][KindGatherFlush]
		out.ApplyMessages += t.kindMsgs[from][KindApplyBroadcast]
		out.ActivateMessages += t.kindMsgs[from][KindActivate]
		out.GatherBytes += t.kindBytes[from][KindGatherFlush]
		out.ApplyBytes += t.kindBytes[from][KindApplyBroadcast]
		out.ActivateBytes += t.kindBytes[from][KindActivate]
	}
	return out
}

// Traffic implements Transport.
func (t *MemTransport) Traffic() *TrafficMatrix {
	out := &TrafficMatrix{
		Messages: make([][]int64, t.p),
		Bytes:    make([][]int64, t.p),
	}
	for i := 0; i < t.p; i++ {
		out.Messages[i] = append([]int64(nil), t.msgs[i]...)
		out.Bytes[i] = append([]int64(nil), t.bytes[i]...)
	}
	return out
}
