package engine

import (
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
)

// churn is a vertex program that never converges: every vertex stays active
// every superstep, the worst case the replication-factor traffic bound
// describes.
type churn struct{}

func (churn) Name() string                                         { return "churn" }
func (churn) Init(v graph.Vertex, degree int) float64              { return float64(v) }
func (churn) Gather(v, u graph.Vertex, uv float64, ud int) float64 { return uv }
func (churn) Sum(a, b float64) float64                             { return a + b }
func (churn) Apply(v graph.Vertex, old, g float64, d int) float64  { return g + 1 }
func (churn) Converged(old, new float64) bool                      { return false }

func roundRobin(g *graph.Graph, p int) *partition.Assignment {
	a := partition.MustNew(g.NumEdges(), p)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), id%p)
	}
	return a
}

// TestTrafficBound is the satellite property test: with every vertex active
// in every superstep, synchronisation traffic is exactly
// 2 * (TotalReplicas - Masters) messages per superstep — one gather flush up
// and one apply broadcast down per mirror — and no activation traffic at
// all, since no replica's activation ever deviates from its broadcast.
func TestTrafficBound(t *testing.T) {
	g := testGraph(3, 400, 1600)
	for _, p := range []int{2, 5, 8} {
		e, err := New(g, roundRobin(g, p))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		const steps = 6
		_, stats, err := e.Run(churn{}, steps)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if stats.Supersteps != steps {
			t.Fatalf("p=%d: ran %d supersteps, want %d", p, stats.Supersteps, steps)
		}
		mirrors := int64(stats.TotalReplicas - stats.Masters)
		for s, tot := range stats.PerStep {
			if tot.GatherMessages != mirrors {
				t.Errorf("p=%d step %d: gather messages = %d, want %d", p, s, tot.GatherMessages, mirrors)
			}
			if tot.ApplyMessages != mirrors {
				t.Errorf("p=%d step %d: apply messages = %d, want %d", p, s, tot.ApplyMessages, mirrors)
			}
			if tot.ActivateMessages != 0 {
				t.Errorf("p=%d step %d: activate messages = %d, want 0", p, s, tot.ActivateMessages)
			}
			if tot.Messages() != 2*mirrors {
				t.Errorf("p=%d step %d: total messages = %d, want %d", p, s, tot.Messages(), 2*mirrors)
			}
			if mirrors > 0 && tot.Bytes() <= 0 {
				t.Errorf("p=%d step %d: zero wire bytes with %d mirrors", p, s, mirrors)
			}
		}
		if got := stats.Messages(); got != 2*mirrors*steps {
			t.Errorf("p=%d: run total = %d messages, want %d", p, got, 2*mirrors*steps)
		}
	}
}

// TestPerStepSumsMatchTotals checks the per-superstep attribution and the
// per-link matrix agree with the cumulative counters, and that the matrix
// diagonal stays zero (machine-local state never touches the transport).
func TestPerStepSumsMatchTotals(t *testing.T) {
	g := testGraph(5, 300, 900)
	e, err := New(g, roundRobin(g, 6))
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := e.Run(NewPageRank(g.NumVertices(), 0.85, 1e-6), 20)
	if err != nil {
		t.Fatal(err)
	}
	var sum Totals
	for _, tot := range stats.PerStep {
		sum.GatherMessages += tot.GatherMessages
		sum.ApplyMessages += tot.ApplyMessages
		sum.ActivateMessages += tot.ActivateMessages
		sum.GatherBytes += tot.GatherBytes
		sum.ApplyBytes += tot.ApplyBytes
		sum.ActivateBytes += tot.ActivateBytes
	}
	if sum != (Totals{stats.GatherMessages, stats.ApplyMessages, stats.ActivateMessages,
		stats.GatherBytes, stats.ApplyBytes, stats.ActivateBytes}) {
		t.Errorf("per-step sums %+v do not match run totals", sum)
	}
	if stats.Links == nil || stats.Links.P() != 6 {
		t.Fatalf("traffic matrix missing or wrong size: %+v", stats.Links)
	}
	if got := stats.Links.TotalMessages(); got != stats.Messages() {
		t.Errorf("matrix total %d != stats total %d", got, stats.Messages())
	}
	if got := stats.Links.TotalBytes(); got != stats.Bytes() {
		t.Errorf("matrix bytes %d != stats bytes %d", got, stats.Bytes())
	}
	for i := 0; i < 6; i++ {
		if stats.Links.Messages[i][i] != 0 || stats.Links.Bytes[i][i] != 0 {
			t.Errorf("machine %d has diagonal traffic", i)
		}
	}
}

// TestSkipCapacity covers the new ValidateOptions.SkipCapacity field the
// engine relies on: a wildly unbalanced but complete assignment validates
// with it and fails without it.
func TestSkipCapacity(t *testing.T) {
	g := testGraph(9, 50, 150)
	a := partition.MustNew(g.NumEdges(), 4)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), 0) // everything on machine 0
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{}); err == nil {
		t.Fatal("unbalanced assignment validated without SkipCapacity")
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{SkipCapacity: true}); err != nil {
		t.Fatalf("SkipCapacity validation failed: %v", err)
	}
	if _, err := New(g, a); err != nil {
		t.Fatalf("engine rejected unbalanced assignment: %v", err)
	}
}

// TestCustomTransport checks RunWith drives a caller-supplied transport and
// lands its traffic in Stats.
func TestCustomTransport(t *testing.T) {
	g := testGraph(13, 100, 300)
	e, err := New(g, roundRobin(g, 3))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewMemTransport(3)
	_, stats, err := e.RunWith(churn{}, 4, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Totals(); got.Messages() != stats.Messages() {
		t.Errorf("transport totals %d != stats %d", got.Messages(), stats.Messages())
	}
}
