package engine

// Kind discriminates the typed messages machines exchange. Every unit of
// state that crosses a partition boundary is one of these; there is no
// other channel between machines.
type Kind uint8

const (
	// KindGatherFlush is a mirror -> master accumulator flush.
	KindGatherFlush Kind = iota
	// KindApplyBroadcast is a master -> mirror value broadcast.
	KindApplyBroadcast
	// KindActivate is an activation notice (edge holder -> master) or an
	// activation fan-out (master -> mirror).
	KindActivate
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindGatherFlush:
		return "gather"
	case KindApplyBroadcast:
		return "apply"
	case KindActivate:
		return "activate"
	default:
		return "unknown"
	}
}

// Message is one typed unit of inter-machine traffic. Senders own their
// messages: the runtime's reusable messages stay valid only until the
// sender's next superstep, so receivers must consume them in the phase they
// are drained.
type Message interface {
	// MessageKind identifies the message type for traffic accounting.
	MessageKind() Kind
	// WireSize is the bytes the message would occupy on a network link
	// (payload only; see DESIGN.md §10 for the accounting model).
	WireSize() int
}

// GatherFlush carries one mirror replica's gather contributions for one
// vertex to the vertex's master machine. Contribs[i] is the contribution of
// a local arc; Slots[i] is that arc's canonical slot — the arc's index in
// the vertex's globally sorted neighbour list. Slot addressing lets the
// master fold every contribution in a partitioning-independent order, which
// is what makes the runtime bit-identical to a sequential run even for
// non-associative floating-point reductions.
type GatherFlush struct {
	// MasterLocal is the vertex's local index on the master machine.
	MasterLocal int32
	// Slots holds the canonical slot of each contribution; parallel to
	// Contribs and sorted ascending.
	Slots []int32
	// Contribs holds the per-arc gather values.
	Contribs []float64
}

// MessageKind implements Message.
func (m *GatherFlush) MessageKind() Kind { return KindGatherFlush }

// WireSize implements Message: a 4-byte vertex reference, a 4-byte entry
// count, and a 12-byte (slot, contribution) pair per entry.
func (m *GatherFlush) WireSize() int { return 8 + 12*len(m.Contribs) }

// ApplyBroadcast carries a master's post-apply state for one vertex to one
// mirror: the new value, whether the vertex changed (did not converge) this
// superstep — which drives the receiver's scatter — and whether it stays
// active next superstep.
type ApplyBroadcast struct {
	// MirrorLocal is the vertex's local index on the receiving machine.
	MirrorLocal int32
	// Value is the freshly applied vertex value.
	Value float64
	// Changed reports the vertex did not converge; the receiver
	// scatter-activates its local neighbours.
	Changed bool
	// Active is the master's post-apply activation decision (before any
	// scatter reactivation).
	Active bool
}

// MessageKind implements Message.
func (m *ApplyBroadcast) MessageKind() Kind { return KindApplyBroadcast }

// WireSize implements Message: a 4-byte vertex reference, an 8-byte value
// and one packed flag byte.
func (m *ApplyBroadcast) WireSize() int { return 13 }

// Activate reactivates one vertex replica: machines send it to a vertex's
// master when a local scatter wakes a vertex the master may believe
// converged, and masters fan it out to mirrors so every replica agrees on
// the activation set before the next superstep.
type Activate struct {
	// Local is the vertex's local index on the receiving machine.
	Local int32
}

// MessageKind implements Message.
func (m *Activate) MessageKind() Kind { return KindActivate }

// WireSize implements Message: a 4-byte vertex reference.
func (m *Activate) WireSize() int { return 4 }
