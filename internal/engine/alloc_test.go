package engine

import (
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

// TestHotPathAllocs_Superstep is the cross-check named by the
// //graphpart:hotpath annotations on the five machine phases: after the
// transport queues grow to their high-water mark, a full superstep —
// gather, apply, scatter, activate, finalize across every machine —
// allocates nothing. The phases run synchronously here (the coordinator's
// loop without goroutines); the phase schedule is identical, only the
// barrier handshake is gone, so what AllocsPerRun sees is exactly the
// per-superstep machine and transport work.
func TestHotPathAllocs_Superstep(t *testing.T) {
	r := rng.New(7)
	b := graph.NewBuilder(32)
	for i := 1; i < 32; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex(r.Intn(i)))
	}
	for i := 0; i < 48; i++ {
		_ = b.AddEdge(graph.Vertex(r.Intn(32)), graph.Vertex(r.Intn(32)))
	}
	g := b.Build()
	const p = 3
	a := partition.MustNew(g.NumEdges(), p)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), id%p)
	}
	en, err := New(g, a)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewMemTransport(p)
	// Tolerance 0 keeps vertices active while values still change, so the
	// steady state being measured carries real message traffic.
	prog := NewPageRank(g.NumVertices(), 0.85, 0)
	for _, m := range en.machines {
		m.reset(prog, tr)
	}
	superstep := func() {
		for ph := 0; ph < numPhases; ph++ {
			for _, m := range en.machines {
				m.step(ph)
			}
			tr.Flip()
		}
	}
	for i := 0; i < 4; i++ {
		superstep() // grow queues and drain buffers to their high-water mark
	}
	if allocs := testing.AllocsPerRun(100, superstep); allocs != 0 {
		t.Fatalf("superstep allocates %.1f times per step", allocs)
	}
}
