package engine

import (
	"github.com/graphpart/graphpart/internal/graph"
)

// The five phases of one superstep. Every machine executes the same phase
// between two global barriers, and messages sent in one phase are drained
// in a later one, so no machine ever observes another machine mid-phase —
// the determinism guarantee of the runtime.
const (
	// phaseGather: every machine computes gather contributions for its
	// active local replicas; mirrors flush theirs to the master machine.
	phaseGather = iota
	// phaseApply: masters drain flushes, fold the canonical accumulator,
	// apply, and broadcast the new value to mirrors.
	phaseApply
	// phaseScatter: machines drain broadcasts, update mirror values, run
	// the local scatter, and send activation notices to masters of
	// vertices the master may believe converged.
	phaseScatter
	// phaseActivate: masters drain notices and fan activation out to
	// mirrors of vertices whose broadcast said "inactive".
	phaseActivate
	// phaseFinalize: machines drain fan-outs, promote nextActive to
	// active, and count their active masters for the termination check.
	phaseFinalize
	numPhases
)

// machine is one share-nothing partition runtime. It owns purely local
// state — local replica values, local adjacency, local activation — and the
// only way any of it crosses the partition boundary is a Message through
// the Transport. The coordinator never reads mutable machine state while
// the machine's goroutine runs a phase; the phase command/done channels
// provide the happens-before edges.
type machine struct {
	id   int
	tr   Transport
	prog Program

	// Immutable local topology, built once in New.

	// verts maps local index -> global vertex id.
	verts []graph.Vertex
	// adjNbr[i] lists the global neighbour ids of verts[i] over the edges
	// of this partition, sorted ascending.
	adjNbr [][]graph.Vertex
	// adjLocal[i][j] is the local index of adjNbr[i][j].
	adjLocal [][]int32
	// adjSlot[i][j] is the canonical slot of arc (verts[i], adjNbr[i][j]):
	// its index in the vertex's globally sorted neighbour list.
	adjSlot [][]int32
	// degree[i] is the global degree of verts[i].
	degree []int32
	// isMaster[i] reports whether this machine masters verts[i].
	isMaster []bool
	// masterMachine[i] / masterLidx[i] locate the master replica.
	masterMachine []int32
	masterLidx    []int32
	// mirrorMachine[i] / mirrorLidx[i] locate the mirrors of a mastered
	// vertex, sorted by machine id (nil for non-masters).
	mirrorMachine [][]int32
	mirrorLidx    [][]int32

	// Mutable per-run state, owned exclusively by this machine's goroutine
	// while a run is in flight.

	// value[i] is the local replica value of verts[i].
	value []float64
	// active[i] is this superstep's activation; nextActive accumulates the
	// next superstep's during apply/scatter/activate.
	active     []bool
	nextActive []bool
	// changed[i]: verts[i] did not converge this superstep (drives scatter).
	changed []bool
	// bcastActive[i]: for masters, the activation flag already broadcast
	// this superstep; a vertex reactivated beyond it needs a fan-out.
	bcastActive []bool
	// acc[i] is the master-side dense accumulator for verts[i], indexed by
	// canonical slot; reused every superstep (nil for non-masters).
	acc [][]float64
	// flush[i] is the reusable mirror->master flush for verts[i] (nil for
	// masters). Slots alias adjSlot; Contribs are refilled each superstep.
	flush []*GatherFlush
	// bcast[i] holds one reusable broadcast per mirror of a mastered vertex.
	bcast [][]*ApplyBroadcast
	// notice[i] is the reusable escalation notice for verts[i], addressed to
	// the master replica's local index (nil for locally-mastered vertices);
	// fan[i] holds one reusable activation fan-out per mirror of a mastered
	// vertex. Activate carries nothing but the immutable Local index, so
	// resending the same message every superstep is safe — the same reuse
	// contract flush and bcast rely on.
	notice []*Activate
	fan    [][]*Activate
	// activeMasters is the post-finalize count of active mastered vertices;
	// the coordinator reads it between supersteps to decide termination.
	activeMasters int
	// drained counts messages received this superstep; only maintained in
	// sanitizer builds (see invariants.go), read by the coordinator at the
	// superstep boundary.
	drained int64
}

// loop runs phases as they are commanded until cmds closes. One goroutine
// per machine executes it for the duration of a run.
func (m *machine) loop(cmds <-chan int, done chan<- struct{}) {
	for ph := range cmds {
		m.step(ph)
		done <- struct{}{}
	}
}

func (m *machine) step(ph int) {
	switch ph {
	case phaseGather:
		m.gather()
	case phaseApply:
		m.apply()
	case phaseScatter:
		m.scatter()
	case phaseActivate:
		m.activate()
	case phaseFinalize:
		m.finalize()
	}
}

// reset prepares the machine for a fresh run of prog over tr.
func (m *machine) reset(prog Program, tr Transport) {
	m.prog, m.tr = prog, tr
	m.activeMasters = 0
	for i, v := range m.verts {
		m.value[i] = prog.Init(v, int(m.degree[i]))
		// Every replica has at least one local edge, so every replicated
		// vertex starts active — the same initial frontier as the
		// sequential reference (degree > 0).
		m.active[i] = true
		m.nextActive[i] = false
		m.changed[i] = false
		m.bcastActive[i] = false
		if m.isMaster[i] {
			m.activeMasters++
		}
	}
}

// gather computes this machine's per-arc contributions for every active
// local replica. Masters write straight into their dense accumulator;
// mirrors fill their reusable flush and send it to the master machine.
//
//graphpart:hotpath test=TestHotPathAllocs_Superstep
func (m *machine) gather() {
	for i := range m.verts {
		if !m.active[i] {
			continue
		}
		v := m.verts[i]
		nbrs, locals, slots := m.adjNbr[i], m.adjLocal[i], m.adjSlot[i]
		if m.isMaster[i] {
			acc := m.acc[i]
			for j, u := range nbrs {
				l := locals[j]
				acc[slots[j]] = m.prog.Gather(v, u, m.value[l], int(m.degree[l]))
			}
		} else {
			f := m.flush[i]
			for j, u := range nbrs {
				l := locals[j]
				f.Contribs[j] = m.prog.Gather(v, u, m.value[l], int(m.degree[l]))
			}
			m.tr.Send(m.id, int(m.masterMachine[i]), f)
		}
	}
}

// apply drains mirror flushes into the accumulators, folds each active
// mastered vertex's accumulator in canonical slot order (bit-identical to a
// sequential fold over the sorted neighbour list), applies, and broadcasts
// the outcome to every mirror.
//
//graphpart:hotpath test=TestHotPathAllocs_Superstep
func (m *machine) apply() {
	for _, msg := range m.drainInbox() {
		f := msg.(*GatherFlush)
		acc := m.acc[f.MasterLocal]
		for j, s := range f.Slots {
			acc[s] = f.Contribs[j]
		}
	}
	for i := range m.verts {
		if !m.active[i] || !m.isMaster[i] {
			continue
		}
		v := m.verts[i]
		acc := m.acc[i]
		sum := acc[0]
		for _, c := range acc[1:] {
			sum = m.prog.Sum(sum, c)
		}
		old := m.value[i]
		nv := m.prog.Apply(v, old, sum, int(m.degree[i]))
		conv := m.prog.Converged(old, nv)
		m.value[i] = nv
		m.changed[i] = !conv
		m.bcastActive[i] = !conv
		m.nextActive[i] = !conv
		for mi, mm := range m.mirrorMachine[i] {
			b := m.bcast[i][mi]
			b.Value, b.Changed, b.Active = nv, !conv, !conv
			m.tr.Send(m.id, int(mm), b)
		}
	}
}

// scatter drains broadcasts (updating mirror values, changed flags and
// master-decided activation), then wakes the local neighbours of every
// changed replica. A wake of a vertex whose master may believe it inactive
// is escalated with an Activate notice to the master machine; the
// nextActive flag doubles as the per-machine dedup.
//
//graphpart:hotpath test=TestHotPathAllocs_Superstep
func (m *machine) scatter() {
	for _, msg := range m.drainInbox() {
		b := msg.(*ApplyBroadcast)
		i := b.MirrorLocal
		m.value[i] = b.Value
		m.changed[i] = b.Changed
		if b.Active {
			m.nextActive[i] = true
		}
	}
	for i := range m.verts {
		if !m.changed[i] {
			continue
		}
		for _, w := range m.adjLocal[i] {
			if m.nextActive[w] {
				continue
			}
			m.nextActive[w] = true
			if mk := m.masterMachine[w]; int(mk) != m.id {
				m.tr.Send(m.id, int(mk), m.notice[w])
			}
		}
	}
}

// activate drains notices at masters and fans activation out to the
// mirrors of every vertex that ended up active beyond what its broadcast
// said — so all replicas agree on the activation set before finalize.
//
//graphpart:hotpath test=TestHotPathAllocs_Superstep
func (m *machine) activate() {
	for _, msg := range m.drainInbox() {
		m.nextActive[msg.(*Activate).Local] = true
	}
	for i := range m.verts {
		if !m.isMaster[i] || !m.nextActive[i] || m.bcastActive[i] {
			continue
		}
		for mi, mm := range m.mirrorMachine[i] {
			m.tr.Send(m.id, int(mm), m.fan[i][mi])
		}
	}
}

// finalize drains activation fan-outs, promotes nextActive to active,
// clears the per-superstep flags and counts the active masters the
// coordinator uses for the termination check.
//
//graphpart:hotpath test=TestHotPathAllocs_Superstep
func (m *machine) finalize() {
	for _, msg := range m.drainInbox() {
		m.nextActive[msg.(*Activate).Local] = true
	}
	m.activeMasters = 0
	for i := range m.verts {
		m.active[i] = m.nextActive[i]
		m.nextActive[i] = false
		m.changed[i] = false
		m.bcastActive[i] = false
		if m.active[i] && m.isMaster[i] {
			m.activeMasters++
		}
	}
}
