package engine

import (
	"math"

	"github.com/graphpart/graphpart/internal/graph"
)

// PageRank is the canonical GAS vertex program: rank flows along edges with
// damping. On an undirected graph every edge carries rank both ways, and a
// vertex's outgoing mass splits over its degree.
type PageRank struct {
	// Damping is the damping factor (default 0.85 when zero).
	Damping float64
	// Tolerance stops a vertex once its rank moves less than this
	// (default 1e-9 when zero). Zero-degree handling: isolated vertices
	// keep their initial rank.
	Tolerance float64
	// N is the vertex count, needed for the teleport term; set by
	// NewPageRank.
	N int
}

// NewPageRank returns a PageRank program for a graph with n vertices.
func NewPageRank(n int, damping, tolerance float64) *PageRank {
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if tolerance <= 0 {
		tolerance = 1e-9
	}
	return &PageRank{Damping: damping, Tolerance: tolerance, N: n}
}

// Name implements Program.
func (p *PageRank) Name() string { return "pagerank" }

// Init implements Program.
func (p *PageRank) Init(_ graph.Vertex, _ int) float64 { return 1.0 / float64(p.N) }

// Gather implements Program: neighbour u contributes its rank split across
// its degree.
func (p *PageRank) Gather(_, _ graph.Vertex, uValue float64, uDegree int) float64 {
	if uDegree == 0 {
		return 0
	}
	return uValue / float64(uDegree)
}

// Sum implements Program.
func (p *PageRank) Sum(a, b float64) float64 { return a + b }

// Apply implements Program.
func (p *PageRank) Apply(_ graph.Vertex, _, gathered float64, _ int) float64 {
	return (1-p.Damping)/float64(p.N) + p.Damping*gathered
}

// Converged implements Program.
func (p *PageRank) Converged(old, new float64) bool {
	return math.Abs(old-new) < p.Tolerance
}

// SSSP computes single-source shortest paths with unit edge weights.
type SSSP struct {
	// Source is the source vertex.
	Source graph.Vertex
}

// Name implements Program.
func (s *SSSP) Name() string { return "sssp" }

// Init implements Program.
func (s *SSSP) Init(v graph.Vertex, _ int) float64 {
	if v == s.Source {
		return 0
	}
	return math.Inf(1)
}

// Gather implements Program: distance through neighbour u.
func (s *SSSP) Gather(_, _ graph.Vertex, uValue float64, _ int) float64 {
	return uValue + 1
}

// Sum implements Program: shortest wins.
func (s *SSSP) Sum(a, b float64) float64 { return math.Min(a, b) }

// Apply implements Program: keep the best of the old and gathered distance.
func (s *SSSP) Apply(_ graph.Vertex, old, gathered float64, _ int) float64 {
	return math.Min(old, gathered)
}

// Converged implements Program: distances only improve; a vertex is settled
// when unchanged.
func (s *SSSP) Converged(old, new float64) bool { return old == new }

// Components labels every vertex with the smallest vertex id reachable from
// it (connected-components by min-label propagation).
type Components struct{}

// Name implements Program.
func (c *Components) Name() string { return "components" }

// Init implements Program.
func (c *Components) Init(v graph.Vertex, _ int) float64 { return float64(v) }

// Gather implements Program.
func (c *Components) Gather(_, _ graph.Vertex, uValue float64, _ int) float64 { return uValue }

// Sum implements Program.
func (c *Components) Sum(a, b float64) float64 { return math.Min(a, b) }

// Apply implements Program.
func (c *Components) Apply(_ graph.Vertex, old, gathered float64, _ int) float64 {
	return math.Min(old, gathered)
}

// Converged implements Program.
func (c *Components) Converged(old, new float64) bool { return old == new }

// DegreeCount verifies the engine against ground truth: after one superstep
// every vertex's value equals its degree.
type DegreeCount struct{}

// Name implements Program.
func (d *DegreeCount) Name() string { return "degree-count" }

// Init implements Program.
func (d *DegreeCount) Init(_ graph.Vertex, _ int) float64 { return 0 }

// Gather implements Program: each incident edge contributes one.
func (d *DegreeCount) Gather(_, _ graph.Vertex, _ float64, _ int) float64 { return 1 }

// Sum implements Program.
func (d *DegreeCount) Sum(a, b float64) float64 { return a + b }

// Apply implements Program.
func (d *DegreeCount) Apply(_ graph.Vertex, _, gathered float64, _ int) float64 { return gathered }

// Converged implements Program: one superstep suffices.
func (d *DegreeCount) Converged(old, new float64) bool { return old == new }

// ReferencePageRank computes PageRank single-machine for verification.
func ReferencePageRank(g *graph.Graph, damping float64, iters int) []float64 {
	n := g.NumVertices()
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	for v := range cur {
		cur[v] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			var sum float64
			for _, u := range g.Neighbors(graph.Vertex(v)) {
				sum += cur[u] / float64(g.Degree(u))
			}
			next[v] = (1-damping)/float64(n) + damping*sum
		}
		cur, next = next, cur
	}
	return cur
}

// ReferenceSSSP computes unit-weight shortest paths by BFS.
func ReferenceSSSP(g *graph.Graph, src graph.Vertex) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	dist[src] = 0
	queue := []graph.Vertex{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if math.IsInf(dist[u], 1) {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}
