package engine

import "github.com/graphpart/graphpart/internal/obs"

// phaseSpanNames maps superstep phases to their trace span names.
var phaseSpanNames = [numPhases]string{
	phaseGather:   "engine.gather",
	phaseApply:    "engine.apply",
	phaseScatter:  "engine.scatter",
	phaseActivate: "engine.activate",
	phaseFinalize: "engine.finalize",
}

// PhaseName returns the trace span name of superstep phase ph
// ("engine.gather" .. "engine.finalize"), so other layers (the cluster
// worker loop) can label per-phase spans consistently with Run's own.
func PhaseName(ph int) string {
	if ph < 0 || ph >= numPhases {
		return "engine.phase"
	}
	return phaseSpanNames[ph]
}

// Cumulative runtime counters, fed from each run's final totals.
var (
	mEngineRuns       = obs.Default.Counter("engine.runs")
	mEngineSupersteps = obs.Default.Counter("engine.supersteps")
	mEngineMessages   = obs.Default.Counter("engine.messages")
	mEngineBytes      = obs.Default.Counter("engine.bytes")
)

// Host-side counters: a cluster worker drives its machine through
// MachineHost rather than Run, so these are what its process snapshot
// carries back to the coordinator for the machine-labelled merge.
var (
	mHostResets = obs.Default.Counter("engine.host.resets")
	mHostSteps  = obs.Default.Counter("engine.host.steps")
)

// recordRunMetrics publishes a finished run's stats to the metrics
// registry.
func recordRunMetrics(stats *Stats) {
	mEngineRuns.Add(1)
	mEngineSupersteps.Add(int64(stats.Supersteps))
	mEngineMessages.Add(stats.Messages())
	mEngineBytes.Add(stats.Bytes())
}
