package engine

import "github.com/graphpart/graphpart/internal/obs"

// phaseSpanNames maps superstep phases to their trace span names.
var phaseSpanNames = [numPhases]string{
	phaseGather:   "engine.gather",
	phaseApply:    "engine.apply",
	phaseScatter:  "engine.scatter",
	phaseActivate: "engine.activate",
	phaseFinalize: "engine.finalize",
}

// Cumulative runtime counters, fed from each run's final totals.
var (
	mEngineRuns       = obs.Default.Counter("engine.runs")
	mEngineSupersteps = obs.Default.Counter("engine.supersteps")
	mEngineMessages   = obs.Default.Counter("engine.messages")
	mEngineBytes      = obs.Default.Counter("engine.bytes")
)

// recordRunMetrics publishes a finished run's stats to the metrics
// registry.
func recordRunMetrics(stats *Stats) {
	mEngineRuns.Add(1)
	mEngineSupersteps.Add(int64(stats.Supersteps))
	mEngineMessages.Add(stats.Messages())
	mEngineBytes.Add(stats.Bytes())
}
