//go:build graphpart_invariants

package engine

import (
	"testing"
)

// TestEngineUnderSanitizer runs the GAS runtime with message accounting
// compiled in: every superstep must drain exactly what was sent, and the
// final traffic matrix must agree with the per-kind counters, or the run
// panics.
func TestEngineUnderSanitizer(t *testing.T) {
	g := testGraph(11, 200, 500)
	for _, p := range []int{2, 8} {
		e, err := New(g, partitioned(t, g, p))
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		_, stats, err := e.Run(NewPageRank(g.NumVertices(), 0.85, 1e-8), 25)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if stats.Supersteps == 0 || stats.Messages() == 0 {
			t.Fatalf("p=%d: run did nothing (steps=%d msgs=%d)", p, stats.Supersteps, stats.Messages())
		}
	}
}
