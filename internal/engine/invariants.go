package engine

import "github.com/graphpart/graphpart/internal/invariants"

// drainInbox is the machines' single drain point; in sanitizer builds it
// counts received messages so the coordinator can balance the books against
// the transport's send counters.
func (m *machine) drainInbox() []Message {
	msgs := m.tr.Drain(m.id)
	if invariants.Enabled {
		m.drained += int64(len(msgs))
	}
	return msgs
}

// assertStepBalanced checks that every message sent during a superstep was
// drained by its receiver within that superstep. The phase schedule
// guarantees this (each phase's sends are drained in a later phase before
// finalize ends), so an imbalance means a message was lost in the transport
// or delivered outside its phase — exactly the class of bug a transport
// implementation can introduce silently. The coordinator calls this between
// supersteps, after the finalize barrier, so machine counters are quiescent.
// No-op unless built with -tags graphpart_invariants.
func assertStepBalanced(machines []*machine, step int, delta Totals) {
	if !invariants.Enabled {
		return
	}
	var received int64
	for _, m := range machines {
		received += m.drained
		m.drained = 0
	}
	invariants.Assertf(received == delta.Messages(),
		"superstep %d: transport sent %d messages but machines drained %d", step, delta.Messages(), received)
}

// assertTrafficConsistent checks the run's per-link traffic matrix against
// the per-kind totals: the diagonal must be zero (machine-local state never
// touches the transport) and row/column sums must add up to the same grand
// totals as the per-kind counters. No-op unless built with
// -tags graphpart_invariants.
func assertTrafficConsistent(stats Stats) {
	if !invariants.Enabled {
		return
	}
	links := stats.Links
	if links == nil {
		return
	}
	for i := range links.Messages {
		invariants.Assertf(links.Messages[i][i] == 0 && links.Bytes[i][i] == 0,
			"traffic matrix diagonal [%d][%d] is nonzero: %d messages / %d bytes",
			i, i, links.Messages[i][i], links.Bytes[i][i])
	}
	invariants.Assertf(links.TotalMessages() == stats.Messages(),
		"traffic matrix totals %d messages but per-kind counters total %d",
		links.TotalMessages(), stats.Messages())
	invariants.Assertf(links.TotalBytes() == stats.Bytes(),
		"traffic matrix totals %d bytes but per-kind counters total %d",
		links.TotalBytes(), stats.Bytes())
}
