package gen

import (
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

func TestChungLuBasic(t *testing.T) {
	r := rng.New(1)
	cfg := ChungLuConfig{Vertices: 2000, TargetEdges: 10000, Exponent: 2.2}
	g := ChungLu(cfg, r)
	if g.NumVertices() != 2000 {
		t.Fatalf("V=%d", g.NumVertices())
	}
	// Realised edge count should be within 20% of target.
	if m := g.NumEdges(); m < 8000 || m > 12000 {
		t.Fatalf("edge count %d too far from target 10000", m)
	}
}

func TestChungLuDeterministic(t *testing.T) {
	cfg := ChungLuConfig{Vertices: 500, TargetEdges: 2000, Exponent: 2.0}
	g1 := ChungLu(cfg, rng.New(7))
	g2 := ChungLu(cfg, rng.New(7))
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("ChungLu not deterministic")
	}
	for i := 0; i < g1.NumEdges(); i++ {
		if g1.Edge(graph.EdgeID(i)) != g2.Edge(graph.EdgeID(i)) {
			t.Fatal("ChungLu edge sets differ for same seed")
		}
	}
}

func TestChungLuSkewedDegrees(t *testing.T) {
	g := ChungLu(ChungLuConfig{Vertices: 5000, TargetEdges: 25000, Exponent: 2.1}, rng.New(3))
	s := graph.ComputeStats(g)
	if s.DegreeGini < 0.3 {
		t.Fatalf("power-law graph should be skewed, gini=%.2f", s.DegreeGini)
	}
	if s.MaxDegree < 20 {
		t.Fatalf("expected a heavy tail, max degree %d", s.MaxDegree)
	}
}

func TestChungLuDegenerate(t *testing.T) {
	if g := ChungLu(ChungLuConfig{Vertices: 0, TargetEdges: 10}, rng.New(1)); g.NumVertices() != 0 {
		t.Fatal("empty config should give empty graph")
	}
	if g := ChungLu(ChungLuConfig{Vertices: 5, TargetEdges: 0}, rng.New(1)); g.NumEdges() != 0 {
		t.Fatal("zero target edges should give edgeless graph")
	}
	if g := ChungLu(ChungLuConfig{Vertices: 1, TargetEdges: 5}, rng.New(1)); g.NumEdges() != 0 {
		t.Fatal("single vertex cannot have edges")
	}
}

func TestErdosRenyiExactCount(t *testing.T) {
	g := ErdosRenyi(100, 500, rng.New(5))
	if g.NumEdges() != 500 {
		t.Fatalf("G(n,m) produced %d edges, want 500", g.NumEdges())
	}
}

func TestErdosRenyiSaturates(t *testing.T) {
	// Request more edges than possible: complete graph.
	g := ErdosRenyi(5, 100, rng.New(5))
	if g.NumEdges() != 10 {
		t.Fatalf("overfull G(5,100) gave %d edges, want 10 (K5)", g.NumEdges())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(1000, 3, rng.New(2))
	if g.NumVertices() != 1000 {
		t.Fatalf("V=%d", g.NumVertices())
	}
	// Roughly 3 edges per vertex after the seed clique.
	if m := g.NumEdges(); m < 2500 || m > 3100 {
		t.Fatalf("BA edges %d outside expected range", m)
	}
	// Preferential attachment must create hubs.
	if g.MaxDegree() < 20 {
		t.Fatalf("BA max degree %d, expected hubs", g.MaxDegree())
	}
	// BA graphs are connected by construction.
	_, count := graph.ConnectedComponents(g)
	if count != 1 {
		t.Fatalf("BA graph has %d components, want 1", count)
	}
}

func TestBarabasiAlbertSmall(t *testing.T) {
	if g := BarabasiAlbert(0, 2, rng.New(1)); g.NumVertices() != 0 {
		t.Fatal("BA(0) should be empty")
	}
	if g := BarabasiAlbert(1, 2, rng.New(1)); g.NumEdges() != 0 {
		t.Fatal("BA(1) should be edgeless")
	}
	g := BarabasiAlbert(10, 100, rng.New(1))
	if g.NumVertices() != 10 {
		t.Fatal("BA with huge m should still work")
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(RMATConfig{ScaleLog2: 10, Edges: 8000}, rng.New(4))
	if g.NumVertices() != 1024 {
		t.Fatalf("V=%d, want 1024", g.NumVertices())
	}
	if g.NumEdges() == 0 || g.NumEdges() > 8000 {
		t.Fatalf("RMAT edges %d", g.NumEdges())
	}
	s := graph.ComputeStats(g)
	if s.DegreeGini < 0.2 {
		t.Fatalf("RMAT should be skewed, gini %.2f", s.DegreeGini)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(500, 6, 0.1, rng.New(6))
	if g.NumVertices() != 500 {
		t.Fatalf("V=%d", g.NumVertices())
	}
	// Ring lattice with k=6 has ~3n edges, rewiring only collapses a few.
	if m := g.NumEdges(); m < 1400 || m > 1500 {
		t.Fatalf("WS edges %d, want ~1500", m)
	}
	// Low beta keeps high clustering.
	if c := graph.GlobalClusteringCoefficient(g); c < 0.3 {
		t.Fatalf("WS clustering %.2f, want high", c)
	}
	if g := WattsStrogatz(2, 2, 0.5, rng.New(1)); g.NumEdges() != 0 {
		t.Fatal("degenerate WS should be edgeless")
	}
}

func TestPlantedCommunitiesStructure(t *testing.T) {
	cfg := CommunityConfig{Vertices: 600, Communities: 10, TargetEdges: 6000, IntraFraction: 0.8}
	g := PlantedCommunities(cfg, rng.New(8))
	if g.NumVertices() != 600 {
		t.Fatalf("V=%d", g.NumVertices())
	}
	if m := g.NumEdges(); m < 5000 {
		t.Fatalf("community graph badly undershot edges: %d", m)
	}
	// Community graphs should have much higher clustering than a random
	// graph of the same density.
	er := ErdosRenyi(600, g.NumEdges(), rng.New(8))
	cg := graph.GlobalClusteringCoefficient(g)
	ce := graph.GlobalClusteringCoefficient(er)
	if cg < 2*ce {
		t.Fatalf("planted communities clustering %.3f not above random %.3f", cg, ce)
	}
}

func TestCollaborationStructure(t *testing.T) {
	cfg := CollabConfig{Authors: 1200, TargetEdges: 12000, MeanAuthorsPerPaper: 4.5, ProlificExponent: 0.75}
	g := Collaboration(cfg, rng.New(9))
	if g.NumVertices() != 1200 {
		t.Fatalf("V=%d", g.NumVertices())
	}
	if m := g.NumEdges(); m < 11000 {
		t.Fatalf("collab graph undershot: %d", m)
	}
	// Clique unions imply clustering far above a random graph of equal
	// density (prolific-author overlap dilutes it below a pure clique
	// union, so compare against the ER baseline rather than a constant).
	cg := graph.GlobalClusteringCoefficient(g)
	ce := graph.GlobalClusteringCoefficient(ErdosRenyi(1200, g.NumEdges(), rng.New(9)))
	if cg < 5*ce || cg < 0.05 {
		t.Fatalf("collaboration clustering %.3f not well above random %.3f", cg, ce)
	}
}

func TestGenealogyStructure(t *testing.T) {
	cfg := GenealogyConfig{People: 5000, TargetEdges: 8150, Trees: 40, MaxChildren: 8}
	g := Genealogy(cfg, rng.New(10))
	if g.NumVertices() != 5000 {
		t.Fatalf("V=%d", g.NumVertices())
	}
	if g.NumEdges() != 8150 {
		t.Fatalf("E=%d, want exactly 8150", g.NumEdges())
	}
	// Tree-like: low clustering, large diameter estimate.
	if c := graph.GlobalClusteringCoefficient(g); c > 0.1 {
		t.Fatalf("genealogy clustering %.3f too high for tree-like graph", c)
	}
	// Tree-like structure implies diameters well beyond a dense graph's
	// 2-3, even though patriarch hubs keep generations shallow.
	if d := graph.Diameter2Sweep(g, 0); d < 5 {
		t.Fatalf("genealogy diameter estimate %d, expected long paths", d)
	}
}

func TestAdjustEdgeCountTrim(t *testing.T) {
	g := ErdosRenyi(200, 2000, rng.New(11))
	out := AdjustEdgeCount(g, 1500, rng.New(12))
	if out.NumEdges() != 1500 {
		t.Fatalf("trim gave %d edges", out.NumEdges())
	}
	if out.NumVertices() != 200 {
		t.Fatalf("trim changed vertex count to %d", out.NumVertices())
	}
	// Every kept edge must exist in the original.
	for _, e := range out.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("trim invented edge %+v", e)
		}
	}
}

func TestAdjustEdgeCountTopUp(t *testing.T) {
	g := ErdosRenyi(200, 1000, rng.New(13))
	out := AdjustEdgeCount(g, 1400, rng.New(14))
	if out.NumEdges() != 1400 {
		t.Fatalf("top-up gave %d edges", out.NumEdges())
	}
	// Every original edge must survive.
	for _, e := range g.Edges() {
		if !out.HasEdge(e.U, e.V) {
			t.Fatalf("top-up lost edge %+v", e)
		}
	}
}

func TestAdjustEdgeCountNoop(t *testing.T) {
	g := ErdosRenyi(50, 100, rng.New(15))
	if out := AdjustEdgeCount(g, 100, rng.New(16)); out != g {
		t.Fatal("exact count should return the same graph")
	}
	// Infeasible targets are left unchanged.
	if out := AdjustEdgeCount(g, 100000, rng.New(16)); out != g {
		t.Fatal("infeasible target should return the same graph")
	}
	if out := AdjustEdgeCount(g, -1, rng.New(16)); out != g {
		t.Fatal("negative target should return the same graph")
	}
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 9 {
		t.Fatalf("registry has %d datasets, want 9", len(ds))
	}
	for i, d := range ds {
		if d.Notation == "" || d.Name == "" || d.Family == "" {
			t.Fatalf("dataset %d metadata incomplete: %+v", i, d)
		}
		if d.Vertices <= 0 || d.Edges <= 0 {
			t.Fatalf("dataset %s has bad sizes", d.Notation)
		}
		if d.String() == "" {
			t.Fatalf("dataset %s empty String()", d.Notation)
		}
	}
	// G1-G8 must match the paper's sizes exactly; G9 is 10% scaled.
	for _, d := range ds[:8] {
		if d.Vertices != d.PaperVertices || d.Edges != d.PaperEdges {
			t.Fatalf("%s sizes %d/%d differ from paper %d/%d",
				d.Notation, d.Vertices, d.Edges, d.PaperVertices, d.PaperEdges)
		}
	}
	if g9 := ds[8]; g9.Vertices != g9.PaperVertices/10 {
		t.Fatalf("G9 should be 10%% scale: %d vs %d", g9.Vertices, g9.PaperVertices)
	}
}

// TestDatasetGenerateSmall generates the two smallest datasets end to end and
// checks exact sizes; the full set is exercised by the experiment harness.
func TestDatasetGenerateSmall(t *testing.T) {
	for _, notation := range []string{"G1", "G2"} {
		d, err := DatasetByNotation(notation)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Generate(42)
		if g.NumVertices() != d.Vertices || g.NumEdges() != d.Edges {
			t.Fatalf("%s: generated %d/%d, want %d/%d",
				notation, g.NumVertices(), g.NumEdges(), d.Vertices, d.Edges)
		}
		// Determinism.
		g2 := d.Generate(42)
		if g2.NumEdges() != g.NumEdges() || g2.Edge(0) != g.Edge(0) {
			t.Fatalf("%s: not deterministic", notation)
		}
	}
}

func TestDatasetByNotationUnknown(t *testing.T) {
	if _, err := DatasetByNotation("G99"); err == nil {
		t.Fatal("unknown notation accepted")
	}
}

func TestSmallDatasets(t *testing.T) {
	ds := SmallDatasets()
	if len(ds) != 9 {
		t.Fatalf("%d small datasets", len(ds))
	}
	for _, d := range ds {
		g := d.Generate(1)
		if g.NumVertices() != d.Vertices || g.NumEdges() != d.Edges {
			t.Fatalf("%s: %d/%d, want %d/%d", d.Notation,
				g.NumVertices(), g.NumEdges(), d.Vertices, d.Edges)
		}
	}
}

func BenchmarkChungLu100k(b *testing.B) {
	cfg := ChungLuConfig{Vertices: 20000, TargetEdges: 100000, Exponent: 2.1}
	for i := 0; i < b.N; i++ {
		ChungLu(cfg, rng.New(uint64(i)))
	}
}

func BenchmarkGenealogy(b *testing.B) {
	cfg := GenealogyConfig{People: 50000, TargetEdges: 81500, Trees: 200, MaxChildren: 8}
	for i := 0; i < b.N; i++ {
		Genealogy(cfg, rng.New(uint64(i)))
	}
}
