package gen

import (
	"sort"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

// ErdosRenyi generates G(n, m): exactly m distinct uniform random edges
// (fewer if m exceeds the number of possible edges).
func ErdosRenyi(n, m int, r *rng.RNG) *graph.Graph {
	b := graph.NewBuilder(n)
	if n < 2 {
		return b.Build()
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		m = int(maxEdges)
	}
	seen := make(map[uint64]struct{}, m)
	for len(seen) < m {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		_ = b.AddEdge(u, v)
	}
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment graph: vertices arrive
// one at a time and connect to edgesPerVertex existing vertices chosen
// proportionally to degree (with replacement collapsed, so early vertices
// may receive slightly fewer edges).
func BarabasiAlbert(n, edgesPerVertex int, r *rng.RNG) *graph.Graph {
	if edgesPerVertex < 1 {
		edgesPerVertex = 1
	}
	b := graph.NewBuilder(maxInt(n, 0))
	if n <= 1 {
		return b.Build()
	}
	// targets holds one entry per edge endpoint, so uniform sampling from
	// it is degree-proportional sampling.
	targets := make([]graph.Vertex, 0, 2*n*edgesPerVertex)
	// Seed with a small clique so early attachment has somewhere to go.
	seed := minInt(edgesPerVertex+1, n)
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			_ = b.AddEdge(graph.Vertex(u), graph.Vertex(v))
			targets = append(targets, graph.Vertex(u), graph.Vertex(v))
		}
	}
	for v := seed; v < n; v++ {
		chosen := map[graph.Vertex]struct{}{}
		for len(chosen) < edgesPerVertex && len(chosen) < v {
			var t graph.Vertex
			if len(targets) == 0 {
				t = graph.Vertex(r.Intn(v))
			} else {
				t = targets[r.Intn(len(targets))]
			}
			if int(t) == v {
				continue
			}
			chosen[t] = struct{}{}
		}
		// Append in sorted order: targets feeds later index-addressed
		// sampling, so map-iteration order here would make the whole
		// generator nondeterministic across runs (found by GL001).
		picked := make([]graph.Vertex, 0, len(chosen))
		for t := range chosen {
			picked = append(picked, t) //lint:ignore GL001 sorted on the next line
		}
		sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
		for _, t := range picked {
			_ = b.AddEdge(graph.Vertex(v), t)
			targets = append(targets, graph.Vertex(v), t)
		}
	}
	return b.Build()
}

// RMATConfig parameterises an R-MAT (recursive matrix) generator.
type RMATConfig struct {
	// ScaleLog2 is log2 of the vertex count (n = 1<<ScaleLog2).
	ScaleLog2 int
	// Edges is the number of edge samples drawn; the realised simple
	// graph has fewer edges after dedup.
	Edges int
	// A, B, C are the recursive quadrant probabilities; D = 1-A-B-C.
	// The Graph500 defaults (0.57, 0.19, 0.19) apply when all are zero.
	A, B, C float64
}

// RMAT generates a Kronecker-like power-law graph by recursive quadrant
// descent.
func RMAT(cfg RMATConfig, r *rng.RNG) *graph.Graph {
	if cfg.A == 0 && cfg.B == 0 && cfg.C == 0 {
		cfg.A, cfg.B, cfg.C = 0.57, 0.19, 0.19
	}
	n := 1 << cfg.ScaleLog2
	b := graph.NewBuilder(n)
	for i := 0; i < cfg.Edges; i++ {
		u, v := 0, 0
		for bit := 0; bit < cfg.ScaleLog2; bit++ {
			f := r.Float64()
			switch {
			case f < cfg.A:
				// top-left: no bits set
			case f < cfg.A+cfg.B:
				v |= 1 << bit
			case f < cfg.A+cfg.B+cfg.C:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		_ = b.AddEdge(graph.Vertex(u), graph.Vertex(v))
	}
	return b.Build()
}

// WattsStrogatz generates a small-world ring lattice: n vertices each
// connected to k nearest neighbours (k even), with each edge rewired to a
// uniform random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, r *rng.RNG) *graph.Graph {
	b := graph.NewBuilder(maxInt(n, 0))
	if n < 3 || k < 2 {
		return b.Build()
	}
	if k >= n {
		k = n - 1
	}
	half := k / 2
	for u := 0; u < n; u++ {
		for j := 1; j <= half; j++ {
			v := (u + j) % n
			if r.Float64() < beta {
				// Rewire to a random non-self target.
				for tries := 0; tries < 8; tries++ {
					w := r.Intn(n)
					if w != u {
						v = w
						break
					}
				}
			}
			_ = b.AddEdge(graph.Vertex(u), graph.Vertex(v))
		}
	}
	return b.Build()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
