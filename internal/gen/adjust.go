package gen

import (
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

// edgeAccum wraps a graph.Builder with a distinct-edge set so generators can
// count realised (deduplicated) edges while generating.
type edgeAccum struct {
	b    *graph.Builder
	seen map[uint64]struct{}
}

func newEdgeAccum(numVertices int) *edgeAccum {
	return &edgeAccum{
		b:    graph.NewBuilder(numVertices),
		seen: make(map[uint64]struct{}),
	}
}

func edgeKey(u, v graph.Vertex) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// add records the edge and reports whether it was new (not a duplicate or
// self-loop).
func (a *edgeAccum) add(u, v graph.Vertex) bool {
	if u == v {
		return false
	}
	key := edgeKey(u, v)
	if _, dup := a.seen[key]; dup {
		return false
	}
	if err := a.b.AddEdge(u, v); err != nil {
		return false
	}
	a.seen[key] = struct{}{}
	return true
}

func (a *edgeAccum) count() int { return len(a.seen) }

func (a *edgeAccum) build() *graph.Graph { return a.b.Build() }

// AdjustEdgeCount returns a graph with exactly target edges, derived from g:
// if g has too many edges, a uniform random subset is dropped; if too few,
// random edges between existing vertices are added (biased toward higher-
// degree vertices to minimally perturb the degree distribution). Returns g
// unchanged when the count already matches or the target is infeasible.
func AdjustEdgeCount(g *graph.Graph, target int, r *rng.RNG) *graph.Graph {
	m := g.NumEdges()
	n := g.NumVertices()
	if m == target || n < 2 {
		return g
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(target) > maxEdges || target < 0 {
		return g
	}
	if m > target {
		// Drop a random subset: keep `target` edges chosen uniformly.
		keep := r.Perm(m)[:target]
		b := graph.NewBuilder(n)
		for _, id := range keep {
			e := g.Edge(graph.EdgeID(id))
			_ = b.AddEdge(e.U, e.V)
		}
		return b.Build()
	}
	// Top up: sample endpoints degree-proportionally (plus one smoothing so
	// isolated vertices remain reachable).
	acc := newEdgeAccum(n)
	for _, e := range g.Edges() {
		acc.add(e.U, e.V)
	}
	// Endpoint pool: each vertex appears deg(v)+1 times.
	pool := make([]graph.Vertex, 0, 2*m+n)
	for v := 0; v < n; v++ {
		reps := g.Degree(graph.Vertex(v)) + 1
		for i := 0; i < reps; i++ {
			pool = append(pool, graph.Vertex(v))
		}
	}
	guard := 0
	for acc.count() < target && guard < 100*(target-m)+10000 {
		guard++
		u := pool[r.Intn(len(pool))]
		v := pool[r.Intn(len(pool))]
		acc.add(u, v)
	}
	return acc.build()
}
