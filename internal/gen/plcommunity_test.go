package gen

import (
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

func TestPLCBasic(t *testing.T) {
	cfg := PowerLawCommunityConfig{
		Vertices: 3000, TargetEdges: 15000, Exponent: 2.1, IntraFraction: 0.55,
	}
	g := PowerLawCommunities(cfg, rng.New(1))
	if g.NumVertices() != 3000 {
		t.Fatalf("V=%d", g.NumVertices())
	}
	if m := g.NumEdges(); m < 14000 || m > 15000 {
		t.Fatalf("E=%d too far from 15000", m)
	}
}

func TestPLCDegenerate(t *testing.T) {
	if g := PowerLawCommunities(PowerLawCommunityConfig{Vertices: 1, TargetEdges: 5}, rng.New(1)); g.NumEdges() != 0 {
		t.Fatal("single vertex produced edges")
	}
	if g := PowerLawCommunities(PowerLawCommunityConfig{Vertices: 100, TargetEdges: 0}, rng.New(1)); g.NumEdges() != 0 {
		t.Fatal("zero target produced edges")
	}
}

func TestPLCDeterministic(t *testing.T) {
	cfg := PowerLawCommunityConfig{Vertices: 500, TargetEdges: 3000, Exponent: 2.0}
	g1 := PowerLawCommunities(cfg, rng.New(7))
	g2 := PowerLawCommunities(cfg, rng.New(7))
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("not deterministic")
	}
	for i := 0; i < g1.NumEdges(); i++ {
		if g1.Edge(graph.EdgeID(i)) != g2.Edge(graph.EdgeID(i)) {
			t.Fatal("edge sets differ for same seed")
		}
	}
}

func TestPLCHasPowerLawTail(t *testing.T) {
	g := PowerLawCommunities(PowerLawCommunityConfig{
		Vertices: 5000, TargetEdges: 25000, Exponent: 2.1, IntraFraction: 0.55,
	}, rng.New(3))
	s := graph.ComputeStats(g)
	if s.DegreeGini < 0.3 {
		t.Fatalf("degree gini %.2f too uniform for a power law", s.DegreeGini)
	}
	if s.MaxDegree < 30 {
		t.Fatalf("max degree %d, expected hubs", s.MaxDegree)
	}
}

func TestPLCCommunitiesConcentrateEdges(t *testing.T) {
	// The whole point of the hybrid: with the same degree-weighted edge
	// sampling, turning the intra fraction on concentrates wedges inside
	// communities. Compare against the same generator with IntraFraction
	// driven to a tiny value (near-pure Chung-Lu sampling) — the global
	// coefficient of pure Chung-Lu is confounded by its dense hub core, so
	// comparing within one code path isolates the community effect.
	at := func(frac float64) float64 {
		g := PowerLawCommunities(PowerLawCommunityConfig{
			Vertices: 3000, TargetEdges: 15000, Exponent: 2.1,
			Communities: 30, IntraFraction: frac,
		}, rng.New(5))
		return graph.GlobalClusteringCoefficient(g)
	}
	withComms, without := at(0.55), at(0.01)
	if withComms <= without {
		t.Fatalf("communities did not raise clustering: %.4f vs %.4f", withComms, without)
	}
}

func TestPLCIntraFractionMatters(t *testing.T) {
	// Higher intra fraction => higher clustering, all else equal.
	at := func(frac float64) float64 {
		g := PowerLawCommunities(PowerLawCommunityConfig{
			Vertices: 2000, TargetEdges: 10000, Exponent: 2.1, IntraFraction: frac,
		}, rng.New(9))
		return graph.GlobalClusteringCoefficient(g)
	}
	lo, hi := at(0.2), at(0.8)
	if hi <= lo {
		t.Fatalf("intra 0.8 clustering %.4f not above intra 0.2 %.4f", hi, lo)
	}
}
