package gen

import (
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

// PowerLawCommunityConfig parameterises the hybrid generator used for the
// social-network analogues (Wiki-Vote, Enron, Slashdot, Epinions): degrees
// follow a power law (as in Chung-Lu) AND edges concentrate inside latent
// communities, matching the combination of heavy-tailed degrees and high
// local clustering that real social graphs exhibit. A pure Chung-Lu graph
// has no community structure, which would understate what locality-aware
// partitioners (TLP, METIS) can exploit.
type PowerLawCommunityConfig struct {
	// Vertices is the vertex count n.
	Vertices int
	// TargetEdges is the desired edge count.
	TargetEdges int
	// Exponent is the power-law degree exponent gamma.
	Exponent float64
	// Communities is the number of latent communities; zero picks
	// max(16, n/150).
	Communities int
	// IntraFraction is the fraction of edges drawn inside a community
	// (default 0.55).
	IntraFraction float64
}

// PowerLawCommunities generates the hybrid graph: both endpoint choices are
// degree-weighted (Chung-Lu style), but IntraFraction of the edges pick both
// endpoints from one community.
func PowerLawCommunities(cfg PowerLawCommunityConfig, r *rng.RNG) *graph.Graph {
	n := cfg.Vertices
	acc := newEdgeAccum(maxInt(n, 0))
	if n < 2 || cfg.TargetEdges <= 0 {
		return acc.build()
	}
	comms := cfg.Communities
	if comms <= 0 {
		comms = maxInt(16, n/150)
	}
	if comms > n {
		comms = n
	}
	intraFrac := cfg.IntraFraction
	if intraFrac <= 0 {
		intraFrac = 0.55
	}
	w := powerLawWeights(n, cfg.TargetEdges, cfg.Exponent, 0)
	// Random community assignment; hubs scatter across communities as in
	// real networks (each forum/board has its own heavy posters).
	commOf := make([]int32, n)
	perm := r.Perm(n)
	for i, v := range perm {
		commOf[v] = int32(i % comms)
	}
	members := make([][]int32, comms)
	for v := 0; v < n; v++ {
		members[commOf[v]] = append(members[commOf[v]], int32(v))
	}
	// Cumulative weights for global and per-community sampling.
	globalCum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += w[i]
		globalCum[i] = total
	}
	commCum := make([][]float64, comms)
	commTotal := make([]float64, comms)
	commPairW := make([]float64, comms) // ~ (sum w)^2, community mass
	pairTotal := 0.0
	for c := 0; c < comms; c++ {
		cum := make([]float64, len(members[c]))
		t := 0.0
		for i, v := range members[c] {
			t += w[v]
			cum[i] = t
		}
		commCum[c] = cum
		commTotal[c] = t
		commPairW[c] = t * t
		pairTotal += commPairW[c]
	}
	commPick := make([]float64, comms)
	run := 0.0
	for c := 0; c < comms; c++ {
		run += commPairW[c]
		commPick[c] = run
	}
	sampleGlobal := func() int32 {
		return int32(searchCum(globalCum, r.Float64()*total))
	}
	sampleIn := func(c int) int32 {
		return members[c][searchCum(commCum[c], r.Float64()*commTotal[c])]
	}
	intra := int(float64(cfg.TargetEdges) * clamp01(intraFrac))
	guard := 0
	maxGuard := 60*cfg.TargetEdges + 1000
	for acc.count() < intra && guard < maxGuard {
		guard++
		c := searchCum(commPick, r.Float64()*pairTotal)
		if len(members[c]) < 2 {
			continue
		}
		acc.add(graph.Vertex(sampleIn(c)), graph.Vertex(sampleIn(c)))
	}
	for acc.count() < cfg.TargetEdges && guard < maxGuard {
		guard++
		acc.add(graph.Vertex(sampleGlobal()), graph.Vertex(sampleGlobal()))
	}
	return acc.build()
}
