package gen

import (
	"math"
	"sort"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

// CommunityConfig parameterises a planted-community graph: vertices are
// divided into communities and edges fall inside a community with much
// higher probability than across. Models the email-Eu-core dataset (EU
// research-institution departments).
type CommunityConfig struct {
	// Vertices is the vertex count n.
	Vertices int
	// Communities is the number of planted communities; sizes are drawn
	// from a skewed distribution (real departments vary widely).
	Communities int
	// TargetEdges is the desired edge count (realised count is random
	// around it; combine with AdjustEdgeCount for exactness).
	TargetEdges int
	// IntraFraction is the fraction of edges that should be
	// intra-community (e.g. 0.7-0.9 for organisational networks).
	IntraFraction float64
}

// PlantedCommunities generates a graph with dense communities and a sparse
// random background between them.
func PlantedCommunities(cfg CommunityConfig, r *rng.RNG) *graph.Graph {
	n := cfg.Vertices
	acc := newEdgeAccum(maxInt(n, 0))
	if n < 2 || cfg.TargetEdges <= 0 {
		return acc.build()
	}
	c := cfg.Communities
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	// Mildly skewed community sizes: size_i proportional to (i+1)^-0.5.
	// A steeper skew would starve small communities of vertex pairs and
	// make high intra-edge targets infeasible on dense graphs like G1.
	sizes := make([]int, c)
	weights := make([]float64, c)
	wsum := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -0.5)
		wsum += weights[i]
	}
	assigned := 0
	for i := range sizes {
		sizes[i] = maxInt(1, int(float64(n)*weights[i]/wsum))
		assigned += sizes[i]
	}
	// Fix rounding drift on the largest community.
	sizes[0] += n - assigned
	if sizes[0] < 1 {
		sizes[0] = 1
	}
	// members[i] is the contiguous vertex range of community i.
	start := make([]int, c+1)
	for i := 0; i < c; i++ {
		start[i+1] = start[i] + sizes[i]
	}
	intra := int(float64(cfg.TargetEdges) * clamp01(cfg.IntraFraction))
	inter := cfg.TargetEdges - intra
	// Intra edges: pick a community proportional to size^2 (dense blocks
	// scale with possible pairs), then a uniform pair inside it.
	cum := make([]float64, c)
	total := 0.0
	for i, s := range sizes {
		pairs := float64(s) * float64(s-1) / 2
		total += pairs
		cum[i] = total
	}
	added := 0
	for attempts := 0; added < intra && attempts < 20*intra+100; attempts++ {
		ci := searchCum(cum, r.Float64()*total)
		s := sizes[ci]
		if s < 2 {
			continue
		}
		u := start[ci] + r.Intn(s)
		v := start[ci] + r.Intn(s)
		if acc.add(graph.Vertex(u), graph.Vertex(v)) {
			added++
		}
	}
	// Inter edges: uniform random cross-community pairs.
	added = 0
	for attempts := 0; added < inter && attempts < 20*inter+100; attempts++ {
		u := r.Intn(n)
		v := r.Intn(n)
		if communityOf(start, u) == communityOf(start, v) {
			continue
		}
		if acc.add(graph.Vertex(u), graph.Vertex(v)) {
			added++
		}
	}
	return acc.build()
}

func searchCum(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func communityOf(start []int, v int) int {
	lo, hi := 0, len(start)-2
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if start[mid] <= v {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// CollabConfig parameterises a collaboration-network generator: "papers" are
// cliques over author sets, and prolific authors appear on many papers.
// Models the CA-HepPh co-authorship dataset, whose structure is a union of
// overlapping cliques.
type CollabConfig struct {
	// Authors is the vertex count.
	Authors int
	// TargetEdges is the desired edge count.
	TargetEdges int
	// MeanAuthorsPerPaper controls clique sizes (geometric around the
	// mean, min 2). Physics co-authorship papers average 3-6 authors with
	// occasional huge collaborations.
	MeanAuthorsPerPaper float64
	// ProlificExponent skews author selection (power-law author
	// productivity); ~0.75 matches arXiv-style catalogues.
	ProlificExponent float64
}

// Collaboration generates a clique-overlap co-authorship graph.
func Collaboration(cfg CollabConfig, r *rng.RNG) *graph.Graph {
	n := cfg.Authors
	acc := newEdgeAccum(maxInt(n, 0))
	if n < 2 || cfg.TargetEdges <= 0 {
		return acc.build()
	}
	mean := cfg.MeanAuthorsPerPaper
	if mean < 2 {
		mean = 4
	}
	// Author sampling via power-law weights over a shuffled identity so
	// that prolific authors are spread across the id space.
	perm := r.Perm(n)
	alpha := cfg.ProlificExponent
	if alpha <= 0 {
		alpha = 0.75
	}
	// Pre-compute cumulative weights for binary-search sampling.
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -alpha)
		cum[i] = total
	}
	sampleAuthor := func() graph.Vertex {
		return graph.Vertex(perm[searchCum(cum, r.Float64()*total)])
	}
	guard := 0
	for acc.count() < cfg.TargetEdges && guard < 50*cfg.TargetEdges+1000 {
		guard++
		// Paper size: 2 + geometric around the mean.
		k := 2 + r.Geometric(1/(mean-1))
		if k > 40 {
			k = 40 // cap mega-collaborations
		}
		authors := make(map[graph.Vertex]struct{}, k)
		for len(authors) < k {
			authors[sampleAuthor()] = struct{}{}
			guard++
			if guard > 50*cfg.TargetEdges+1000 {
				break
			}
		}
		// The pair set is order-independent (the accumulator dedupes and
		// the builder sorts), but sort anyway so determinism is structural
		// rather than argued.
		list := make([]graph.Vertex, 0, len(authors))
		for a := range authors {
			list = append(list, a) //lint:ignore GL001 sorted on the next line
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				acc.add(list[i], list[j])
			}
		}
	}
	return acc.build()
}

// GenealogyConfig parameterises a genealogy-forest generator standing in for
// the huapu family-tree dataset: a forest of lineage trees (parent-child
// edges) joined by marriage edges, giving a sparse, tree-like, large-diameter
// graph with average degree near 2·|E|/|V| ≈ 3.3.
type GenealogyConfig struct {
	// People is the vertex count.
	People int
	// TargetEdges is the desired edge count; People-Trees of them are
	// parent links, the rest marriage/cross links.
	TargetEdges int
	// Trees is the number of independent family trees (surname lineages).
	Trees int
	// MaxChildren caps the branching factor.
	MaxChildren int
}

// Genealogy generates the family-forest graph.
func Genealogy(cfg GenealogyConfig, r *rng.RNG) *graph.Graph {
	n := cfg.People
	acc := newEdgeAccum(maxInt(n, 0))
	if n < 2 || cfg.TargetEdges <= 0 {
		return acc.build()
	}
	trees := cfg.Trees
	if trees < 1 {
		trees = 1
	}
	if trees > n {
		trees = n
	}
	maxKids := cfg.MaxChildren
	if maxKids < 2 {
		maxKids = 6
	}
	// Assign the first `trees` vertices as roots; everyone else attaches
	// to a parent chosen among recent members of a random tree, which
	// keeps generations shallow-ish but tree-like.
	treeMembers := make([][]graph.Vertex, trees)
	childCount := make([]int, n)
	for t := 0; t < trees; t++ {
		treeMembers[t] = append(treeMembers[t], graph.Vertex(t))
	}
	// A small fraction of people are "patriarchs" — famous ancestors whose
	// registries record very many children/descendant links. Real huapu
	// data has such hubs (the paper's Table VI shows Stage-I degrees of
	// 30-167 on it); without them the forest's degree tail is too light.
	patriarchCap := maxKids * 16
	isPatriarch := func(v int) bool { return uint64(v)%512 == 7 }
	for v := trees; v < n; v++ {
		t := r.Intn(trees)
		members := treeMembers[t]
		// Prefer recent members (younger generations keep growing).
		var parent graph.Vertex
		for tries := 0; ; tries++ {
			var idx int
			if r.Float64() < 0.08 {
				// Occasionally attach to an early ancestor: this is
				// how the patriarch hubs accumulate their fan-out.
				idx = r.Geometric(0.5)
				if idx >= len(members) {
					idx = len(members) - 1
				}
			} else {
				idx = len(members) - 1 - r.Geometric(0.1)
			}
			if idx < 0 {
				idx = r.Intn(len(members))
			}
			parent = members[idx]
			cap := maxKids
			if isPatriarch(int(parent)) {
				cap = patriarchCap
			}
			if childCount[parent] < cap || tries > 4 {
				break
			}
		}
		childCount[parent]++
		acc.add(graph.Vertex(v), parent)
		treeMembers[t] = append(members, graph.Vertex(v))
	}
	// Marriage/spouse/extra-kinship edges. A genealogy corpus is a
	// collection of per-clan registries: the overwhelming majority of
	// recorded links stay inside one registry (spouses are recorded in
	// their husband's register, cousin lines interconnect), and only the
	// occasional link points at a neighbouring clan's register. Uniform
	// cross links would weld the forest into one unstructured blob, which
	// real genealogy networks are not — they are near-disconnected, which
	// is exactly why every partitioner handles them well.
	for attempts := 0; acc.count() < cfg.TargetEdges && attempts < 30*cfg.TargetEdges+100; attempts++ {
		t := r.Intn(trees)
		if r.Float64() < 0.002 {
			// Out-marriage into an adjacent clan.
			off := r.Geometric(0.5) + 1
			if r.Intn(2) == 0 {
				off = -off
			}
			t2 := ((t+off)%trees + trees) % trees
			mu := treeMembers[t]
			mv := treeMembers[t2]
			if len(mu) == 0 || len(mv) == 0 {
				continue
			}
			acc.add(mu[r.Intn(len(mu))], mv[r.Intn(len(mv))])
			continue
		}
		m := treeMembers[t]
		if len(m) < 2 {
			continue
		}
		acc.add(m[r.Intn(len(m))], m[r.Intn(len(m))])
	}
	return acc.build()
}
