package gen

import (
	"fmt"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

// Dataset describes one entry of the paper's Table III together with the
// synthetic generator that stands in for it (see DESIGN.md §4 for the
// substitution rationale).
type Dataset struct {
	// Notation is the paper's short name (G1..G9).
	Notation string
	// Name is the original dataset name (e.g. "email-Eu-core").
	Name string
	// PaperVertices / PaperEdges are the sizes reported in Table III.
	PaperVertices, PaperEdges int
	// Vertices / Edges are the sizes this repository generates. They
	// equal the paper's except G9, which is scaled down (DESIGN.md §4).
	Vertices, Edges int
	// Family documents the generator family used for the analogue.
	Family string
	// generate builds the analogue graph; edge count is exact.
	generate func(seed uint64) *graph.Graph
}

// Generate builds the dataset's synthetic analogue deterministically from
// the seed, with exactly Edges edges and Vertices vertices.
func (d Dataset) Generate(seed uint64) *graph.Graph {
	g := d.generate(seed)
	if g.NumVertices() != d.Vertices || g.NumEdges() != d.Edges {
		// Generators plus AdjustEdgeCount are expected to land exactly;
		// failing loudly here beats silently mis-sized experiments.
		panic(fmt.Sprintf("gen: dataset %s generated V=%d E=%d, want V=%d E=%d",
			d.Notation, g.NumVertices(), g.NumEdges(), d.Vertices, d.Edges))
	}
	return g
}

// String renders the Table III row for this dataset.
func (d Dataset) String() string {
	return fmt.Sprintf("%s (%s): |V|=%d |E|=%d [%s]", d.Notation, d.Name, d.Vertices, d.Edges, d.Family)
}

// Datasets returns the nine Table III analogues G1..G9 in order.
//
// G9 (huapu) is generated at 10% of the paper's scale so that the full
// experiment sweep (five algorithms x three p values x eleven R values)
// remains tractable on one machine; the tree-like average degree (~3.26) is
// preserved, which is the property that matters for partitioning behaviour.
func Datasets() []Dataset {
	return []Dataset{
		{
			Notation: "G1", Name: "email-Eu-core",
			PaperVertices: 1005, PaperEdges: 25571,
			Vertices: 1005, Edges: 25571,
			Family: "planted communities (42 departments)",
			generate: func(seed uint64) *graph.Graph {
				r := rng.New(seed ^ 0xE1)
				g := PlantedCommunities(CommunityConfig{
					Vertices: 1005, Communities: 42,
					TargetEdges: 25571, IntraFraction: 0.45,
				}, r)
				return AdjustEdgeCount(g, 25571, r.Split())
			},
		},
		{
			Notation: "G2", Name: "Wiki-Vote",
			PaperVertices: 7115, PaperEdges: 103689,
			Vertices: 7115, Edges: 103689,
			Family: "power law + communities (gamma=2.1)",
			generate: func(seed uint64) *graph.Graph {
				r := rng.New(seed ^ 0xE2)
				g := PowerLawCommunities(PowerLawCommunityConfig{
					Vertices: 7115, TargetEdges: 103689,
					Exponent: 2.1, IntraFraction: 0.55,
				}, r)
				return AdjustEdgeCount(g, 103689, r.Split())
			},
		},
		{
			Notation: "G3", Name: "CA-HepPh",
			PaperVertices: 12008, PaperEdges: 118521,
			Vertices: 12008, Edges: 118521,
			Family: "collaboration cliques (co-authorship)",
			generate: func(seed uint64) *graph.Graph {
				r := rng.New(seed ^ 0xE3)
				g := Collaboration(CollabConfig{
					Authors: 12008, TargetEdges: 118521,
					MeanAuthorsPerPaper: 4.5, ProlificExponent: 0.75,
				}, r)
				return AdjustEdgeCount(g, 118521, r.Split())
			},
		},
		{
			Notation: "G4", Name: "Email-Enron",
			PaperVertices: 36692, PaperEdges: 183831,
			Vertices: 36692, Edges: 183831,
			Family: "power law + communities (gamma=2.0)",
			generate: func(seed uint64) *graph.Graph {
				r := rng.New(seed ^ 0xE4)
				g := PowerLawCommunities(PowerLawCommunityConfig{
					Vertices: 36692, TargetEdges: 183831,
					Exponent: 2.0, IntraFraction: 0.55,
				}, r)
				return AdjustEdgeCount(g, 183831, r.Split())
			},
		},
		{
			Notation: "G5", Name: "Slashdot081106",
			PaperVertices: 77357, PaperEdges: 516575,
			Vertices: 77357, Edges: 516575,
			Family: "power law + communities (gamma=2.3)",
			generate: func(seed uint64) *graph.Graph {
				r := rng.New(seed ^ 0xE5)
				g := PowerLawCommunities(PowerLawCommunityConfig{
					Vertices: 77357, TargetEdges: 516575,
					Exponent: 2.3, IntraFraction: 0.55,
				}, r)
				return AdjustEdgeCount(g, 516575, r.Split())
			},
		},
		{
			Notation: "G6", Name: "soc_Epinions1",
			PaperVertices: 75879, PaperEdges: 508837,
			Vertices: 75879, Edges: 508837,
			Family: "power law + communities (gamma=2.0)",
			generate: func(seed uint64) *graph.Graph {
				r := rng.New(seed ^ 0xE6)
				g := PowerLawCommunities(PowerLawCommunityConfig{
					Vertices: 75879, TargetEdges: 508837,
					Exponent: 2.0, IntraFraction: 0.55,
				}, r)
				return AdjustEdgeCount(g, 508837, r.Split())
			},
		},
		{
			Notation: "G7", Name: "Slashdot090221",
			PaperVertices: 82144, PaperEdges: 549202,
			Vertices: 82144, Edges: 549202,
			Family: "power law + communities (gamma=2.3)",
			generate: func(seed uint64) *graph.Graph {
				r := rng.New(seed ^ 0xE7)
				g := PowerLawCommunities(PowerLawCommunityConfig{
					Vertices: 82144, TargetEdges: 549202,
					Exponent: 2.3, IntraFraction: 0.55,
				}, r)
				return AdjustEdgeCount(g, 549202, r.Split())
			},
		},
		{
			Notation: "G8", Name: "Slashdot0811",
			// Table III prints "77,36" for |V|; the SNAP graph has 77,360
			// vertices, which we take as the intended value.
			PaperVertices: 77360, PaperEdges: 905468,
			Vertices: 77360, Edges: 905468,
			Family: "power law + communities (gamma=2.2)",
			generate: func(seed uint64) *graph.Graph {
				r := rng.New(seed ^ 0xE8)
				g := PowerLawCommunities(PowerLawCommunityConfig{
					Vertices: 77360, TargetEdges: 905468,
					Exponent: 2.2, IntraFraction: 0.55,
				}, r)
				return AdjustEdgeCount(g, 905468, r.Split())
			},
		},
		{
			Notation: "G9", Name: "huapu (genealogy, 10% scale)",
			PaperVertices: 4309321, PaperEdges: 7030787,
			Vertices: 430932, Edges: 703079,
			Family: "genealogy forest (trees + marriage links)",
			generate: func(seed uint64) *graph.Graph {
				r := rng.New(seed ^ 0xE9)
				g := Genealogy(GenealogyConfig{
					People: 430932, TargetEdges: 703079,
					Trees: 400, MaxChildren: 8,
				}, r)
				return AdjustEdgeCount(g, 703079, r.Split())
			},
		},
	}
}

// DatasetByNotation returns the dataset with the given notation (e.g. "G3").
func DatasetByNotation(notation string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Notation == notation {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset notation %q", notation)
}

// SmallDatasets returns scaled-down variants of G1..G9 (~10% of the repo
// sizes, minimum floors applied) for fast tests and testing.B benchmarks.
func SmallDatasets() []Dataset {
	full := Datasets()
	out := make([]Dataset, 0, len(full))
	for _, d := range full {
		sd := d
		sd.Notation = d.Notation + "s"
		sd.Vertices = maxInt(200, d.Vertices/10)
		sd.Edges = maxInt(1000, d.Edges/10)
		target := sd.Edges
		verts := sd.Vertices
		family := d.Family
		sd.generate = func(seed uint64) *graph.Graph {
			r := rng.New(seed ^ 0x5D)
			var g *graph.Graph
			switch {
			case family == "planted communities (42 departments)":
				g = PlantedCommunities(CommunityConfig{
					Vertices: verts, Communities: 12,
					TargetEdges: target, IntraFraction: 0.72,
				}, r)
			case family == "collaboration cliques (co-authorship)":
				g = Collaboration(CollabConfig{
					Authors: verts, TargetEdges: target,
					MeanAuthorsPerPaper: 4.5, ProlificExponent: 0.75,
				}, r)
			case family == "genealogy forest (trees + marriage links)":
				g = Genealogy(GenealogyConfig{
					People: verts, TargetEdges: target,
					Trees: 40, MaxChildren: 8,
				}, r)
			default:
				g = ChungLu(ChungLuConfig{
					Vertices: verts, TargetEdges: target, Exponent: 2.1,
				}, r)
			}
			return AdjustEdgeCount(g, target, r.Split())
		}
		out = append(out, sd)
	}
	return out
}
