// Package gen provides seeded synthetic graph generators and the dataset
// registry that stands in for the paper's evaluation datasets (Table III).
//
// The environment is offline, so the eight SNAP graphs and the proprietary
// huapu genealogy graph are replaced by generators from the matching
// structural family (power-law social networks, clique-overlap collaboration
// networks, dense community graphs, genealogy forests). Every generator is
// deterministic for a fixed seed, and the registry post-adjusts edge counts
// to land exactly on the target |E| so that capacities C = |E|/p match the
// paper's setup.
package gen

import (
	"math"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

// ChungLuConfig parameterises a Chung-Lu random graph with a power-law
// expected degree sequence.
type ChungLuConfig struct {
	// Vertices is the number of vertices n.
	Vertices int
	// TargetEdges is the desired number of edges m; the expected degree
	// sequence is scaled so the expected edge count matches, and the
	// registry's exact-count adjustment lands on it precisely.
	TargetEdges int
	// Exponent is the power-law exponent gamma of the degree
	// distribution (typically 2.0-2.5 for social networks). Larger
	// exponents give lighter tails.
	Exponent float64
	// MaxDegreeCap bounds the largest expected degree; zero means an
	// automatic cap of sqrt(2m) (the Chung-Lu validity threshold, above
	// which edge probabilities clip at 1 and the realised distribution
	// distorts).
	MaxDegreeCap float64
}

// ChungLu generates a power-law random graph with the fast (Miller-Hagberg)
// O(n+m) skipping algorithm. The realised edge count is random around
// TargetEdges; use AdjustEdgeCount for an exact count.
func ChungLu(cfg ChungLuConfig, r *rng.RNG) *graph.Graph {
	n := cfg.Vertices
	if n < 2 || cfg.TargetEdges <= 0 {
		return graph.NewBuilder(maxInt(n, 0)).Build()
	}
	w := powerLawWeights(n, cfg.TargetEdges, cfg.Exponent, cfg.MaxDegreeCap)
	// Weights are descending by construction (index 0 heaviest).
	s := 0.0
	for _, wi := range w {
		s += wi
	}
	b := graph.NewBuilder(n)
	for u := 0; u < n-1; u++ {
		v := u + 1
		p := math.Min(1, w[u]*w[v]/s)
		for v < n && p > 0 {
			if p < 1 {
				// Geometric skip over vertices rejected at rate p.
				skip := int(math.Log(1-r.Float64()) / math.Log(1-p))
				v += skip
			}
			if v >= n {
				break
			}
			q := math.Min(1, w[u]*w[v]/s)
			if r.Float64() < q/p {
				_ = b.AddEdge(graph.Vertex(u), graph.Vertex(v))
			}
			p = q
			v++
		}
	}
	return b.Build()
}

// powerLawWeights returns n expected degrees following w_i ~ (i+i0)^-alpha
// with alpha = 1/(gamma-1), scaled so the sum is 2*targetEdges, sorted
// descending, and capped so max weight <= cap (default sqrt(2m)).
func powerLawWeights(n, targetEdges int, gamma, cap float64) []float64 {
	if gamma <= 1 {
		gamma = 2.0
	}
	alpha := 1 / (gamma - 1)
	if cap <= 0 {
		cap = math.Sqrt(2 * float64(targetEdges))
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -alpha)
		sum += w[i]
	}
	scale := 2 * float64(targetEdges) / sum
	// Scale, cap, then rescale the uncapped tail so the sum stays 2m.
	capped := 0.0
	cappedCount := 0
	for i := range w {
		w[i] *= scale
		if w[i] > cap {
			w[i] = cap
			capped += cap
			cappedCount++
		}
	}
	if cappedCount > 0 && cappedCount < n {
		rest := 0.0
		for _, wi := range w[cappedCount:] {
			rest += wi
		}
		want := 2*float64(targetEdges) - capped
		if rest > 0 && want > 0 {
			f := want / rest
			for i := cappedCount; i < n; i++ {
				w[i] = math.Min(cap, w[i]*f)
			}
		}
	}
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
