package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Per-function facts. computeFacts records the leaf facts GL009 certifies
// against (wall-clock reads, unseeded randomness) plus the coarse
// behavioural facts (map iteration, goroutine spawns); hotPathHits performs
// the finer GL010 walk for allocation patterns. Facts never propagate
// eagerly — the rules traverse the call graph and report a fact together
// with the call path that reaches it.

// FactKind classifies one per-function fact.
type FactKind uint8

const (
	// FactWallClock: the function reads the wall clock (time.Now/Since/Until).
	FactWallClock FactKind = iota
	// FactRandom: the function draws from math/rand or crypto/rand directly,
	// bypassing the seeded internal/rng generator.
	FactRandom
	// FactMapRange: the function ranges over a map (nondeterministic order).
	FactMapRange
	// FactGoroutine: the function spawns a goroutine.
	FactGoroutine
)

// factHit is one occurrence of a fact (or a GL010 allocation pattern).
type factHit struct {
	kind FactKind
	pos  token.Pos
	what string
}

// coldRanges collects the source ranges of statements that are provably
// dead in the build under analysis: the bodies of if-statements whose
// condition requires invariants.Enabled, a build-tag constant that is false
// unless the graphpart_invariants tag is set. The compiler removes those
// blocks from the shipped binary, so the facts and the call graph omit them
// — the same exclusion the loader's build-tag filtering applies at file
// granularity. (Only the positive polarity is recognized: an early-return
// guard `if !invariants.Enabled { return }` gates the *rest* of the
// function, which stays live.)
func coldRanges(pkg *Package, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condRequiresInvariants(pkg, ifs.Cond) {
			out = append(out, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return out
}

// condRequiresInvariants reports whether cond can only be true when
// invariants.Enabled is: the constant itself, or an && chain containing it.
func condRequiresInvariants(pkg *Package, cond ast.Expr) bool {
	switch v := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if v.Op == token.LAND {
			return condRequiresInvariants(pkg, v.X) || condRequiresInvariants(pkg, v.Y)
		}
	case *ast.SelectorExpr:
		return isInvariantsEnabled(pkg, v.Sel)
	case *ast.Ident:
		return isInvariantsEnabled(pkg, v)
	}
	return false
}

func isInvariantsEnabled(pkg *Package, id *ast.Ident) bool {
	c, ok := pkg.Info.Uses[id].(*types.Const)
	return ok && c.Name() == "Enabled" && c.Pkg() != nil &&
		strings.HasSuffix(c.Pkg().Path(), "/internal/invariants")
}

// inCold reports whether pos falls inside any dead range.
func inCold(ranges [][2]token.Pos, pos token.Pos) bool {
	for _, r := range ranges {
		if pos >= r[0] && pos < r[1] {
			return true
		}
	}
	return false
}

// computeFacts records node's leaf facts from its body.
func computeFacts(node *FuncNode) {
	pkg := node.Pkg
	cold := coldRanges(pkg, node.Decl.Body)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if n != nil && inCold(cold, n.Pos()) {
			return false
		}
		switch e := n.(type) {
		case *ast.GoStmt:
			node.facts = append(node.facts, factHit{kind: FactGoroutine, pos: e.Pos(), what: "go statement"})
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[e.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					node.facts = append(node.facts, factHit{kind: FactMapRange, pos: e.Pos(), what: "map range"})
				}
			}
		case *ast.SelectorExpr:
			fn, ok := pkg.Info.Uses[e.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					node.facts = append(node.facts, factHit{
						kind: FactWallClock, pos: e.Pos(), what: "time." + fn.Name(),
					})
				}
			case "math/rand", "math/rand/v2", "crypto/rand":
				node.facts = append(node.facts, factHit{
					kind: FactRandom, pos: e.Pos(),
					what: fn.Pkg().Path() + "." + fn.Name(),
				})
			}
		}
		return true
	})
}

// factsOf returns node's hits of the given kind.
func (n *FuncNode) factsOf(kind FactKind) []factHit {
	var out []factHit
	for _, h := range n.facts {
		if h.kind == kind {
			out = append(out, h)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// GL010 allocation-pattern walk.
//
// A //graphpart:hotpath function and everything it transitively calls must
// be free of the allocation patterns below. The list is deliberately about
// *patterns*, not single allocations: a constant number of allocations per
// call (a presized make, a returned buffer) is acceptable and is what the
// linked AllocsPerRun assertion pins at runtime; what the lint bans is the
// per-iteration, hidden or unbounded kind.
//
//   - map iteration: nondeterministic order and a hidden iterator.
//   - append to a local slice that was never given a capacity: every growth
//     reallocates. Appends to parameters, receivers and struct fields are
//     the caller's (or owner's) presizing responsibility and are not
//     flagged; appends to locals born of a 3-arg make or a reslice are
//     presized by construction.
//   - allocation inside a loop (make, new, &T{...}, slice/map literal):
//     one allocation per iteration. Loop-free allocation sites are allowed
//     (constant per call).
//   - interface boxing of a non-pointer value (conversion or assignment):
//     each boxing heap-allocates the value. Pointer-to-interface
//     conversions do not allocate and are not flagged.
//   - defer inside a loop: one defer frame per iteration.
//   - an escaping closure that captures locals: the capture forces the
//     variables (and the closure) to the heap. Immediately-invoked
//     literals, capture-free literals and closures passed to sort.Search
//     (whose predicate provably does not escape) are allowed.
//   - fmt.* and sort.Slice* calls: formatting allocates on every path and
//     sort.Slice boxes its closure and uses reflection. A fmt call whose
//     result feeds a panic is a cold path and is exempt.
//   - go statements: each spawn allocates a stack (also a FactGoroutine).
// ---------------------------------------------------------------------------

// hotPathHits computes (once) and returns node's GL010 pattern hits.
func hotPathHits(node *FuncNode) []factHit {
	if node.hotDone {
		return node.hotHits
	}
	node.hotDone = true
	pkg := node.Pkg
	body := node.Decl.Body

	params := paramObjects(pkg, node.Decl)
	presized := presizedLocals(pkg, body)
	panicArgs := panicArgPositions(body)
	cold := coldRanges(pkg, body)

	var hits []factHit
	report := func(pos token.Pos, format string, args ...any) {
		if inCold(cold, pos) {
			return // dead-coded in this build (invariants.Enabled guard)
		}
		hits = append(hits, factHit{pos: pos, what: fmt.Sprintf(format, args...)})
	}

	// walk tracks loop depth manually so per-iteration constructs can be
	// distinguished from per-call ones.
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		switch e := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			walkChildren(e, func(c ast.Node) { walk(c, loopDepth) }, e.Body)
			walk(e.Body, loopDepth+1)
			return
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[e.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(e.Pos(), "ranges over a map (nondeterministic order, hidden iterator)")
				}
			}
			walkChildren(e, func(c ast.Node) { walk(c, loopDepth) }, e.Body)
			walk(e.Body, loopDepth+1)
			return
		case *ast.DeferStmt:
			if loopDepth > 0 {
				report(e.Pos(), "defer inside a loop allocates a defer frame per iteration")
			}
		case *ast.GoStmt:
			report(e.Pos(), "go statement spawns a goroutine (stack allocation, scheduling)")
		case *ast.FuncLit:
			// Checked at its use site below (escape analysis); do not
			// descend here — the literal's body is walked with the loop
			// depth of its own frame, not the enclosing loop's.
			checkFuncLitEscape(pkg, node.Decl, e, report)
			walk(e.Body, 0)
			return
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := e.X.(*ast.CompositeLit); ok && loopDepth > 0 {
					report(e.Pos(), "&composite literal inside a loop allocates per iteration")
				}
			}
		case *ast.CompositeLit:
			if loopDepth > 0 {
				if t := pkg.Info.TypeOf(e); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map:
						report(e.Pos(), "%s literal inside a loop allocates per iteration",
							types.TypeString(t, shortQualifier))
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pkg, e, loopDepth, presized, params, panicArgs, report)
		case *ast.AssignStmt:
			checkBoxingAssign(pkg, e, report)
		}
		walkChildren(n, func(c ast.Node) { walk(c, loopDepth) })
	}
	walk(body, 0)
	node.hotHits = hits
	return hits
}

// walkChildren visits n's direct children via ast.Inspect's first level,
// skipping any node in except.
func walkChildren(n ast.Node, visit func(ast.Node), except ...ast.Node) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c == nil {
			return false
		}
		for _, ex := range except {
			if c == ex {
				return false
			}
		}
		visit(c)
		return false
	})
}

// checkHotCall flags builtin and stdlib calls with allocation patterns.
func checkHotCall(pkg *Package, call *ast.CallExpr, loopDepth int,
	presized map[types.Object]bool, params map[types.Object]bool,
	panicArgs map[token.Pos]bool, report func(token.Pos, string, ...any)) {

	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		checkBoxingConversion(pkg, call, report)
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				checkAppend(pkg, call, presized, params, report)
			case "make", "new":
				if loopDepth > 0 {
					report(call.Pos(), "%s inside a loop allocates per iteration", b.Name())
				}
			}
		}
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		switch fn.Pkg().Path() {
		case "fmt":
			if !panicArgs[call.Pos()] {
				report(call.Pos(), "fmt.%s allocates on every call; hot paths format nothing (panic guards are exempt)", fn.Name())
			}
		case "sort":
			if fn.Name() == "Slice" || fn.Name() == "SliceStable" {
				report(call.Pos(), "sort.%s boxes its closure and swaps via reflection; sort.Sort a concrete sort.Interface instead", fn.Name())
			}
		}
	}
}

// checkAppend flags append calls whose destination is a function-local
// slice that was never presized.
func checkAppend(pkg *Package, call *ast.CallExpr,
	presized, params map[types.Object]bool, report func(token.Pos, string, ...any)) {
	if len(call.Args) == 0 {
		return
	}
	base := baseIdent(call.Args[0])
	if base == nil {
		return
	}
	obj := pkg.Info.ObjectOf(base)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || params[obj] || presized[obj] {
		return
	}
	// Package-level and closure-captured slices are the owner's concern —
	// GL011 polices writes from parallel closures; here only locals count.
	if v.Parent() == v.Pkg().Scope() {
		return
	}
	report(call.Pos(), "append to %q, which was never given a capacity; presize with make(_, 0, n) or reuse a buffer", base.Name)
}

// checkBoxingConversion flags T(x) conversions that box a non-pointer value
// into an interface.
func checkBoxingConversion(pkg *Package, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	if len(call.Args) != 1 {
		return
	}
	dst := pkg.Info.TypeOf(call.Fun)
	src := pkg.Info.TypeOf(call.Args[0])
	if boxes(src, dst) {
		report(call.Pos(), "conversion boxes %s into %s (heap-allocates the value)",
			types.TypeString(src, shortQualifier), types.TypeString(dst, shortQualifier))
	}
}

// checkBoxingAssign flags assignments that box a non-pointer value into an
// interface-typed destination.
func checkBoxingAssign(pkg *Package, as *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	if as.Tok == token.DEFINE {
		return // the new variable adopts the RHS type; no conversion happens
	}
	n := len(as.Rhs)
	if n != len(as.Lhs) {
		return
	}
	for i := 0; i < n; i++ {
		dst := pkg.Info.TypeOf(as.Lhs[i])
		src := pkg.Info.TypeOf(as.Rhs[i])
		if boxes(src, dst) {
			report(as.Pos(), "assignment boxes %s into %s (heap-allocates the value)",
				types.TypeString(src, shortQualifier), types.TypeString(dst, shortQualifier))
		}
	}
}

// boxes reports whether assigning a src value to a dst location allocates:
// dst is an interface, src is a concrete non-pointer type (pointers and
// interfaces fit the interface word directly), and src is not untyped nil.
func boxes(src, dst types.Type) bool {
	if src == nil || dst == nil {
		return false
	}
	if !types.IsInterface(dst) || types.IsInterface(src) {
		return false
	}
	if basic, ok := src.(*types.Basic); ok && basic.Info()&types.IsUntyped != 0 {
		return false
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return false // single-word types stored directly in the interface
	}
	return true
}

// checkFuncLitEscape flags closure literals that capture enclosing locals
// and escape the frame.
func checkFuncLitEscape(pkg *Package, enclosing *ast.FuncDecl, lit *ast.FuncLit, report func(token.Pos, string, ...any)) {
	captured := capturesLocals(pkg, enclosing, lit)
	if captured == "" {
		return
	}
	// Allowed shapes: immediately-invoked, or passed to a callee whose
	// func parameter provably does not escape (sort.Search).
	switch use := litUse(enclosing, lit).(type) {
	case *ast.CallExpr:
		if ast.Unparen(use.Fun) == ast.Expr(lit) {
			return // immediately invoked: no escape
		}
		if sel, ok := ast.Unparen(use.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "sort" && fn.Name() == "Search" {
				return // sort.Search's predicate does not escape
			}
		}
	}
	report(lit.Pos(), "closure captures %s and escapes; captured variables move to the heap", captured)
}

// capturesLocals names the first enclosing-function local captured by lit
// ("" when lit is capture-free).
func capturesLocals(pkg *Package, enclosing *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: not a capture
		}
		// Captured iff declared inside the enclosing function but outside
		// the literal.
		if v.Pos() >= enclosing.Pos() && v.Pos() < enclosing.End() &&
			(v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			name = id.Name
		}
		return true
	})
	return name
}

// litUse finds the innermost node that consumes lit (its parent).
func litUse(enclosing *ast.FuncDecl, lit *ast.FuncLit) ast.Node {
	var parent ast.Node
	var stack []ast.Node
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if n == ast.Node(lit) && len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parent
}

// paramObjects collects the objects of decl's receiver, parameters and
// named results — append destinations the caller presizes.
func paramObjects(pkg *Package, decl *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	if decl.Recv != nil {
		addFields(decl.Recv)
	}
	addFields(decl.Type.Params)
	addFields(decl.Type.Results)
	return out
}

// presizedLocals collects locals bound to a capacity-bearing value anywhere
// in body: a 3-arg make, a reslice (s[:0], s[a:b], s[a:b:c]) or another
// presized local. The scan is flow-insensitive — one capacity-bearing
// binding anywhere marks the variable presized, which is the conservative
// direction for a style lint (the runtime AllocsPerRun tie catches lies).
func presizedLocals(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	bearing := func(e ast.Expr) bool {
		switch v := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
					return len(v.Args) == 3
				}
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || !bearing(as.Rhs[i]) {
				continue
			}
			if obj := pkg.Info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// panicArgPositions records the positions of call expressions that are
// direct arguments to panic — cold paths exempt from the fmt ban.
func panicArgPositions(body *ast.BlockStmt) map[token.Pos]bool {
	out := map[token.Pos]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			for _, arg := range call.Args {
				if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
					out[inner.Pos()] = true
				}
			}
		}
		return true
	})
	return out
}
