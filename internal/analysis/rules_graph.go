package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Module-wide rules: the checks that need the call graph (GL009, GL010) plus
// the parallel-closure write check GL011 (per-package, but introduced with
// the same family). Per-package rules see one package's syntax; module rules
// see every package, the type-checked call graph and the per-function facts,
// so they can certify properties of whole call *paths* — which is what the
// determinism and hot-path guarantees actually are.

// ModuleRule is one whole-module graphlint check.
type ModuleRule struct {
	// Code is the stable identifier (GL009..).
	Code string
	// Doc is the one-line description shown by graphlint -rules.
	Doc string
	// check appends the rule's findings for the module to the report.
	check func(m *Module, r *reporter)
}

// ModuleRules returns the module-wide rule set in code order.
func ModuleRules() []ModuleRule {
	return []ModuleRule{
		{Code: "GL009", Doc: "determinism certificate: an exported facade entry point has a call-graph path to a wall-clock or unseeded-randomness site outside the rng/obs/wire seams", check: checkGL009},
		{Code: "GL010", Doc: "hot-path allocation: a //graphpart:hotpath function (or anything it transitively calls) contains an allocation pattern (map range, unsized append, boxing, defer-in-loop, escaping closure, fmt, per-iteration make)", check: checkGL010},
	}
}

// ---------------------------------------------------------------------------
// GL009 — determinism certificates for facade entry points.
//
// A partition run must be a pure function of (graph, options, seed) — that
// is what the FNV golden oracles and the worker sweeps pin at runtime. GL002
// and GL007 approximate this at the import level; GL009 proves it over the
// call graph: from every exported facade entry point (Partition, Refine,
// Run*, Stream*, and every registered partitioner's Partition method), no
// path may reach a time.Now/Since/Until call or a math/rand / crypto/rand
// draw, except through the sanctioned seams (internal/rng: seeded by
// construction; internal/obs: record-only telemetry; internal/wire: socket
// deadlines; cmd/benchsnap: snapshot timestamps). The traversal does not
// descend into a seam package — whatever happens inside is the seam's
// charter — and each finding carries the full offending call path, because
// a two-hop clock call is useless to report without the route to it.
// ---------------------------------------------------------------------------

// pathLink records how the GL009/GL010 traversal first reached a node.
type pathLink struct {
	caller *FuncNode
	edge   *CallEdge
}

func checkGL009(m *Module, r *reporter) {
	reported := map[token.Pos]bool{} // one diagnostic per offending fact site
	for _, entry := range m.entryPoints() {
		parent := map[*FuncNode]pathLink{}
		visited := map[*FuncNode]bool{entry: true}
		queue := []*FuncNode{entry}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, kind := range []FactKind{FactWallClock, FactRandom} {
				for _, h := range n.factsOf(kind) {
					if reported[h.pos] {
						continue
					}
					reported[h.pos] = true
					path := callPath(parent, entry, n)
					r.reportPath(h.pos, "GL009", path,
						"determinism certificate: %s reaches %s via %s; route it through the internal/rng or internal/obs seam",
						entry.Name(), h.what, renderPath(path))
				}
			}
			for i := range n.Calls {
				e := &n.Calls[i]
				callee := e.Callee
				if visited[callee] || m.isSeamPackage(callee.Pkg) {
					continue
				}
				visited[callee] = true
				parent[callee] = pathLink{caller: n, edge: e}
				queue = append(queue, callee)
			}
		}
	}
}

// entryPoints selects the functions GL009 certifies: exported facade
// functions with entry-point names, plus every module method named Partition
// on a type implementing partition.Partitioner (the registered partitioner
// families), in deterministic order.
func (m *Module) entryPoints() []*FuncNode {
	iface := m.partitionerIface()
	var out []*FuncNode
	for _, node := range m.funcs {
		name := node.Obj.Name()
		if !ast.IsExported(name) {
			continue
		}
		recv := node.Obj.Type().(*types.Signature).Recv()
		if recv == nil {
			if node.Pkg.Path != m.Path {
				continue
			}
			if name == "Partition" || name == "Refine" ||
				strings.HasPrefix(name, "Run") || strings.HasPrefix(name, "Stream") {
				out = append(out, node)
			}
			continue
		}
		if name == "Partition" && iface != nil && types.Implements(recv.Type(), iface) {
			out = append(out, node)
		}
	}
	return out
}

// partitionerIface looks up the partition.Partitioner interface, or nil when
// the package is not among the loaded set (single-package corpus runs).
func (m *Module) partitionerIface() *types.Interface {
	for _, pkg := range m.Pkgs {
		if !pkg.isAt("internal/partition") {
			continue
		}
		tn, ok := pkg.Types.Scope().Lookup("Partitioner").(*types.TypeName)
		if !ok {
			return nil
		}
		iface, _ := tn.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

// callPath reconstructs the traversal's route from entry to n as PathSteps.
func callPath(parent map[*FuncNode]pathLink, entry, n *FuncNode) []PathStep {
	var chain []pathLink
	for n != entry {
		link := parent[n]
		chain = append(chain, link)
		n = link.caller
	}
	fset := entry.Pkg.Fset
	steps := []PathStep{{Func: entry.Name(), Pos: fset.Position(entry.Decl.Name.Pos())}}
	for i := len(chain) - 1; i >= 0; i-- {
		link := chain[i]
		steps = append(steps, PathStep{
			Func: link.edge.Callee.Name(),
			Pos:  fset.Position(link.edge.Pos),
			Via:  link.edge.Via,
		})
	}
	return steps
}

// renderPath renders steps as "a -> b -> c" for the human-readable message
// (the structured form travels in Diagnostic.Path).
func renderPath(steps []PathStep) string {
	parts := make([]string, 0, len(steps))
	for _, s := range steps {
		name := s.Func
		if s.Via != "" {
			name += " [" + s.Via + "]"
		}
		parts = append(parts, name)
	}
	return strings.Join(parts, " -> ")
}

// ---------------------------------------------------------------------------
// GL010 — hot-path allocation lint.
//
// //graphpart:hotpath marks the functions the paper reproduction's
// throughput rests on: the Stage-I scoring kernels, partition.State.Move/
// Swap, the wire encoder, the engine superstep phases. The annotated
// function and everything it transitively calls must be free of the
// allocation patterns hotPathHits documents; each annotation must carry a
// test=TestName link tying it to an AllocsPerRun assertion, so the static
// claim is cross-checked at runtime. The traversal follows the same
// conservative call graph as GL009 (including interface fan-out — a hot
// interface call is accountable for every implementation it might reach)
// and does not stop at seam packages: seams may read clocks, not allocate
// per operation.
// ---------------------------------------------------------------------------

// hotPathDirective is one parsed //graphpart:hotpath annotation.
type hotPathDirective struct {
	pos  token.Pos
	test string // AllocsPerRun test name from the test= field
}

func checkGL010(m *Module, r *reporter) {
	annotated := m.attachHotDirectives(r)
	visited := map[*FuncNode]bool{} // each function's hits reported once, from the first root reaching it
	for _, root := range annotated {
		parent := map[*FuncNode]pathLink{}
		queue := []*FuncNode{root}
		if !visited[root] {
			visited[root] = true
			reportHotHits(r, root, root, parent)
		}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for i := range n.Calls {
				e := &n.Calls[i]
				callee := e.Callee
				if visited[callee] {
					continue
				}
				visited[callee] = true
				parent[callee] = pathLink{caller: n, edge: e}
				reportHotHits(r, root, callee, parent)
				queue = append(queue, callee)
			}
		}
	}
}

// reportHotHits reports n's allocation-pattern hits on root's hot path.
func reportHotHits(r *reporter, root, n *FuncNode, parent map[*FuncNode]pathLink) {
	hits := hotPathHits(n)
	if len(hits) == 0 {
		return
	}
	var path []PathStep
	if n != root {
		path = callPath(parent, root, n)
	}
	for _, h := range hits {
		if n == root {
			r.report(h.pos, "GL010", "hot path %s: %s", n.Name(), h.what)
		} else {
			r.reportPath(h.pos, "GL010", path,
				"hot path %s (reached from %s via %s): %s", n.Name(), root.Name(), renderPath(path), h.what)
		}
	}
}

// attachHotDirectives parses every //graphpart:hotpath annotation, attaches
// each to its function's node, and reports malformed ones: a directive with
// no test= link (the runtime cross-check is not optional) and a directive
// not attached to any function declaration.
func (m *Module) attachHotDirectives(r *reporter) []*FuncNode {
	matched := map[*ast.Comment]bool{}
	var annotated []*FuncNode
	for _, node := range m.funcs {
		if node.Decl.Doc == nil {
			continue
		}
		for _, c := range node.Decl.Doc.List {
			rest, ok := strings.CutPrefix(c.Text, "//graphpart:hotpath")
			if !ok {
				continue
			}
			matched[c] = true
			d := &hotPathDirective{pos: c.Pos()}
			for _, f := range strings.Fields(rest) {
				if v, ok := strings.CutPrefix(f, "test="); ok {
					d.test = v
				}
			}
			node.hot = d
			annotated = append(annotated, node)
			if d.test == "" {
				r.report(c.Pos(), "GL010",
					"hotpath annotation on %s names no AllocsPerRun cross-check; write //graphpart:hotpath test=TestHotPathAllocs_X", node.Name())
			}
		}
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(c.Text, "//graphpart:hotpath") && !matched[c] {
						r.report(c.Pos(), "GL010",
							"hotpath annotation is not attached to a function declaration; place it in the doc comment of the function it marks")
					}
				}
			}
		}
	}
	return annotated
}

// HotAnnotations lists every //graphpart:hotpath annotation in the module as
// (function, linked test) pairs, for the test that cross-checks each link
// against a real AllocsPerRun test.
func (m *Module) HotAnnotations() []HotAnnotation {
	var out []HotAnnotation
	for _, node := range m.funcs {
		if node.Decl.Doc == nil {
			continue
		}
		for _, c := range node.Decl.Doc.List {
			rest, ok := strings.CutPrefix(c.Text, "//graphpart:hotpath")
			if !ok {
				continue
			}
			ha := HotAnnotation{Func: node.Name(), Pkg: node.Pkg.Path, Pos: m.fset.Position(c.Pos())}
			for _, f := range strings.Fields(rest) {
				if v, ok := strings.CutPrefix(f, "test="); ok {
					ha.Test = v
				}
			}
			out = append(out, ha)
		}
	}
	return out
}

// HotAnnotation is one //graphpart:hotpath annotation: the function it
// marks, its package, and the AllocsPerRun test it is tied to.
type HotAnnotation struct {
	Func string
	Pkg  string
	Test string
	Pos  token.Position
}

// ---------------------------------------------------------------------------
// GL011 — parallel-closure write safety.
//
// Worker-count invariance rests on one convention: a closure handed to
// internal/parallel.ForEach/Map writes only through index-addressed
// destinations (dst[i] = v) or returns its result, so no two workers ever
// touch the same location and joins need no ordering. A write to a captured
// scalar is a race and an arrival-order result; a write into a captured map
// is both plus a runtime panic under concurrent access; a write through a
// captured pointer is the same race one indirection later. GL004 already
// flags the float-accumulation special case; GL011 enforces the convention
// itself.
// ---------------------------------------------------------------------------

func checkGL011(pkg *Package, r *reporter) {
	parallelFns := map[string]bool{"ForEach": true, "ForEachErr": true, "Map": true, "MapErr": true}
	inspectFiles(pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !calleeInPackageSuffix(pkg, call, "/internal/parallel") {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr) // guaranteed by calleeInPackageSuffix
		if !parallelFns[sel.Sel.Name] {
			return true
		}
		for _, arg := range call.Args {
			if fl, ok := arg.(*ast.FuncLit); ok {
				checkGL011Lit(pkg, r, sel.Sel.Name, fl)
			}
		}
		return true
	})
}

// checkGL011Lit flags non-index-addressed writes to captured state inside
// one parallel closure (nested literals included — they run on the same
// worker and the capture is just as shared).
func checkGL011Lit(pkg *Package, r *reporter, fn string, fl *ast.FuncLit) {
	checkLHS := func(lhs ast.Expr, op string) {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return
			}
			if _, outside := declaredOutside(pkg, e, fl); outside {
				r.report(e.Pos(), "GL011",
					"parallel.%s closure writes (%s) captured variable %q; workers race and the result is arrival-ordered — write an index-addressed slot (dst[i] = v) or return the value via parallel.Map", fn, op, e.Name)
			}
		case *ast.IndexExpr:
			t := pkg.Info.TypeOf(e.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return // indexed slice/array writes are the sanctioned shape
			}
			if name, outside := declaredOutside(pkg, e.X, fl); outside {
				r.report(e.Pos(), "GL011",
					"parallel.%s closure writes into captured map %q; concurrent map writes panic and fold order is arrival-ordered — write dst[i] and merge after the join", fn, name)
			}
		case *ast.StarExpr:
			if name, outside := declaredOutside(pkg, e.X, fl); outside {
				r.report(e.Pos(), "GL011",
					"parallel.%s closure writes through captured pointer %q; the pointee is shared across workers — write an index-addressed slot instead", fn, name)
			}
		}
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true // := declares closure-locals; it cannot write captured state
			}
			for _, lhs := range s.Lhs {
				checkLHS(lhs, s.Tok.String())
			}
		case *ast.IncDecStmt:
			checkLHS(s.X, s.Tok.String())
		}
		return true
	})
}
