package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one rule violation at a source position.
type Diagnostic struct {
	// Pos locates the violation (file, line, column).
	Pos token.Position
	// Code is the rule code, e.g. "GL001".
	Code string
	// Severity is "error" for rule violations and "warning" for hygiene
	// findings (stale lint:ignore directives found by the audit).
	Severity string
	// Message explains the violation and the expected fix.
	Message string
	// Path, for call-graph rules (GL009, GL010), is the call path from the
	// certified entry point (or hotpath root) to the offending site.
	Path []PathStep
}

// PathStep is one hop of a call-graph diagnostic's path: the function
// entered, the call site that entered it, and — for a conservative edge —
// why the analyzer assumed the call could happen.
type PathStep struct {
	// Func names the function entered, as package.Func or
	// package.(Type).Method.
	Func string
	// Pos is the call site (for the first step, the entry point's
	// declaration).
	Pos token.Position
	// Via explains a conservative edge ("interface engine.Transport",
	// "func value"); empty for an exact edge.
	Via string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Code, d.Message)
}

// Result is the outcome of checking one package: the surviving diagnostics
// plus per-code counts of findings and of suppressed findings.
type Result struct {
	Diagnostics []Diagnostic
	// Suppressed counts, per rule code, the findings silenced by a
	// well-formed //lint:ignore directive.
	Suppressed map[string]int
}

// Rule is one graphlint check.
type Rule struct {
	// Code is the stable identifier (GL001..).
	Code string
	// Doc is the one-line description shown by graphlint -rules.
	Doc string
	// check appends the rule's findings for pkg to the report.
	check func(pkg *Package, r *reporter)
}

// Rules returns the full rule set in code order.
func Rules() []Rule {
	return []Rule{
		{Code: "GL001", Doc: "order-sensitive accumulation (append / channel send) inside a map-range body", check: checkGL001},
		{Code: "GL002", Doc: "math/rand import outside internal/rng, or time.Now call outside the clock allowlist (internal/obs, cmd/benchsnap, internal/wire)", check: checkGL002},
		{Code: "GL003", Doc: "fmt.Print* call or os.Stdout reference in an internal/ library package", check: checkGL003},
		{Code: "GL004", Doc: "floating-point += / -= on a captured variable inside goroutine-launched code", check: checkGL004},
		{Code: "GL005", Doc: "exported identifier in the root package without a doc comment", check: checkGL005},
		{Code: "GL006", Doc: "sync.Mutex, sync.RWMutex or partition.Assignment passed by value", check: checkGL006},
		{Code: "GL007", Doc: "time.Now / time.Since / time.Until call outside the clock allowlist (obs seam, benchsnap timestamps, wire socket deadlines)", check: checkGL007},
		{Code: "GL008", Doc: "ValidateOptions.CapacitySlack set to a capacity-disabling constant (>= 10) instead of SkipCapacity", check: checkGL008},
		{Code: "GL011", Doc: "closure passed to internal/parallel.ForEach/Map writes captured state instead of an index-addressed destination", check: checkGL011},
	}
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	codes  []string
	reason string
	pos    token.Position
}

// reporter accumulates diagnostics for one package (or, for module rules,
// one module) and applies suppression.
type reporter struct {
	fset *token.FileSet
	diag []Diagnostic
}

// report records a finding at pos.
func (r *reporter) report(pos token.Pos, code, format string, args ...any) {
	r.diag = append(r.diag, Diagnostic{
		Pos:      r.fset.Position(pos),
		Code:     code,
		Severity: "error",
		Message:  fmt.Sprintf(format, args...),
	})
}

// reportPath records a finding at pos carrying a call path.
func (r *reporter) reportPath(pos token.Pos, code string, path []PathStep, format string, args ...any) {
	r.diag = append(r.diag, Diagnostic{
		Pos:      r.fset.Position(pos),
		Code:     code,
		Severity: "error",
		Message:  fmt.Sprintf(format, args...),
		Path:     path,
	})
}

// Check runs every rule over pkg and returns the surviving diagnostics,
// sorted by position, plus suppression counts.
//
// A finding is suppressed by a comment of the form
//
//	//lint:ignore GL002 one-line reason
//
// either trailing on the offending line or alone on the line directly above
// it. The reason is mandatory: a directive without one does not suppress
// anything and is itself reported (as GL000), so blanket or unexplained
// suppressions cannot land.
func Check(pkg *Package) Result {
	r := &reporter{fset: pkg.Fset}
	for _, rule := range Rules() {
		rule.check(pkg, r)
	}
	directives := collectIgnores(pkg, r)
	res := Result{Suppressed: map[string]int{}}
	for _, d := range r.diag {
		if dir := matchIgnore(directives, d); dir != nil {
			res.Suppressed[d.Code]++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	sortDiagnostics(res.Diagnostics)
	return res
}

// sortDiagnostics orders diagnostics by (file, line, column, code).
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Code < b.Code
	})
}

// ModuleResult is the outcome of a whole-module run: every package checked
// by the per-package rules, the call-graph rules run over the full graph,
// suppression applied, and the directive audit computed.
type ModuleResult struct {
	// Diagnostics are the surviving findings, sorted by position.
	Diagnostics []Diagnostic
	// Suppressed counts, per rule code, the findings silenced by a
	// well-formed //lint:ignore directive.
	Suppressed map[string]int
	// Stale lists, as GL000 warnings, every //lint:ignore directive that
	// suppressed nothing in this run: the code it silences no longer fires
	// there, so the directive (and whatever fear motivated it) is dead
	// weight. Reported separately so graphlint can gate on it only under
	// -audit.
	Stale []Diagnostic
}

// CheckModule runs the per-package rules over every package and the
// module-wide call-graph rules (GL009, GL010) over the whole set, applies
// //lint:ignore suppression across all of it, and audits the directives
// themselves for staleness. This is the entry point cmd/graphlint uses; the
// per-package Check remains for corpus tests that exercise one rule in
// isolation.
func CheckModule(pkgs []*Package) ModuleResult {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	var diags []Diagnostic
	var dirs []ignoreDirective
	for _, pkg := range sorted {
		r := &reporter{fset: pkg.Fset}
		for _, rule := range Rules() {
			rule.check(pkg, r)
		}
		dirs = append(dirs, collectIgnores(pkg, r)...)
		diags = append(diags, r.diag...)
	}

	m := BuildModule(sorted)
	if m.fset != nil {
		mr := &reporter{fset: m.fset}
		for _, rule := range ModuleRules() {
			rule.check(m, mr)
		}
		diags = append(diags, mr.diag...)
	}

	used := make([]bool, len(dirs))
	res := ModuleResult{Suppressed: map[string]int{}}
	for _, d := range diags {
		if dir := matchIgnore(dirs, d); dir != nil {
			for i := range dirs {
				if &dirs[i] == dir {
					used[i] = true
				}
			}
			res.Suppressed[d.Code]++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	for i, dir := range dirs {
		if used[i] {
			continue
		}
		res.Stale = append(res.Stale, Diagnostic{
			Pos:      dir.pos,
			Code:     "GL000",
			Severity: "warning",
			Message: fmt.Sprintf("stale lint:ignore %s: no such finding fires here any more; delete the directive",
				strings.Join(dir.codes, " ")),
		})
	}
	sortDiagnostics(res.Diagnostics)
	sortDiagnostics(res.Stale)
	return res
}

// JSON renders the result in the machine-readable schema documented in
// DESIGN.md §16. trimPrefix, when non-empty, is stripped from file paths
// (pass the module root for repo-relative output).
func (res ModuleResult) JSON(trimPrefix string) ([]byte, error) {
	type jsonStep struct {
		Func string `json:"func"`
		File string `json:"file"`
		Line int    `json:"line"`
		Via  string `json:"via,omitempty"`
	}
	type jsonDiag struct {
		File     string     `json:"file"`
		Line     int        `json:"line"`
		Column   int        `json:"column"`
		Code     string     `json:"code"`
		Severity string     `json:"severity"`
		Message  string     `json:"message"`
		Path     []jsonStep `json:"path,omitempty"`
	}
	rel := func(name string) string {
		if trimPrefix == "" {
			return name
		}
		return strings.TrimPrefix(strings.TrimPrefix(name, trimPrefix), "/")
	}
	conv := func(diags []Diagnostic) []jsonDiag {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			jd := jsonDiag{
				File: rel(d.Pos.Filename), Line: d.Pos.Line, Column: d.Pos.Column,
				Code: d.Code, Severity: d.Severity, Message: d.Message,
			}
			for _, s := range d.Path {
				jd.Path = append(jd.Path, jsonStep{
					Func: s.Func, File: rel(s.Pos.Filename), Line: s.Pos.Line, Via: s.Via,
				})
			}
			out = append(out, jd)
		}
		return out
	}
	return json.MarshalIndent(struct {
		Diagnostics []jsonDiag     `json:"diagnostics"`
		Stale       []jsonDiag     `json:"stale"`
		Suppressed  map[string]int `json:"suppressed"`
	}{conv(res.Diagnostics), conv(res.Stale), res.Suppressed}, "", "  ")
}

// collectIgnores parses every //lint:ignore directive in the package,
// reporting malformed ones (missing code or missing reason) as GL000.
func collectIgnores(pkg *Package, r *reporter) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				var codes []string
				for len(fields) > 0 && strings.HasPrefix(fields[0], "GL") {
					codes = append(codes, fields[0])
					fields = fields[1:]
				}
				pos := pkg.Fset.Position(c.Pos())
				if len(codes) == 0 {
					r.report(c.Pos(), "GL000", "lint:ignore directive names no GLxxx rule code")
					continue
				}
				if len(fields) == 0 {
					r.report(c.Pos(), "GL000", "lint:ignore %s has no reason; a one-line justification is required", strings.Join(codes, " "))
					continue
				}
				out = append(out, ignoreDirective{codes: codes, reason: strings.Join(fields, " "), pos: pos})
			}
		}
	}
	return out
}

// matchIgnore returns the directive suppressing d, if any: same file, same
// rule code, and on the same line as the finding or the line directly above.
func matchIgnore(dirs []ignoreDirective, d Diagnostic) *ignoreDirective {
	if d.Code == "GL000" {
		return nil // malformed directives cannot be suppressed
	}
	for i := range dirs {
		dir := &dirs[i]
		if dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.pos.Line != d.Pos.Line && dir.pos.Line != d.Pos.Line-1 {
			continue
		}
		for _, code := range dir.codes {
			if code == d.Code {
				return dir
			}
		}
	}
	return nil
}

// inspectFiles walks every file of the package.
func inspectFiles(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}
