package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one rule violation at a source position.
type Diagnostic struct {
	// Pos locates the violation (file, line, column).
	Pos token.Position
	// Code is the rule code, e.g. "GL001".
	Code string
	// Message explains the violation and the expected fix.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Code, d.Message)
}

// Result is the outcome of checking one package: the surviving diagnostics
// plus per-code counts of findings and of suppressed findings.
type Result struct {
	Diagnostics []Diagnostic
	// Suppressed counts, per rule code, the findings silenced by a
	// well-formed //lint:ignore directive.
	Suppressed map[string]int
}

// Rule is one graphlint check.
type Rule struct {
	// Code is the stable identifier (GL001..).
	Code string
	// Doc is the one-line description shown by graphlint -rules.
	Doc string
	// check appends the rule's findings for pkg to the report.
	check func(pkg *Package, r *reporter)
}

// Rules returns the full rule set in code order.
func Rules() []Rule {
	return []Rule{
		{Code: "GL001", Doc: "order-sensitive accumulation (append / channel send) inside a map-range body", check: checkGL001},
		{Code: "GL002", Doc: "math/rand import outside internal/rng, or time.Now call outside the clock allowlist (internal/obs, cmd/benchsnap, internal/wire)", check: checkGL002},
		{Code: "GL003", Doc: "fmt.Print* call or os.Stdout reference in an internal/ library package", check: checkGL003},
		{Code: "GL004", Doc: "floating-point += / -= on a captured variable inside goroutine-launched code", check: checkGL004},
		{Code: "GL005", Doc: "exported identifier in the root package without a doc comment", check: checkGL005},
		{Code: "GL006", Doc: "sync.Mutex, sync.RWMutex or partition.Assignment passed by value", check: checkGL006},
		{Code: "GL007", Doc: "time.Now / time.Since / time.Until call outside the clock allowlist (obs seam, benchsnap timestamps, wire socket deadlines)", check: checkGL007},
		{Code: "GL008", Doc: "ValidateOptions.CapacitySlack set to a capacity-disabling constant (>= 10) instead of SkipCapacity", check: checkGL008},
	}
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	codes  []string
	reason string
	pos    token.Position
}

// reporter accumulates diagnostics for one package and applies suppression.
type reporter struct {
	pkg  *Package
	diag []Diagnostic
}

// report records a finding at pos.
func (r *reporter) report(pos token.Pos, code, format string, args ...any) {
	r.diag = append(r.diag, Diagnostic{
		Pos:     r.pkg.Fset.Position(pos),
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	})
}

// Check runs every rule over pkg and returns the surviving diagnostics,
// sorted by position, plus suppression counts.
//
// A finding is suppressed by a comment of the form
//
//	//lint:ignore GL002 one-line reason
//
// either trailing on the offending line or alone on the line directly above
// it. The reason is mandatory: a directive without one does not suppress
// anything and is itself reported (as GL000), so blanket or unexplained
// suppressions cannot land.
func Check(pkg *Package) Result {
	r := &reporter{pkg: pkg}
	for _, rule := range Rules() {
		rule.check(pkg, r)
	}
	directives := collectIgnores(pkg, r)
	res := Result{Suppressed: map[string]int{}}
	for _, d := range r.diag {
		if dir := matchIgnore(directives, d); dir != nil {
			res.Suppressed[d.Code]++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Code < b.Code
	})
	return res
}

// collectIgnores parses every //lint:ignore directive in the package,
// reporting malformed ones (missing code or missing reason) as GL000.
func collectIgnores(pkg *Package, r *reporter) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				var codes []string
				for len(fields) > 0 && strings.HasPrefix(fields[0], "GL") {
					codes = append(codes, fields[0])
					fields = fields[1:]
				}
				pos := pkg.Fset.Position(c.Pos())
				if len(codes) == 0 {
					r.report(c.Pos(), "GL000", "lint:ignore directive names no GLxxx rule code")
					continue
				}
				if len(fields) == 0 {
					r.report(c.Pos(), "GL000", "lint:ignore %s has no reason; a one-line justification is required", strings.Join(codes, " "))
					continue
				}
				out = append(out, ignoreDirective{codes: codes, reason: strings.Join(fields, " "), pos: pos})
			}
		}
	}
	return out
}

// matchIgnore returns the directive suppressing d, if any: same file, same
// rule code, and on the same line as the finding or the line directly above.
func matchIgnore(dirs []ignoreDirective, d Diagnostic) *ignoreDirective {
	if d.Code == "GL000" {
		return nil // malformed directives cannot be suppressed
	}
	for i := range dirs {
		dir := &dirs[i]
		if dir.pos.Filename != d.Pos.Filename {
			continue
		}
		if dir.pos.Line != d.Pos.Line && dir.pos.Line != d.Pos.Line-1 {
			continue
		}
		for _, code := range dir.codes {
			if code == d.Code {
				return dir
			}
		}
	}
	return nil
}

// inspectFiles walks every file of the package.
func inspectFiles(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}
