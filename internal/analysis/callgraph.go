package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the static call graph the module-wide rules (GL009–GL011)
// traverse. The graph is deliberately conservative: edges the type checker
// can prove (direct calls, concrete method calls) are exact, and edges it
// cannot prove are over-approximated — an interface method call fans out to
// every module type implementing the interface, and a call through a
// function value fans out to every address-taken module function with a
// compatible signature. Over-approximation can only produce spurious
// findings (silenced with a reasoned //lint:ignore), never missed ones,
// which is the right failure mode for a determinism certificate.

// FuncNode is one module function (or method) in the call graph.
type FuncNode struct {
	// Obj is the type checker's object for the function.
	Obj *types.Func
	// Decl is the function's declaration, body included.
	Decl *ast.FuncDecl
	// Pkg is the package the function was loaded from.
	Pkg *Package
	// Calls are the outgoing edges, in source order (conservative edges
	// ordered by callee name at the same call site).
	Calls []CallEdge

	facts   []factHit // leaf facts, computed by computeFacts
	hotHits []factHit // GL010 allocation-pattern hits, computed lazily
	hotDone bool
	hot     *hotPathDirective
}

// Name renders the function as package.Func or package.(Type).Method.
func (n *FuncNode) Name() string {
	obj := n.Obj
	pkg := shortPkg(obj.Pkg())
	if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return pkg + ".(" + named.Obj().Name() + ")." + obj.Name()
		}
	}
	return pkg + "." + obj.Name()
}

// shortPkg returns the last import-path element of pkg ("" for nil).
func shortPkg(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// CallEdge is one resolved call: exact for direct and concrete-method
// calls, conservative (Via != "") for interface and function-value calls.
type CallEdge struct {
	// Callee is the target function node.
	Callee *FuncNode
	// Pos locates the call expression in the caller.
	Pos token.Pos
	// Via explains a conservative edge ("interface partition.Partitioner",
	// "func value"); empty for an exact edge.
	Via string
}

// dynSite is one call the type checker cannot resolve exactly; the build's
// resolution worklist expands each site into conservative edges.
type dynSite struct {
	caller *FuncNode
	pos    token.Pos
	// iface and method describe an interface method call; when iface is
	// nil the site is a call through a function value of signature sig.
	iface  *types.Interface
	method string
	sig    string
	// ifaceName names the interface for the edge's Via label.
	ifaceName string
}

// Module is the whole-program view the module-wide rules run over: every
// loaded package, the function index, and the resolved call graph.
type Module struct {
	// Pkgs are the packages the graph covers, sorted by import path.
	Pkgs []*Package
	// Path is the module path (import path of the root package).
	Path string

	fset  *token.FileSet
	funcs []*FuncNode
	byObj map[*types.Func]*FuncNode
	// enclosing maps each file to its package, for directive lookups.
	pkgByFile map[string]*Package
}

// BuildModule indexes every function of pkgs and resolves the call graph.
// The packages must come from one Loader (they share its FileSet).
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:      pkgs,
		byObj:     map[*types.Func]*FuncNode{},
		pkgByFile: map[string]*Package{},
	}
	if len(pkgs) > 0 {
		m.fset = pkgs[0].Fset
		m.Path = pkgs[0].Module
	}
	// Pass 1: index declared functions, in (package, file, position) order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			m.pkgByFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				m.funcs = append(m.funcs, node)
				m.byObj[obj] = node
			}
		}
	}
	addrTaken := m.collectAddressTaken()
	var sites []dynSite
	for _, node := range m.funcs {
		sites = append(sites, m.collectCalls(node)...)
		computeFacts(node)
	}
	m.resolveDynamic(sites, addrTaken)
	for _, node := range m.funcs {
		sortEdges(node.Calls)
	}
	return m
}

// Funcs returns every indexed function in deterministic order.
func (m *Module) Funcs() []*FuncNode { return m.funcs }

// node returns the FuncNode for obj, or nil for functions outside the
// module (stdlib) or without bodies.
func (m *Module) node(obj *types.Func) *FuncNode {
	if obj == nil {
		return nil
	}
	return m.byObj[obj]
}

// collectAddressTaken finds every module function whose identifier is used
// outside call position — assigned, passed, stored or returned as a value —
// keyed by normalized signature. A call through a function value can reach
// exactly these functions (plus stdlib ones, which have no bodies to
// analyze), so they are the conservative targets of func-value call sites.
func (m *Module) collectAddressTaken() map[string][]*FuncNode {
	out := map[string][]*FuncNode{}
	for _, pkg := range m.Pkgs {
		callIdents := map[*ast.Ident]bool{}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id := calleeIdent(call.Fun); id != nil {
					callIdents[id] = true
				}
				return true
			})
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || callIdents[id] {
					return true
				}
				fn, ok := pkg.Info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				if node := m.node(fn); node != nil {
					key := sigKey(fn.Type().(*types.Signature))
					if !containsNode(out[key], node) {
						out[key] = append(out[key], node)
					}
				}
				return true
			})
		}
	}
	for _, nodes := range out {
		sortNodes(nodes)
	}
	return out
}

func containsNode(nodes []*FuncNode, n *FuncNode) bool {
	for _, x := range nodes {
		if x == n {
			return true
		}
	}
	return false
}

// calleeIdent unwraps a call's Fun expression to the identifier that names
// the callee: x in x(...), x.f in pkg-qualified and method calls, and the
// inner expression of parenthesized and generic-instantiated forms.
func calleeIdent(fun ast.Expr) *ast.Ident {
	for {
		switch e := fun.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			return e.Sel
		case *ast.ParenExpr:
			fun = e.X
		case *ast.IndexExpr:
			fun = e.X
		case *ast.IndexListExpr:
			fun = e.X
		default:
			return nil
		}
	}
}

// collectCalls resolves node's call expressions: exact edges immediately,
// unresolvable ones as dynamic sites for the worklist. Calls inside func
// literals are attributed to the enclosing declared function — an
// over-approximation (the literal might never run) consistent with the
// graph's conservative direction. Calls inside invariants.Enabled-gated
// blocks are omitted: Enabled is a build-tag constant (false by default),
// so the compiler dead-codes those blocks out of the shipped binary — the
// same exclusion the loader applies to tag-gated files, one granularity
// finer.
func (m *Module) collectCalls(node *FuncNode) []dynSite {
	pkg := node.Pkg
	cold := coldRanges(pkg, node.Decl.Body)
	var sites []dynSite
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if inCold(cold, call.Pos()) {
			return true
		}
		// A conversion T(x) is not a call.
		if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				callee := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					iface := sel.Recv().Underlying().(*types.Interface)
					sites = append(sites, dynSite{
						caller: node, pos: call.Pos(),
						iface: iface, method: callee.Name(),
						ifaceName: types.TypeString(sel.Recv(), shortQualifier),
					})
				} else if target := m.node(callee); target != nil {
					node.Calls = append(node.Calls, CallEdge{Callee: target, Pos: call.Pos()})
				}
				return true
			}
			// Package-qualified call (pkg.F) or a func-typed field/value.
			m.resolveIdentCall(node, call, fun.Sel, &sites)
		case *ast.Ident:
			m.resolveIdentCall(node, call, fun, &sites)
		default:
			// Call of an arbitrary expression (map element, call result):
			// a func-value site resolved by signature.
			if sig, ok := pkg.Info.TypeOf(call.Fun).(*types.Signature); ok {
				sites = append(sites, dynSite{caller: node, pos: call.Pos(), sig: sigKey(sig)})
			}
		}
		return true
	})
	return sites
}

// resolveIdentCall classifies a call whose callee is named by id: an exact
// edge for a declared function, nothing for builtins, and a func-value
// dynamic site for variables and parameters of function type.
func (m *Module) resolveIdentCall(node *FuncNode, call *ast.CallExpr, id *ast.Ident, sites *[]dynSite) {
	switch obj := node.Pkg.Info.Uses[id].(type) {
	case *types.Func:
		if target := m.node(obj); target != nil {
			node.Calls = append(node.Calls, CallEdge{Callee: target, Pos: call.Pos()})
		}
	case *types.Builtin:
		// append/len/...: no edge; facts record the allocation side.
	case *types.Var:
		if sig, ok := obj.Type().Underlying().(*types.Signature); ok {
			*sites = append(*sites, dynSite{caller: node, pos: call.Pos(), sig: sigKey(sig)})
		}
	}
}

// resolveDynamic expands the unresolved call sites into conservative edges
// with an explicit worklist: interface sites fan out to every module type
// implementing the interface, func-value sites to every address-taken
// function with a matching signature. Processing an entry never enqueues
// new sites (the site and address-taken sets are fixed at build time), so
// the loop terminates after one sweep; the worklist form keeps the
// resolution order explicit and deterministic.
func (m *Module) resolveDynamic(sites []dynSite, addrTaken map[string][]*FuncNode) {
	named := m.moduleNamedTypes()
	work := append([]dynSite(nil), sites...)
	for len(work) > 0 {
		site := work[0]
		work = work[1:]
		if site.iface != nil {
			for _, t := range named {
				impl := implementation(t, site.iface, site.method)
				if impl == nil {
					continue
				}
				if target := m.node(impl); target != nil {
					site.caller.Calls = append(site.caller.Calls, CallEdge{
						Callee: target, Pos: site.pos,
						Via: "interface " + site.ifaceName,
					})
				}
			}
			continue
		}
		for _, target := range addrTaken[site.sig] {
			site.caller.Calls = append(site.caller.Calls, CallEdge{
				Callee: target, Pos: site.pos, Via: "func value",
			})
		}
	}
}

// moduleNamedTypes lists every named (non-interface) type declared in the
// module, in deterministic (package, name) order.
func (m *Module) moduleNamedTypes() []types.Type {
	var out []types.Type
	for _, pkg := range m.Pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			out = append(out, t)
		}
	}
	return out
}

// implementation returns t's (or *t's) method named method when t
// implements iface, or nil.
func implementation(t types.Type, iface *types.Interface, method string) *types.Func {
	target := t
	if !types.Implements(t, iface) {
		pt := types.NewPointer(t)
		if !types.Implements(pt, iface) {
			return nil
		}
		target = pt
	}
	obj, _, _ := types.LookupFieldOrMethod(target, true, nil, method)
	fn, _ := obj.(*types.Func)
	return fn
}

// sigKey normalizes a signature (parameters and results, receiver ignored)
// for func-value target matching.
func sigKey(sig *types.Signature) string {
	plain := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(plain, nil)
}

// shortQualifier renders package names by their last path element.
func shortQualifier(pkg *types.Package) string { return shortPkg(pkg) }

func sortNodes(nodes []*FuncNode) {
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Pkg.Path != nodes[j].Pkg.Path {
			return nodes[i].Pkg.Path < nodes[j].Pkg.Path
		}
		return nodes[i].Obj.Pos() < nodes[j].Obj.Pos()
	})
}

func sortEdges(edges []CallEdge) {
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].Pos != edges[j].Pos {
			return edges[i].Pos < edges[j].Pos
		}
		return edges[i].Callee.Name() < edges[j].Callee.Name()
	})
}

// isSeamPackage reports whether path (module-relative) is one of the
// sanctioned nondeterminism seams: the sites GL002/GL007 already allow
// and through which every clock read and random draw is required to flow.
// GL009's certificate traversal stops at a seam boundary — a path into
// internal/rng is a *seeded* draw by construction, a path into internal/obs
// is record-only telemetry, and internal/wire's only wall-clock read is the
// deadline arming in deadline.go (GL002/GL007 flag any other wire file;
// the cluster telemetry-upload path records and timestamps exclusively
// through obs), which never influences results (DESIGN.md §14).
func (m *Module) isSeamPackage(pkg *Package) bool {
	rel := strings.TrimPrefix(pkg.Path, m.Path+"/")
	switch rel {
	case "internal/rng", "internal/obs", "internal/wire", "cmd/benchsnap":
		return true
	}
	return false
}
