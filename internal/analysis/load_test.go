package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTagModule lays out a throwaway module exercising the loader's file
// selection: a root package with a build-tag twin pair, a subdirectory
// whose only file is gated on an unsatisfied tag, and decoys (_-prefixed
// and _test.go files full of invalid Go) the loader must never read.
func writeTagModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/tagmod\n\ngo 1.22\n",
		"fixture.go": `// Package tagmod is a loader fixture.
package tagmod

// Variant names the build variant that was loaded.
func Variant() string { return variant }
`,
		"enabled.go": `//go:build demo_tag

package tagmod

const variant = "tagged"
`,
		"disabled.go": `//go:build !demo_tag

package tagmod

const variant = "default"
`,
		// Only file in its directory, gated off by default: the directory is
		// not a package under the default tag set and must be skipped, not
		// fail the walk.
		"gated/gated.go": `//go:build demo_tag

// Package gated only exists under -tags demo_tag.
package gated

// On reports the gate fired.
func On() bool { return true }
`,
		// The toolchain ignores _-prefixed and test files; so must the
		// loader. Invalid Go proves they are never parsed.
		"_broken.go":      "this is not Go",
		"broken_test.go":  "neither is this",
		"gated/_junk.go":  "nor this",
		"gated/x_test.go": "package different_package_name_entirely!",
	}
	for name, src := range files {
		full := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func loadedFiles(t *testing.T, pkg *Package) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, f := range pkg.Files {
		out[filepath.Base(pkg.Fset.Position(f.Package).Filename)] = true
	}
	return out
}

// TestLoaderBuildTagFiltering pins the loader's `go build` parity: under the
// default tag set the //go:build demo_tag file is excluded and its !demo_tag
// twin loads; a directory whose every file is gated out is skipped rather
// than reported as a broken package.
func TestLoaderBuildTagFiltering(t *testing.T) {
	root := writeTagModule(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Packages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.com/tagmod" {
		t.Fatalf("default load: want just the root package, got %d packages", len(pkgs))
	}
	files := loadedFiles(t, pkgs[0])
	if !files["fixture.go"] || !files["disabled.go"] {
		t.Errorf("default load missing untagged files: %v", files)
	}
	if files["enabled.go"] {
		t.Errorf("default load included the demo_tag-gated file: %v", files)
	}
}

// TestLoaderSetTags flips the tag on: the tagged twin replaces the default
// one, and the previously tag-excluded directory becomes a package.
func TestLoaderSetTags(t *testing.T) {
	root := writeTagModule(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.SetTags("demo_tag")
	pkgs, err := l.Packages()
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, pkg := range pkgs {
		byPath[pkg.Path] = pkg
	}
	rootPkg := byPath["example.com/tagmod"]
	if rootPkg == nil {
		t.Fatalf("tagged load lost the root package: %d packages", len(pkgs))
	}
	files := loadedFiles(t, rootPkg)
	if !files["enabled.go"] || files["disabled.go"] {
		t.Errorf("tagged load picked the wrong twin: %v", files)
	}
	if byPath["example.com/tagmod/gated"] == nil {
		t.Errorf("tagged load skipped the now-buildable gated package")
	}
	if len(pkgs) != 2 {
		t.Errorf("tagged load: want 2 packages, got %d", len(pkgs))
	}
}

// TestLoaderSetTagsAfterLoadPanics pins the ordering contract: tags select
// which files exist, so changing them after a package was cached would
// silently serve stale packages.
func TestLoaderSetTagsAfterLoadPanics(t *testing.T) {
	root := writeTagModule(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Packages(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetTags after load did not panic")
		}
	}()
	l.SetTags("demo_tag")
}
