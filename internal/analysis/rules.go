package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// ---------------------------------------------------------------------------
// GL001 — order-sensitive accumulation inside a map-range body.
//
// Go randomises map iteration order, so a map-range body that appends to a
// slice declared outside the loop, or sends on a channel, produces output
// whose order varies run to run — the exact bug class that made small-window
// sliding-TLP runs worker-count-sensitive before PR 2 sorted its refill and
// sweep paths. Writes keyed by the range variable (m2[k] = v) and commutative
// reductions (sum += v) are order-insensitive and are not flagged. The
// sanctioned fix is to collect the keys, sort, and iterate the sorted slice;
// a collect-then-sort site needs a one-line //lint:ignore GL001 reason.
// ---------------------------------------------------------------------------

func checkGL001(pkg *Package, r *reporter) {
	inspectFiles(pkg, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, ok := tv.Type.Underlying().(*types.Map); !ok {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.SendStmt:
				r.report(s.Pos(), "GL001",
					"channel send inside a map-range body delivers in map-iteration order (nondeterministic); iterate a sorted key slice instead")
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pkg, call) || i >= len(s.Lhs) {
						continue
					}
					if target, outside := declaredOutside(pkg, s.Lhs[i], rs); outside {
						r.report(s.Pos(), "GL001",
							"append to %q inside a map-range body accumulates in map-iteration order (nondeterministic); collect keys, sort, then iterate", target)
					}
				}
			}
			return true
		})
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pkg *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, ok = pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// declaredOutside reports whether the base identifier of expr names a
// variable declared outside node, returning the identifier's name.
func declaredOutside(pkg *Package, expr ast.Expr, node ast.Node) (string, bool) {
	id := baseIdent(expr)
	if id == nil {
		return "", false
	}
	obj := pkg.Info.ObjectOf(id)
	if obj == nil || obj.Pos() == 0 {
		return "", false
	}
	outside := obj.Pos() < node.Pos() || obj.Pos() >= node.End()
	return id.Name, outside
}

// baseIdent returns the leftmost identifier of expr (x in x, x.f, x[i]).
func baseIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// GL002 — nondeterministic inputs: math/rand and time.Now.
//
// Every random decision in the repository must flow through internal/rng's
// seeded SplitMix64/xoshiro generator so that runs are reproducible across
// machines and Go versions, and wall-clock time must never influence an
// algorithm. Only internal/rng may import math/rand (it wraps the seeded
// generator), and only three sites may call time.Now: internal/obs (the
// sanctioned clock seam), cmd/benchsnap (which timestamps benchmark
// snapshots), and — file-scoped, not package-wide — internal/wire's
// deadline.go (net.Conn deadlines compare against the kernel's wall clock,
// so an injected obs.Clock would hang socket I/O). The rest of internal/wire
// is held to the seam: its telemetry-upload and span-recording paths time
// everything through obs, so a clock read in any other wire file is a bug.
// Elapsed-time measurement everywhere else goes through obs.StartWatch,
// which respects the injectable obs.Clock.
// ---------------------------------------------------------------------------

func checkGL002(pkg *Package, r *reporter) {
	if !pkg.isAt("internal/rng") {
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == "math/rand" || p == "math/rand/v2" {
					r.report(imp.Pos(), "GL002",
						"import of %s outside internal/rng: all randomness must flow through the seeded internal/rng generator", p)
				}
			}
		}
	}
	if pkg.isAt("internal/obs") || pkg.isAt("cmd/benchsnap") {
		return
	}
	wireDeadline := pkg.isAt("internal/wire")
	inspectFiles(pkg, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
			if wireDeadline && pkg.inFile(sel.Pos(), "deadline.go") {
				return true
			}
			r.report(sel.Pos(), "GL002",
				"time.Now outside the clock allowlist (internal/obs, cmd/benchsnap, internal/wire/deadline.go): wall-clock must not influence results; measure elapsed time with obs.StartWatch")
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// GL003 — stdout writes from internal/ library packages.
//
// Library packages return data or accept an io.Writer; only the cmd/ and
// examples/ layers may talk to the terminal. A stray fmt.Print in a library
// package corrupts CSV piped from the CLIs and hides behind test output.
// ---------------------------------------------------------------------------

func checkGL003(pkg *Package, r *reporter) {
	if !strings.Contains(pkg.Path+"/", "/internal/") {
		return
	}
	printFuncs := map[string]bool{"Print": true, "Printf": true, "Println": true}
	inspectFiles(pkg, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch obj := pkg.Info.Uses[sel.Sel].(type) {
		case *types.Func:
			if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && printFuncs[obj.Name()] {
				r.report(sel.Pos(), "GL003",
					"fmt.%s in an internal library package writes to stdout; return data or take an io.Writer", obj.Name())
			}
		case *types.Var:
			if obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "Stdout" {
				r.report(sel.Pos(), "GL003",
					"os.Stdout referenced in an internal library package; take an io.Writer and let the cmd layer choose the destination")
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// GL004 — racy floating-point accumulation in goroutine-launched literals.
//
// A captured float accumulated with += from a goroutine is both a data race
// and — even when externally synchronised — an order-of-arrival sum, which
// breaks bit-identical reproducibility because float addition is not
// associative. The sanctioned shape is the slot accumulator used by
// internal/engine and the metric shards: each goroutine writes its own
// element (acc[i] = v) and a single owner folds the slots in canonical
// order. Indexed writes are therefore not flagged; captured bare
// identifiers are.
// ---------------------------------------------------------------------------

func checkGL004(pkg *Package, r *reporter) {
	inspectFiles(pkg, func(n ast.Node) bool {
		var lits []*ast.FuncLit
		switch s := n.(type) {
		case *ast.GoStmt:
			if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
				lits = append(lits, fl)
			}
		case *ast.CallExpr:
			if calleeInPackageSuffix(pkg, s, "/internal/parallel") {
				for _, arg := range s.Args {
					if fl, ok := arg.(*ast.FuncLit); ok {
						lits = append(lits, fl)
					}
				}
			}
		}
		for _, fl := range lits {
			checkGL004Lit(pkg, r, fl)
		}
		return true
	})
}

// checkGL004Lit flags captured-float compound assignment inside one
// goroutine-launched literal.
func checkGL004Lit(pkg *Package, r *reporter, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok.String() != "+=" && as.Tok.String() != "-=") || len(as.Lhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true // indexed/field writes are the slot-accumulator shape
		}
		t := pkg.Info.TypeOf(id)
		if t == nil {
			return true
		}
		basic, ok := t.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsFloat == 0 {
			return true
		}
		if _, outside := declaredOutside(pkg, id, fl); outside {
			r.report(as.Pos(), "GL004",
				"float %s %s inside a goroutine-launched func literal accumulates in arrival order; use a per-goroutine slot and fold in canonical order (see internal/engine)", id.Name, as.Tok)
		}
		return true
	})
}

// calleeInPackageSuffix reports whether call's callee is a package-level
// function of a package whose import path ends with suffix.
func calleeInPackageSuffix(pkg *Package, call *ast.CallExpr, suffix string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), suffix)
}

// ---------------------------------------------------------------------------
// GL005 — undocumented exported identifiers in the root facade package.
//
// The root package is the library's public API; every exported identifier
// is someone's first contact with the system and must say what it is. Only
// the facade is checked — internal packages document themselves for
// maintainers at whatever granularity fits.
// ---------------------------------------------------------------------------

func checkGL005(pkg *Package, r *reporter) {
	if pkg.Path != pkg.Module {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					r.report(d.Name.Pos(), "GL005", "exported %s %s has no doc comment", declKind(d), d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && sp.Doc == nil && d.Doc == nil {
							r.report(sp.Name.Pos(), "GL005", "exported type %s has no doc comment", sp.Name.Name)
						}
					case *ast.ValueSpec:
						// A preceding doc comment on the spec or on the decl
						// (group doc) counts; a trailing line comment does not
						// — godoc renders only the former as documentation.
						if sp.Doc != nil || d.Doc != nil {
							continue
						}
						for _, name := range sp.Names {
							if name.IsExported() {
								r.report(name.Pos(), "GL005", "exported %s %s has no doc comment", strings.ToLower(d.Tok.String()), name.Name)
							}
						}
					}
				}
			}
		}
	}
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// ---------------------------------------------------------------------------
// GL006 — locks and assignments passed by value.
//
// Copying a sync.Mutex/RWMutex silently forks the lock state; copying a
// partition.Assignment forks the parts/loads slices' header while sharing
// the backing arrays, so mutations through the copy corrupt the original's
// load accounting. Both must travel as pointers.
// ---------------------------------------------------------------------------

func checkGL006(pkg *Package, r *reporter) {
	inspectFiles(pkg, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok {
			return true
		}
		var fields []*ast.Field
		if fd.Recv != nil {
			fields = append(fields, fd.Recv.List...)
		}
		if fd.Type.Params != nil {
			fields = append(fields, fd.Type.Params.List...)
		}
		for _, field := range fields {
			t := pkg.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if bad := badValueType(t); bad != "" {
				r.report(field.Type.Pos(), "GL006",
					"%s passed by value; pass *%s (value copies fork lock or load state)", bad, bad)
			}
		}
		return true
	})
}

// badValueType reports the display name of t when t is one of the
// must-not-copy types (sync.Mutex, sync.RWMutex, partition.Assignment)
// taken by value, or "" otherwise.
func badValueType(t types.Type) string {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch {
	case obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex"):
		return "sync." + obj.Name()
	case strings.HasSuffix(obj.Pkg().Path(), "/internal/partition") && obj.Name() == "Assignment":
		return "partition.Assignment"
	}
	return ""
}

// ---------------------------------------------------------------------------
// GL007 — wall-clock reads outside the telemetry clock seam.
//
// internal/obs is the single sanctioned clock site: its Clock seam makes
// every timing path injectable (deterministic tests swap in a step clock),
// and its Stopwatch is the one elapsed-time primitive. Direct calls to
// time.Now / time.Since / time.Until anywhere else — library code, mains,
// examples — bypass the seam and fragment timing behaviour. Two sites are
// exempt besides the seam: cmd/benchsnap for its snapshot timestamp (the
// one legitimate "what time is it" read in the module), and — file-scoped —
// internal/wire's deadline.go for net.Conn deadline arming: socket
// deadlines are compared against the kernel's wall clock by the runtime
// poller, so a deadline computed from an injected obs.Clock would hang (or
// instantly expire) real socket I/O. The rest of internal/wire gets no
// allowance — its worker spans, barrier-skew instants and telemetry-upload
// codec all time through obs, so those paths stay deterministic under an
// injected clock. GL002 separately flags time.Now as a nondeterminism
// source; GL007 covers the derived helpers and enforces the seam itself.
// ---------------------------------------------------------------------------

func checkGL007(pkg *Package, r *reporter) {
	if pkg.isAt("internal/obs") || pkg.isAt("cmd/benchsnap") {
		return
	}
	wireDeadline := pkg.isAt("internal/wire")
	wallClock := map[string]bool{"Now": true, "Since": true, "Until": true}
	inspectFiles(pkg, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallClock[fn.Name()] {
			if wireDeadline && pkg.inFile(sel.Pos(), "deadline.go") {
				return true
			}
			r.report(sel.Pos(), "GL007",
				"time.%s outside the clock allowlist (internal/obs, cmd/benchsnap, internal/wire/deadline.go): route timing through the obs clock seam (obs.StartWatch / obs.Now)", fn.Name())
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// GL008 — capacity checks disabled via an absurd CapacitySlack.
//
// Before ValidateOptions.SkipCapacity existed, call sites that only needed
// structural validation (completeness, range checks) disabled the load bound
// by passing a slack like 1e9 — a magic number that reads as a real
// tolerance and silently overflows the int bound computation for large
// capacities. SkipCapacity says what it means; slacks above the threshold
// are flagged as disablement in disguise. Genuine expectation-balanced
// baselines use slacks in the low single digits.
// ---------------------------------------------------------------------------

// gl008MaxSlack is the largest CapacitySlack accepted as a real tolerance; a
// constant at or above it is capacity-check disablement and must be written
// as SkipCapacity instead.
const gl008MaxSlack = 10

func checkGL008(pkg *Package, r *reporter) {
	inspectFiles(pkg, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(cl)
		if t == nil || !isValidateOptions(t) {
			return true
		}
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "CapacitySlack" {
				continue
			}
			tv, ok := pkg.Info.Types[kv.Value]
			if !ok || tv.Value == nil {
				continue
			}
			if slack, ok := constant.Float64Val(tv.Value); ok && slack >= gl008MaxSlack {
				r.report(kv.Pos(), "GL008",
					"CapacitySlack %v effectively disables the capacity check; set SkipCapacity: true instead", tv.Value)
			}
		}
		return true
	})
}

// isValidateOptions reports whether t is partition.ValidateOptions.
func isValidateOptions(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "/internal/partition") &&
		obj.Name() == "ValidateOptions"
}

// isAt reports whether the package lives at the module-relative path rel.
func (p *Package) isAt(rel string) bool {
	return p.Path == p.Module+"/"+rel
}

// inFile reports whether pos lands in the named file (basename) of the
// package. File-scoped rule exemptions use it to keep an allowance narrower
// than a whole package.
func (p *Package) inFile(pos token.Pos, base string) bool {
	return filepath.Base(p.Fset.Position(pos).Filename) == base
}
