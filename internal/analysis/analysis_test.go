package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// expectation is one diagnostic a snippet file declares it should produce,
// via a trailing "// want GLxxx" comment (or "// want-next GLxxx" on the
// line above, for diagnostics that land on lines which cannot carry a
// trailing marker, such as //lint:ignore directive lines).
type expectation struct {
	file string
	line int
	code string
}

func (e expectation) String() string {
	return fmt.Sprintf("%s:%d: %s", e.file, e.line, e.code)
}

// parseWants extracts the expectations from every .go file in dir.
func parseWants(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, marker := range []struct {
				prefix string
				offset int
			}{
				{"// want-next ", 1},
				{"// want ", 0},
			} {
				idx := strings.Index(line, marker.prefix)
				if idx < 0 {
					continue
				}
				for _, code := range strings.Fields(line[idx+len(marker.prefix):]) {
					if !strings.HasPrefix(code, "GL") {
						t.Fatalf("%s:%d: malformed want comment: %q", e.Name(), i+1, line)
					}
					out = append(out, expectation{file: e.Name(), line: i + 1 + marker.offset, code: code})
				}
				break
			}
		}
	}
	return out
}

// diagKeys renders diagnostics in the expectation format.
func diagKeys(diags []Diagnostic) []expectation {
	var out []expectation
	for _, d := range diags {
		out = append(out, expectation{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line, code: d.Code})
	}
	return out
}

// compareWants asserts got matches the want expectations exactly.
func compareWants(t *testing.T, want, got []expectation) {
	t.Helper()
	sortExpectations(want)
	sortExpectations(got)
	if len(want) != len(got) {
		t.Errorf("diagnostic count: got %d, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
		return
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("diagnostic %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func sortExpectations(es []expectation) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.code < b.code
	})
}

// TestCorpus checks every snippet package under testdata/src against its
// declared expectations. The import path each package is checked under is
// part of the case, because several rules key off the package's location in
// the module (internal/, internal/rng, the module root).
func TestCorpus(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	mod := loader.ModulePath()
	cases := []struct {
		name string
		dir  string
		// asPath is the fabricated import path, with "<mod>" standing in
		// for the module path.
		asPath string
		// suppressed is the expected per-code suppression count.
		suppressed map[string]int
	}{
		{name: "gl001bad", dir: "gl001bad", asPath: "<mod>/internal/gl001bad"},
		{name: "gl001ok", dir: "gl001ok", asPath: "<mod>/internal/gl001ok",
			suppressed: map[string]int{"GL001": 1}},
		{name: "gl002bad", dir: "gl002bad", asPath: "<mod>/internal/gl002bad"},
		// The same constructs are clean when the package *is* the sanctioned
		// randomness home.
		{name: "gl002ok", dir: "gl002ok", asPath: "<mod>/internal/rng"},
		{name: "gl003bad", dir: "gl003bad", asPath: "<mod>/internal/gl003bad"},
		// GL003 only applies under internal/; check the ok snippet under
		// both a cmd/ path (rule not applicable) and an internal/ path
		// (applicable, but the code is clean).
		{name: "gl003ok-cmd", dir: "gl003ok", asPath: "<mod>/cmd/gl003ok"},
		{name: "gl003ok-internal", dir: "gl003ok", asPath: "<mod>/internal/gl003ok"},
		{name: "gl004bad", dir: "gl004bad", asPath: "<mod>/internal/gl004bad"},
		{name: "gl004ok", dir: "gl004ok", asPath: "<mod>/internal/gl004ok"},
		// GL005 keys off the module root path: the facade package is the
		// public surface, so it alone must be fully documented.
		{name: "gl005bad", dir: "gl005bad", asPath: "<mod>"},
		{name: "gl005ok", dir: "gl005ok", asPath: "<mod>"},
		{name: "gl006bad", dir: "gl006bad", asPath: "<mod>/internal/gl006bad"},
		{name: "gl006ok", dir: "gl006ok", asPath: "<mod>/internal/gl006ok"},
		{name: "gl007bad", dir: "gl007bad", asPath: "<mod>/internal/gl007bad"},
		// GL007 exempts only the clock seam, the snapshot tool, and the wire
		// transport; the same wall-clock reads are clean under those paths.
		{name: "gl007ok-obs", dir: "gl007ok", asPath: "<mod>/internal/obs"},
		{name: "gl007ok-benchsnap", dir: "gl007ok", asPath: "<mod>/cmd/benchsnap"},
		// The wire transport's socket-deadline arming is the third exempt
		// site, and the only file-scoped one: net.Conn deadlines compare
		// against the kernel clock, so the injectable obs.Clock cannot serve
		// them — but only deadline.go gets the allowance. The package's
		// telemetry.go carries want markers proving the same constructs are
		// flagged in every other wire file; gl007bad.ArmDeadline shows the
		// non-wire case.
		{name: "gl007wire", dir: "gl007wire", asPath: "<mod>/internal/wire"},
		{name: "gl008bad", dir: "gl008bad", asPath: "<mod>/internal/gl008bad"},
		{name: "gl008ok", dir: "gl008ok", asPath: "<mod>/internal/gl008ok"},
		{name: "gl011bad", dir: "gl011bad", asPath: "<mod>/internal/gl011bad"},
		{name: "gl011ok", dir: "gl011ok", asPath: "<mod>/internal/gl011ok"},
		{name: "suppress", dir: "suppress", asPath: "<mod>/internal/suppress",
			suppressed: map[string]int{"GL001": 1}},
	}
	covered := map[string]bool{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			pkg, err := loader.CheckDir(dir, strings.ReplaceAll(tc.asPath, "<mod>", mod))
			if err != nil {
				t.Fatalf("loading %s: %v", dir, err)
			}
			res := Check(pkg)

			compareWants(t, parseWants(t, dir), diagKeys(res.Diagnostics))
			for _, d := range res.Diagnostics {
				covered[d.Code] = true
			}

			wantSup := tc.suppressed
			if wantSup == nil {
				wantSup = map[string]int{}
			}
			if len(res.Suppressed) != len(wantSup) {
				t.Errorf("suppressed: got %v, want %v", res.Suppressed, wantSup)
			} else {
				for code, n := range wantSup {
					if res.Suppressed[code] != n {
						t.Errorf("suppressed[%s]: got %d, want %d", code, res.Suppressed[code], n)
					}
				}
			}
		})
	}
	// Every rule (plus the directive-hygiene pseudo-rule GL000) must have at
	// least one firing snippet, or the corpus has rotted.
	for _, rule := range Rules() {
		if !covered[rule.Code] {
			t.Errorf("no corpus snippet triggers %s", rule.Code)
		}
	}
	if !covered["GL000"] {
		t.Error("no corpus snippet triggers GL000 (malformed directive)")
	}
}

// TestCorpusModule checks the call-graph corpus packages through
// CheckModule — the same entry point cmd/graphlint uses — so the GL009
// certificates, the GL010 hot-path walk and the stale-directive audit all
// run exactly as they do in CI.
func TestCorpusModule(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	mod := loader.ModulePath()
	cases := []struct {
		name   string
		dir    string
		asPath string
		// wantStale is the expected number of stale //lint:ignore
		// directives the audit surfaces.
		wantStale int
	}{
		// GL009's entry-point selection keys off the module root path.
		{name: "gl009bad", dir: "gl009bad", asPath: "<mod>"},
		{name: "gl009ok", dir: "gl009ok", asPath: "<mod>"},
		{name: "gl010bad", dir: "gl010bad", asPath: "<mod>/internal/gl010bad"},
		{name: "gl010ok", dir: "gl010ok", asPath: "<mod>/internal/gl010ok"},
		{name: "stale", dir: "stale", asPath: "<mod>/internal/stale", wantStale: 1},
	}
	covered := map[string]bool{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			pkg, err := loader.CheckDir(dir, strings.ReplaceAll(tc.asPath, "<mod>", mod))
			if err != nil {
				t.Fatalf("loading %s: %v", dir, err)
			}
			res := CheckModule([]*Package{pkg})

			compareWants(t, parseWants(t, dir), diagKeys(res.Diagnostics))
			for _, d := range res.Diagnostics {
				covered[d.Code] = true
			}
			if len(res.Stale) != tc.wantStale {
				t.Errorf("stale directives: got %d (%v), want %d", len(res.Stale), res.Stale, tc.wantStale)
			}

			if tc.name == "gl009bad" {
				assertGL009Paths(t, res.Diagnostics)
			}
		})
	}
	for _, rule := range ModuleRules() {
		if !covered[rule.Code] {
			t.Errorf("no corpus snippet triggers %s", rule.Code)
		}
	}
}

// assertGL009Paths pins the structure of the gl009bad certificates: the
// two-hop clock violation must carry its full Partition -> prepare -> stamp
// route, and the interface-dispatch violation must carry a conservative
// edge labelled with the interface it fanned out through.
func assertGL009Paths(t *testing.T, diags []Diagnostic) {
	t.Helper()
	var twoHop, viaIface bool
	for _, d := range diags {
		if d.Code != "GL009" {
			continue
		}
		if len(d.Path) == 3 &&
			strings.HasSuffix(d.Path[0].Func, ".Partition") &&
			strings.HasSuffix(d.Path[1].Func, ".prepare") &&
			strings.HasSuffix(d.Path[2].Func, ".stamp") {
			twoHop = true
		}
		for _, s := range d.Path {
			if strings.HasPrefix(s.Via, "interface ") {
				viaIface = true
			}
		}
	}
	if !twoHop {
		t.Errorf("no GL009 diagnostic carries the Partition -> prepare -> stamp path: %v", diags)
	}
	if !viaIface {
		t.Errorf("no GL009 diagnostic carries a conservative interface edge: %v", diags)
	}
}

// TestModuleClean runs the full module check — per-package rules, the
// call-graph rules over the whole program, and the directive audit — over
// the repository itself: the tree must lint clean, every suppression must
// carry a reason (a reasonless one surfaces as GL000), and no suppression
// may be stale.
func TestModuleClean(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Packages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	res := CheckModule(pkgs)
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d.String())
	}
	for _, d := range res.Stale {
		t.Errorf("stale suppression: %s: %s", d.Pos, d.Message)
	}
}

// TestHotAnnotationsLinked cross-checks every //graphpart:hotpath
// annotation in the module against reality: each must name its AllocsPerRun
// test, and that test must exist as a function in a _test.go file of the
// annotated package — the static claim is only as good as the runtime
// assertion backing it.
func TestHotAnnotationsLinked(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Packages()
	if err != nil {
		t.Fatal(err)
	}
	anns := BuildModule(pkgs).HotAnnotations()
	if len(anns) < 5 {
		t.Fatalf("suspiciously few hotpath annotations in the module: %d", len(anns))
	}
	testFuncs := map[string]string{} // dir -> concatenated _test.go sources
	for _, ha := range anns {
		if ha.Test == "" {
			t.Errorf("%s: hotpath annotation on %s has no test= link", ha.Pos, ha.Func)
			continue
		}
		dir := filepath.Dir(ha.Pos.Filename)
		src, ok := testFuncs[dir]
		if !ok {
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			for _, e := range entries {
				if !strings.HasSuffix(e.Name(), "_test.go") {
					continue
				}
				b, err := os.ReadFile(filepath.Join(dir, e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				sb.Write(b)
			}
			src = sb.String()
			testFuncs[dir] = src
		}
		if !strings.Contains(src, "func "+ha.Test+"(") {
			t.Errorf("%s: hotpath annotation on %s names %s, but no such test exists in %s",
				ha.Pos, ha.Func, ha.Test, dir)
		}
	}
}
