package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// expectation is one diagnostic a snippet file declares it should produce,
// via a trailing "// want GLxxx" comment (or "// want-next GLxxx" on the
// line above, for diagnostics that land on lines which cannot carry a
// trailing marker, such as //lint:ignore directive lines).
type expectation struct {
	file string
	line int
	code string
}

func (e expectation) String() string {
	return fmt.Sprintf("%s:%d: %s", e.file, e.line, e.code)
}

// parseWants extracts the expectations from every .go file in dir.
func parseWants(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, marker := range []struct {
				prefix string
				offset int
			}{
				{"// want-next ", 1},
				{"// want ", 0},
			} {
				idx := strings.Index(line, marker.prefix)
				if idx < 0 {
					continue
				}
				for _, code := range strings.Fields(line[idx+len(marker.prefix):]) {
					if !strings.HasPrefix(code, "GL") {
						t.Fatalf("%s:%d: malformed want comment: %q", e.Name(), i+1, line)
					}
					out = append(out, expectation{file: e.Name(), line: i + 1 + marker.offset, code: code})
				}
				break
			}
		}
	}
	return out
}

// diagKeys renders a Result's diagnostics in the expectation format.
func diagKeys(res Result) []expectation {
	var out []expectation
	for _, d := range res.Diagnostics {
		out = append(out, expectation{file: filepath.Base(d.Pos.Filename), line: d.Pos.Line, code: d.Code})
	}
	return out
}

func sortExpectations(es []expectation) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.code < b.code
	})
}

// TestCorpus checks every snippet package under testdata/src against its
// declared expectations. The import path each package is checked under is
// part of the case, because several rules key off the package's location in
// the module (internal/, internal/rng, the module root).
func TestCorpus(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	mod := loader.ModulePath()
	cases := []struct {
		name string
		dir  string
		// asPath is the fabricated import path, with "<mod>" standing in
		// for the module path.
		asPath string
		// suppressed is the expected per-code suppression count.
		suppressed map[string]int
	}{
		{name: "gl001bad", dir: "gl001bad", asPath: "<mod>/internal/gl001bad"},
		{name: "gl001ok", dir: "gl001ok", asPath: "<mod>/internal/gl001ok",
			suppressed: map[string]int{"GL001": 1}},
		{name: "gl002bad", dir: "gl002bad", asPath: "<mod>/internal/gl002bad"},
		// The same constructs are clean when the package *is* the sanctioned
		// randomness home.
		{name: "gl002ok", dir: "gl002ok", asPath: "<mod>/internal/rng"},
		{name: "gl003bad", dir: "gl003bad", asPath: "<mod>/internal/gl003bad"},
		// GL003 only applies under internal/; check the ok snippet under
		// both a cmd/ path (rule not applicable) and an internal/ path
		// (applicable, but the code is clean).
		{name: "gl003ok-cmd", dir: "gl003ok", asPath: "<mod>/cmd/gl003ok"},
		{name: "gl003ok-internal", dir: "gl003ok", asPath: "<mod>/internal/gl003ok"},
		{name: "gl004bad", dir: "gl004bad", asPath: "<mod>/internal/gl004bad"},
		{name: "gl004ok", dir: "gl004ok", asPath: "<mod>/internal/gl004ok"},
		// GL005 keys off the module root path: the facade package is the
		// public surface, so it alone must be fully documented.
		{name: "gl005bad", dir: "gl005bad", asPath: "<mod>"},
		{name: "gl005ok", dir: "gl005ok", asPath: "<mod>"},
		{name: "gl006bad", dir: "gl006bad", asPath: "<mod>/internal/gl006bad"},
		{name: "gl006ok", dir: "gl006ok", asPath: "<mod>/internal/gl006ok"},
		{name: "gl007bad", dir: "gl007bad", asPath: "<mod>/internal/gl007bad"},
		// GL007 exempts only the clock seam, the snapshot tool, and the wire
		// transport; the same wall-clock reads are clean under those paths.
		{name: "gl007ok-obs", dir: "gl007ok", asPath: "<mod>/internal/obs"},
		{name: "gl007ok-benchsnap", dir: "gl007ok", asPath: "<mod>/cmd/benchsnap"},
		// The wire transport's socket-deadline arming is the third exempt
		// site: net.Conn deadlines compare against the kernel clock, so the
		// injectable obs.Clock cannot serve them. gl007bad.ArmDeadline shows
		// the identical construct flagged under a non-exempt path.
		{name: "gl007wire", dir: "gl007wire", asPath: "<mod>/internal/wire"},
		{name: "gl008bad", dir: "gl008bad", asPath: "<mod>/internal/gl008bad"},
		{name: "gl008ok", dir: "gl008ok", asPath: "<mod>/internal/gl008ok"},
		{name: "suppress", dir: "suppress", asPath: "<mod>/internal/suppress",
			suppressed: map[string]int{"GL001": 1}},
	}
	covered := map[string]bool{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			pkg, err := loader.CheckDir(dir, strings.ReplaceAll(tc.asPath, "<mod>", mod))
			if err != nil {
				t.Fatalf("loading %s: %v", dir, err)
			}
			res := Check(pkg)

			want := parseWants(t, dir)
			got := diagKeys(res)
			sortExpectations(want)
			sortExpectations(got)
			if len(want) != len(got) {
				t.Errorf("diagnostic count: got %d, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
			} else {
				for i := range want {
					if want[i] != got[i] {
						t.Errorf("diagnostic %d: got %v, want %v", i, got[i], want[i])
					}
				}
			}
			for _, d := range res.Diagnostics {
				covered[d.Code] = true
			}

			wantSup := tc.suppressed
			if wantSup == nil {
				wantSup = map[string]int{}
			}
			if len(res.Suppressed) != len(wantSup) {
				t.Errorf("suppressed: got %v, want %v", res.Suppressed, wantSup)
			} else {
				for code, n := range wantSup {
					if res.Suppressed[code] != n {
						t.Errorf("suppressed[%s]: got %d, want %d", code, res.Suppressed[code], n)
					}
				}
			}
		})
	}
	// Every rule (plus the directive-hygiene pseudo-rule GL000) must have at
	// least one firing snippet, or the corpus has rotted.
	for _, rule := range Rules() {
		if !covered[rule.Code] {
			t.Errorf("no corpus snippet triggers %s", rule.Code)
		}
	}
	if !covered["GL000"] {
		t.Error("no corpus snippet triggers GL000 (malformed directive)")
	}
}

// TestModuleClean runs every rule over every package of the module itself:
// the tree must lint clean, and every suppression in it must carry a reason
// (a reasonless one would surface as GL000 and fail this test).
func TestModuleClean(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Packages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, pkg := range pkgs {
		res := Check(pkg)
		for _, d := range res.Diagnostics {
			t.Errorf("%s: %s", pkg.Path, d.String())
		}
	}
}
