// Package analysis is the project's static analyzer: a stdlib-only
// (go/parser, go/ast, go/types via go/importer — no x/tools dependency)
// loader plus the graphlint rule set GL001..GL006 that machine-checks the
// determinism and hygiene invariants this repository's correctness claims
// rest on. See DESIGN.md §11 for the rule table and the rationale behind
// each rule.
//
// The entry points are NewLoader / (*Loader).Packages to type-check every
// non-test package of the module, and Check to run the rules over one
// loaded package. cmd/graphlint wires them into a CLI; the rules are also
// exercised against the bad/ok snippet corpus under testdata/.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked, build-tag-filtered, non-test package.
type Package struct {
	// Path is the package's import path (fabricated for snippet checks).
	Path string
	// Module is the path of the module the package was loaded from.
	Module string
	// Dir is the directory the files were read from.
	Dir string
	// Fset positions every file of every package loaded by one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test files that survived build-tag filtering.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression and identifier facts.
	Info *types.Info
}

// Loader parses and type-checks the packages of one module. Module-internal
// imports resolve recursively through the loader itself; standard-library
// imports resolve through go/importer's source importer, so no export data
// or x/tools machinery is needed.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	// tags are the build tags considered satisfied (GOOS/GOARCH implied).
	tags map[string]bool
	pkgs map[string]*Package
	// checking guards against import cycles during recursive checks.
	checking map[string]bool
	std      types.Importer
}

// NewLoader returns a loader rooted at the directory containing go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	modulePath, err := readModulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: moduleRoot,
		modulePath: modulePath,
		tags:       map[string]bool{},
		pkgs:       map[string]*Package{},
		checking:   map[string]bool{},
		std:        importer.ForCompiler(fset, "source", nil),
	}, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// SetTags marks the given build tags as satisfied, so files gated on them
// (e.g. //go:build graphpart_invariants) load instead of their default
// twins. Must be called before any package is loaded — tags select which
// files exist, and a loader caches packages by import path.
func (l *Loader) SetTags(tags ...string) {
	if len(l.pkgs) > 0 {
		panic("analysis: SetTags after packages were loaded")
	}
	for _, t := range tags {
		l.tags[t] = true
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Packages loads every package of the module (skipping testdata, vendor,
// hidden and underscore directories), sorted by import path.
func (l *Loader) Packages() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleRoot &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := l.hasBuildableGoFiles(path)
		if err != nil {
			return err
		}
		if has {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking module: %w", err)
	}
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.moduleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.modulePath
		if rel != "." {
			path = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.ensure(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// hasBuildableGoFiles reports whether dir holds at least one non-test .go
// file that survives build-tag filtering — a directory whose every file is
// gated on unsatisfied tags is not a package under the current tag set,
// exactly as `go build` treats it, and must be skipped rather than fail the
// load.
func (l *Loader) hasBuildableGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return false, err
		}
		ok, err := l.satisfiesConstraints(src)
		if err != nil {
			return false, fmt.Errorf("%s: %w", filepath.Join(dir, e.Name()), err)
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// isSourceFile matches the files `go build` would consider: .go, not a test
// file, and not .- or _-prefixed (the toolchain ignores both prefixes).
func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// ensure returns the checked package for a module-internal import path,
// loading it (and, recursively, its module-internal imports) on first use.
func (l *Loader) ensure(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	rel := strings.TrimPrefix(path, l.modulePath)
	dir := filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	pkg, err := l.checkDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// CheckDir parses and type-checks the non-test files of dir as though the
// package lived at import path asPath. It exists for the snippet corpus
// under testdata/, whose rule behaviour depends on the package's location
// in the module; the result is not cached and not importable.
func (l *Loader) CheckDir(dir, asPath string) (*Package, error) {
	return l.checkDir(dir, asPath)
}

func (l *Loader) checkDir(dir, path string) (*Package, error) {
	l.checking[path] = true
	defer delete(l.checking, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		full := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		ok, err := l.satisfiesConstraints(src)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", full, err)
		}
		if !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:   path,
		Module: l.modulePath,
		Dir:    dir,
		Fset:   l.fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}, nil
}

// importPkg resolves one import during type-checking: module-internal paths
// recurse through the loader, everything else goes to the source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.ensure(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// satisfiesConstraints evaluates the file's //go:build line (if any) against
// the loader's tag set plus the host GOOS/GOARCH and release tags. Files
// gated on unsatisfied tags — e.g. the graphpart_invariants sanitizer
// variants — are excluded, exactly as `go build` would exclude them, so the
// default and tagged variants of a package never collide.
func (l *Loader) satisfiesConstraints(src []byte) (bool, error) {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return false, err
			}
			return expr.Eval(l.tagSatisfied), nil
		}
		// The //go:build line must precede the package clause; stop looking
		// once code starts.
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
	}
	return true, nil
}

func (l *Loader) tagSatisfied(tag string) bool {
	if l.tags[tag] {
		return true
	}
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "unix":
		return true
	}
	// Release tags: go1.N is satisfied for every N up to the toolchain's.
	if strings.HasPrefix(tag, "go1.") {
		return true
	}
	return false
}
