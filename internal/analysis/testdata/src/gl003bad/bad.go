// Package gl003bad holds GL003 violations: terminal writes from an
// internal library package.
package gl003bad

import (
	"fmt"
	"os"
)

// Report prints straight to stdout from library code.
func Report(rf float64) {
	fmt.Printf("RF=%.3f\n", rf)  // want GL003
	fmt.Println("done")          // want GL003
	fmt.Fprintln(os.Stdout, "x") // want GL003
}
