// Package gl010ok shows the allocation-clean hot-path shapes: presized and
// reused buffers, concrete sort.Interface, non-escaping closures, and
// invariants-gated cold code the analyzer must not follow.
package gl010ok

import (
	"sort"

	"github.com/graphpart/graphpart/internal/invariants"
)

// Collect appends into a local presized by a 3-arg make.
//
//graphpart:hotpath test=TestHotPathAllocs_Collect
func Collect(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			out = append(out, x)
		}
	}
	return out
}

// Refill reuses the caller's buffer through a reslice, the standard
// amortized-zero append shape.
//
//graphpart:hotpath test=TestHotPathAllocs_Refill
func Refill(buf []int, n int) []int {
	out := buf[:0]
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// byValue orders ints ascending as a concrete sort.Interface.
type byValue []int

func (s byValue) Len() int           { return len(s) }
func (s byValue) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s byValue) Less(i, j int) bool { return s[i] < s[j] }

// Order sorts via sort.Sort on a concrete type: no closure boxing, no
// reflection swaps.
//
//graphpart:hotpath test=TestHotPathAllocs_Order
func Order(xs []int) {
	sort.Sort(byValue(xs))
}

// Find uses sort.Search, whose predicate provably does not escape.
//
//graphpart:hotpath test=TestHotPathAllocs_Find
func Find(xs []int, target int) int {
	return sort.Search(len(xs), func(i int) bool { return xs[i] >= target })
}

// Step indexes the hot row; the audit call below it is dead-coded unless
// the graphpart_invariants build tag is set, so the map range inside audit
// must not be attributed to Step's hot path.
//
//graphpart:hotpath test=TestHotPathAllocs_Step
func Step(xs []int, seen map[int]bool, i int) int {
	if invariants.Enabled {
		audit(seen)
	}
	return xs[i]
}

// audit ranges a map — a GL010 pattern, reachable only through the
// dead-coded guard above.
func audit(seen map[int]bool) {
	n := 0
	for range seen {
		n++
	}
	if n < 0 {
		panic("impossible")
	}
}
