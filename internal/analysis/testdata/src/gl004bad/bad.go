// Package gl004bad holds GL004 violations: captured floating-point
// accumulators mutated from goroutine-launched func literals.
package gl004bad

import (
	"sync"

	"github.com/graphpart/graphpart/internal/parallel"
)

// RacySum accumulates into a captured float from raw goroutines.
func RacySum(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		x := x
		go func() {
			defer wg.Done()
			sum += x // want GL004
		}()
	}
	wg.Wait()
	return sum
}

// PoolSum accumulates into a captured float from the worker pool.
func PoolSum(xs []float64) float64 {
	var total float64
	parallel.ForEach(len(xs), 0, func(i int) {
		total += xs[i] // want GL004 GL011
		total -= 0.5   // want GL004 GL011
	})
	return total
}
