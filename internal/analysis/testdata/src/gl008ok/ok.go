// Package gl008ok holds the sanctioned shapes: genuine low slack for
// expectation-balanced baselines, and SkipCapacity when the load bound is
// not the caller's concern.
package gl008ok

import (
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
)

// CheckHashing allows the modest overshoot a hashing baseline needs.
func CheckHashing(g *graph.Graph, a *partition.Assignment) error {
	return partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 2.0})
}

// CheckStructure validates structure only and says so.
func CheckStructure(g *graph.Graph, a *partition.Assignment) error {
	return partition.Validate(g, a, partition.ValidateOptions{SkipCapacity: true})
}
