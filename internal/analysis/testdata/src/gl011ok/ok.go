// Package gl011ok shows the sanctioned parallel-closure shapes: each worker
// writes its own index-addressed slot or returns its value, and closure
// locals declared with := are free game.
package gl011ok

import "github.com/graphpart/graphpart/internal/parallel"

// Scale writes each worker's result into its own slot of a shared slice —
// the slot-accumulator convention.
func Scale(xs []int) []int {
	out := make([]int, len(xs))
	parallel.ForEach(len(xs), 0, func(i int) {
		v := xs[i] * 2
		out[i] = v
	})
	return out
}

// Double returns results through parallel.Map, so no captured state is
// written at all.
func Double(xs []int) []int {
	return parallel.Map(len(xs), 0, func(i int) int {
		return xs[i] * 2
	})
}

// Stamp writes through an index into a captured slice of structs — still
// index-addressed, still one owner per slot.
func Stamp(marks []struct{ Seen bool }) {
	parallel.ForEach(len(marks), 0, func(i int) {
		marks[i].Seen = true
	})
}
