// Package gl007wire mirrors internal/wire's socket-deadline helper: the one
// wall-clock read the obs seam cannot serve. net.Conn deadlines are compared
// against the kernel's wall clock by the runtime poller, so a deadline
// computed from an injected obs.Clock would hang (or instantly expire) real
// socket I/O. The corpus checks this package under the internal/wire import
// path, where the exemption is file-scoped: this file is named deadline.go
// and stays clean, while the identical construct in any other wire file is
// flagged (see telemetry.go in this package, and gl007bad.ArmDeadline for
// the non-wire case).
package gl007wire

import (
	"net"
	"time"
)

// armDeadline bounds a blocking socket operation against the kernel clock.
func armDeadline(c net.Conn, d time.Duration) error {
	return c.SetDeadline(time.Now().Add(d))
}
