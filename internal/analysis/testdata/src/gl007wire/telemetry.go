package gl007wire

import "time"

// stampSnapshot is the twin of armDeadline in the wrong file: internal/wire
// is only exempt inside deadline.go, so a wall-clock read on the
// telemetry-upload path (which must route through the obs clock seam to
// keep worker snapshots deterministic under an injected clock) draws both
// the GL002 nondeterminism diagnostic and the GL007 seam diagnostic.
func stampSnapshot() int64 {
	return time.Now().UnixNano() // want GL002 GL007
}

// drainElapsed shows the derived helpers are held to the seam here too.
func drainElapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want GL007
}
