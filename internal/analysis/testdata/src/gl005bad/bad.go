// Package gl005bad is checked under the module root path, where every
// exported identifier must carry a doc comment.
package gl005bad

func Undocumented() {} // want GL005

type Widget struct{} // want GL005

var DefaultWidget = Widget{} // want GL005

const MaxWidgets = 8 // want GL005

// The comment below is detached by the blank line, so the group has no
// decl-level doc and exported members are flagged per name.

var (
	level = 1
	Limit = 2 // want GL005
)
