// Package gl009bad seeds determinism-certificate violations: facade entry
// points with call-graph paths to wall-clock reads and unseeded randomness,
// checked under the module root path so the entry-point selection applies.
package gl009bad

import (
	"math/rand" // want GL002
	"time"
)

// Partition is a facade entry point; the clock read sits two hops below it,
// so the certificate must carry the Partition -> prepare -> stamp route.
func Partition(n int) int {
	return prepare(n)
}

func prepare(n int) int {
	return n + stamp()
}

func stamp() int {
	return int(time.Now().UnixNano()) // want GL009 GL002 GL007
}

// Refine is a facade entry point drawing unseeded randomness directly.
func Refine(n int) int {
	return n + rand.Intn(7) // want GL009
}

// Chooser picks an index below n.
type Chooser interface {
	// Choose returns an index below n.
	Choose(n int) int
}

// RandomChooser draws from the global unseeded generator.
type RandomChooser struct{}

// Choose implements Chooser with an unseeded draw.
func (RandomChooser) Choose(n int) int {
	return rand.Intn(n) // want GL009
}

// RunChoice is a facade entry point; the interface call conservatively
// fans out to RandomChooser.Choose, so the certificate flags it with an
// interface-edge Via.
func RunChoice(c Chooser, n int) int {
	return c.Choose(n)
}
