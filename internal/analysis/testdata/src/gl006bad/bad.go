// Package gl006bad holds GL006 violations: locks and assignments passed
// by value.
package gl006bad

import (
	"sync"

	"github.com/graphpart/graphpart/internal/partition"
)

// LockedAdd copies the caller's mutex: the lock taken is not the lock held.
func LockedAdd(mu sync.Mutex, n *int) { // want GL006
	mu.Lock()
	defer mu.Unlock()
	*n++
}

// Snapshot copies the assignment header; mutations through the copy corrupt
// the original's load accounting.
func Snapshot(a partition.Assignment) int { // want GL006
	return a.P()
}

// holder carries value methods to exercise receiver checking.
type holder struct{}

// With takes an RWMutex by value.
func (holder) With(mu sync.RWMutex) { // want GL006
	mu.RLock()
	mu.RUnlock()
}
