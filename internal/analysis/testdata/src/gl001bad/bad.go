// Package gl001bad holds GL001 violations: order-sensitive accumulation
// inside map-range bodies.
package gl001bad

// CollectValues appends in map-iteration order.
func CollectValues(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want GL001
	}
	return out
}

// SendKeys delivers keys in map-iteration order.
func SendKeys(m map[int]bool, ch chan int) {
	for k := range m {
		ch <- k // want GL001
	}
}

// NestedAppend appends to a captured slice through a struct field.
type NestedAppend struct {
	rows []string
}

// Fill appends to the receiver's slice in map-iteration order.
func (n *NestedAppend) Fill(m map[string]string) {
	for _, v := range m {
		n.rows = append(n.rows, v) // want GL001
	}
}
