// Package gl007bad holds GL007 violations: wall-clock helpers called
// outside the internal/obs clock seam. time.Since / time.Until bypass the
// injectable Clock without being flagged by GL002 (they are not time.Now),
// which is exactly the gap GL007 closes.
package gl007bad

import "time"

// Elapsed measures directly against the system clock.
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want GL007
}

// Remaining counts down against the system clock.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want GL007
}

// ArmDeadline arms a socket deadline from the wall clock. This exact
// construct is exempt inside internal/wire (see the gl007wire snippet) but
// flagged everywhere else: time.Now draws both the GL002 nondeterminism
// diagnostic and the GL007 clock-seam diagnostic.
func ArmDeadline(c Conn, d time.Duration) error {
	return c.SetDeadline(time.Now().Add(d)) // want GL002 GL007
}

// Conn is the deadline-bearing slice of net.Conn, declared locally so the
// snippet does not need the net import.
type Conn interface {
	SetDeadline(t time.Time) error
}
