// Package gl007bad holds GL007 violations: wall-clock helpers called
// outside the internal/obs clock seam. time.Since / time.Until bypass the
// injectable Clock without being flagged by GL002 (they are not time.Now),
// which is exactly the gap GL007 closes.
package gl007bad

import "time"

// Elapsed measures directly against the system clock.
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want GL007
}

// Remaining counts down against the system clock.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want GL007
}
