// Package suppress exercises the //lint:ignore directive machinery:
// well-formed directives silence a finding (counted as suppressed),
// malformed ones are themselves GL000 findings and silence nothing.
package suppress

// Reasoned is suppressed: directive with code and reason on the line above.
func Reasoned(m map[string]int) []int {
	var out []int
	for _, v := range m {
		//lint:ignore GL001 output order is asserted sorted by the caller
		out = append(out, v)
	}
	return out
}

// NoReason shows a directive without a reason: it suppresses nothing and is
// itself reported.
func NoReason(m map[string]int) []int {
	var out []int
	for _, v := range m {
		// want-next GL000
		//lint:ignore GL001
		out = append(out, v) // want GL001
	}
	return out
}

// NoCode shows a directive naming no rule: reported, suppresses nothing.
func NoCode(m map[string]int) []int {
	var out []int
	for _, v := range m {
		// want-next GL000
		//lint:ignore this is not a rule code
		out = append(out, v) // want GL001
	}
	return out
}

// WrongCode directives do not silence other rules' findings.
func WrongCode(m map[string]int) []int {
	var out []int
	for _, v := range m {
		//lint:ignore GL006 wrong code for this finding
		out = append(out, v) // want GL001
	}
	return out
}
