// Package gl009ok shows certified entry points: every random decision flows
// through the seeded internal/rng generator and every timing read through
// the obs stopwatch seam, so GL009 has nothing to report.
package gl009ok

import (
	"github.com/graphpart/graphpart/internal/obs"
	"github.com/graphpart/graphpart/internal/rng"
)

// Partition draws through the seeded generator seam.
func Partition(n int) int {
	r := rng.New(42)
	return pick(r, n)
}

func pick(r *rng.RNG, n int) int {
	if n <= 0 {
		return 0
	}
	return r.Intn(n)
}

// RunTimed measures elapsed time through the obs seam instead of reading
// the wall clock directly.
func RunTimed(n int) (int, float64) {
	w := obs.StartWatch()
	v := pick(rng.New(7), n)
	return v, w.Seconds()
}
