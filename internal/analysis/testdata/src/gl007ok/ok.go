// Package gl007ok uses the wall clock directly and is clean only under the
// exempt import paths: internal/obs (the clock seam itself) and
// cmd/benchsnap (snapshot timestamps). The corpus checks it under both.
package gl007ok

import "time"

// Stamp reads the wall clock, as the seam and the snapshot tool may.
func Stamp() (time.Time, time.Duration) {
	now := time.Now()
	return now, time.Since(now)
}
