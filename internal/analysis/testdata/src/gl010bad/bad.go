// Package gl010bad seeds hot-path allocation violations: one function per
// pattern hotPathHits bans, plus the two malformed-annotation shapes.
package gl010bad

import (
	"fmt"
	"sort"
)

// Grow collects values into a local that was never given a capacity, so
// every growth reallocates.
//
//graphpart:hotpath test=TestHotPathAllocs_Grow
func Grow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want GL010
	}
	return out
}

// Sum folds a map on the hot path: nondeterministic order plus a hidden
// iterator allocation.
//
//graphpart:hotpath test=TestHotPathAllocs_Sum
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want GL010
		total += v
	}
	return total
}

// Describe is clean itself; the violation is one hop down in its helper,
// so the finding must carry the Describe -> label route.
//
//graphpart:hotpath test=TestHotPathAllocs_Describe
func Describe(id int) string {
	return label(id)
}

func label(id int) string {
	return fmt.Sprintf("edge-%d", id) // want GL010
}

// Batch remakes its scratch slice every iteration.
//
//graphpart:hotpath test=TestHotPathAllocs_Batch
func Batch(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		scratch := make([]int, 8) // want GL010
		total += len(scratch)
	}
	return total
}

// Close defers inside its loop: one defer frame per iteration.
//
//graphpart:hotpath test=TestHotPathAllocs_Close
func Close(fns []func()) {
	for _, fn := range fns {
		defer fn() // want GL010
	}
}

// Box re-boxes its value on every call via an interface-typed assignment.
//
//graphpart:hotpath test=TestHotPathAllocs_Box
func Box(v int) any {
	var out any
	out = v // want GL010
	return out
}

// Spawn returns a closure capturing a local, forcing both to the heap.
//
//graphpart:hotpath test=TestHotPathAllocs_Spawn
func Spawn() func() int {
	total := 0
	return func() int { // want GL010
		total++
		return total
	}
}

// Order sorts with the reflection-based helper, which both boxes its
// closure (escape hit) and swaps via reflect (sort.Slice hit).
//
//graphpart:hotpath test=TestHotPathAllocs_Order
func Order(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want GL010 GL010
}

// Fast is annotated without the mandatory test= link, so the annotation
// itself is the finding.
//
//graphpart:hotpath // want GL010
func Fast(x int) int {
	return x * 2
}

//graphpart:hotpath test=TestNothing // want GL010
var sink int
