// Package gl004ok holds the sanctioned accumulation shapes: per-goroutine
// slots folded in canonical order, integer counters, and loop-local floats.
package gl004ok

import (
	"sync"
	"sync/atomic"

	"github.com/graphpart/graphpart/internal/parallel"
)

// SlotSum is the slot-accumulator pattern: each goroutine owns its element.
func SlotSum(xs []float64) float64 {
	slots := make([]float64, len(xs))
	parallel.ForEach(len(xs), 0, func(i int) {
		slots[i] = xs[i] * 2 // indexed write: owned slot
	})
	sum := 0.0
	for _, s := range slots {
		sum += s // sequential canonical fold
	}
	return sum
}

// CountMatches accumulates an integer (no float associativity hazard;
// the race is the -race job's business, not GL004's).
func CountMatches(xs []float64) int64 {
	var n int64
	var wg sync.WaitGroup
	for range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			atomic.AddInt64(&n, 1)
		}()
	}
	wg.Wait()
	return n
}

// LocalFloat accumulates a float declared inside the literal.
func LocalFloat(xs []float64) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		local := 0.0
		for _, x := range xs {
			local += x
		}
		_ = local
	}()
	wg.Wait()
}
