// Package gl003ok holds the sanctioned output shapes: internal code writes
// to a caller-supplied io.Writer or returns data; only this snippet's
// fabricated cmd/ path may print. It is checked twice — once as a cmd/
// package (everything allowed) and once as internal/ (io.Writer shapes
// still clean).
package gl003ok

import (
	"fmt"
	"io"
)

// Render writes wherever the caller points it.
func Render(w io.Writer, rf float64) {
	fmt.Fprintf(w, "RF=%.3f\n", rf)
}

// Describe returns data instead of printing it.
func Describe(rf float64) string {
	return fmt.Sprintf("RF=%.3f", rf)
}
