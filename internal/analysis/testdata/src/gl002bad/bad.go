// Package gl002bad holds GL002 violations: unseeded randomness and
// wall-clock reads outside the exempt packages. The time.Now read is also a
// GL007 clock-seam bypass.
package gl002bad

import (
	"math/rand" // want GL002
	"time"
)

// Jitter mixes wall-clock state into a computation.
func Jitter() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(10)) // want GL002 GL007
}
