// Package gl001ok holds map-range patterns GL001 must NOT flag:
// order-insensitive reductions, keyed writes, loop-local appends, and the
// sanctioned collect-then-sort pattern under a reasoned suppression.
package gl001ok

import "sort"

// Sum is a commutative reduction: order-insensitive.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Invert writes keyed by the range variable: order-insensitive.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// LocalAppend appends to a slice declared inside the loop body.
func LocalAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		total += len(doubled)
	}
	return total
}

// SortedKeys is the sanctioned fix: collect, sort, then iterate.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) //lint:ignore GL001 keys sorted on the next line
	}
	sort.Strings(keys)
	return keys
}
