// Package gl006ok holds the sanctioned shapes: locks and assignments
// travel as pointers (or live in structs that are themselves pointered).
package gl006ok

import (
	"sync"

	"github.com/graphpart/graphpart/internal/partition"
)

// LockedAdd takes the caller's mutex by pointer.
func LockedAdd(mu *sync.Mutex, n *int) {
	mu.Lock()
	defer mu.Unlock()
	*n++
}

// Inspect reads through a pointer to the shared assignment.
func Inspect(a *partition.Assignment) int {
	return a.P()
}

// guarded embeds a mutex; methods use a pointer receiver.
type guarded struct {
	mu sync.Mutex
	n  int
}

// Incr locks the embedded mutex through the pointer receiver.
func (g *guarded) Incr() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}
