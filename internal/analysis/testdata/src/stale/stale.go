// Package stale carries a well-formed lint:ignore directive whose finding
// no longer fires: the -audit corpus case. The directive once silenced a
// GL001 on a map-range accumulation that a refactor replaced with the
// sorted-slice idiom, and nobody deleted it.
package stale

import "sort"

// Tidy sorts in place; nothing on the next line triggers GL001 any more.
func Tidy(xs []int) {
	//lint:ignore GL001 collect-then-sort predates the sorted-slice refactor
	sort.Ints(xs)
}
