// Package gl008bad holds GL008 violations: capacity checks disabled through
// an absurd CapacitySlack instead of SkipCapacity.
package gl008bad

import (
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
)

// CheckLoose is the pre-SkipCapacity idiom: a slack so large the load bound
// can never fire (and whose bound computation overflows for big capacities).
func CheckLoose(g *graph.Graph, a *partition.Assignment) error {
	return partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 1e9}) // want GL008
}

// CheckHundred disables the bound less flamboyantly; still not a tolerance.
func CheckHundred(g *graph.Graph, a *partition.Assignment) error {
	opts := partition.ValidateOptions{AllowUnassigned: true, CapacitySlack: 100} // want GL008
	return partition.Validate(g, a, opts)
}
