// Package gl011bad seeds parallel-closure write violations: every way a
// worker closure can touch captured state other than an index-addressed
// slot.
package gl011bad

import "github.com/graphpart/graphpart/internal/parallel"

// SumRace accumulates a captured float from worker closures: a data race,
// an arrival-ordered sum (GL004), and a captured-scalar write (GL011).
func SumRace(xs []float64) float64 {
	total := 0.0
	parallel.ForEach(len(xs), 0, func(i int) {
		total += xs[i] // want GL004 GL011
	})
	return total
}

// CountRace writes into a captured map: concurrent map writes panic.
func CountRace(keys []int) map[int]int {
	counts := map[int]int{}
	parallel.ForEach(len(keys), 0, func(i int) {
		counts[keys[i]]++ // want GL011
	})
	return counts
}

// BestRace writes through a captured pointer: the same race one
// indirection later.
func BestRace(xs []int, best *int) {
	parallel.ForEach(len(xs), 0, func(i int) {
		if xs[i] > *best {
			*best = xs[i] // want GL011
		}
	})
}

// NextRace bumps a captured counter per element.
func NextRace(n int) int {
	k := 0
	parallel.ForEach(n, 0, func(i int) {
		k++ // want GL011
	})
	return k
}

// ScaleRace writes a captured scalar from a Map closure instead of just
// returning the value.
func ScaleRace(xs []int) []int {
	last := 0
	return parallel.Map(len(xs), 0, func(i int) int {
		last = xs[i] // want GL011
		return last * 2
	})
}
