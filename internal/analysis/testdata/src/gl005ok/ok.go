// Package gl005ok is checked twice: under the module root path (all
// exported identifiers below are documented, so it stays clean) and under
// an internal path (where GL005 does not apply at all).
package gl005ok

// Documented does nothing, verbosely.
func Documented() {}

// Gadget is a documented exported type.
type Gadget struct{}

// DefaultGadget is the zero Gadget.
var DefaultGadget = Gadget{}

// Orders re-exported as a documented group.
const (
	// OrderA is the first order.
	OrderA = iota
	OrderB // OrderB rides on the decl-level doc.
)

func unexported() {} // unexported identifiers never need docs

var internalState = 1

func init() { _ = internalState; unexported() }
