// Package gl002ok is checked under the internal/rng import path, where
// math/rand and time.Now are exempt (the seeded generator wraps them).
package gl002ok

import (
	"math/rand"
	"time"
)

// Sample draws from the exempt package's generator.
func Sample(r *rand.Rand) int {
	return r.Intn(int(time.Now().Unix()%7) + 1)
}
