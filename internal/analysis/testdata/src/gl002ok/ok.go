// Package gl002ok is checked under the internal/rng import path, where the
// math/rand import is exempt (the seeded generator wraps it).
package gl002ok

import "math/rand"

// Sample draws from the exempt package's generator.
func Sample(r *rand.Rand) int {
	return r.Intn(7) + 1
}
