package core

import (
	"fmt"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

// OverlapProbe drives the stage-I intersection kernels directly against a
// frozen mid-run state, so benchmarks (bench_test.go's
// BenchmarkStage1Overlap*) and diagnostics can measure one kernel at a time
// without running a whole partitioning. It builds the same structures a run
// uses — compacted alive rows, hub bitsets — and optionally retires a
// random fraction of edges so the rows resemble mid-round state.
type OverlapProbe struct {
	st *runState
}

// NewOverlapProbe builds probe state over g with deadFraction of the edges
// retired (assigned) deterministically from seed.
func NewOverlapProbe(g *graph.Graph, deadFraction float64, seed uint64) (*OverlapProbe, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if deadFraction < 0 || deadFraction >= 1 {
		return nil, fmt.Errorf("core: dead fraction %v outside [0,1)", deadFraction)
	}
	a, err := partition.New(g.NumEdges(), 2)
	if err != nil {
		return nil, err
	}
	st := newRunState(g, a, Options{Seed: seed})
	r := rng.New(seed)
	for e := 0; e < g.NumEdges(); e++ {
		if r.Float64() >= deadFraction {
			continue
		}
		eid := graph.EdgeID(e)
		ed := g.Edges()[eid]
		st.a.Assign(eid, 0)
		st.aliveDeg[ed.U]--
		st.aliveDeg[ed.V]--
		st.killEdge(eid)
	}
	return &OverlapProbe{st: st}, nil
}

// IsHub reports whether v carries a persistent alive-neighbourhood bitset.
func (p *OverlapProbe) IsHub(v graph.Vertex) bool { return p.st.hubBits[v] != nil }

// AliveDegree returns v's current alive (unassigned) degree.
func (p *OverlapProbe) AliveDegree(v graph.Vertex) int { return int(p.st.alive.n[v]) }

// Overlap runs the dispatching kernel exactly as a partitioning would,
// returning the overlap count and the name of the kernel selected.
func (p *OverlapProbe) Overlap(a, b graph.Vertex) (int, string) {
	mark := p.st.markAlive(a)
	cnt, kind := p.st.overlapAlive(a, b, mark)
	return cnt, kernelName(kind)
}

// Scan forces the epoch-stamp scan kernel: stamp a's alive row, scan b's.
func (p *OverlapProbe) Scan(a, b graph.Vertex) int {
	mark := p.st.nextMark()
	an, _ := p.st.alive.row(a)
	for _, u := range an {
		p.st.markStamp[u] = mark
	}
	return p.st.scanRowStamp(b, mark)
}

// Bitset forces the hub-bitset kernel, scanning a's alive row against b's
// persistent bitset. b must be a hub (IsHub).
func (p *OverlapProbe) Bitset(a, b graph.Vertex) int {
	w := p.st.hubBits[b]
	if w == nil {
		panic(fmt.Sprintf("core: probe Bitset target %d is not a hub", b))
	}
	return p.st.scanRowBits(a, w)
}

// Word forces the word-at-a-time AND+popcount kernel. Both vertices must be
// hubs.
func (p *OverlapProbe) Word(a, b graph.Vertex) int {
	wa, wb := p.st.hubBits[a], p.st.hubBits[b]
	if wa == nil || wb == nil {
		panic(fmt.Sprintf("core: probe Word needs two hubs, got %d,%d", a, b))
	}
	return overlapWords(wa, wb)
}

// Gallop forces the binary-search kernel: iterate a's alive row, search b's
// sorted CSR row.
func (p *OverlapProbe) Gallop(a, b graph.Vertex) int { return p.st.gallopRows(a, b) }

// kernelName renders a kernelKind for exported surfaces.
func kernelName(k kernelKind) string {
	switch k {
	case kernelScan:
		return "scan"
	case kernelBitset:
		return "bitset"
	case kernelWord:
		return "word"
	case kernelGallop:
		return "gallop"
	case kernelSampled:
		return "sampled"
	}
	return "unknown"
}
