package core

import (
	"fmt"
	"math"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/invariants"
	"github.com/graphpart/graphpart/internal/obs"
	"github.com/graphpart/graphpart/internal/partition"
)

// TLP is the paper's two-stage local partitioner: the stage switch happens
// when the growing partition's modularity M(P_k) crosses 1 (Table II).
type TLP struct {
	opts Options
}

var _ partition.Partitioner = (*TLP)(nil)

// New returns a TLP partitioner with the given options.
func New(opts Options) (*TLP, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &TLP{opts: opts}, nil
}

// MustNew is New that panics on invalid options; for tests and examples.
func MustNew(opts Options) *TLP {
	t, err := New(opts)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements partition.Partitioner.
func (t *TLP) Name() string { return "TLP" }

// Partition assigns every edge of g to one of p partitions.
func (t *TLP) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	a, _, err := t.PartitionStats(g, p)
	return a, err
}

// PartitionStats is Partition, additionally returning the run statistics
// (per-stage selection counts and degree sums; Table VI).
func (t *TLP) PartitionStats(g *graph.Graph, p int) (*partition.Assignment, Stats, error) {
	return runLocal(g, p, t.opts, func(ein, eout int64, _ int) bool {
		// Stage I while M = ein/eout <= 1 (Table II); eout cannot be 0
		// here because selection only happens with a nonempty frontier.
		return ein <= eout
	})
}

// TLPR is the ablation variant of Section IV.C: the stage switch happens at
// a fixed fraction R of the capacity instead of the modularity threshold.
// R=0 degenerates to pure Stage II, R=1 to pure Stage I.
type TLPR struct {
	r    float64
	opts Options
}

var _ partition.Partitioner = (*TLPR)(nil)

// NewTLPR returns a TLP_R partitioner with ratio r in [0, 1].
func NewTLPR(r float64, opts Options) (*TLPR, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if r < 0 || r > 1 || math.IsNaN(r) {
		return nil, fmt.Errorf("core: TLP_R ratio %v outside [0,1]", r)
	}
	return &TLPR{r: r, opts: opts}, nil
}

// MustNewTLPR is NewTLPR that panics on error; for tests and examples.
func MustNewTLPR(r float64, opts Options) *TLPR {
	t, err := NewTLPR(r, opts)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements partition.Partitioner.
func (t *TLPR) Name() string { return fmt.Sprintf("TLP_R(%.1f)", t.r) }

// R returns the stage-division ratio.
func (t *TLPR) R() float64 { return t.r }

// Partition assigns every edge of g to one of p partitions.
func (t *TLPR) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	a, _, err := t.PartitionStats(g, p)
	return a, err
}

// PartitionStats is Partition with run statistics.
func (t *TLPR) PartitionStats(g *graph.Graph, p int) (*partition.Assignment, Stats, error) {
	r := t.r
	return runLocal(g, p, t.opts, func(ein, _ int64, capC int) bool {
		// Table V: Stage I while |E(P_k)| <= R*C. R=0 means Stage II
		// everywhere, including the empty partition.
		return r > 0 && float64(ein) <= r*float64(capC)
	})
}

// stagePolicy decides whether the next selection uses Stage I, given the
// partition's internal edges, external edges and capacity.
type stagePolicy func(ein, eout int64, capC int) bool

// runLocal executes the local partitioning loop shared by TLP and TLP_R.
func runLocal(g *graph.Graph, p int, opts Options, isStage1 stagePolicy) (*partition.Assignment, Stats, error) {
	var stats Stats
	if g == nil {
		return nil, stats, fmt.Errorf("core: nil graph")
	}
	a, err := partition.New(g.NumEdges(), p)
	if err != nil {
		return nil, stats, err
	}
	m := g.NumEdges()
	if m == 0 {
		return a, stats, nil
	}
	capC := int(math.Ceil(opts.capacitySlack() * float64(m) / float64(p)))
	if capC < 1 {
		capC = 1
	}
	sp := obs.Start("tlp.partition",
		obs.Int("p", p), obs.Int("edges", m), obs.Int("capacity", capC))
	bsp := sp.Child("tlp.s1.build")
	st := newRunState(g, a, opts)
	bsp.EndWith(obs.Int("hub_threshold", st.hubThreshold),
		obs.Int("workers", st.workers))
	assigned := 0
	for k := 0; k < p && assigned < m; k++ {
		stats.Rounds++
		st.beginRound()
		rt := beginRoundTrace(&sp, k)
		seed, ok := st.pickSeed()
		if !ok {
			rt.end(st)
			break
		}
		n, full := st.absorb(seed, k, capC)
		assigned += n
		if !full {
			stats.PartialAbsorptions++
			rt.end(st)
			continue
		}
		// clean tracks whether the round's last absorption completed; the
		// frontier cross-check is only meaningful in that quiescent state.
		clean := true
		prevEin := st.ein
		for int(st.ein) < capC && assigned < m {
			if st.eout == 0 {
				// Frontier exhausted (component consumed).
				if opts.LiteralBreak {
					break
				}
				reseed, ok := st.pickSeed()
				if !ok {
					break
				}
				stats.Reseeds++
				n, full := st.absorb(reseed, k, capC)
				assigned += n
				if !full {
					stats.PartialAbsorptions++
					clean = false
					break
				}
				continue
			}
			var v graph.Vertex
			var okSel bool
			stage1 := isStage1(st.ein, st.eout, capC)
			rt.stage(st, stage1)
			if stage1 {
				v, okSel = st.selectStage1()
			} else {
				v, okSel = st.selectStage2()
			}
			if !okSel {
				// Should not happen while eout > 0; treat as
				// exhaustion for robustness.
				if opts.LiteralBreak {
					break
				}
				reseed, ok := st.pickSeed()
				if !ok {
					break
				}
				stats.Reseeds++
				n, full := st.absorb(reseed, k, capC)
				assigned += n
				if !full {
					stats.PartialAbsorptions++
					clean = false
					break
				}
				continue
			}
			deg := int64(g.Degree(v))
			if stage1 {
				stats.Stage1Selections++
				stats.Stage1DegreeSum += deg
			} else {
				stats.Stage2Selections++
				stats.Stage2DegreeSum += deg
			}
			n, full := st.absorb(v, k, capC)
			assigned += n
			if !full {
				stats.PartialAbsorptions++
				clean = false
				break
			}
			if invariants.Enabled {
				invariants.Assertf(st.ein >= prevEin && int(st.ein) <= capC,
					"round %d: ein went from %d to %d (capacity %d)", st.round, prevEin, st.ein, capC)
				prevEin = st.ein
			}
		}
		if clean {
			st.assertRoundInvariants()
		}
		rt.end(st)
	}
	// Balance sweep: any leftover edges (LiteralBreak mode, or capacity
	// rounding) go to the least-loaded partitions.
	if assigned < m {
		ssp := sp.Child("tlp.sweep", obs.Int("leftover", m-assigned))
		sweepLeftovers(g, a, &stats)
		ssp.EndWith(obs.Int("swept", stats.SweptEdges))
	}
	stats.Stage1Kernels = KernelCounts{
		Scan:    st.kernelCounts[kernelScan].Load(),
		Bitset:  st.kernelCounts[kernelBitset].Load(),
		Word:    st.kernelCounts[kernelWord].Load(),
		Gallop:  st.kernelCounts[kernelGallop].Load(),
		Sampled: st.kernelCounts[kernelSampled].Load(),
	}
	recordRunMetrics(&stats)
	sp.EndWith(obs.Int("rounds", stats.Rounds),
		obs.Int("stage1_selections", stats.Stage1Selections),
		obs.Int("stage2_selections", stats.Stage2Selections),
		obs.Int("reseeds", stats.Reseeds),
		obs.Int("swept", stats.SweptEdges))
	return a, stats, nil
}

// absorb makes v a member of partition k: every alive edge between v and an
// existing member is assigned to k (up to the capacity), and v's remaining
// alive edges extend the frontier. It returns the number of edges assigned
// and whether the absorption completed (false means the capacity was hit
// mid-vertex; the round must end and v is NOT recorded as a member, so its
// remaining member edges stay alive for later rounds).
func (st *runState) absorb(v graph.Vertex, k, capC int) (assigned int, full bool) {
	// cin[v] is exact for any non-member mid-round (an alive v-member edge
	// can only die by absorbing v itself), so ein+cin tells up front whether
	// the capacity can be hit mid-vertex. Only that rare path must scan the
	// full CSR row — a capacity break has always assigned a CSR-order edge
	// prefix, and compacted rows are in swap-mutated order.
	cin := 0
	if st.inFrontier(v) {
		cin = int(st.cin[v])
	}
	if int(st.ein)+cin > capC {
		return st.absorbPrefix(v, k, capC)
	}
	w := st.kernelWatch()
	// Guaranteed-full absorption: every alive member edge gets assigned, so
	// assignment order cannot matter and the loop walks only v's compacted
	// alive row. killEdge swaps the row's last alive entry into the current
	// slot, so the index only advances past non-member entries.
	aa := st.alive
	lo := aa.off[v]
	for i := int64(0); i < int64(aa.n[v]); {
		u := aa.nbr[lo+i]
		if !st.isMember(u) {
			i++
			continue
		}
		eid := aa.eid[lo+i]
		st.a.Assign(eid, k)
		st.ein++
		st.eout--
		st.aliveDeg[v]--
		st.aliveDeg[u]--
		st.killEdge(eid)
		assigned++
	}
	st.tCompact += w.lap()
	st.finishAbsorb(v)
	return assigned, true
}

// finishAbsorb records v as a member and extends the frontier: after a full
// absorption every alive edge of v leads to a non-member, so v's compacted
// row is exactly the frontier extension set. Row order differs from CSR
// order, but touchFrontier's effects are order insensitive: cin increments
// commute, and the bucket/score heaps pop in an order determined only by
// their entry multisets.
func (st *runState) finishAbsorb(v graph.Vertex) {
	st.memberEpoch[v] = st.round
	vn, _ := st.alive.row(v)
	for _, u := range vn {
		if st.isMember(u) {
			continue
		}
		st.eout++
		st.touchFrontier(u)
	}
	st.updateStage1Scores(v)
}

// absorbPrefix is the capacity-hit absorption path: scan v's full CSR row in
// order, assigning alive member edges until the capacity stops the round, so
// a partial absorption assigns exactly the same edge prefix it always has.
// On the partial outcome v is not recorded as a member, and its remaining
// member edges stay alive for later rounds. (With exact cin the capacity
// always interrupts this path; the full outcome is kept for parity with the
// historical loop.)
func (st *runState) absorbPrefix(v graph.Vertex, k, capC int) (assigned int, full bool) {
	g := st.g
	nbrs := g.Neighbors(v)
	eids := g.IncidentEdges(v)
	partial := false
	w := st.kernelWatch()
	for i, u := range nbrs {
		eid := eids[i]
		if st.a.IsAssigned(eid) || !st.isMember(u) {
			continue
		}
		if int(st.ein) >= capC {
			partial = true
			break
		}
		st.a.Assign(eid, k)
		st.ein++
		st.eout--
		st.aliveDeg[v]--
		st.aliveDeg[u]--
		st.killEdge(eid)
		assigned++
	}
	st.tCompact += w.lap()
	if partial {
		return assigned, false
	}
	st.finishAbsorb(v)
	return assigned, true
}

// sweepLeftovers assigns every remaining edge to the least-loaded partition;
// loads stay within C because total capacity covers the graph. The min-heap
// least-loaded placement itself lives in the partition-state layer
// (partition.AssignLeftovers) — its (load, id) tie-break order matches the
// argmin scan it historically replaced, so TLP output is unchanged.
func sweepLeftovers(g *graph.Graph, a *partition.Assignment, stats *Stats) {
	stats.SweptEdges += partition.AssignLeftovers(g, a)
}
