package core

import (
	"github.com/graphpart/graphpart/internal/graph"
)

// aliveAdj is a mutable, per-vertex compacted view of the CSR adjacency
// restricted to alive (not yet assigned) edges. Rows start as copies of the
// sorted CSR rows; when an edge is assigned, killEdge swap-removes it from
// both endpoint rows in O(1), so the Stage-I scoring kernels iterate only
// alive entries and never re-test assignment bits in their inner loops.
//
// Row order is NOT sorted after the first removal — it is a deterministic
// function of the assignment history (which is itself deterministic), and
// every consumer of a row is order-insensitive: intersection kernels count
// set overlaps, and score folds push into heaps whose pop order depends only
// on the entry multiset (the heap order (score, deg, v) is strict).
//
// Memory: 2m neighbour ids + 2m edge ids + 2m row positions (int32 each)
// beyond the CSR itself.
type aliveAdj struct {
	off   []int64        // off[v]:off[v+1] bounds v's backing row (CSR copy)
	nbr   []graph.Vertex // neighbour ids; alive prefix is nbr[off[v]:off[v]+n[v]]
	eid   []graph.EdgeID // edge ids parallel to nbr
	n     []int32        // alive entries per vertex
	pos   []int32        // pos[2*e+side] = row-relative index of edge e in its U (side 0) / V (side 1) row
	edges []graph.Edge   // edge endpoints by id (aliases graph storage)
}

// newAliveAdj copies the CSR adjacency into mutable rows with every edge
// alive. Initial row order equals the sorted CSR order.
func newAliveAdj(g *graph.Graph) *aliveAdj {
	nv := g.NumVertices()
	m := g.NumEdges()
	aa := &aliveAdj{
		off:   make([]int64, nv+1),
		nbr:   make([]graph.Vertex, 0, 2*m),
		eid:   make([]graph.EdgeID, 0, 2*m),
		n:     make([]int32, nv),
		pos:   make([]int32, 2*m),
		edges: g.Edges(),
	}
	for v := 0; v < nv; v++ {
		nbrs := g.Neighbors(graph.Vertex(v))
		eids := g.IncidentEdges(graph.Vertex(v))
		aa.off[v+1] = aa.off[v] + int64(len(nbrs))
		aa.nbr = append(aa.nbr, nbrs...)
		aa.eid = append(aa.eid, eids...)
		aa.n[v] = int32(len(nbrs))
		for i, e := range eids {
			side := 0
			if aa.edges[e].V == graph.Vertex(v) {
				side = 1
			}
			aa.pos[2*int(e)+side] = int32(i)
		}
	}
	return aa
}

// row returns the alive neighbours of v and the parallel edge ids. The
// slices alias internal storage and are invalidated by the next remove.
func (aa *aliveAdj) row(v graph.Vertex) ([]graph.Vertex, []graph.EdgeID) {
	lo := aa.off[v]
	hi := lo + int64(aa.n[v])
	return aa.nbr[lo:hi], aa.eid[lo:hi]
}

// remove deletes edge e from both endpoint rows by swapping the last alive
// entry into its slot and shrinking the alive count. Each edge must be
// removed at most once.
func (aa *aliveAdj) remove(e graph.EdgeID) {
	ed := aa.edges[e]
	aa.removeSide(e, ed.U, 0)
	aa.removeSide(e, ed.V, 1)
}

func (aa *aliveAdj) removeSide(e graph.EdgeID, v graph.Vertex, side int) {
	lo := aa.off[v]
	p := lo + int64(aa.pos[2*int(e)+side])
	last := lo + int64(aa.n[v]) - 1
	moved := aa.eid[last]
	aa.nbr[p], aa.eid[p] = aa.nbr[last], aa.eid[last]
	ms := 0
	if aa.edges[moved].V == v {
		ms = 1
	}
	aa.pos[2*int(moved)+ms] = int32(p - lo)
	aa.n[v]--
}
