package core

import (
	"math"
	"time"

	"github.com/graphpart/graphpart/internal/obs"
)

// Default-registry counters fed once per run from the Stats the run already
// maintains — telemetry reads algorithm state, never the other way around.
var (
	mPartitionRuns    = obs.Default.Counter("tlp.runs")
	mRounds           = obs.Default.Counter("tlp.rounds")
	mStage1Selections = obs.Default.Counter("tlp.stage1_selections")
	mStage2Selections = obs.Default.Counter("tlp.stage2_selections")
	mReseeds          = obs.Default.Counter("tlp.reseeds")
	mSweptEdges       = obs.Default.Counter("tlp.swept_edges")

	// Per-kernel intersection counts (see kernelKind in kernels.go).
	mKernelCounts = [numKernels]*obs.Counter{
		kernelScan:    obs.Default.Counter("tlp.s1.kernel_scan"),
		kernelBitset:  obs.Default.Counter("tlp.s1.kernel_bitset"),
		kernelWord:    obs.Default.Counter("tlp.s1.kernel_word"),
		kernelGallop:  obs.Default.Counter("tlp.s1.kernel_gallop"),
		kernelSampled: obs.Default.Counter("tlp.s1.kernel_sampled"),
	}
)

// recordRunMetrics publishes a finished run's stats to the metrics
// registry.
func recordRunMetrics(stats *Stats) {
	mPartitionRuns.Add(1)
	mRounds.Add(int64(stats.Rounds))
	mStage1Selections.Add(int64(stats.Stage1Selections))
	mStage2Selections.Add(int64(stats.Stage2Selections))
	mReseeds.Add(int64(stats.Reseeds))
	mSweptEdges.Add(int64(stats.SweptEdges))
	mKernelCounts[kernelScan].Add(stats.Stage1Kernels.Scan)
	mKernelCounts[kernelBitset].Add(stats.Stage1Kernels.Bitset)
	mKernelCounts[kernelWord].Add(stats.Stage1Kernels.Word)
	mKernelCounts[kernelGallop].Add(stats.Stage1Kernels.Gallop)
	mKernelCounts[kernelSampled].Add(stats.Stage1Kernels.Sampled)
}

// kernelStopwatch accumulates kernel-phase wall clock through the obs clock
// seam. The zero value (telemetry off) makes every lap free.
type kernelStopwatch struct {
	last time.Time
	ok   bool
}

// kernelWatch starts a stopwatch only while telemetry records, so the
// disabled hot path pays one atomic load and no clock reads.
func (st *runState) kernelWatch() kernelStopwatch {
	if !obs.Enabled() {
		return kernelStopwatch{}
	}
	return kernelStopwatch{last: obs.Now(), ok: true}
}

// lap returns the time since the previous lap (or start) and re-arms.
func (w *kernelStopwatch) lap() time.Duration {
	if !w.ok {
		return 0
	}
	now := obs.Now()
	d := now.Sub(w.last)
	w.last = now
	return d
}

// roundTrace threads the tlp.round span and its stage-segment children
// through one growth round. Stage segments ("tlp.stage1" / "tlp.stage2")
// open on the first selection and flip when the stage policy flips; the
// 1->2 flip additionally emits a "tlp.stage_transition" instant carrying
// the modularity trajectory at the crossing. Everything here is
// record-only: it reads ein/eout/frontier and never feeds back.
type roundTrace struct {
	round  obs.Span
	seg    obs.Span
	inSeg  bool
	stage1 bool
}

// beginRoundTrace opens round k's span under the partition root span.
func beginRoundTrace(parent *obs.Span, k int) roundTrace {
	return roundTrace{round: parent.Child("tlp.round", obs.Int("round", k))}
}

// stage notes that the next selection runs under stage 1 or stage 2,
// opening or flipping the stage segment span.
func (rt *roundTrace) stage(st *runState, stage1 bool) {
	if rt.inSeg && rt.stage1 == stage1 {
		return
	}
	if rt.inSeg {
		rt.closeSeg(st)
		if rt.stage1 && !stage1 {
			mod := math.Inf(1)
			if st.eout > 0 {
				mod = float64(st.ein) / float64(st.eout)
			}
			rt.round.Event("tlp.stage_transition",
				obs.Int64("ein", st.ein), obs.Int64("eout", st.eout),
				obs.Float("modularity", mod),
				obs.Int("frontier", len(st.frontierList)))
		}
	}
	name := "tlp.stage2"
	if stage1 {
		name = "tlp.stage1"
	}
	rt.seg = rt.round.Child(name)
	rt.inSeg, rt.stage1 = true, stage1
}

func (rt *roundTrace) closeSeg(st *runState) {
	rt.seg.EndWith(obs.Int64("ein", st.ein), obs.Int64("eout", st.eout))
	rt.inSeg = false
}

// end closes any open stage segment and the round span, stamping the
// round's final growth state. The accumulated stage-I kernel phases are
// flushed as tlp.s1.* segments under the round span (one per phase per
// round — per-absorption spans would overflow the trace ring).
func (rt *roundTrace) end(st *runState) {
	if rt.inSeg {
		rt.closeSeg(st)
	}
	rt.round.Segment("tlp.s1.compact", st.tCompact)
	rt.round.Segment("tlp.s1.intersect", st.tIntersect)
	rt.round.Segment("tlp.s1.fold", st.tFold)
	st.tCompact, st.tIntersect, st.tFold = 0, 0, 0
	rt.round.EndWith(obs.Int64("ein", st.ein), obs.Int64("eout", st.eout),
		obs.Int("frontier", len(st.frontierList)))
}
