package core

import (
	"math/bits"

	"github.com/graphpart/graphpart/internal/invariants"
)

// assertRoundInvariants cross-checks the incremental frontier bookkeeping
// against its definition at a point where the round's state is quiescent
// (after a completed absorption, never mid-vertex): the frontier N(P_k) is
// exactly the non-member vertices with at least one alive edge into P_k, so
//
//	1 <= cin[v] <= aliveDeg[v]   for every live frontier vertex, and
//	eout == sum of cin over the live frontier.
//
// The incremental ein/eout counters drive the paper's stage switch
// (M = ein/eout crossing 1), so a drift here silently changes which stage
// selects every subsequent vertex. No-op unless built with
// -tags graphpart_invariants.
func (st *runState) assertRoundInvariants() {
	if !invariants.Enabled {
		return
	}
	invariants.Assertf(st.ein >= 0 && st.eout >= 0,
		"round %d: negative edge counters ein=%d eout=%d", st.round, st.ein, st.eout)
	var sum int64
	for _, v := range st.frontierList {
		if !st.inFrontier(v) || st.isMember(v) {
			continue
		}
		c := st.cin[v]
		invariants.Assertf(c >= 1 && c <= st.aliveDeg[v],
			"round %d: frontier vertex %d has cin=%d outside [1,%d]", st.round, v, c, st.aliveDeg[v])
		sum += int64(c)
	}
	invariants.Assertf(sum == st.eout,
		"round %d: eout=%d but frontier cin sums to %d", st.round, st.eout, sum)
	st.assertAliveInvariants()
}

// assertAliveInvariants cross-checks the stage-I kernel structures against
// the aliveDeg counters they must mirror: every compacted row's alive
// length equals aliveDeg, the row lengths sum to twice the unassigned edge
// count (each alive edge appears in exactly two rows), and every hub
// bitset's popcount equals its owner's alive degree. A drift here silently
// corrupts every subsequent Eq. 7 score. No-op unless built with
// -tags graphpart_invariants.
func (st *runState) assertAliveInvariants() {
	if !invariants.Enabled {
		return
	}
	var aliveTotal int64
	for v := range st.aliveDeg {
		invariants.Assertf(st.alive.n[v] == st.aliveDeg[v],
			"round %d: vertex %d compacted alive row has %d entries but aliveDeg=%d",
			st.round, v, st.alive.n[v], st.aliveDeg[v])
		aliveTotal += int64(st.alive.n[v])
		if w := st.hubBits[v]; w != nil {
			pc := 0
			for _, word := range w {
				pc += bits.OnesCount64(word)
			}
			invariants.Assertf(pc == int(st.alive.n[v]),
				"round %d: hub %d bitset popcount=%d but alive row has %d entries",
				st.round, v, pc, st.alive.n[v])
		}
	}
	unassigned := int64(st.g.NumEdges() - st.a.AssignedCount())
	invariants.Assertf(aliveTotal == 2*unassigned,
		"round %d: alive rows total %d entries but %d edges are unassigned (want %d)",
		st.round, aliveTotal, unassigned, 2*unassigned)
}
