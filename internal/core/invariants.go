package core

import "github.com/graphpart/graphpart/internal/invariants"

// assertRoundInvariants cross-checks the incremental frontier bookkeeping
// against its definition at a point where the round's state is quiescent
// (after a completed absorption, never mid-vertex): the frontier N(P_k) is
// exactly the non-member vertices with at least one alive edge into P_k, so
//
//	1 <= cin[v] <= aliveDeg[v]   for every live frontier vertex, and
//	eout == sum of cin over the live frontier.
//
// The incremental ein/eout counters drive the paper's stage switch
// (M = ein/eout crossing 1), so a drift here silently changes which stage
// selects every subsequent vertex. No-op unless built with
// -tags graphpart_invariants.
func (st *runState) assertRoundInvariants() {
	if !invariants.Enabled {
		return
	}
	invariants.Assertf(st.ein >= 0 && st.eout >= 0,
		"round %d: negative edge counters ein=%d eout=%d", st.round, st.ein, st.eout)
	var sum int64
	for _, v := range st.frontierList {
		if !st.inFrontier(v) || st.isMember(v) {
			continue
		}
		c := st.cin[v]
		invariants.Assertf(c >= 1 && c <= st.aliveDeg[v],
			"round %d: frontier vertex %d has cin=%d outside [1,%d]", st.round, v, c, st.aliveDeg[v])
		sum += int64(c)
	}
	invariants.Assertf(sum == st.eout,
		"round %d: eout=%d but frontier cin sums to %d", st.round, st.eout, sum)
}
