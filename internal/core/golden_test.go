package core_test

import (
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/graphpart/graphpart/internal/core"
	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
)

// goldenHash folds an assignment's per-edge partition ids (little-endian
// int32, unassigned as -1) through FNV-1a 64. The recipe is fixed forever:
// the expected values below were captured from the pre-kernel scoring code,
// so matching them proves the compacted-adjacency/bitset/gallop kernels and
// the parallel scoring fold are bit-identical with the original
// mark-and-scan implementation.
func goldenHash(a *partition.Assignment) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 4)
	for e := 0; e < a.NumEdges(); e++ {
		k, ok := a.PartitionOf(graph.EdgeID(e))
		if !ok {
			k = -1
		}
		buf[0] = byte(k)
		buf[1] = byte(k >> 8)
		buf[2] = byte(k >> 16)
		buf[3] = byte(k >> 24)
		h.Write(buf)
	}
	return h.Sum64()
}

// goldenCase pins one (dataset, algorithm, p) partitioning to the hash the
// seed implementation produced. algo selects a constructor in runGolden.
type goldenCase struct {
	dataset string // gen notation; "s" suffix means the small variant
	algo    string
	p       int
	want    uint64
}

// goldenCases were captured from the repository state before the stage-I
// kernel rework (graph seed 42, algorithm seed 42 throughout). Do not
// regenerate these with current code — they are the oracle.
var goldenCases = []goldenCase{
	{"G1s", "tlp", 4, 0x9d9c02ba6b831fe6}, {"G1s", "tlp", 8, 0x3dc7bbf2ed898902},
	{"G2s", "tlp", 4, 0x8e9a915145b04a25}, {"G2s", "tlp", 8, 0x345e49f06701e1f5},
	{"G3s", "tlp", 4, 0x3627b494cc267845}, {"G3s", "tlp", 8, 0xf83f0ab1ac2c8d15},
	{"G4s", "tlp", 4, 0xeaddf6a3469bb3b6}, {"G4s", "tlp", 8, 0x233194d1598304b2},
	{"G5s", "tlp", 4, 0x97963fa41e2a3746}, {"G5s", "tlp", 8, 0x9b2a9415d76746c2},
	{"G6s", "tlp", 4, 0x1e3e933e93b153f6}, {"G6s", "tlp", 8, 0x744659b778e32ca2},
	{"G7s", "tlp", 4, 0xfb4eb6ae1c8e7435}, {"G7s", "tlp", 8, 0x4fd7fe1dacc47f35},
	{"G8s", "tlp", 4, 0x412937866833af75}, {"G8s", "tlp", 8, 0xa62918b9fabbaac5},
	{"G9s", "tlp", 4, 0x4224727e7a015c86}, {"G9s", "tlp", 8, 0x9b57d27c63791fc2},
	{"G1", "tlp", 10, 0xcca9a4552366123c},
	{"G1s", "tlpr", 6, 0x22d1438894c04aa1},
	{"G2s", "tlpr", 6, 0x8def60702a01ce75},
	{"G3s", "tlpr", 6, 0xa8be804faeba5005},
	{"G1s", "exact", 4, 0x6c5c8d341bd71d46},
	{"G2s", "exact", 4, 0xf7317563daa320d5},
	{"G3s", "exact", 4, 0xc9a36433b184e585},
	{"G1s", "capped", 4, 0x3b2c76a6078203d6},
	{"G2s", "capped", 4, 0x4d1d62ad85853eb5},
	{"G3s", "capped", 4, 0x9fb1260255e4fd95},
	{"G1s", "maxdeg", 4, 0xd47940cc71d46f06},
	{"G2s", "maxdeg", 4, 0x1660841706ca1a25},
	{"G3s", "maxdeg", 4, 0xaa9a99247533fd85},
}

// goldenGraph resolves a dataset notation to its deterministic graph.
func goldenGraph(t *testing.T, notation string) *graph.Graph {
	t.Helper()
	for _, d := range append(gen.Datasets(), gen.SmallDatasets()...) {
		if d.Notation == notation {
			return d.Generate(42)
		}
	}
	t.Fatalf("unknown dataset %q", notation)
	return nil
}

// runGolden partitions the case's graph with the case's algorithm at the
// given worker count and returns the assignment.
func runGolden(t *testing.T, g *graph.Graph, c goldenCase, workers int) *partition.Assignment {
	t.Helper()
	var pt partition.Partitioner
	switch c.algo {
	case "tlp":
		pt = core.MustNew(core.Options{Seed: 42, Workers: workers})
	case "tlpr":
		pt = core.MustNewTLPR(0.5, core.Options{Seed: 42, Workers: workers})
	case "exact":
		pt = core.MustNew(core.Options{Seed: 42, Stage1Exact: true, Workers: workers})
	case "capped":
		pt = core.MustNew(core.Options{Seed: 42, Stage1NeighborCap: 8, Stage1MemberCap: 4, Workers: workers})
	case "maxdeg":
		pt = core.MustNew(core.Options{Seed: 42, Stage1Policy: core.PolicyMaxDegree, Workers: workers})
	default:
		t.Fatalf("unknown algo %q", c.algo)
	}
	a, err := pt.Partition(g, c.p)
	if err != nil {
		t.Fatalf("%s/%s/p=%d: %v", c.dataset, c.algo, c.p, err)
	}
	return a
}

// TestGoldenSeedIdentity proves the kernel rework changed nothing the user
// can observe: every (dataset, algorithm, p) case reproduces the exact
// partition hash the pre-rework code produced, at every worker count — the
// parallel scoring fan-out must be invisible in the output.
func TestGoldenSeedIdentity(t *testing.T) {
	for _, c := range goldenCases {
		c := c
		t.Run(fmt.Sprintf("%s/%s/p%d", c.dataset, c.algo, c.p), func(t *testing.T) {
			g := goldenGraph(t, c.dataset)
			for _, workers := range []int{1, 2, 4, 8} {
				a := runGolden(t, g, c, workers)
				if got := goldenHash(a); got != c.want {
					t.Errorf("workers=%d: partition hash %#016x, want seed-identical %#016x",
						workers, got, c.want)
				}
			}
		})
	}
}
