// Package core implements the paper's contribution: TLP, the two-stage
// local graph edge partitioner, and its ablation variant TLP_R.
//
// TLP grows partitions one at a time ("local graph partitioning"): each
// round seeds a partition with a random vertex and repeatedly absorbs the
// best frontier vertex until the partition reaches its edge capacity
// C = ceil(m/p). The growth switches between two selection strategies based
// on the partition's modularity M(P_k) = |E(P_k)|/|E_out(P_k)|:
//
//   - Stage I (M <= 1): pick the frontier vertex closest to the partition
//     with the highest degree, scored by mu_s1 (Eq. 7) — the maximum, over
//     partition members j adjacent to the candidate v, of
//     |N(v) ∩ N(j)| / |N(j)|.
//   - Stage II (M > 1): pick the frontier vertex whose absorption maximises
//     the modularity gain ΔM (Eqs. 9-11).
//
// Only the current partition, its frontier and O(1) counters are held per
// round, which is the paper's locality property: memory is O(L·d) for L
// vertices per partition and average degree d.
package core

import (
	"fmt"
)

// Stage1Policy selects the Stage-I vertex selection rule; the paper's mu_s1
// is the default, and a plain max-degree rule exists as an ablation of the
// "closeness" component (DESIGN.md §6).
type Stage1Policy int

const (
	// PolicyMuS1 is the paper's Eq. 7 rule: best common-neighbour overlap
	// with a partition member (closeness x degree).
	PolicyMuS1 Stage1Policy = iota + 1
	// PolicyMaxDegree ignores closeness and absorbs the highest-degree
	// frontier vertex; isolates the contribution of the overlap term.
	PolicyMaxDegree
)

// Options configures a TLP (or TLP_R) run. The zero value gives the paper's
// defaults: capacity C = ceil(m/p), reseeding on frontier exhaustion, and
// exact Stage-I evaluation.
type Options struct {
	// Seed drives every random choice (round seed vertices). Runs with
	// equal seeds on equal graphs produce identical partitionings.
	Seed uint64

	// CapacitySlack scales the per-partition capacity:
	// C = ceil(slack * m / p). Zero means 1.0 (the paper's balanced
	// setting). Values below 1 are rejected — the assignment could not
	// cover the graph.
	CapacitySlack float64

	// LiteralBreak restores Algorithm 1's literal behaviour of ending a
	// round when the frontier empties (e.g. a connected component is
	// exhausted). The default (false) reseeds the same partition with a
	// fresh random vertex so capacity is not wasted; see DESIGN.md §1.
	// With LiteralBreak set, edges left over after p rounds are swept
	// into the least-loaded partitions so the result is still complete.
	LiteralBreak bool

	// Stage1Policy selects the Stage-I rule; zero means PolicyMuS1.
	Stage1Policy Stage1Policy

	// Stage1Exact forces recomputation of every frontier candidate's
	// mu_s1 score at every Stage-I step (the paper's literal evaluation
	// order). The default event-driven cache recomputes a candidate only
	// when it gains a new partition neighbour, which can serve slightly
	// stale scores when alive degrees drift; exact mode exists for tests
	// and small graphs.
	Stage1Exact bool

	// Stage1MemberCap bounds how many partition-side neighbours j are
	// examined per mu_s1 evaluation (largest-overlap candidates are found
	// early in CSR order; the cap trades fidelity for speed on hubs).
	// Zero means unlimited.
	Stage1MemberCap int

	// Stage1NeighborCap bounds how many of j's neighbours are scanned per
	// common-neighbour count, sampling evenly when j's alive degree
	// exceeds the cap (the count is scaled back up). Zero means unlimited.
	// Setting the cap routes every stage-I intersection through the legacy
	// stride-sampling path (sampledOverlap) instead of the exact kernels.
	Stage1NeighborCap int

	// Workers bounds the goroutines of the stage-I parallel scoring
	// fan-out. Zero resolves through GRAPHPART_WORKERS and then GOMAXPROCS
	// (internal/parallel). The partitioning is bit-identical for every
	// value: workers only compute index-addressed intersection counts, and
	// the sequential fold consumes them in a fixed order.
	Workers int
}

func (o Options) capacitySlack() float64 {
	if o.CapacitySlack == 0 {
		return 1.0
	}
	return o.CapacitySlack
}

func (o Options) validate() error {
	if o.CapacitySlack != 0 && o.CapacitySlack < 1.0 {
		return fmt.Errorf("core: capacity slack %v < 1 cannot cover the graph", o.CapacitySlack)
	}
	if o.Stage1MemberCap < 0 || o.Stage1NeighborCap < 0 {
		return fmt.Errorf("core: negative stage-I caps")
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: negative worker count %d", o.Workers)
	}
	switch o.Stage1Policy {
	case 0, PolicyMuS1, PolicyMaxDegree:
	default:
		return fmt.Errorf("core: unknown stage-I policy %d", o.Stage1Policy)
	}
	return nil
}

func (o Options) stage1Policy() Stage1Policy {
	if o.Stage1Policy == 0 {
		return PolicyMuS1
	}
	return o.Stage1Policy
}

// Stats records what happened during a partitioning run; Table VI of the
// paper reports the per-stage average degrees.
type Stats struct {
	// Stage1Selections / Stage2Selections count vertices absorbed in each
	// stage across all rounds.
	Stage1Selections, Stage2Selections int
	// Stage1DegreeSum / Stage2DegreeSum accumulate the original-graph
	// degree of vertices absorbed in each stage.
	Stage1DegreeSum, Stage2DegreeSum int64
	// Reseeds counts frontier-exhaustion reseeds (always 0 with
	// LiteralBreak).
	Reseeds int
	// PartialAbsorptions counts round-ending absorptions that hit the
	// capacity mid-vertex, assigning only part of the candidate's edges.
	PartialAbsorptions int
	// SweptEdges counts edges placed by the final balance sweep (only
	// nonzero with LiteralBreak, or when capacity rounding strands edges).
	SweptEdges int
	// Rounds is the number of partition-growth rounds executed.
	Rounds int
	// Stage1Kernels breaks down the Eq. 7 intersections by the kernel that
	// evaluated them (DESIGN.md §13).
	Stage1Kernels KernelCounts
}

// KernelCounts tallies stage-I intersection evaluations per kernel. Every
// kernel computes the same exact overlap except Sampled, the documented
// Stage1NeighborCap stride approximation.
type KernelCounts struct {
	// Scan counts epoch-stamp scans over compacted alive rows.
	Scan int64
	// Bitset counts alive-row scans against a persistent hub bitset.
	Bitset int64
	// Word counts word-at-a-time bitset AND+popcount intersections
	// (both endpoints hubs).
	Word int64
	// Gallop counts short-row-into-sorted-CSR binary-search intersections.
	Gallop int64
	// Sampled counts legacy Stage1NeighborCap stride-sampled evaluations.
	Sampled int64
}

// AvgDegreeStage1 returns the average original-graph degree of the vertices
// selected during Stage I (Table VI, left columns), or 0 when none were.
func (s Stats) AvgDegreeStage1() float64 {
	if s.Stage1Selections == 0 {
		return 0
	}
	return float64(s.Stage1DegreeSum) / float64(s.Stage1Selections)
}

// AvgDegreeStage2 returns the average original-graph degree of the vertices
// selected during Stage II (Table VI, right columns), or 0 when none were.
func (s Stats) AvgDegreeStage2() float64 {
	if s.Stage2Selections == 0 {
		return 0
	}
	return float64(s.Stage2DegreeSum) / float64(s.Stage2Selections)
}
