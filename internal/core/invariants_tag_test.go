//go:build graphpart_invariants

package core

import (
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

// TestTLPUnderSanitizer runs both stages of the partitioner with the frontier
// cross-checks compiled in: every completed round must satisfy
// eout == sum(cin) over the live frontier, or the run panics.
func TestTLPUnderSanitizer(t *testing.T) {
	r := rng.New(7)
	b := graph.NewBuilder(400)
	for i := 1; i < 400; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex(r.Intn(i)))
	}
	for i := 0; i < 800; i++ {
		_ = b.AddEdge(graph.Vertex(r.Intn(400)), graph.Vertex(r.Intn(400)))
	}
	g := b.Build()
	for _, p := range []int{2, 5, 10} {
		a, err := MustNew(Options{Seed: 42}).Partition(g, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if err := partition.Validate(g, a, partition.ValidateOptions{}); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
	// The ablation variant exercises the pure stage-II policy too.
	a, err := MustNewTLPR(0, Options{Seed: 42}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{}); err != nil {
		t.Fatal(err)
	}
}
