package core

import (
	"sync/atomic"
	"time"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/parallel"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

// runState holds the whole-run bookkeeping shared by all rounds. The
// per-round state (membership, frontier) is reset cheaply between rounds
// with epoch stamps rather than reallocation.
type runState struct {
	g    *graph.Graph
	a    *partition.Assignment
	rand *rng.RNG
	opts Options

	// aliveDeg[v] is the number of incident edges not yet assigned to any
	// partition — the vertex degree in the "remaining graph".
	aliveDeg []int32

	// alivePool is a lazily-compacted pool of vertices that may still
	// have alive edges; seed selection pops random entries and discards
	// dead ones.
	alivePool []graph.Vertex

	// round is the current round number (1-based); epoch arrays compare
	// against it so that resetting between rounds is O(1).
	round int32

	// memberEpoch[v] == round means v is in the current partition P_k.
	memberEpoch []int32
	// frontierEpoch[v] == round means v is in N(P_k), the frontier.
	frontierEpoch []int32
	// cin[v] is the number of alive edges between v and P_k members;
	// valid only while frontierEpoch[v] == round.
	cin []int32

	// frontierList enumerates the current frontier (may contain vertices
	// absorbed later in the round; membership is re-checked on scan).
	frontierList []graph.Vertex

	// Stage II bucket structure: buckets[c] is a lazy min-heap over
	// (cout, v) of frontier vertices whose cin was c at push time. Buckets
	// are built lazily: touchFrontier only feeds them once bucketsLive is
	// set by the first stage-II selection of the round (rebuildBuckets), so
	// stage-I growth pays no bucket maintenance at all.
	buckets     []coutHeap
	maxCin      int32
	bucketsLive bool
	// Stage I score cache and lazy max-heap (see stage1.go).
	mu1Score []float64
	mu1Heap  scoreHeap

	// scratch stamps for common-neighbour marking (mu_s1).
	markStamp []int32
	markEpoch int32

	// Stage-I scoring kernel state (DESIGN.md §13): the compacted alive
	// adjacency, the persistent hub bitsets, and the resolved worker count
	// for the parallel frontier-scoring fan-out.
	alive        *aliveAdj
	hubBits      [][]uint64 // nil for non-hubs; alive-neighbour bitset for hubs
	hubWords     int        // words per hub bitset: ceil(n/64)
	hubThreshold int        // full degree at which a vertex becomes a hub
	workers      int        // resolved stage-I scoring workers
	countBuf     []int32    // per-candidate overlap results, index-addressed

	// kernelCounts tallies intersections per kernelKind; atomics because
	// parallel scoring workers merge per-chunk counts concurrently.
	kernelCounts [numKernels]atomic.Int64

	// Per-round kernel-phase wall-clock accumulators, only advanced while
	// telemetry records; flushed as tlp.s1.* trace segments at round end.
	// Marking is accounted under intersect (one fewer clock read per
	// absorption on the hot path).
	tCompact, tIntersect, tFold time.Duration

	// ein/eout are |E(P_k)| and |E_out(P_k)| of the current round's
	// partition, maintained incrementally.
	ein, eout int64
}

func newRunState(g *graph.Graph, a *partition.Assignment, opts Options) *runState {
	n := g.NumVertices()
	st := &runState{
		g:             g,
		a:             a,
		rand:          rng.New(opts.Seed),
		opts:          opts,
		aliveDeg:      make([]int32, n),
		memberEpoch:   make([]int32, n),
		frontierEpoch: make([]int32, n),
		cin:           make([]int32, n),
		mu1Score:      make([]float64, n),
		markStamp:     make([]int32, n),
	}
	st.alivePool = make([]graph.Vertex, 0, n)
	for v := 0; v < n; v++ {
		d := int32(g.Degree(graph.Vertex(v)))
		st.aliveDeg[v] = d
		if d > 0 {
			st.alivePool = append(st.alivePool, graph.Vertex(v))
		}
	}
	st.workers = parallel.Workers(opts.Workers)
	st.alive = newAliveAdj(g)
	st.initHubBitsets()
	return st
}

// beginRound resets the per-round state.
func (st *runState) beginRound() {
	st.round++
	st.frontierList = st.frontierList[:0]
	for i := range st.buckets {
		st.buckets[i] = st.buckets[i][:0]
	}
	st.maxCin = 0
	st.bucketsLive = false
	st.mu1Heap = st.mu1Heap[:0]
	st.ein = 0
	st.eout = 0
}

// pickSeed returns a uniformly random vertex that still has alive edges, or
// false when none remain.
func (st *runState) pickSeed() (graph.Vertex, bool) {
	for len(st.alivePool) > 0 {
		i := st.rand.Intn(len(st.alivePool))
		v := st.alivePool[i]
		if st.aliveDeg[v] > 0 && st.memberEpoch[v] != st.round {
			return v, true
		}
		// Dead or already a member this round: swap-remove dead ones,
		// skip members (they stay for later rounds).
		if st.aliveDeg[v] <= 0 {
			last := len(st.alivePool) - 1
			st.alivePool[i] = st.alivePool[last]
			st.alivePool = st.alivePool[:last]
		} else {
			// Member with alive edges: rare (partial absorption);
			// try another index but avoid spinning forever by
			// scanning once.
			if w, ok := st.scanSeed(); ok {
				return w, true
			}
			return 0, false
		}
	}
	return 0, false
}

// scanSeed linearly searches the pool for a non-member alive vertex.
func (st *runState) scanSeed() (graph.Vertex, bool) {
	for _, v := range st.alivePool {
		if st.aliveDeg[v] > 0 && st.memberEpoch[v] != st.round {
			return v, true
		}
	}
	return 0, false
}

// isMember reports whether v belongs to the current round's partition.
func (st *runState) isMember(v graph.Vertex) bool { return st.memberEpoch[v] == st.round }

// inFrontier reports whether v is currently in N(P_k).
func (st *runState) inFrontier(v graph.Vertex) bool { return st.frontierEpoch[v] == st.round }

// touchFrontier increments cin[u], entering u into the frontier structures.
func (st *runState) touchFrontier(u graph.Vertex) {
	if !st.inFrontier(u) {
		st.frontierEpoch[u] = st.round
		st.cin[u] = 0
		st.frontierList = append(st.frontierList, u)
		// Fresh frontier entry: zero the stage-I score cache and seed
		// the lazy heap so all-zero-score frontiers (trees) still
		// yield a candidate, tie-broken by alive degree.
		if !st.opts.Stage1Exact {
			st.mu1Score[u] = 0
			st.mu1Heap.push(scoreEntry{score: 0, deg: st.aliveDeg[u], v: u})
		}
	}
	st.cin[u]++
	if st.bucketsLive {
		st.pushBucket(u)
	}
}

// rebuildBuckets populates the stage-II buckets from the live frontier and
// switches touchFrontier into push-through mode for the rest of the round.
// Selection is unchanged versus eager maintenance: under eager pushes a
// vertex's latest push always matches its current (cin, cout) — cout cannot
// drift without a cin change while the vertex stays a non-member — so each
// bucket's minimum valid entry is the same vertex either way.
func (st *runState) rebuildBuckets() {
	st.bucketsLive = true
	for _, u := range st.frontierList {
		if !st.inFrontier(u) || st.isMember(u) || st.aliveDeg[u] <= 0 || st.cin[u] <= 0 {
			continue
		}
		st.pushBucket(u)
	}
}

// coutHeap is a binary min-heap of (cout, v) entries ordered by cout then
// vertex id (for determinism). Entries are validated lazily against the
// live cin/frontier state on pop.
type coutHeap []coutEntry

type coutEntry struct {
	cout int32
	v    graph.Vertex
}

func (h coutHeap) less(i, j int) bool {
	if h[i].cout != h[j].cout {
		return h[i].cout < h[j].cout
	}
	return h[i].v < h[j].v
}

func (h *coutHeap) push(e coutEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *coutHeap) pop() (coutEntry, bool) {
	old := *h
	if len(old) == 0 {
		return coutEntry{}, false
	}
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && (*h).less(l, smallest) {
			smallest = l
		}
		if r < last && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top, true
}

func (h coutHeap) peek() (coutEntry, bool) {
	if len(h) == 0 {
		return coutEntry{}, false
	}
	return h[0], true
}

// pushBucket records u's current (cin, cout) in the stage-II buckets.
func (st *runState) pushBucket(u graph.Vertex) {
	c := st.cin[u]
	for int32(len(st.buckets)) <= c {
		st.buckets = append(st.buckets, nil)
	}
	if c > st.maxCin {
		st.maxCin = c
	}
	st.buckets[c].push(coutEntry{cout: st.aliveDeg[u] - st.cin[u], v: u})
}

// validBucketEntry reports whether a popped/peeked entry still describes a
// live frontier candidate in bucket c.
func (st *runState) validBucketEntry(e coutEntry, c int32) bool {
	return st.inFrontier(e.v) &&
		!st.isMember(e.v) &&
		st.cin[e.v] == c &&
		st.aliveDeg[e.v]-st.cin[e.v] == e.cout
}

// nextMark returns a fresh mark epoch for common-neighbour stamping.
func (st *runState) nextMark() int32 {
	st.markEpoch++
	return st.markEpoch
}
