package core

import (
	"testing"

	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

// referenceSweep is the O(m·p) argmin scan sweepLeftovers replaced; kept
// here as the behavioural oracle for the heap version.
func referenceSweep(g *graph.Graph, a *partition.Assignment, stats *Stats) {
	for id := 0; id < g.NumEdges(); id++ {
		eid := graph.EdgeID(id)
		if a.IsAssigned(eid) {
			continue
		}
		best := 0
		for k := 1; k < a.P(); k++ {
			if a.Load(k) < a.Load(best) {
				best = k
			}
		}
		a.Assign(eid, best)
		stats.SweptEdges++
	}
}

// TestSweepLeftoversMatchesReferenceScan seeds partial assignments of
// varying density and checks the heap sweep places every leftover edge in
// exactly the partition the argmin scan would have chosen.
func TestSweepLeftoversMatchesReferenceScan(t *testing.T) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 1500, TargetEdges: 8000, Exponent: 2.1}, rng.New(31))
	for _, p := range []int{1, 2, 7, 16, 33} {
		for _, density := range []uint64{0, 3, 6, 9} {
			aHeap := partition.MustNew(g.NumEdges(), p)
			aRef := partition.MustNew(g.NumEdges(), p)
			for id := 0; id < g.NumEdges(); id++ {
				if rng.Hash64(uint64(id))%10 < density {
					k := int(rng.Hash2(uint64(id), uint64(p)) % uint64(p))
					aHeap.Assign(graph.EdgeID(id), k)
					aRef.Assign(graph.EdgeID(id), k)
				}
			}
			var sHeap, sRef Stats
			sweepLeftovers(g, aHeap, &sHeap)
			referenceSweep(g, aRef, &sRef)
			if sHeap.SweptEdges != sRef.SweptEdges {
				t.Fatalf("p=%d density=%d: swept %d vs %d edges",
					p, density, sHeap.SweptEdges, sRef.SweptEdges)
			}
			for id := 0; id < g.NumEdges(); id++ {
				kh, _ := aHeap.PartitionOf(graph.EdgeID(id))
				kr, _ := aRef.PartitionOf(graph.EdgeID(id))
				if kh != kr {
					t.Fatalf("p=%d density=%d: edge %d swept to %d, reference says %d",
						p, density, id, kh, kr)
				}
			}
		}
	}
}

// TestSweepLiteralBreakEndToEnd runs TLP in LiteralBreak mode — the mode
// that routes a large edge fraction through the sweep — and validates the
// result is a complete, capacity-respecting assignment.
func TestSweepLiteralBreakEndToEnd(t *testing.T) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 2000, TargetEdges: 10000, Exponent: 2.1}, rng.New(37))
	const p = 8
	tlp := MustNew(Options{Seed: 5, LiteralBreak: true})
	a, stats, err := tlp.PartitionStats(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.AssignedCount(); got != g.NumEdges() {
		t.Fatalf("assigned %d of %d edges", got, g.NumEdges())
	}
	if stats.SweptEdges == 0 {
		t.Fatal("LiteralBreak run swept no edges; test exercises nothing")
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{}); err != nil {
		t.Fatalf("validation failed: %v", err)
	}
}
