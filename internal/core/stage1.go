package core

import (
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/parallel"
)

// Stage-I selection maximises mu_s1 (Eq. 7): the closeness of a frontier
// candidate v to the partition, taken as the best overlap ratio
// |N(v) ∩ N(j)| / |N(j)| over partition members j adjacent to v.
//
// Two evaluation modes exist:
//
//   - Cached/incremental (default): when member j is absorbed, each frontier
//     neighbour v gains exactly one new term overlap(v,j)/|N(j)|; the cached
//     score is the running maximum of the terms observed, and a lazy max-heap
//     orders candidates. Per absorption this costs O(deg(j) + sum of deg(v)
//     over j's frontier neighbours), so a whole round stays near the paper's
//     O(L²d²) bound without rescanning the frontier every step. Terms are
//     frozen as evaluated (alive-degree drift after evaluation is ignored).
//   - Exact (Options.Stage1Exact): every step recomputes every candidate
//     from scratch — the paper's literal evaluation order; used by tests and
//     available for small graphs.

// scoreEntry is a lazy max-heap entry for Stage-I selection. deg is the
// candidate's alive degree at push time and only breaks ties.
type scoreEntry struct {
	score float64
	deg   int32
	v     graph.Vertex
}

// scoreHeap is a binary max-heap ordered by (score desc, deg desc, v asc).
type scoreHeap []scoreEntry

func (h scoreHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.score != b.score {
		return a.score > b.score
	}
	if a.deg != b.deg {
		return a.deg > b.deg
	}
	return a.v < b.v
}

func (h *scoreHeap) push(e scoreEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *scoreHeap) pop() (scoreEntry, bool) {
	old := *h
	if len(old) == 0 {
		return scoreEntry{}, false
	}
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	h.siftDown(0)
	return top, true
}

func (h scoreHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && h.less(l, best) {
			best = l
		}
		if r < len(h) && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func (h scoreHeap) peek() (scoreEntry, bool) {
	if len(h) == 0 {
		return scoreEntry{}, false
	}
	return h[0], true
}

// selectStage1 returns the frontier candidate with the best cached mu_s1
// score (incremental mode) or recomputes all candidates (exact mode).
func (st *runState) selectStage1() (graph.Vertex, bool) {
	if st.opts.stage1Policy() == PolicyMaxDegree {
		return st.selectStage1MaxDegree()
	}
	if st.opts.Stage1Exact {
		return st.selectStage1Exact()
	}
	for {
		e, ok := st.mu1Heap.peek()
		if !ok {
			return 0, false
		}
		if st.inFrontier(e.v) && !st.isMember(e.v) &&
			st.aliveDeg[e.v] > 0 && e.score == st.mu1Score[e.v] {
			return e.v, true
		}
		_, _ = st.mu1Heap.pop()
	}
}

// selectStage1MaxDegree is the PolicyMaxDegree ablation: absorb the frontier
// vertex with the highest remaining degree, ignoring closeness entirely.
func (st *runState) selectStage1MaxDegree() (graph.Vertex, bool) {
	var bestV graph.Vertex
	bestDeg := int32(-1)
	found := false
	w := 0
	for _, u := range st.frontierList {
		if !st.inFrontier(u) || st.isMember(u) || st.aliveDeg[u] <= 0 {
			continue
		}
		st.frontierList[w] = u
		w++
		if st.aliveDeg[u] > bestDeg || (st.aliveDeg[u] == bestDeg && u < bestV) {
			bestV, bestDeg, found = u, st.aliveDeg[u], true
		}
	}
	st.frontierList = st.frontierList[:w]
	return bestV, found
}

// selectStage1Exact scans and rescores the whole frontier (compacting
// absorbed entries out of the list), matching the paper's literal loop.
func (st *runState) selectStage1Exact() (graph.Vertex, bool) {
	best := -1.0
	var bestV graph.Vertex
	bestDeg := int32(-1)
	found := false
	w := 0
	for _, u := range st.frontierList {
		if !st.inFrontier(u) || st.isMember(u) || st.aliveDeg[u] <= 0 {
			continue
		}
		st.frontierList[w] = u
		w++
		s := st.computeMu1(u)
		if !found || s > best ||
			(s == best && (st.aliveDeg[u] > bestDeg ||
				(st.aliveDeg[u] == bestDeg && u < bestV))) {
			best, bestV, bestDeg, found = s, u, st.aliveDeg[u], true
		}
	}
	st.frontierList = st.frontierList[:w]
	return bestV, found
}

// stage1ParallelMin is the candidate count below which the scoring fan-out
// stays on the calling goroutine: pool startup costs a few microseconds,
// which only pays off once a frontier row carries hundreds of intersections.
const stage1ParallelMin = 256

// updateStage1Scores folds the newly absorbed member j into the cached
// mu_s1 scores of its frontier neighbours: each gains the candidate term
// overlap(v, j) / |N(j)| where N(·) is the alive neighbourhood.
//
// The loop runs in three phases over j's compacted alive row (DESIGN.md
// §13): mark (stamp j's alive neighbourhood, skipped for hubs whose
// persistent bitset already answers membership), intersect (one exact
// kernel evaluation per candidate, fanned over internal/parallel when the
// row is large — results land in the index-addressed countBuf, so the
// counts are bit-identical for any worker count), and fold (sequential
// heap/score updates in row order). Only the intersect phase runs
// concurrently, and it exclusively reads state, so the fold — the only
// writer — keeps the output byte-for-byte equal to a 1-worker run.
func (st *runState) updateStage1Scores(j graph.Vertex) {
	if st.opts.Stage1Exact || st.opts.stage1Policy() == PolicyMaxDegree {
		return // these modes rescan; no cache to maintain
	}
	dj := st.aliveDeg[j]
	if dj <= 0 {
		return
	}
	if st.opts.Stage1NeighborCap > 0 {
		st.updateStage1ScoresSampled(j)
		return
	}
	w := st.kernelWatch()
	mark := st.markAlive(j)

	jn, _ := st.alive.row(j)
	djf := float64(dj)
	if len(jn) < stage1ParallelMin || st.workers <= 1 {
		// Sequential rows fuse intersect and fold into one pass: the fold
		// only writes mu1Score/mu1Heap, which no kernel reads, so the fused
		// pass computes exactly what the staged one does. Fold time is
		// accounted under intersect here.
		var local [numKernels]int64
		for _, v := range jn {
			if st.isMember(v) {
				continue
			}
			cnt, kind := st.overlapAlive(j, v, mark)
			local[kind]++
			if score := float64(cnt) / djf; score > st.mu1Score[v] {
				st.mu1Score[v] = score
				st.mu1Heap.push(scoreEntry{score: score, deg: st.aliveDeg[v], v: v})
				st.maybeCompactMu1Heap()
			}
		}
		for k, n := range local {
			if n > 0 {
				st.kernelCounts[k].Add(n)
			}
		}
		st.tIntersect += w.lap()
		return
	}

	if cap(st.countBuf) < len(jn) {
		st.countBuf = make([]int32, len(jn)*2)
	}
	counts := st.countBuf[:len(jn)]
	chunks := parallel.Chunks(len(jn), st.workers*4)
	parallel.ForEach(len(chunks), st.workers, func(c int) {
		var local [numKernels]int64
		for i := chunks[c][0]; i < chunks[c][1]; i++ {
			v := jn[i]
			if st.isMember(v) {
				counts[i] = -1
				continue
			}
			cnt, kind := st.overlapAlive(j, v, mark)
			counts[i] = int32(cnt)
			local[kind]++
		}
		for k, n := range local {
			if n > 0 {
				st.kernelCounts[k].Add(n)
			}
		}
	})
	st.tIntersect += w.lap()

	for i, v := range jn {
		if counts[i] < 0 {
			continue
		}
		if score := float64(counts[i]) / djf; score > st.mu1Score[v] {
			st.mu1Score[v] = score
			st.mu1Heap.push(scoreEntry{score: score, deg: st.aliveDeg[v], v: v})
			st.maybeCompactMu1Heap()
		}
	}
	st.tFold += w.lap()
}

// updateStage1ScoresSampled is the legacy scoring loop kept verbatim for
// Stage1NeighborCap configurations: full CSR rows, per-edge assignment
// checks, and stride-sampled counts via sampledOverlap, so capped runs
// reproduce their historical output exactly.
func (st *runState) updateStage1ScoresSampled(j graph.Vertex) {
	g := st.g
	mark := st.nextMark()
	jn := g.Neighbors(j)
	je := g.IncidentEdges(j)
	for i, u := range jn {
		if !st.a.IsAssigned(je[i]) {
			st.markStamp[u] = mark
		}
	}
	djf := float64(st.aliveDeg[j])
	for i, v := range jn {
		if st.a.IsAssigned(je[i]) || st.isMember(v) {
			continue
		}
		overlap := st.sampledOverlap(v, mark)
		st.kernelCounts[kernelSampled].Add(1)
		if score := float64(overlap) / djf; score > st.mu1Score[v] {
			st.mu1Score[v] = score
			st.mu1Heap.push(scoreEntry{score: score, deg: st.aliveDeg[v], v: v})
			st.maybeCompactMu1Heap()
		}
	}
}

// maybeCompactMu1Heap drops stale lazy-heap entries once they outnumber the
// plausible frontier by 2x, bounding heap growth at O(frontier): every live
// entry's vertex is on frontierList, so after compaction len(heap) <=
// len(frontierList). Staleness is permanent within a round (members stay
// members, dead stays dead, cached scores only increase), so removing stale
// entries eagerly is indistinguishable from selectStage1's lazy discards.
func (st *runState) maybeCompactMu1Heap() {
	if len(st.mu1Heap) <= 64 || len(st.mu1Heap) <= 2*len(st.frontierList) {
		return
	}
	live := st.mu1Heap[:0]
	for _, e := range st.mu1Heap {
		if st.inFrontier(e.v) && !st.isMember(e.v) &&
			st.aliveDeg[e.v] > 0 && e.score == st.mu1Score[e.v] {
			live = append(live, e)
		}
	}
	st.mu1Heap = live
	for i := len(live)/2 - 1; i >= 0; i-- {
		st.mu1Heap.siftDown(i)
	}
}

// computeMu1 evaluates Eq. 7 for candidate v from scratch (exact mode):
// the maximum over alive member neighbours j of overlap(v,j)/|N(j)|. The
// member iteration stays on the full CSR row so the Stage1MemberCap
// examination order is untouched; only the inner intersections dispatch to
// the alive-row kernels (or to sampledOverlap when Stage1NeighborCap is
// configured, preserving the capped mode's historical counts).
func (st *runState) computeMu1(v graph.Vertex) float64 {
	g := st.g
	legacy := st.opts.Stage1NeighborCap > 0
	var mark int32
	if legacy {
		mark = st.nextMark()
		nbrs := g.Neighbors(v)
		eids := g.IncidentEdges(v)
		for i, u := range nbrs {
			if !st.a.IsAssigned(eids[i]) {
				st.markStamp[u] = mark
			}
		}
	} else {
		mark = st.markAlive(v)
	}
	best := 0.0
	examined := 0
	nbrs := g.Neighbors(v)
	eids := g.IncidentEdges(v)
	for i, j := range nbrs {
		if st.a.IsAssigned(eids[i]) || !st.isMember(j) {
			continue
		}
		if capM := st.opts.Stage1MemberCap; capM > 0 && examined >= capM {
			break
		}
		examined++
		dj := st.aliveDeg[j]
		if dj <= 0 {
			continue
		}
		var common int
		if legacy {
			common = st.sampledOverlap(j, mark)
			st.kernelCounts[kernelSampled].Add(1)
		} else {
			var kind kernelKind
			common, kind = st.overlapAlive(v, j, mark)
			st.kernelCounts[kind].Add(1)
		}
		if score := float64(common) / float64(dj); score > best {
			best = score
		}
	}
	return best
}
