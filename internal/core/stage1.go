package core

import (
	"github.com/graphpart/graphpart/internal/graph"
)

// Stage-I selection maximises mu_s1 (Eq. 7): the closeness of a frontier
// candidate v to the partition, taken as the best overlap ratio
// |N(v) ∩ N(j)| / |N(j)| over partition members j adjacent to v.
//
// Two evaluation modes exist:
//
//   - Cached/incremental (default): when member j is absorbed, each frontier
//     neighbour v gains exactly one new term overlap(v,j)/|N(j)|; the cached
//     score is the running maximum of the terms observed, and a lazy max-heap
//     orders candidates. Per absorption this costs O(deg(j) + sum of deg(v)
//     over j's frontier neighbours), so a whole round stays near the paper's
//     O(L²d²) bound without rescanning the frontier every step. Terms are
//     frozen as evaluated (alive-degree drift after evaluation is ignored).
//   - Exact (Options.Stage1Exact): every step recomputes every candidate
//     from scratch — the paper's literal evaluation order; used by tests and
//     available for small graphs.

// scoreEntry is a lazy max-heap entry for Stage-I selection. deg is the
// candidate's alive degree at push time and only breaks ties.
type scoreEntry struct {
	score float64
	deg   int32
	v     graph.Vertex
}

// scoreHeap is a binary max-heap ordered by (score desc, deg desc, v asc).
type scoreHeap []scoreEntry

func (h scoreHeap) less(i, j int) bool {
	a, b := h[i], h[j]
	if a.score != b.score {
		return a.score > b.score
	}
	if a.deg != b.deg {
		return a.deg > b.deg
	}
	return a.v < b.v
}

func (h *scoreHeap) push(e scoreEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *scoreHeap) pop() (scoreEntry, bool) {
	old := *h
	if len(old) == 0 {
		return scoreEntry{}, false
	}
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && (*h).less(l, best) {
			best = l
		}
		if r < last && (*h).less(r, best) {
			best = r
		}
		if best == i {
			break
		}
		(*h)[i], (*h)[best] = (*h)[best], (*h)[i]
		i = best
	}
	return top, true
}

func (h scoreHeap) peek() (scoreEntry, bool) {
	if len(h) == 0 {
		return scoreEntry{}, false
	}
	return h[0], true
}

// selectStage1 returns the frontier candidate with the best cached mu_s1
// score (incremental mode) or recomputes all candidates (exact mode).
func (st *runState) selectStage1() (graph.Vertex, bool) {
	if st.opts.stage1Policy() == PolicyMaxDegree {
		return st.selectStage1MaxDegree()
	}
	if st.opts.Stage1Exact {
		return st.selectStage1Exact()
	}
	for {
		e, ok := st.mu1Heap.peek()
		if !ok {
			return 0, false
		}
		if st.inFrontier(e.v) && !st.isMember(e.v) &&
			st.aliveDeg[e.v] > 0 && e.score == st.mu1Score[e.v] {
			return e.v, true
		}
		_, _ = st.mu1Heap.pop()
	}
}

// selectStage1MaxDegree is the PolicyMaxDegree ablation: absorb the frontier
// vertex with the highest remaining degree, ignoring closeness entirely.
func (st *runState) selectStage1MaxDegree() (graph.Vertex, bool) {
	var bestV graph.Vertex
	bestDeg := int32(-1)
	found := false
	w := 0
	for _, u := range st.frontierList {
		if !st.inFrontier(u) || st.isMember(u) || st.aliveDeg[u] <= 0 {
			continue
		}
		st.frontierList[w] = u
		w++
		if st.aliveDeg[u] > bestDeg || (st.aliveDeg[u] == bestDeg && u < bestV) {
			bestV, bestDeg, found = u, st.aliveDeg[u], true
		}
	}
	st.frontierList = st.frontierList[:w]
	return bestV, found
}

// selectStage1Exact scans and rescores the whole frontier (compacting
// absorbed entries out of the list), matching the paper's literal loop.
func (st *runState) selectStage1Exact() (graph.Vertex, bool) {
	best := -1.0
	var bestV graph.Vertex
	bestDeg := int32(-1)
	found := false
	w := 0
	for _, u := range st.frontierList {
		if !st.inFrontier(u) || st.isMember(u) || st.aliveDeg[u] <= 0 {
			continue
		}
		st.frontierList[w] = u
		w++
		s := st.computeMu1(u)
		if !found || s > best ||
			(s == best && (st.aliveDeg[u] > bestDeg ||
				(st.aliveDeg[u] == bestDeg && u < bestV))) {
			best, bestV, bestDeg, found = s, u, st.aliveDeg[u], true
		}
	}
	st.frontierList = st.frontierList[:w]
	return bestV, found
}

// updateStage1Scores folds the newly absorbed member j into the cached
// mu_s1 scores of its frontier neighbours: each gains the candidate term
// overlap(v, j) / |N(j)| where N(·) is the alive neighbourhood.
func (st *runState) updateStage1Scores(j graph.Vertex) {
	if st.opts.Stage1Exact || st.opts.stage1Policy() == PolicyMaxDegree {
		return // these modes rescan; no cache to maintain
	}
	dj := st.aliveDeg[j]
	if dj <= 0 {
		return
	}
	g := st.g
	mark := st.nextMark()
	jn := g.Neighbors(j)
	je := g.IncidentEdges(j)
	for i, u := range jn {
		if !st.a.IsAssigned(je[i]) {
			st.markStamp[u] = mark
		}
	}
	djf := float64(dj)
	for i, v := range jn {
		if st.a.IsAssigned(je[i]) || st.isMember(v) {
			continue
		}
		overlap := st.countOverlap(v, mark)
		if score := float64(overlap) / djf; score > st.mu1Score[v] {
			st.mu1Score[v] = score
			st.mu1Heap.push(scoreEntry{score: score, deg: st.aliveDeg[v], v: v})
		}
	}
}

// countOverlap counts alive neighbours of v carrying the given mark,
// sampling v's adjacency row with a stride when Stage1NeighborCap bounds it
// (the count is scaled back up).
func (st *runState) countOverlap(v graph.Vertex, mark int32) int {
	g := st.g
	vn := g.Neighbors(v)
	ve := g.IncidentEdges(v)
	stride := 1
	if capN := st.opts.Stage1NeighborCap; capN > 0 && len(vn) > capN {
		stride = (len(vn) + capN - 1) / capN
	}
	cnt := 0
	for idx := 0; idx < len(vn); idx += stride {
		if st.a.IsAssigned(ve[idx]) {
			continue
		}
		if st.markStamp[vn[idx]] == mark {
			cnt++
		}
	}
	if stride > 1 {
		cnt *= stride
	}
	return cnt
}

// computeMu1 evaluates Eq. 7 for candidate v from scratch (exact mode):
// the maximum over alive member neighbours j of overlap(v,j)/|N(j)|.
func (st *runState) computeMu1(v graph.Vertex) float64 {
	g := st.g
	mark := st.nextMark()
	nbrs := g.Neighbors(v)
	eids := g.IncidentEdges(v)
	for i, u := range nbrs {
		if !st.a.IsAssigned(eids[i]) {
			st.markStamp[u] = mark
		}
	}
	best := 0.0
	examined := 0
	for i, j := range nbrs {
		if st.a.IsAssigned(eids[i]) || !st.isMember(j) {
			continue
		}
		if capM := st.opts.Stage1MemberCap; capM > 0 && examined >= capM {
			break
		}
		examined++
		dj := st.aliveDeg[j]
		if dj <= 0 {
			continue
		}
		common := st.overlapOf(j, mark)
		if score := float64(common) / float64(dj); score > best {
			best = score
		}
	}
	return best
}

// overlapOf counts alive neighbours of j carrying the mark (the stamped
// alive neighbourhood of the candidate), sampled under Stage1NeighborCap.
func (st *runState) overlapOf(j graph.Vertex, mark int32) int {
	return st.countOverlap(j, mark)
}
