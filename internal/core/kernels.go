package core

import (
	"math/bits"
	"sort"

	"github.com/graphpart/graphpart/internal/graph"
)

// Stage-I intersection kernels. Every kernel computes the same integer,
//
//	overlap(a, b) = |aliveN(a) ∩ aliveN(b)|,
//
// the count of common neighbours x with both edges (a,x) and (b,x) still
// unassigned, so kernel selection can never change the partitioning — only
// how fast the count is produced. Selection is a deterministic function of
// alive degrees and hub flags (DESIGN.md §13):
//
//   - word:   both endpoints are hubs and their alive-neighbourhood bitsets
//     are shorter than either alive row — AND the bitsets word-at-a-time and
//     popcount. O(n/64).
//   - bitset: one endpoint is a hub — scan the other's compacted alive row
//     testing bits in the hub's persistent bitset. O(min row).
//   - gallop: the candidate row is far longer than the marked row — iterate
//     the short alive row and binary-search each neighbour in the long
//     side's sorted CSR row, checking that edge's assignment bit. O(short ·
//     log deg(long)).
//   - scan:   the default — scan the candidate's compacted alive row testing
//     epoch stamps left by markAlive. O(row).
//   - sampled: the legacy Stage1NeighborCap stride-sampling path over full
//     CSR rows (see sampledOverlap); used for every intersection when the
//     cap is configured, preserving the capped mode's historical output
//     bit for bit.
type kernelKind uint8

const (
	kernelScan kernelKind = iota
	kernelBitset
	kernelWord
	kernelGallop
	kernelSampled
	numKernels
)

// gallopCutoff is the alive-degree ratio long/short above which binary
// searching the long side's CSR row beats scanning it: the gallop costs
// O(short·log(deg)) against the scan's O(long), and log2(deg) stays under
// ~16 for every graph this repository generates.
const gallopCutoff = 16

// hubMinDegree floors the hub threshold so low-degree vertices never pay
// bitset maintenance a plain scan beats. 32 keeps the memory bound intact:
// with floor f, total bitset bytes are ≤ mn/(4f), and the floor only binds
// while n < 64f, where mn/(4f) < 16m.
const hubMinDegree = 32

// hubDegreeThreshold returns the full-CSR degree at or above which a vertex
// gets a persistent alive-neighbourhood bitset. The n/64 term bounds total
// bitset memory: vertices of degree ≥ n/64 number at most 2m/(n/64), each
// bitset is n/64 words, so all bitsets together stay ≤ 2m words (16m bytes).
func hubDegreeThreshold(n int) int {
	t := n / 64
	if t < hubMinDegree {
		t = hubMinDegree
	}
	return t
}

// initHubBitsets allocates and fills the persistent alive-neighbourhood
// bitset of every hub (degree ≥ hubDegreeThreshold). All edges are alive at
// construction, so bits mirror the CSR rows; killEdge keeps them current.
func (st *runState) initHubBitsets() {
	g := st.g
	n := g.NumVertices()
	st.hubThreshold = hubDegreeThreshold(n)
	st.hubWords = (n + 63) / 64
	st.hubBits = make([][]uint64, n)
	for v := 0; v < n; v++ {
		if g.Degree(graph.Vertex(v)) < st.hubThreshold {
			continue
		}
		w := make([]uint64, st.hubWords)
		for _, u := range g.Neighbors(graph.Vertex(v)) {
			w[u>>6] |= 1 << (uint(u) & 63)
		}
		st.hubBits[v] = w
	}
}

// killEdge retires an assigned edge from every Stage-I structure: the
// compacted alive rows of both endpoints and, for hub endpoints, the
// persistent neighbourhood bitsets.
//
//graphpart:hotpath test=TestHotPathAllocs_Stage1Kernels
func (st *runState) killEdge(e graph.EdgeID) {
	st.alive.remove(e)
	ed := st.alive.edges[e]
	if w := st.hubBits[ed.U]; w != nil {
		w[ed.V>>6] &^= 1 << (uint(ed.V) & 63)
	}
	if w := st.hubBits[ed.V]; w != nil {
		w[ed.U>>6] &^= 1 << (uint(ed.U) & 63)
	}
}

// markAlive stamps a's alive neighbourhood for the scan kernel and returns
// the mark, or 0 when a is a hub (its persistent bitset already answers
// membership and no stamping is needed).
//
//graphpart:hotpath test=TestHotPathAllocs_Stage1Kernels
func (st *runState) markAlive(a graph.Vertex) int32 {
	if st.hubBits[a] != nil {
		return 0
	}
	mark := st.nextMark()
	an, _ := st.alive.row(a)
	for _, u := range an {
		st.markStamp[u] = mark
	}
	return mark
}

// overlapAlive dispatches the cheapest exact kernel for overlap(a, b).
// Precondition: markAlive(a) was called with the returned mark (hubs need no
// marks). The function only reads shared state, so concurrent calls for
// distinct b are safe while no absorption is in flight.
//
//graphpart:hotpath test=TestHotPathAllocs_Stage1Kernels
func (st *runState) overlapAlive(a, b graph.Vertex, mark int32) (int, kernelKind) {
	da, db := int(st.alive.n[a]), int(st.alive.n[b])
	wa, wb := st.hubBits[a], st.hubBits[b]
	if wa != nil && wb != nil && st.hubWords < da && st.hubWords < db {
		return overlapWords(wa, wb), kernelWord
	}
	if wb != nil && da < db {
		return st.scanRowBits(a, wb), kernelBitset
	}
	if wa != nil {
		if db > da*gallopCutoff {
			return st.gallopRows(a, b), kernelGallop
		}
		return st.scanRowBits(b, wa), kernelBitset
	}
	if db > da*gallopCutoff {
		return st.gallopRows(a, b), kernelGallop
	}
	return st.scanRowStamp(b, mark), kernelScan
}

// overlapWords ANDs two alive-neighbourhood bitsets word-at-a-time.
func overlapWords(wa, wb []uint64) int {
	cnt := 0
	for i, w := range wa {
		cnt += bits.OnesCount64(w & wb[i])
	}
	return cnt
}

// scanRowBits counts alive neighbours of x present in the hub bitset w.
func (st *runState) scanRowBits(x graph.Vertex, w []uint64) int {
	xn, _ := st.alive.row(x)
	cnt := 0
	for _, u := range xn {
		cnt += int(w[u>>6] >> (uint(u) & 63) & 1)
	}
	return cnt
}

// scanRowStamp counts alive neighbours of x carrying the given mark.
func (st *runState) scanRowStamp(x graph.Vertex, mark int32) int {
	xn, _ := st.alive.row(x)
	cnt := 0
	for _, u := range xn {
		if st.markStamp[u] == mark {
			cnt++
		}
	}
	return cnt
}

// gallopRows iterates the (short) alive row of a, binary-searching each
// neighbour in b's sorted full CSR row and testing that edge's assignment
// bit — overlap without touching b's long row or any marks.
func (st *runState) gallopRows(a, b graph.Vertex) int {
	g := st.g
	an, _ := st.alive.row(a)
	bn := g.Neighbors(b)
	be := g.IncidentEdges(b)
	cnt := 0
	for _, x := range an {
		i := sort.Search(len(bn), func(i int) bool { return bn[i] >= x })
		if i < len(bn) && bn[i] == x && !st.a.IsAssigned(be[i]) {
			cnt++
		}
	}
	return cnt
}

// sampledOverlap is the one home of the Stage1NeighborCap stride-sampling
// arithmetic, preserved bit for bit from the original countOverlap: x's full
// CSR row is scanned with stride ceil(len/cap) when len exceeds the cap
// (len == cap scans everything with stride 1; len == cap+1 flips to stride
// 2), assigned edges at sampled indices are skipped, marked alive
// neighbours are counted, and the count is scaled back up by the stride.
// The scaled count intentionally over- or under-shoots the true overlap —
// it is a documented fidelity/speed trade, which is why capped runs use
// this helper for every intersection instead of the exact kernels.
//
//graphpart:hotpath test=TestHotPathAllocs_Stage1Kernels
func (st *runState) sampledOverlap(x graph.Vertex, mark int32) int {
	g := st.g
	xn := g.Neighbors(x)
	xe := g.IncidentEdges(x)
	stride := 1
	if capN := st.opts.Stage1NeighborCap; capN > 0 && len(xn) > capN {
		stride = (len(xn) + capN - 1) / capN
	}
	cnt := 0
	for idx := 0; idx < len(xn); idx += stride {
		if st.a.IsAssigned(xe[idx]) {
			continue
		}
		if st.markStamp[xn[idx]] == mark {
			cnt++
		}
	}
	if stride > 1 {
		cnt *= stride
	}
	return cnt
}
