package core

import (
	"math"

	"github.com/graphpart/graphpart/internal/graph"
)

// selectStage2 picks the Stage-II optimal vertex: the frontier candidate
// maximising mu_s2 = 1 - 1/(1+ΔM) (Eq. 9). mu_s2 is monotone in ΔM, and ΔM
// is monotone in the post-absorption modularity
//
//	M'(P_k) = (E + cin(v)) / (Eout - cin(v) + cout(v)),
//
// so maximising M' is equivalent and cheaper. For fixed cin, M' is strictly
// decreasing in cout, so the per-cin minimum-cout candidate dominates its
// bucket; the scan over cin buckets (descending, so ties resolve toward the
// better-connected candidate) therefore finds the exact argmax without
// touching every frontier vertex.
func (st *runState) selectStage2() (graph.Vertex, bool) {
	if !st.bucketsLive {
		st.rebuildBuckets()
	}
	bestScore := math.Inf(-1)
	var bestV graph.Vertex
	found := false
	highest := int32(0) // highest non-empty bucket seen; shrinks maxCin
	for c := st.maxCin; c >= 1; c-- {
		if int(c) >= len(st.buckets) {
			continue
		}
		if len(st.buckets[c]) > 0 && highest == 0 {
			highest = c
		}
		h := &st.buckets[c]
		var cand coutEntry
		okCand := false
		for {
			e, ok := h.peek()
			if !ok {
				break
			}
			if st.validBucketEntry(e, c) {
				cand, okCand = e, true
				break
			}
			_, _ = h.pop() // stale entry: discard permanently
		}
		if !okCand {
			continue
		}
		score := mPrime(st.ein, st.eout, int64(c), int64(cand.cout))
		if score > bestScore {
			bestScore, bestV, found = score, cand.v, true
			if math.IsInf(score, 1) {
				// Absorbing this vertex removes every external
				// edge; nothing can beat it.
				break
			}
		}
	}
	if highest < st.maxCin {
		st.maxCin = highest
	}
	return bestV, found
}

// mPrime returns the modularity the partition would have after absorbing a
// candidate with the given cin/cout, or +Inf when no external edges would
// remain.
func mPrime(ein, eout, cin, cout int64) float64 {
	denom := eout - cin + cout
	if denom <= 0 {
		return math.Inf(1)
	}
	return float64(ein+cin) / float64(denom)
}

// MuS2 exposes the paper's Eq. 9 value for a candidate, given the current
// partition state; used by tests to cross-check selectStage2 against a
// brute-force argmax of the published formula.
func MuS2(ein, eout, cin, cout int64) float64 {
	if eout <= 0 {
		// M undefined (no external edges): absorbing anything can only
		// help; treat the gain as maximal.
		return 1
	}
	mAfter := mPrime(ein, eout, cin, cout)
	if math.IsInf(mAfter, 1) {
		return 1
	}
	deltaM := mAfter - float64(ein)/float64(eout)
	return 1 - 1/(1+deltaM)
}
