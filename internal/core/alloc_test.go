package core

import (
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
)

// TestHotPathAllocs_Stage1Kernels is the cross-check named by the
// //graphpart:hotpath annotations on killEdge, markAlive, overlapAlive and
// sampledOverlap: one scoring round — mark a neighbourhood, run the scan,
// bitset and word kernels plus the capped sampling path, retire an edge —
// allocates nothing. All kernel state (stamps, bitsets, compacted rows) is
// preallocated by newRunState.
func TestHotPathAllocs_Stage1Kernels(t *testing.T) {
	g := hubbyGraph(17, 2000)
	a := partition.MustNew(g.NumEdges(), 4)
	st := newRunState(g, a, Options{Stage1NeighborCap: 64})
	hub0, hub1 := graph.Vertex(0), graph.Vertex(1)
	bulk0, bulk1 := graph.Vertex(20), graph.Vertex(21)
	next := 0
	total := g.NumEdges()
	if allocs := testing.AllocsPerRun(200, func() {
		mark := st.markAlive(bulk0)
		_, _ = st.overlapAlive(bulk0, bulk1, mark) // stamp scan
		_, _ = st.overlapAlive(bulk0, hub0, mark)  // hub bitset
		_, _ = st.overlapAlive(hub0, hub1, 0)      // word AND + popcount
		_ = st.sampledOverlap(bulk0, mark)         // capped stride sampling
		if next < total {
			st.killEdge(graph.EdgeID(next)) // a fresh edge each run
			next++
		}
	}); allocs != 0 {
		t.Fatalf("stage-I kernels allocate %.1f times per scoring round", allocs)
	}
}
