package core

import (
	"math"
	"math/bits"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
)

// runLocalInstrumented runs the TLP loop with a hook invoked before every
// stage-II selection, comparing the bucket argmax against a brute-force scan
// of the frontier with the published formula. It returns the number of
// selections where the two disagreed on the achieved score.
func runLocalInstrumentedStage2Check(g *graph.Graph, p int, opts Options) (mismatches int, err error) {
	a, err := partition.New(g.NumEdges(), p)
	if err != nil {
		return 0, err
	}
	m := g.NumEdges()
	if m == 0 {
		return 0, nil
	}
	capC := partition.Capacity(m, p)
	st := newRunState(g, a, opts)
	assigned := 0
	for k := 0; k < p && assigned < m; k++ {
		st.beginRound()
		seed, ok := st.pickSeed()
		if !ok {
			break
		}
		n, full := st.absorb(seed, k, capC)
		assigned += n
		if !full {
			continue
		}
		for int(st.ein) < capC && assigned < m {
			if st.eout == 0 {
				reseed, ok := st.pickSeed()
				if !ok {
					break
				}
				n, full := st.absorb(reseed, k, capC)
				assigned += n
				if !full {
					break
				}
				continue
			}
			// Compare bucket selection with brute force.
			fast, okFast := st.selectStage2()
			brute, okBrute := st.bruteForceStage2()
			if okFast != okBrute {
				mismatches++
			} else if okFast {
				fs := st.candidateScore(fast)
				bs := st.candidateScore(brute)
				if math.Abs(fs-bs) > 1e-9 && !(math.IsInf(fs, 1) && math.IsInf(bs, 1)) {
					mismatches++
				}
			}
			if !okFast {
				break
			}
			n, full := st.absorb(fast, k, capC)
			assigned += n
			if !full {
				break
			}
		}
	}
	return mismatches, nil
}

// bruteForceStage2 scans the whole frontier computing M' per candidate.
func (st *runState) bruteForceStage2() (graph.Vertex, bool) {
	best := math.Inf(-1)
	var bestV graph.Vertex
	found := false
	for _, u := range st.frontierList {
		if !st.inFrontier(u) || st.isMember(u) || st.aliveDeg[u] <= 0 {
			continue
		}
		s := st.candidateScore(u)
		if s > best {
			best, bestV, found = s, u, true
		}
	}
	return bestV, found
}

// candidateScore returns M' for frontier candidate u, recomputing cin from
// scratch so the test does not trust the incremental counters.
func (st *runState) candidateScore(u graph.Vertex) float64 {
	g := st.g
	var cin int64
	var alive int64
	nbrs := g.Neighbors(u)
	eids := g.IncidentEdges(u)
	for i, w := range nbrs {
		if st.a.IsAssigned(eids[i]) {
			continue
		}
		alive++
		if st.isMember(w) {
			cin++
		}
	}
	return mPrime(st.ein, st.eout, cin, alive-cin)
}

// recomputeInvariants recomputes (ein, eout, per-vertex cin) from scratch for
// the current round; tests compare these against the incremental state.
func (st *runState) recomputeInvariants(k int) (ein, eout int64, cinOK bool) {
	g := st.g
	cinOK = true
	for id := 0; id < g.NumEdges(); id++ {
		if got, ok := st.a.PartitionOf(graph.EdgeID(id)); ok && got == k {
			ein++
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		u := graph.Vertex(v)
		if st.isMember(u) {
			continue
		}
		var cin int64
		nbrs := g.Neighbors(u)
		eids := g.IncidentEdges(u)
		for i, w := range nbrs {
			if st.a.IsAssigned(eids[i]) {
				continue
			}
			if st.isMember(w) {
				cin++
			}
		}
		eout += cin
		if cin > 0 {
			if !st.inFrontier(u) || int64(st.cin[u]) != cin {
				cinOK = false
			}
		}
	}
	return ein, eout, cinOK
}

// aliveStructureOK verifies the stage-I kernel structures from scratch
// against the assignment: every compacted alive row holds exactly the
// unassigned incident edges of its vertex (each entry carrying the right
// neighbour, at the position the pos index claims, with no duplicates), the
// row length equals the incremental aliveDeg counter, and every hub bitset
// holds exactly the alive neighbourhood bit for bit.
func (st *runState) aliveStructureOK() bool {
	g := st.g
	for v := 0; v < g.NumVertices(); v++ {
		u := graph.Vertex(v)
		vn, ve := st.alive.row(u)
		if int32(len(vn)) != st.aliveDeg[u] {
			return false
		}
		seen := make(map[graph.EdgeID]bool, len(ve))
		for i, e := range ve {
			if st.a.IsAssigned(e) || seen[e] {
				return false
			}
			seen[e] = true
			ed := g.Edges()[e]
			var w graph.Vertex
			var side int
			switch u {
			case ed.U:
				w, side = ed.V, 0
			case ed.V:
				w, side = ed.U, 1
			default:
				return false
			}
			if vn[i] != w || int(st.alive.pos[2*int(e)+side]) != i {
				return false
			}
		}
		alive := 0
		for _, e := range g.IncidentEdges(u) {
			if !st.a.IsAssigned(e) {
				alive++
			}
		}
		if alive != len(ve) {
			return false
		}
		if hb := st.hubBits[u]; hb != nil {
			pc := 0
			for _, word := range hb {
				pc += bits.OnesCount64(word)
			}
			if pc != len(vn) {
				return false
			}
			for _, w := range vn {
				if hb[w>>6]&(1<<(uint(w)&63)) == 0 {
					return false
				}
			}
		}
	}
	return true
}

// mu1HeapBounded reports whether the lazy score heap respects the
// maybeCompactMu1Heap bound: stale entries never outnumber the frontier
// list by more than 2x (plus the 64-entry small-heap allowance).
func (st *runState) mu1HeapBounded() bool {
	return len(st.mu1Heap) <= 2*len(st.frontierList)+64
}

// runLocalInvariantCheck runs TLP verifying the incremental ein/eout/cin
// state against brute-force recomputation after every absorption — plus the
// stage-I kernel structures (compacted alive rows, hub bitsets) and the
// lazy-heap bound. Returns the number of steps where anything disagreed.
func runLocalInvariantCheck(g *graph.Graph, p int, opts Options) (bad int, err error) {
	a, err := partition.New(g.NumEdges(), p)
	if err != nil {
		return 0, err
	}
	m := g.NumEdges()
	if m == 0 {
		return 0, nil
	}
	capC := partition.Capacity(m, p)
	st := newRunState(g, a, opts)
	assigned := 0
	check := func(k int) {
		ein, eout, cinOK := st.recomputeInvariants(k)
		if ein != st.ein || eout != st.eout || !cinOK {
			bad++
		}
		if !st.aliveStructureOK() || !st.mu1HeapBounded() {
			bad++
		}
	}
	for k := 0; k < p && assigned < m; k++ {
		st.beginRound()
		seed, ok := st.pickSeed()
		if !ok {
			break
		}
		n, full := st.absorb(seed, k, capC)
		assigned += n
		if !full {
			continue
		}
		check(k)
		for int(st.ein) < capC && assigned < m {
			if st.eout == 0 {
				reseed, ok := st.pickSeed()
				if !ok {
					break
				}
				n, full := st.absorb(reseed, k, capC)
				assigned += n
				if !full {
					break
				}
				check(k)
				continue
			}
			var v graph.Vertex
			var okSel bool
			if st.ein <= st.eout {
				v, okSel = st.selectStage1()
			} else {
				v, okSel = st.selectStage2()
			}
			if !okSel {
				break
			}
			n, full := st.absorb(v, k, capC)
			assigned += n
			if !full {
				break
			}
			check(k)
		}
	}
	return bad, nil
}
