package core

import (
	"testing"

	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

func TestPolicyValidation(t *testing.T) {
	if _, err := New(Options{Stage1Policy: 99}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, pol := range []Stage1Policy{0, PolicyMuS1, PolicyMaxDegree} {
		if _, err := New(Options{Stage1Policy: pol}); err != nil {
			t.Fatalf("policy %d rejected: %v", pol, err)
		}
	}
}

func TestPolicyMaxDegreeValid(t *testing.T) {
	g := randomGraph(41, 300, 900)
	tlp := MustNew(Options{Seed: 43, Stage1Policy: PolicyMaxDegree})
	a, err := tlp.Partition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{}); err != nil {
		t.Fatalf("max-degree policy invalid: %v", err)
	}
}

func TestPolicyMaxDegreeDeterministic(t *testing.T) {
	g := randomGraph(42, 150, 450)
	opts := Options{Seed: 44, Stage1Policy: PolicyMaxDegree}
	a1, err := MustNew(opts).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := MustNew(opts).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.NumEdges(); id++ {
		k1, _ := a1.PartitionOf(int32(id))
		k2, _ := a2.PartitionOf(int32(id))
		if k1 != k2 {
			t.Fatal("max-degree policy not deterministic")
		}
	}
}

// TestPolicyAblationOnCommunities: on a community-structured graph the
// closeness term should matter — mu_s1 must not lose badly to max-degree.
// (This is the DESIGN.md §6 ablation; exact ordering is graph-dependent, so
// the test only rules out a blow-up.)
func TestPolicyAblationOnCommunities(t *testing.T) {
	g := gen.PlantedCommunities(gen.CommunityConfig{
		Vertices: 800, Communities: 16, TargetEdges: 8000, IntraFraction: 0.8,
	}, rng.New(45))
	rfOf := func(pol Stage1Policy) float64 {
		a, err := MustNew(Options{Seed: 46, Stage1Policy: pol}).Partition(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := partition.ReplicationFactor(g, a)
		if err != nil {
			t.Fatal(err)
		}
		return rf
	}
	mu := rfOf(PolicyMuS1)
	md := rfOf(PolicyMaxDegree)
	t.Logf("mu_s1 RF=%.3f, max-degree RF=%.3f", mu, md)
	if mu > 1.5*md {
		t.Fatalf("mu_s1 policy much worse than max-degree: %.3f vs %.3f", mu, md)
	}
}

// TestPolicyMaxDegreePicksHubs: the stage-I degree statistic must reflect
// the policy (hubs first).
func TestPolicyMaxDegreePicksHubs(t *testing.T) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 2000, TargetEdges: 10000, Exponent: 2.1}, rng.New(47))
	_, stats, err := MustNew(Options{Seed: 48, Stage1Policy: PolicyMaxDegree}).PartitionStats(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stage1Selections == 0 {
		t.Skip("no stage-I selections on this seed")
	}
	if stats.AvgDegreeStage1() <= g.AvgDegree() {
		t.Fatalf("max-degree stage I picked avg degree %.2f, graph average %.2f",
			stats.AvgDegreeStage1(), g.AvgDegree())
	}
}
