package core

import (
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
)

// Adversarial topologies: TLP must stay correct (complete, capacity-bounded)
// and sane on structures with no community signal at all.

func validTLP(t *testing.T, g *graph.Graph, p int) float64 {
	t.Helper()
	a, err := MustNew(Options{Seed: 7}).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{}); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	rf, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	return rf
}

func TestTLPOnStar(t *testing.T) {
	// Star: every edge shares the hub, so RF is dictated by the hub being
	// replicated in every partition: RF = (p + leaves)/(n).
	const leaves = 60
	b := graph.NewBuilder(leaves + 1)
	for i := 1; i <= leaves; i++ {
		_ = b.AddEdge(0, graph.Vertex(i))
	}
	g := b.Build()
	p := 4
	rf := validTLP(t, g, p)
	want := float64(p+leaves) / float64(leaves+1)
	if rf > want+1e-9 {
		t.Fatalf("star RF %.4f above the structural optimum %.4f", rf, want)
	}
}

func TestTLPOnRing(t *testing.T) {
	// Ring: optimal partitioning cuts exactly p vertices -> RF = (n+p)/n.
	const n = 120
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex((i+1)%n))
	}
	g := b.Build()
	p := 4
	rf := validTLP(t, g, p)
	optimal := float64(n+p) / float64(n)
	// Local growth on a ring is contiguous; allow a modest excess for the
	// random seeds landing inside earlier arcs.
	if rf > optimal*1.15 {
		t.Fatalf("ring RF %.4f too far above optimal %.4f", rf, optimal)
	}
}

func TestTLPOnCompleteGraph(t *testing.T) {
	// K_n has no structure to exploit; everything is correct but RF is
	// necessarily high. Just verify validity and the RF upper bound p.
	const n = 40
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			_ = b.AddEdge(graph.Vertex(i), graph.Vertex(j))
		}
	}
	g := b.Build()
	rf := validTLP(t, g, 5)
	if rf > 5 {
		t.Fatalf("K40 RF %.3f above p", rf)
	}
}

func TestTLPOnCompleteBipartite(t *testing.T) {
	// K_{a,b}: hubs on both sides; checks stage II's cin/cout arithmetic
	// under symmetric high multiplicity.
	const a, bb = 15, 25
	bld := graph.NewBuilder(a + bb)
	for i := 0; i < a; i++ {
		for j := 0; j < bb; j++ {
			_ = bld.AddEdge(graph.Vertex(i), graph.Vertex(a+j))
		}
	}
	g := bld.Build()
	rf := validTLP(t, g, 5)
	if rf < 1 || rf > 5 {
		t.Fatalf("K_{15,25} RF %.3f out of range", rf)
	}
}

func TestTLPOnGrid(t *testing.T) {
	// 2D grid: planar, uniform degree; local growth should produce compact
	// tiles with RF well under what random assignment gives (~3.5).
	const side = 24
	b := graph.NewBuilder(side * side)
	id := func(r, c int) graph.Vertex { return graph.Vertex(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				_ = b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < side {
				_ = b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g := b.Build()
	rf := validTLP(t, g, 6)
	if rf > 1.6 {
		t.Fatalf("grid RF %.3f; compact tiles should stay below ~1.6", rf)
	}
}

func TestTLPOnMatchingEdges(t *testing.T) {
	// Perfect matching: m disjoint edges; any balanced assignment has
	// RF = 1 exactly.
	const pairs = 50
	b := graph.NewBuilder(2 * pairs)
	for i := 0; i < pairs; i++ {
		_ = b.AddEdge(graph.Vertex(2*i), graph.Vertex(2*i+1))
	}
	g := b.Build()
	rf := validTLP(t, g, 5)
	if rf != 1 {
		t.Fatalf("matching RF %.4f, want exactly 1", rf)
	}
}

func TestTLPMorePartitionsThanEdges(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	a, err := MustNew(Options{Seed: 1}).Partition(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestTLPSelfConsistencyAcrossP(t *testing.T) {
	// RF must be non-decreasing in p on a fixed graph (more partitions
	// can only fragment more) — up to seed noise, so compare p=2 vs p=16.
	g := randomGraph(77, 400, 1200)
	rf2 := validTLP(t, g, 2)
	rf16 := validTLP(t, g, 16)
	if rf16 < rf2 {
		t.Fatalf("RF decreased with more partitions: p=2 %.3f vs p=16 %.3f", rf2, rf16)
	}
}
