package core

import (
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

// hubbyGraph builds a graph engineered to exercise every overlap kernel:
// three full hubs (degree ~n, far above hubDegreeThreshold), a band of
// mid-degree vertices (below the hub threshold but long enough to trigger
// galloping against short rows), and a low-degree bulk.
func hubbyGraph(seed uint64, n int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	// Hubs 0..2: adjacent to each other and to every bulk vertex.
	for h := 0; h < 3; h++ {
		for o := h + 1; o < 3; o++ {
			_ = b.AddEdge(graph.Vertex(h), graph.Vertex(o))
		}
		for v := 10; v < n; v++ {
			_ = b.AddEdge(graph.Vertex(h), graph.Vertex(v))
		}
	}
	// Mids 3..7: ~100 random bulk neighbours (stays below the 128 threshold).
	for mid := 3; mid < 8; mid++ {
		for t := 0; t < 100; t++ {
			_ = b.AddEdge(graph.Vertex(mid), graph.Vertex(10+r.Intn(n-10)))
		}
	}
	// Bulk: a sparse random background so small rows exist everywhere.
	for v := 10; v < n; v++ {
		for t := 0; t < 2; t++ {
			_ = b.AddEdge(graph.Vertex(v), graph.Vertex(10+r.Intn(n-10)))
		}
	}
	return b.Build()
}

// naiveOverlap is the reference the kernels must match exactly: mark x's
// alive neighbourhood from the full CSR row, then count y's alive
// neighbours in the mark set.
func naiveOverlap(g *graph.Graph, a *partition.Assignment, x, y graph.Vertex) int {
	marked := make(map[graph.Vertex]bool)
	xn, xe := g.Neighbors(x), g.IncidentEdges(x)
	for i, u := range xn {
		if !a.IsAssigned(xe[i]) {
			marked[u] = true
		}
	}
	cnt := 0
	yn, ye := g.Neighbors(y), g.IncidentEdges(y)
	for i, u := range yn {
		if !a.IsAssigned(ye[i]) && marked[u] {
			cnt++
		}
	}
	return cnt
}

// killRandomEdges assigns a fraction of the edges (retiring them from the
// stage-I structures the way absorb does), so the kernels run against
// partially dead adjacency like mid-round.
func killRandomEdges(st *runState, r *rng.RNG, frac float64) {
	g := st.g
	for e := 0; e < g.NumEdges(); e++ {
		eid := graph.EdgeID(e)
		if st.a.IsAssigned(eid) || r.Float64() >= frac {
			continue
		}
		ed := g.Edges()[eid]
		st.a.Assign(eid, 0)
		st.aliveDeg[ed.U]--
		st.aliveDeg[ed.V]--
		st.killEdge(eid)
	}
}

// drainVertex kills alive edges of v until at most keep remain, which pulls
// a hub's alive degree far below a mid vertex's and forces the hub-side
// gallop branch.
func drainVertex(st *runState, v graph.Vertex, keep int) {
	for int(st.alive.n[v]) > keep {
		_, ve := st.alive.row(v)
		eid := ve[0]
		ed := st.g.Edges()[eid]
		st.a.Assign(eid, 0)
		st.aliveDeg[ed.U]--
		st.aliveDeg[ed.V]--
		st.killEdge(eid)
	}
}

// TestOverlapKernelsDifferential fuzzes every kernel against the naive
// mark-and-scan reference: on a hubby graph with a random fraction of edges
// killed, overlapAlive must return the exact same count as the reference
// for every pair, whichever kernel the dispatch picks — and the dispatch
// must actually reach all four exact kernels.
func TestOverlapKernelsDifferential(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		g := hubbyGraph(seed, 600)
		a, err := partition.New(g.NumEdges(), 4)
		if err != nil {
			t.Fatal(err)
		}
		st := newRunState(g, a, Options{Seed: seed})
		r := rng.New(seed ^ 0x9e3779b97f4a7c15)
		killRandomEdges(st, r, 0.4)
		drainVertex(st, 2, 3) // hub 2 keeps its bitset but a tiny alive row
		if !st.aliveStructureOK() {
			t.Fatalf("seed %d: alive structures inconsistent after kills", seed)
		}

		var kindSeen [numKernels]int
		checkPair := func(x, y graph.Vertex) {
			mark := st.markAlive(x)
			got, kind := st.overlapAlive(x, y, mark)
			kindSeen[kind]++
			if want := naiveOverlap(g, st.a, x, y); got != want {
				t.Fatalf("seed %d: overlap(%d,%d) kernel %d = %d, reference = %d",
					seed, x, y, kind, got, want)
			}
		}
		// Directed pair sweep over the engineered strata plus random pairs.
		for x := 0; x < 8; x++ {
			for y := 0; y < 8; y++ {
				if x != y {
					checkPair(graph.Vertex(x), graph.Vertex(y))
				}
			}
		}
		n := g.NumVertices()
		for i := 0; i < 3000; i++ {
			x := graph.Vertex(r.Intn(n))
			y := graph.Vertex(r.Intn(n))
			if x == y {
				continue
			}
			checkPair(x, y)
		}
		for k, kind := range []kernelKind{kernelScan, kernelBitset, kernelWord, kernelGallop} {
			if kindSeen[kind] == 0 {
				t.Errorf("seed %d: kernel %d never dispatched (index %d)", seed, kind, k)
			}
		}
	}
}

// TestStage1KernelEngagement runs full partitionings and checks the kernel
// mix reported in Stats: a default run on a hub-heavy graph must exercise
// the scan, bitset and word kernels (and no sampled evaluations), while a
// Stage1NeighborCap run must route every intersection through the sampled
// path and none through the exact kernels.
func TestStage1KernelEngagement(t *testing.T) {
	g := hubbyGraph(3, 600)
	_, stats, err := MustNew(Options{Seed: 42}).PartitionStats(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := stats.Stage1Kernels
	if k.Scan == 0 || k.Bitset == 0 || k.Word == 0 {
		t.Errorf("default run kernel counts %+v: want scan, bitset and word all engaged", k)
	}
	if k.Sampled != 0 {
		t.Errorf("default run reported %d sampled evaluations, want 0", k.Sampled)
	}

	_, stats, err = MustNew(Options{Seed: 42, Stage1NeighborCap: 8}).PartitionStats(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	k = stats.Stage1Kernels
	if k.Sampled == 0 {
		t.Errorf("capped run reported no sampled evaluations: %+v", k)
	}
	if k.Scan != 0 || k.Bitset != 0 || k.Word != 0 || k.Gallop != 0 {
		t.Errorf("capped run leaked exact kernel evaluations: %+v", k)
	}
}

// TestSampledOverlapStride pins the Stage1NeighborCap stride arithmetic at
// the boundary the cap documents: a row of exactly cap neighbours scans
// everything with stride 1, one more neighbour flips to stride 2 and the
// count scales by the stride (the documented over/undershoot).
func TestSampledOverlapStride(t *testing.T) {
	const capN = 8
	star := func(deg int) (*runState, int32) {
		b := graph.NewBuilder(deg + 1)
		for v := 1; v <= deg; v++ {
			_ = b.AddEdge(0, graph.Vertex(v))
		}
		g := b.Build()
		a, err := partition.New(g.NumEdges(), 2)
		if err != nil {
			t.Fatal(err)
		}
		st := newRunState(g, a, Options{Seed: 1, Stage1NeighborCap: capN})
		mark := st.nextMark()
		for v := 1; v <= deg; v++ {
			st.markStamp[v] = mark
		}
		return st, mark
	}

	// len == cap: stride 1, exact count.
	st, mark := star(capN)
	if got := st.sampledOverlap(0, mark); got != capN {
		t.Errorf("len==cap: sampledOverlap = %d, want %d", got, capN)
	}

	// len == cap+1: stride ceil(9/8) = 2 samples indices 0,2,4,6,8 and
	// scales the 5 hits back up to 10 — the pinned overshoot.
	st, mark = star(capN + 1)
	if got := st.sampledOverlap(0, mark); got != 10 {
		t.Errorf("len==cap+1: sampledOverlap = %d, want 10", got)
	}

	// Assigned edges at sampled indices are skipped before scaling: killing
	// the edge at CSR index 0 drops one sampled hit, so the scaled count
	// loses a whole stride.
	eid := st.g.IncidentEdges(0)[0]
	st.a.Assign(eid, 0)
	if got := st.sampledOverlap(0, mark); got != 8 {
		t.Errorf("len==cap+1 with index 0 dead: sampledOverlap = %d, want 8", got)
	}
}

// TestMu1HeapStaysBounded is the regression test for the lazy-heap
// compaction: across a full invariant-checked run on a hub-heavy graph the
// heap must never exceed 2x the frontier list plus the small-heap
// allowance (runLocalInvariantCheck folds mu1HeapBounded into its checks).
func TestMu1HeapStaysBounded(t *testing.T) {
	g := hubbyGraph(9, 800)
	bad, err := runLocalInvariantCheck(g, 6, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("invariant check found %d bad steps (incl. heap bound / alive structures)", bad)
	}
}
