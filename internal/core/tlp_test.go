package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

// randomGraph builds a connected-ish random test graph.
func randomGraph(seed uint64, n, extra int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex(r.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

func completeAndBalanced(t *testing.T, g *graph.Graph, a *partition.Assignment, slack float64) {
	t.Helper()
	if err := partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: slack}); err != nil {
		t.Fatalf("invalid partitioning: %v", err)
	}
}

func TestTLPBasicComplete(t *testing.T) {
	g := randomGraph(1, 200, 600)
	tlp := MustNew(Options{Seed: 7})
	a, err := tlp.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	completeAndBalanced(t, g, a, 0)
	rf, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if rf < 1 || rf > 4 {
		t.Fatalf("RF %v out of bounds", rf)
	}
}

func TestTLPDeterministic(t *testing.T) {
	g := randomGraph(2, 150, 400)
	tlp := MustNew(Options{Seed: 99})
	a1, err := tlp.Partition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := tlp.Partition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.NumEdges(); id++ {
		k1, _ := a1.PartitionOf(graph.EdgeID(id))
		k2, _ := a2.PartitionOf(graph.EdgeID(id))
		if k1 != k2 {
			t.Fatalf("edge %d: %d vs %d — run not deterministic", id, k1, k2)
		}
	}
}

func TestTLPSeedSensitivity(t *testing.T) {
	g := randomGraph(3, 150, 400)
	a1, err := MustNew(Options{Seed: 1}).Partition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := MustNew(Options{Seed: 2}).Partition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for id := 0; id < g.NumEdges(); id++ {
		k1, _ := a1.PartitionOf(graph.EdgeID(id))
		k2, _ := a2.PartitionOf(graph.EdgeID(id))
		if k1 != k2 {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical assignments (suspicious)")
	}
}

func TestTLPTrivialCases(t *testing.T) {
	// Empty graph.
	g := graph.NewBuilder(0).Build()
	a, err := MustNew(Options{}).Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != 0 {
		t.Fatal("empty graph should give empty assignment")
	}
	// Single edge.
	g = graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1}})
	a, err = MustNew(Options{}).Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	completeAndBalanced(t, g, a, 0)
	// p = 1: everything in partition 0, RF exactly (active vertices)/n.
	g = randomGraph(4, 50, 100)
	a, err = MustNew(Options{Seed: 5}).Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	completeAndBalanced(t, g, a, 0)
	rf, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if rf > 1 {
		t.Fatalf("p=1 RF %v, want <= 1", rf)
	}
}

func TestTLPRejectsBadInput(t *testing.T) {
	g := randomGraph(5, 10, 10)
	if _, err := MustNew(Options{}).Partition(g, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := MustNew(Options{}).Partition(nil, 2); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := New(Options{CapacitySlack: 0.5}); err == nil {
		t.Fatal("slack < 1 accepted")
	}
	if _, err := New(Options{Stage1MemberCap: -1}); err == nil {
		t.Fatal("negative cap accepted")
	}
}

func TestTLPDisconnectedReseeds(t *testing.T) {
	// 20 disjoint triangles, p=2: each round must reseed many times.
	b := graph.NewBuilder(60)
	for i := 0; i < 20; i++ {
		v := graph.Vertex(3 * i)
		_ = b.AddEdge(v, v+1)
		_ = b.AddEdge(v+1, v+2)
		_ = b.AddEdge(v, v+2)
	}
	g := b.Build()
	tlp := MustNew(Options{Seed: 11})
	a, stats, err := tlp.PartitionStats(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	completeAndBalanced(t, g, a, 0)
	if stats.Reseeds == 0 {
		t.Fatal("disconnected graph should trigger reseeds")
	}
	// Perfect partitioning possible: RF should be exactly 1 (whole
	// triangles fit; capacity 30 divisible by 3).
	rf, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 1 {
		t.Logf("disconnected triangles RF=%v (1.0 is ideal)", rf)
	}
}

func TestTLPLiteralBreakStillComplete(t *testing.T) {
	b := graph.NewBuilder(30)
	for i := 0; i < 10; i++ {
		v := graph.Vertex(3 * i)
		_ = b.AddEdge(v, v+1)
		_ = b.AddEdge(v+1, v+2)
		_ = b.AddEdge(v, v+2)
	}
	g := b.Build()
	tlp := MustNew(Options{Seed: 3, LiteralBreak: true})
	a, stats, err := tlp.PartitionStats(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reseeds != 0 {
		t.Fatal("LiteralBreak must not reseed")
	}
	// The sweep must have completed the assignment.
	if err := partition.Validate(g, a, partition.ValidateOptions{}); err != nil {
		t.Fatalf("literal-break result invalid: %v", err)
	}
	if stats.SweptEdges == 0 {
		t.Log("no swept edges (rounds covered everything); acceptable but unusual for 10 components over 3 partitions")
	}
}

func TestTLPCapacityRespected(t *testing.T) {
	g := randomGraph(6, 300, 900)
	for _, p := range []int{2, 3, 7, 10} {
		a, err := MustNew(Options{Seed: 13}).Partition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		capC := partition.Capacity(g.NumEdges(), p)
		for k := 0; k < p; k++ {
			if a.Load(k) > capC {
				t.Fatalf("p=%d partition %d load %d > C=%d", p, k, a.Load(k), capC)
			}
		}
	}
}

func TestTLPCapacitySlack(t *testing.T) {
	g := randomGraph(7, 200, 500)
	tlp := MustNew(Options{Seed: 17, CapacitySlack: 1.5})
	a, err := tlp.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	completeAndBalanced(t, g, a, 1.5)
}

func TestTLPStatsConsistency(t *testing.T) {
	g := randomGraph(8, 250, 800)
	tlp := MustNew(Options{Seed: 19})
	_, stats, err := tlp.PartitionStats(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	if stats.Stage1Selections+stats.Stage2Selections == 0 {
		t.Fatal("no selections recorded")
	}
	if stats.Stage1DegreeSum < int64(stats.Stage1Selections) {
		t.Fatal("stage-1 degree sum below selection count (degrees are >= 1)")
	}
	if stats.AvgDegreeStage1() < 0 || stats.AvgDegreeStage2() < 0 {
		t.Fatal("negative average degree")
	}
}

// TestTableVIShape reproduces the qualitative finding of Table VI: on a
// power-law graph, Stage I selects much higher-degree vertices than Stage II.
func TestTableVIShape(t *testing.T) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 3000, TargetEdges: 15000, Exponent: 2.1}, rng.New(23))
	tlp := MustNew(Options{Seed: 29})
	_, stats, err := tlp.PartitionStats(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stage1Selections == 0 || stats.Stage2Selections == 0 {
		t.Skipf("degenerate stage split: %d/%d", stats.Stage1Selections, stats.Stage2Selections)
	}
	d1, d2 := stats.AvgDegreeStage1(), stats.AvgDegreeStage2()
	if d1 <= d2 {
		t.Fatalf("stage I avg degree %.2f not above stage II %.2f (Table VI shape)", d1, d2)
	}
}

func TestTLPRBounds(t *testing.T) {
	if _, err := NewTLPR(-0.1, Options{}); err == nil {
		t.Fatal("R=-0.1 accepted")
	}
	if _, err := NewTLPR(1.1, Options{}); err == nil {
		t.Fatal("R=1.1 accepted")
	}
	if _, err := NewTLPR(math.NaN(), Options{}); err == nil {
		t.Fatal("R=NaN accepted")
	}
	for _, r := range []float64{0, 0.5, 1} {
		tl, err := NewTLPR(r, Options{})
		if err != nil {
			t.Fatalf("R=%v rejected: %v", r, err)
		}
		if tl.R() != r {
			t.Fatalf("R() = %v, want %v", tl.R(), r)
		}
		if tl.Name() == "" {
			t.Fatal("empty name")
		}
	}
}

func TestTLPRPureStages(t *testing.T) {
	g := randomGraph(9, 300, 900)
	// R=0: never stage I.
	_, stats, err := MustNewTLPR(0, Options{Seed: 31}).PartitionStats(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stage1Selections != 0 {
		t.Fatalf("R=0 made %d stage-I selections", stats.Stage1Selections)
	}
	// R=1: never stage II.
	_, stats, err = MustNewTLPR(1, Options{Seed: 31}).PartitionStats(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stage2Selections != 0 {
		t.Fatalf("R=1 made %d stage-II selections", stats.Stage2Selections)
	}
}

func TestTLPRComplete(t *testing.T) {
	g := randomGraph(10, 200, 600)
	for _, r := range []float64{0, 0.3, 0.7, 1} {
		a, err := MustNewTLPR(r, Options{Seed: 37}).Partition(g, 5)
		if err != nil {
			t.Fatalf("R=%v: %v", r, err)
		}
		completeAndBalanced(t, g, a, 0)
	}
}

// TestStage2BucketsMatchBruteForce verifies that the bucketed Stage-II
// selection achieves exactly the same score as a brute-force scan of the
// published formula, at every step, across random graphs.
func TestStage2BucketsMatchBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := randomGraph(seed+100, 80, 240)
		mismatches, err := runLocalInstrumentedStage2Check(g, 4, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if mismatches != 0 {
			t.Fatalf("seed %d: %d stage-II selections diverged from brute force", seed, mismatches)
		}
	}
}

// TestIncrementalInvariants verifies the incrementally-maintained ein, eout
// and cin counters against from-scratch recomputation after every step.
func TestIncrementalInvariants(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := randomGraph(seed+200, 60, 180)
		bad, err := runLocalInvariantCheck(g, 3, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if bad != 0 {
			t.Fatalf("seed %d: %d steps with broken invariants", seed, bad)
		}
	}
}

func TestMuS2MonotoneInMPrime(t *testing.T) {
	// The implementation orders candidates by M' rather than mu_s2; check
	// the two orderings agree whenever 1+ΔM > 0 (the domain where the
	// paper's formula is monotone).
	r := rng.New(41)
	for i := 0; i < 2000; i++ {
		ein := int64(r.Intn(100))
		eout := int64(1 + r.Intn(100))
		cin1, cout1 := int64(1+r.Intn(20)), int64(r.Intn(50))
		cin2, cout2 := int64(1+r.Intn(20)), int64(r.Intn(50))
		m1, m2 := mPrime(ein, eout, cin1, cout1), mPrime(ein, eout, cin2, cout2)
		mu1, mu2 := MuS2(ein, eout, cin1, cout1), MuS2(ein, eout, cin2, cout2)
		base := float64(ein) / float64(eout)
		if m1-base <= -1 || m2-base <= -1 {
			continue // outside the monotone domain
		}
		if (m1 > m2 && mu1 < mu2-1e-12) || (m2 > m1 && mu2 < mu1-1e-12) {
			t.Fatalf("ordering mismatch: M'=%v,%v mu=%v,%v", m1, m2, mu1, mu2)
		}
	}
}

func TestMuS2Extremes(t *testing.T) {
	if MuS2(5, 0, 1, 1) != 1 {
		t.Fatal("eout=0 should give maximal mu_s2")
	}
	if MuS2(5, 5, 5, 0) != 1 {
		t.Fatal("removing all external edges should give maximal mu_s2")
	}
	// Zero gain: M' = (4+1)/(4-1+2) = 1 = M -> deltaM = 0 -> mu = 0.
	if mu := MuS2(4, 4, 1, 2); math.Abs(mu) > 1e-12 {
		t.Fatalf("neutral absorption mu = %v, want 0", mu)
	}
}

// Property: TLP always yields a complete, capacity-respecting partitioning
// for arbitrary random graphs and partition counts.
func TestTLPValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(120)
		g := randomGraph(seed, n, r.Intn(4*n))
		p := 1 + r.Intn(8)
		a, err := MustNew(Options{Seed: seed}).Partition(g, p)
		if err != nil {
			return false
		}
		return partition.Validate(g, a, partition.ValidateOptions{}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: TLP_R valid for random R.
func TestTLPRValidProperty(t *testing.T) {
	f := func(seed uint64, rraw uint8) bool {
		rr := float64(rraw%11) / 10
		r := rng.New(seed)
		n := 10 + r.Intn(100)
		g := randomGraph(seed, n, r.Intn(3*n))
		p := 1 + r.Intn(6)
		a, err := MustNewTLPR(rr, Options{Seed: seed}).Partition(g, p)
		if err != nil {
			return false
		}
		return partition.Validate(g, a, partition.ValidateOptions{}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStage1ExactMatchesQuality(t *testing.T) {
	// Exact and cached stage-I evaluation may pick different vertices,
	// but both must produce valid partitionings with comparable RF.
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 1000, TargetEdges: 5000, Exponent: 2.1}, rng.New(43))
	aCached, err := MustNew(Options{Seed: 47}).Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	aExact, err := MustNew(Options{Seed: 47, Stage1Exact: true}).Partition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	rfCached, err := partition.ReplicationFactor(g, aCached)
	if err != nil {
		t.Fatal(err)
	}
	rfExact, err := partition.ReplicationFactor(g, aExact)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rfCached-rfExact) > 0.5*rfExact {
		t.Fatalf("cached RF %.3f wildly differs from exact RF %.3f", rfCached, rfExact)
	}
}

func TestStage1CapsStillValid(t *testing.T) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 800, TargetEdges: 4000, Exponent: 2.0}, rng.New(51))
	tlp := MustNew(Options{Seed: 53, Stage1MemberCap: 4, Stage1NeighborCap: 8})
	a, err := tlp.Partition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	completeAndBalanced(t, g, a, 0)
}

// TestTLPBeatsRandomRF: the headline claim in miniature — TLP's RF should be
// clearly better than random edge assignment on a community-structured graph.
func TestTLPBeatsRandomRF(t *testing.T) {
	g := gen.PlantedCommunities(gen.CommunityConfig{
		Vertices: 800, Communities: 16, TargetEdges: 8000, IntraFraction: 0.8,
	}, rng.New(57))
	p := 8
	a, err := MustNew(Options{Seed: 61}).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	rfTLP, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	// Random baseline.
	rand := rng.New(63)
	ar := partition.MustNew(g.NumEdges(), p)
	for id := 0; id < g.NumEdges(); id++ {
		ar.Assign(graph.EdgeID(id), rand.Intn(p))
	}
	rfRand, err := partition.ReplicationFactor(g, ar)
	if err != nil {
		t.Fatal(err)
	}
	if rfTLP >= rfRand {
		t.Fatalf("TLP RF %.3f not below random RF %.3f", rfTLP, rfRand)
	}
	if rfTLP > 0.7*rfRand {
		t.Logf("TLP RF %.3f vs random %.3f — less improvement than expected", rfTLP, rfRand)
	}
}

func BenchmarkTLPMedium(b *testing.B) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 10000, TargetEdges: 50000, Exponent: 2.1}, rng.New(71))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MustNew(Options{Seed: uint64(i)}).Partition(g, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTLPRMedium(b *testing.B) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 10000, TargetEdges: 50000, Exponent: 2.1}, rng.New(73))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MustNewTLPR(0.5, Options{Seed: uint64(i)}).Partition(g, 10); err != nil {
			b.Fatal(err)
		}
	}
}
