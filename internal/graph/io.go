package graph

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// edgeListScanBuf is the initial scanner buffer; it grows on demand up to
// maxEdgeListLineBytes, so typical "u v" lines never reallocate.
const edgeListScanBuf = 64 * 1024

// maxEdgeListLineBytes caps a single edge-list line. Real SNAP files keep
// lines tiny; the cap only bounds memory on corrupt or adversarial input.
// It is a variable so tests can lower it to exercise the error path.
var maxEdgeListLineBytes = 16 * 1024 * 1024

// NewEdgeListScanner returns a line scanner for SNAP-style edge lists whose
// buffer grows as needed up to the line cap, instead of bufio.Scanner's
// fixed 64 KiB default. Shared by the CSR loader and the streaming
// edge-list source so both accept the same inputs.
func NewEdgeListScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	// The scanner's effective cap is max(cap(buf), max), so the initial
	// buffer must not exceed the cap for the cap to bind.
	initial := edgeListScanBuf
	if initial > maxEdgeListLineBytes {
		initial = maxEdgeListLineBytes
	}
	sc.Buffer(make([]byte, initial), maxEdgeListLineBytes)
	return sc
}

// ScanEdgeListError converts a scanner error into a descriptive edge-list
// error. linesRead is the number of lines successfully scanned so far; the
// failing line is the next one. bufio.ErrTooLong in particular becomes an
// error naming the line number and the cap instead of "token too long".
func ScanEdgeListError(err error, linesRead int) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("graph: line %d exceeds the %d-byte line cap", linesRead+1, maxEdgeListLineBytes)
	}
	return fmt.Errorf("graph: reading edge list: %w", err)
}

// ParseEdgeLine parses one edge-list line into its original (pre-remap)
// vertex ids. skip is true for blank lines and '#'/'%' comments. Extra
// columns (weights, timestamps) are ignored. Errors do not include the line
// number; callers add it.
func ParseEdgeLine(line string) (u, v int64, skip bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || line[0] == '#' || line[0] == '%' {
		return 0, 0, true, nil
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return 0, 0, false, fmt.Errorf("expected at least two fields, got %q", line)
	}
	u, err = strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return 0, 0, false, fmt.Errorf("bad vertex id %q: %w", fields[0], err)
	}
	v, err = strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0, 0, false, fmt.Errorf("bad vertex id %q: %w", fields[1], err)
	}
	if u < 0 || v < 0 {
		return 0, 0, false, fmt.Errorf("negative vertex id")
	}
	return u, v, false, nil
}

// ReadEdgeList parses a whitespace-separated edge list from r into a graph.
//
// The format is the SNAP convention: one "u v" pair per line, lines starting
// with '#' or '%' are comments, blank lines are ignored, extra columns
// (weights, timestamps) are ignored. Vertex ids may be arbitrary
// non-negative integers; they are remapped to a dense [0, n) range in first-
// appearance order, and the mapping is returned so callers can translate
// results back to the original ids. Self-loops are dropped and duplicate
// edges collapsed, mirroring how the paper's datasets are usually cleaned
// into simple undirected graphs.
func ReadEdgeList(r io.Reader) (*Graph, *IDMap, error) {
	b := NewGrowingBuilder()
	idm := &IDMap{dense: map[int64]Vertex{}}
	sc := NewEdgeListScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		u, v, skip, err := ParseEdgeLine(sc.Text())
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		if skip || u == v {
			// Self-loops are dropped before interning so the id map only
			// names vertices the graph actually contains.
			continue
		}
		du := idm.intern(u)
		dv := idm.intern(v)
		if err := b.AddEdge(du, dv); err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := ScanEdgeListError(sc.Err(), lineNo); err != nil {
		return nil, nil, err
	}
	return b.Build(), idm, nil
}

// WriteEdgeList writes g to w in the same "u v" per line format, using dense
// vertex ids, preceded by a comment header with the graph size.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# undirected simple graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges()); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return fmt.Errorf("graph: writing edge: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing edge list: %w", err)
	}
	return nil
}

// LoadEdgeListFile reads an edge list from path. Files ending in ".gz" are
// transparently gunzipped.
func LoadEdgeListFile(path string) (*Graph, *IDMap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: opening %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: gunzipping %s: %w", path, err)
		}
		defer func() { _ = gz.Close() }()
		r = gz
	}
	g, idm, err := ReadEdgeList(r)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: parsing %s: %w", path, err)
	}
	return g, idm, nil
}

// SaveEdgeListFile writes g to path as an edge list; ".gz" paths are
// gzip-compressed.
func SaveEdgeListFile(path string, g *Graph) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("graph: closing %s: %w", path, cerr)
		}
	}()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := WriteEdgeList(w, g); err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fmt.Errorf("graph: finishing gzip %s: %w", path, err)
		}
	}
	return nil
}

// IDMap records the mapping between original (external) vertex ids and the
// dense internal ids assigned during parsing.
type IDMap struct {
	dense    map[int64]Vertex
	original []int64
}

// NewIDMap returns an empty mapping; ids are assigned densely in intern
// order. Used by streaming edge-list sources that remap ids without
// building a graph.
func NewIDMap() *IDMap {
	return &IDMap{dense: map[int64]Vertex{}}
}

// Intern returns the dense id for orig, assigning the next free id on first
// sight.
func (m *IDMap) Intern(orig int64) Vertex { return m.intern(orig) }

func (m *IDMap) intern(orig int64) Vertex {
	if d, ok := m.dense[orig]; ok {
		return d
	}
	d := Vertex(len(m.original))
	m.dense[orig] = d
	m.original = append(m.original, orig)
	return d
}

// Len returns the number of distinct original ids seen.
func (m *IDMap) Len() int { return len(m.original) }

// Dense returns the dense id for an original id.
func (m *IDMap) Dense(orig int64) (Vertex, bool) {
	d, ok := m.dense[orig]
	return d, ok
}

// Original returns the original id for a dense id.
func (m *IDMap) Original(d Vertex) int64 { return m.original[d] }

// Identity returns an IDMap mapping i -> i for n vertices; used when graphs
// are generated rather than parsed.
func Identity(n int) *IDMap {
	m := &IDMap{dense: make(map[int64]Vertex, n), original: make([]int64, n)}
	for i := 0; i < n; i++ {
		m.dense[int64(i)] = Vertex(i)
		m.original[i] = int64(i)
	}
	return m
}
