package graph

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list from r into a graph.
//
// The format is the SNAP convention: one "u v" pair per line, lines starting
// with '#' or '%' are comments, blank lines are ignored, extra columns
// (weights, timestamps) are ignored. Vertex ids may be arbitrary
// non-negative integers; they are remapped to a dense [0, n) range in first-
// appearance order, and the mapping is returned so callers can translate
// results back to the original ids. Self-loops are dropped and duplicate
// edges collapsed, mirroring how the paper's datasets are usually cleaned
// into simple undirected graphs.
func ReadEdgeList(r io.Reader) (*Graph, *IDMap, error) {
	b := NewGrowingBuilder()
	idm := &IDMap{dense: map[int64]Vertex{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: expected at least two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad vertex id %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad vertex id %q: %w", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		du := idm.intern(u)
		dv := idm.intern(v)
		if err := b.AddEdge(du, dv); err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build(), idm, nil
}

// WriteEdgeList writes g to w in the same "u v" per line format, using dense
// vertex ids, preceded by a comment header with the graph size.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# undirected simple graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges()); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return fmt.Errorf("graph: writing edge: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing edge list: %w", err)
	}
	return nil
}

// LoadEdgeListFile reads an edge list from path. Files ending in ".gz" are
// transparently gunzipped.
func LoadEdgeListFile(path string) (*Graph, *IDMap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: opening %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: gunzipping %s: %w", path, err)
		}
		defer func() { _ = gz.Close() }()
		r = gz
	}
	g, idm, err := ReadEdgeList(r)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: parsing %s: %w", path, err)
	}
	return g, idm, nil
}

// SaveEdgeListFile writes g to path as an edge list; ".gz" paths are
// gzip-compressed.
func SaveEdgeListFile(path string, g *Graph) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("graph: closing %s: %w", path, cerr)
		}
	}()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := WriteEdgeList(w, g); err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fmt.Errorf("graph: finishing gzip %s: %w", path, err)
		}
	}
	return nil
}

// IDMap records the mapping between original (external) vertex ids and the
// dense internal ids assigned during parsing.
type IDMap struct {
	dense    map[int64]Vertex
	original []int64
}

func (m *IDMap) intern(orig int64) Vertex {
	if d, ok := m.dense[orig]; ok {
		return d
	}
	d := Vertex(len(m.original))
	m.dense[orig] = d
	m.original = append(m.original, orig)
	return d
}

// Len returns the number of distinct original ids seen.
func (m *IDMap) Len() int { return len(m.original) }

// Dense returns the dense id for an original id.
func (m *IDMap) Dense(orig int64) (Vertex, bool) {
	d, ok := m.dense[orig]
	return d, ok
}

// Original returns the original id for a dense id.
func (m *IDMap) Original(d Vertex) int64 { return m.original[d] }

// Identity returns an IDMap mapping i -> i for n vertices; used when graphs
// are generated rather than parsed.
func Identity(n int) *IDMap {
	m := &IDMap{dense: make(map[int64]Vertex, n), original: make([]int64, n)}
	for i := 0; i < n; i++ {
		m.dense[int64(i)] = Vertex(i)
		m.original[i] = int64(i)
	}
	return m
}
