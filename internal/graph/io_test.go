package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
% another comment style
0 1
1 2

2 0 999 extra-columns-ignored
`
	g, idm, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("V=%d E=%d, want 3,3", g.NumVertices(), g.NumEdges())
	}
	if idm.Len() != 3 {
		t.Fatalf("idmap has %d entries", idm.Len())
	}
}

func TestReadEdgeListRemapsSparseIDs(t *testing.T) {
	in := "1000000 2000000\n2000000 3000000\n"
	g, idm, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("sparse ids not remapped: %d vertices", g.NumVertices())
	}
	d, ok := idm.Dense(1000000)
	if !ok {
		t.Fatal("lost original id 1000000")
	}
	if idm.Original(d) != 1000000 {
		t.Fatal("round-trip through IDMap failed")
	}
	if _, ok := idm.Dense(42); ok {
		t.Fatal("IDMap invented an id")
	}
}

func TestReadEdgeListDedupes(t *testing.T) {
	in := "0 1\n1 0\n0 1\n5 5\n"
	g, _, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("got %d edges, want 1 (dupes and self-loops dropped)", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",     // too few fields
		"a b\n",   // non-numeric
		"0 xyz\n", // non-numeric second
		"-1 2\n",  // negative
		"3 -7\n",  // negative second
	}
	for _, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted, want error", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {1, 3}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: V %d->%d E %d->%d",
			g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
	}
}

func TestFileRoundTrip(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	for _, name := range []string{"g.txt", "g.txt.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if err := SaveEdgeListFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2, _, err := LoadEdgeListFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: edges %d != %d", name, g2.NumEdges(), g.NumEdges())
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := LoadEdgeListFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("loading missing file succeeded")
	}
}

func TestIdentityIDMap(t *testing.T) {
	m := Identity(4)
	if m.Len() != 4 {
		t.Fatalf("Identity(4).Len() = %d", m.Len())
	}
	for i := 0; i < 4; i++ {
		d, ok := m.Dense(int64(i))
		if !ok || d != Vertex(i) || m.Original(d) != int64(i) {
			t.Fatalf("identity map broken at %d", i)
		}
	}
}

func TestReadEdgeListLongLineGrowsBuffer(t *testing.T) {
	// A 2 MiB line would have overflowed the previous fixed 1 MiB scanner
	// buffer; the grown scanner must parse it (trailing columns ignored).
	var sb strings.Builder
	sb.WriteString("0 1 ")
	sb.WriteString(strings.Repeat("x", 2*1024*1024))
	sb.WriteString("\n1 2\n")
	g, _, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("2 MiB line rejected: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("got %d edges, want 2", g.NumEdges())
	}
}

func TestReadEdgeListLineCapErrorNamesLine(t *testing.T) {
	old := maxEdgeListLineBytes
	maxEdgeListLineBytes = 1024
	defer func() { maxEdgeListLineBytes = old }()

	in := "0 1\n1 2\n2 3 " + strings.Repeat("y", 4096) + "\n"
	_, _, err := ReadEdgeList(strings.NewReader(in))
	if err == nil {
		t.Fatal("over-cap line accepted")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "line cap") {
		t.Fatalf("error %q does not name the failing line and cap", err)
	}
}
