package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph.
//
// The builder normalises input into a simple undirected graph: self-loops
// are dropped (or rejected in strict mode) and duplicate edges — in either
// orientation — are collapsed to one. Vertex ids must be non-negative;
// the vertex count can either be fixed up front or grown automatically to
// max-id+1. Builder is not safe for concurrent use.
type Builder struct {
	numVertices int
	fixedSize   bool
	edges       []Edge
}

// NewBuilder returns a builder for a graph with exactly numVertices
// vertices. Edges referencing vertices outside [0, numVertices) are
// rejected.
func NewBuilder(numVertices int) *Builder {
	return &Builder{numVertices: numVertices, fixedSize: true}
}

// NewGrowingBuilder returns a builder whose vertex count grows to cover the
// largest vertex id seen. Useful when reading edge lists whose vertex count
// is not known in advance.
func NewGrowingBuilder() *Builder {
	return &Builder{}
}

// NumVertices returns the current vertex count.
func (b *Builder) NumVertices() int { return b.numVertices }

// NumEdgesAdded returns the number of edges accepted so far, before
// deduplication.
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// AddEdge records an undirected edge between u and v. Self-loops are
// silently dropped; duplicates are collapsed at Build time. It returns an
// error only when an endpoint is out of range.
func (b *Builder) AddEdge(u, v Vertex) error {
	if u == v {
		return nil
	}
	return b.add(u, v)
}

// AddEdgeStrict is AddEdge but reports self-loops as errors rather than
// dropping them. Duplicates are still detected at Build time via
// BuildStrict.
func (b *Builder) AddEdgeStrict(u, v Vertex) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	return b.add(u, v)
}

func (b *Builder) add(u, v Vertex) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("graph: negative vertex id in edge (%d, %d)", u, v)
	}
	if b.fixedSize {
		if int(u) >= b.numVertices || int(v) >= b.numVertices {
			return fmt.Errorf("graph: edge (%d, %d) out of range for %d vertices", u, v, b.numVertices)
		}
	} else {
		if int(u) >= b.numVertices {
			b.numVertices = int(u) + 1
		}
		if int(v) >= b.numVertices {
			b.numVertices = int(v) + 1
		}
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{U: u, V: v})
	return nil
}

// Build deduplicates the accumulated edges and returns the immutable graph.
// The builder can keep accepting edges afterwards; a later Build returns a
// new graph including them.
func (b *Builder) Build() *Graph {
	deduped := dedupe(append([]Edge(nil), b.edges...))
	return build(b.numVertices, deduped)
}

// BuildStrict is Build but returns an error if any duplicate edge was added.
func (b *Builder) BuildStrict() (*Graph, error) {
	edges := append([]Edge(nil), b.edges...)
	sortEdges(edges)
	for i := 1; i < len(edges); i++ {
		if edges[i] == edges[i-1] {
			return nil, fmt.Errorf("graph: duplicate edge (%d, %d)", edges[i].U, edges[i].V)
		}
	}
	return build(b.numVertices, edges), nil
}

func sortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
}

// dedupe sorts canonical edges and removes duplicates in place.
func dedupe(edges []Edge) []Edge {
	if len(edges) == 0 {
		return edges
	}
	sortEdges(edges)
	out := edges[:1]
	for _, e := range edges[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}
