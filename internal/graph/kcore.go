package graph

// CoreNumbers computes the k-core decomposition: core[v] is the largest k
// such that v belongs to a subgraph where every vertex has degree >= k.
// Runs in O(n + m) via the bucket-based peeling algorithm of Batagelj and
// Zaveršnik. Used for structural statistics and hub analysis of the
// synthetic datasets.
func CoreNumbers(g *Graph) []int32 {
	n := g.NumVertices()
	core := make([]int32, n)
	if n == 0 {
		return core
	}
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(Vertex(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	binStart := make([]int32, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for d := int32(1); d <= maxDeg+1; d++ {
		binStart[d] += binStart[d-1]
	}
	pos := make([]int32, n)   // position of vertex in vert
	vert := make([]Vertex, n) // vertices sorted by current degree
	cursor := make([]int32, maxDeg+1)
	copy(cursor, binStart[:maxDeg+1])
	for v := 0; v < n; v++ {
		d := deg[v]
		pos[v] = cursor[d]
		vert[pos[v]] = Vertex(v)
		cursor[d]++
	}
	// binStart[d] must point at the first vertex with degree >= d during
	// peeling; recompute from the prefix sums.
	start := make([]int32, maxDeg+2)
	copy(start, binStart)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for _, u := range g.Neighbors(v) {
			if deg[u] > deg[v] {
				// Move u one bucket down: swap with the first vertex
				// of its bucket, then shrink the bucket.
				du := deg[u]
				pu := pos[u]
				pw := start[du]
				w := vert[pw]
				if u != w {
					pos[u], pos[w] = pw, pu
					vert[pu], vert[pw] = w, u
				}
				start[du]++
				deg[u]--
			}
		}
	}
	return core
}

// Degeneracy returns the graph's degeneracy: the maximum core number.
func Degeneracy(g *Graph) int32 {
	max := int32(0)
	for _, c := range CoreNumbers(g) {
		if c > max {
			max = c
		}
	}
	return max
}

// DegeneracyOrdering returns the vertices in the peeling order of the
// k-core decomposition (smallest-degree-first removal); the reverse of this
// order is the classic greedy colouring / clique-finding order.
func DegeneracyOrdering(g *Graph) []Vertex {
	n := g.NumVertices()
	order := make([]Vertex, 0, n)
	deg := make([]int32, n)
	removed := make([]bool, n)
	// Simple binary-heap-free peeling with bucket queues.
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(Vertex(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]Vertex, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], Vertex(v))
	}
	cur := int32(0)
	for len(order) < n {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			// Stale entry: the vertex moved buckets after this entry
			// was queued, or was already peeled.
			if !removed[v] && deg[v] < cur {
				// Can only happen transiently; requeue at its bucket.
				buckets[deg[v]] = append(buckets[deg[v]], v)
			}
			continue
		}
		removed[v] = true
		order = append(order, v)
		for _, u := range g.Neighbors(v) {
			if !removed[u] && deg[u] > 0 {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
				if deg[u] < cur {
					cur = deg[u]
				}
			}
		}
	}
	return order
}
