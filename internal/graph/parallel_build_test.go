package graph

import (
	"testing"

	"github.com/graphpart/graphpart/internal/parallel"
	"github.com/graphpart/graphpart/internal/rng"
)

// randomEdges returns a deduplicated canonical edge list big enough to cross
// parallelBuildThreshold.
func randomEdges(n, m int, seed uint64) (int, []Edge) {
	r := rng.New(seed)
	b := NewBuilder(n)
	for len(b.edges) < m {
		u := Vertex(r.Intn(n))
		v := Vertex(r.Intn(n))
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return n, dedupe(append([]Edge(nil), b.edges...))
}

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			t.Fatalf("offsets[%d]: %d vs %d", i, a.offsets[i], b.offsets[i])
		}
	}
	for i := range a.adj {
		if a.adj[i] != b.adj[i] {
			t.Fatalf("adj[%d]: %d vs %d", i, a.adj[i], b.adj[i])
		}
	}
	for i := range a.adjEdge {
		if a.adjEdge[i] != b.adjEdge[i] {
			t.Fatalf("adjEdge[%d]: %d vs %d", i, a.adjEdge[i], b.adjEdge[i])
		}
	}
	for i := range a.edges {
		if a.edges[i] != b.edges[i] {
			t.Fatalf("edges[%d]: %v vs %v", i, a.edges[i], b.edges[i])
		}
	}
}

// TestParallelBuildMatchesSequential forces the concurrent CSR assembly on
// (via the worker env override) and checks every array against the
// sequential build.
func TestParallelBuildMatchesSequential(t *testing.T) {
	n, edges := randomEdges(4000, 2*parallelBuildThreshold, 99)

	seq := &Graph{
		offsets: make([]int64, n+1),
		adj:     make([]Vertex, 2*len(edges)),
		adjEdge: make([]EdgeID, 2*len(edges)),
		edges:   edges,
	}
	buildCSRSequential(seq, n, edges)

	for _, workers := range []int{2, 3, 8} {
		par := &Graph{
			offsets: make([]int64, n+1),
			adj:     make([]Vertex, 2*len(edges)),
			adjEdge: make([]EdgeID, 2*len(edges)),
			edges:   edges,
		}
		buildCSRParallel(par, n, edges, workers)
		graphsEqual(t, seq, par)
	}
}

// TestBuildHonoursWorkerEnv goes through the public Build path with the env
// override set, exercising the dispatch in build().
func TestBuildHonoursWorkerEnv(t *testing.T) {
	t.Setenv(parallel.EnvWorkers, "8")
	n, edges := randomEdges(3000, 2*parallelBuildThreshold, 7)
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	gPar := b.Build()

	t.Setenv(parallel.EnvWorkers, "1")
	gSeq := b.Build()
	graphsEqual(t, gSeq, gPar)
}
