package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/graphpart/graphpart/internal/rng"
)

// k4 returns the complete graph on 4 vertices.
func k4(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// path returns the path graph 0-1-2-...-(n-1).
func path(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(Vertex(i), Vertex(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.AvgDegree() != 0 {
		t.Fatal("empty graph AvgDegree should be 0")
	}
	if g.MaxDegree() != 0 {
		t.Fatal("empty graph MaxDegree should be 0")
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := NewBuilder(5).Build()
	if g.NumVertices() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got V=%d E=%d, want 5, 0", g.NumVertices(), g.NumEdges())
	}
	for v := Vertex(0); v < 5; v++ {
		if g.Degree(v) != 0 || len(g.Neighbors(v)) != 0 {
			t.Fatalf("vertex %d should be isolated", v)
		}
	}
}

func TestK4Basic(t *testing.T) {
	g := k4(t)
	if g.NumVertices() != 4 || g.NumEdges() != 6 {
		t.Fatalf("K4: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	for v := Vertex(0); v < 4; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("K4 degree(%d)=%d, want 3", v, g.Degree(v))
		}
	}
	if g.AvgDegree() != 3 {
		t.Fatalf("K4 avg degree %v, want 3", g.AvgDegree())
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("K4 max degree %v, want 3", g.MaxDegree())
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(6)
	// Insert in scrambled order.
	for _, e := range []Edge{{5, 0}, {0, 3}, {0, 1}, {4, 0}, {2, 0}} {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	nbrs := g.Neighbors(0)
	if !sort.SliceIsSorted(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] }) {
		t.Fatalf("neighbours not sorted: %v", nbrs)
	}
	if len(nbrs) != 5 {
		t.Fatalf("got %d neighbours, want 5", len(nbrs))
	}
}

func TestEdgeCanonicalOrientation(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	e := g.Edge(0)
	if e.U != 1 || e.V != 2 {
		t.Fatalf("edge not canonical: %+v", e)
	}
}

func TestSelfLoopDropped(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("self-loop not dropped: %d edges", g.NumEdges())
	}
}

func TestSelfLoopStrictRejected(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdgeStrict(1, 1); err == nil {
		t.Fatal("AddEdgeStrict accepted a self-loop")
	}
}

func TestDuplicatesCollapsed(t *testing.T) {
	b := NewBuilder(3)
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(1, 0); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("duplicates not collapsed: %d edges", g.NumEdges())
	}
}

func TestBuildStrictDetectsDuplicates(t *testing.T) {
	b := NewBuilder(3)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 0)
	if _, err := b.BuildStrict(); err == nil {
		t.Fatal("BuildStrict accepted duplicate edge")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 3); err == nil {
		t.Fatal("accepted out-of-range vertex")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("accepted negative vertex")
	}
}

func TestGrowingBuilder(t *testing.T) {
	b := NewGrowingBuilder()
	if err := b.AddEdge(0, 100); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.NumVertices() != 101 {
		t.Fatalf("growing builder vertex count %d, want 101", g.NumVertices())
	}
}

func TestFindEdge(t *testing.T) {
	g := k4(t)
	for u := Vertex(0); u < 4; u++ {
		for v := Vertex(0); v < 4; v++ {
			id, ok := g.FindEdge(u, v)
			if u == v {
				if ok {
					t.Fatalf("FindEdge(%d,%d) found a self-loop", u, v)
				}
				continue
			}
			if !ok {
				t.Fatalf("FindEdge(%d,%d) missing in K4", u, v)
			}
			e := g.Edge(id)
			if !(e.U == u && e.V == v) && !(e.U == v && e.V == u) {
				t.Fatalf("FindEdge(%d,%d) returned edge %+v", u, v, e)
			}
		}
	}
	if _, ok := path(t, 5).FindEdge(0, 4); ok {
		t.Fatal("FindEdge found non-existent edge in path")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 2, V: 7}
	if e.Other(2) != 7 || e.Other(7) != 2 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint did not panic")
		}
	}()
	e.Other(3)
}

func TestIncidentEdgesConsistency(t *testing.T) {
	g := k4(t)
	for v := Vertex(0); v < 4; v++ {
		nbrs := g.Neighbors(v)
		eids := g.IncidentEdges(v)
		if len(nbrs) != len(eids) {
			t.Fatalf("vertex %d: %d neighbours but %d incident edges", v, len(nbrs), len(eids))
		}
		for i, w := range nbrs {
			e := g.Edge(eids[i])
			if e.Other(v) != w {
				t.Fatalf("vertex %d slot %d: edge %+v does not connect to neighbour %d", v, i, e, w)
			}
		}
	}
}

func TestEdgeIDsDeterministic(t *testing.T) {
	// Same edge set in different insertion orders must yield identical
	// EdgeID assignment (edges are sorted canonically at build).
	edges := []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}}
	g1, err := FromEdges(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]Edge, len(edges))
	for i, e := range edges {
		rev[len(edges)-1-i] = Edge{U: e.V, V: e.U} // also flip orientation
	}
	b := NewBuilder(4)
	for _, e := range rev {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	g2 := b.Build()
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := 0; i < g1.NumEdges(); i++ {
		if g1.Edge(EdgeID(i)) != g2.Edge(EdgeID(i)) {
			t.Fatalf("EdgeID %d differs: %+v vs %+v", i, g1.Edge(EdgeID(i)), g2.Edge(EdgeID(i)))
		}
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	if _, err := FromEdges(3, []Edge{{1, 1}}); err == nil {
		t.Fatal("FromEdges accepted self-loop")
	}
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("FromEdges accepted out-of-range edge")
	}
}

func TestMustFromEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromEdges did not panic on bad input")
		}
	}()
	MustFromEdges(1, []Edge{{0, 0}})
}

// Property: for a random graph, the sum of degrees equals 2m and every
// adjacency entry is mirrored.
func TestAdjacencySymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(50)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u, v := Vertex(r.Intn(n)), Vertex(r.Intn(n))
			if err := b.AddEdge(u, v); err != nil {
				return false
			}
		}
		g := b.Build()
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += g.Degree(Vertex(v))
			for _, w := range g.Neighbors(Vertex(v)) {
				if !g.HasEdge(w, Vertex(v)) {
					return false
				}
			}
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(1)
	const n = 10000
	edges := make([]Edge, 0, 5*n)
	for i := 0; i < 5*n; i++ {
		u, v := Vertex(r.Intn(n)), Vertex(r.Intn(n))
		if u != v {
			if u > v {
				u, v = v, u
			}
			edges = append(edges, Edge{u, v})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(n)
		for _, e := range edges {
			_ = bl.AddEdge(e.U, e.V)
		}
		_ = bl.Build()
	}
}

func BenchmarkFindEdge(b *testing.B) {
	r := rng.New(2)
	const n = 10000
	bl := NewBuilder(n)
	for i := 0; i < 8*n; i++ {
		_ = bl.AddEdge(Vertex(r.Intn(n)), Vertex(r.Intn(n)))
	}
	g := bl.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FindEdge(Vertex(i%n), Vertex((i*7)%n))
	}
}
