package graph

import (
	"testing"
)

// twoTriangles returns two disjoint triangles: {0,1,2} and {3,4,5}.
func twoTriangles(t *testing.T) *Graph {
	t.Helper()
	return MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
}

func TestBFSOrderOnPath(t *testing.T) {
	g := path(t, 5)
	order := BFSOrder(g, 0)
	want := []Vertex{0, 1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("BFS order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("BFS order %v, want %v", order, want)
		}
	}
}

func TestBFSDepths(t *testing.T) {
	g := path(t, 4)
	depths := map[Vertex]int{}
	BFS(g, 0, func(v Vertex, d int) bool {
		depths[v] = d
		return true
	})
	for v, want := range map[Vertex]int{0: 0, 1: 1, 2: 2, 3: 3} {
		if depths[v] != want {
			t.Fatalf("depth(%d)=%d, want %d", v, depths[v], want)
		}
	}
}

func TestBFSEarlyStop(t *testing.T) {
	g := path(t, 10)
	visited := 0
	BFS(g, 0, func(Vertex, int) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("visited %d vertices after early stop, want 3", visited)
	}
}

func TestBFSStaysInComponent(t *testing.T) {
	g := twoTriangles(t)
	order := BFSOrder(g, 0)
	if len(order) != 3 {
		t.Fatalf("BFS crossed components: %v", order)
	}
	for _, v := range order {
		if v > 2 {
			t.Fatalf("BFS reached other component: %v", order)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := twoTriangles(t)
	labels, count := ConnectedComponents(g)
	if count != 2 {
		t.Fatalf("count=%d, want 2", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("triangle 1 split across components")
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatal("triangle 2 split across components")
	}
	if labels[0] == labels[3] {
		t.Fatal("disjoint triangles merged")
	}
}

func TestConnectedComponentsIsolated(t *testing.T) {
	g := NewBuilder(4).Build()
	_, count := ConnectedComponents(g)
	if count != 4 {
		t.Fatalf("4 isolated vertices formed %d components", count)
	}
}

func TestLargestComponent(t *testing.T) {
	// Triangle {0,1,2} plus edge {3,4} plus isolated 5.
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {0, 2}, {3, 4}})
	lc := LargestComponent(g)
	if len(lc) != 3 {
		t.Fatalf("largest component size %d, want 3", len(lc))
	}
	for _, v := range lc {
		if v > 2 {
			t.Fatalf("unexpected vertex %d in largest component", v)
		}
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	if lc := LargestComponent(NewBuilder(0).Build()); lc != nil {
		t.Fatalf("empty graph largest component = %v", lc)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := k4(t)
	sub, orig := InducedSubgraph(g, []Vertex{1, 2, 3})
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced K3: V=%d E=%d", sub.NumVertices(), sub.NumEdges())
	}
	if len(orig) != 3 || orig[0] != 1 || orig[1] != 2 || orig[2] != 3 {
		t.Fatalf("orig mapping %v", orig)
	}
}

func TestInducedSubgraphNoEdges(t *testing.T) {
	g := path(t, 5)
	sub, _ := InducedSubgraph(g, []Vertex{0, 2, 4})
	if sub.NumEdges() != 0 {
		t.Fatalf("non-adjacent vertices induced %d edges", sub.NumEdges())
	}
}

func TestDiameter2Sweep(t *testing.T) {
	if d := Diameter2Sweep(path(t, 10), 4); d != 9 {
		t.Fatalf("path diameter estimate %d, want 9", d)
	}
	if d := Diameter2Sweep(k4(t), 0); d != 1 {
		t.Fatalf("K4 diameter estimate %d, want 1", d)
	}
}

func TestTriangleCount(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int64
	}{
		{"K4", k4(t), 4},
		{"two triangles", twoTriangles(t), 2},
		{"path", path(t, 6), 0},
		{"empty", NewBuilder(3).Build(), 0},
	}
	for _, tc := range cases {
		if got := TriangleCount(tc.g); got != tc.want {
			t.Errorf("%s: TriangleCount = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestGlobalClusteringCoefficient(t *testing.T) {
	// K4: every wedge closes -> coefficient 1.
	if c := GlobalClusteringCoefficient(k4(t)); c != 1 {
		t.Fatalf("K4 clustering %v, want 1", c)
	}
	if c := GlobalClusteringCoefficient(path(t, 5)); c != 0 {
		t.Fatalf("path clustering %v, want 0", c)
	}
	if c := GlobalClusteringCoefficient(NewBuilder(2).Build()); c != 0 {
		t.Fatalf("edgeless clustering %v, want 0", c)
	}
}

func TestComputeStats(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {1, 2}, {0, 2}, {3, 4}})
	s := ComputeStats(g)
	if s.Vertices != 6 || s.Edges != 4 {
		t.Fatalf("stats size wrong: %+v", s)
	}
	if s.MinDegree != 0 || s.MaxDegree != 2 {
		t.Fatalf("degree range wrong: %+v", s)
	}
	if s.Components != 3 {
		t.Fatalf("components = %d, want 3", s.Components)
	}
	if s.LargestComponentFrac != 0.5 {
		t.Fatalf("largest frac = %v, want 0.5", s.LargestComponentFrac)
	}
	if s.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(NewBuilder(0).Build())
	if s.Vertices != 0 || s.Edges != 0 || s.Components != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path(t, 4) // degrees: 1,2,2,1
	h := DegreeHistogram(g)
	if len(h) != 3 || h[0] != 0 || h[1] != 2 || h[2] != 2 {
		t.Fatalf("histogram %v", h)
	}
}

func TestGiniUniform(t *testing.T) {
	if g := gini([]int{5, 5, 5, 5}); g != 0 {
		t.Fatalf("uniform gini %v, want 0", g)
	}
	// Extreme inequality approaches 1.
	skew := make([]int, 100)
	skew[99] = 1000
	if g := gini(skew); g < 0.9 {
		t.Fatalf("skewed gini %v, want near 1", g)
	}
	if g := gini(nil); g != 0 {
		t.Fatalf("nil gini %v", g)
	}
	if g := gini([]int{0, 0}); g != 0 {
		t.Fatalf("all-zero gini %v", g)
	}
}
