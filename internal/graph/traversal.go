package graph

// BFS visits vertices reachable from src in breadth-first order, calling
// visit(v, depth) for each. If visit returns false the traversal stops.
func BFS(g *Graph, src Vertex, visit func(v Vertex, depth int) bool) {
	seen := make([]bool, g.NumVertices())
	type item struct {
		v     Vertex
		depth int
	}
	queue := []item{{src, 0}}
	seen[src] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !visit(cur.v, cur.depth) {
			return
		}
		for _, w := range g.Neighbors(cur.v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, item{w, cur.depth + 1})
			}
		}
	}
}

// BFSOrder returns all vertices reachable from src in BFS order.
func BFSOrder(g *Graph, src Vertex) []Vertex {
	var order []Vertex
	BFS(g, src, func(v Vertex, _ int) bool {
		order = append(order, v)
		return true
	})
	return order
}

// ConnectedComponents labels every vertex with a component id in [0, count)
// and returns the labels and the component count. Isolated vertices form
// singleton components.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []Vertex
	for s := 0; s < n; s++ {
		if labels[s] != -1 {
			continue
		}
		id := int32(count)
		count++
		labels[s] = id
		queue = append(queue[:0], Vertex(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if labels[w] == -1 {
					labels[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the vertices of the largest connected component.
func LargestComponent(g *Graph) []Vertex {
	labels, count := ConnectedComponents(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	out := make([]Vertex, 0, sizes[best])
	for v, l := range labels {
		if l == int32(best) {
			out = append(out, Vertex(v))
		}
	}
	return out
}

// InducedSubgraph returns the subgraph induced by keep, along with the map
// from new dense ids to the original vertex ids. Vertices in keep are
// renumbered 0..len(keep)-1 in the order given; duplicate entries are an
// error surfaced by panicking in debug builds — callers pass sets.
func InducedSubgraph(g *Graph, keep []Vertex) (*Graph, []Vertex) {
	newID := make(map[Vertex]Vertex, len(keep))
	for i, v := range keep {
		newID[v] = Vertex(i)
	}
	b := NewBuilder(len(keep))
	for i, v := range keep {
		for _, w := range g.Neighbors(v) {
			if nw, ok := newID[w]; ok && Vertex(i) < nw {
				// Builder canonicalises; adding once per pair via i<nw.
				_ = b.AddEdge(Vertex(i), nw)
			}
		}
	}
	orig := append([]Vertex(nil), keep...)
	return b.Build(), orig
}

// Diameter2Sweep estimates the graph diameter with the classic double-sweep
// lower bound: BFS from src to the farthest vertex f, then BFS from f; the
// greatest depth reached is returned. Exact on trees, a lower bound
// otherwise.
func Diameter2Sweep(g *Graph, src Vertex) int {
	far, _ := farthest(g, src)
	_, depth := farthest(g, far)
	return depth
}

func farthest(g *Graph, src Vertex) (Vertex, int) {
	best, bestDepth := src, 0
	BFS(g, src, func(v Vertex, d int) bool {
		if d > bestDepth {
			best, bestDepth = v, d
		}
		return true
	})
	return best, bestDepth
}
