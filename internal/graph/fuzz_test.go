package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList feeds arbitrary bytes to the edge-list parser and checks
// the structural invariants of any graph it accepts. Run with
// `go test -fuzz FuzzReadEdgeList ./internal/graph` for exploration; the
// seed corpus runs as a normal test.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n% other comment\n\n5 5\n1 2 weight\n"))
	f.Add([]byte("999999999999999999999 1\n"))
	f.Add([]byte("1 2\n2 1\n1 2\n"))
	f.Add([]byte("-3 4\n"))
	f.Add([]byte("a b\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, idm, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; crashing is not
		}
		if g.NumVertices() != idm.Len() {
			t.Fatalf("graph has %d vertices, idmap %d", g.NumVertices(), idm.Len())
		}
		degSum := 0
		for v := 0; v < g.NumVertices(); v++ {
			vv := Vertex(v)
			degSum += g.Degree(vv)
			for _, u := range g.Neighbors(vv) {
				if u == vv {
					t.Fatal("self-loop survived parsing")
				}
				if !g.HasEdge(u, vv) {
					t.Fatal("asymmetric adjacency")
				}
			}
		}
		if degSum != 2*g.NumEdges() {
			t.Fatalf("degree sum %d != 2m=%d", degSum, 2*g.NumEdges())
		}
		// Round-trip: writing and re-reading preserves the size.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, _, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip rejected own output: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip: %d -> %d edges", g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzBuilder stresses the builder with arbitrary edge pairs.
func FuzzBuilder(f *testing.F) {
	f.Add(uint16(5), int64(0x0102030405060708))
	f.Fuzz(func(t *testing.T, nRaw uint16, bits int64) {
		n := int(nRaw%100) + 1
		b := NewBuilder(n)
		x := uint64(bits)
		for i := 0; i < 20; i++ {
			u := Vertex(int(x % uint64(n)))
			x /= uint64(n)
			if x == 0 {
				x = uint64(bits)*2 + 1
			}
			v := Vertex(int(x % uint64(n)))
			x /= 7
			if x == 0 {
				x = uint64(bits) + 3
			}
			if err := b.AddEdge(u, v); err != nil {
				t.Fatalf("in-range edge rejected: %v", err)
			}
		}
		g := b.Build()
		for v := 0; v < g.NumVertices(); v++ {
			nbrs := g.Neighbors(Vertex(v))
			for i := 1; i < len(nbrs); i++ {
				if nbrs[i] <= nbrs[i-1] {
					t.Fatal("neighbours not strictly sorted (dupes?)")
				}
			}
		}
	})
}
