// Package graph provides the immutable undirected graph representation used
// by every partitioner in this repository, together with builders, edge-list
// IO, traversals and structural statistics.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected, which
// matches the problem statement of the paper: G = (V, E) with n = |V|
// vertices and m = |E| edges. Vertices are dense integer ids in [0, n); every
// undirected edge has a dense EdgeID in [0, m). The adjacency is stored in
// CSR (compressed sparse row) form with per-vertex neighbour lists sorted by
// vertex id, so neighbourhood queries are cache-friendly slices and
// membership tests are binary searches.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/graphpart/graphpart/internal/parallel"
)

// Vertex identifies a vertex as a dense index in [0, NumVertices).
// int32 keeps adjacency arrays compact for multi-million-vertex graphs.
type Vertex = int32

// EdgeID identifies an undirected edge as a dense index in [0, NumEdges).
type EdgeID = int32

// Edge is an undirected edge between vertices U and V with U < V
// (canonical orientation; builders normalise the order).
type Edge struct {
	U, V Vertex
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e; callers always know the incident vertex.
func (e Edge) Other(v Vertex) Vertex {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
	}
}

// Graph is an immutable simple undirected graph in CSR form.
//
// The zero value is an empty graph with no vertices. Construct graphs with a
// Builder, FromEdges, or the IO readers. Graph methods are safe for
// concurrent use because the structure never mutates after construction.
type Graph struct {
	offsets []int64  // len NumVertices+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []Vertex // neighbour vertex ids, sorted within each vertex
	adjEdge []EdgeID // adjEdge[i] is the EdgeID of the arc adj[i]
	edges   []Edge   // edge endpoints by EdgeID, canonical U < V
}

// NumVertices returns n = |V|.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns m = |E| (undirected edges, each counted once).
func (g *Graph) NumEdges() int { return len(g.edges) }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v Vertex) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbour list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v Vertex) []Vertex {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// IncidentEdges returns the EdgeIDs incident to v, parallel to Neighbors(v).
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) IncidentEdges(v Vertex) []EdgeID {
	return g.adjEdge[g.offsets[v]:g.offsets[v+1]]
}

// Edge returns the endpoints of edge id in canonical order (U < V).
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns all edges by EdgeID. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// HasEdge reports whether an edge between u and v exists.
func (g *Graph) HasEdge(u, v Vertex) bool {
	_, ok := g.FindEdge(u, v)
	return ok
}

// FindEdge returns the EdgeID of the edge between u and v, if present.
// It runs in O(log deg) by binary search over the smaller adjacency list.
func (g *Graph) FindEdge(u, v Vertex) (EdgeID, bool) {
	if u == v {
		return 0, false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	if i < len(nbrs) && nbrs[i] == v {
		return g.IncidentEdges(u)[i], true
	}
	return 0, false
}

// AvgDegree returns the average vertex degree 2m/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(n)
}

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(Vertex(v)); d > max {
			max = d
		}
	}
	return max
}

// FromEdges builds a graph with numVertices vertices from the given edge
// list. Self-loops and duplicate edges (in either orientation) are rejected
// with an error; use a Builder to deduplicate noisy input instead.
func FromEdges(numVertices int, edges []Edge) (*Graph, error) {
	b := NewBuilder(numVertices)
	for _, e := range edges {
		if err := b.AddEdgeStrict(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MustFromEdges is FromEdges that panics on error; intended for tests and
// package examples with hand-written edge lists.
func MustFromEdges(numVertices int, edges []Edge) *Graph {
	g, err := FromEdges(numVertices, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// parallelBuildThreshold is the edge count below which CSR assembly stays
// sequential: pool startup and atomic traffic cost more than they save on
// small graphs.
const parallelBuildThreshold = 1 << 15

// build assembles the CSR arrays from a deduplicated canonical edge list.
// edges must already be self-loop free, duplicate free, and have U < V.
//
// Assembly is sharded over the worker pool for large graphs. The resulting
// arrays are byte-identical to the sequential build: neighbour ids within a
// vertex are unique (simple graph), so the per-vertex sort erases whatever
// interleaving the concurrent bucket fill produced.
func build(numVertices int, edges []Edge) *Graph {
	// Sort edges canonically so EdgeIDs are deterministic regardless of
	// insertion order.
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	g := &Graph{
		offsets: make([]int64, numVertices+1),
		adj:     make([]Vertex, 2*len(edges)),
		adjEdge: make([]EdgeID, 2*len(edges)),
		edges:   edges,
	}
	if workers := parallel.Workers(0); workers > 1 && len(edges) >= parallelBuildThreshold {
		buildCSRParallel(g, numVertices, edges, workers)
	} else {
		buildCSRSequential(g, numVertices, edges)
	}
	return g
}

func buildCSRSequential(g *Graph, numVertices int, edges []Edge) {
	deg := make([]int64, numVertices)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	for v := 0; v < numVertices; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	cursor := make([]int64, numVertices)
	copy(cursor, g.offsets[:numVertices])
	for id, e := range edges {
		g.adj[cursor[e.U]] = e.V
		g.adjEdge[cursor[e.U]] = EdgeID(id)
		cursor[e.U]++
		g.adj[cursor[e.V]] = e.U
		g.adjEdge[cursor[e.V]] = EdgeID(id)
		cursor[e.V]++
	}
	// Neighbour lists come out sorted by construction for the U side but
	// interleaved for the V side; sort each range (ids follow neighbours).
	for v := 0; v < numVertices; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		sortAdjRange(g.adj[lo:hi], g.adjEdge[lo:hi])
	}
}

// buildCSRParallel assembles the same CSR arrays with three sharded passes:
// an atomic degree count over edge shards, an atomic-cursor bucket fill over
// edge shards, and a per-vertex-range sort pass that restores the canonical
// neighbour order.
func buildCSRParallel(g *Graph, numVertices int, edges []Edge, workers int) {
	// Oversplit so a dense shard cannot straggle the whole pass.
	edgeChunks := parallel.Chunks(len(edges), workers*4)
	deg := make([]int32, numVertices)
	parallel.ForEach(len(edgeChunks), workers, func(c int) {
		for _, e := range edges[edgeChunks[c][0]:edgeChunks[c][1]] {
			atomic.AddInt32(&deg[e.U], 1)
			atomic.AddInt32(&deg[e.V], 1)
		}
	})
	for v := 0; v < numVertices; v++ {
		g.offsets[v+1] = g.offsets[v] + int64(deg[v])
	}
	cursor := make([]int64, numVertices)
	copy(cursor, g.offsets[:numVertices])
	parallel.ForEach(len(edgeChunks), workers, func(c int) {
		lo, hi := edgeChunks[c][0], edgeChunks[c][1]
		for id := lo; id < hi; id++ {
			e := edges[id]
			su := atomic.AddInt64(&cursor[e.U], 1) - 1
			g.adj[su] = e.V
			g.adjEdge[su] = EdgeID(id)
			sv := atomic.AddInt64(&cursor[e.V], 1) - 1
			g.adj[sv] = e.U
			g.adjEdge[sv] = EdgeID(id)
		}
	})
	vertChunks := parallel.Chunks(numVertices, workers*4)
	parallel.ForEach(len(vertChunks), workers, func(c int) {
		for v := vertChunks[c][0]; v < vertChunks[c][1]; v++ {
			lo, hi := g.offsets[v], g.offsets[v+1]
			sortAdjRange(g.adj[lo:hi], g.adjEdge[lo:hi])
		}
	})
}

// sortAdjRange sorts a neighbour slice and its parallel edge-id slice by
// neighbour id. Insertion sort for short ranges, sort.Sort otherwise.
func sortAdjRange(nbrs []Vertex, eids []EdgeID) {
	if len(nbrs) < 24 {
		for i := 1; i < len(nbrs); i++ {
			n, e := nbrs[i], eids[i]
			j := i - 1
			for j >= 0 && nbrs[j] > n {
				nbrs[j+1], eids[j+1] = nbrs[j], eids[j]
				j--
			}
			nbrs[j+1], eids[j+1] = n, e
		}
		return
	}
	sort.Sort(&adjSorter{nbrs, eids})
}

type adjSorter struct {
	nbrs []Vertex
	eids []EdgeID
}

func (s *adjSorter) Len() int           { return len(s.nbrs) }
func (s *adjSorter) Less(i, j int) bool { return s.nbrs[i] < s.nbrs[j] }
func (s *adjSorter) Swap(i, j int) {
	s.nbrs[i], s.nbrs[j] = s.nbrs[j], s.nbrs[i]
	s.eids[i], s.eids[j] = s.eids[j], s.eids[i]
}
