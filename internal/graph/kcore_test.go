package graph

import (
	"testing"

	"github.com/graphpart/graphpart/internal/rng"
)

func TestCoreNumbersTriangleWithTail(t *testing.T) {
	// Triangle {0,1,2} plus tail 2-3-4: cores are 2,2,2,1,1.
	g := MustFromEdges(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	core := CoreNumbers(g)
	want := []int32{2, 2, 2, 1, 1}
	for v, w := range want {
		if core[v] != w {
			t.Fatalf("core[%d] = %d, want %d (all: %v)", v, core[v], w, core)
		}
	}
	if Degeneracy(g) != 2 {
		t.Fatalf("degeneracy %d, want 2", Degeneracy(g))
	}
}

func TestCoreNumbersClique(t *testing.T) {
	g := k4(t)
	for v, c := range CoreNumbers(g) {
		if c != 3 {
			t.Fatalf("K4 core[%d] = %d, want 3", v, c)
		}
	}
}

func TestCoreNumbersPathAndEmpty(t *testing.T) {
	g := path(t, 5)
	for v, c := range CoreNumbers(g) {
		if c != 1 {
			t.Fatalf("path core[%d] = %d, want 1", v, c)
		}
	}
	if got := CoreNumbers(NewBuilder(0).Build()); len(got) != 0 {
		t.Fatal("empty graph core numbers nonempty")
	}
	for _, c := range CoreNumbers(NewBuilder(3).Build()) {
		if c != 0 {
			t.Fatal("isolated vertices should have core 0")
		}
	}
}

// TestCoreNumbersAgainstNaive cross-checks the O(n+m) peeling against a
// naive iterative-deletion reference on random graphs.
func TestCoreNumbersAgainstNaive(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		r := rng.New(seed)
		n := 30 + r.Intn(50)
		b := NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			_ = b.AddEdge(Vertex(r.Intn(n)), Vertex(r.Intn(n)))
		}
		g := b.Build()
		fast := CoreNumbers(g)
		slow := naiveCores(g)
		for v := 0; v < n; v++ {
			if fast[v] != slow[v] {
				t.Fatalf("seed %d vertex %d: fast %d, naive %d", seed, v, fast[v], slow[v])
			}
		}
	}
}

// naiveCores computes core numbers by repeated peeling at increasing k.
func naiveCores(g *Graph) []int32 {
	n := g.NumVertices()
	core := make([]int32, n)
	alive := make([]bool, n)
	deg := make([]int, n)
	for k := int32(1); ; k++ {
		for v := 0; v < n; v++ {
			alive[v] = true
			deg[v] = g.Degree(Vertex(v))
		}
		// Peel everything with degree < k repeatedly.
		changed := true
		for changed {
			changed = false
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] < int(k) {
					alive[v] = false
					changed = true
					for _, u := range g.Neighbors(Vertex(v)) {
						if alive[u] {
							deg[u]--
						}
					}
				}
			}
		}
		any := false
		for v := 0; v < n; v++ {
			if alive[v] {
				core[v] = k
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

func TestDegeneracyOrderingIsPermutation(t *testing.T) {
	r := rng.New(9)
	n := 80
	b := NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		_ = b.AddEdge(Vertex(r.Intn(n)), Vertex(r.Intn(n)))
	}
	g := b.Build()
	order := DegeneracyOrdering(g)
	if len(order) != n {
		t.Fatalf("ordering has %d of %d vertices", len(order), n)
	}
	seen := make([]bool, n)
	for _, v := range order {
		if seen[v] {
			t.Fatalf("vertex %d repeated", v)
		}
		seen[v] = true
	}
}

func TestDegeneracyOrderingPeelsLeavesFirst(t *testing.T) {
	// Star: leaves must all precede the hub.
	b := NewBuilder(6)
	for i := 1; i < 6; i++ {
		_ = b.AddEdge(0, Vertex(i))
	}
	g := b.Build()
	order := DegeneracyOrdering(g)
	// Once only the hub and one leaf remain they tie at degree 1, so the
	// hub may come second-to-last; it must never appear before then.
	for i, v := range order[:3] {
		if v == 0 {
			t.Fatalf("hub peeled at position %d: %v", i, order)
		}
	}
}
