package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarises the structure of a graph; used by the dataset registry to
// report Table III analogues and by tests to sanity-check generators.
type Stats struct {
	Vertices   int
	Edges      int
	MinDegree  int
	MaxDegree  int
	AvgDegree  float64
	MedDegree  float64
	Components int
	// LargestComponentFrac is the fraction of vertices in the largest
	// connected component.
	LargestComponentFrac float64
	// DegreeGini is the Gini coefficient of the degree distribution; a
	// cheap skewness signal (power-law graphs score high, regular graphs
	// near zero).
	DegreeGini float64
}

// ComputeStats calculates Stats for g.
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	s := Stats{Vertices: n, Edges: g.NumEdges(), AvgDegree: g.AvgDegree()}
	if n == 0 {
		return s
	}
	degs := make([]int, n)
	s.MinDegree = math.MaxInt
	for v := 0; v < n; v++ {
		d := g.Degree(Vertex(v))
		degs[v] = d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	sort.Ints(degs)
	if n%2 == 1 {
		s.MedDegree = float64(degs[n/2])
	} else {
		s.MedDegree = float64(degs[n/2-1]+degs[n/2]) / 2
	}
	s.DegreeGini = gini(degs)
	labels, count := ConnectedComponents(g)
	s.Components = count
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	largest := 0
	for _, sz := range sizes {
		if sz > largest {
			largest = sz
		}
	}
	s.LargestComponentFrac = float64(largest) / float64(n)
	return s
}

// gini computes the Gini coefficient of a sorted non-negative sample.
func gini(sorted []int) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	var sum, weighted float64
	for i, d := range sorted {
		sum += float64(d)
		weighted += float64(i+1) * float64(d)
	}
	if sum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*sum) / (float64(n) * sum)
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("V=%d E=%d deg[min=%d med=%.1f avg=%.2f max=%d gini=%.2f] comps=%d (largest %.1f%%)",
		s.Vertices, s.Edges, s.MinDegree, s.MedDegree, s.AvgDegree, s.MaxDegree, s.DegreeGini,
		s.Components, 100*s.LargestComponentFrac)
}

// DegreeHistogram returns counts[d] = number of vertices with degree d.
func DegreeHistogram(g *Graph) []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		counts[g.Degree(Vertex(v))]++
	}
	return counts
}

// TriangleCount returns the exact number of triangles in g using the
// forward (oriented neighbour intersection) algorithm. Intended for the
// small graphs in tests; O(m^{3/2}) worst case.
func TriangleCount(g *Graph) int64 {
	var count int64
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		uu := Vertex(u)
		nu := g.Neighbors(uu)
		for _, v := range nu {
			if v <= uu {
				continue
			}
			// Intersect higher neighbours of u and v.
			count += countCommonAbove(nu, g.Neighbors(v), v)
		}
	}
	return count
}

// countCommonAbove counts values present in both sorted slices that are
// strictly greater than floor.
func countCommonAbove(a, b []Vertex, floor Vertex) int64 {
	i := sort.Search(len(a), func(i int) bool { return a[i] > floor })
	j := sort.Search(len(b), func(i int) bool { return b[i] > floor })
	var c int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// GlobalClusteringCoefficient returns 3*triangles / open-and-closed-wedges,
// or 0 if the graph has no wedges. Exact; use on small/medium graphs.
func GlobalClusteringCoefficient(g *Graph) float64 {
	var wedges int64
	for v := 0; v < g.NumVertices(); v++ {
		d := int64(g.Degree(Vertex(v)))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(TriangleCount(g)) / float64(wedges)
}
