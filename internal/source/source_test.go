package source

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

// randomGraph builds a small random simple graph, mirroring the streaming
// package's test helper.
func randomGraph(t *testing.T, n, m int, seed uint64) *graph.Graph {
	t.Helper()
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// drain pulls every edge out of src.
func drain(t *testing.T, src EdgeSource) []Edge {
	t.Helper()
	var out []Edge
	for {
		e, ok, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestGraphSourceMatchesEdgeOrder(t *testing.T) {
	g := randomGraph(t, 80, 300, 11)
	for _, ord := range []Order{OrderShuffled, OrderNatural, OrderBFS, 0} {
		want := EdgeOrder(g, ord, 99)
		src := FromGraph(g, ord, 99)
		got := drain(t, src)
		if len(got) != len(want) {
			t.Fatalf("order %d: %d edges streamed, want %d", ord, len(got), len(want))
		}
		for i, e := range got {
			if e.ID != want[i] {
				t.Fatalf("order %d: position %d streamed edge %d, want %d", ord, i, e.ID, want[i])
			}
			ge := g.Edge(e.ID)
			if e.U != ge.U || e.V != ge.V {
				t.Fatalf("order %d: edge %d endpoints (%d,%d), want (%d,%d)", ord, e.ID, e.U, e.V, ge.U, ge.V)
			}
		}
	}
}

func TestGraphSourceResetReproduces(t *testing.T) {
	g := randomGraph(t, 50, 200, 3)
	src := FromGraph(g, OrderShuffled, 7)
	first := drain(t, src)
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	second := drain(t, src)
	if len(first) != len(second) {
		t.Fatalf("pass lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("position %d differs after Reset: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestEdgesSource(t *testing.T) {
	g := randomGraph(t, 30, 100, 5)
	src := FromEdges(g.NumVertices(), g.Edges())
	if src.NumVertices() != g.NumVertices() || src.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes (%d,%d), want (%d,%d)", src.NumVertices(), src.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	got := drain(t, src)
	for i, e := range got {
		ge := g.Edge(graph.EdgeID(i))
		if e.ID != graph.EdgeID(i) || e.U != ge.U || e.V != ge.V {
			t.Fatalf("edge %d: got %+v, want id=%d (%d,%d)", i, e, i, ge.U, ge.V)
		}
	}
}

// TestFileSourceMatchesLoadEdgeList checks the streaming parse agrees with
// the CSR loader on vertex interning and edge endpoints for a sparse-id
// file with comments and self-loops.
func TestFileSourceMatchesLoadEdgeList(t *testing.T) {
	content := "# comment\n100 200\n200 300\n300 300\n% other comment\n100 300\n7 100\n"
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, idm, err := graph.LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenFile(path, FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = src.Close() }()

	if src.NumVertices() != g.NumVertices() {
		t.Fatalf("NumVertices %d, want %d", src.NumVertices(), g.NumVertices())
	}
	if src.NumEdges() != 4 { // 4 non-self-loop data lines (no dupes here)
		t.Fatalf("NumEdges %d, want 4", src.NumEdges())
	}
	edges := drain(t, src)
	if len(edges) != 4 {
		t.Fatalf("streamed %d edges, want 4", len(edges))
	}
	// Interning is first-appearance order in both paths, so dense ids agree.
	for i, e := range edges {
		if e.ID != graph.EdgeID(i) {
			t.Fatalf("edge %d has ID %d, want sequential", i, e.ID)
		}
		ou := src.IDMap().Original(e.U)
		if du, ok := idm.Dense(ou); !ok || du != e.U {
			t.Fatalf("edge %d endpoint %d interned differently from CSR loader", i, e.U)
		}
	}
}

func TestFileSourceResetReproduces(t *testing.T) {
	g := randomGraph(t, 60, 250, 9)
	path := filepath.Join(t.TempDir(), "g.txt.gz")
	if err := graph.SaveEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	src, err := OpenFile(path, FileConfig{DenseIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = src.Close() }()
	if src.NumVertices() != g.NumVertices() || src.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes (%d,%d), want (%d,%d)", src.NumVertices(), src.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	first := drain(t, src)
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	second := drain(t, src)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("position %d differs after Reset: %+v vs %+v", i, first[i], second[i])
		}
	}
	// Natural-order file written from a CSR round-trips the edge array.
	for i, e := range first {
		ge := g.Edge(graph.EdgeID(i))
		if e.U != ge.U || e.V != ge.V {
			t.Fatalf("edge %d endpoints (%d,%d), want (%d,%d)", i, e.U, e.V, ge.U, ge.V)
		}
	}
}

func TestFileSourceErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(filepath.Join(dir, "missing.txt"), FileConfig{}); err == nil {
		t.Fatal("opening missing file succeeded")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("0 1\nnope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bad, FileConfig{}); err == nil {
		t.Fatal("opening malformed file succeeded")
	}
}

func TestGenSourceMatchesDataset(t *testing.T) {
	d := gen.SmallDatasets()[0]
	src := FromDataset(d, 7)
	if src.NumVertices() != d.Vertices || src.NumEdges() != d.Edges {
		t.Fatalf("sizes (%d,%d), want (%d,%d)", src.NumVertices(), src.NumEdges(), d.Vertices, d.Edges)
	}
	g := d.Generate(7)
	edges := drain(t, src)
	if len(edges) != g.NumEdges() {
		t.Fatalf("streamed %d edges, want %d", len(edges), g.NumEdges())
	}
	for i, e := range edges {
		ge := g.Edge(graph.EdgeID(i))
		if e.ID != graph.EdgeID(i) || e.U != ge.U || e.V != ge.V {
			t.Fatalf("edge %d: got %+v, want (%d,%d)", i, e, ge.U, ge.V)
		}
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	again := drain(t, src)
	for i := range edges {
		if edges[i] != again[i] {
			t.Fatalf("position %d differs after Reset", i)
		}
	}
}
