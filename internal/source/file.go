package source

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"github.com/graphpart/graphpart/internal/graph"
)

// FileConfig configures a file-backed edge source.
type FileConfig struct {
	// DenseIDs asserts the file's vertex ids are already dense integers in
	// [0, n), so the interning map is skipped and resident memory stays
	// O(1) in the number of distinct ids. With sparse ids the vertex
	// count becomes maxID+1, which inflates O(n) partitioner state —
	// leave it false for arbitrary SNAP files.
	DenseIDs bool
}

// FileSource streams a SNAP-style edge-list file (gzipped when the path
// ends in ".gz") without ever building a CSR. The format matches
// graph.ReadEdgeList: '#'/'%' comments and blank lines skipped, extra
// columns ignored. Self-loops are dropped; duplicate edges are kept (the
// source has no global edge table to dedupe against — documented in
// DESIGN.md). Edge IDs are assigned sequentially in file order, which
// differs from the CSR's canonical sorted numbering.
//
// OpenFile runs one counting pass so NumVertices/NumEdges are exact; with
// the default interning path the id map built there is retained across
// Resets, so every pass sees identical dense ids. Call Close when done.
type FileSource struct {
	path string
	cfg  FileConfig
	n, m int
	idm  *graph.IDMap // nil when cfg.DenseIDs

	f       *os.File
	gz      *gzip.Reader
	sc      *bufio.Scanner
	line    int
	emitted int
}

var _ EdgeSource = (*FileSource)(nil)

// OpenFile opens path as an EdgeSource, running the counting pass
// immediately so the returned source reports exact sizes.
func OpenFile(path string, cfg FileConfig) (*FileSource, error) {
	s := &FileSource{path: path, cfg: cfg}
	if !cfg.DenseIDs {
		s.idm = graph.NewIDMap()
	}
	if err := s.open(); err != nil {
		return nil, err
	}
	var maxID int64 = -1
	for s.sc.Scan() {
		s.line++
		u, v, skip, err := graph.ParseEdgeLine(s.sc.Text())
		if err != nil {
			_ = s.Close()
			return nil, fmt.Errorf("source: %s line %d: %w", path, s.line, err)
		}
		if skip || u == v {
			continue
		}
		if s.idm != nil {
			s.idm.Intern(u)
			s.idm.Intern(v)
		} else {
			if u > math.MaxInt32 || v > math.MaxInt32 {
				_ = s.Close()
				return nil, fmt.Errorf("source: %s line %d: vertex id exceeds int32 (use interning, not DenseIDs)", path, s.line)
			}
			if u > maxID {
				maxID = u
			}
			if v > maxID {
				maxID = v
			}
		}
		s.m++
	}
	if err := graph.ScanEdgeListError(s.sc.Err(), s.line); err != nil {
		_ = s.Close()
		return nil, fmt.Errorf("source: %s: %w", path, err)
	}
	if s.idm != nil {
		s.n = s.idm.Len()
	} else {
		s.n = int(maxID + 1)
	}
	if err := s.Reset(); err != nil {
		return nil, err
	}
	return s, nil
}

// open (re)opens the file and scanner for a fresh pass.
func (s *FileSource) open() error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("source: opening %s: %w", s.path, err)
	}
	var r io.Reader = f
	var gz *gzip.Reader
	if strings.HasSuffix(s.path, ".gz") {
		gz, err = gzip.NewReader(f)
		if err != nil {
			_ = f.Close()
			return fmt.Errorf("source: gunzipping %s: %w", s.path, err)
		}
		r = gz
	}
	s.f, s.gz, s.sc = f, gz, graph.NewEdgeListScanner(r)
	s.line, s.emitted = 0, 0
	return nil
}

// Close releases the underlying file handle. The source cannot be used
// afterwards.
func (s *FileSource) Close() error {
	var err error
	if s.gz != nil {
		err = s.gz.Close()
		s.gz = nil
	}
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	s.sc = nil
	return err
}

// NumVertices implements EdgeSource.
func (s *FileSource) NumVertices() int { return s.n }

// NumEdges implements EdgeSource.
func (s *FileSource) NumEdges() int { return s.m }

// Reset implements EdgeSource by reopening the file; the id map (when
// interning) is retained so dense ids are stable across passes.
func (s *FileSource) Reset() error {
	if err := s.Close(); err != nil {
		return fmt.Errorf("source: closing %s for reset: %w", s.path, err)
	}
	return s.open()
}

// Next implements EdgeSource.
func (s *FileSource) Next() (Edge, bool, error) {
	if s.sc == nil {
		return Edge{}, false, fmt.Errorf("source: %s: use after Close", s.path)
	}
	for s.sc.Scan() {
		s.line++
		u, v, skip, err := graph.ParseEdgeLine(s.sc.Text())
		if err != nil {
			return Edge{}, false, fmt.Errorf("source: %s line %d: %w", s.path, s.line, err)
		}
		if skip || u == v {
			continue
		}
		var du, dv graph.Vertex
		if s.idm != nil {
			du, dv = s.idm.Intern(u), s.idm.Intern(v)
		} else {
			du, dv = graph.Vertex(u), graph.Vertex(v)
		}
		e := Edge{ID: graph.EdgeID(s.emitted), U: du, V: dv}
		s.emitted++
		return e, true, nil
	}
	if err := graph.ScanEdgeListError(s.sc.Err(), s.line); err != nil {
		return Edge{}, false, fmt.Errorf("source: %s: %w", s.path, err)
	}
	return Edge{}, false, nil
}

// IDMap returns the original-to-dense id mapping built during the counting
// pass, or nil when DenseIDs skipped interning.
func (s *FileSource) IDMap() *graph.IDMap { return s.idm }
