// Package source defines EdgeSource, the streaming substrate that decouples
// partitioners from the in-memory CSR.
//
// An EdgeSource is an iterable, re-windable stream of (EdgeID, U, V) edges
// with known vertex and edge counts. Three families of implementations are
// provided:
//
//   - GraphSource wraps a materialized *graph.Graph in any stream order
//     (the legacy path; byte-identical to the pre-source code).
//   - FileSource scans a SNAP-style edge-list file (optionally gzipped)
//     chunk by chunk and never builds a CSR, so resident memory is
//     O(vertex state), not O(|E|).
//   - GenSource wraps an internal/gen synthetic dataset, retaining only the
//     compact edge slice after generation.
//
// Partitioners that consume an EdgeSource (see partition.StreamPartitioner)
// promise O(p + maintained-state) memory beyond the source itself; the
// source decides what "maintained" costs (a CSR, a file handle, a slice).
package source

import (
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

// Edge is one stream element. ID is the source's edge numbering: for
// GraphSource it is the CSR EdgeID; for FileSource it is the 0-based
// position among emitted (non-comment, non-self-loop) lines.
type Edge struct {
	ID   graph.EdgeID
	U, V graph.Vertex
}

// EdgeSource is an iterable, re-windable stream of edges.
//
// Next returns (edge, true, nil) for each edge, then (zero, false, nil) at
// end of stream; errors surface I/O or parse failures. Reset rewinds to the
// beginning and must reproduce the exact same sequence — multi-pass
// algorithms (degree sketches, two-pass vertex streamers) rely on that.
// Sources are not safe for concurrent use.
type EdgeSource interface {
	// NumVertices returns the number of vertices (dense ids in [0, n)).
	NumVertices() int
	// NumEdges returns the number of edges the stream will emit.
	NumEdges() int
	// Reset rewinds the stream to the first edge.
	Reset() error
	// Next returns the next edge; ok is false at end of stream.
	Next() (e Edge, ok bool, err error)
}

// Order selects how a graph-backed stream is sequenced. The zero value is
// treated as OrderShuffled, matching the historical streaming default.
type Order int

const (
	// OrderShuffled streams edges/vertices in a seeded random order
	// (the common evaluation setting; arrival order is adversarial
	// otherwise).
	OrderShuffled Order = iota + 1
	// OrderNatural streams in EdgeID/vertex-id order.
	OrderNatural
	// OrderBFS streams in breadth-first order from a seeded random root,
	// component by component (matches how crawled graphs arrive).
	OrderBFS
)

// EdgeOrder yields the graph's EdgeIDs in the given order. This is the one
// canonical permutation: streaming.EdgeStream delegates here and
// GraphSource iterates it, so the two paths cannot drift apart.
func EdgeOrder(g *graph.Graph, ord Order, seed uint64) []graph.EdgeID {
	m := g.NumEdges()
	ids := make([]graph.EdgeID, m)
	for i := range ids {
		ids[i] = graph.EdgeID(i)
	}
	switch ord {
	case OrderNatural:
	case OrderBFS:
		ids = ids[:0]
		r := rng.New(seed)
		seen := make([]bool, m)
		order := VertexBFSOrder(g, r)
		for _, v := range order {
			for _, eid := range g.IncidentEdges(v) {
				if !seen[eid] {
					seen[eid] = true
					ids = append(ids, eid)
				}
			}
		}
	default: // OrderShuffled
		r := rng.New(seed)
		r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	}
	return ids
}

// VertexBFSOrder returns all vertices in BFS order from seeded random
// roots, component by component.
func VertexBFSOrder(g *graph.Graph, r *rng.RNG) []graph.Vertex {
	n := g.NumVertices()
	seen := make([]bool, n)
	order := make([]graph.Vertex, 0, n)
	perm := r.Perm(n)
	var queue []graph.Vertex
	for _, root := range perm {
		if seen[root] {
			continue
		}
		seen[root] = true
		queue = append(queue[:0], graph.Vertex(root))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range g.Neighbors(v) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return order
}

// GraphSource streams a materialized graph's edges in a fixed order. It is
// the in-memory EdgeSource: O(|E|) for the permutation (nil for natural
// order) on top of the CSR it wraps.
type GraphSource struct {
	g   *graph.Graph
	ids []graph.EdgeID // nil means natural order
	pos int
}

var _ EdgeSource = (*GraphSource)(nil)

// FromGraph wraps g as an EdgeSource in the given order. ord zero defaults
// to OrderShuffled, like the streaming partitioners always have.
func FromGraph(g *graph.Graph, ord Order, seed uint64) *GraphSource {
	if ord == OrderNatural {
		return &GraphSource{g: g}
	}
	return &GraphSource{g: g, ids: EdgeOrder(g, ord, seed)}
}

// Graph exposes the wrapped graph. Stream partitioners use it to detect the
// in-memory case and keep their legacy byte-identical fast path; anything
// taking an EdgeSource must not require it.
func (s *GraphSource) Graph() *graph.Graph { return s.g }

// NumVertices implements EdgeSource.
func (s *GraphSource) NumVertices() int { return s.g.NumVertices() }

// NumEdges implements EdgeSource.
func (s *GraphSource) NumEdges() int { return s.g.NumEdges() }

// Reset implements EdgeSource.
func (s *GraphSource) Reset() error {
	s.pos = 0
	return nil
}

// Next implements EdgeSource.
func (s *GraphSource) Next() (Edge, bool, error) {
	if s.pos >= s.g.NumEdges() {
		return Edge{}, false, nil
	}
	id := graph.EdgeID(s.pos)
	if s.ids != nil {
		id = s.ids[s.pos]
	}
	s.pos++
	e := s.g.Edge(id)
	return Edge{ID: id, U: e.U, V: e.V}, true, nil
}

// EdgesSource streams a plain edge slice in natural order — the minimal
// in-memory source (8 bytes per edge), used by GenSource so generator CSR
// arrays can be released.
type EdgesSource struct {
	n     int
	edges []graph.Edge
	pos   int
}

var _ EdgeSource = (*EdgesSource)(nil)

// FromEdges wraps an edge slice over n vertices as an EdgeSource.
func FromEdges(n int, edges []graph.Edge) *EdgesSource {
	return &EdgesSource{n: n, edges: edges}
}

// NumVertices implements EdgeSource.
func (s *EdgesSource) NumVertices() int { return s.n }

// NumEdges implements EdgeSource.
func (s *EdgesSource) NumEdges() int { return len(s.edges) }

// Reset implements EdgeSource.
func (s *EdgesSource) Reset() error {
	s.pos = 0
	return nil
}

// Next implements EdgeSource.
func (s *EdgesSource) Next() (Edge, bool, error) {
	if s.pos >= len(s.edges) {
		return Edge{}, false, nil
	}
	e := s.edges[s.pos]
	id := graph.EdgeID(s.pos)
	s.pos++
	return Edge{ID: id, U: e.U, V: e.V}, true, nil
}
