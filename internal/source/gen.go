package source

import (
	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
)

// GenSource streams a synthetic dataset's edges without keeping its CSR
// alive. Sizes are known up front from the dataset registry, so nothing is
// generated until the first Next call; after generation only the compact
// edge slice (8 bytes per edge) is retained and the CSR adjacency arrays
// (~24 bytes per edge) become garbage. The generator still materializes a
// full graph transiently — GenSource bounds steady-state memory, not peak
// generation memory (DESIGN.md records this).
type GenSource struct {
	d     gen.Dataset
	seed  uint64
	edges []graph.Edge
	pos   int
}

var _ EdgeSource = (*GenSource)(nil)

// FromDataset wraps a synthetic dataset as an EdgeSource. Edges stream in
// natural (canonical CSR) order; wrap with FromGraph for other orders if a
// materialized graph is acceptable.
func FromDataset(d gen.Dataset, seed uint64) *GenSource {
	return &GenSource{d: d, seed: seed}
}

// NumVertices implements EdgeSource; known without generating.
func (s *GenSource) NumVertices() int { return s.d.Vertices }

// NumEdges implements EdgeSource; known without generating.
func (s *GenSource) NumEdges() int { return s.d.Edges }

// Reset implements EdgeSource. The generated edge slice is kept, so later
// passes are free.
func (s *GenSource) Reset() error {
	s.pos = 0
	return nil
}

// Next implements EdgeSource, generating the dataset on first use.
func (s *GenSource) Next() (Edge, bool, error) {
	if s.edges == nil {
		// Edges() aliases only the CSR's edge array; dropping the graph
		// itself lets the offset/adjacency arrays be collected.
		s.edges = s.d.Generate(s.seed).Edges()
	}
	if s.pos >= len(s.edges) {
		return Edge{}, false, nil
	}
	e := s.edges[s.pos]
	id := graph.EdgeID(s.pos)
	s.pos++
	return Edge{ID: id, U: e.U, V: e.V}, true, nil
}
