package window

import (
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/graphpart/graphpart/internal/core"
	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
	"github.com/graphpart/graphpart/internal/source"
	"github.com/graphpart/graphpart/internal/streaming"
)

func randomGraph(seed uint64, n, extra int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex(r.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

func TestWindowComplete(t *testing.T) {
	g := randomGraph(1, 300, 900)
	for _, p := range []int{1, 2, 5, 10} {
		a, err := New(Config{Seed: 2}).Partition(g, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		// Window rounds can overshoot only via the final sweep; allow a
		// modest slack.
		if err := partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 1.5}); err != nil {
			t.Fatalf("p=%d invalid: %v", p, err)
		}
	}
}

func TestWindowEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	a, err := New(Config{}).Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != 0 {
		t.Fatal("nonempty assignment for empty graph")
	}
	if _, err := New(Config{}).Partition(nil, 2); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestWindowTinyWindow(t *testing.T) {
	// Even a pathologically small window must produce a complete valid
	// assignment (quality degrades, correctness does not).
	g := randomGraph(3, 200, 600)
	a, err := New(Config{Seed: 4, WindowEdges: 20}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 1.5}); err != nil {
		t.Fatalf("tiny window invalid: %v", err)
	}
}

func TestWindowOrders(t *testing.T) {
	g := randomGraph(5, 150, 450)
	for _, ord := range []streaming.Order{streaming.OrderBFS, streaming.OrderShuffled, streaming.OrderNatural} {
		a, err := New(Config{Seed: 6, Order: ord}).Partition(g, 3)
		if err != nil {
			t.Fatalf("order %d: %v", ord, err)
		}
		if err := partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 1.5}); err != nil {
			t.Fatalf("order %d invalid: %v", ord, err)
		}
	}
}

func TestWindowDisconnected(t *testing.T) {
	b := graph.NewBuilder(30)
	for i := 0; i < 10; i++ {
		v := graph.Vertex(3 * i)
		_ = b.AddEdge(v, v+1)
		_ = b.AddEdge(v+1, v+2)
		_ = b.AddEdge(v, v+2)
	}
	g := b.Build()
	a, err := New(Config{Seed: 7}).Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 1.5}); err != nil {
		t.Fatalf("disconnected invalid: %v", err)
	}
}

// TestWindowQualityBetweenStreamingAndTLP: the design intent — a generous
// window should put TLP-SW's quality between edge-at-a-time streaming
// (DBH) and full TLP on a community-structured graph.
func TestWindowQualityBetweenStreamingAndTLP(t *testing.T) {
	g := gen.PlantedCommunities(gen.CommunityConfig{
		Vertices: 800, Communities: 16, TargetEdges: 8000, IntraFraction: 0.8,
	}, rng.New(8))
	p := 8
	rfOf := func(pt partition.Partitioner) float64 {
		a, err := pt.Partition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := partition.ReplicationFactor(g, a)
		if err != nil {
			t.Fatal(err)
		}
		return rf
	}
	rfTLP := rfOf(core.MustNew(core.Options{Seed: 9}))
	rfSW := rfOf(New(Config{Seed: 9}))
	rfDBH := rfOf(streaming.NewDBH(9))
	t.Logf("TLP=%.3f TLP-SW=%.3f DBH=%.3f", rfTLP, rfSW, rfDBH)
	if rfSW >= rfDBH {
		t.Fatalf("sliding window RF %.3f not below DBH %.3f", rfSW, rfDBH)
	}
	if rfSW > 2.0*rfTLP {
		t.Fatalf("sliding window RF %.3f too far above full TLP %.3f", rfSW, rfTLP)
	}
}

// TestWindowWiderIsBetter: growing the window should not hurt quality much;
// typically it helps. Assert the generous window is at least not worse than
// the starved one by a large margin.
func TestWindowWiderIsBetter(t *testing.T) {
	g := gen.PowerLawCommunities(gen.PowerLawCommunityConfig{
		Vertices: 2000, TargetEdges: 16000, Exponent: 2.1, IntraFraction: 0.55,
	}, rng.New(10))
	p := 8
	rfAt := func(window int) float64 {
		a, err := New(Config{Seed: 11, WindowEdges: window}).Partition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := partition.ReplicationFactor(g, a)
		if err != nil {
			t.Fatal(err)
		}
		return rf
	}
	narrow := rfAt(200)
	wide := rfAt(4 * partition.Capacity(g.NumEdges(), p))
	t.Logf("narrow window RF=%.3f wide RF=%.3f", narrow, wide)
	if wide > narrow*1.15 {
		t.Fatalf("wide window much worse than narrow: %.3f vs %.3f", wide, narrow)
	}
}

func TestWindowChannelAPIDirect(t *testing.T) {
	g := randomGraph(12, 100, 200)
	stream := make(chan StreamEdge, 16)
	go func() {
		defer close(stream)
		for id, e := range g.Edges() {
			stream <- StreamEdge{ID: graph.EdgeID(id), U: e.U, V: e.V}
		}
	}()
	a, stats, err := New(Config{Seed: 13}).PartitionChannel(stream, g.NumVertices(), g.NumEdges(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 1.5}); err != nil {
		t.Fatalf("stream API invalid: %v", err)
	}
	if stats.StreamedEdges != g.NumEdges() {
		t.Fatalf("stats counted %d streamed edges, want %d", stats.StreamedEdges, g.NumEdges())
	}
}

func TestWindowRejectsBadP(t *testing.T) {
	stream := make(chan StreamEdge)
	close(stream)
	if _, _, err := New(Config{}).PartitionChannel(stream, 5, 0, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
}

// TestWindowSourceMatchesGraphPath: Partition and PartitionStream over the
// equivalent graph-backed source must agree byte for byte — the EdgeSource
// rewiring must not change results.
func TestWindowSourceMatchesGraphPath(t *testing.T) {
	g := randomGraph(15, 200, 500)
	for _, ord := range []source.Order{source.OrderBFS, source.OrderShuffled, source.OrderNatural} {
		w := New(Config{Seed: 16, Order: ord})
		a, err := w.Partition(g, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := w.PartitionStream(source.FromGraph(g, ord, 16), 5)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < g.NumEdges(); id++ {
			ka, _ := a.PartitionOf(graph.EdgeID(id))
			kb, _ := b.PartitionOf(graph.EdgeID(id))
			if ka != kb {
				t.Fatalf("order %d: edge %d placed %d vs %d", ord, id, ka, kb)
			}
		}
	}
}

// TestWindowStats checks the reported stats are consistent with the run:
// every edge streamed, peak bounded by the configured window during growth
// (plus the final drain's remainder), swept edges small.
func TestWindowStats(t *testing.T) {
	g := randomGraph(17, 300, 900)
	const win = 128
	w := New(Config{Seed: 18, WindowEdges: win})
	a, stats, err := w.PartitionStreamStats(source.FromGraph(g, source.OrderBFS, 18), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 1.5}); err != nil {
		t.Fatal(err)
	}
	if stats.StreamedEdges != g.NumEdges() {
		t.Fatalf("streamed %d edges, want %d", stats.StreamedEdges, g.NumEdges())
	}
	if stats.PeakWindowEdges < 1 || stats.PeakWindowEdges > g.NumEdges() {
		t.Fatalf("implausible peak window %d", stats.PeakWindowEdges)
	}
	if stats.Refills < 1 {
		t.Fatalf("no refills recorded for a %d-edge stream with window %d", g.NumEdges(), win)
	}
	if stats.SweptEdges > g.NumEdges()/2 {
		t.Fatalf("%d of %d edges swept — window growth did almost nothing", stats.SweptEdges, g.NumEdges())
	}
}

// TestWindowFileSource runs TLP-SW end-to-end from a file-backed source.
func TestWindowFileSource(t *testing.T) {
	g := randomGraph(19, 150, 400)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := graph.SaveEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	src, err := source.OpenFile(path, source.FileConfig{DenseIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = src.Close() }()
	a, stats, err := New(Config{Seed: 20}).PartitionStreamStats(src, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.AssignedCount(); got != g.NumEdges() {
		t.Fatalf("%d of %d edges assigned", got, g.NumEdges())
	}
	if stats.StreamedEdges != g.NumEdges() {
		t.Fatalf("streamed %d, want %d", stats.StreamedEdges, g.NumEdges())
	}
	// A natural-order file stream matches the natural-order graph path.
	b, err := New(Config{Seed: 20, Order: source.OrderNatural}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = b // file order is natural; assert equality edge by edge
	for id := 0; id < g.NumEdges(); id++ {
		ka, _ := a.PartitionOf(graph.EdgeID(id))
		kb, _ := b.PartitionOf(graph.EdgeID(id))
		if ka != kb {
			t.Fatalf("edge %d placed %d via file vs %d via graph", id, ka, kb)
		}
	}
}

// Property: TLP-SW always produces a complete assignment for random graphs,
// random window sizes and partition counts.
func TestWindowValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(100)
		g := randomGraph(seed, n, r.Intn(3*n))
		p := 1 + r.Intn(6)
		win := 16 + r.Intn(400)
		a, err := New(Config{Seed: seed, WindowEdges: win}).Partition(g, p)
		if err != nil {
			return false
		}
		return partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 2.0}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWindow(b *testing.B) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 10000, TargetEdges: 50000, Exponent: 2.1}, rng.New(14))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(Config{Seed: uint64(i)}).Partition(g, 10); err != nil {
			b.Fatal(err)
		}
	}
}
