package window

import (
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
)

func feed(st *windowState, edges ...[3]int32) {
	for _, e := range edges {
		st.addEdge(StreamEdge{ID: graph.EdgeID(e[0]), U: e[1], V: e[2]})
	}
}

func TestStateAddAndAbsorb(t *testing.T) {
	st := newWindowState(4, 1)
	st.beginPartition()
	feed(st, [3]int32{0, 0, 1}, [3]int32{1, 1, 2}, [3]int32{2, 2, 3})
	if st.windowEdges != 3 {
		t.Fatalf("window edges %d", st.windowEdges)
	}
	a := partition.MustNew(3, 2)
	// Absorb vertex 1 as the seed: no members yet, so nothing assigned,
	// and the frontier gains 0 and 2.
	if n := st.absorb(1, a, 0, 10); n != 0 {
		t.Fatalf("seed absorb assigned %d", n)
	}
	if !st.isMember(1) {
		t.Fatal("seed not a member")
	}
	if st.eout != 2 {
		t.Fatalf("eout %d, want 2", st.eout)
	}
	// Absorb 0: edge (0,1) assigned.
	if n := st.absorb(0, a, 0, 10); n != 1 {
		t.Fatalf("absorb(0) assigned %d", n)
	}
	if k, ok := a.PartitionOf(0); !ok || k != 0 {
		t.Fatal("edge 0 not in partition 0")
	}
	if st.windowEdges != 2 {
		t.Fatalf("window edges %d after assignment", st.windowEdges)
	}
}

func TestStateCapacityPartialAbsorb(t *testing.T) {
	// Triangle: absorbing the third vertex with room=1 must assign only
	// one of its two member edges and not mark it a member.
	st := newWindowState(3, 2)
	st.beginPartition()
	feed(st, [3]int32{0, 0, 1}, [3]int32{1, 1, 2}, [3]int32{2, 0, 2})
	a := partition.MustNew(3, 1)
	st.absorb(0, a, 0, 10)
	st.absorb(1, a, 0, 10)
	if n := st.absorb(2, a, 0, 1); n != 1 {
		t.Fatalf("room-limited absorb assigned %d", n)
	}
	if st.isMember(2) {
		t.Fatal("partially absorbed vertex recorded as member")
	}
}

func TestStateMemberMemberEdges(t *testing.T) {
	// Edge arriving between two existing members is picked up by
	// absorbMemberEdges.
	st := newWindowState(3, 3)
	st.beginPartition()
	feed(st, [3]int32{0, 0, 1})
	a := partition.MustNew(2, 1)
	st.absorb(0, a, 0, 10)
	st.absorb(1, a, 0, 10)
	// Late edge between members 0..1? Use vertex 2: make it a member too,
	// then deliver an edge between members.
	st.absorb(2, a, 0, 10) // isolated vertex becomes member, no edges
	feed(st, [3]int32{1, 1, 2})
	if n := st.absorbMemberEdges(a, 0, 10); n != 1 {
		t.Fatalf("absorbMemberEdges assigned %d, want 1", n)
	}
	if k, ok := a.PartitionOf(1); !ok || k != 0 {
		t.Fatal("member-member edge not assigned")
	}
	if st.absorbMemberEdges(a, 0, 0) != 0 {
		t.Fatal("zero room should assign nothing")
	}
}

func TestStateCompact(t *testing.T) {
	st := newWindowState(4, 4)
	st.beginPartition()
	feed(st, [3]int32{0, 0, 1}, [3]int32{1, 0, 2}, [3]int32{2, 0, 3})
	a := partition.MustNew(3, 1)
	st.absorb(1, a, 0, 10)
	st.absorb(0, a, 0, 10) // assigns (0,1)
	st.absorb(2, a, 0, 10) // assigns (0,2)
	st.absorb(3, a, 0, 10) // assigns (0,3); vertex 0's arcs now all dead
	if deg := st.liveDeg[0]; deg != 0 {
		t.Fatalf("liveDeg[0] = %d after everything assigned", deg)
	}
	// compact removed the exhausted adjacency entirely.
	if _, ok := st.adj[0]; ok && len(st.adj[0]) > 0 {
		for _, arc := range st.adj[0] {
			if !arc.dead {
				t.Fatal("live arc survived full absorption")
			}
		}
	}
}

func TestStatePickSeed(t *testing.T) {
	st := newWindowState(3, 5)
	st.beginPartition()
	if _, ok := st.pickSeed(); ok {
		t.Fatal("empty window produced a seed")
	}
	feed(st, [3]int32{0, 1, 2})
	v, ok := st.pickSeed()
	if !ok || (v != 1 && v != 2) {
		t.Fatalf("seed %d, ok=%v", v, ok)
	}
	a := partition.MustNew(1, 1)
	st.absorb(1, a, 0, 10)
	st.absorb(2, a, 0, 10)
	if _, ok := st.pickSeed(); ok {
		t.Fatal("all-member window produced a seed")
	}
	if st.pickSeedPeek() {
		t.Fatal("peek found a seed among members")
	}
}
