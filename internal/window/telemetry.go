package window

import "github.com/graphpart/graphpart/internal/obs"

// Cumulative runtime counters, fed once per run from the Stats the run
// already maintains — record-only, never read back.
var (
	mWindowRuns  = obs.Default.Counter("tlpsw.runs")
	mRefills     = obs.Default.Counter("tlpsw.refills")
	mStreamed    = obs.Default.Counter("tlpsw.streamed_edges")
	mWindowSwept = obs.Default.Counter("tlpsw.swept_edges")
	gPeakWindow  = obs.Default.Gauge("tlpsw.peak_window_edges")
)

// recordRunMetrics publishes a finished run's stats to the metrics
// registry.
func recordRunMetrics(stats *Stats) {
	mWindowRuns.Add(1)
	mRefills.Add(int64(stats.Refills))
	mStreamed.Add(int64(stats.StreamedEdges))
	mWindowSwept.Add(int64(stats.SweptEdges))
	gPeakWindow.Max(int64(stats.PeakWindowEdges))
}
