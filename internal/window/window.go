// Package window implements the paper's stated future work (Section V): a
// sliding-window variant of TLP that partitions an edge stream while holding
// only a bounded window of unassigned edges in memory, with the stream
// producer running concurrently with the partitioner.
//
// The partitioner repeatedly (a) refills the window from the stream up to
// its capacity, (b) grows the current partition inside the window with the
// same two-stage criteria as TLP — Stage I (window modularity <= 1) absorbs
// the best common-neighbour-overlap frontier vertex, Stage II absorbs the
// best modularity-gain vertex — and (c) evicts assigned edges, freeing
// window space. Compared to full TLP, decisions see only the window, so
// quality degrades gracefully as the window shrinks; compared to streaming
// partitioners, placement still happens cluster-at-a-time rather than
// edge-at-a-time.
//
// The stream itself comes from a source.EdgeSource — in-memory, file-backed
// or generator-backed — so the partitioner's resident memory is the window
// plus O(n) vertex bookkeeping, never the full edge set.
package window

import (
	"fmt"
	"sort"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/obs"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/source"
)

// StreamEdge is one edge of the input stream, carrying the EdgeID used in
// the resulting Assignment. It is the canonical source.Edge.
type StreamEdge = source.Edge

// Config tunes the sliding-window partitioner.
type Config struct {
	// Seed drives seed-vertex selection and the default stream order.
	Seed uint64
	// WindowEdges bounds the number of unassigned edges held in memory;
	// zero defaults to 4*C (four partitions' worth).
	WindowEdges int
	// Order selects how Partition streams the graph's edges; zero means
	// BFS order (the order the paper's future-work sketch prescribes).
	Order source.Order
}

// Stats reports the window behaviour of one partitioning run, making
// window-size ablations measurable.
type Stats struct {
	// PeakWindowEdges is the largest number of edges simultaneously
	// resident in the window, including the final drain.
	PeakWindowEdges int
	// Refills counts refill rounds that pulled at least one edge from the
	// stream.
	Refills int
	// StreamedEdges counts edges received from the stream.
	StreamedEdges int
	// SweptEdges counts edges the final least-load sweep had to place —
	// edges evicted from window growth rather than absorbed by a
	// partition (stream remainder beyond capacity rounding, or stranded
	// window edges).
	SweptEdges int
}

// Partitioner is the sliding-window TLP variant.
type Partitioner struct {
	cfg Config
}

var (
	_ partition.Partitioner       = (*Partitioner)(nil)
	_ partition.StreamPartitioner = (*Partitioner)(nil)
)

// New returns a sliding-window partitioner.
func New(cfg Config) *Partitioner { return &Partitioner{cfg: cfg} }

// Name implements partition.Partitioner.
func (w *Partitioner) Name() string { return "TLP-SW" }

// Partition streams g's edges through the window and returns a complete
// assignment; it is PartitionStream over a graph-backed source in the
// configured order.
func (w *Partitioner) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	if g == nil {
		return nil, fmt.Errorf("window: nil graph")
	}
	ord := w.cfg.Order
	if ord == 0 {
		ord = source.OrderBFS
	}
	return w.PartitionStream(source.FromGraph(g, ord, w.cfg.Seed), p)
}

// PartitionStream implements partition.StreamPartitioner.
func (w *Partitioner) PartitionStream(src source.EdgeSource, p int) (*partition.Assignment, error) {
	a, _, err := w.PartitionStreamStats(src, p)
	return a, err
}

// PartitionStreamStats is PartitionStream plus the window Stats of the run.
// A producer goroutine feeds the window from the source concurrently with
// the partitioner, as the paper's future-work sketch suggests.
func (w *Partitioner) PartitionStreamStats(src source.EdgeSource, p int) (*partition.Assignment, Stats, error) {
	if src == nil {
		return nil, Stats{}, fmt.Errorf("window: nil edge source")
	}
	if err := src.Reset(); err != nil {
		return nil, Stats{}, fmt.Errorf("window: resetting source: %w", err)
	}
	stream := make(chan StreamEdge, 1024)
	var produceErr error
	go func() {
		// produceErr is written before close(stream); the consumer only
		// reads it after observing the close, which the Go memory model
		// orders after this write.
		defer close(stream)
		for {
			e, ok, err := src.Next()
			if err != nil {
				produceErr = err
				return
			}
			if !ok {
				return
			}
			stream <- e
		}
	}()
	a, stats, err := w.PartitionChannel(stream, src.NumVertices(), src.NumEdges(), p)
	if err != nil {
		// Unblock the producer before returning so it never leaks.
		for range stream {
		}
		return nil, stats, err
	}
	if produceErr != nil {
		return nil, stats, fmt.Errorf("window: edge source: %w", produceErr)
	}
	return a, stats, nil
}

// PartitionChannel consumes an edge stream for a graph with the given
// vertex and edge counts, assigning every streamed edge to one of p
// partitions. Every EdgeID in [0, numEdges) must appear exactly once on the
// stream. This is the lower-level channel API; PartitionStream wires an
// EdgeSource to it.
func (w *Partitioner) PartitionChannel(stream <-chan StreamEdge, numVertices, numEdges, p int) (*partition.Assignment, Stats, error) {
	a, err := partition.New(numEdges, p)
	if err != nil {
		return nil, Stats{}, err
	}
	if numEdges == 0 {
		return a, Stats{}, nil
	}
	capC := partition.Capacity(numEdges, p)
	windowCap := w.cfg.WindowEdges
	if windowCap <= 0 {
		// Default: four partitions' worth of context, capped so the
		// per-step frontier scans (this reference implementation
		// evaluates candidates by scanning the window-bounded frontier)
		// stay tractable on multi-hundred-thousand-edge streams.
		windowCap = 4 * capC
		if windowCap > 50000 {
			windowCap = 50000
		}
	}
	if windowCap < 16 {
		windowCap = 16
	}
	sp := obs.Start("tlpsw.partition", obs.Int("p", p),
		obs.Int("edges", numEdges), obs.Int("window_cap", windowCap))
	st := newWindowState(numVertices, w.cfg.Seed)
	st.refill(stream, windowCap, &sp)
	for k := 0; k < p; k++ {
		st.beginPartition()
		gsp := sp.Child("tlpsw.grow", obs.Int("k", k))
		ein := 0
		for ein < capC {
			if st.windowEdges == 0 {
				st.refill(stream, windowCap, &sp)
				if st.windowEdges == 0 {
					break // stream exhausted
				}
			}
			if st.eout == 0 {
				// Frontier exhausted: reseed inside the window.
				seed, ok := st.pickSeed()
				if !ok {
					// Every live window vertex is already a member:
					// the remaining live edges are member-member
					// internals of this partition; take them.
					n := st.absorbMemberEdges(a, k, capC-ein)
					ein += n
					st.refill(stream, windowCap, &sp)
					if n == 0 && st.windowEdges == 0 {
						break
					}
					if n == 0 && st.pickSeedPeek() == false {
						break // defensive: no progress possible
					}
					continue
				}
				ein += st.absorb(seed, a, k, capC-ein)
				continue
			}
			var v graph.Vertex
			var ok bool
			if int64(ein) <= st.eout {
				v, ok = st.selectStage1()
			} else {
				v, ok = st.selectStage2(int64(ein))
			}
			if !ok {
				st.eout = 0 // defensive resync; forces reseed
				continue
			}
			ein += st.absorb(v, a, k, capC-ein)
			// Opportunistic refill keeps the window full so growth
			// decisions see as much context as allowed.
			if st.windowEdges < windowCap/2 {
				st.refill(stream, windowCap, &sp)
			}
		}
		gsp.EndWith(obs.Int("ein", ein), obs.Int("window", st.windowEdges))
	}
	// Any edges still unassigned (stream remainder beyond total capacity
	// rounding, or stranded window edges) sweep to the lightest loads.
	ssp := sp.Child("tlpsw.sweep")
	st.drain(stream)
	// Collect the stragglers and sweep them in EdgeID order: map iteration
	// order is randomised, and the least-load rule depends on the order
	// edges are placed, so the sweep must not follow it.
	var leftover []graph.EdgeID
	for _, arcs := range st.adj {
		for _, arc := range arcs {
			if !arc.dead && !a.IsAssigned(arc.eid) {
				leftover = append(leftover, arc.eid) //lint:ignore GL001 swept in sorted EdgeID order below
			}
		}
	}
	sort.Slice(leftover, func(i, j int) bool { return leftover[i] < leftover[j] })
	swept := 0
	var prev graph.EdgeID
	for i, eid := range leftover {
		if i > 0 && eid == prev {
			continue // each live edge appears in both endpoints' arc lists
		}
		prev = eid
		best := 0
		for k := 1; k < p; k++ {
			if a.Load(k) < a.Load(best) {
				best = k
			}
		}
		a.Assign(eid, best)
		swept++
	}
	stats := Stats{
		PeakWindowEdges: st.peakWindow,
		Refills:         st.refills,
		StreamedEdges:   st.streamed,
		SweptEdges:      swept,
	}
	ssp.EndWith(obs.Int("swept", swept))
	recordRunMetrics(&stats)
	sp.EndWith(obs.Int("peak_window", stats.PeakWindowEdges),
		obs.Int("refills", stats.Refills), obs.Int("streamed", stats.StreamedEdges))
	return a, stats, nil
}
