// Package window implements the paper's stated future work (Section V): a
// sliding-window variant of TLP that partitions an edge stream while holding
// only a bounded window of unassigned edges in memory, with the stream
// producer running concurrently with the partitioner.
//
// The partitioner repeatedly (a) refills the window from the stream up to
// its capacity, (b) grows the current partition inside the window with the
// same two-stage criteria as TLP — Stage I (window modularity <= 1) absorbs
// the best common-neighbour-overlap frontier vertex, Stage II absorbs the
// best modularity-gain vertex — and (c) evicts assigned edges, freeing
// window space. Compared to full TLP, decisions see only the window, so
// quality degrades gracefully as the window shrinks; compared to streaming
// partitioners, placement still happens cluster-at-a-time rather than
// edge-at-a-time.
package window

import (
	"fmt"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/streaming"
)

// StreamEdge is one edge of the input stream, carrying the EdgeID used in
// the resulting Assignment.
type StreamEdge struct {
	ID   graph.EdgeID
	U, V graph.Vertex
}

// Config tunes the sliding-window partitioner.
type Config struct {
	// Seed drives seed-vertex selection and the default stream order.
	Seed uint64
	// WindowEdges bounds the number of unassigned edges held in memory;
	// zero defaults to 4*C (four partitions' worth).
	WindowEdges int
	// Order selects how Partition streams the graph's edges; zero means
	// BFS order (the order the paper's future-work sketch prescribes).
	Order streaming.Order
}

// Partitioner is the sliding-window TLP variant.
type Partitioner struct {
	cfg Config
}

var _ partition.Partitioner = (*Partitioner)(nil)

// New returns a sliding-window partitioner.
func New(cfg Config) *Partitioner { return &Partitioner{cfg: cfg} }

// Name implements partition.Partitioner.
func (w *Partitioner) Name() string { return "TLP-SW" }

// Partition streams g's edges through the window and returns a complete
// assignment. The producer goroutine feeding the stream runs concurrently
// with the consumer, as the paper's future-work sketch suggests.
func (w *Partitioner) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	if g == nil {
		return nil, fmt.Errorf("window: nil graph")
	}
	ord := w.cfg.Order
	if ord == 0 {
		ord = streaming.OrderBFS
	}
	ids := streaming.EdgeStream(g, ord, w.cfg.Seed)
	stream := make(chan StreamEdge, 1024)
	go func() {
		defer close(stream)
		for _, id := range ids {
			e := g.Edge(id)
			stream <- StreamEdge{ID: id, U: e.U, V: e.V}
		}
	}()
	return w.PartitionStream(stream, g.NumVertices(), g.NumEdges(), p)
}

// PartitionStream consumes an edge stream for a graph with the given vertex
// and edge counts, assigning every streamed edge to one of p partitions.
// Every EdgeID in [0, numEdges) must appear exactly once on the stream.
func (w *Partitioner) PartitionStream(stream <-chan StreamEdge, numVertices, numEdges, p int) (*partition.Assignment, error) {
	a, err := partition.New(numEdges, p)
	if err != nil {
		return nil, err
	}
	if numEdges == 0 {
		return a, nil
	}
	capC := partition.Capacity(numEdges, p)
	windowCap := w.cfg.WindowEdges
	if windowCap <= 0 {
		// Default: four partitions' worth of context, capped so the
		// per-step frontier scans (this reference implementation
		// evaluates candidates by scanning the window-bounded frontier)
		// stay tractable on multi-hundred-thousand-edge streams.
		windowCap = 4 * capC
		if windowCap > 50000 {
			windowCap = 50000
		}
	}
	if windowCap < 16 {
		windowCap = 16
	}
	st := newWindowState(numVertices, w.cfg.Seed)
	st.refill(stream, windowCap)
	for k := 0; k < p; k++ {
		st.beginPartition()
		ein := 0
		for ein < capC {
			if st.windowEdges == 0 {
				st.refill(stream, windowCap)
				if st.windowEdges == 0 {
					break // stream exhausted
				}
			}
			if st.eout == 0 {
				// Frontier exhausted: reseed inside the window.
				seed, ok := st.pickSeed()
				if !ok {
					// Every live window vertex is already a member:
					// the remaining live edges are member-member
					// internals of this partition; take them.
					n := st.absorbMemberEdges(a, k, capC-ein)
					ein += n
					st.refill(stream, windowCap)
					if n == 0 && st.windowEdges == 0 {
						break
					}
					if n == 0 && st.pickSeedPeek() == false {
						break // defensive: no progress possible
					}
					continue
				}
				ein += st.absorb(seed, a, k, capC-ein)
				continue
			}
			var v graph.Vertex
			var ok bool
			if int64(ein) <= st.eout {
				v, ok = st.selectStage1()
			} else {
				v, ok = st.selectStage2(int64(ein))
			}
			if !ok {
				st.eout = 0 // defensive resync; forces reseed
				continue
			}
			ein += st.absorb(v, a, k, capC-ein)
			// Opportunistic refill keeps the window full so growth
			// decisions see as much context as allowed.
			if st.windowEdges < windowCap/2 {
				st.refill(stream, windowCap)
			}
		}
	}
	// Any edges still unassigned (stream remainder beyond total capacity
	// rounding, or stranded window edges) sweep to the lightest loads.
	st.drain(stream)
	for _, arcs := range st.adj {
		for _, arc := range arcs {
			if arc.dead {
				continue
			}
			if !a.IsAssigned(arc.eid) {
				best := 0
				for k := 1; k < p; k++ {
					if a.Load(k) < a.Load(best) {
						best = k
					}
				}
				a.Assign(arc.eid, best)
			}
		}
	}
	return a, nil
}
