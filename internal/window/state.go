package window

import (
	"sort"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/obs"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

// arc is one directed half of a window edge in a vertex's adjacency list.
// Dead arcs are tombstones compacted lazily.
type arc struct {
	nbr  graph.Vertex
	eid  graph.EdgeID
	dead bool
}

// windowState is the bounded in-memory view of the unassigned stream plus
// the current partition's growth bookkeeping.
type windowState struct {
	rand *rng.RNG
	// adj[v] holds the live window arcs of v (plus tombstones).
	adj map[graph.Vertex][]arc
	// liveDeg[v] counts v's live window arcs.
	liveDeg map[graph.Vertex]int32
	// windowEdges is the number of live (unassigned, in-window) edges.
	windowEdges int

	// epoch-stamped per-partition state (reset by beginPartition).
	epoch       int32
	memberEpoch map[graph.Vertex]int32
	cinEpoch    map[graph.Vertex]int32
	cin         map[graph.Vertex]int32
	frontier    []graph.Vertex
	// eout is the number of live window edges with exactly one endpoint
	// in the current partition.
	eout int64
	// seedStack holds recently-seen vertices as reseed candidates; popped
	// lazily (dead or member entries are discarded), giving amortised
	// O(1) seed selection instead of scanning the whole window.
	seedStack []graph.Vertex
	// markMap/markEpoch are the reusable common-neighbour scratch for
	// mu1; an epoch bump invalidates all marks without clearing.
	markMap   map[graph.Vertex]int32
	markEpoch int32

	// Stats counters (reported via window.Stats).
	peakWindow int // largest windowEdges ever observed
	refills    int // refill rounds that pulled at least one edge
	streamed   int // edges received from the stream
}

func newWindowState(numVertices int, seed uint64) *windowState {
	return &windowState{
		rand:        rng.New(seed ^ 0x57494E), // "WIN"
		adj:         make(map[graph.Vertex][]arc),
		liveDeg:     make(map[graph.Vertex]int32),
		memberEpoch: make(map[graph.Vertex]int32),
		cinEpoch:    make(map[graph.Vertex]int32),
		cin:         make(map[graph.Vertex]int32),
		markMap:     make(map[graph.Vertex]int32),
	}
}

// refill pulls edges from the stream until the window reaches windowCap live
// edges or the stream closes. New edges incident to current members extend
// the frontier and eout. sp is the run's trace span; refills that pulled
// edges are recorded on it as instants (record-only — the span never
// influences what is pulled).
func (st *windowState) refill(stream <-chan StreamEdge, windowCap int, sp *obs.Span) {
	pulled := false
	for st.windowEdges < windowCap {
		e, ok := <-stream
		if !ok {
			break
		}
		st.addEdge(e)
		pulled = true
	}
	if pulled {
		st.refills++
		sp.Event("tlpsw.refill",
			obs.Int("window", st.windowEdges), obs.Int("streamed", st.streamed))
	}
}

// drain consumes the rest of the stream into the window (used by the final
// sweep; window bounds no longer matter once partitions are full).
func (st *windowState) drain(stream <-chan StreamEdge) {
	for e := range stream {
		st.addEdge(e)
	}
}

func (st *windowState) addEdge(e StreamEdge) {
	st.adj[e.U] = append(st.adj[e.U], arc{nbr: e.V, eid: e.ID})
	st.adj[e.V] = append(st.adj[e.V], arc{nbr: e.U, eid: e.ID})
	st.liveDeg[e.U]++
	st.liveDeg[e.V]++
	st.windowEdges++
	st.streamed++
	if st.windowEdges > st.peakWindow {
		st.peakWindow = st.windowEdges
	}
	st.seedStack = append(st.seedStack, e.U)
	um, vm := st.isMember(e.U), st.isMember(e.V)
	switch {
	case um && vm:
		// Both inside the growing partition: counted as external on
		// neither side; it will be absorbed when either endpoint is
		// re-touched. Treat as frontier via cin of neither — simplest
		// correct handling is to leave it; the reseed path assigns it.
	case um:
		st.eout++
		st.touchFrontier(e.V)
	case vm:
		st.eout++
		st.touchFrontier(e.U)
	}
}

func (st *windowState) beginPartition() {
	st.epoch++
	st.frontier = st.frontier[:0]
	st.eout = 0
}

func (st *windowState) isMember(v graph.Vertex) bool { return st.memberEpoch[v] == st.epoch }

func (st *windowState) inFrontier(v graph.Vertex) bool { return st.cinEpoch[v] == st.epoch }

func (st *windowState) touchFrontier(u graph.Vertex) {
	if !st.inFrontier(u) {
		st.cinEpoch[u] = st.epoch
		st.cin[u] = 0
		st.frontier = append(st.frontier, u)
	}
	st.cin[u]++
}

// pickSeed returns a vertex with live window edges, popping the lazy seed
// stack (amortised O(1)); a full map scan only happens when the stack is
// exhausted, and its result refills the stack.
func (st *windowState) pickSeed() (graph.Vertex, bool) {
	for len(st.seedStack) > 0 {
		v := st.seedStack[len(st.seedStack)-1]
		st.seedStack = st.seedStack[:len(st.seedStack)-1]
		if st.liveDeg[v] > 0 && !st.isMember(v) {
			return v, true
		}
	}
	// Map iteration order is randomised; sort the refilled stack so seed
	// selection (and with it the whole run) is deterministic.
	for v, d := range st.liveDeg {
		if d > 0 && !st.isMember(v) {
			st.seedStack = append(st.seedStack, v) //lint:ignore GL001 stack sorted before use below
		}
	}
	if len(st.seedStack) == 0 {
		return 0, false
	}
	sort.Slice(st.seedStack, func(i, j int) bool { return st.seedStack[i] < st.seedStack[j] })
	return st.pickSeed()
}

// absorbMemberEdges assigns live edges whose endpoints are both members of
// the current partition (up to room of them); such edges appear when the
// stream delivers an edge between two already-absorbed vertices.
func (st *windowState) absorbMemberEdges(a *partition.Assignment, k, room int) int {
	if room <= 0 {
		return 0
	}
	assigned := 0
	// Sorted member order keeps the run deterministic under Go's
	// randomised map iteration.
	members := make([]graph.Vertex, 0, len(st.adj))
	for v := range st.adj {
		if st.isMember(v) {
			members = append(members, v) //lint:ignore GL001 sorted on the next line
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for _, v := range members {
		arcs := st.adj[v]
		for i := range arcs {
			if assigned >= room {
				return assigned
			}
			if arcs[i].dead || !st.isMember(arcs[i].nbr) {
				continue
			}
			a.Assign(arcs[i].eid, k)
			eid := arcs[i].eid
			st.killArc(v, i)
			st.killArcTo(arcs[i].nbr, eid)
			st.windowEdges--
			assigned++
		}
	}
	return assigned
}

// pickSeedPeek reports whether a seed is available without consuming RNG.
func (st *windowState) pickSeedPeek() bool {
	for v, d := range st.liveDeg {
		if d > 0 && !st.isMember(v) {
			return true
		}
	}
	return false
}

// absorb adds v to the current partition: live window edges between v and
// members are assigned to partition k (at most room of them), and v's other
// live arcs extend the frontier. Returns the number of edges assigned.
func (st *windowState) absorb(v graph.Vertex, a *partition.Assignment, k, room int) int {
	assigned := 0
	arcs := st.adj[v]
	for i := range arcs {
		if arcs[i].dead {
			continue
		}
		u := arcs[i].nbr
		if !st.isMember(u) {
			continue
		}
		if assigned >= room {
			// Capacity: leave the rest live; the round ends.
			break
		}
		a.Assign(arcs[i].eid, k)
		st.killArc(v, i)
		st.killArcTo(u, arcs[i].eid)
		st.windowEdges--
		st.eout--
		assigned++
	}
	if countLiveMemberArcs(st, v) > 0 {
		// Partial absorption (room ran out before all of v's member
		// edges were assigned): v is not recorded as a member.
		return assigned
	}
	st.memberEpoch[v] = st.epoch
	for i := range arcs {
		if arcs[i].dead {
			continue
		}
		u := arcs[i].nbr
		if st.isMember(u) {
			continue
		}
		st.eout++
		st.touchFrontier(u)
	}
	st.compact(v)
	return assigned
}

// countLiveMemberArcs counts v's remaining live arcs to members.
func countLiveMemberArcs(st *windowState, v graph.Vertex) int {
	c := 0
	for _, a := range st.adj[v] {
		if !a.dead && st.isMember(a.nbr) {
			c++
		}
	}
	return c
}

func (st *windowState) killArc(v graph.Vertex, idx int) {
	st.adj[v][idx].dead = true
	st.liveDeg[v]--
}

// killArcTo marks u's arc carrying eid dead.
func (st *windowState) killArcTo(u graph.Vertex, eid graph.EdgeID) {
	arcs := st.adj[u]
	for i := range arcs {
		if !arcs[i].dead && arcs[i].eid == eid {
			arcs[i].dead = true
			st.liveDeg[u]--
			return
		}
	}
}

// compact removes tombstones from v's adjacency when they dominate it.
func (st *windowState) compact(v graph.Vertex) {
	arcs := st.adj[v]
	dead := 0
	for _, a := range arcs {
		if a.dead {
			dead++
		}
	}
	if dead*2 < len(arcs) {
		return
	}
	live := arcs[:0]
	for _, a := range arcs {
		if !a.dead {
			live = append(live, a)
		}
	}
	if len(live) == 0 {
		delete(st.adj, v)
		delete(st.liveDeg, v)
		return
	}
	st.adj[v] = live
}

// selectStage1 returns the frontier vertex with the best window-local mu_s1
// (common-neighbour overlap with an adjacent member). The expensive overlap
// evaluation is restricted to the candidates with the highest cin (their
// closeness dominates the mu_s1 maximum in practice); the rest of the scan
// is O(frontier). This is the reference implementation's per-step shortcut —
// the exact rule lives in internal/core.
func (st *windowState) selectStage1() (graph.Vertex, bool) {
	// Pass 1: compact the frontier and find the cin threshold.
	w := 0
	var maxCin int32
	for _, u := range st.frontier {
		if !st.inFrontier(u) || st.isMember(u) || st.liveDeg[u] <= 0 {
			continue
		}
		st.frontier[w] = u
		w++
		if st.cin[u] > maxCin {
			maxCin = st.cin[u]
		}
	}
	st.frontier = st.frontier[:w]
	if w == 0 {
		return 0, false
	}
	threshold := (maxCin + 1) / 2
	best := -1.0
	var bestV graph.Vertex
	var bestDeg int32 = -1
	found := false
	evaluated := 0
	for _, u := range st.frontier {
		if st.cin[u] < threshold && found {
			continue
		}
		if evaluated > 512 {
			break // bound per-step work on pathological frontiers
		}
		evaluated++
		s := st.mu1(u)
		if !found || s > best || (s == best && (st.liveDeg[u] > bestDeg ||
			(st.liveDeg[u] == bestDeg && u < bestV))) {
			best, bestV, bestDeg, found = s, u, st.liveDeg[u], true
		}
	}
	return bestV, found
}

// mu1 computes the window-local Eq. 7 score for candidate v, reusing the
// epoch-stamped scratch map to avoid per-call allocation.
func (st *windowState) mu1(v graph.Vertex) float64 {
	st.markEpoch++
	mark := st.markEpoch
	for _, a := range st.adj[v] {
		if !a.dead {
			st.markMap[a.nbr] = mark
		}
	}
	best := 0.0
	for _, a := range st.adj[v] {
		if a.dead || !st.isMember(a.nbr) {
			continue
		}
		j := a.nbr
		dj := st.liveDeg[j]
		if dj <= 0 {
			continue
		}
		common := 0
		for _, ja := range st.adj[j] {
			if !ja.dead && st.markMap[ja.nbr] == mark {
				common++
			}
		}
		if s := float64(common) / float64(dj); s > best {
			best = s
		}
	}
	return best
}

// selectStage2 returns the frontier vertex maximising the window-local
// modularity gain (same M' ordering as core.TLP's Stage II).
func (st *windowState) selectStage2(ein int64) (graph.Vertex, bool) {
	bestScore := -1.0
	var bestV graph.Vertex
	found := false
	w := 0
	for _, u := range st.frontier {
		if !st.inFrontier(u) || st.isMember(u) || st.liveDeg[u] <= 0 {
			continue
		}
		st.frontier[w] = u
		w++
		cin := int64(st.cin[u])
		cout := int64(st.liveDeg[u]) - cin
		denom := st.eout - cin + cout
		var score float64
		if denom <= 0 {
			score = 1e18
		} else {
			score = float64(ein+cin) / float64(denom)
		}
		if !found || score > bestScore {
			bestScore, bestV, found = score, u, true
		}
	}
	st.frontier = st.frontier[:w]
	return bestV, found
}
