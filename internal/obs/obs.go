// Package obs is the repository's unified telemetry layer: a metrics
// registry (atomic counters, gauges, fixed-bucket histograms), span-based
// tracing into a bounded in-memory ring (exportable as JSONL and Chrome
// trace-event JSON), and the single sanctioned clock seam.
//
// Two contracts govern every instrumentation site:
//
//   - Zero overhead when off. Telemetry is disabled by default; a disabled
//     call site is one atomic load plus a branch and performs zero heap
//     allocations (asserted by alloc_test.go). Attribute constructors pack
//     values into a flat struct — no interface boxing — and spans copy
//     attributes into fixed arrays so variadic argument slices never escape
//     to the heap.
//
//   - Record-only. Telemetry observes; it never influences control flow or
//     output bytes. Instrumented subsystems must produce bit-identical
//     results with tracing on and off (the harness determinism tests assert
//     exactly that), so nothing in this package returns data an algorithm
//     could branch on.
//
// The clock seam (Clock, SetClock, Now, Since, Stopwatch) exists so that the
// rest of the module never calls time.Now directly — graphlint rule GL007
// enforces that; internal/obs is the one sanctioned clock site outside
// reporting mains.
package obs

import (
	"os"
	"sync/atomic"
	"time"
)

// EnvEnable is the environment variable that switches telemetry on at
// process start when set to "1" (used by the CI telemetry job).
const EnvEnable = "GRAPHPART_TELEMETRY"

var enabled atomic.Bool

func init() {
	if os.Getenv(EnvEnable) == "1" {
		Enable()
	}
}

// Enabled reports whether telemetry is currently recording.
func Enabled() bool { return enabled.Load() }

// Enable switches telemetry on. The trace epoch is (re)anchored so span
// timestamps are relative to the moment recording started.
func Enable() {
	anchorEpoch()
	enabled.Store(true)
}

// Disable switches telemetry off. Already-recorded spans and metric values
// are retained until ResetTrace / Registry.Reset.
func Disable() { enabled.Store(false) }

// Clock is the time source behind Now/Since/Stopwatch. Tests substitute a
// fake to make span durations deterministic.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// clockBox holds the active Clock behind an atomic pointer so SetClock is
// safe against concurrent Now calls.
type clockBox struct{ c Clock }

// activeClock is set via a variable initializer, not an init function, so it
// is ready before the EnvEnable init above can call Enable -> Now.
var activeClock = func() *atomic.Pointer[clockBox] {
	var p atomic.Pointer[clockBox]
	p.Store(&clockBox{c: systemClock{}})
	return &p
}()

// SetClock installs c as the telemetry time source; nil restores the system
// clock. Only tests should call this.
func SetClock(c Clock) {
	if c == nil {
		c = systemClock{}
	}
	activeClock.Store(&clockBox{c: c})
}

// Now returns the current time from the active Clock.
func Now() time.Time { return activeClock.Load().c.Now() }

// Since returns the elapsed time from t per the active Clock.
func Since(t time.Time) time.Duration { return Now().Sub(t) }

// Stopwatch measures elapsed wall time through the clock seam. Unlike spans
// it is NOT gated on Enabled: callers that report elapsed seconds (the
// harness Seconds columns, CLI summaries) need a measurement whether or not
// tracing is recording.
type Stopwatch struct {
	start time.Time
}

// StartWatch starts a stopwatch at the current clock reading.
func StartWatch() Stopwatch { return Stopwatch{start: Now()} }

// Elapsed returns the time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return Since(s.start) }

// Seconds returns the elapsed time in seconds.
func (s Stopwatch) Seconds() float64 { return s.Elapsed().Seconds() }
