package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Add is gated on the global
// enabled flag; a disabled Add is one atomic load and a branch.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n when telemetry is enabled.
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value (or max) metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores v when telemetry is enabled.
func (g *Gauge) Set(v int64) {
	if enabled.Load() {
		g.v.Store(v)
	}
}

// Max raises the gauge to v if v exceeds the current value.
func (g *Gauge) Max(v int64) {
	if !enabled.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram: bounds are the inclusive upper
// edges of the first len(bounds) buckets, with one implicit overflow bucket.
// Observation is lock-free (atomic bucket counts; the sum is a CAS loop on
// float bits).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// newHistogram builds a histogram over sorted bucket bounds.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records v when telemetry is enabled.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper edges; Counts has len(Bounds)+1 entries,
	// the last being the overflow bucket.
	Bounds []float64 `json:"bounds"`
	// Counts are the per-bucket observation counts.
	Counts []int64 `json:"counts"`
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of observed values.
	Sum float64 `json:"sum"`
}

// Quantile estimates the q-quantile from the bucket counts using the
// nearest-rank rule: the value reported is the upper bound of the bucket
// holding the rank-⌈q·n⌉ observation (+Inf when that observation landed in
// the overflow bucket, 0 when the histogram is empty).
func (hs HistogramSnapshot) Quantile(q float64) float64 {
	if hs.Count <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(hs.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > hs.Count {
		rank = hs.Count
	}
	var cum int64
	for i, c := range hs.Counts {
		cum += c
		if cum >= rank {
			if i < len(hs.Bounds) {
				return hs.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// MetricsSnapshot is a point-in-time copy of a Registry, JSON-serialisable
// with deterministic (sorted) key order.
type MetricsSnapshot struct {
	// Counters maps counter name to value.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps gauge name to value.
	Gauges map[string]int64 `json:"gauges"`
	// Histograms maps histogram name to its snapshot.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Registry is a named collection of metrics. The zero value is not usable;
// use NewRegistry or the package Default.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Default is the registry package-level instrumentation reports into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use. Hot paths
// should call this once and keep the returned pointer.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Reset zeroes every metric in the registry (the metric objects survive, so
// cached pointers stay valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sumBits.Store(0)
	}
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := MetricsSnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.buckets)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.buckets {
			hs.Counts[i] = h.buckets[i].Load()
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON. Map keys are
// emitted sorted by encoding/json, so the output is deterministic for a
// given metric state.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshalling metrics: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: writing metrics: %w", err)
	}
	return nil
}
