package obs

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// ProcessSnapshot is one process's complete telemetry state — its trace-ring
// records plus a metrics snapshot — stamped with the process identity and
// the absolute wall-clock epoch the record offsets are relative to. Cluster
// workers ship one of these back to the coordinator at drain; the
// coordinator merges them into a single multi-lane trace.
type ProcessSnapshot struct {
	// Process is a human-readable lane label ("coordinator", "worker3").
	Process string `json:"process"`
	// PID is the trace lane id (the cluster machine index + 1; the
	// coordinator is 0). It is a logical id, not an OS pid.
	PID int `json:"pid"`
	// EpochUnixNano is the absolute wall-clock anchor of Record.Start
	// offsets, in Unix nanoseconds (zero if the process never recorded).
	EpochUnixNano int64 `json:"epoch_unix_nano"`
	// Dropped counts records the bounded ring overwrote.
	Dropped int64 `json:"dropped"`
	// Records is the trace ring in chronological order.
	Records []Record `json:"-"`
	// Metrics is the process's metric registry snapshot.
	Metrics MetricsSnapshot `json:"metrics"`
}

// TraceEpoch returns the absolute wall-clock time the trace ring was
// anchored at (the moment Enable or ResetTrace started recording), or the
// zero time if nothing anchored it yet.
func TraceEpoch() time.Time {
	traceRing.mu.Lock()
	defer traceRing.mu.Unlock()
	return traceRing.epoch
}

// CaptureSnapshot copies the current trace ring and the Default registry
// into a ProcessSnapshot labelled with the given process name and lane id.
func CaptureSnapshot(process string, pid int) ProcessSnapshot {
	recs, dropped := TraceRecords()
	var epoch int64
	if e := TraceEpoch(); !e.IsZero() {
		epoch = e.UnixNano()
	}
	return ProcessSnapshot{
		Process:       process,
		PID:           pid,
		EpochUnixNano: epoch,
		Dropped:       dropped,
		Records:       recs,
		Metrics:       Default.Snapshot(),
	}
}

// snapshotMagic and snapshotVersion frame the binary snapshot encoding.
// The version is bumped on any layout change; decoders reject unknown
// versions rather than guessing.
var snapshotMagic = [4]byte{'O', 'B', 'S', 'S'}

const snapshotVersion = 1

// Encode serialises the snapshot into the compact versioned binary form
// shipped over the wire: a string table (names, attribute keys and string
// values are deduplicated) followed by varint-packed records and metrics.
func (ps *ProcessSnapshot) Encode() []byte {
	tab := newStringTable()
	tab.add(ps.Process)
	for i := range ps.Records {
		rec := &ps.Records[i]
		tab.add(rec.Name)
		for _, a := range rec.Attrs[:rec.NAttrs] {
			tab.add(a.Key)
			if a.kind == kindString {
				tab.add(a.str)
			}
		}
	}
	counters := sortedKeys(ps.Metrics.Counters)
	gauges := sortedKeys(ps.Metrics.Gauges)
	histograms := sortedKeys(ps.Metrics.Histograms)
	for _, n := range counters {
		tab.add(n)
	}
	for _, n := range gauges {
		tab.add(n)
	}
	for _, n := range histograms {
		tab.add(n)
	}

	buf := append([]byte(nil), snapshotMagic[:]...)
	buf = append(buf, snapshotVersion)
	buf = binary.AppendUvarint(buf, uint64(len(tab.strs)))
	for _, s := range tab.strs {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.AppendUvarint(buf, tab.idx[ps.Process])
	buf = binary.AppendVarint(buf, int64(ps.PID))
	buf = binary.AppendVarint(buf, ps.EpochUnixNano)
	buf = binary.AppendVarint(buf, ps.Dropped)

	buf = binary.AppendUvarint(buf, uint64(len(ps.Records)))
	for i := range ps.Records {
		rec := &ps.Records[i]
		buf = append(buf, rec.Kind)
		buf = binary.AppendVarint(buf, int64(rec.Track))
		buf = binary.AppendVarint(buf, int64(rec.Start))
		buf = binary.AppendVarint(buf, int64(rec.Dur))
		buf = binary.AppendUvarint(buf, uint64(tab.idx[rec.Name]))
		buf = append(buf, rec.NAttrs)
		for _, a := range rec.Attrs[:rec.NAttrs] {
			buf = binary.AppendUvarint(buf, tab.idx[a.Key])
			buf = append(buf, byte(a.kind))
			if a.kind == kindString {
				buf = binary.AppendUvarint(buf, tab.idx[a.str])
			} else {
				buf = binary.LittleEndian.AppendUint64(buf, a.num)
			}
		}
	}

	buf = binary.AppendUvarint(buf, uint64(len(counters)))
	for _, n := range counters {
		buf = binary.AppendUvarint(buf, tab.idx[n])
		buf = binary.AppendVarint(buf, ps.Metrics.Counters[n])
	}
	buf = binary.AppendUvarint(buf, uint64(len(gauges)))
	for _, n := range gauges {
		buf = binary.AppendUvarint(buf, tab.idx[n])
		buf = binary.AppendVarint(buf, ps.Metrics.Gauges[n])
	}
	buf = binary.AppendUvarint(buf, uint64(len(histograms)))
	for _, n := range histograms {
		hs := ps.Metrics.Histograms[n]
		buf = binary.AppendUvarint(buf, tab.idx[n])
		buf = binary.AppendUvarint(buf, uint64(len(hs.Bounds)))
		for _, b := range hs.Bounds {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b))
		}
		for _, c := range hs.Counts {
			buf = binary.AppendVarint(buf, c)
		}
		buf = binary.AppendVarint(buf, hs.Count)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(hs.Sum))
	}
	return buf
}

// DecodeSnapshot parses a snapshot produced by Encode, validating the magic,
// version and every length field against the remaining input.
func DecodeSnapshot(data []byte) (ProcessSnapshot, error) {
	var ps ProcessSnapshot
	d := snapDecoder{buf: data}
	var magic [4]byte
	copy(magic[:], d.bytes(4))
	if d.err == nil && magic != snapshotMagic {
		return ps, fmt.Errorf("obs: snapshot has bad magic %q", magic[:])
	}
	if v := d.u8(); d.err == nil && v != snapshotVersion {
		return ps, fmt.Errorf("obs: snapshot version %d, want %d", v, snapshotVersion)
	}
	nstr := d.length("string table")
	strs := make([]string, 0, nstr)
	for i := 0; i < nstr && d.err == nil; i++ {
		strs = append(strs, string(d.bytes(d.length("string"))))
	}
	str := func(what string) string {
		i := d.uvarint()
		if d.err != nil {
			return ""
		}
		if i >= uint64(len(strs)) {
			d.err = fmt.Errorf("obs: snapshot %s index %d out of range (%d strings)", what, i, len(strs))
			return ""
		}
		return strs[i]
	}

	ps.Process = str("process")
	ps.PID = int(d.varint())
	ps.EpochUnixNano = d.varint()
	ps.Dropped = d.varint()

	nrec := d.length("records")
	ps.Records = make([]Record, 0, nrec)
	for i := 0; i < nrec && d.err == nil; i++ {
		var rec Record
		rec.Kind = d.u8()
		rec.Track = int32(d.varint())
		rec.Start = time.Duration(d.varint())
		rec.Dur = time.Duration(d.varint())
		rec.Name = str("record name")
		rec.NAttrs = d.u8()
		if rec.NAttrs > maxAttrs {
			d.err = fmt.Errorf("obs: snapshot record %d has %d attrs (max %d)", i, rec.NAttrs, maxAttrs)
			break
		}
		for j := 0; j < int(rec.NAttrs) && d.err == nil; j++ {
			a := Attr{Key: str("attr key")}
			a.kind = attrKind(d.u8())
			if a.kind == kindString {
				a.str = str("attr value")
			} else {
				a.num = d.u64()
			}
			rec.Attrs[j] = a
		}
		ps.Records = append(ps.Records, rec)
	}

	ps.Metrics = MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for i, n := 0, d.length("counters"); i < n && d.err == nil; i++ {
		name := str("counter name")
		ps.Metrics.Counters[name] = d.varint()
	}
	for i, n := 0, d.length("gauges"); i < n && d.err == nil; i++ {
		name := str("gauge name")
		ps.Metrics.Gauges[name] = d.varint()
	}
	for i, n := 0, d.length("histograms"); i < n && d.err == nil; i++ {
		name := str("histogram name")
		nb := d.length("bounds")
		hs := HistogramSnapshot{Bounds: make([]float64, 0, nb)}
		for j := 0; j < nb && d.err == nil; j++ {
			hs.Bounds = append(hs.Bounds, math.Float64frombits(d.u64()))
		}
		hs.Counts = make([]int64, 0, nb+1)
		for j := 0; j <= nb && d.err == nil; j++ {
			hs.Counts = append(hs.Counts, d.varint())
		}
		hs.Count = d.varint()
		hs.Sum = math.Float64frombits(d.u64())
		ps.Metrics.Histograms[name] = hs
	}
	if d.err != nil {
		return ProcessSnapshot{}, d.err
	}
	if len(d.buf) != d.off {
		return ProcessSnapshot{}, fmt.Errorf("obs: snapshot has %d trailing bytes", len(d.buf)-d.off)
	}
	return ps, nil
}

// stringTable deduplicates strings for the snapshot encoding.
type stringTable struct {
	idx  map[string]uint64
	strs []string
}

func newStringTable() *stringTable { return &stringTable{idx: map[string]uint64{}} }

func (t *stringTable) add(s string) {
	if _, ok := t.idx[s]; !ok {
		t.idx[s] = uint64(len(t.strs))
		t.strs = append(t.strs, s)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) //lint:ignore GL001 sorted on the next line
	}
	sort.Strings(keys)
	return keys
}

// snapDecoder reads the snapshot encoding with sticky errors and hard
// bounds checks, so a truncated or hostile payload fails cleanly.
type snapDecoder struct {
	buf []byte
	off int
	err error
}

func (d *snapDecoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("obs: snapshot truncated at offset %d (need %d bytes)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *snapDecoder) u8() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *snapDecoder) u64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *snapDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("obs: snapshot has bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *snapDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("obs: snapshot has bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// length reads a uvarint count and sanity-bounds it against the remaining
// input (every counted element costs at least one byte).
func (d *snapDecoder) length(what string) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.buf)-d.off) {
		d.err = fmt.Errorf("obs: snapshot %s count %d exceeds remaining %d bytes", what, v, len(d.buf)-d.off)
		return 0
	}
	return int(v)
}

// MergeSnapshots aggregates per-process metrics into one machine-labelled
// snapshot: every counter, gauge and histogram appears once per process
// under "<process>/<name>", and counters additionally sum across processes
// under the plain name (gauges take the max; histograms with identical
// bounds sum bucket-wise). This is the cluster-wide view graphd /metrics
// serves after a cluster run.
func MergeSnapshots(snaps []ProcessSnapshot) MetricsSnapshot {
	out := MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for i := range snaps {
		ps := &snaps[i]
		for name, v := range ps.Metrics.Counters {
			out.Counters[ps.Process+"/"+name] = v
			out.Counters[name] += v
		}
		for name, v := range ps.Metrics.Gauges {
			out.Gauges[ps.Process+"/"+name] = v
			if cur, ok := out.Gauges[name]; !ok || v > cur {
				out.Gauges[name] = v
			}
		}
		for name, hs := range ps.Metrics.Histograms {
			out.Histograms[ps.Process+"/"+name] = hs
			agg, ok := out.Histograms[name]
			if !ok {
				agg = HistogramSnapshot{
					Bounds: append([]float64(nil), hs.Bounds...),
					Counts: make([]int64, len(hs.Counts)),
				}
			} else if !sameBounds(agg.Bounds, hs.Bounds) {
				continue // incompatible layouts stay per-process only
			}
			for j, c := range hs.Counts {
				agg.Counts[j] += c
			}
			agg.Count += hs.Count
			agg.Sum += hs.Sum
			out.Histograms[name] = agg
		}
	}
	return out
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SkewInstant is one per-superstep barrier-skew measurement: the spread
// between the first and the last machine to enter the superstep (max−min
// phase-entry time across processes) — the direct view of stragglers.
type SkewInstant struct {
	// Step is the superstep index.
	Step int `json:"step"`
	// SkewNanos is the max−min phase-entry spread.
	SkewNanos int64 `json:"skew_nanos"`
	// AtNanos is the absolute Unix-nano time of the last entry (where the
	// instant is drawn in the merged trace).
	AtNanos int64 `json:"at_nanos"`
	// First and Last name the earliest- and latest-entering processes.
	First string `json:"first"`
	Last  string `json:"last"`
}

// ComputeBarrierSkew measures per-superstep barrier skew across process
// snapshots: for every 'X' record named spanName carrying an integer "step"
// attribute, the absolute entry time is EpochUnixNano + Record.Start, and
// each step's skew is the spread between the earliest and latest process.
// Steps seen by fewer than two processes are skipped.
func ComputeBarrierSkew(snaps []ProcessSnapshot, spanName string) []SkewInstant {
	type entry struct {
		min, max    int64
		first, last string
		procs       int
	}
	byStep := map[int]*entry{}
	for i := range snaps {
		ps := &snaps[i]
		seen := map[int]bool{}
		for j := range ps.Records {
			rec := &ps.Records[j]
			if rec.Kind != 'X' || rec.Name != spanName {
				continue
			}
			step, ok := intAttr(rec, "step")
			if !ok {
				continue
			}
			at := ps.EpochUnixNano + rec.Start.Nanoseconds()
			e := byStep[step]
			if e == nil {
				e = &entry{min: at, max: at, first: ps.Process, last: ps.Process}
				byStep[step] = e
			} else {
				if at < e.min {
					e.min, e.first = at, ps.Process
				}
				if at > e.max {
					e.max, e.last = at, ps.Process
				}
			}
			if !seen[step] {
				seen[step] = true
				e.procs++
			}
		}
	}
	steps := make([]int, 0, len(byStep))
	for s, e := range byStep {
		if e.procs >= 2 {
			steps = append(steps, s) //lint:ignore GL001 sorted before use below
		}
	}
	sort.Ints(steps)
	out := make([]SkewInstant, 0, len(steps))
	for _, s := range steps {
		e := byStep[s]
		out = append(out, SkewInstant{
			Step:      s,
			SkewNanos: e.max - e.min,
			AtNanos:   e.max,
			First:     e.first,
			Last:      e.last,
		})
	}
	return out
}

func intAttr(rec *Record, key string) (int, bool) {
	for _, a := range rec.Attrs[:rec.NAttrs] {
		if a.Key == key && a.kind == kindInt {
			return int(int64(a.num)), true
		}
	}
	return 0, false
}

// WriteMergedChromeTrace writes multiple process snapshots as one Chrome
// trace-event document: each snapshot becomes a process lane (pid =
// snapshot PID, named by an 'M' process_name metadata event), record
// timestamps are rebased onto a common origin (the earliest snapshot
// epoch) so cross-process ordering is faithful, and each SkewInstant is
// drawn as a global 'i' instant on the first snapshot's lane.
func WriteMergedChromeTrace(w io.Writer, snaps []ProcessSnapshot, skews []SkewInstant) error {
	var base int64
	for i := range snaps {
		e := snaps[i].EpochUnixNano
		if e != 0 && (base == 0 || e < base) {
			base = e
		}
	}
	n := 0
	for i := range snaps {
		n += 2 + len(snaps[i].Records)
	}
	doc := chromeTrace{TraceEvents: make([]exportRecord, 0, n+len(skews)), DisplayTimeUnit: "ms"}
	for i := range snaps {
		ps := &snaps[i]
		doc.TraceEvents = append(doc.TraceEvents,
			exportRecord{Name: "process_name", Cat: "graphpart", Ph: "M", Pid: ps.PID,
				Args: map[string]any{"name": ps.Process}},
			exportRecord{Name: "process_sort_index", Cat: "graphpart", Ph: "M", Pid: ps.PID,
				Args: map[string]any{"sort_index": ps.PID}},
		)
		offsetUs := float64(ps.EpochUnixNano-base) / 1e3
		for j := range ps.Records {
			er := toExport(&ps.Records[j])
			er.Pid = ps.PID
			er.Ts += offsetUs
			doc.TraceEvents = append(doc.TraceEvents, er)
		}
	}
	for _, sk := range skews {
		pid := 0
		if len(snaps) > 0 {
			pid = snaps[0].PID
		}
		doc.TraceEvents = append(doc.TraceEvents, exportRecord{
			Name: "cluster.barrier_skew",
			Cat:  "graphpart",
			Ph:   "i",
			Ts:   float64(sk.AtNanos-base) / 1e3,
			Pid:  pid,
			S:    "g",
			Args: map[string]any{
				"step":    sk.Step,
				"skew_us": float64(sk.SkewNanos) / 1e3,
				"first":   sk.First,
				"last":    sk.Last,
			},
		})
	}
	bw := bufio.NewWriter(w)
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return fmt.Errorf("obs: marshalling merged chrome trace: %w", err)
	}
	if _, err := bw.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("obs: writing merged chrome trace: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: flushing merged chrome trace: %w", err)
	}
	return nil
}
