package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// stepClock advances a fixed step on every reading, making span durations
// deterministic.
type stepClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

// withTelemetry enables recording against a deterministic clock and
// registers full cleanup. Tests using it must not run in parallel (the
// enabled flag, clock and trace ring are process-global).
func withTelemetry(t *testing.T) {
	t.Helper()
	SetClock(&stepClock{t: time.Unix(1000, 0), step: time.Millisecond})
	SetTraceCapacity(0)
	Enable()
	ResetTrace()
	t.Cleanup(func() {
		Disable()
		SetTraceCapacity(0)
		SetClock(nil)
		Default.Reset()
	})
}

func TestDisabledSpanIsInert(t *testing.T) {
	Disable()
	ResetTrace()
	sp := Start("root", Int("a", 1))
	if sp.Active() {
		t.Fatal("disabled Start returned an active span")
	}
	c := sp.Child("child")
	c.EndWith(Int("b", 2))
	sp.Event("ev")
	sp.End()
	Event("global")
	recs, _ := TraceRecords()
	if len(recs) != 0 {
		t.Fatalf("disabled telemetry recorded %d records", len(recs))
	}
}

func TestSpanNesting(t *testing.T) {
	withTelemetry(t)
	root := Start("root", Int("p", 4))
	child := root.Child("child")
	child.Event("transition", Float("m", 1.5))
	child.EndWith(Int("n", 7))
	root.End()

	other := Start("other")
	other.End()

	recs, dropped := TraceRecords()
	if dropped != 0 {
		t.Fatalf("unexpected drops: %d", dropped)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	// Recording order: transition event, child, root, other.
	if recs[0].Name != "transition" || recs[0].Kind != 'i' {
		t.Fatalf("record 0 = %q/%c, want transition/i", recs[0].Name, recs[0].Kind)
	}
	if recs[1].Name != "child" || recs[2].Name != "root" {
		t.Fatalf("records 1,2 = %q,%q", recs[1].Name, recs[2].Name)
	}
	if recs[0].Track != recs[2].Track || recs[1].Track != recs[2].Track {
		t.Fatal("child/event did not inherit the root's track")
	}
	if recs[3].Track == recs[2].Track {
		t.Fatal("independent roots share a track")
	}
	// The child must nest strictly inside the root.
	rootRec, childRec := recs[2], recs[1]
	if childRec.Start < rootRec.Start ||
		childRec.Start+childRec.Dur > rootRec.Start+rootRec.Dur {
		t.Fatalf("child [%v +%v] not nested in root [%v +%v]",
			childRec.Start, childRec.Dur, rootRec.Start, rootRec.Dur)
	}
	// Attribute merge: child carries its end attr.
	if childRec.NAttrs != 1 || childRec.Attrs[0].Key != "n" || childRec.Attrs[0].Value() != int64(7) {
		t.Fatalf("child attrs = %+v", childRec.Attrs[:childRec.NAttrs])
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	withTelemetry(t)
	sp := Start("once")
	sp.End()
	sp.End()
	sp.EndWith(Int("late", 1))
	recs, _ := TraceRecords()
	if len(recs) != 1 {
		t.Fatalf("span recorded %d times", len(recs))
	}
}

func TestAttrOverflowTruncates(t *testing.T) {
	withTelemetry(t)
	attrs := make([]Attr, maxAttrs+4)
	for i := range attrs {
		attrs[i] = Int("k", i)
	}
	sp := Start("big", attrs...)
	sp.EndWith(attrs...)
	recs, _ := TraceRecords()
	if len(recs) != 1 || int(recs[0].NAttrs) != maxAttrs {
		t.Fatalf("got %d records, NAttrs=%d, want 1 record with %d attrs",
			len(recs), recs[0].NAttrs, maxAttrs)
	}
}

func TestRingWraps(t *testing.T) {
	withTelemetry(t)
	SetTraceCapacity(8)
	Enable() // SetTraceCapacity cleared the epoch; re-anchor
	for i := 0; i < 20; i++ {
		sp := Start("s", Int("i", i))
		sp.End()
	}
	recs, dropped := TraceRecords()
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records, want 8", len(recs))
	}
	if dropped != 12 {
		t.Fatalf("dropped = %d, want 12", dropped)
	}
	// Oldest-first: the survivors are spans 12..19.
	for i, rec := range recs {
		if got := rec.Attrs[0].Value(); got != int64(12+i) {
			t.Fatalf("record %d carries i=%v, want %d", i, got, 12+i)
		}
	}
}

func TestMetricsRegistry(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	c := r.Counter("rounds")
	c.Add(3)
	c.Add(2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("rounds") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("frontier")
	g.Set(10)
	g.Max(7)
	g.Max(42)
	if g.Value() != 42 {
		t.Fatalf("gauge = %d, want 42", g.Value())
	}
	h := r.Histogram("seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 55.55 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	if snap.Counters["rounds"] != 5 || snap.Gauges["frontier"] != 42 {
		t.Fatalf("snapshot = %+v", snap)
	}
	hs := snap.Histograms["seconds"]
	wantCounts := []int64{1, 1, 1, 1}
	for i, w := range wantCounts {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("metrics JSON does not round-trip: %v", err)
	}
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("Reset left values behind")
	}
}

func TestDisabledMetricsDoNotRecord(t *testing.T) {
	Disable()
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(5)
	r.Gauge("g").Set(5)
	r.Histogram("h", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap.Counters["c"] != 0 || snap.Gauges["g"] != 0 || snap.Histograms["h"].Count != 0 {
		t.Fatalf("disabled metrics recorded: %+v", snap)
	}
}

func TestChromeTraceExportAndValidate(t *testing.T) {
	withTelemetry(t)
	root := Start("tlp.partition", Int("p", 4))
	round := root.Child("tlp.round", Int("round", 0))
	round.Event("tlp.stage_transition", Float("modularity", 1.01))
	round.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("validated %d events, want 3", n)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatal("no traceEvents array")
	}

	var jsonl bytes.Buffer
	if err := WriteTraceJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL has %d lines, want 3", len(lines))
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ValidateChromeTrace(strings.NewReader(`{"traceEvents":[{"name":"x","ph":"Q","ts":1,"pid":0,"tid":0,"cat":"c"}]}`)); err == nil {
		t.Fatal("unknown phase accepted")
	}
	if _, err := ValidateChromeTrace(strings.NewReader(`not json`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
}

func TestSummarizeSpans(t *testing.T) {
	recs := []Record{
		{Name: "a", Kind: 'X', Dur: 2 * time.Second},
		{Name: "a", Kind: 'X', Dur: 4 * time.Second},
		{Name: "b", Kind: 'X', Dur: 1 * time.Second},
		{Name: "ev", Kind: 'i'},
	}
	sums := SummarizeSpans(recs)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	if sums[0].Name != "a" || sums[0].Count != 2 || sums[0].TotalSeconds != 6 {
		t.Fatalf("summary[0] = %+v", sums[0])
	}
	if sums[0].P50Seconds != 2 || sums[0].P95Seconds != 4 {
		t.Fatalf("percentiles = %v/%v", sums[0].P50Seconds, sums[0].P95Seconds)
	}
	if sums[1].Name != "b" || sums[1].Count != 1 {
		t.Fatalf("summary[1] = %+v", sums[1])
	}
}

func TestStopwatchUsesClockSeam(t *testing.T) {
	SetClock(&stepClock{t: time.Unix(0, 0), step: time.Second})
	t.Cleanup(func() { SetClock(nil) })
	Disable() // stopwatches measure regardless of the enabled flag
	w := StartWatch()
	if got := w.Elapsed(); got != time.Second {
		t.Fatalf("elapsed = %v, want 1s", got)
	}
	if got := w.Seconds(); got != 2 {
		t.Fatalf("seconds = %v, want 2", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	withTelemetry(t)
	SetClock(nil) // the step clock serialises on a mutex; use the real one
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := Start("worker", Int("w", w))
				c := sp.Child("inner")
				c.End()
				sp.End()
				Default.Counter("concurrent").Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got := Default.Counter("concurrent").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	recs, _ := TraceRecords()
	if len(recs) != 3200 {
		t.Fatalf("recorded %d records, want 3200", len(recs))
	}
}
