package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// exportRecord is the JSON shape shared by the JSONL and Chrome trace-event
// exports. Fields follow the trace-event format: ph is the phase ('X'
// complete span, 'i' instant), ts/dur are microseconds from the trace
// epoch, and tid is the record's track.
type exportRecord struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func toExport(rec *Record) exportRecord {
	er := exportRecord{
		Name: rec.Name,
		Cat:  "graphpart",
		Ph:   string(rec.Kind),
		Ts:   float64(rec.Start.Nanoseconds()) / 1e3,
		Pid:  0,
		Tid:  rec.Track,
	}
	if rec.Kind == 'X' {
		er.Dur = float64(rec.Dur.Nanoseconds()) / 1e3
	} else {
		er.S = "t" // instant scoped to its thread/track
	}
	if rec.NAttrs > 0 {
		er.Args = make(map[string]any, rec.NAttrs)
		for _, a := range rec.Attrs[:rec.NAttrs] {
			er.Args[a.Key] = a.Value()
		}
	}
	return er
}

// WriteTraceJSONL writes the current trace ring as one JSON object per
// line.
func WriteTraceJSONL(w io.Writer) error {
	recs, _ := TraceRecords()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(toExport(&recs[i])); err != nil {
			return fmt.Errorf("obs: encoding trace record: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: flushing trace: %w", err)
	}
	return nil
}

// chromeTrace is the top-level Chrome trace-event document.
type chromeTrace struct {
	TraceEvents     []exportRecord `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the current trace ring in Chrome trace-event
// format — load the file at chrome://tracing (or ui.perfetto.dev) to see
// the nested partition -> stage -> round spans.
func WriteChromeTrace(w io.Writer) error {
	recs, _ := TraceRecords()
	doc := chromeTrace{TraceEvents: make([]exportRecord, len(recs)), DisplayTimeUnit: "ms"}
	for i := range recs {
		doc.TraceEvents[i] = toExport(&recs[i])
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return fmt.Errorf("obs: marshalling chrome trace: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: writing chrome trace: %w", err)
	}
	return nil
}

// ValidateChromeTrace parses r as a Chrome trace-event document and checks
// the schema invariants the exporters guarantee (known phase letters — 'X'
// complete, 'i' instant, 'M' metadata — and non-negative timestamps and
// durations). It returns the number of trace events.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var doc chromeTrace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("obs: parsing chrome trace: %w", err)
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return 0, fmt.Errorf("obs: trace event %d has no name", i)
		}
		if ev.Ph != "X" && ev.Ph != "i" && ev.Ph != "M" {
			return 0, fmt.Errorf("obs: trace event %d (%s) has unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			return 0, fmt.Errorf("obs: trace event %d (%s) has negative ts/dur", i, ev.Name)
		}
	}
	return len(doc.TraceEvents), nil
}

// SpanSummary aggregates every completed span of one name.
type SpanSummary struct {
	// Name is the span name.
	Name string `json:"name"`
	// Count is the number of completed spans.
	Count int `json:"count"`
	// TotalSeconds is the summed duration.
	TotalSeconds float64 `json:"total_seconds"`
	// P50Seconds and P95Seconds are duration percentiles (nearest-rank).
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
}

// SummarizeSpans groups the 'X' records of recs by name and reports count,
// total and nearest-rank p50/p95 durations, sorted by descending total.
func SummarizeSpans(recs []Record) []SpanSummary {
	durs := map[string][]float64{}
	var names []string
	for i := range recs {
		if recs[i].Kind != 'X' {
			continue
		}
		name := recs[i].Name
		if _, ok := durs[name]; !ok {
			names = append(names, name)
		}
		durs[name] = append(durs[name], recs[i].Dur.Seconds())
	}
	out := make([]SpanSummary, 0, len(names))
	for _, name := range names {
		ds := durs[name]
		sort.Float64s(ds)
		total := 0.0
		for _, d := range ds {
			total += d
		}
		out = append(out, SpanSummary{
			Name:         name,
			Count:        len(ds),
			TotalSeconds: total,
			P50Seconds:   percentile(ds, 0.50),
			P95Seconds:   percentile(ds, 0.95),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalSeconds != out[j].TotalSeconds {
			return out[i].TotalSeconds > out[j].TotalSeconds
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// percentile returns the nearest-rank percentile of sorted values.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
