package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func sampleSnapshot(process string, pid int, epoch int64) ProcessSnapshot {
	ps := ProcessSnapshot{
		Process:       process,
		PID:           pid,
		EpochUnixNano: epoch,
		Dropped:       3,
		Metrics: MetricsSnapshot{
			Counters: map[string]int64{"engine.messages": 42, "engine.supersteps": 5},
			Gauges:   map[string]int64{"engine.active": 7},
			Histograms: map[string]HistogramSnapshot{
				"wire.frame_bytes": {
					Bounds: []float64{10, 100, 1000},
					Counts: []int64{1, 2, 3, 4},
					Count:  10,
					Sum:    1234.5,
				},
			},
		},
	}
	rec := Record{Name: "wire.worker.superstep", Kind: 'X', Track: 1,
		Start: 5 * time.Millisecond, Dur: 2 * time.Millisecond}
	rec.Attrs[0] = Int("step", 4)
	rec.Attrs[1] = Float("ratio", 0.25)
	rec.Attrs[2] = String("label", process)
	rec.NAttrs = 3
	ev := Record{Name: "mark", Kind: 'i', Track: 1, Start: 6 * time.Millisecond}
	ps.Records = []Record{rec, ev}
	return ps
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot("worker3", 4, 1_700_000_000_000_000_000)
	got, err := DecodeSnapshot(want.Encode())
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if got.Process != want.Process || got.PID != want.PID ||
		got.EpochUnixNano != want.EpochUnixNano || got.Dropped != want.Dropped {
		t.Fatalf("header mismatch: got %+v", got)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("got %d records, want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		w, g := want.Records[i], got.Records[i]
		if g.Name != w.Name || g.Kind != w.Kind || g.Track != w.Track ||
			g.Start != w.Start || g.Dur != w.Dur || g.NAttrs != w.NAttrs {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, g, w)
		}
		for j := 0; j < int(w.NAttrs); j++ {
			if g.Attrs[j].Key != w.Attrs[j].Key || g.Attrs[j].Value() != w.Attrs[j].Value() {
				t.Fatalf("record %d attr %d: got %v=%v want %v=%v",
					i, j, g.Attrs[j].Key, g.Attrs[j].Value(), w.Attrs[j].Key, w.Attrs[j].Value())
			}
		}
	}
	if got.Metrics.Counters["engine.messages"] != 42 ||
		got.Metrics.Gauges["engine.active"] != 7 {
		t.Fatalf("metrics mismatch: %+v", got.Metrics)
	}
	hs := got.Metrics.Histograms["wire.frame_bytes"]
	if len(hs.Bounds) != 3 || hs.Counts[3] != 4 || hs.Count != 10 || hs.Sum != 1234.5 {
		t.Fatalf("histogram mismatch: %+v", hs)
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	src := sampleSnapshot("w", 1, 12345)
	good := src.Encode()
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": append([]byte("NOPE"), good[4:]...),
		"bad version": func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 99
			return b
		}(),
		"truncated": good[:len(good)-5],
		"trailing":  append(append([]byte(nil), good...), 0xFF),
	}
	for name, data := range cases {
		if _, err := DecodeSnapshot(data); err == nil {
			t.Errorf("%s: DecodeSnapshot accepted corrupt input", name)
		}
	}
	// Every prefix must fail cleanly rather than panic.
	for i := 0; i < len(good); i++ {
		if _, err := DecodeSnapshot(good[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", i)
		}
	}
}

func TestCaptureSnapshot(t *testing.T) {
	withTelemetry(t)
	Default.Counter("test.captured").Add(9)
	sp := Start("test.span", Int("step", 1))
	sp.End()
	ps := CaptureSnapshot("coordinator", 0)
	if ps.Process != "coordinator" || ps.PID != 0 {
		t.Fatalf("identity mismatch: %+v", ps)
	}
	if ps.EpochUnixNano == 0 {
		t.Fatal("epoch not captured")
	}
	if len(ps.Records) != 1 || ps.Records[0].Name != "test.span" {
		t.Fatalf("records: %+v", ps.Records)
	}
	if ps.Metrics.Counters["test.captured"] != 9 {
		t.Fatalf("metrics: %+v", ps.Metrics.Counters)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a := sampleSnapshot("worker0", 1, 100)
	b := sampleSnapshot("worker1", 2, 200)
	b.Metrics.Counters["engine.messages"] = 58
	b.Metrics.Gauges["engine.active"] = 3
	merged := MergeSnapshots([]ProcessSnapshot{a, b})
	if got := merged.Counters["engine.messages"]; got != 100 {
		t.Fatalf("aggregate counter = %d, want 100", got)
	}
	if merged.Counters["worker0/engine.messages"] != 42 ||
		merged.Counters["worker1/engine.messages"] != 58 {
		t.Fatalf("labelled counters: %+v", merged.Counters)
	}
	if merged.Gauges["engine.active"] != 7 { // max across processes
		t.Fatalf("aggregate gauge = %d, want 7", merged.Gauges["engine.active"])
	}
	hs := merged.Histograms["wire.frame_bytes"]
	if hs.Count != 20 || hs.Counts[3] != 8 || hs.Sum != 2469 {
		t.Fatalf("aggregate histogram: %+v", hs)
	}
	if _, ok := merged.Histograms["worker1/wire.frame_bytes"]; !ok {
		t.Fatal("labelled histogram missing")
	}
}

func TestComputeBarrierSkew(t *testing.T) {
	mk := func(process string, epoch int64, starts ...time.Duration) ProcessSnapshot {
		ps := ProcessSnapshot{Process: process, EpochUnixNano: epoch}
		for step, st := range starts {
			rec := Record{Name: "wire.worker.superstep", Kind: 'X', Track: 1, Start: st, Dur: time.Millisecond}
			rec.Attrs[0] = Int("step", step)
			rec.NAttrs = 1
			ps.Records = append(ps.Records, rec)
		}
		return ps
	}
	fast := mk("worker0", 1_000_000, 0, 10*time.Microsecond)
	slow := mk("worker1", 1_000_000, 3*time.Microsecond, 25*time.Microsecond)
	skews := ComputeBarrierSkew([]ProcessSnapshot{fast, slow}, "wire.worker.superstep")
	if len(skews) != 2 {
		t.Fatalf("got %d skew instants, want 2", len(skews))
	}
	if skews[0].Step != 0 || skews[0].SkewNanos != 3000 ||
		skews[0].First != "worker0" || skews[0].Last != "worker1" {
		t.Fatalf("step 0 skew: %+v", skews[0])
	}
	if skews[1].SkewNanos != 15000 || skews[1].AtNanos != 1_000_000+25000 {
		t.Fatalf("step 1 skew: %+v", skews[1])
	}

	// A step only one process entered yields no instant.
	solo := ComputeBarrierSkew([]ProcessSnapshot{fast}, "wire.worker.superstep")
	if len(solo) != 0 {
		t.Fatalf("single-process skew: %+v", solo)
	}
}

func TestWriteMergedChromeTrace(t *testing.T) {
	a := sampleSnapshot("coordinator", 0, 1_000_000_000)
	b := sampleSnapshot("worker0", 1, 1_000_500_000)
	skews := []SkewInstant{{Step: 0, SkewNanos: 400, AtNanos: 1_000_600_000, First: "a", Last: "b"}}
	var buf bytes.Buffer
	if err := WriteMergedChromeTrace(&buf, []ProcessSnapshot{a, b}, skews); err != nil {
		t.Fatalf("WriteMergedChromeTrace: %v", err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateChromeTrace: %v", err)
	}
	// 2 metadata + 2 records per snapshot, plus one skew instant.
	if n != 2*(2+2)+1 {
		t.Fatalf("got %d events, want 9", n)
	}
	out := buf.String()
	for _, want := range []string{`"process_name"`, `"cluster.barrier_skew"`, `"worker0"`, `"ph": "M"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged trace missing %s:\n%s", want, out)
		}
	}
}

// --- histogram/percentile boundary hardening (satellite: obs hardening) ---

func TestPercentileBoundaries(t *testing.T) {
	cases := []struct {
		name     string
		vals     []float64
		p50, p95 float64
	}{
		{"empty", nil, 0, 0},
		{"one", []float64{4}, 4, 4},
		{"two", []float64{1, 9}, 1, 9},
		{"three", []float64{1, 5, 9}, 5, 9},
	}
	for _, tc := range cases {
		if got := percentile(tc.vals, 0.50); got != tc.p50 {
			t.Errorf("%s: p50 = %v, want %v", tc.name, got, tc.p50)
		}
		if got := percentile(tc.vals, 0.95); got != tc.p95 {
			t.Errorf("%s: p95 = %v, want %v", tc.name, got, tc.p95)
		}
	}
}

func TestSummarizeSpansSmallSamples(t *testing.T) {
	mk := func(n int) []Record {
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = Record{Name: "s", Kind: 'X', Dur: time.Duration(i+1) * time.Second}
		}
		return recs
	}
	if got := SummarizeSpans(nil); len(got) != 0 {
		t.Fatalf("empty summary: %+v", got)
	}
	one := SummarizeSpans(mk(1))[0]
	if one.P50Seconds != 1 || one.P95Seconds != 1 {
		t.Fatalf("1-sample percentiles: %+v", one)
	}
	two := SummarizeSpans(mk(2))[0]
	if two.P50Seconds != 1 || two.P95Seconds != 2 {
		t.Fatalf("2-sample percentiles: %+v", two)
	}
}

func TestHistogramQuantileBoundaries(t *testing.T) {
	empty := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 0, 0}}
	if got := empty.Quantile(0.95); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	one := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{0, 1, 0}, Count: 1}
	if got := one.Quantile(0.50); got != 2 {
		t.Fatalf("1-sample p50 = %v, want 2", got)
	}
	if got := one.Quantile(0.95); got != 2 {
		t.Fatalf("1-sample p95 = %v, want 2", got)
	}
	two := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []int64{1, 1, 0}, Count: 2}
	if got := two.Quantile(0.50); got != 1 {
		t.Fatalf("2-sample p50 = %v, want 1", got)
	}
	if got := two.Quantile(0.95); got != 2 {
		t.Fatalf("2-sample p95 = %v, want 2", got)
	}
	over := HistogramSnapshot{Bounds: []float64{1}, Counts: []int64{0, 1}, Count: 1}
	if got := over.Quantile(0.95); !math.IsInf(got, 1) {
		t.Fatalf("overflow quantile = %v, want +Inf", got)
	}
}

func TestRingEvictsOldestAtTinyCapacities(t *testing.T) {
	withTelemetry(t)
	for _, capN := range []int{1, 2, 3} {
		SetTraceCapacity(capN)
		Enable() // re-anchor after capacity reset
		const total = 7
		for i := 0; i < total; i++ {
			sp := Start("s", Int("i", i))
			sp.End()
		}
		recs, dropped := TraceRecords()
		if len(recs) != capN {
			t.Fatalf("cap %d: ring holds %d", capN, len(recs))
		}
		if want := int64(total - capN); dropped != want {
			t.Fatalf("cap %d: dropped %d, want %d", capN, dropped, want)
		}
		// Survivors must be the newest records, oldest-first.
		for j, rec := range recs {
			i, ok := intAttr(&rec, "i")
			if !ok || i != total-capN+j {
				t.Fatalf("cap %d: survivor %d is i=%d (ok=%v), want %d", capN, j, i, ok, total-capN+j)
			}
		}
	}
}
