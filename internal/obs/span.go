package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// maxAttrs bounds the attributes carried by one span or event (start and end
// attributes combined). Extra attributes are dropped silently — telemetry
// must never turn into an error path.
const maxAttrs = 8

// attrKind discriminates the packed payload of an Attr.
type attrKind uint8

const (
	kindInt attrKind = iota
	kindFloat
	kindString
)

// Attr is one key/value span attribute. Values are packed into a flat
// struct (int64 and float64 share one uint64 field; strings ride the string
// header) so constructing an Attr never allocates or boxes.
type Attr struct {
	// Key names the attribute.
	Key  string
	str  string
	num  uint64
	kind attrKind
}

// Int returns an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, num: uint64(int64(v)), kind: kindInt} }

// Int64 returns an integer attribute from an int64.
func Int64(key string, v int64) Attr { return Attr{Key: key, num: uint64(v), kind: kindInt} }

// Float returns a float attribute.
func Float(key string, v float64) Attr {
	return Attr{Key: key, num: math.Float64bits(v), kind: kindFloat}
}

// String returns a string attribute.
func String(key, v string) Attr { return Attr{Key: key, str: v, kind: kindString} }

// Value unpacks the attribute's payload for export.
func (a Attr) Value() any {
	switch a.kind {
	case kindFloat:
		return math.Float64frombits(a.num)
	case kindString:
		return a.str
	default:
		return int64(a.num)
	}
}

// Span is an in-flight traced operation. The zero value is inert: every
// method no-ops, which is how disabled telemetry costs nothing — Start
// returns Span{} when recording is off. Spans are values; they must not be
// shared across goroutines.
type Span struct {
	name  string
	start time.Time
	track int32
	ok    bool
	n     uint8
	attrs [maxAttrs]Attr
}

// Active reports whether the span is recording (started while telemetry was
// enabled and not yet ended).
func (sp *Span) Active() bool { return sp.ok }

// nextTrack hands out trace track ids; each root span opens a new track and
// its children inherit it, which is what nests them in chrome://tracing.
var nextTrack atomic.Int32

// Start begins a root span on a fresh track. When telemetry is disabled it
// returns the inert zero Span without touching the clock.
func Start(name string, attrs ...Attr) Span {
	if !enabled.Load() {
		return Span{}
	}
	sp := Span{name: name, start: Now(), track: nextTrack.Add(1), ok: true}
	sp.setAttrs(attrs)
	return sp
}

// Child begins a nested span on the parent's track. A child of an inert
// span is inert.
func (sp *Span) Child(name string, attrs ...Attr) Span {
	if !sp.ok {
		return Span{}
	}
	c := Span{name: name, start: Now(), track: sp.track, ok: true}
	c.setAttrs(attrs)
	return c
}

// setAttrs copies attrs into the span's fixed array (never retaining the
// slice, so call-site variadic arrays stay on the caller's stack).
func (sp *Span) setAttrs(attrs []Attr) {
	for _, a := range attrs {
		if int(sp.n) >= maxAttrs {
			return
		}
		sp.attrs[sp.n] = a
		sp.n++
	}
}

// End completes the span and records it.
func (sp *Span) End() { sp.EndWith() }

// EndWith completes the span, merging attrs with the start attributes, and
// records it into the trace ring. Ending an inert or already-ended span is
// a no-op.
func (sp *Span) EndWith(attrs ...Attr) {
	if !sp.ok {
		return
	}
	sp.ok = false
	sp.setAttrs(attrs)
	end := Now()
	rec := Record{Name: sp.name, Kind: 'X', Track: sp.track, NAttrs: sp.n, Attrs: sp.attrs}
	pushRecord(&rec, sp.start, end)
}

// Segment records a completed span of duration d ending now on the span's
// track. It exists for accumulated instrumentation: hot loops that cannot
// afford one span per iteration sum their phase durations in plain counters
// and emit one segment per enclosing span (e.g. the TLP stage-I kernel
// phases, summed per absorption and flushed per round). A segment on an
// inert span, or with non-positive duration, is a no-op.
func (sp *Span) Segment(name string, d time.Duration, attrs ...Attr) {
	if !sp.ok || d <= 0 {
		return
	}
	rec := Record{Name: name, Kind: 'X', Track: sp.track}
	for _, a := range attrs {
		if int(rec.NAttrs) >= maxAttrs {
			break
		}
		rec.Attrs[rec.NAttrs] = a
		rec.NAttrs++
	}
	end := Now()
	pushRecord(&rec, end.Add(-d), end)
}

// Event records an instantaneous event on the span's track.
func (sp *Span) Event(name string, attrs ...Attr) {
	if !sp.ok {
		return
	}
	emitEvent(name, sp.track, attrs)
}

// Event records an instantaneous event on the shared track 0 (for sites
// with no surrounding span).
func Event(name string, attrs ...Attr) {
	if !enabled.Load() {
		return
	}
	emitEvent(name, 0, attrs)
}

func emitEvent(name string, track int32, attrs []Attr) {
	rec := Record{Name: name, Kind: 'i', Track: track}
	for _, a := range attrs {
		if int(rec.NAttrs) >= maxAttrs {
			break
		}
		rec.Attrs[rec.NAttrs] = a
		rec.NAttrs++
	}
	now := Now()
	pushRecord(&rec, now, now)
}

// Record is one completed span or instant event in the trace ring.
// Start/Dur are relative to the trace epoch (the moment Enable or
// ResetTrace anchored recording).
type Record struct {
	// Name is the span or event name.
	Name string
	// Kind is 'X' for a completed span, 'i' for an instant event
	// (matching the Chrome trace-event phase letters).
	Kind byte
	// Track groups the record for display: a root span and all its
	// descendants share one track.
	Track int32
	// Start is the offset from the trace epoch.
	Start time.Duration
	// Dur is the span duration (zero for instants).
	Dur time.Duration
	// NAttrs is the number of valid entries in Attrs.
	NAttrs uint8
	// Attrs are the record's attributes.
	Attrs [maxAttrs]Attr
}

// DefaultTraceCapacity is the trace ring's default bound.
const DefaultTraceCapacity = 16384

// traceRing is the bounded store of completed records. It appends until the
// capacity is reached, then overwrites the oldest entries.
var traceRing struct {
	mu      sync.Mutex
	epoch   time.Time
	cap     int
	buf     []Record
	next    int // overwrite cursor once len(buf) == cap
	full    bool
	dropped int64 // records overwritten
}

// anchorEpoch sets the trace epoch if it is unset.
func anchorEpoch() {
	traceRing.mu.Lock()
	if traceRing.epoch.IsZero() {
		traceRing.epoch = Now()
	}
	traceRing.mu.Unlock()
}

func pushRecord(rec *Record, start, end time.Time) {
	traceRing.mu.Lock()
	if traceRing.epoch.IsZero() {
		traceRing.epoch = start
	}
	rec.Start = start.Sub(traceRing.epoch)
	rec.Dur = end.Sub(start)
	if traceRing.cap == 0 {
		traceRing.cap = DefaultTraceCapacity
	}
	if len(traceRing.buf) < traceRing.cap {
		traceRing.buf = append(traceRing.buf, *rec)
	} else {
		traceRing.buf[traceRing.next] = *rec
		traceRing.next++
		traceRing.full = true
		traceRing.dropped++
		if traceRing.next == traceRing.cap {
			traceRing.next = 0
		}
	}
	traceRing.mu.Unlock()
}

// SetTraceCapacity bounds the trace ring to n records (minimum 1) and
// clears it. Zero restores the default capacity.
func SetTraceCapacity(n int) {
	if n <= 0 {
		n = DefaultTraceCapacity
	}
	traceRing.mu.Lock()
	traceRing.cap = n
	traceRing.buf = nil
	traceRing.next = 0
	traceRing.full = false
	traceRing.dropped = 0
	traceRing.epoch = time.Time{}
	traceRing.mu.Unlock()
}

// ResetTrace clears the trace ring and re-anchors the epoch.
func ResetTrace() {
	traceRing.mu.Lock()
	traceRing.buf = traceRing.buf[:0]
	traceRing.next = 0
	traceRing.full = false
	traceRing.dropped = 0
	traceRing.epoch = Now()
	traceRing.mu.Unlock()
}

// TraceRecords returns a copy of the recorded trace in chronological
// (recording) order, plus the number of records the bounded ring dropped.
func TraceRecords() (recs []Record, dropped int64) {
	traceRing.mu.Lock()
	defer traceRing.mu.Unlock()
	if traceRing.full {
		recs = make([]Record, 0, len(traceRing.buf))
		recs = append(recs, traceRing.buf[traceRing.next:]...)
		recs = append(recs, traceRing.buf[:traceRing.next]...)
	} else {
		recs = append(recs, traceRing.buf...)
	}
	return recs, traceRing.dropped
}
