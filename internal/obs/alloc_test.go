package obs

import "testing"

// The zero-overhead contract: with telemetry disabled, every instrumented
// hot-path shape — counter increments, span start/child/end with
// attributes, instant events — performs zero heap allocations. Variadic
// attribute slices must stay on the caller's stack, which these tests pin
// down against escape-analysis regressions.

func TestDisabledCounterAddAllocations(t *testing.T) {
	Disable()
	c := Default.Counter("alloc_test.counter")
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
	}); allocs != 0 {
		t.Fatalf("disabled Counter.Add allocates %.1f times per op", allocs)
	}
}

func TestDisabledSpanAllocations(t *testing.T) {
	Disable()
	if allocs := testing.AllocsPerRun(1000, func() {
		sp := Start("alloc_test.span", Int("a", 1), Int64("b", 2), Float("c", 3.5), String("d", "x"))
		child := sp.Child("alloc_test.child", Int("k", 9))
		child.Event("alloc_test.event", Int("e", 1))
		child.EndWith(Int("n", 4))
		sp.End()
	}); allocs != 0 {
		t.Fatalf("disabled span lifecycle allocates %.1f times per op", allocs)
	}
}

func TestDisabledGaugeHistogramAllocations(t *testing.T) {
	Disable()
	g := Default.Gauge("alloc_test.gauge")
	h := Default.Histogram("alloc_test.hist", []float64{0.001, 0.01, 0.1, 1})
	if allocs := testing.AllocsPerRun(1000, func() {
		g.Set(7)
		g.Max(9)
		h.Observe(0.05)
	}); allocs != 0 {
		t.Fatalf("disabled gauge/histogram allocates %.1f times per op", allocs)
	}
}

func TestDisabledStopwatchAllocations(t *testing.T) {
	Disable()
	if allocs := testing.AllocsPerRun(1000, func() {
		w := StartWatch()
		_ = w.Seconds()
	}); allocs != 0 {
		t.Fatalf("stopwatch allocates %.1f times per op", allocs)
	}
}
