// Package parallel provides the small bounded worker pool used to fan
// independent work items out over the available cores: harness grid cells,
// dataset generation, CSR assembly and metric scans.
//
// The package is stdlib-only and deliberately tiny: an indexed ForEach (with
// an error-collecting variant) and an order-preserving Map. Work items are
// claimed from an atomic counter, so scheduling is dynamic but the mapping
// from item index to result slot is fixed — callers that write results[i]
// inside fn(i) get byte-identical output regardless of the worker count.
//
// Worker counts resolve, in order of precedence: an explicit positive value
// passed by the caller (e.g. harness.Config.Workers), the GRAPHPART_WORKERS
// environment variable, and finally GOMAXPROCS. A resolved count of 1 runs
// fn inline on the calling goroutine with no pool at all.
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable that overrides the default worker
// count for every pool in the process when no explicit count is given.
const EnvWorkers = "GRAPHPART_WORKERS"

// Workers resolves a worker count: explicit (if > 0), else the
// GRAPHPART_WORKERS environment variable (if a positive integer), else
// GOMAXPROCS.
func Workers(explicit int) int {
	if explicit > 0 {
		return explicit
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most maxWorkers goroutines
// (resolved via Workers). It returns after every item has finished. A panic
// in any fn stops new items from being claimed, and the first recovered
// value is re-raised on the calling goroutine once in-flight items drain.
func ForEach(n, maxWorkers int, fn func(i int)) {
	err := run(n, maxWorkers, func(i int) error {
		fn(i)
		return nil
	})
	if err != nil {
		// run only returns errors from the wrapped fn, which never errs.
		panic(err)
	}
}

// ForEachErr is ForEach for item functions that can fail. When items fail it
// returns the error of the lowest-numbered failing item — the same error a
// sequential loop would have returned first — and stops claiming new items
// after the first failure is observed. Items already in flight still finish.
func ForEachErr(n, maxWorkers int, fn func(i int) error) error {
	return run(n, maxWorkers, fn)
}

// Map runs fn(i) for every i in [0, n) on the pool and returns the results
// in index order.
func Map[T any](n, maxWorkers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, maxWorkers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map for item functions that can fail, with ForEachErr's
// lowest-index error semantics. On error the returned slice is nil.
func MapErr[T any](n, maxWorkers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachErr(n, maxWorkers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Chunks splits [0, n) into at most parts half-open [lo, hi) ranges of
// near-equal size, for sharding an array scan across the pool. Empty ranges
// are omitted, so every returned chunk holds at least one index.
func Chunks(n, parts int) [][2]int {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int, 0, parts)
	for c := 0; c < parts; c++ {
		lo := n * c / parts
		hi := n * (c + 1) / parts
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// panicError carries a recovered panic value across the pool boundary so it
// can be re-raised on the caller's goroutine.
type panicError struct {
	value any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("parallel: panic in worker: %v\n%s", p.value, p.stack)
}

// run is the shared pool: items are claimed from an atomic counter, errors
// are kept per item index, and the lowest-index error wins. Because the
// counter hands out indices in ascending order, every index below the first
// failing one has been claimed (and is allowed to finish) before the stop
// flag is set, so the winning error is deterministic.
func run(n, maxWorkers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Workers(maxWorkers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stop    atomic.Bool
		mu      sync.Mutex
		bestIdx = n // lowest failing index seen so far
		bestErr error
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < bestIdx {
			bestIdx, bestErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							buf := make([]byte, 4096)
							buf = buf[:runtime.Stack(buf, false)]
							err = &panicError{value: r, stack: buf}
						}
					}()
					return fn(i)
				}()
				if err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if bestErr != nil {
		if pe, ok := bestErr.(*panicError); ok {
			panic(fmt.Sprintf("parallel: panic in worker: %v\n%s", pe.value, pe.stack))
		}
		return bestErr
	}
	return nil
}
