package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(7); got != 7 {
		t.Fatalf("explicit worker count ignored: got %d", got)
	}
	t.Setenv(EnvWorkers, "5")
	if got := Workers(0); got != 5 {
		t.Fatalf("env worker count ignored: got %d", got)
	}
	if got := Workers(3); got != 3 {
		t.Fatalf("explicit should beat env: got %d", got)
	}
	t.Setenv(EnvWorkers, "not-a-number")
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("bad env should fall back to GOMAXPROCS: got %d", got)
	}
	t.Setenv(EnvWorkers, "-2")
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative env should fall back to GOMAXPROCS: got %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) {
			counts[i].Add(1)
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	ForEach(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty input")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 500
		got := Map(n, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const limit = 3
	var cur, peak atomic.Int32
	ForEach(200, limit, func(int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		// Let other workers pile up if the bound were broken.
		runtime.Gosched()
		cur.Add(-1)
	})
	if p := peak.Load(); p > limit {
		t.Fatalf("observed %d concurrent workers, bound is %d", p, limit)
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		err := ForEachErr(100, workers, func(i int) error {
			if i == 17 || i == 63 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 17 failed" {
			t.Fatalf("workers=%d: got %v, want item 17 failed", workers, err)
		}
	}
}

func TestForEachErrStopsClaimingAfterFailure(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("boom")
	err := ForEachErr(100000, 4, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
	if n := ran.Load(); n == 100000 {
		t.Fatal("pool kept claiming items after the failure")
	}
}

func TestMapErr(t *testing.T) {
	got, err := MapErr(10, 4, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	_, err = MapErr(10, 4, func(i int) (int, error) {
		if i >= 5 {
			return 0, fmt.Errorf("no %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "no 5" {
		t.Fatalf("got %v, want no 5", err)
	}
}

func TestPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if !strings.Contains(fmt.Sprint(r), "kaboom") {
					t.Fatalf("workers=%d: panic value lost: %v", workers, r)
				}
			}()
			ForEach(50, workers, func(i int) {
				if i == 13 {
					panic("kaboom")
				}
			})
		}()
	}
}

func TestForEachErrSequentialShortCircuit(t *testing.T) {
	// workers=1 must stop at the first failing index exactly like a loop.
	var ran []int
	err := ForEachErr(10, 1, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || err.Error() != "stop" {
		t.Fatalf("got %v", err)
	}
	if len(ran) != 4 {
		t.Fatalf("sequential path ran %v, want [0 1 2 3]", ran)
	}
}

func TestChunks(t *testing.T) {
	cases := []struct{ n, parts int }{
		{0, 4}, {1, 4}, {10, 3}, {10, 1}, {10, 100}, {1000, 7}, {5, 0},
	}
	for _, c := range cases {
		chunks := Chunks(c.n, c.parts)
		covered, prev := 0, 0
		for _, ch := range chunks {
			if ch[0] != prev {
				t.Fatalf("n=%d parts=%d: gap before %v", c.n, c.parts, ch)
			}
			if ch[0] >= ch[1] {
				t.Fatalf("n=%d parts=%d: empty chunk %v", c.n, c.parts, ch)
			}
			covered += ch[1] - ch[0]
			prev = ch[1]
		}
		if covered != c.n {
			t.Fatalf("n=%d parts=%d: covered %d of %d", c.n, c.parts, covered, c.n)
		}
	}
}

func TestForEachParallelWritesAreVisible(t *testing.T) {
	// The wg.Wait in the pool must publish all worker writes to the caller.
	var mu sync.Mutex
	sum := 0
	ForEach(1000, 8, func(i int) {
		mu.Lock()
		sum += i
		mu.Unlock()
	})
	if want := 1000 * 999 / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}
