//go:build !graphpart_invariants

package invariants

// Enabled reports whether the sanitizer is compiled in.
const Enabled = false

// Assertf is a no-op in the default build. Call sites must still gate on
// Enabled so the compiler can remove the condition and argument evaluation.
func Assertf(cond bool, format string, args ...any) {}
