//go:build !graphpart_invariants

package invariants

import "testing"

// The default build must compile the sanitizer out: Enabled is the constant
// false and Assertf never panics, whatever it is fed.
func TestDisabledByDefault(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled is true without the graphpart_invariants tag")
	}
	Assertf(false, "must not panic in the default build")
}
