//go:build graphpart_invariants

package invariants

import (
	"strings"
	"testing"
)

func TestEnabledInSanitizerBuild(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled is false under the graphpart_invariants tag")
	}
}

func TestAssertfPanicsWithMessage(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Assertf(false) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "graphpart invariant violated") || !strings.Contains(msg, "load 3") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	Assertf(false, "load %d", 3)
}

func TestAssertfTruePasses(t *testing.T) {
	Assertf(true, "never formatted")
}
