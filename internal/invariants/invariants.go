// Package invariants is the switch for the runtime sanitizer: expensive
// cross-checks of the data structures the paper's results depend on (edge
// assignment accounting, frontier bookkeeping, transport traffic), compiled
// in only under the graphpart_invariants build tag.
//
//	go test -tags graphpart_invariants ./internal/...
//
// In the default build Enabled is the constant false, so every check site of
// the form
//
//	if invariants.Enabled {
//	    invariants.Assertf(cond, "...")
//	}
//
// is dead code the compiler removes entirely — the sanitizer costs nothing
// when it is off, including the evaluation of the condition and arguments.
// Check sites must follow that gated form rather than calling Assertf
// unconditionally. A failed assertion panics: sanitizer builds are for tests
// and debugging runs, where a loud stop beats a silently wrong number.
// Published experiment numbers come from default (non-sanitizer) builds; see
// EXPERIMENTS.md.
package invariants
