//go:build graphpart_invariants

package invariants

import "fmt"

// Enabled reports whether the sanitizer is compiled in.
const Enabled = true

// Assertf panics with a formatted message when cond is false.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("graphpart invariant violated: " + fmt.Sprintf(format, args...))
	}
}
