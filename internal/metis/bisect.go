package metis

import (
	"github.com/graphpart/graphpart/internal/rng"
)

// bisection state: side[v] in {0, 1}.

// greedyGrow produces an initial bisection of w targeting targetW vertex
// weight on side 0: it grows a BFS-like region from a random seed, always
// absorbing the boundary vertex with the highest connection weight to the
// region, until the target weight is reached. Several trials keep the best
// cut.
func greedyGrow(w *wgraph, targetW int64, r *rng.RNG, trials int) []uint8 {
	n := w.numVertices()
	best := make([]uint8, n)
	bestCut := int64(-1)
	side := make([]uint8, n)
	gain := make([]int32, n)
	inRegion := make([]bool, n)
	for t := 0; t < trials; t++ {
		for i := range side {
			side[i] = 1
			gain[i] = 0
			inRegion[i] = false
		}
		seed := int32(r.Intn(n))
		grown := int64(0)
		// boundary is a simple slice scanned for the max-gain vertex;
		// coarsest graphs are small so O(B) per step is fine.
		var boundary []int32
		add := func(v int32) {
			side[v] = 0
			inRegion[v] = true
			grown += int64(w.vwgt[v])
			nbrs, wts := w.neighbors(v)
			for i, u := range nbrs {
				if inRegion[u] {
					continue
				}
				if gain[u] == 0 {
					boundary = append(boundary, u)
				}
				gain[u] += wts[i]
			}
		}
		add(seed)
		for grown < targetW {
			var bestB int32 = -1
			var bestG int32 = -1
			idx := -1
			for i, u := range boundary {
				if inRegion[u] {
					continue
				}
				if gain[u] > bestG || (gain[u] == bestG && u < bestB) {
					bestB, bestG, idx = u, gain[u], i
				}
			}
			if bestB == -1 {
				// Disconnected coarse graph: seed a fresh region.
				fresh := int32(-1)
				for v := int32(0); int(v) < n; v++ {
					if !inRegion[v] {
						fresh = v
						break
					}
				}
				if fresh == -1 {
					break
				}
				add(fresh)
				continue
			}
			// Stop rather than overshoot badly.
			if grown+int64(w.vwgt[bestB]) > targetW+targetW/4 && grown > targetW/2 {
				break
			}
			boundary[idx] = boundary[len(boundary)-1]
			boundary = boundary[:len(boundary)-1]
			add(bestB)
		}
		cut := cutWeight(w, side)
		if bestCut == -1 || cut < bestCut {
			bestCut = cut
			copy(best, side)
		}
	}
	return best
}

// cutWeight returns the total weight of edges crossing the bisection.
func cutWeight(w *wgraph, side []uint8) int64 {
	var cut int64
	for v := int32(0); int(v) < w.numVertices(); v++ {
		nbrs, wts := w.neighbors(v)
		for i, u := range nbrs {
			if u > v && side[u] != side[v] {
				cut += int64(wts[i])
			}
		}
	}
	return cut
}

// sideWeights returns the vertex weight on each side.
func sideWeights(w *wgraph, side []uint8) (w0, w1 int64) {
	for v := 0; v < w.numVertices(); v++ {
		if side[v] == 0 {
			w0 += int64(w.vwgt[v])
		} else {
			w1 += int64(w.vwgt[v])
		}
	}
	return w0, w1
}
