package metis

import (
	"fmt"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

// Config tunes the multilevel partitioner. The zero value uses defaults
// comparable to METIS's own: coarsen to ~128 vertices, 5% imbalance, 8 FM
// passes per level, 4 initial-partition trials.
type Config struct {
	// Seed drives matching order, initial-partition seeds and tie-breaks.
	Seed uint64
	// CoarsenTo stops coarsening when the graph has at most this many
	// vertices (default 128).
	CoarsenTo int
	// ImbalanceTol is the allowed multiplicative vertex-weight imbalance
	// per bisection (default 1.05).
	ImbalanceTol float64
	// FMPasses bounds refinement passes per level (default 8).
	FMPasses int
	// InitialTrials is the number of greedy-growing attempts at the
	// coarsest level (default 4).
	InitialTrials int
}

func (c Config) withDefaults() Config {
	if c.CoarsenTo <= 0 {
		c.CoarsenTo = 128
	}
	if c.ImbalanceTol <= 1 {
		c.ImbalanceTol = 1.05
	}
	if c.FMPasses <= 0 {
		c.FMPasses = 8
	}
	if c.InitialTrials <= 0 {
		c.InitialTrials = 4
	}
	return c
}

// Partitioner is the METIS-style offline baseline, adapted to the edge
// partitioning problem by deriving edge placements from the vertex
// partition (see DeriveEdgePartition).
type Partitioner struct {
	cfg Config
}

var _ partition.Partitioner = (*Partitioner)(nil)

// New returns a multilevel partitioner with the given configuration.
func New(cfg Config) *Partitioner {
	return &Partitioner{cfg: cfg.withDefaults()}
}

// Name implements partition.Partitioner. The algorithm is a from-scratch
// METIS-style multilevel scheme; the paper's evaluation labels it METIS.
func (m *Partitioner) Name() string { return "METIS" }

// Partition computes a vertex partition of g and derives a balanced edge
// partitioning from it.
func (m *Partitioner) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	labels, err := m.VertexPartition(g, p)
	if err != nil {
		return nil, err
	}
	return DeriveEdgePartition(g, labels, p)
}

// VertexPartition returns part labels in [0, p) for every vertex of g,
// computed by multilevel recursive bisection.
func (m *Partitioner) VertexPartition(g *graph.Graph, p int) ([]int32, error) {
	if g == nil {
		return nil, fmt.Errorf("metis: nil graph")
	}
	if p < 1 {
		return nil, fmt.Errorf("metis: need at least one partition, got %d", p)
	}
	n := g.NumVertices()
	labels := make([]int32, n)
	if p == 1 || n == 0 {
		return labels, nil
	}
	w := fromGraph(g)
	verts := make([]int32, n)
	for i := range verts {
		verts[i] = int32(i)
	}
	r := rng.New(m.cfg.Seed ^ 0x4d455449) // "METI"
	m.recursiveBisect(w, verts, p, 0, labels, r)
	return labels, nil
}

// recursiveBisect splits the subgraph induced on verts (vertex ids of w
// refer to positions in verts) into p parts, writing labels[origID] values
// in [base, base+p).
//
// w must be the weighted graph of exactly the verts subset (w vertex i
// corresponds to verts[i]).
func (m *Partitioner) recursiveBisect(w *wgraph, verts []int32, p int, base int32, labels []int32, r *rng.RNG) {
	if p == 1 || w.numVertices() == 0 {
		for _, orig := range verts {
			labels[orig] = base
		}
		return
	}
	p0 := (p + 1) / 2
	p1 := p - p0
	total := w.totalVertexWeight()
	target0 := total * int64(p0) / int64(p)
	side := m.bisect(w, target0, r)
	// Split vertices and build the two induced weighted subgraphs.
	sub0, verts0 := inducedWGraph(w, verts, side, 0)
	sub1, verts1 := inducedWGraph(w, verts, side, 1)
	m.recursiveBisect(sub0, verts0, p0, base, labels, r)
	m.recursiveBisect(sub1, verts1, p1, base+int32(p0), labels, r)
}

// bisect runs the multilevel V-cycle on w: coarsen, initial partition,
// uncoarsen with refinement.
func (m *Partitioner) bisect(w *wgraph, target0 int64, r *rng.RNG) []uint8 {
	cfg := m.cfg
	// Coarsening phase.
	levels := []level{{g: w}}
	cur := w
	totalW := w.totalVertexWeight()
	// Cap coarse vertex weight so one mega-vertex cannot block balance.
	maxVWgt := totalW / int64(cfg.CoarsenTo)
	if maxVWgt < 1 {
		maxVWgt = 1
	}
	for cur.numVertices() > cfg.CoarsenTo {
		match, coarseN := heavyEdgeMatching(cur, r, maxVWgt)
		if coarseN >= cur.numVertices()*97/100 {
			break // matching stalled; stop coarsening
		}
		cg, coarseOf := contract(cur, match, coarseN)
		levels[len(levels)-1].coarseOf = coarseOf
		levels = append(levels, level{g: cg})
		cur = cg
	}
	// Initial partition at the coarsest level.
	coarsest := levels[len(levels)-1].g
	side := greedyGrow(coarsest, target0, r, cfg.InitialTrials)
	refineFM(coarsest, side, target0, cfg.ImbalanceTol, cfg.FMPasses)
	// Uncoarsening with refinement.
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li]
		fineSide := make([]uint8, fine.g.numVertices())
		for v := range fineSide {
			fineSide[v] = side[fine.coarseOf[v]]
		}
		refineFM(fine.g, fineSide, target0, cfg.ImbalanceTol, cfg.FMPasses)
		side = fineSide
	}
	return side
}

// inducedWGraph extracts the side-s induced weighted subgraph, returning it
// together with the original vertex ids of its vertices.
func inducedWGraph(w *wgraph, verts []int32, side []uint8, s uint8) (*wgraph, []int32) {
	n := w.numVertices()
	newID := make([]int32, n)
	for i := range newID {
		newID[i] = -1
	}
	var subVerts []int32
	cnt := int32(0)
	for v := 0; v < n; v++ {
		if side[v] == s {
			newID[v] = cnt
			cnt++
			subVerts = append(subVerts, verts[v])
		}
	}
	sub := &wgraph{
		offsets: make([]int32, cnt+1),
		vwgt:    make([]int32, cnt),
	}
	// Count arcs first.
	var arcs int32
	for v := 0; v < n; v++ {
		if side[v] != s {
			continue
		}
		nbrs, _ := w.neighbors(int32(v))
		for _, u := range nbrs {
			if side[u] == s {
				arcs++
			}
		}
	}
	sub.adj = make([]int32, arcs)
	sub.wadj = make([]int32, arcs)
	pos := int32(0)
	for v := 0; v < n; v++ {
		if side[v] != s {
			continue
		}
		nv := newID[v]
		sub.offsets[nv] = pos
		sub.vwgt[nv] = w.vwgt[v]
		nbrs, wts := w.neighbors(int32(v))
		for i, u := range nbrs {
			if side[u] == s {
				sub.adj[pos] = newID[u]
				sub.wadj[pos] = wts[i]
				pos++
			}
		}
	}
	sub.offsets[cnt] = pos
	return sub, subVerts
}

// DeriveEdgePartition assigns every edge of g to the part of one of its
// endpoints, choosing the endpoint whose part currently holds fewer edges.
// This is the standard adaptation used when a vertex partitioner serves as
// an edge-partitioning baseline: RF stays low because edges follow the
// vertex cut, while edge loads balance greedily. Loads are NOT guaranteed to
// meet the strict capacity C (vertex partitioners balance vertices, not
// edges); callers validating the result should allow slack.
func DeriveEdgePartition(g *graph.Graph, labels []int32, p int) (*partition.Assignment, error) {
	if len(labels) != g.NumVertices() {
		return nil, fmt.Errorf("metis: %d labels for %d vertices", len(labels), g.NumVertices())
	}
	a, err := partition.New(g.NumEdges(), p)
	if err != nil {
		return nil, err
	}
	for id, e := range g.Edges() {
		ku, kv := labels[e.U], labels[e.V]
		if ku < 0 || int(ku) >= p || kv < 0 || int(kv) >= p {
			return nil, fmt.Errorf("metis: label out of range for edge %d", id)
		}
		k := ku
		if ku != kv && a.Load(int(kv)) < a.Load(int(ku)) {
			k = kv
		}
		a.Assign(graph.EdgeID(id), int(k))
	}
	return a, nil
}
