// Package metis implements a from-scratch METIS-style multilevel graph
// partitioner — the offline baseline of the paper's evaluation — and the
// derivation of a balanced edge partitioning from its vertex partitioning.
//
// The pipeline is the classic three phases of Karypis & Kumar:
//
//  1. Coarsening: repeated heavy-edge matching contracts the graph until it
//     is small.
//  2. Initial partitioning: greedy graph growing bisects the coarsest graph.
//  3. Uncoarsening: the bisection is projected back level by level, refined
//     at each level with Fiduccia-Mattheyses boundary passes.
//
// k-way partitions come from recursive bisection. Because METIS partitions
// vertices while the paper's problem partitions edges, each edge of the
// input is then assigned to one of its endpoints' parts, preferring the
// lighter part, which is the standard adaptation used when METIS appears as
// an edge-partitioning baseline.
package metis

import (
	"sort"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

// wgraph is a weighted undirected graph in CSR form used internally by the
// multilevel hierarchy. Vertex weights count collapsed input vertices; edge
// weights count collapsed input edges.
type wgraph struct {
	offsets []int32
	adj     []int32
	wadj    []int32 // edge weight parallel to adj
	vwgt    []int32 // vertex weights
	// fineMap maps this graph's vertices to the coarser... no: coarse
	// graph stores, for each fine vertex of the PREVIOUS level, its
	// coarse vertex id. Held by the level, not the graph.
}

func (w *wgraph) numVertices() int { return len(w.vwgt) }

func (w *wgraph) degree(v int32) int32 { return w.offsets[v+1] - w.offsets[v] }

func (w *wgraph) neighbors(v int32) ([]int32, []int32) {
	lo, hi := w.offsets[v], w.offsets[v+1]
	return w.adj[lo:hi], w.wadj[lo:hi]
}

func (w *wgraph) totalVertexWeight() int64 {
	var t int64
	for _, x := range w.vwgt {
		t += int64(x)
	}
	return t
}

// fromGraph converts the immutable input graph to a unit-weighted wgraph.
func fromGraph(g *graph.Graph) *wgraph {
	n := g.NumVertices()
	w := &wgraph{
		offsets: make([]int32, n+1),
		adj:     make([]int32, 2*g.NumEdges()),
		wadj:    make([]int32, 2*g.NumEdges()),
		vwgt:    make([]int32, n),
	}
	for v := 0; v < n; v++ {
		w.vwgt[v] = 1
		w.offsets[v+1] = w.offsets[v] + int32(g.Degree(graph.Vertex(v)))
		copy(w.adj[w.offsets[v]:w.offsets[v+1]], g.Neighbors(graph.Vertex(v)))
		for i := w.offsets[v]; i < w.offsets[v+1]; i++ {
			w.wadj[i] = 1
		}
	}
	return w
}

// level is one rung of the multilevel hierarchy.
type level struct {
	g *wgraph
	// coarseOf maps each vertex of this level's graph to its vertex in
	// the NEXT (coarser) graph; nil for the coarsest level.
	coarseOf []int32
}

// heavyEdgeMatching computes a matching that prefers heavy edges: vertices
// are visited in random order, and each unmatched vertex matches its
// unmatched neighbour with the heaviest connecting edge. Returns match[v] =
// partner (or v itself when unmatched) and the number of coarse vertices.
func heavyEdgeMatching(w *wgraph, r *rng.RNG, maxVWgt int64) (match []int32, coarseN int) {
	n := w.numVertices()
	match = make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	order := r.Perm(n)
	for _, vi := range order {
		v := int32(vi)
		if match[v] != -1 {
			continue
		}
		var best int32 = -1
		var bestW int32 = -1
		nbrs, wts := w.neighbors(v)
		for i, u := range nbrs {
			if match[u] != -1 || u == v {
				continue
			}
			if int64(w.vwgt[v])+int64(w.vwgt[u]) > maxVWgt {
				continue // keep coarse vertices from ballooning
			}
			if wts[i] > bestW || (wts[i] == bestW && u < best) {
				best, bestW = u, wts[i]
			}
		}
		if best == -1 {
			match[v] = v
		} else {
			match[v] = best
			match[best] = v
		}
	}
	// Count coarse vertices: one per matched pair, one per singleton.
	for v := int32(0); int(v) < n; v++ {
		if match[v] == v || match[v] > v {
			coarseN++
		}
	}
	return match, coarseN
}

// contract builds the coarser graph from a matching, also returning the
// fine-to-coarse vertex map.
func contract(w *wgraph, match []int32, coarseN int) (*wgraph, []int32) {
	n := w.numVertices()
	coarseOf := make([]int32, n)
	next := int32(0)
	for v := int32(0); int(v) < n; v++ {
		if match[v] == v || match[v] > v {
			coarseOf[v] = next
			if match[v] != v {
				coarseOf[match[v]] = next
			}
			next++
		}
	}
	cg := &wgraph{
		offsets: make([]int32, coarseN+1),
		vwgt:    make([]int32, coarseN),
	}
	for v := int32(0); int(v) < n; v++ {
		cg.vwgt[coarseOf[v]] += w.vwgt[v]
	}
	// Accumulate coarse adjacency with a per-coarse-vertex map pass.
	type arc struct {
		to int32
		w  int32
	}
	arcs := make([][]arc, coarseN)
	merge := make(map[int32]int32, 16)
	for cv := int32(0); int(cv) < coarseN; cv++ {
		_ = cv
	}
	// Group fine vertices by coarse id for cache-friendly accumulation.
	members := make([][]int32, coarseN)
	for v := int32(0); int(v) < n; v++ {
		c := coarseOf[v]
		members[c] = append(members[c], v)
	}
	for c := int32(0); int(c) < coarseN; c++ {
		for k := range merge {
			delete(merge, k)
		}
		for _, v := range members[c] {
			nbrs, wts := w.neighbors(v)
			for i, u := range nbrs {
				cu := coarseOf[u]
				if cu == c {
					continue // internal edge collapses
				}
				merge[cu] += wts[i]
			}
		}
		lst := make([]arc, 0, len(merge))
		for to, wt := range merge {
			lst = append(lst, arc{to, wt}) //lint:ignore GL001 sorted by .to two lines below
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i].to < lst[j].to })
		arcs[c] = lst
	}
	total := 0
	for _, l := range arcs {
		total += len(l)
	}
	cg.adj = make([]int32, total)
	cg.wadj = make([]int32, total)
	pos := int32(0)
	for c := 0; c < coarseN; c++ {
		cg.offsets[c] = pos
		for _, a := range arcs[c] {
			cg.adj[pos] = a.to
			cg.wadj[pos] = a.w
			pos++
		}
	}
	cg.offsets[coarseN] = pos
	return cg, coarseOf
}
