package metis

import (
	"testing"

	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

func TestDeriveFirstEndpoint(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	labels := []int32{0, 0, 1, 1}
	a, err := DeriveFirstEndpoint(g, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	for id, e := range g.Edges() {
		k, ok := a.PartitionOf(graph.EdgeID(id))
		if !ok || int32(k) != labels[e.U] {
			t.Fatalf("edge %d in part %d, want %d", id, k, labels[e.U])
		}
	}
	if _, err := DeriveFirstEndpoint(g, []int32{0}, 2); err == nil {
		t.Fatal("short labels accepted")
	}
	if _, err := DeriveFirstEndpoint(g, []int32{0, 0, 5, 0}, 2); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestDeriveBalancedEnforcesCapacity(t *testing.T) {
	// Heavy skew: put almost everything in one vertex part.
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 500, TargetEdges: 3000, Exponent: 2.0}, rng.New(1))
	labels := make([]int32, g.NumVertices())
	for v := range labels {
		if v%10 == 0 {
			labels[v] = 1
		}
	}
	p := 4
	a, err := DeriveBalanced(g, labels, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{}); err != nil {
		t.Fatalf("DeriveBalanced violated strict capacity: %v", err)
	}
}

func TestDeriveBalancedNoopWhenBalanced(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	labels := []int32{0, 0, 1, 1}
	a, err := DeriveBalanced(g, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Load(0) != 1 || a.Load(1) != 1 {
		t.Fatalf("loads %v", a.Loads())
	}
}

func TestDeriveBalancedKeepsRFClose(t *testing.T) {
	// Rebalancing should cost only a modest RF increase vs the greedy
	// derivation on a realistic graph.
	g := gen.Collaboration(gen.CollabConfig{Authors: 1500, TargetEdges: 15000, MeanAuthorsPerPaper: 4.5, ProlificExponent: 0.75}, rng.New(2))
	m := New(Config{Seed: 3})
	labels, err := m.VertexPartition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	aGreedy, err := DeriveEdgePartition(g, labels, 8)
	if err != nil {
		t.Fatal(err)
	}
	aBal, err := DeriveBalanced(g, labels, 8)
	if err != nil {
		t.Fatal(err)
	}
	rfG, err := partition.ReplicationFactor(g, aGreedy)
	if err != nil {
		t.Fatal(err)
	}
	rfB, err := partition.ReplicationFactor(g, aBal)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, aBal, partition.ValidateOptions{}); err != nil {
		t.Fatalf("balanced derivation invalid: %v", err)
	}
	if rfB > 1.5*rfG {
		t.Fatalf("balanced derivation RF %.3f blew up vs greedy %.3f", rfB, rfG)
	}
}

func TestFlatKLValid(t *testing.T) {
	g := randomGraph(51, 300, 900)
	kl := NewFlatKL(Config{Seed: 52})
	if kl.Name() != "KL" {
		t.Fatal("wrong name")
	}
	a, err := kl.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 3}); err != nil {
		t.Fatalf("flat KL invalid: %v", err)
	}
}

// TestMultilevelBeatsFlatOnCommunities: the DESIGN.md §6 ablation —
// multilevel coarsening should find planted structure at least as well as
// flat KL from a random initial bisection.
func TestMultilevelBeatsFlatOnCommunities(t *testing.T) {
	g := gen.PlantedCommunities(gen.CommunityConfig{
		Vertices: 600, Communities: 8, TargetEdges: 6000, IntraFraction: 0.85,
	}, rng.New(53))
	p := 8
	aML, err := New(Config{Seed: 54}).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	aKL, err := NewFlatKL(Config{Seed: 54}).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	rfML, err := partition.ReplicationFactor(g, aML)
	if err != nil {
		t.Fatal(err)
	}
	rfKL, err := partition.ReplicationFactor(g, aKL)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("multilevel RF=%.3f, flat KL RF=%.3f", rfML, rfKL)
	if rfML > 1.25*rfKL {
		t.Fatalf("multilevel much worse than flat: %.3f vs %.3f", rfML, rfKL)
	}
}
