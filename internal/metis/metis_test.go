package metis

import (
	"testing"
	"testing/quick"

	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

func randomGraph(seed uint64, n, extra int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex(r.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

func TestWGraphFromGraph(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	w := fromGraph(g)
	if w.numVertices() != 4 {
		t.Fatalf("V=%d", w.numVertices())
	}
	if w.totalVertexWeight() != 4 {
		t.Fatalf("total weight %d", w.totalVertexWeight())
	}
	if w.degree(1) != 2 {
		t.Fatalf("degree(1)=%d", w.degree(1))
	}
	nbrs, wts := w.neighbors(1)
	if len(nbrs) != 2 || wts[0] != 1 {
		t.Fatalf("neighbors(1)=%v %v", nbrs, wts)
	}
}

func TestHeavyEdgeMatchingValid(t *testing.T) {
	g := randomGraph(1, 100, 300)
	w := fromGraph(g)
	match, coarseN := heavyEdgeMatching(w, rng.New(2), 1000)
	if coarseN <= 0 || coarseN > 100 {
		t.Fatalf("coarseN=%d", coarseN)
	}
	for v := int32(0); v < 100; v++ {
		m := match[v]
		if m == -1 {
			t.Fatalf("vertex %d unmatched marker left", v)
		}
		if m != v && match[m] != v {
			t.Fatalf("matching not symmetric: %d->%d->%d", v, m, match[m])
		}
	}
}

func TestContractPreservesWeight(t *testing.T) {
	g := randomGraph(3, 80, 200)
	w := fromGraph(g)
	match, coarseN := heavyEdgeMatching(w, rng.New(4), 1000)
	cg, coarseOf := contract(w, match, coarseN)
	if cg.numVertices() != coarseN {
		t.Fatalf("coarse V=%d, want %d", cg.numVertices(), coarseN)
	}
	if cg.totalVertexWeight() != w.totalVertexWeight() {
		t.Fatalf("vertex weight not preserved: %d vs %d",
			cg.totalVertexWeight(), w.totalVertexWeight())
	}
	// Total edge weight = original minus collapsed internal edges.
	var coarseW, fineW int64
	for v := int32(0); int(v) < cg.numVertices(); v++ {
		_, wts := cg.neighbors(v)
		for _, x := range wts {
			coarseW += int64(x)
		}
	}
	for v := int32(0); int(v) < w.numVertices(); v++ {
		nbrs, wts := w.neighbors(v)
		for i, u := range nbrs {
			if coarseOf[u] != coarseOf[v] {
				fineW += int64(wts[i])
			}
		}
	}
	if coarseW != fineW {
		t.Fatalf("cross edge weight mismatch: %d vs %d", coarseW, fineW)
	}
	for _, c := range coarseOf {
		if c < 0 || int(c) >= coarseN {
			t.Fatalf("coarseOf out of range: %d", c)
		}
	}
}

func TestGreedyGrowBalance(t *testing.T) {
	g := randomGraph(5, 200, 600)
	w := fromGraph(g)
	side := greedyGrow(w, 100, rng.New(6), 4)
	w0, w1 := sideWeights(w, side)
	if w0+w1 != 200 {
		t.Fatalf("weights %d+%d != 200", w0, w1)
	}
	if w0 < 50 || w0 > 150 {
		t.Fatalf("side 0 weight %d badly off target 100", w0)
	}
}

func TestRefineFMImprovesOrKeepsCut(t *testing.T) {
	g := randomGraph(7, 150, 450)
	w := fromGraph(g)
	// Awful initial bisection: alternating sides.
	side := make([]uint8, 150)
	for i := range side {
		side[i] = uint8(i % 2)
	}
	before := cutWeight(w, side)
	refineFM(w, side, 75, 1.05, 8)
	after := cutWeight(w, side)
	if after > before {
		t.Fatalf("FM worsened the cut: %d -> %d", before, after)
	}
	if after == before {
		t.Logf("FM made no progress (before=%d)", before)
	}
	w0, w1 := sideWeights(w, side)
	if float64(w0) > 75*1.05+1 || float64(w1) > 75*1.05+1 {
		t.Fatalf("FM violated balance: %d/%d", w0, w1)
	}
}

func TestVertexPartitionComplete(t *testing.T) {
	g := randomGraph(9, 500, 1500)
	m := New(Config{Seed: 11})
	for _, p := range []int{2, 3, 5, 10} {
		labels, err := m.VertexPartition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, p)
		for _, l := range labels {
			if l < 0 || int(l) >= p {
				t.Fatalf("label %d out of range", l)
			}
			counts[l]++
		}
		// Vertex balance within ~2x of average (recursive bisection with
		// 5% tolerance per level compounds).
		avg := 500 / p
		for k, c := range counts {
			if c > 2*avg+10 {
				t.Fatalf("p=%d part %d has %d of %d vertices", p, k, c, 500)
			}
		}
	}
}

func TestVertexPartitionErrors(t *testing.T) {
	m := New(Config{})
	if _, err := m.VertexPartition(nil, 2); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := randomGraph(13, 10, 10)
	if _, err := m.VertexPartition(g, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestVertexPartitionTrivial(t *testing.T) {
	g := randomGraph(15, 30, 50)
	m := New(Config{Seed: 1})
	labels, err := m.VertexPartition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatal("p=1 should label everything 0")
		}
	}
	// p > n still works.
	small := randomGraph(17, 5, 4)
	if _, err := m.VertexPartition(small, 10); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionEdgeComplete(t *testing.T) {
	g := randomGraph(19, 400, 1200)
	m := New(Config{Seed: 21})
	a, err := m.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Edge loads are balanced greedily, not strictly; allow 2x slack.
	if err := partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 2.0}); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	rf, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if rf < 1 || rf > 8 {
		t.Fatalf("RF %v out of range", rf)
	}
}

func TestMetisDeterministic(t *testing.T) {
	g := randomGraph(23, 200, 600)
	m := New(Config{Seed: 25})
	a1, err := m.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.NumEdges(); id++ {
		k1, _ := a1.PartitionOf(graph.EdgeID(id))
		k2, _ := a2.PartitionOf(graph.EdgeID(id))
		if k1 != k2 {
			t.Fatal("METIS not deterministic for fixed seed")
		}
	}
}

// TestMetisBeatsRandomOnCommunities: the multilevel scheme must find planted
// structure that random assignment misses.
func TestMetisBeatsRandomOnCommunities(t *testing.T) {
	g := gen.PlantedCommunities(gen.CommunityConfig{
		Vertices: 600, Communities: 8, TargetEdges: 6000, IntraFraction: 0.85,
	}, rng.New(27))
	p := 8
	a, err := New(Config{Seed: 29}).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	rfMetis, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	ar := partition.MustNew(g.NumEdges(), p)
	for id := 0; id < g.NumEdges(); id++ {
		ar.Assign(graph.EdgeID(id), r.Intn(p))
	}
	rfRand, err := partition.ReplicationFactor(g, ar)
	if err != nil {
		t.Fatal(err)
	}
	if rfMetis >= rfRand {
		t.Fatalf("METIS RF %.3f not below random %.3f", rfMetis, rfRand)
	}
}

func TestDeriveEdgePartition(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 3}})
	labels := []int32{0, 0, 1, 1}
	a, err := DeriveEdgePartition(g, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Edge (0,1) must be in part 0; edge (2,3) in part 1.
	if id, _ := g.FindEdge(0, 1); mustPart(t, a, id) != 0 {
		t.Fatal("intra-part edge placed in wrong part")
	}
	if id, _ := g.FindEdge(2, 3); mustPart(t, a, id) != 1 {
		t.Fatal("intra-part edge placed in wrong part")
	}
	// Errors.
	if _, err := DeriveEdgePartition(g, []int32{0}, 2); err == nil {
		t.Fatal("short labels accepted")
	}
	if _, err := DeriveEdgePartition(g, []int32{0, 0, 9, 0}, 2); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func mustPart(t *testing.T, a *partition.Assignment, id graph.EdgeID) int {
	t.Helper()
	k, ok := a.PartitionOf(id)
	if !ok {
		t.Fatalf("edge %d unassigned", id)
	}
	return k
}

// Property: every METIS edge partitioning is complete with labels in range.
func TestMetisValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(150)
		g := randomGraph(seed, n, r.Intn(3*n))
		p := 2 + r.Intn(6)
		a, err := New(Config{Seed: seed}).Partition(g, p)
		if err != nil {
			return false
		}
		return partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 3.0}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMetisMedium(b *testing.B) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 10000, TargetEdges: 50000, Exponent: 2.1}, rng.New(33))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(Config{Seed: uint64(i)}).Partition(g, 10); err != nil {
			b.Fatal(err)
		}
	}
}
