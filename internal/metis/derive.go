package metis

import (
	"fmt"
	"sort"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
)

// DeriveFirstEndpoint assigns every edge to the part of its canonical first
// endpoint (U). The simplest derivation rule; exists as the ablation
// counterpart of DeriveEdgePartition's lighter-load rule (DESIGN.md §6) —
// it produces lower RF for cut edges touching hubs but can be badly
// imbalanced.
func DeriveFirstEndpoint(g *graph.Graph, labels []int32, p int) (*partition.Assignment, error) {
	if len(labels) != g.NumVertices() {
		return nil, fmt.Errorf("metis: %d labels for %d vertices", len(labels), g.NumVertices())
	}
	a, err := partition.New(g.NumEdges(), p)
	if err != nil {
		return nil, err
	}
	for id, e := range g.Edges() {
		k := labels[e.U]
		if k < 0 || int(k) >= p {
			return nil, fmt.Errorf("metis: label out of range for edge %d", id)
		}
		a.Assign(graph.EdgeID(id), int(k))
	}
	return a, nil
}

// DeriveBalanced is DeriveEdgePartition followed by a rebalancing pass that
// enforces the strict capacity C = ceil(m/p) of Definition 3: overfull
// partitions donate edges to underfull ones, preferring donations that do
// not create new replicas (an edge moves to a partition where both its
// endpoints are already present), then cut edges moving to their other
// endpoint's part, then arbitrary edges. The result always satisfies
// |E(P_k)| <= C.
func DeriveBalanced(g *graph.Graph, labels []int32, p int) (*partition.Assignment, error) {
	a, err := DeriveEdgePartition(g, labels, p)
	if err != nil {
		return nil, err
	}
	capC := partition.Capacity(g.NumEdges(), p)
	over := overfull(a, capC)
	if len(over) == 0 {
		return a, nil
	}
	// present[k] is a vertex->bool presence map per partition, maintained
	// approximately (presence is only added, never removed, so "both
	// endpoints present" stays a safe no-new-replica test for targets).
	present := make([]map[graph.Vertex]bool, p)
	for k := range present {
		present[k] = make(map[graph.Vertex]bool)
	}
	for id, e := range g.Edges() {
		k, _ := a.PartitionOf(graph.EdgeID(id))
		present[k][e.U] = true
		present[k][e.V] = true
	}
	// Edge donation candidates per overfull partition, cheapest first:
	// pass 1 free moves, pass 2 endpoint-part moves, pass 3 forced moves.
	for _, k := range over {
		for pass := 1; pass <= 3 && a.Load(k) > capC; pass++ {
			for id := 0; id < g.NumEdges() && a.Load(k) > capC; id++ {
				eid := graph.EdgeID(id)
				cur, _ := a.PartitionOf(eid)
				if cur != k {
					continue
				}
				e := g.Edge(eid)
				target := -1
				switch pass {
				case 1:
					// Free: some underfull partition already holds
					// both endpoints.
					for t := 0; t < p; t++ {
						if t != k && a.Load(t) < capC &&
							present[t][e.U] && present[t][e.V] {
							target = t
							break
						}
					}
				case 2:
					// The other endpoint's labelled part, if underfull.
					for _, cand := range []int32{labels[e.U], labels[e.V]} {
						t := int(cand)
						if t != k && t >= 0 && t < p && a.Load(t) < capC {
							target = t
							break
						}
					}
				default:
					// Any least-loaded partition.
					for t := 0; t < p; t++ {
						if t != k && a.Load(t) < capC &&
							(target == -1 || a.Load(t) < a.Load(target)) {
							target = t
						}
					}
				}
				if target == -1 {
					continue
				}
				a.Assign(eid, target)
				present[target][e.U] = true
				present[target][e.V] = true
			}
		}
	}
	return a, nil
}

// overfull returns partitions exceeding capC, most-loaded first.
func overfull(a *partition.Assignment, capC int) []int {
	var out []int
	for k := 0; k < a.P(); k++ {
		if a.Load(k) > capC {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return a.Load(out[i]) > a.Load(out[j]) })
	return out
}

// FlatKL is the multilevel pipeline with coarsening disabled: greedy growing
// plus FM refinement on the full graph, recursively bisected — effectively
// the classic Kernighan-Lin/FM approach the paper cites as the pre-METIS
// offline baseline. Exists as the DESIGN.md §6 multilevel-vs-flat ablation.
type FlatKL struct {
	cfg Config
}

var _ partition.Partitioner = (*FlatKL)(nil)

// NewFlatKL returns the non-multilevel offline baseline.
func NewFlatKL(cfg Config) *FlatKL {
	c := cfg.withDefaults()
	// Disabling coarsening: the driver stops immediately when the graph
	// is already at or below CoarsenTo, so set it enormous.
	c.CoarsenTo = int(^uint(0) >> 1)
	return &FlatKL{cfg: c}
}

// Name implements partition.Partitioner.
func (f *FlatKL) Name() string { return "KL" }

// Partition implements partition.Partitioner.
func (f *FlatKL) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	m := &Partitioner{cfg: f.cfg}
	labels, err := m.VertexPartition(g, p)
	if err != nil {
		return nil, err
	}
	return DeriveEdgePartition(g, labels, p)
}
