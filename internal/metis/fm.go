package metis

// Fiduccia-Mattheyses bisection refinement with lazy gain heaps.
//
// Each pass considers boundary vertices (plus any vertex whose gain changes
// during the pass), tentatively moving the best-gain movable vertex until
// both heaps empty, then rolls back to the best prefix. One heap per side
// lets the pass respect the balance constraint without discarding
// candidates: if moving side-0's top would overweight side 1, side-1's top
// is considered instead.

type gainEntry struct {
	gain int64
	v    int32
}

// gainHeap is a max-heap by (gain desc, v asc), with lazy invalidation: an
// entry is live iff it matches the current gain[] value and the vertex is
// unlocked and still on the heap's side.
type gainHeap []gainEntry

func (h gainHeap) less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].v < h[j].v
}

func (h *gainHeap) push(e gainEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h).less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *gainHeap) pop() (gainEntry, bool) {
	old := *h
	if len(old) == 0 {
		return gainEntry{}, false
	}
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && (*h).less(l, best) {
			best = l
		}
		if r < last && (*h).less(r, best) {
			best = r
		}
		if best == i {
			break
		}
		(*h)[i], (*h)[best] = (*h)[best], (*h)[i]
		i = best
	}
	return top, true
}

// refineFM improves the bisection in place. target0 is the desired side-0
// weight and tol the multiplicative imbalance allowance (>= 1).
func refineFM(w *wgraph, side []uint8, target0 int64, tol float64, maxPasses int) {
	n := w.numVertices()
	if n == 0 {
		return
	}
	total := w.totalVertexWeight()
	target1 := total - target0
	maxW := [2]int64{
		int64(float64(target0) * tol),
		int64(float64(target1) * tol),
	}
	gain := make([]int64, n)
	locked := make([]bool, n)
	inHeap := make([]bool, n) // has a current entry; avoids duplicate seeding
	var heaps [2]gainHeap
	moveOrder := make([]int32, 0, 256)

	for pass := 0; pass < maxPasses; pass++ {
		w0, w1 := sideWeights(w, side)
		weights := [2]int64{w0, w1}
		heaps[0] = heaps[0][:0]
		heaps[1] = heaps[1][:0]
		for v := range locked {
			locked[v] = false
			inHeap[v] = false
		}
		// Seed with boundary vertices only.
		for v := int32(0); int(v) < n; v++ {
			g, boundary := gainAndBoundary(w, side, v)
			gain[v] = g
			if boundary {
				heaps[side[v]].push(gainEntry{gain: g, v: v})
				inHeap[v] = true
			}
		}
		moveOrder = moveOrder[:0]
		var cumGain, bestGain int64
		bestPrefix := 0
		for {
			v, ok := popBest(&heaps, gain, locked, side, weights, maxW, w)
			if !ok {
				break
			}
			s := side[v]
			vw := int64(w.vwgt[v])
			side[v] = 1 - s
			weights[s] -= vw
			weights[1-s] += vw
			locked[v] = true
			cumGain += gain[v]
			moveOrder = append(moveOrder, v)
			if cumGain > bestGain {
				bestGain = cumGain
				bestPrefix = len(moveOrder)
			}
			// Update neighbour gains and (re)queue them.
			nbrs, wts := w.neighbors(v)
			for i, u := range nbrs {
				if locked[u] {
					continue
				}
				if side[u] == side[v] {
					gain[u] -= 2 * int64(wts[i])
				} else {
					gain[u] += 2 * int64(wts[i])
				}
				heaps[side[u]].push(gainEntry{gain: gain[u], v: u})
				inHeap[u] = true
			}
			// A long losing streak on a large level will not recover;
			// stop the pass early.
			if len(moveOrder)-bestPrefix > 256 {
				break
			}
		}
		for i := len(moveOrder) - 1; i >= bestPrefix; i-- {
			v := moveOrder[i]
			s := side[v]
			side[v] = 1 - s
		}
		if bestGain <= 0 {
			return
		}
	}
}

// popBest returns the best movable unlocked vertex across both heaps,
// respecting the balance bounds, discarding stale entries as it goes.
func popBest(heaps *[2]gainHeap, gain []int64, locked []bool, side []uint8,
	weights [2]int64, maxW [2]int64, w *wgraph) (int32, bool) {
	// Surface a live top on each heap.
	var tops [2]gainEntry
	var has [2]bool
	for s := 0; s < 2; s++ {
		for len(heaps[s]) > 0 {
			e := heaps[s][0]
			if locked[e.v] || side[e.v] != uint8(s) || gain[e.v] != e.gain {
				_, _ = heaps[s].pop()
				continue
			}
			tops[s], has[s] = e, true
			break
		}
	}
	// Filter by balance: moving from side s adds weight to side 1-s.
	movable := func(s int) bool {
		if !has[s] {
			return false
		}
		return weights[1-s]+int64(w.vwgt[tops[s].v]) <= maxW[1-s]
	}
	m0, m1 := movable(0), movable(1)
	switch {
	case m0 && m1:
		s := 0
		if heapsLess(tops[1], tops[0]) {
			s = 1
		}
		_, _ = heaps[s].pop()
		return tops[s].v, true
	case m0:
		_, _ = heaps[0].pop()
		return tops[0].v, true
	case m1:
		_, _ = heaps[1].pop()
		return tops[1].v, true
	default:
		return 0, false
	}
}

func heapsLess(a, b gainEntry) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.v < b.v
}

// gainAndBoundary returns v's move gain and whether it lies on the cut.
func gainAndBoundary(w *wgraph, side []uint8, v int32) (int64, bool) {
	var ext, internal int64
	nbrs, wts := w.neighbors(v)
	for i, u := range nbrs {
		if side[u] == side[v] {
			internal += int64(wts[i])
		} else {
			ext += int64(wts[i])
		}
	}
	return ext - internal, ext > 0
}
