package streaming

import (
	"path/filepath"
	"runtime"
	"testing"

	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
	"github.com/graphpart/graphpart/internal/source"
)

// sliceSource replays a recorded edge sequence verbatim. It is NOT
// graph-backed, so it exercises the pure-stream code paths with a sequence
// whose placement history matches a graph-backed run.
type sliceSource struct {
	n     int
	edges []source.Edge
	pos   int
}

func (s *sliceSource) NumVertices() int { return s.n }
func (s *sliceSource) NumEdges() int    { return len(s.edges) }
func (s *sliceSource) Reset() error     { s.pos = 0; return nil }
func (s *sliceSource) Next() (source.Edge, bool, error) {
	if s.pos >= len(s.edges) {
		return source.Edge{}, false, nil
	}
	e := s.edges[s.pos]
	s.pos++
	return e, true, nil
}

// record drains a source into a sliceSource.
func record(t *testing.T, src source.EdgeSource) *sliceSource {
	t.Helper()
	out := &sliceSource{n: src.NumVertices()}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	for {
		e, ok, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out.edges = append(out.edges, e)
	}
}

// sameAssignment fails unless a and b place every edge identically.
func sameAssignment(t *testing.T, name string, a, b *partition.Assignment) {
	t.Helper()
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: edge counts differ: %d vs %d", name, a.NumEdges(), b.NumEdges())
	}
	for id := 0; id < a.NumEdges(); id++ {
		ka, oka := a.PartitionOf(graph.EdgeID(id))
		kb, okb := b.PartitionOf(graph.EdgeID(id))
		if oka != okb || ka != kb {
			t.Fatalf("%s: edge %d placed (%d,%v) vs (%d,%v)", name, id, ka, oka, kb, okb)
		}
	}
}

// TestEdgeStreamMatchesSource asserts the legacy EdgeStream permutation and
// the order-aware EdgeSource wrapper yield the same sequence for the same
// seed — the refactor's core invariant.
func TestEdgeStreamMatchesSource(t *testing.T) {
	g := randomGraph(13, 90, 400)
	for _, ord := range []Order{OrderShuffled, OrderNatural, OrderBFS} {
		want := EdgeStream(g, ord, 77)
		src := source.FromGraph(g, ord, 77)
		for i := 0; ; i++ {
			e, ok, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				if i != len(want) {
					t.Fatalf("order %d: source ended at %d, want %d edges", ord, i, len(want))
				}
				break
			}
			if e.ID != want[i] {
				t.Fatalf("order %d position %d: source emitted %d, EdgeStream has %d", ord, i, e.ID, want[i])
			}
		}
	}
}

// TestStreamPathMatchesGraphPath asserts byte-identical assignments between
// the legacy graph path and PartitionStream — both over the graph-backed
// source and over a pure stream replay of the same sequence.
func TestStreamPathMatchesGraphPath(t *testing.T) {
	g := randomGraph(21, 120, 600)
	const p = 5
	cases := []struct {
		name string
		part interface {
			partition.Partitioner
			PartitionStream(source.EdgeSource, int) (*partition.Assignment, error)
		}
		ord Order
	}{
		{"Random", NewRandom(3), OrderNatural},
		{"DBH", NewDBH(3), OrderNatural},
		{"Greedy-shuffled", NewGreedy(3, OrderShuffled), OrderShuffled},
		{"Greedy-bfs", NewGreedy(3, OrderBFS), OrderBFS},
		{"HDRF", NewHDRF(3, OrderShuffled, 0), OrderShuffled},
		{"LDG", NewLDG(3, OrderShuffled), OrderShuffled},
		{"FENNEL", NewFENNEL(3, OrderShuffled, 0), OrderShuffled},
	}
	for _, tc := range cases {
		legacy, err := tc.part.Partition(g, p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		viaGraphSource, err := tc.part.PartitionStream(source.FromGraph(g, tc.ord, 3), p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sameAssignment(t, tc.name+"/graph-source", legacy, viaGraphSource)

		// Edge streamers must match on a pure (non-graph) stream replay
		// too; vertex streamers intentionally use a different sketch off
		// the graph path, so only the edge streamers are asserted here.
		switch tc.name {
		case "LDG", "FENNEL":
			continue
		}
		replay := record(t, source.FromGraph(g, tc.ord, 3))
		viaReplay, err := tc.part.PartitionStream(replay, p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sameAssignment(t, tc.name+"/replay", legacy, viaReplay)
	}
}

// TestFileSourceMatchesGraphPath runs the natural-order edge streamers over
// a file written from the CSR and expects byte-identical assignments to the
// in-memory path — the out-of-core acceptance check.
func TestFileSourceMatchesGraphPath(t *testing.T) {
	g := randomGraph(8, 100, 500)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := graph.SaveEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		part interface {
			partition.Partitioner
			PartitionStream(source.EdgeSource, int) (*partition.Assignment, error)
		}
	}{
		{"Random", NewRandom(9)},
		{"DBH", NewDBH(9)},
		{"Greedy", NewGreedy(9, OrderNatural)},
		{"HDRF", NewHDRF(9, OrderNatural, 0)},
	} {
		src, err := source.OpenFile(path, source.FileConfig{DenseIDs: true})
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := tc.part.Partition(g, 4)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		streamed, err := tc.part.PartitionStream(src, 4)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		sameAssignment(t, tc.name+"/file", legacy, streamed)
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVertexStreamSketchIsComplete checks the LDG/FENNEL degree-sketch
// path (non-graph sources) produces a complete, capacity-sane assignment.
func TestVertexStreamSketchIsComplete(t *testing.T) {
	g := randomGraph(17, 150, 700)
	const p = 6
	for _, tc := range []struct {
		name string
		part partition.StreamPartitioner
	}{
		{"LDG", NewLDG(5, OrderNatural)},
		{"FENNEL", NewFENNEL(5, OrderNatural, 0)},
	} {
		src := &sliceSource{n: g.NumVertices()}
		for id, e := range g.Edges() {
			src.edges = append(src.edges, source.Edge{ID: graph.EdgeID(id), U: e.U, V: e.V})
		}
		a, err := tc.part.PartitionStream(src, p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := a.AssignedCount(); got != g.NumEdges() {
			t.Fatalf("%s: %d of %d edges assigned", tc.name, got, g.NumEdges())
		}
		rf, err := partition.StreamReplicationFactor(src, a)
		if err != nil {
			t.Fatal(err)
		}
		if rf < 1 || rf > float64(p) {
			t.Fatalf("%s: implausible replication factor %f", tc.name, rf)
		}
	}
}

// TestFileStreamingBoundedMemory is the out-of-core guarantee: partitioning
// a ~1M-edge edge-list file through a FileSource must keep live heap o(|E|)
// — far below the >=28 MB a CSR of that size costs — because the only O(m)
// state is the 4-byte-per-edge assignment itself.
func TestFileStreamingBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-edge generation in -short mode")
	}
	const (
		n = 200_000
		m = 1_000_000
	)
	path := filepath.Join(t.TempDir(), "big.txt")
	func() {
		g := gen.ErdosRenyi(n, m, rng.New(31))
		if g.NumEdges() != m {
			t.Fatalf("generated %d edges, want %d", g.NumEdges(), m)
		}
		if err := graph.SaveEdgeListFile(path, g); err != nil {
			t.Fatal(err)
		}
	}() // graph goes out of scope; only the file survives

	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)

	src, err := source.OpenFile(path, source.FileConfig{DenseIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = src.Close() }()
	a, err := NewGreedy(7, OrderNatural).PartitionStream(src, 8)
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	live := int64(after.HeapAlloc) - int64(before.HeapAlloc)

	// Live state: assignment parts (4 B x 1M = 4 MB) + replica bitsets
	// (8 B x 200k = 1.6 MB) + scanner buffer. 12 MB is a generous bound
	// that a CSR path (>= 28 MB: offsets + adjacency + edge array) cannot
	// meet.
	const budget = 12 << 20
	if live > budget {
		t.Fatalf("live heap grew %d bytes (> %d): streaming path is not out-of-core", live, budget)
	}
	if got := a.AssignedCount(); got != m {
		t.Fatalf("%d of %d edges assigned", got, m)
	}
	runtime.KeepAlive(a)
}
