package streaming

import (
	"testing"
	"testing/quick"

	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

func randomGraph(seed uint64, n, extra int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex(r.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

func allPartitioners(seed uint64) []partition.Partitioner {
	return []partition.Partitioner{
		NewRandom(seed),
		NewDBH(seed),
		NewGreedy(seed, OrderShuffled),
		NewHDRF(seed, OrderShuffled, 1.0),
		NewLDG(seed, OrderShuffled),
		NewFENNEL(seed, OrderShuffled, 1.5),
	}
}

func TestAllCompleteAndInRange(t *testing.T) {
	g := randomGraph(1, 300, 900)
	for _, pt := range allPartitioners(7) {
		for _, p := range []int{1, 2, 5, 10} {
			a, err := pt.Partition(g, p)
			if err != nil {
				t.Fatalf("%s p=%d: %v", pt.Name(), p, err)
			}
			if err := partition.Validate(g, a, partition.ValidateOptions{AllowUnassigned: false, CapacitySlack: 100}); err != nil {
				t.Fatalf("%s p=%d incomplete: %v", pt.Name(), p, err)
			}
			rf, err := partition.ReplicationFactor(g, a)
			if err != nil {
				t.Fatal(err)
			}
			if rf < 1 || rf > float64(p) {
				t.Fatalf("%s p=%d RF=%v out of range", pt.Name(), p, rf)
			}
		}
	}
}

func TestAllDeterministic(t *testing.T) {
	g := randomGraph(2, 200, 600)
	for _, makePt := range []func() partition.Partitioner{
		func() partition.Partitioner { return NewRandom(3) },
		func() partition.Partitioner { return NewDBH(3) },
		func() partition.Partitioner { return NewGreedy(3, OrderShuffled) },
		func() partition.Partitioner { return NewHDRF(3, OrderShuffled, 1.0) },
		func() partition.Partitioner { return NewLDG(3, OrderShuffled) },
		func() partition.Partitioner { return NewFENNEL(3, OrderShuffled, 1.5) },
	} {
		a1, err := makePt().Partition(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := makePt().Partition(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < g.NumEdges(); id++ {
			k1, _ := a1.PartitionOf(graph.EdgeID(id))
			k2, _ := a2.PartitionOf(graph.EdgeID(id))
			if k1 != k2 {
				t.Fatalf("%s not deterministic", makePt().Name())
			}
		}
	}
}

func TestRejectBadInput(t *testing.T) {
	g := randomGraph(3, 10, 10)
	for _, pt := range allPartitioners(1) {
		if _, err := pt.Partition(nil, 2); err == nil {
			t.Fatalf("%s accepted nil graph", pt.Name())
		}
		if _, err := pt.Partition(g, 0); err == nil {
			t.Fatalf("%s accepted p=0", pt.Name())
		}
	}
}

func TestRandomBalance(t *testing.T) {
	g := randomGraph(4, 500, 4500)
	a, err := NewRandom(5).Partition(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Hashing balances in expectation: every load within 30% of average.
	avg := float64(g.NumEdges()) / 10
	for k := 0; k < 10; k++ {
		if f := float64(a.Load(k)); f < 0.7*avg || f > 1.3*avg {
			t.Fatalf("random load %v far from average %v", f, avg)
		}
	}
}

func TestDBHHashesLowDegreeEndpoint(t *testing.T) {
	// Star graph: hub 0 with 20 leaves. Every edge's low-degree endpoint
	// is the leaf, so edges spread across partitions and the hub gets
	// replicated — leaves must never be replicated.
	b := graph.NewBuilder(21)
	for i := 1; i <= 20; i++ {
		_ = b.AddEdge(0, graph.Vertex(i))
	}
	g := b.Build()
	a, err := NewDBH(6).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := partition.ReplicaCount(g, a)
	for v := 1; v <= 20; v++ {
		if counts[v] != 1 {
			t.Fatalf("leaf %d replicated %d times", v, counts[v])
		}
	}
	if counts[0] < 2 {
		t.Fatalf("hub replicated only %d times; expected spread", counts[0])
	}
}

func TestGreedyClustersEdges(t *testing.T) {
	// Greedy should beat Random on RF for a community graph.
	g := gen.PlantedCommunities(gen.CommunityConfig{
		Vertices: 400, Communities: 8, TargetEdges: 4000, IntraFraction: 0.85,
	}, rng.New(7))
	p := 8
	ag, err := NewGreedy(8, OrderShuffled).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := NewRandom(8).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	rfG, err := partition.ReplicationFactor(g, ag)
	if err != nil {
		t.Fatal(err)
	}
	rfR, err := partition.ReplicationFactor(g, ar)
	if err != nil {
		t.Fatal(err)
	}
	if rfG >= rfR {
		t.Fatalf("Greedy RF %.3f not below Random %.3f", rfG, rfR)
	}
}

func TestHDRFBalanceBetterThanGreedy(t *testing.T) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 2000, TargetEdges: 10000, Exponent: 2.0}, rng.New(9))
	p := 10
	ah, err := NewHDRF(10, OrderShuffled, 1.0).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := partition.Compute(g, ah)
	if err != nil {
		t.Fatal(err)
	}
	// HDRF's explicit balance term should keep loads tight.
	if mh.Balance > 1.3 {
		t.Fatalf("HDRF balance %.3f too loose", mh.Balance)
	}
}

func TestLDGVertexBalance(t *testing.T) {
	g := randomGraph(11, 600, 1800)
	labels, err := NewLDG(12, OrderShuffled).VertexPartition(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 6)
	for _, l := range labels {
		if l < 0 || l >= 6 {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	capV := 600/6 + 1
	for k, c := range counts {
		if c > capV+1 {
			t.Fatalf("LDG part %d holds %d vertices, cap %d", k, c, capV)
		}
	}
}

func TestLDGPrefersNeighbours(t *testing.T) {
	// Two cliques joined by one edge; LDG with natural order should keep
	// each clique together (first clique fills partition with its
	// neighbours).
	b := graph.NewBuilder(12)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			_ = b.AddEdge(graph.Vertex(i), graph.Vertex(j))
			_ = b.AddEdge(graph.Vertex(6+i), graph.Vertex(6+j))
		}
	}
	_ = b.AddEdge(5, 11)
	g := b.Build()
	labels, err := NewLDG(13, OrderNatural).VertexPartition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 6; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("clique 1 split: %v", labels)
		}
		if labels[6+i] != labels[6] {
			t.Fatalf("clique 2 split: %v", labels)
		}
	}
}

func TestFENNELVertexPartition(t *testing.T) {
	g := randomGraph(14, 500, 1500)
	labels, err := NewFENNEL(15, OrderShuffled, 1.5).VertexPartition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 5)
	for _, l := range labels {
		counts[l]++
	}
	for k, c := range counts {
		if c == 0 {
			t.Fatalf("FENNEL left part %d empty", k)
		}
		if c > 2*(500/5) {
			t.Fatalf("FENNEL part %d has %d vertices", k, c)
		}
	}
}

func TestEdgeStreamOrders(t *testing.T) {
	g := randomGraph(16, 50, 150)
	m := g.NumEdges()
	for _, ord := range []Order{OrderShuffled, OrderNatural, OrderBFS} {
		ids := EdgeStream(g, ord, 17)
		if len(ids) != m {
			t.Fatalf("order %d: %d ids, want %d", ord, len(ids), m)
		}
		seen := make([]bool, m)
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("order %d: duplicate edge %d", ord, id)
			}
			seen[id] = true
		}
	}
	// Natural order is the identity.
	ids := EdgeStream(g, OrderNatural, 17)
	for i, id := range ids {
		if int(id) != i {
			t.Fatal("natural order not identity")
		}
	}
}

func TestReplicaSetsSmallAndLarge(t *testing.T) {
	for _, p := range []int{4, 100} {
		rs := newReplicaSets(10, p)
		if rs.count(3) != 0 {
			t.Fatal("fresh set non-empty")
		}
		rs.add(3, 0)
		rs.add(3, p-1)
		rs.add(3, 0) // idempotent
		if !rs.has(3, 0) || !rs.has(3, p-1) || rs.has(3, 1) {
			t.Fatalf("p=%d membership wrong", p)
		}
		if rs.count(3) != 2 {
			t.Fatalf("p=%d count=%d, want 2", p, rs.count(3))
		}
	}
}

// Property: all streaming partitioners produce complete assignments for
// arbitrary graphs.
func TestStreamingValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(80)
		g := randomGraph(seed, n, r.Intn(3*n))
		p := 1 + r.Intn(8)
		for _, pt := range allPartitioners(seed) {
			a, err := pt.Partition(g, p)
			if err != nil {
				return false
			}
			if err := partition.Validate(g, a, partition.ValidateOptions{CapacitySlack: 1000}); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDBH(b *testing.B) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 10000, TargetEdges: 50000, Exponent: 2.1}, rng.New(18))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDBH(uint64(i)).Partition(g, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 10000, TargetEdges: 50000, Exponent: 2.1}, rng.New(19))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewGreedy(uint64(i), OrderShuffled).Partition(g, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLDG(b *testing.B) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 10000, TargetEdges: 50000, Exponent: 2.1}, rng.New(20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewLDG(uint64(i), OrderShuffled).Partition(g, 10); err != nil {
			b.Fatal(err)
		}
	}
}
