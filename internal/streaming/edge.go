// Package streaming implements the streaming baselines of the paper's
// evaluation — LDG, DBH and Random — plus the standard streaming edge
// partitioners PowerGraph-Greedy and HDRF as extensions.
//
// Edge streamers (Random, DBH, Greedy, HDRF) place each edge as it arrives
// and never move it. Vertex streamers (LDG, FENNEL) place vertices and the
// edge placement is derived the same way as for the METIS baseline. All
// algorithms are deterministic for a fixed seed; the stream order is a
// seeded shuffle of the edge list unless configured otherwise.
package streaming

import (
	"fmt"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

// Order selects how the stream is sequenced.
type Order int

const (
	// OrderShuffled streams edges/vertices in a seeded random order
	// (the common evaluation setting; arrival order is adversarial
	// otherwise).
	OrderShuffled Order = iota + 1
	// OrderNatural streams in EdgeID/vertex-id order.
	OrderNatural
	// OrderBFS streams in breadth-first order from a seeded random root,
	// component by component (matches how crawled graphs arrive).
	OrderBFS
)

// EdgeStream yields the graph's EdgeIDs in the given order; exported for
// the sliding-window partitioner and tests.
func EdgeStream(g *graph.Graph, ord Order, seed uint64) []graph.EdgeID {
	m := g.NumEdges()
	ids := make([]graph.EdgeID, m)
	for i := range ids {
		ids[i] = graph.EdgeID(i)
	}
	switch ord {
	case OrderNatural:
	case OrderBFS:
		ids = ids[:0]
		r := rng.New(seed)
		seen := make([]bool, m)
		order := vertexBFSOrder(g, r)
		for _, v := range order {
			for _, eid := range g.IncidentEdges(v) {
				if !seen[eid] {
					seen[eid] = true
					ids = append(ids, eid)
				}
			}
		}
	default: // OrderShuffled
		r := rng.New(seed)
		r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	}
	return ids
}

// vertexBFSOrder returns all vertices in BFS order from random roots.
func vertexBFSOrder(g *graph.Graph, r *rng.RNG) []graph.Vertex {
	n := g.NumVertices()
	seen := make([]bool, n)
	order := make([]graph.Vertex, 0, n)
	perm := r.Perm(n)
	var queue []graph.Vertex
	for _, root := range perm {
		if seen[root] {
			continue
		}
		seen[root] = true
		queue = append(queue[:0], graph.Vertex(root))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range g.Neighbors(v) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return order
}

// replicaSets tracks, per vertex, the set of partitions holding a replica.
// Partition counts in this repository are small (p <= 64 covers the paper's
// 10-20), so a bitset per vertex suffices; larger p falls back to maps.
type replicaSets struct {
	p    int
	bits []uint64           // used when p <= 64
	maps []map[int]struct{} // used when p > 64
}

func newReplicaSets(n, p int) *replicaSets {
	rs := &replicaSets{p: p}
	if p <= 64 {
		rs.bits = make([]uint64, n)
	} else {
		rs.maps = make([]map[int]struct{}, n)
	}
	return rs
}

func (rs *replicaSets) add(v graph.Vertex, k int) {
	if rs.bits != nil {
		rs.bits[v] |= 1 << uint(k)
		return
	}
	if rs.maps[v] == nil {
		rs.maps[v] = make(map[int]struct{}, 4)
	}
	rs.maps[v][k] = struct{}{}
}

func (rs *replicaSets) has(v graph.Vertex, k int) bool {
	if rs.bits != nil {
		return rs.bits[v]&(1<<uint(k)) != 0
	}
	_, ok := rs.maps[v][k]
	return ok
}

func (rs *replicaSets) count(v graph.Vertex) int {
	if rs.bits != nil {
		c := 0
		for b := rs.bits[v]; b != 0; b &= b - 1 {
			c++
		}
		return c
	}
	return len(rs.maps[v])
}

// common validates inputs shared by all partitioners here.
func validateInput(g *graph.Graph, p int) error {
	if g == nil {
		return fmt.Errorf("streaming: nil graph")
	}
	if p < 1 {
		return fmt.Errorf("streaming: need at least one partition, got %d", p)
	}
	return nil
}

// Random assigns each edge to a uniformly random partition (hash of the
// edge id), the paper's lower-bound baseline.
type Random struct {
	seed uint64
}

var _ partition.Partitioner = (*Random)(nil)

// NewRandom returns the Random baseline.
func NewRandom(seed uint64) *Random { return &Random{seed: seed} }

// Name implements partition.Partitioner.
func (x *Random) Name() string { return "Random" }

// Partition implements partition.Partitioner.
func (x *Random) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	if err := validateInput(g, p); err != nil {
		return nil, err
	}
	a, err := partition.New(g.NumEdges(), p)
	if err != nil {
		return nil, err
	}
	for id := 0; id < g.NumEdges(); id++ {
		k := int(rng.Hash2(x.seed, uint64(id)) % uint64(p))
		a.Assign(graph.EdgeID(id), k)
	}
	return a, nil
}

// DBH is degree-based hashing (Xie et al., NIPS 2014): each edge is hashed
// on its lower-degree endpoint, so high-degree vertices are the ones that
// get replicated — the cheap strategy for power-law graphs.
type DBH struct {
	seed uint64
}

var _ partition.Partitioner = (*DBH)(nil)

// NewDBH returns the DBH baseline.
func NewDBH(seed uint64) *DBH { return &DBH{seed: seed} }

// Name implements partition.Partitioner.
func (x *DBH) Name() string { return "DBH" }

// Partition implements partition.Partitioner.
func (x *DBH) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	if err := validateInput(g, p); err != nil {
		return nil, err
	}
	a, err := partition.New(g.NumEdges(), p)
	if err != nil {
		return nil, err
	}
	for id, e := range g.Edges() {
		lo := e.U
		if g.Degree(e.V) < g.Degree(e.U) ||
			(g.Degree(e.V) == g.Degree(e.U) && e.V < e.U) {
			lo = e.V
		}
		k := int(rng.Hash2(x.seed, uint64(lo)) % uint64(p))
		a.Assign(graph.EdgeID(id), k)
	}
	return a, nil
}

// Greedy is the PowerGraph streaming heuristic (Gonzalez et al., OSDI 2012):
// place each arriving edge by the replica-overlap case analysis, breaking
// ties toward the least-loaded partition.
type Greedy struct {
	seed  uint64
	order Order
}

var _ partition.Partitioner = (*Greedy)(nil)

// NewGreedy returns the PowerGraph-style greedy streamer.
func NewGreedy(seed uint64, order Order) *Greedy {
	if order == 0 {
		order = OrderShuffled
	}
	return &Greedy{seed: seed, order: order}
}

// Name implements partition.Partitioner.
func (x *Greedy) Name() string { return "Greedy" }

// Partition implements partition.Partitioner.
func (x *Greedy) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	if err := validateInput(g, p); err != nil {
		return nil, err
	}
	a, err := partition.New(g.NumEdges(), p)
	if err != nil {
		return nil, err
	}
	rs := newReplicaSets(g.NumVertices(), p)
	for _, eid := range EdgeStream(g, x.order, x.seed) {
		e := g.Edge(eid)
		k := greedyChoose(a, rs, e, p)
		a.Assign(eid, k)
		rs.add(e.U, k)
		rs.add(e.V, k)
	}
	return a, nil
}

// greedyChoose applies the PowerGraph case analysis for edge e.
func greedyChoose(a *partition.Assignment, rs *replicaSets, e graph.Edge, p int) int {
	cu, cv := rs.count(e.U), rs.count(e.V)
	switch {
	case cu > 0 && cv > 0:
		// Case 1: intersection -> least-loaded common partition.
		best, found := -1, false
		for k := 0; k < p; k++ {
			if rs.has(e.U, k) && rs.has(e.V, k) {
				if !found || a.Load(k) < a.Load(best) {
					best, found = k, true
				}
			}
		}
		if found {
			return best
		}
		// Case 2: disjoint -> a partition of the vertex with more
		// unplaced... PowerGraph: choose from the sets of the vertex
		// with the most remaining edges; we approximate with the
		// least-loaded partition among the union.
		for k := 0; k < p; k++ {
			if rs.has(e.U, k) || rs.has(e.V, k) {
				if best == -1 || a.Load(k) < a.Load(best) {
					best = k
				}
			}
		}
		return best
	case cu > 0 || cv > 0:
		// Case 3: one placed vertex -> its least-loaded partition.
		v := e.U
		if cv > 0 {
			v = e.V
		}
		best := -1
		for k := 0; k < p; k++ {
			if rs.has(v, k) {
				if best == -1 || a.Load(k) < a.Load(best) {
					best = k
				}
			}
		}
		return best
	default:
		// Case 4: both new -> least-loaded partition overall.
		best := 0
		for k := 1; k < p; k++ {
			if a.Load(k) < a.Load(best) {
				best = k
			}
		}
		return best
	}
}

// HDRF is the High-Degree Replicated First streamer (Petroni et al., CIKM
// 2015): like Greedy but the replica-affinity score discounts the
// high-degree endpoint, plus an explicit load-balance term weighted by
// Lambda.
type HDRF struct {
	seed   uint64
	order  Order
	lambda float64
}

var _ partition.Partitioner = (*HDRF)(nil)

// NewHDRF returns an HDRF streamer; lambda <= 0 defaults to 1.0.
func NewHDRF(seed uint64, order Order, lambda float64) *HDRF {
	if order == 0 {
		order = OrderShuffled
	}
	if lambda <= 0 {
		lambda = 1.0
	}
	return &HDRF{seed: seed, order: order, lambda: lambda}
}

// Name implements partition.Partitioner.
func (x *HDRF) Name() string { return "HDRF" }

// Partition implements partition.Partitioner.
func (x *HDRF) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	if err := validateInput(g, p); err != nil {
		return nil, err
	}
	a, err := partition.New(g.NumEdges(), p)
	if err != nil {
		return nil, err
	}
	rs := newReplicaSets(g.NumVertices(), p)
	// Partial degrees observed so far in the stream (the streaming
	// setting does not know final degrees).
	pdeg := make([]int32, g.NumVertices())
	for _, eid := range EdgeStream(g, x.order, x.seed) {
		e := g.Edge(eid)
		pdeg[e.U]++
		pdeg[e.V]++
		k := x.choose(a, rs, e, p, pdeg)
		a.Assign(eid, k)
		rs.add(e.U, k)
		rs.add(e.V, k)
	}
	return a, nil
}

func (x *HDRF) choose(a *partition.Assignment, rs *replicaSets, e graph.Edge, p int, pdeg []int32) int {
	du, dv := float64(pdeg[e.U]), float64(pdeg[e.V])
	thetaU := du / (du + dv)
	thetaV := 1 - thetaU
	maxLoad, minLoad := 0, a.Load(0)
	for k := 0; k < p; k++ {
		l := a.Load(k)
		if l > maxLoad {
			maxLoad = l
		}
		if l < minLoad {
			minLoad = l
		}
	}
	best, bestScore := 0, -1.0
	for k := 0; k < p; k++ {
		var crep float64
		if rs.has(e.U, k) {
			crep += 1 + (1 - thetaU)
		}
		if rs.has(e.V, k) {
			crep += 1 + (1 - thetaV)
		}
		denom := float64(maxLoad - minLoad)
		if denom < 1 {
			denom = 1
		}
		cbal := x.lambda * float64(maxLoad-a.Load(k)) / denom
		if score := crep + cbal; score > bestScore {
			best, bestScore = k, score
		}
	}
	return best
}
