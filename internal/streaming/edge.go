// Package streaming implements the streaming baselines of the paper's
// evaluation — LDG, DBH and Random — plus the standard streaming edge
// partitioners PowerGraph-Greedy and HDRF as extensions.
//
// Edge streamers (Random, DBH, Greedy, HDRF) place each edge as it arrives
// and never move it; they consume an arbitrary source.EdgeSource in
// O(p + vertex-state) memory, so file-backed and generator-backed streams
// partition without a CSR. Vertex streamers (LDG, FENNEL) place vertices
// and derive the edge placement the same way as for the METIS baseline; on
// a graph-backed source they use the exact legacy path, elsewhere a
// documented two-pass degree-sketch variant. All algorithms are
// deterministic for a fixed seed; the stream order of a graph-backed run is
// a seeded shuffle of the edge list unless configured otherwise.
package streaming

import (
	"fmt"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
	"github.com/graphpart/graphpart/internal/source"
)

// Order selects how the stream is sequenced; it is the canonical
// source.Order, re-exported so existing callers keep compiling.
type Order = source.Order

const (
	// OrderShuffled streams edges/vertices in a seeded random order
	// (the common evaluation setting; arrival order is adversarial
	// otherwise).
	OrderShuffled = source.OrderShuffled
	// OrderNatural streams in EdgeID/vertex-id order.
	OrderNatural = source.OrderNatural
	// OrderBFS streams in breadth-first order from a seeded random root,
	// component by component (matches how crawled graphs arrive).
	OrderBFS = source.OrderBFS
)

// EdgeStream yields the graph's EdgeIDs in the given order; it delegates to
// source.EdgeOrder, the one canonical permutation, so the slice path and
// the EdgeSource path cannot drift apart. Retained for the sliding-window
// partitioner and tests.
func EdgeStream(g *graph.Graph, ord Order, seed uint64) []graph.EdgeID {
	return source.EdgeOrder(g, ord, seed)
}

// replicaSets tracks, per vertex, the set of partitions holding a replica.
// Partition counts in this repository are small (p <= 64 covers the paper's
// 10-20), so a bitset per vertex suffices; larger p falls back to maps.
type replicaSets struct {
	p    int
	bits []uint64           // used when p <= 64
	maps []map[int]struct{} // used when p > 64
}

func newReplicaSets(n, p int) *replicaSets {
	rs := &replicaSets{p: p}
	if p <= 64 {
		rs.bits = make([]uint64, n)
	} else {
		rs.maps = make([]map[int]struct{}, n)
	}
	return rs
}

func (rs *replicaSets) add(v graph.Vertex, k int) {
	if rs.bits != nil {
		rs.bits[v] |= 1 << uint(k)
		return
	}
	if rs.maps[v] == nil {
		rs.maps[v] = make(map[int]struct{}, 4)
	}
	rs.maps[v][k] = struct{}{}
}

func (rs *replicaSets) has(v graph.Vertex, k int) bool {
	if rs.bits != nil {
		return rs.bits[v]&(1<<uint(k)) != 0
	}
	_, ok := rs.maps[v][k]
	return ok
}

func (rs *replicaSets) count(v graph.Vertex) int {
	if rs.bits != nil {
		c := 0
		for b := rs.bits[v]; b != 0; b &= b - 1 {
			c++
		}
		return c
	}
	return len(rs.maps[v])
}

// validateInput checks inputs shared by the graph-based entry points.
func validateInput(g *graph.Graph, p int) error {
	if g == nil {
		return fmt.Errorf("streaming: nil graph")
	}
	if p < 1 {
		return fmt.Errorf("streaming: need at least one partition, got %d", p)
	}
	return nil
}

// validateSource checks inputs shared by the stream entry points.
func validateSource(src source.EdgeSource, p int) error {
	if src == nil {
		return fmt.Errorf("streaming: nil edge source")
	}
	if p < 1 {
		return fmt.Errorf("streaming: need at least one partition, got %d", p)
	}
	return nil
}

// forEachEdge resets src and applies fn to every edge.
func forEachEdge(src source.EdgeSource, fn func(e source.Edge)) error {
	if err := src.Reset(); err != nil {
		return fmt.Errorf("streaming: resetting source: %w", err)
	}
	for {
		e, ok, err := src.Next()
		if err != nil {
			return fmt.Errorf("streaming: reading source: %w", err)
		}
		if !ok {
			return nil
		}
		fn(e)
	}
}

// Random assigns each edge to a uniformly random partition (hash of the
// edge id), the paper's lower-bound baseline.
type Random struct {
	seed uint64
}

var (
	_ partition.Partitioner       = (*Random)(nil)
	_ partition.StreamPartitioner = (*Random)(nil)
)

// NewRandom returns the Random baseline.
func NewRandom(seed uint64) *Random { return &Random{seed: seed} }

// Name implements partition.Partitioner.
func (x *Random) Name() string { return "Random" }

// Partition implements partition.Partitioner.
func (x *Random) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	if err := validateInput(g, p); err != nil {
		return nil, err
	}
	return x.PartitionStream(source.FromGraph(g, source.OrderNatural, x.seed), p)
}

// PartitionStream implements partition.StreamPartitioner. The placement is
// a pure hash of the edge id, so it is independent of arrival order and
// identical to the graph path. Memory: O(p) beyond the assignment.
func (x *Random) PartitionStream(src source.EdgeSource, p int) (*partition.Assignment, error) {
	if err := validateSource(src, p); err != nil {
		return nil, err
	}
	a, err := partition.New(src.NumEdges(), p)
	if err != nil {
		return nil, err
	}
	err = forEachEdge(src, func(e source.Edge) {
		a.Assign(e.ID, int(rng.Hash2(x.seed, uint64(e.ID))%uint64(p)))
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

// DBH is degree-based hashing (Xie et al., NIPS 2014): each edge is hashed
// on its lower-degree endpoint, so high-degree vertices are the ones that
// get replicated — the cheap strategy for power-law graphs.
type DBH struct {
	seed uint64
}

var (
	_ partition.Partitioner       = (*DBH)(nil)
	_ partition.StreamPartitioner = (*DBH)(nil)
)

// NewDBH returns the DBH baseline.
func NewDBH(seed uint64) *DBH { return &DBH{seed: seed} }

// Name implements partition.Partitioner.
func (x *DBH) Name() string { return "DBH" }

// Partition implements partition.Partitioner.
func (x *DBH) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	if err := validateInput(g, p); err != nil {
		return nil, err
	}
	return x.PartitionStream(source.FromGraph(g, source.OrderNatural, x.seed), p)
}

// PartitionStream implements partition.StreamPartitioner with two passes:
// one to count degrees, one to hash each edge on its lower-degree endpoint.
// On a simple-graph source the streamed degrees equal CSR degrees, so the
// result is identical to the graph path. Memory: O(n) degree counters.
func (x *DBH) PartitionStream(src source.EdgeSource, p int) (*partition.Assignment, error) {
	if err := validateSource(src, p); err != nil {
		return nil, err
	}
	a, err := partition.New(src.NumEdges(), p)
	if err != nil {
		return nil, err
	}
	deg := make([]int32, src.NumVertices())
	err = forEachEdge(src, func(e source.Edge) {
		deg[e.U]++
		deg[e.V]++
	})
	if err != nil {
		return nil, err
	}
	err = forEachEdge(src, func(e source.Edge) {
		lo := e.U
		if deg[e.V] < deg[e.U] || (deg[e.V] == deg[e.U] && e.V < e.U) {
			lo = e.V
		}
		a.Assign(e.ID, int(rng.Hash2(x.seed, uint64(lo))%uint64(p)))
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Greedy is the PowerGraph streaming heuristic (Gonzalez et al., OSDI 2012):
// place each arriving edge by the replica-overlap case analysis, breaking
// ties toward the least-loaded partition.
type Greedy struct {
	seed  uint64
	order Order
}

var (
	_ partition.Partitioner       = (*Greedy)(nil)
	_ partition.StreamPartitioner = (*Greedy)(nil)
)

// NewGreedy returns the PowerGraph-style greedy streamer.
func NewGreedy(seed uint64, order Order) *Greedy {
	if order == 0 {
		order = OrderShuffled
	}
	return &Greedy{seed: seed, order: order}
}

// Name implements partition.Partitioner.
func (x *Greedy) Name() string { return "Greedy" }

// Partition implements partition.Partitioner by streaming a graph-backed
// source in the configured order.
func (x *Greedy) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	if err := validateInput(g, p); err != nil {
		return nil, err
	}
	return x.PartitionStream(source.FromGraph(g, x.order, x.seed), p)
}

// PartitionStream implements partition.StreamPartitioner, placing edges in
// the source's arrival order. Memory: O(n) replica bitsets (p <= 64) plus
// O(p) loads.
func (x *Greedy) PartitionStream(src source.EdgeSource, p int) (*partition.Assignment, error) {
	if err := validateSource(src, p); err != nil {
		return nil, err
	}
	a, err := partition.New(src.NumEdges(), p)
	if err != nil {
		return nil, err
	}
	rs := newReplicaSets(src.NumVertices(), p)
	err = forEachEdge(src, func(e source.Edge) {
		k := greedyChoose(a, rs, e, p)
		a.Assign(e.ID, k)
		rs.add(e.U, k)
		rs.add(e.V, k)
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

// greedyChoose applies the PowerGraph case analysis for edge e.
func greedyChoose(a *partition.Assignment, rs *replicaSets, e source.Edge, p int) int {
	cu, cv := rs.count(e.U), rs.count(e.V)
	switch {
	case cu > 0 && cv > 0:
		// Case 1: intersection -> least-loaded common partition.
		best, found := -1, false
		for k := 0; k < p; k++ {
			if rs.has(e.U, k) && rs.has(e.V, k) {
				if !found || a.Load(k) < a.Load(best) {
					best, found = k, true
				}
			}
		}
		if found {
			return best
		}
		// Case 2: disjoint -> a partition of the vertex with more
		// unplaced... PowerGraph: choose from the sets of the vertex
		// with the most remaining edges; we approximate with the
		// least-loaded partition among the union.
		for k := 0; k < p; k++ {
			if rs.has(e.U, k) || rs.has(e.V, k) {
				if best == -1 || a.Load(k) < a.Load(best) {
					best = k
				}
			}
		}
		return best
	case cu > 0 || cv > 0:
		// Case 3: one placed vertex -> its least-loaded partition.
		v := e.U
		if cv > 0 {
			v = e.V
		}
		best := -1
		for k := 0; k < p; k++ {
			if rs.has(v, k) {
				if best == -1 || a.Load(k) < a.Load(best) {
					best = k
				}
			}
		}
		return best
	default:
		// Case 4: both new -> least-loaded partition overall.
		best := 0
		for k := 1; k < p; k++ {
			if a.Load(k) < a.Load(best) {
				best = k
			}
		}
		return best
	}
}

// HDRF is the High-Degree Replicated First streamer (Petroni et al., CIKM
// 2015): like Greedy but the replica-affinity score discounts the
// high-degree endpoint, plus an explicit load-balance term weighted by
// Lambda.
type HDRF struct {
	seed   uint64
	order  Order
	lambda float64
}

var (
	_ partition.Partitioner       = (*HDRF)(nil)
	_ partition.StreamPartitioner = (*HDRF)(nil)
)

// NewHDRF returns an HDRF streamer; lambda <= 0 defaults to 1.0.
func NewHDRF(seed uint64, order Order, lambda float64) *HDRF {
	if order == 0 {
		order = OrderShuffled
	}
	if lambda <= 0 {
		lambda = 1.0
	}
	return &HDRF{seed: seed, order: order, lambda: lambda}
}

// Name implements partition.Partitioner.
func (x *HDRF) Name() string { return "HDRF" }

// Partition implements partition.Partitioner by streaming a graph-backed
// source in the configured order.
func (x *HDRF) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	if err := validateInput(g, p); err != nil {
		return nil, err
	}
	return x.PartitionStream(source.FromGraph(g, x.order, x.seed), p)
}

// PartitionStream implements partition.StreamPartitioner. Partial degrees
// are accumulated as edges arrive (the streaming setting does not know
// final degrees). Memory: O(n) replica bitsets and degree counters.
func (x *HDRF) PartitionStream(src source.EdgeSource, p int) (*partition.Assignment, error) {
	if err := validateSource(src, p); err != nil {
		return nil, err
	}
	a, err := partition.New(src.NumEdges(), p)
	if err != nil {
		return nil, err
	}
	rs := newReplicaSets(src.NumVertices(), p)
	pdeg := make([]int32, src.NumVertices())
	err = forEachEdge(src, func(e source.Edge) {
		pdeg[e.U]++
		pdeg[e.V]++
		k := x.choose(a, rs, e, p, pdeg)
		a.Assign(e.ID, k)
		rs.add(e.U, k)
		rs.add(e.V, k)
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

func (x *HDRF) choose(a *partition.Assignment, rs *replicaSets, e source.Edge, p int, pdeg []int32) int {
	du, dv := float64(pdeg[e.U]), float64(pdeg[e.V])
	thetaU := du / (du + dv)
	thetaV := 1 - thetaU
	maxLoad, minLoad := 0, a.Load(0)
	for k := 0; k < p; k++ {
		l := a.Load(k)
		if l > maxLoad {
			maxLoad = l
		}
		if l < minLoad {
			minLoad = l
		}
	}
	best, bestScore := 0, -1.0
	for k := 0; k < p; k++ {
		var crep float64
		if rs.has(e.U, k) {
			crep += 1 + (1 - thetaU)
		}
		if rs.has(e.V, k) {
			crep += 1 + (1 - thetaV)
		}
		denom := float64(maxLoad - minLoad)
		if denom < 1 {
			denom = 1
		}
		cbal := x.lambda * float64(maxLoad-a.Load(k)) / denom
		if score := crep + cbal; score > bestScore {
			best, bestScore = k, score
		}
	}
	return best
}
