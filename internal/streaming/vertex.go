package streaming

import (
	"fmt"
	"math"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/metis"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
	"github.com/graphpart/graphpart/internal/source"
)

// graphBacked is implemented by sources wrapping a materialized graph
// (source.GraphSource). Vertex streamers use it to keep their legacy
// byte-identical path; everything else runs the degree-sketch variant.
type graphBacked interface {
	Graph() *graph.Graph
}

// LDG is the Linear Deterministic Greedy streaming vertex partitioner
// (Stanton & Kliot, KDD 2012): each arriving vertex goes to the partition
// holding most of its already-placed neighbours, damped by a load penalty
// (1 - |P_i| / C). The edge partitioning is then derived from the vertex
// partition the same way as for the METIS baseline.
type LDG struct {
	seed  uint64
	order Order
}

var (
	_ partition.Partitioner       = (*LDG)(nil)
	_ partition.StreamPartitioner = (*LDG)(nil)
)

// NewLDG returns an LDG streamer.
func NewLDG(seed uint64, order Order) *LDG {
	if order == 0 {
		order = OrderShuffled
	}
	return &LDG{seed: seed, order: order}
}

// Name implements partition.Partitioner.
func (x *LDG) Name() string { return "LDG" }

// Partition implements partition.Partitioner.
func (x *LDG) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	labels, err := x.VertexPartition(g, p)
	if err != nil {
		return nil, err
	}
	return metis.DeriveEdgePartition(g, labels, p)
}

// PartitionStream implements partition.StreamPartitioner. Graph-backed
// sources take the exact legacy path (byte-identical results); true edge
// streams run the two-pass degree-sketch variant (see streamVertexLabels),
// which approximates vertex adjacency from the edge stream in O(n·p)
// memory without a CSR.
func (x *LDG) PartitionStream(src source.EdgeSource, p int) (*partition.Assignment, error) {
	if err := validateSource(src, p); err != nil {
		return nil, err
	}
	if gb, ok := src.(graphBacked); ok {
		return x.Partition(gb.Graph(), p)
	}
	n := src.NumVertices()
	capV := float64(n)/float64(p) + 1
	labels, err := streamVertexLabels(src, p, func(row []int32, loads []int) int {
		best, bestScore := 0, math.Inf(-1)
		for k := 0; k < p; k++ {
			score := float64(row[k]) * (1 - float64(loads[k])/capV)
			if loads[k] >= int(capV) {
				score = math.Inf(-1) // full
			}
			if score > bestScore || (score == bestScore && loads[k] < loads[best]) {
				best, bestScore = k, score
			}
		}
		return best
	})
	if err != nil {
		return nil, err
	}
	return deriveStreamEdges(src, labels, p)
}

// VertexPartition streams the vertices and returns their part labels.
func (x *LDG) VertexPartition(g *graph.Graph, p int) ([]int32, error) {
	if err := validateInput(g, p); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	capV := float64(n)/float64(p) + 1
	loads := make([]int, p)
	nbrIn := make([]int, p)
	for _, v := range x.vertexOrder(g) {
		for k := range nbrIn {
			nbrIn[k] = 0
		}
		for _, u := range g.Neighbors(v) {
			if l := labels[u]; l >= 0 {
				nbrIn[l]++
			}
		}
		best, bestScore := 0, math.Inf(-1)
		for k := 0; k < p; k++ {
			score := float64(nbrIn[k]) * (1 - float64(loads[k])/capV)
			if loads[k] >= int(capV) {
				score = math.Inf(-1) // full
			}
			if score > bestScore || (score == bestScore && loads[k] < loads[best]) {
				best, bestScore = k, score
			}
		}
		labels[v] = int32(best)
		loads[best]++
	}
	return labels, nil
}

func (x *LDG) vertexOrder(g *graph.Graph) []graph.Vertex {
	n := g.NumVertices()
	switch x.order {
	case OrderNatural:
		out := make([]graph.Vertex, n)
		for i := range out {
			out[i] = graph.Vertex(i)
		}
		return out
	case OrderBFS:
		return source.VertexBFSOrder(g, rng.New(x.seed))
	default:
		r := rng.New(x.seed)
		perm := r.Perm(n)
		out := make([]graph.Vertex, n)
		for i, v := range perm {
			out[i] = graph.Vertex(v)
		}
		return out
	}
}

// FENNEL is the single-pass streaming vertex partitioner of Tsourakakis et
// al. (WSDM 2014): score(v, P_i) = |N(v) ∩ P_i| - alpha*gamma*|P_i|^(gamma-1)
// with gamma = 1.5 and alpha chosen from the graph size.
type FENNEL struct {
	seed  uint64
	order Order
	gamma float64
}

var (
	_ partition.Partitioner       = (*FENNEL)(nil)
	_ partition.StreamPartitioner = (*FENNEL)(nil)
)

// NewFENNEL returns a FENNEL streamer; gamma <= 1 defaults to 1.5.
func NewFENNEL(seed uint64, order Order, gamma float64) *FENNEL {
	if order == 0 {
		order = OrderShuffled
	}
	if gamma <= 1 {
		gamma = 1.5
	}
	return &FENNEL{seed: seed, order: order, gamma: gamma}
}

// Name implements partition.Partitioner.
func (x *FENNEL) Name() string { return "FENNEL" }

// Partition implements partition.Partitioner.
func (x *FENNEL) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	labels, err := x.VertexPartition(g, p)
	if err != nil {
		return nil, err
	}
	return metis.DeriveEdgePartition(g, labels, p)
}

// PartitionStream implements partition.StreamPartitioner; see
// LDG.PartitionStream for the graph fast path / degree-sketch split.
func (x *FENNEL) PartitionStream(src source.EdgeSource, p int) (*partition.Assignment, error) {
	if err := validateSource(src, p); err != nil {
		return nil, err
	}
	if gb, ok := src.(graphBacked); ok {
		return x.Partition(gb.Graph(), p)
	}
	n, m := src.NumVertices(), src.NumEdges()
	gamma := x.gamma
	alpha := math.Sqrt(float64(p)) * float64(m) / math.Pow(float64(n), gamma)
	if alpha <= 0 || math.IsNaN(alpha) {
		alpha = 1
	}
	const nu = 1.1
	capV := int(nu*float64(n)/float64(p)) + 1
	labels, err := streamVertexLabels(src, p, func(row []int32, loads []int) int {
		best, bestScore := 0, math.Inf(-1)
		for k := 0; k < p; k++ {
			if loads[k] >= capV {
				continue
			}
			score := float64(row[k]) - alpha*gamma*math.Pow(float64(loads[k]), gamma-1)
			if score > bestScore || (score == bestScore && loads[k] < loads[best]) {
				best, bestScore = k, score
			}
		}
		return best
	})
	if err != nil {
		return nil, err
	}
	return deriveStreamEdges(src, labels, p)
}

// VertexPartition streams the vertices and returns their part labels.
func (x *FENNEL) VertexPartition(g *graph.Graph, p int) ([]int32, error) {
	if err := validateInput(g, p); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	m := g.NumEdges()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	gamma := x.gamma
	alpha := math.Sqrt(float64(p)) * float64(m) / math.Pow(float64(n), gamma)
	if alpha <= 0 || math.IsNaN(alpha) {
		alpha = 1
	}
	// Hard cap keeps the derived edge partition from degenerating when
	// the penalty term underflows: nu * n/p vertices per part.
	const nu = 1.1
	capV := int(nu*float64(n)/float64(p)) + 1
	loads := make([]int, p)
	nbrIn := make([]int, p)
	ldg := LDG{seed: x.seed, order: x.order}
	for _, v := range ldg.vertexOrder(g) {
		for k := range nbrIn {
			nbrIn[k] = 0
		}
		for _, u := range g.Neighbors(v) {
			if l := labels[u]; l >= 0 {
				nbrIn[l]++
			}
		}
		best, bestScore := 0, math.Inf(-1)
		for k := 0; k < p; k++ {
			if loads[k] >= capV {
				continue
			}
			score := float64(nbrIn[k]) - alpha*gamma*math.Pow(float64(loads[k]), gamma-1)
			if score > bestScore || (score == bestScore && loads[k] < loads[best]) {
				best, bestScore = k, score
			}
		}
		labels[v] = int32(best)
		loads[best]++
	}
	return labels, nil
}

// streamVertexLabels is the two-pass degree-sketch vertex placement used by
// LDG/FENNEL on true edge streams, where vertex adjacency lists are not
// available.
//
// Pass 1 counts degrees. Pass 2 replays the stream and places a vertex the
// moment its last incident edge arrives ("stream completion order" — a
// different arrival order from the configured vertex order, so results
// differ from the graph path by design). Placed-neighbour counts are
// maintained in an n×p matrix (documented O(n·p) memory): when an edge
// arrives with one endpoint already placed, the other endpoint is credited
// immediately; when placing an endpoint completes, the current edge's other
// endpoint is credited afterwards. Edges between two vertices that are both
// unplaced when the edge passes — and stay unplaced — are the sketch's
// information loss. Degree-0 vertices are swept in id order at the end.
// A final pass derives the edge placement (deriveStreamEdges).
func streamVertexLabels(src source.EdgeSource, p int, choose func(row []int32, loads []int) int) ([]int32, error) {
	n := src.NumVertices()
	deg := make([]int32, n)
	err := forEachEdge(src, func(e source.Edge) {
		deg[e.U]++
		deg[e.V]++
	})
	if err != nil {
		return nil, err
	}
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	loads := make([]int, p)
	nbrIn := make([]int32, n*p)
	remaining := deg // pass 2 counts the same array back down to zero
	place := func(v graph.Vertex) {
		row := nbrIn[int(v)*p : int(v)*p+p]
		k := choose(row, loads)
		labels[v] = int32(k)
		loads[k]++
	}
	credit := func(v graph.Vertex, from graph.Vertex) {
		if labels[v] < 0 {
			nbrIn[int(v)*p+int(labels[from])]++
		}
	}
	err = forEachEdge(src, func(e source.Edge) {
		remaining[e.U]--
		remaining[e.V]--
		if labels[e.U] >= 0 {
			credit(e.V, e.U)
		}
		if labels[e.V] >= 0 {
			credit(e.U, e.V)
		}
		if labels[e.U] < 0 && remaining[e.U] == 0 {
			place(e.U)
			credit(e.V, e.U)
		}
		if labels[e.V] < 0 && remaining[e.V] == 0 {
			place(e.V)
			credit(e.U, e.V)
		}
	})
	if err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		if labels[v] < 0 { // degree-0 vertices never complete
			place(graph.Vertex(v))
		}
	}
	return labels, nil
}

// deriveStreamEdges assigns each streamed edge to the lighter-loaded of its
// endpoints' parts, the same rule as metis.DeriveEdgePartition but driven
// by the stream instead of the CSR edge array.
func deriveStreamEdges(src source.EdgeSource, labels []int32, p int) (*partition.Assignment, error) {
	a, err := partition.New(src.NumEdges(), p)
	if err != nil {
		return nil, err
	}
	var badEdge error
	err = forEachEdge(src, func(e source.Edge) {
		ku, kv := labels[e.U], labels[e.V]
		if ku < 0 || int(ku) >= p || kv < 0 || int(kv) >= p {
			if badEdge == nil {
				badEdge = fmt.Errorf("streaming: label out of range for edge %d", e.ID)
			}
			return
		}
		k := ku
		if ku != kv && a.Load(int(kv)) < a.Load(int(ku)) {
			k = kv
		}
		a.Assign(e.ID, int(k))
	})
	if err != nil {
		return nil, err
	}
	if badEdge != nil {
		return nil, badEdge
	}
	return a, nil
}
