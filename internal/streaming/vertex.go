package streaming

import (
	"math"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/metis"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

// LDG is the Linear Deterministic Greedy streaming vertex partitioner
// (Stanton & Kliot, KDD 2012): each arriving vertex goes to the partition
// holding most of its already-placed neighbours, damped by a load penalty
// (1 - |P_i| / C). The edge partitioning is then derived from the vertex
// partition the same way as for METIS.
type LDG struct {
	seed  uint64
	order Order
}

var _ partition.Partitioner = (*LDG)(nil)

// NewLDG returns an LDG streamer.
func NewLDG(seed uint64, order Order) *LDG {
	if order == 0 {
		order = OrderShuffled
	}
	return &LDG{seed: seed, order: order}
}

// Name implements partition.Partitioner.
func (x *LDG) Name() string { return "LDG" }

// Partition implements partition.Partitioner.
func (x *LDG) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	labels, err := x.VertexPartition(g, p)
	if err != nil {
		return nil, err
	}
	return metis.DeriveEdgePartition(g, labels, p)
}

// VertexPartition streams the vertices and returns their part labels.
func (x *LDG) VertexPartition(g *graph.Graph, p int) ([]int32, error) {
	if err := validateInput(g, p); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	capV := float64(n)/float64(p) + 1
	loads := make([]int, p)
	nbrIn := make([]int, p)
	for _, v := range x.vertexOrder(g) {
		for k := range nbrIn {
			nbrIn[k] = 0
		}
		for _, u := range g.Neighbors(v) {
			if l := labels[u]; l >= 0 {
				nbrIn[l]++
			}
		}
		best, bestScore := 0, math.Inf(-1)
		for k := 0; k < p; k++ {
			score := float64(nbrIn[k]) * (1 - float64(loads[k])/capV)
			if loads[k] >= int(capV) {
				score = math.Inf(-1) // full
			}
			if score > bestScore || (score == bestScore && loads[k] < loads[best]) {
				best, bestScore = k, score
			}
		}
		labels[v] = int32(best)
		loads[best]++
	}
	return labels, nil
}

func (x *LDG) vertexOrder(g *graph.Graph) []graph.Vertex {
	n := g.NumVertices()
	switch x.order {
	case OrderNatural:
		out := make([]graph.Vertex, n)
		for i := range out {
			out[i] = graph.Vertex(i)
		}
		return out
	case OrderBFS:
		return vertexBFSOrder(g, rng.New(x.seed))
	default:
		r := rng.New(x.seed)
		perm := r.Perm(n)
		out := make([]graph.Vertex, n)
		for i, v := range perm {
			out[i] = graph.Vertex(v)
		}
		return out
	}
}

// FENNEL is the single-pass streaming vertex partitioner of Tsourakakis et
// al. (WSDM 2014): score(v, P_i) = |N(v) ∩ P_i| - alpha*gamma*|P_i|^(gamma-1)
// with gamma = 1.5 and alpha chosen from the graph size.
type FENNEL struct {
	seed  uint64
	order Order
	gamma float64
}

var _ partition.Partitioner = (*FENNEL)(nil)

// NewFENNEL returns a FENNEL streamer; gamma <= 1 defaults to 1.5.
func NewFENNEL(seed uint64, order Order, gamma float64) *FENNEL {
	if order == 0 {
		order = OrderShuffled
	}
	if gamma <= 1 {
		gamma = 1.5
	}
	return &FENNEL{seed: seed, order: order, gamma: gamma}
}

// Name implements partition.Partitioner.
func (x *FENNEL) Name() string { return "FENNEL" }

// Partition implements partition.Partitioner.
func (x *FENNEL) Partition(g *graph.Graph, p int) (*partition.Assignment, error) {
	labels, err := x.VertexPartition(g, p)
	if err != nil {
		return nil, err
	}
	return metis.DeriveEdgePartition(g, labels, p)
}

// VertexPartition streams the vertices and returns their part labels.
func (x *FENNEL) VertexPartition(g *graph.Graph, p int) ([]int32, error) {
	if err := validateInput(g, p); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	m := g.NumEdges()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	gamma := x.gamma
	alpha := math.Sqrt(float64(p)) * float64(m) / math.Pow(float64(n), gamma)
	if alpha <= 0 || math.IsNaN(alpha) {
		alpha = 1
	}
	// Hard cap keeps the derived edge partition from degenerating when
	// the penalty term underflows: nu * n/p vertices per part.
	const nu = 1.1
	capV := int(nu*float64(n)/float64(p)) + 1
	loads := make([]int, p)
	nbrIn := make([]int, p)
	ldg := LDG{seed: x.seed, order: x.order}
	for _, v := range ldg.vertexOrder(g) {
		for k := range nbrIn {
			nbrIn[k] = 0
		}
		for _, u := range g.Neighbors(v) {
			if l := labels[u]; l >= 0 {
				nbrIn[l]++
			}
		}
		best, bestScore := 0, math.Inf(-1)
		for k := 0; k < p; k++ {
			if loads[k] >= capV {
				continue
			}
			score := float64(nbrIn[k]) - alpha*gamma*math.Pow(float64(loads[k]), gamma-1)
			if score > bestScore || (score == bestScore && loads[k] < loads[best]) {
				best, bestScore = k, score
			}
		}
		labels[v] = int32(best)
		loads[best]++
	}
	return labels, nil
}
