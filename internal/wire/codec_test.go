package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"github.com/graphpart/graphpart/internal/engine"
)

// goldenFrames pins the wire encoding byte for byte: a codec change that
// alters any of these is a protocol break and must be deliberate.
var goldenFrames = []struct {
	name string
	msg  engine.Message
	want []byte
}{
	{
		name: "activate",
		msg:  &engine.Activate{Local: 7},
		want: []byte{
			0x00, 0x00, 0x00, 0x05, // length = kind + 4
			0x03,                   // frameActivate
			0x00, 0x00, 0x00, 0x07, // local
		},
	},
	{
		name: "apply",
		msg:  &engine.ApplyBroadcast{MirrorLocal: 1, Value: 0.5, Changed: true},
		want: []byte{
			0x00, 0x00, 0x00, 0x0e, // length = kind + 13
			0x02,                   // frameApply
			0x00, 0x00, 0x00, 0x01, // mirror local
			0x3f, 0xe0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 0.5
			0x01, // flags: changed
		},
	},
	{
		name: "gather",
		msg:  &engine.GatherFlush{MasterLocal: 2, Slots: []int32{3}, Contribs: []float64{1.0}},
		want: []byte{
			0x00, 0x00, 0x00, 0x15, // length = kind + 8 + 12
			0x01,                   // frameGather
			0x00, 0x00, 0x00, 0x02, // master local
			0x00, 0x00, 0x00, 0x01, // count
			0x00, 0x00, 0x00, 0x03, // slot 0
			0x3f, 0xf0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 1.0
		},
	},
}

func TestGoldenFrames(t *testing.T) {
	for _, tc := range goldenFrames {
		t.Run(tc.name, func(t *testing.T) {
			got := AppendMessage(nil, tc.msg)
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("encoding drifted:\n got %#v\nwant %#v", got, tc.want)
			}
			if len(got) != FramedSize(tc.msg) {
				t.Fatalf("frame is %d bytes, FramedSize says %d", len(got), FramedSize(tc.msg))
			}
			if len(got) != FrameHeaderSize+tc.msg.WireSize() {
				t.Fatalf("frame is %d bytes, want WireSize %d + header %d",
					len(got), tc.msg.WireSize(), FrameHeaderSize)
			}
		})
	}
}

// TestRoundTrip drives representative messages of every kind through the
// framed encode/decode path and requires field-identical results.
func TestRoundTrip(t *testing.T) {
	msgs := []engine.Message{
		&engine.Activate{Local: 0},
		&engine.Activate{Local: 1<<31 - 1},
		&engine.ApplyBroadcast{MirrorLocal: 0, Value: math.Inf(1), Changed: false, Active: true},
		&engine.ApplyBroadcast{MirrorLocal: 9, Value: -0.0, Changed: true, Active: true},
		&engine.GatherFlush{MasterLocal: 5, Slots: []int32{}, Contribs: []float64{}},
		&engine.GatherFlush{
			MasterLocal: 1,
			Slots:       []int32{0, 2, 4, 6},
			Contribs:    []float64{1e-300, -1e300, math.Pi, 0},
		},
	}
	var stream []byte
	for _, m := range msgs {
		stream = AppendMessage(stream, m)
	}
	rd := NewReader(bytes.NewReader(stream))
	for i, want := range msgs {
		start := rd.Offset()
		kind, payload, err := rd.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeMessage(kind, payload, start)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.MessageKind() != want.MessageKind() {
			t.Fatalf("frame %d: kind %v, want %v", i, got.MessageKind(), want.MessageKind())
		}
		// Re-encoding the decoded message must reproduce the original frame.
		a, b := AppendMessage(nil, want), AppendMessage(nil, got)
		if !bytes.Equal(a, b) {
			t.Fatalf("frame %d: decode/re-encode drifted\n got %x\nwant %x", i, b, a)
		}
	}
	if _, _, err := rd.ReadFrame(); err != io.EOF {
		t.Fatalf("stream end: err = %v, want io.EOF", err)
	}
}

// frameError asserts err is a *FrameError at the wanted offset mentioning
// substr.
func frameError(t *testing.T, err error, wantOff int64, substr string) {
	t.Helper()
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v (%T), want *FrameError", err, err)
	}
	if fe.Offset != wantOff {
		t.Fatalf("error offset = %d, want %d (err: %v)", fe.Offset, wantOff, fe)
	}
	if !strings.Contains(fe.Reason, substr) {
		t.Fatalf("error %q does not mention %q", fe.Reason, substr)
	}
}

func TestReaderFailurePaths(t *testing.T) {
	valid := AppendMessage(nil, &engine.Activate{Local: 1})

	t.Run("TruncatedLengthPrefix", func(t *testing.T) {
		rd := NewReader(bytes.NewReader(append(append([]byte{}, valid...), 0x00, 0x00)))
		if _, _, err := rd.ReadFrame(); err != nil {
			t.Fatalf("valid frame: %v", err)
		}
		_, _, err := rd.ReadFrame()
		frameError(t, err, int64(len(valid)), "truncated length prefix")
	})

	t.Run("TruncatedBody", func(t *testing.T) {
		rd := NewReader(bytes.NewReader(valid[:len(valid)-2]))
		_, _, err := rd.ReadFrame()
		frameError(t, err, 0, "truncated frame")
	})

	t.Run("ZeroLength", func(t *testing.T) {
		rd := NewReader(bytes.NewReader([]byte{0, 0, 0, 0}))
		_, _, err := rd.ReadFrame()
		frameError(t, err, 0, "below the 1-byte minimum")
	})

	t.Run("OversizedLength", func(t *testing.T) {
		// Length prefix claims 1 GiB; the reader must reject it before
		// attempting the allocation.
		stream := append(append([]byte{}, valid...), 0x40, 0x00, 0x00, 0x00, frameActivate)
		rd := NewReader(bytes.NewReader(stream))
		if _, _, err := rd.ReadFrame(); err != nil {
			t.Fatalf("valid frame: %v", err)
		}
		_, _, err := rd.ReadFrame()
		frameError(t, err, int64(len(valid)), "exceeds")
	})

	t.Run("CleanEOF", func(t *testing.T) {
		rd := NewReader(bytes.NewReader(valid))
		if _, _, err := rd.ReadFrame(); err != nil {
			t.Fatalf("valid frame: %v", err)
		}
		if _, _, err := rd.ReadFrame(); err != io.EOF {
			t.Fatalf("err = %v, want bare io.EOF at a frame boundary", err)
		}
	})
}

func TestDecodeFailurePaths(t *testing.T) {
	const off = 1234
	cases := []struct {
		name    string
		kind    byte
		payload []byte
		substr  string
	}{
		{"UnknownKind", 0x7f, []byte{0, 0, 0, 0}, "unknown data frame kind"},
		{"GatherTooShort", frameGather, []byte{0, 0, 0}, "at least 8"},
		{"GatherCountMismatch", frameGather,
			[]byte{0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 0}, "does not match count"},
		{"ApplyWrongSize", frameApply, make([]byte, 12), "want 13"},
		{"ApplyUndefinedFlags", frameApply,
			append(make([]byte, 12), 0x04), "undefined bits"},
		{"ActivateWrongSize", frameActivate, make([]byte, 5), "want 4"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeMessage(tc.kind, tc.payload, off)
			frameError(t, err, off, tc.substr)
		})
	}
}

// TestDecodeOffsetsPointAtBadFrame streams two good frames and one corrupt
// one and checks the reported offset lands exactly on the corrupt frame.
func TestDecodeOffsetsPointAtBadFrame(t *testing.T) {
	var stream []byte
	stream = AppendMessage(stream, &engine.Activate{Local: 1})
	stream = AppendMessage(stream, &engine.ApplyBroadcast{MirrorLocal: 2, Value: 1})
	badAt := int64(len(stream))
	// An apply frame with a truncated payload (12 bytes instead of 13).
	stream = appendFrameHeader(stream, frameApply, 12)
	stream = append(stream, make([]byte, 12)...)

	rd := NewReader(bytes.NewReader(stream))
	for i := 0; i < 2; i++ {
		start := rd.Offset()
		kind, payload, err := rd.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if _, err := DecodeMessage(kind, payload, start); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	start := rd.Offset()
	kind, payload, err := rd.ReadFrame()
	if err != nil {
		t.Fatalf("reading corrupt frame's bytes: %v", err)
	}
	_, err = DecodeMessage(kind, payload, start)
	frameError(t, err, badAt, "want 13")
}

func TestAppendMessageUnknownTypePanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("AppendMessage accepted an unknown message type")
		}
	}()
	AppendMessage(nil, unknownMessage{})
}

type unknownMessage struct{}

func (unknownMessage) MessageKind() engine.Kind { return engine.Kind(99) }
func (unknownMessage) WireSize() int            { return 0 }

func TestProgramSpecRoundTrip(t *testing.T) {
	specs := []ProgramSpec{
		{Name: "pagerank", Damping: 0.85, Tolerance: 1e-8, N: 600},
		{Name: "components"},
		{Name: "sssp", Source: 17},
	}
	for _, want := range specs {
		buf, err := appendProgramSpec(nil, want)
		if err != nil {
			t.Fatalf("%s: %v", want.Name, err)
		}
		got, err := decodeProgramSpec(buf)
		if err != nil {
			t.Fatalf("%s: %v", want.Name, err)
		}
		if got != want {
			t.Fatalf("spec round trip: got %+v, want %+v", got, want)
		}
		prog, err := got.Build()
		if err != nil {
			t.Fatalf("%s: %v", want.Name, err)
		}
		spec2, err := SpecForProgram(prog)
		if err != nil {
			t.Fatalf("%s: %v", want.Name, err)
		}
		if spec2 != want {
			t.Fatalf("program spec drift: got %+v, want %+v", spec2, want)
		}
	}
	if _, err := decodeProgramSpec(make([]byte, programSpecSize-1)); err == nil {
		t.Fatal("short program spec accepted")
	}
	bad := make([]byte, programSpecSize)
	bad[0] = 0x7f
	if _, err := decodeProgramSpec(bad); err == nil {
		t.Fatal("unknown program kind byte accepted")
	}
}

func TestTotalsRoundTrip(t *testing.T) {
	want := engine.Totals{
		GatherMessages: 1, ApplyMessages: 2, ActivateMessages: 3,
		GatherBytes: 400, ApplyBytes: 500, ActivateBytes: 600,
	}
	got, err := decodeTotals(appendTotals(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("totals round trip: got %+v, want %+v", got, want)
	}
	if _, err := decodeTotals(make([]byte, totalsSize+1)); err == nil {
		t.Fatal("oversized totals accepted")
	}
}
