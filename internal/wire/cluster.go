package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/obs"
	"github.com/graphpart/graphpart/internal/partition"
)

// EnvWorker is the environment variable that turns a process into a cluster
// worker. Its value is "<machine-id>@<coordinator-control-address>"; the
// coordinator sets it when spawning workers, and MaybeWorker reacts to it.
const EnvWorker = "GRAPHPART_WIRE_WORKER"

// clusterIOTimeout bounds every blocking control-plane read and write. It is
// deliberately generous: a phase on a large graph can take a while, and the
// timeout only needs to catch a dead peer, not a slow one.
const clusterIOTimeout = 2 * time.Minute

// specChunk is the number of edges (or edge parts) per spec stream chunk
// frame: 65536 edges is a 512 KiB edges frame, far below MaxFrameSize.
const specChunk = 65536

// ClusterOptions configures RunCluster.
type ClusterOptions struct {
	// Command is the worker argv. The command must call MaybeWorker early
	// (before doing anything else of consequence); test binaries do this
	// from TestMain. Empty means re-execute the current binary with no
	// arguments.
	Command []string
}

// clusterProtocolVersion is the control-protocol version the coordinator
// stamps into the trace-context frame; workers reject a mismatch instead of
// guessing at frame layouts. Version 2 added the frameTrace/frameTelemetry
// pair (version 1 was the pre-trace protocol, which had no version frame).
const clusterProtocolVersion = 2

// RunCluster executes prog over g and a with one OS process per machine —
// the engine's machines separated by real process and socket boundaries.
// Each worker process rebuilds the engine deterministically from the graph
// and assignment shipped over the control connection, hosts exactly one
// machine via engine.Host, and joins a TCP data mesh with its peers; this
// coordinator drives the phase schedule Run uses in process, so the returned
// values are bit-identical to Run and RunSequential. Stats are assembled
// from per-worker reports: byte counts are framed wire bytes, and the
// traffic matrix merges each worker's sender-side row.
func RunCluster(g *graph.Graph, a *partition.Assignment, prog engine.Program, maxSupersteps int, opt *ClusterOptions) ([]float64, engine.Stats, error) {
	values, stats, _, err := runCluster(g, a, prog, maxSupersteps, opt, false)
	return values, stats, err
}

// RunClusterTraced is RunCluster plus cluster-wide telemetry collection:
// when telemetry is enabled in this process, every worker records its own
// spans and metrics and ships a snapshot back at drain, returned as a
// ClusterTelemetry for merged-trace export. With telemetry disabled it
// behaves exactly like RunCluster and returns a nil ClusterTelemetry.
// Telemetry stays record-only either way: the returned values and stats are
// bit-identical to RunCluster and RunSequential.
func RunClusterTraced(g *graph.Graph, a *partition.Assignment, prog engine.Program, maxSupersteps int, opt *ClusterOptions) ([]float64, engine.Stats, *ClusterTelemetry, error) {
	return runCluster(g, a, prog, maxSupersteps, opt, obs.Enabled())
}

func runCluster(g *graph.Graph, a *partition.Assignment, prog engine.Program, maxSupersteps int, opt *ClusterOptions, collect bool) ([]float64, engine.Stats, *ClusterTelemetry, error) {
	if prog == nil {
		return nil, engine.Stats{}, nil, fmt.Errorf("wire: nil program")
	}
	if maxSupersteps < 1 {
		return nil, engine.Stats{}, nil, fmt.Errorf("wire: need at least one superstep")
	}
	spec, err := SpecForProgram(prog)
	if err != nil {
		return nil, engine.Stats{}, nil, err
	}
	p := a.P()
	if a.NumEdges() != g.NumEdges() {
		return nil, engine.Stats{}, nil, fmt.Errorf("wire: assignment covers %d edges, graph has %d", a.NumEdges(), g.NumEdges())
	}
	command, err := opt.commandOrSelf()
	if err != nil {
		return nil, engine.Stats{}, nil, err
	}

	traceID := newTraceID()
	sp := obs.Start("wire.cluster", obs.String("program", prog.Name()), obs.Int("p", p),
		obs.Int64("trace_id", int64(traceID)))
	defer sp.End()

	c := &cluster{p: p}
	defer c.teardown()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, engine.Stats{}, nil, fmt.Errorf("wire: cluster control listener: %w", err)
	}
	c.ln = ln

	// Spawn one worker per machine; each dials back and identifies itself
	// with a hello frame.
	for k := 0; k < p; k++ {
		cmd := exec.Command(command[0], command[1:]...)
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d@%s", EnvWorker, k, ln.Addr()))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, engine.Stats{}, nil, fmt.Errorf("wire: start worker %d: %w", k, err)
		}
		c.procs = append(c.procs, cmd)
	}
	if err := c.acceptWorkers(); err != nil {
		return nil, engine.Stats{}, nil, err
	}

	// Stamp trace context into the control stream before anything else: the
	// versioned frame pins the protocol both sides speak, carries the run's
	// trace id, and tells workers whether to ship telemetry back at drain.
	tctx := make([]byte, 0, traceCtxSize)
	tctx = binary.BigEndian.AppendUint16(tctx, clusterProtocolVersion)
	tctx = binary.BigEndian.AppendUint64(tctx, traceID)
	var flags byte
	if collect {
		flags |= traceFlagCollect
	}
	tctx = append(tctx, flags)
	for _, w := range c.workers {
		if err := w.writeFrame(frameTrace, tctx); err != nil {
			return nil, engine.Stats{}, nil, fmt.Errorf("wire: trace context to worker %d: %w", w.id, err)
		}
	}

	// Ship the spec (program, graph, assignment) to every worker.
	frames, err := specFrames(spec, g, a, maxSupersteps)
	if err != nil {
		return nil, engine.Stats{}, nil, err
	}
	for _, w := range c.workers {
		if err := w.writeRaw(frames); err != nil {
			return nil, engine.Stats{}, nil, fmt.Errorf("wire: spec to worker %d: %w", w.id, err)
		}
	}

	// Collect mesh listen addresses, broadcast the table, await readiness.
	addrs := make([]string, p)
	for _, w := range c.workers {
		payload, err := w.expect(frameAddr)
		if err != nil {
			return nil, engine.Stats{}, nil, err
		}
		addrs[w.id] = string(payload)
	}
	var addrBuf []byte
	addrBuf = binary.BigEndian.AppendUint32(addrBuf, uint32(p))
	for _, s := range addrs {
		addrBuf = binary.BigEndian.AppendUint32(addrBuf, uint32(len(s)))
		addrBuf = append(addrBuf, s...)
	}
	var stats engine.Stats
	activeMasters := 0
	for _, w := range c.workers {
		if err := w.writeFrame(frameAddrs, addrBuf); err != nil {
			return nil, engine.Stats{}, nil, fmt.Errorf("wire: addrs to worker %d: %w", w.id, err)
		}
	}
	for _, w := range c.workers {
		payload, err := w.expect(frameReady)
		if err != nil {
			return nil, engine.Stats{}, nil, err
		}
		if len(payload) != 12 {
			return nil, engine.Stats{}, nil, fmt.Errorf("wire: worker %d ready payload %d bytes, want 12", w.id, len(payload))
		}
		stats.TotalReplicas += int(binary.BigEndian.Uint32(payload[0:4]))
		stats.Masters += int(binary.BigEndian.Uint32(payload[4:8]))
		activeMasters += int(binary.BigEndian.Uint32(payload[8:12]))
	}

	// The superstep loop: the same NumPhases-barrier schedule Run drives in
	// process, with control frames standing in for the channel handshake.
	var prev engine.Totals
	for step := 0; step < maxSupersteps && activeMasters > 0; step++ {
		stats.Supersteps++
		ssp := sp.Child("wire.cluster.superstep", obs.Int("step", step))
		var tot engine.Totals
		for ph := 0; ph < engine.NumPhases; ph++ {
			for _, w := range c.workers {
				if err := w.writeFrame(framePhase, []byte{byte(ph)}); err != nil {
					return nil, engine.Stats{}, nil, fmt.Errorf("wire: phase %d to worker %d: %w", ph, w.id, err)
				}
			}
			if ph == engine.NumPhases-1 {
				activeMasters = 0
				tot = engine.Totals{}
			}
			for _, w := range c.workers {
				payload, err := w.expect(framePhaseDone)
				if err != nil {
					return nil, engine.Stats{}, nil, err
				}
				if len(payload) != 4+totalsSize {
					return nil, engine.Stats{}, nil, fmt.Errorf("wire: worker %d phase-done payload %d bytes, want %d", w.id, len(payload), 4+totalsSize)
				}
				if ph == engine.NumPhases-1 {
					activeMasters += int(binary.BigEndian.Uint32(payload[0:4]))
					wt, err := decodeTotals(payload[4:])
					if err != nil {
						return nil, engine.Stats{}, nil, fmt.Errorf("wire: worker %d: %w", w.id, err)
					}
					tot = addTotals(tot, wt)
				}
			}
		}
		delta := tot.Sub(prev)
		stats.PerStep = append(stats.PerStep, delta)
		prev = tot
		ssp.EndWith(obs.Int64("messages", delta.Messages()),
			obs.Int64("bytes", delta.Bytes()),
			obs.Int("active_masters", activeMasters))
	}
	stats.GatherMessages = prev.GatherMessages
	stats.ApplyMessages = prev.ApplyMessages
	stats.ActivateMessages = prev.ActivateMessages
	stats.GatherBytes = prev.GatherBytes
	stats.ApplyBytes = prev.ApplyBytes
	stats.ActivateBytes = prev.ActivateBytes

	// Finish: collect master values and per-worker traffic rows.
	n := g.NumVertices()
	values := make([]float64, n)
	for v := 0; v < n; v++ {
		values[v] = prog.Init(graph.Vertex(v), g.Degree(graph.Vertex(v)))
	}
	links := &engine.TrafficMatrix{
		Messages: make([][]int64, p),
		Bytes:    make([][]int64, p),
	}
	for i := 0; i < p; i++ {
		links.Messages[i] = make([]int64, p)
		links.Bytes[i] = make([]int64, p)
	}
	for _, w := range c.workers {
		if err := w.writeFrame(frameFinish, nil); err != nil {
			return nil, engine.Stats{}, nil, fmt.Errorf("wire: finish to worker %d: %w", w.id, err)
		}
	}
	for _, w := range c.workers {
		payload, err := w.expect(frameResult)
		if err != nil {
			return nil, engine.Stats{}, nil, err
		}
		if err := decodeResult(payload, w.id, p, n, values, links); err != nil {
			return nil, engine.Stats{}, nil, fmt.Errorf("wire: worker %d result: %w", w.id, err)
		}
	}
	stats.Links = links

	// Telemetry upload: each worker ships its process snapshot after its
	// result. Strictly record-only — the values and stats above are already
	// final before the first telemetry frame is read.
	var ct *ClusterTelemetry
	if collect {
		ct = &ClusterTelemetry{TraceID: traceID, Workers: make([]obs.ProcessSnapshot, 0, p)}
		for _, w := range c.workers {
			payload, err := w.expect(frameTelemetry)
			if err != nil {
				return nil, engine.Stats{}, nil, err
			}
			snap, err := obs.DecodeSnapshot(payload)
			if err != nil {
				return nil, engine.Stats{}, nil, fmt.Errorf("wire: worker %d telemetry: %w", w.id, err)
			}
			ct.Workers = append(ct.Workers, snap)
		}
	}

	if err := c.waitWorkers(); err != nil {
		return nil, engine.Stats{}, nil, err
	}
	sp.EndWith(obs.Int("supersteps", stats.Supersteps),
		obs.Int64("messages", stats.Messages()),
		obs.Int64("bytes", stats.Bytes()))
	return values, stats, ct, nil
}

// commandOrSelf resolves the worker argv, defaulting to the current binary.
func (o *ClusterOptions) commandOrSelf() ([]string, error) {
	if o != nil && len(o.Command) > 0 {
		return o.Command, nil
	}
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("wire: cannot determine worker command: %w", err)
	}
	return []string{self}, nil
}

// cluster is the coordinator's handle on the worker fleet.
type cluster struct {
	p       int
	ln      net.Listener
	procs   []*exec.Cmd
	workers []*workerLink // indexed by machine id once acceptWorkers returns
	waited  bool
}

// workerLink is one control connection to a worker process.
type workerLink struct {
	id   int
	conn net.Conn
	rd   *Reader
}

// writeRaw sends pre-encoded frames with a deadline.
func (w *workerLink) writeRaw(frames []byte) error {
	_ = w.conn.SetWriteDeadline(wallDeadline(clusterIOTimeout))
	_, err := w.conn.Write(frames)
	return err
}

// writeFrame sends one control frame with a deadline.
func (w *workerLink) writeFrame(kind byte, payload []byte) error {
	_ = w.conn.SetWriteDeadline(wallDeadline(clusterIOTimeout))
	return writeFrame(w.conn, kind, payload)
}

// expect reads the next frame and requires it to be of the given kind. The
// returned payload is valid until the next read on this link.
func (w *workerLink) expect(kind byte) ([]byte, error) {
	_ = w.conn.SetReadDeadline(wallDeadline(clusterIOTimeout))
	got, payload, err := w.rd.ReadFrame()
	if err != nil {
		return nil, fmt.Errorf("wire: control read from worker %d (want kind %#02x): %w", w.id, kind, err)
	}
	if got != kind {
		return nil, fmt.Errorf("wire: worker %d sent control frame %#02x, want %#02x", w.id, got, kind)
	}
	return payload, nil
}

// acceptWorkers collects one hello-identified control connection per machine.
func (c *cluster) acceptWorkers() error {
	c.workers = make([]*workerLink, c.p)
	if tl, ok := c.ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(wallDeadline(setupTimeout))
	}
	for i := 0; i < c.p; i++ {
		conn, err := c.ln.Accept()
		if err != nil {
			return fmt.Errorf("wire: accept worker control connection: %w", err)
		}
		_ = conn.SetReadDeadline(wallDeadline(setupTimeout))
		rd := NewReader(conn)
		kind, payload, err := rd.ReadFrame()
		if err != nil || kind != frameHello || len(payload) != 4 {
			conn.Close()
			return fmt.Errorf("wire: bad worker hello (kind %#02x): %v", kind, err)
		}
		id := int(int32(binary.BigEndian.Uint32(payload)))
		if id < 0 || id >= c.p || c.workers[id] != nil {
			conn.Close()
			return fmt.Errorf("wire: invalid or duplicate worker id %d in hello", id)
		}
		c.workers[id] = &workerLink{id: id, conn: conn, rd: rd}
	}
	return nil
}

// waitWorkers reaps all worker processes after a clean finish.
func (c *cluster) waitWorkers() error {
	c.waited = true
	var firstErr error
	for k, cmd := range c.procs {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wire: worker %d exited: %w", k, err)
		}
	}
	return firstErr
}

// teardown releases coordinator resources; on error paths it also kills any
// workers that have not been reaped.
func (c *cluster) teardown() {
	for _, w := range c.workers {
		if w != nil {
			w.conn.Close()
		}
	}
	if c.ln != nil {
		c.ln.Close()
	}
	if !c.waited {
		for _, cmd := range c.procs {
			if cmd.Process != nil {
				_ = cmd.Process.Kill()
			}
		}
		for _, cmd := range c.procs {
			_ = cmd.Wait()
		}
	}
}

// specFrames encodes the full spec stream: one header frame, then the graph
// edges and edge assignments in bounded chunks.
func specFrames(spec ProgramSpec, g *graph.Graph, a *partition.Assignment, maxSupersteps int) ([]byte, error) {
	n, m := g.NumVertices(), g.NumEdges()
	hdr := make([]byte, 0, 4+4+programSpecSize+4+4)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(a.P()))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(maxSupersteps))
	hdr, err := appendProgramSpec(hdr, spec)
	if err != nil {
		return nil, err
	}
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(n))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(m))

	buf := appendFrameHeader(nil, frameSpec, len(hdr))
	buf = append(buf, hdr...)
	edges := g.Edges()
	for start := 0; start < m; start += specChunk {
		end := min(start+specChunk, m)
		buf = appendFrameHeader(buf, frameEdges, 4+8*(end-start))
		buf = binary.BigEndian.AppendUint32(buf, uint32(start))
		for _, e := range edges[start:end] {
			buf = binary.BigEndian.AppendUint32(buf, uint32(e.U))
			buf = binary.BigEndian.AppendUint32(buf, uint32(e.V))
		}
	}
	for start := 0; start < m; start += specChunk {
		end := min(start+specChunk, m)
		buf = appendFrameHeader(buf, frameParts, 4+4*(end-start))
		buf = binary.BigEndian.AppendUint32(buf, uint32(start))
		for e := start; e < end; e++ {
			k, ok := a.PartitionOf(graph.EdgeID(e))
			if !ok {
				return nil, fmt.Errorf("wire: edge %d is unassigned; a cluster run needs a complete partitioning", e)
			}
			buf = binary.BigEndian.AppendUint32(buf, uint32(k))
		}
	}
	return buf, nil
}

// decodeResult merges one worker's result frame into the values slice and
// the global traffic matrix.
func decodeResult(payload []byte, id, p, n int, values []float64, links *engine.TrafficMatrix) error {
	if len(payload) < 4 {
		return fmt.Errorf("result payload %d bytes, want at least 4", len(payload))
	}
	count := int(binary.BigEndian.Uint32(payload[0:4]))
	want := 4 + 12*count + 16*p
	if len(payload) != want {
		return fmt.Errorf("result payload %d bytes does not match %d masters over p=%d (want %d)", len(payload), count, p, want)
	}
	off := 4
	for i := 0; i < count; i++ {
		v := int(binary.BigEndian.Uint32(payload[off : off+4]))
		if v < 0 || v >= n {
			return fmt.Errorf("master vertex %d out of range [0,%d)", v, n)
		}
		values[v] = math.Float64frombits(binary.BigEndian.Uint64(payload[off+4 : off+12]))
		off += 12
	}
	for to := 0; to < p; to++ {
		links.Messages[id][to] = int64(binary.BigEndian.Uint64(payload[off : off+8]))
		off += 8
	}
	for to := 0; to < p; to++ {
		links.Bytes[id][to] = int64(binary.BigEndian.Uint64(payload[off : off+8]))
		off += 8
	}
	return nil
}

// addTotals sums two totals component-wise.
func addTotals(a, b engine.Totals) engine.Totals {
	a.GatherMessages += b.GatherMessages
	a.ApplyMessages += b.ApplyMessages
	a.ActivateMessages += b.ActivateMessages
	a.GatherBytes += b.GatherBytes
	a.ApplyBytes += b.ApplyBytes
	a.ActivateBytes += b.ActivateBytes
	return a
}

// MaybeWorker turns the process into a cluster worker when EnvWorker is set:
// it runs the worker protocol to completion and returns true, meaning the
// caller should exit immediately (a test binary's TestMain returns without
// running tests). It returns false in ordinary processes. A worker that
// fails prints the error to stderr and exits nonzero.
func MaybeWorker() bool {
	env := os.Getenv(EnvWorker)
	if env == "" {
		return false
	}
	if err := runWorker(env); err != nil {
		fmt.Fprintf(os.Stderr, "wire worker (%s): %v\n", env, err)
		os.Exit(1)
	}
	return true
}

// runWorker is the worker side of the cluster protocol: rebuild the engine
// from the shipped spec, host one machine, join the data mesh, and execute
// phases under the coordinator's control.
func runWorker(env string) error {
	idStr, ctrlAddr, ok := strings.Cut(env, "@")
	if !ok {
		return fmt.Errorf("malformed %s value %q, want id@addr", EnvWorker, env)
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return fmt.Errorf("malformed worker id %q: %v", idStr, err)
	}
	conn, err := net.DialTimeout("tcp", ctrlAddr, setupTimeout)
	if err != nil {
		return fmt.Errorf("dial coordinator %s: %w", ctrlAddr, err)
	}
	defer conn.Close()
	link := &workerLink{id: id, conn: conn, rd: NewReader(conn)}
	hello := binary.BigEndian.AppendUint32(nil, uint32(id))
	if err := link.writeFrame(frameHello, hello); err != nil {
		return fmt.Errorf("hello: %w", err)
	}

	// Trace context is the first coordinator frame: validate the protocol
	// version before trusting any later frame layout, then adopt the run's
	// trace id and (if asked) start recording for the drain-time upload.
	_ = conn.SetReadDeadline(wallDeadline(setupTimeout))
	tctx, err := link.expect(frameTrace)
	if err != nil {
		return err
	}
	if len(tctx) != traceCtxSize {
		return fmt.Errorf("trace context payload %d bytes, want %d", len(tctx), traceCtxSize)
	}
	if v := binary.BigEndian.Uint16(tctx[0:2]); v != clusterProtocolVersion {
		return fmt.Errorf("coordinator speaks cluster protocol v%d, this worker speaks v%d", v, clusterProtocolVersion)
	}
	traceID := binary.BigEndian.Uint64(tctx[2:10])
	collect := tctx[10]&traceFlagCollect != 0
	if collect {
		obs.Enable()
	}
	wsp := obs.Start("wire.worker", obs.Int("machine", id),
		obs.Int64("trace_id", int64(traceID)))

	g, a, prog, err := readSpec(link)
	if err != nil {
		return err
	}
	eng, err := engine.New(g, a)
	if err != nil {
		return err
	}
	host, err := eng.Host(id)
	if err != nil {
		return err
	}

	tr, meshAddr, err := ListenMesh(eng.P(), id)
	if err != nil {
		return err
	}
	defer tr.Close()
	if err := link.writeFrame(frameAddr, []byte(meshAddr)); err != nil {
		return fmt.Errorf("addr: %w", err)
	}
	payload, err := link.expect(frameAddrs)
	if err != nil {
		return err
	}
	addrs, err := decodeAddrs(payload, eng.P())
	if err != nil {
		return err
	}
	if err := tr.ConnectMesh(addrs); err != nil {
		return err
	}

	active, err := host.Reset(prog, tr)
	if err != nil {
		return err
	}
	ready := make([]byte, 0, 12)
	ready = binary.BigEndian.AppendUint32(ready, uint32(host.Replicas()))
	ready = binary.BigEndian.AppendUint32(ready, uint32(host.Masters()))
	ready = binary.BigEndian.AppendUint32(ready, uint32(active))
	if err := link.writeFrame(frameReady, ready); err != nil {
		return fmt.Errorf("ready: %w", err)
	}

	step := -1
	var ssp obs.Span
	for {
		_ = conn.SetReadDeadline(wallDeadline(clusterIOTimeout))
		kind, payload, err := link.rd.ReadFrame()
		if err != nil {
			return fmt.Errorf("control read: %w", err)
		}
		switch kind {
		case framePhase:
			if len(payload) != 1 {
				return fmt.Errorf("phase payload %d bytes, want 1", len(payload))
			}
			ph := int(payload[0])
			if ph == 0 {
				ssp.End()
				step++
				ssp = wsp.Child("wire.worker.superstep", obs.Int("step", step))
			}
			psp := ssp.Child(engine.PhaseName(ph), obs.Int("step", step), obs.Int("phase", ph))
			if err := host.Step(ph); err != nil {
				return err
			}
			tr.Flip()
			psp.End()
			if ph == engine.NumPhases-1 {
				ssp.EndWith(obs.Int("active_masters", host.ActiveMasters()))
			}
			done := make([]byte, 0, 4+totalsSize)
			done = binary.BigEndian.AppendUint32(done, uint32(host.ActiveMasters()))
			done = appendTotals(done, tr.Totals())
			if err := link.writeFrame(framePhaseDone, done); err != nil {
				return fmt.Errorf("phase-done: %w", err)
			}
		case frameFinish:
			ssp.End()
			wsp.End()
			if err := link.writeFrame(frameResult, workerResult(host, tr)); err != nil {
				return err
			}
			// Drain-time telemetry upload: only after the result frame, so
			// the coordinator has every output byte before any telemetry.
			if collect {
				snap := obs.CaptureSnapshot(fmt.Sprintf("worker%d", id), id+1)
				if err := link.writeFrame(frameTelemetry, snap.Encode()); err != nil {
					return fmt.Errorf("telemetry upload: %w", err)
				}
			}
			return nil
		default:
			return fmt.Errorf("unexpected control frame %#02x", kind)
		}
	}
}

// readSpec consumes the spec stream (header, edge chunks, part chunks) and
// rebuilds the graph, assignment and program.
func readSpec(link *workerLink) (*graph.Graph, *partition.Assignment, engine.Program, error) {
	payload, err := link.expect(frameSpec)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(payload) != 4+4+programSpecSize+4+4 {
		return nil, nil, nil, fmt.Errorf("spec payload %d bytes, want %d", len(payload), 4+4+programSpecSize+4+4)
	}
	p := int(binary.BigEndian.Uint32(payload[0:4]))
	spec, err := decodeProgramSpec(payload[8 : 8+programSpecSize])
	if err != nil {
		return nil, nil, nil, err
	}
	n := int(binary.BigEndian.Uint32(payload[8+programSpecSize : 12+programSpecSize]))
	m := int(binary.BigEndian.Uint32(payload[12+programSpecSize : 16+programSpecSize]))
	prog, err := spec.Build()
	if err != nil {
		return nil, nil, nil, err
	}

	edges := make([]graph.Edge, m)
	if err := readChunks(link, frameEdges, m, 8, func(i int, b []byte) {
		edges[i] = graph.Edge{
			U: graph.Vertex(binary.BigEndian.Uint32(b[0:4])),
			V: graph.Vertex(binary.BigEndian.Uint32(b[4:8])),
		}
	}); err != nil {
		return nil, nil, nil, err
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		return nil, nil, nil, err
	}
	a, err := partition.New(m, p)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := readChunks(link, frameParts, m, 4, func(i int, b []byte) {
		a.Assign(graph.EdgeID(i), int(binary.BigEndian.Uint32(b)))
	}); err != nil {
		return nil, nil, nil, err
	}
	return g, a, prog, nil
}

// readChunks consumes the chunk frames covering m items of itemSize bytes,
// invoking fn for each item in order.
func readChunks(link *workerLink, kind byte, m, itemSize int, fn func(i int, b []byte)) error {
	for start := 0; start < m; start += specChunk {
		end := min(start+specChunk, m)
		payload, err := link.expect(kind)
		if err != nil {
			return err
		}
		if len(payload) != 4+itemSize*(end-start) {
			return fmt.Errorf("chunk %#02x payload %d bytes, want %d", kind, len(payload), 4+itemSize*(end-start))
		}
		if got := int(binary.BigEndian.Uint32(payload[0:4])); got != start {
			return fmt.Errorf("chunk %#02x starts at %d, want %d", kind, got, start)
		}
		for i := start; i < end; i++ {
			off := 4 + itemSize*(i-start)
			fn(i, payload[off:off+itemSize])
		}
	}
	return nil
}

// decodeAddrs parses the coordinator's address-table broadcast.
func decodeAddrs(payload []byte, p int) ([]string, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("addrs payload %d bytes, want at least 4", len(payload))
	}
	if got := int(binary.BigEndian.Uint32(payload[0:4])); got != p {
		return nil, fmt.Errorf("addrs table has %d entries, want %d", got, p)
	}
	addrs := make([]string, p)
	off := 4
	for i := 0; i < p; i++ {
		if off+4 > len(payload) {
			return nil, fmt.Errorf("addrs table truncated at entry %d", i)
		}
		l := int(binary.BigEndian.Uint32(payload[off : off+4]))
		off += 4
		if off+l > len(payload) {
			return nil, fmt.Errorf("addrs table truncated inside entry %d", i)
		}
		addrs[i] = string(payload[off : off+l])
		off += l
	}
	if off != len(payload) {
		return nil, fmt.Errorf("addrs table has %d trailing bytes", len(payload)-off)
	}
	return addrs, nil
}

// workerResult encodes this worker's master values and sender-side traffic
// row for the result frame.
func workerResult(host *engine.MachineHost, tr *TCPTransport) []byte {
	mv := host.MasterValues()
	traffic := tr.Traffic()
	id := tr.LocalMachines()[0]
	buf := make([]byte, 0, 4+12*len(mv)+16*tr.p)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(mv)))
	for _, v := range mv {
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Vertex))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.Value))
	}
	for _, m := range traffic.Messages[id] {
		buf = binary.BigEndian.AppendUint64(buf, uint64(m))
	}
	for _, b := range traffic.Bytes[id] {
		buf = binary.BigEndian.AppendUint64(buf, uint64(b))
	}
	return buf
}
