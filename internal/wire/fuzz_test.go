package wire

import (
	"bytes"
	"testing"

	"github.com/graphpart/graphpart/internal/engine"
)

// FuzzWireRoundTrip feeds arbitrary bytes through the frame reader and
// message decoder and asserts the canonical-encoding property: every frame
// that decodes successfully re-encodes to exactly the bytes it came from.
// That property is what makes total wire bytes a deterministic function of a
// run — there is exactly one encoding per message value.
func FuzzWireRoundTrip(f *testing.F) {
	for _, tc := range goldenFrames {
		f.Add(tc.want)
	}
	var multi []byte
	multi = AppendMessage(multi, &engine.GatherFlush{
		MasterLocal: 3,
		Slots:       []int32{1, 4, 1, 5},
		Contribs:    []float64{9, 2, 6, 5.35},
	})
	multi = AppendMessage(multi, &engine.ApplyBroadcast{MirrorLocal: 8, Value: -1, Active: true})
	multi = AppendMessage(multi, &engine.Activate{Local: 979})
	f.Add(multi)
	f.Add([]byte{0, 0, 0, 2, frameApply, 0xff})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := NewReader(bytes.NewReader(data))
		for frames := 0; frames < 64; frames++ {
			start := rd.Offset()
			kind, payload, err := rd.ReadFrame()
			if err != nil {
				return // framing rejected the rest of the stream
			}
			if int64(len(payload))+1 > MaxFrameSize {
				t.Fatalf("reader returned a %d-byte payload beyond MaxFrameSize", len(payload))
			}
			m, err := DecodeMessage(kind, payload, start)
			if err != nil {
				continue // control kinds and malformed payloads are fine to skip
			}
			reencoded := AppendMessage(nil, m)
			original := data[start : start+int64(FrameHeaderSize+len(payload))]
			if !bytes.Equal(reencoded, original) {
				t.Fatalf("encoding is not canonical:\ndecoded  %#v\noriginal %x\nreencode %x",
					m, original, reencoded)
			}
			if FramedSize(m) != len(original) {
				t.Fatalf("FramedSize(%T) = %d, frame was %d bytes", m, FramedSize(m), len(original))
			}
		}
	})
}
