package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/graph"
)

// ProgramSpec is the serializable description of a vertex program — what a
// cluster coordinator ships to worker processes so each can rebuild an
// identical engine.Program. Only the registered program set is supported;
// an unknown program cannot cross a process boundary.
type ProgramSpec struct {
	// Name is the program family: "pagerank", "components" or "sssp".
	Name string
	// Damping and Tolerance parameterize pagerank.
	Damping, Tolerance float64
	// N is pagerank's vertex count (the teleport denominator).
	N int
	// Source is sssp's source vertex.
	Source graph.Vertex
}

// progKind bytes for the wire encoding of a ProgramSpec.
const (
	progPageRank   byte = 1
	progComponents byte = 2
	progSSSP       byte = 3
)

// SpecForProgram derives the wire spec of prog.
func SpecForProgram(prog engine.Program) (ProgramSpec, error) {
	switch p := prog.(type) {
	case *engine.PageRank:
		return ProgramSpec{Name: "pagerank", Damping: p.Damping, Tolerance: p.Tolerance, N: p.N}, nil
	case *engine.Components:
		return ProgramSpec{Name: "components"}, nil
	case *engine.SSSP:
		return ProgramSpec{Name: "sssp", Source: p.Source}, nil
	default:
		return ProgramSpec{}, fmt.Errorf("wire: program %q has no wire spec; only pagerank/components/sssp cross process boundaries", prog.Name())
	}
}

// Build reconstructs the program the spec describes.
func (s ProgramSpec) Build() (engine.Program, error) {
	switch s.Name {
	case "pagerank":
		return &engine.PageRank{Damping: s.Damping, Tolerance: s.Tolerance, N: s.N}, nil
	case "components":
		return &engine.Components{}, nil
	case "sssp":
		return &engine.SSSP{Source: s.Source}, nil
	default:
		return nil, fmt.Errorf("wire: unknown program spec %q", s.Name)
	}
}

// kindByte returns the wire byte for the spec's program family.
func (s ProgramSpec) kindByte() (byte, error) {
	switch s.Name {
	case "pagerank":
		return progPageRank, nil
	case "components":
		return progComponents, nil
	case "sssp":
		return progSSSP, nil
	default:
		return 0, fmt.Errorf("wire: unknown program spec %q", s.Name)
	}
}

// appendProgramSpec appends the fixed-size spec encoding:
// u8 kind | f64 damping | f64 tolerance | u32 n | u32 source.
func appendProgramSpec(buf []byte, s ProgramSpec) ([]byte, error) {
	kb, err := s.kindByte()
	if err != nil {
		return nil, err
	}
	buf = append(buf, kb)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Damping))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s.Tolerance))
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.N))
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.Source))
	return buf, nil
}

const programSpecSize = 1 + 8 + 8 + 4 + 4

// decodeProgramSpec decodes an appendProgramSpec encoding.
func decodeProgramSpec(b []byte) (ProgramSpec, error) {
	if len(b) != programSpecSize {
		return ProgramSpec{}, fmt.Errorf("wire: program spec is %d bytes, want %d", len(b), programSpecSize)
	}
	s := ProgramSpec{
		Damping:   math.Float64frombits(binary.BigEndian.Uint64(b[1:9])),
		Tolerance: math.Float64frombits(binary.BigEndian.Uint64(b[9:17])),
		N:         int(int32(binary.BigEndian.Uint32(b[17:21]))),
		Source:    graph.Vertex(binary.BigEndian.Uint32(b[21:25])),
	}
	switch b[0] {
	case progPageRank:
		s.Name = "pagerank"
	case progComponents:
		s.Name = "components"
	case progSSSP:
		s.Name = "sssp"
	default:
		return ProgramSpec{}, fmt.Errorf("wire: unknown program kind byte %#02x", b[0])
	}
	return s, nil
}

// appendTotals appends the six engine.Totals counters.
func appendTotals(buf []byte, t engine.Totals) []byte {
	for _, v := range [...]int64{t.GatherMessages, t.ApplyMessages, t.ActivateMessages,
		t.GatherBytes, t.ApplyBytes, t.ActivateBytes} {
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

const totalsSize = 6 * 8

// decodeTotals decodes an appendTotals encoding.
func decodeTotals(b []byte) (engine.Totals, error) {
	if len(b) != totalsSize {
		return engine.Totals{}, fmt.Errorf("wire: totals are %d bytes, want %d", len(b), totalsSize)
	}
	u := func(i int) int64 { return int64(binary.BigEndian.Uint64(b[8*i : 8*i+8])) }
	return engine.Totals{
		GatherMessages: u(0), ApplyMessages: u(1), ActivateMessages: u(2),
		GatherBytes: u(3), ApplyBytes: u(4), ActivateBytes: u(5),
	}, nil
}
