package wire

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graphpart/graphpart/internal/engine"
)

// kindCount mirrors the engine's message-kind count for per-kind counters.
const kindCount = 3

// batch is one barrier-delimited delivery on one incoming link.
type batch struct {
	seq  uint32
	msgs []engine.Message
}

// TCPTransport is engine.Transport over real TCP sockets: a full mesh of
// length-prefix-framed connections, one per ordered machine pair. It
// preserves the MemTransport delivery contract exactly — concurrent sends
// from distinct senders, per-sender send order (one TCP stream per link),
// Flip-barrier delivery, ascending-sender-id drain grouping — so engine
// runs over it stay bit-identical to RunSequential; only the byte
// accounting changes, from payload bytes to actual framed wire bytes
// (payload + FrameHeaderSize per message).
//
// A transport may host all p machines in one process (NewTCPTransport; the
// engine's machine goroutines then talk through the kernel's loopback) or
// any subset (ListenMesh/ConnectMesh; the process-per-machine cluster hosts
// exactly one machine per process). Send may only be called for locally
// hosted senders and Drain for locally hosted inboxes.
//
// Phase discipline matches MemTransport: Flip is never called concurrently
// with Send or Drain — on a mesh with remote peers, Flip is also the global
// barrier, returning only after every peer's sends for the phase have
// arrived (each sender closes its phase with a barrier frame on every
// link). A broken link mid-run has no error path in the Transport
// interface; it panics with the underlying error.
type TCPTransport struct {
	p        int
	local    []bool
	localIDs []int

	listeners []net.Listener
	// conns/writers[from][to]: outgoing framed links for local senders.
	conns   [][]net.Conn
	writers [][]*meshWriter
	// sendBuf[from] is the per-sender encode scratch (machine from's
	// goroutine is its only writer).
	sendBuf [][]byte
	// inConns are the accepted sides, kept for Close.
	inConns []net.Conn

	// pendingSelf[k] buffers from==to sends (the engine never issues them,
	// but the MemTransport contract supports them).
	pendingSelf [][]engine.Message
	// delivered[from][to] is inbox to's drainable batch per sender, for
	// local to. Written by Flip, consumed by Drain(to); the caller's
	// barrier (never Flip concurrent with Drain) orders the two.
	delivered [][][]engine.Message
	// drain[k] is inbox k's reusable drain buffer; each Drain(k) refills it
	// in place, honouring the interface's valid-until-next-Drain contract.
	drain [][]engine.Message

	// mu guards ready, failed and closed; cond wakes Flip when a reader
	// banks a barrier-delimited batch.
	mu     sync.Mutex
	cond   *sync.Cond
	ready  [][][]batch
	failed error
	closed bool
	seq    uint32

	// Traffic counters, single-writer per sender row like MemTransport's.
	msgs      [][]int64
	bytes     [][]int64
	kindMsgs  [][kindCount]int64
	kindBytes [][kindCount]int64
	// controlBytes counts barrier/hello framing overhead — transport cost
	// that is not message traffic and stays out of Totals.
	controlBytes atomic.Int64

	readers sync.WaitGroup
}

// meshWriter is a small buffered writer; bufio.Writer is avoided so a
// short barrier frame can be flushed without a second syscall path.
type meshWriter struct {
	conn net.Conn
	buf  []byte
}

const meshWriterFlushAt = 32 << 10

func (w *meshWriter) write(frame []byte) error {
	w.buf = append(w.buf, frame...)
	if len(w.buf) >= meshWriterFlushAt {
		return w.flush()
	}
	return nil
}

func (w *meshWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.conn.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// newMesh allocates the transport skeleton for p machines hosting localIDs.
func newMesh(p int, localIDs []int) (*TCPTransport, error) {
	if p < 1 {
		return nil, fmt.Errorf("wire: need at least one machine, got p=%d", p)
	}
	t := &TCPTransport{
		p:         p,
		local:     make([]bool, p),
		listeners: make([]net.Listener, p),
		conns:     make([][]net.Conn, p),
		writers:   make([][]*meshWriter, p),
		sendBuf:   make([][]byte, p),
		msgs:      make([][]int64, p),
		bytes:     make([][]int64, p),
		kindMsgs:  make([][kindCount]int64, p),
		kindBytes: make([][kindCount]int64, p),
	}
	t.cond = sync.NewCond(&t.mu)
	for _, k := range localIDs {
		if k < 0 || k >= p {
			return nil, fmt.Errorf("wire: local machine id %d out of range [0,%d)", k, p)
		}
		if t.local[k] {
			return nil, fmt.Errorf("wire: duplicate local machine id %d", k)
		}
		t.local[k] = true
	}
	t.localIDs = append([]int(nil), localIDs...)
	sort.Ints(t.localIDs)
	t.pendingSelf = make([][]engine.Message, p)
	t.delivered = make([][][]engine.Message, p)
	t.drain = make([][]engine.Message, p)
	t.ready = make([][][]batch, p)
	for from := 0; from < p; from++ {
		t.conns[from] = make([]net.Conn, p)
		t.writers[from] = make([]*meshWriter, p)
		t.msgs[from] = make([]int64, p)
		t.bytes[from] = make([]int64, p)
		t.delivered[from] = make([][]engine.Message, p)
		t.ready[from] = make([][]batch, p)
	}
	return t, nil
}

// NewTCPTransport builds an in-process TCP mesh for p machines: every
// ordered pair gets a loopback connection, so all inter-machine traffic
// crosses real sockets while the engine's machine goroutines stay in one
// process. Close must be called to release the sockets.
func NewTCPTransport(p int) (*TCPTransport, error) {
	all := make([]int, p)
	for i := range all {
		all[i] = i
	}
	t, err := newMesh(p, all)
	if err != nil {
		return nil, err
	}
	addrs, err := t.listen()
	if err != nil {
		t.Close()
		return nil, err
	}
	if err := t.connect(addrs); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// ListenMesh builds a transport for p machines hosting only machine
// localID, listening for peer connections on a fresh loopback port. It
// returns the transport and its listen address; the caller distributes all
// p addresses (the cluster coordinator does) and completes the mesh with
// ConnectMesh.
func ListenMesh(p, localID int) (*TCPTransport, string, error) {
	t, err := newMesh(p, []int{localID})
	if err != nil {
		return nil, "", err
	}
	addrs, err := t.listen()
	if err != nil {
		t.Close()
		return nil, "", err
	}
	return t, addrs[localID], nil
}

// ConnectMesh completes a ListenMesh transport: dials every remote peer
// (addrs[j] is machine j's listen address) and accepts every incoming link.
// It returns once the mesh is fully connected.
func (t *TCPTransport) ConnectMesh(addrs []string) error {
	return t.connect(addrs)
}

// listen opens one listener per local machine and returns the p-slot
// address table (empty entries for remote machines).
func (t *TCPTransport) listen() ([]string, error) {
	addrs := make([]string, t.p)
	for _, k := range t.localIDs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("wire: listen for machine %d: %w", k, err)
		}
		t.listeners[k] = ln
		addrs[k] = ln.Addr().String()
	}
	return addrs, nil
}

// accepted is one handshaken incoming link.
type accepted struct {
	from, to int
	conn     net.Conn
	rd       *Reader
	err      error
}

// connect completes the mesh: dials an outgoing link for every (local,
// remote-or-local) ordered pair and accepts the expected incoming links,
// handshaking each with a hello frame carrying the sender id.
func (t *TCPTransport) connect(addrs []string) error {
	if t.p == 1 {
		return nil
	}
	expected := len(t.localIDs) * (t.p - 1)
	ch := make(chan accepted, expected)
	for _, k := range t.localIDs {
		go t.acceptLoop(k, ch)
	}
	// Dial outgoing links. Peers' accept loops run concurrently (above for
	// in-process links, in the peer processes for remote ones), so serial
	// dialing cannot deadlock.
	var hello [FrameHeaderSize + 4]byte
	for _, from := range t.localIDs {
		for to := 0; to < t.p; to++ {
			if to == from {
				continue
			}
			conn, err := net.DialTimeout("tcp", addrs[to], setupTimeout)
			if err != nil {
				return fmt.Errorf("wire: dial machine %d at %s: %w", to, addrs[to], err)
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				// Barrier frames are tiny and latency-critical; never
				// Nagle-delay them.
				_ = tc.SetNoDelay(true)
			}
			h := appendFrameHeader(hello[:0], frameHello, 4)
			h = binary.BigEndian.AppendUint32(h, uint32(from))
			_ = conn.SetWriteDeadline(wallDeadline(setupTimeout))
			if _, err := conn.Write(h); err != nil {
				conn.Close()
				return fmt.Errorf("wire: hello to machine %d: %w", to, err)
			}
			_ = conn.SetWriteDeadline(time.Time{})
			t.controlBytes.Add(int64(len(h)))
			t.conns[from][to] = conn
			t.writers[from][to] = &meshWriter{conn: conn, buf: make([]byte, 0, meshWriterFlushAt)}
		}
	}
	// Collect the handshaken incoming links and start their readers.
	seen := make(map[[2]int]bool, expected)
	for i := 0; i < expected; i++ {
		in := <-ch
		if in.err != nil {
			return in.err
		}
		key := [2]int{in.from, in.to}
		if in.from < 0 || in.from >= t.p || in.from == in.to || seen[key] {
			in.conn.Close()
			return fmt.Errorf("wire: invalid or duplicate hello: link %d->%d", in.from, in.to)
		}
		seen[key] = true
		t.inConns = append(t.inConns, in.conn)
		t.readers.Add(1)
		go t.readLoop(in.from, in.to, in.rd)
	}
	return nil
}

// acceptLoop accepts machine k's p-1 incoming links and handshakes each.
func (t *TCPTransport) acceptLoop(k int, ch chan<- accepted) {
	ln := t.listeners[k]
	for i := 0; i < t.p-1; i++ {
		if tl, ok := ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(wallDeadline(setupTimeout))
		}
		conn, err := ln.Accept()
		if err != nil {
			ch <- accepted{to: k, err: fmt.Errorf("wire: accept for machine %d: %w", k, err)}
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		_ = conn.SetReadDeadline(wallDeadline(setupTimeout))
		rd := NewReader(conn)
		kind, payload, err := rd.ReadFrame()
		if err != nil || kind != frameHello || len(payload) != 4 {
			conn.Close()
			ch <- accepted{to: k, err: fmt.Errorf("wire: bad hello on machine %d's listener (kind %#02x): %v", k, kind, err)}
			return
		}
		_ = conn.SetReadDeadline(time.Time{})
		ch <- accepted{from: int(int32(binary.BigEndian.Uint32(payload))), to: k, conn: conn, rd: rd}
	}
}

// readLoop consumes one incoming link: data frames accumulate into the
// current batch; a barrier frame banks the batch under mu for Flip.
func (t *TCPTransport) readLoop(from, to int, rd *Reader) {
	defer t.readers.Done()
	var cur []engine.Message
	for {
		start := rd.Offset()
		kind, payload, err := rd.ReadFrame()
		if err != nil {
			t.fail(fmt.Errorf("wire: link %d->%d: %w", from, to, err))
			return
		}
		if kind == frameBarrier {
			if len(payload) != 4 {
				t.fail(frameErrorf(start, "barrier payload %d bytes, want 4 on link %d->%d", len(payload), from, to))
				return
			}
			seq := binary.BigEndian.Uint32(payload)
			t.mu.Lock()
			t.ready[from][to] = append(t.ready[from][to], batch{seq: seq, msgs: cur})
			cur = nil
			t.cond.Broadcast()
			t.mu.Unlock()
			continue
		}
		m, err := DecodeMessage(kind, payload, start)
		if err != nil {
			t.fail(fmt.Errorf("wire: link %d->%d: %w", from, to, err))
			return
		}
		cur = append(cur, m)
	}
}

// fail records the first link error and wakes any Flip waiter. Errors after
// Close (readers seeing their sockets closed) are expected and dropped.
func (t *TCPTransport) fail(err error) {
	t.mu.Lock()
	if !t.closed && t.failed == nil {
		t.failed = err
	}
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Send implements engine.Transport. from must be hosted locally.
func (t *TCPTransport) Send(from, to int, m engine.Message) {
	if from < 0 || from >= t.p || !t.local[from] {
		panic(fmt.Sprintf("wire: Send from machine %d, which is not hosted here", from))
	}
	if from == to {
		t.pendingSelf[from] = append(t.pendingSelf[from], m)
		t.account(from, to, m, FramedSize(m))
		return
	}
	buf := AppendMessage(t.sendBuf[from][:0], m)
	t.sendBuf[from] = buf[:0]
	if err := t.writers[from][to].write(buf); err != nil {
		panic(fmt.Sprintf("wire: send on link %d->%d: %v", from, to, err))
	}
	t.account(from, to, m, len(buf))
}

// account books one message on the sender's single-writer counter row.
func (t *TCPTransport) account(from, to int, m engine.Message, framed int) {
	t.msgs[from][to]++
	t.bytes[from][to] += int64(framed)
	k := m.MessageKind()
	t.kindMsgs[from][k]++
	t.kindBytes[from][k] += int64(framed)
}

// Flip implements engine.Transport: every local sender closes the phase
// with a barrier frame on each outgoing link, then Flip blocks until a
// barrier for this phase has arrived on every incoming link — at which
// point the banked batches become drainable. On a multi-process mesh this
// doubles as the data-plane phase barrier.
func (t *TCPTransport) Flip() {
	t.seq++
	var scratch [FrameHeaderSize + 4]byte
	for _, from := range t.localIDs {
		for to := 0; to < t.p; to++ {
			if w := t.writers[from][to]; w != nil {
				frame := appendFrameHeader(scratch[:0], frameBarrier, 4)
				frame = binary.BigEndian.AppendUint32(frame, t.seq)
				if err := w.write(frame); err == nil {
					err = w.flush()
					if err != nil {
						panic(fmt.Sprintf("wire: barrier flush on link %d->%d: %v", from, to, err))
					}
				} else {
					panic(fmt.Sprintf("wire: barrier on link %d->%d: %v", from, to, err))
				}
				t.controlBytes.Add(int64(len(frame)))
			}
		}
		if len(t.pendingSelf[from]) > 0 {
			t.delivered[from][from] = append(t.delivered[from][from], t.pendingSelf[from]...)
			t.pendingSelf[from] = t.pendingSelf[from][:0]
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.failed != nil {
			panic(fmt.Sprintf("wire: mesh failed during Flip %d: %v", t.seq, t.failed))
		}
		if t.closed {
			panic("wire: Flip on a closed transport")
		}
		if t.allBarriered() {
			break
		}
		t.cond.Wait()
	}
	for from := 0; from < t.p; from++ {
		for _, to := range t.localIDs {
			if from == to {
				continue
			}
			q := t.ready[from][to]
			b := q[0]
			if b.seq != t.seq {
				panic(fmt.Sprintf("wire: link %d->%d delivered barrier %d during Flip %d", from, to, b.seq, t.seq))
			}
			t.ready[from][to] = q[1:]
			if len(b.msgs) > 0 {
				t.delivered[from][to] = append(t.delivered[from][to], b.msgs...)
			}
		}
	}
}

// allBarriered reports whether every incoming link has banked the batch for
// the current Flip sequence. Caller holds mu.
func (t *TCPTransport) allBarriered() bool {
	for from := 0; from < t.p; from++ {
		for _, to := range t.localIDs {
			if from == to {
				continue
			}
			if len(t.ready[from][to]) == 0 {
				return false
			}
		}
	}
	return true
}

// Drain implements engine.Transport: inbox k, grouped by ascending sender
// id with per-sender order preserved. k must be hosted locally. The batch
// is collected into inbox k's reusable buffer (valid until the next
// Drain(k)), so steady-state drains allocate nothing.
func (t *TCPTransport) Drain(k int) []engine.Message {
	if k < 0 || k >= t.p || !t.local[k] {
		panic(fmt.Sprintf("wire: Drain of inbox %d, which is not hosted here", k))
	}
	out := t.drain[k][:0]
	for from := 0; from < t.p; from++ {
		q := t.delivered[from][k]
		if len(q) == 0 {
			continue
		}
		out = append(out, q...)
		t.delivered[from][k] = q[:0]
	}
	t.drain[k] = out
	return out
}

// Totals implements engine.Transport. Bytes are framed wire bytes
// (payload + FrameHeaderSize per message); control framing (barriers,
// hellos) is reported separately by ControlBytes.
func (t *TCPTransport) Totals() engine.Totals {
	var out engine.Totals
	for from := 0; from < t.p; from++ {
		out.GatherMessages += t.kindMsgs[from][engine.KindGatherFlush]
		out.ApplyMessages += t.kindMsgs[from][engine.KindApplyBroadcast]
		out.ActivateMessages += t.kindMsgs[from][engine.KindActivate]
		out.GatherBytes += t.kindBytes[from][engine.KindGatherFlush]
		out.ApplyBytes += t.kindBytes[from][engine.KindApplyBroadcast]
		out.ActivateBytes += t.kindBytes[from][engine.KindActivate]
	}
	return out
}

// Traffic implements engine.Transport: a copy of this process's sender-side
// per-link matrix (remote senders' rows are zero; the cluster coordinator
// merges per-worker rows into the full matrix).
func (t *TCPTransport) Traffic() *engine.TrafficMatrix {
	out := &engine.TrafficMatrix{
		Messages: make([][]int64, t.p),
		Bytes:    make([][]int64, t.p),
	}
	for i := 0; i < t.p; i++ {
		out.Messages[i] = append([]int64(nil), t.msgs[i]...)
		out.Bytes[i] = append([]int64(nil), t.bytes[i]...)
	}
	return out
}

// ControlBytes returns the framing overhead spent on barrier and hello
// frames — wire cost that is real but is not message traffic.
func (t *TCPTransport) ControlBytes() int64 { return t.controlBytes.Load() }

// LocalMachines returns the machine ids hosted by this transport instance,
// ascending.
func (t *TCPTransport) LocalMachines() []int { return append([]int(nil), t.localIDs...) }

// Close tears the mesh down: closes every socket and listener and waits for
// the reader goroutines to exit. Safe to call more than once.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
	for _, ln := range t.listeners {
		if ln != nil {
			ln.Close()
		}
	}
	for from := range t.conns {
		for _, c := range t.conns[from] {
			if c != nil {
				c.Close()
			}
		}
	}
	for _, c := range t.inConns {
		c.Close()
	}
	t.readers.Wait()
	return nil
}
