package wire

import (
	"encoding/binary"
	"math"

	"github.com/graphpart/graphpart/internal/engine"
)

// Message payload encodings (all integers big-endian, floats as IEEE 754
// bit patterns). Payload sizes equal engine.Message.WireSize() exactly —
// the in-memory transport's byte accounting is the payload; the framed
// size adds the constant FrameHeaderSize per message.
//
//	GatherFlush    u32 masterLocal | u32 count | count x (u32 slot, u64 valueBits)
//	ApplyBroadcast u32 mirrorLocal | u64 valueBits | u8 flags (bit0 changed, bit1 active)
//	Activate       u32 local
//
// The encoding is canonical: for every byte slice that decodes, re-encoding
// the decoded message reproduces the input bit for bit (FuzzWireRoundTrip
// asserts this). That is what makes framed wire bytes a deterministic
// function of a run.

// applyFlagChanged and applyFlagActive are the ApplyBroadcast flag bits;
// the remaining bits must be zero (canonical encoding).
const (
	applyFlagChanged = 1 << 0
	applyFlagActive  = 1 << 1
)

// FramedSize returns the exact bytes m occupies on a wire link: the payload
// (m.WireSize()) plus the frame header.
func FramedSize(m engine.Message) int { return FrameHeaderSize + m.WireSize() }

// AppendMessage appends m as one complete frame to buf and returns the
// extended slice.
//
//graphpart:hotpath test=TestHotPathAllocs_AppendMessage
func AppendMessage(buf []byte, m engine.Message) []byte {
	switch m := m.(type) {
	case *engine.GatherFlush:
		buf = appendFrameHeader(buf, frameGather, m.WireSize())
		buf = binary.BigEndian.AppendUint32(buf, uint32(m.MasterLocal))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Contribs)))
		for i, c := range m.Contribs {
			buf = binary.BigEndian.AppendUint32(buf, uint32(m.Slots[i]))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c))
		}
		return buf
	case *engine.ApplyBroadcast:
		buf = appendFrameHeader(buf, frameApply, m.WireSize())
		buf = binary.BigEndian.AppendUint32(buf, uint32(m.MirrorLocal))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.Value))
		var flags byte
		if m.Changed {
			flags |= applyFlagChanged
		}
		if m.Active {
			flags |= applyFlagActive
		}
		return append(buf, flags)
	case *engine.Activate:
		buf = appendFrameHeader(buf, frameActivate, m.WireSize())
		return binary.BigEndian.AppendUint32(buf, uint32(m.Local))
	default:
		// The three kinds above are the complete engine message set; a new
		// kind must extend the codec before it can cross a wire transport.
		panic("wire: unknown message type")
	}
}

// DecodeMessage decodes the payload of a data frame of the given kind. The
// returned message owns its memory (nothing aliases payload). off is the
// stream offset of the frame, used to locate errors.
func DecodeMessage(kind byte, payload []byte, off int64) (engine.Message, error) {
	switch kind {
	case frameGather:
		if len(payload) < 8 {
			return nil, frameErrorf(off, "gather payload %d bytes, want at least 8", len(payload))
		}
		count := binary.BigEndian.Uint32(payload[4:8])
		want := 8 + 12*int64(count)
		if int64(len(payload)) != want {
			return nil, frameErrorf(off, "gather payload %d bytes does not match count %d (want %d)",
				len(payload), count, want)
		}
		m := &engine.GatherFlush{
			MasterLocal: int32(binary.BigEndian.Uint32(payload[0:4])),
			Slots:       make([]int32, count),
			Contribs:    make([]float64, count),
		}
		for i := uint32(0); i < count; i++ {
			p := payload[8+12*i:]
			m.Slots[i] = int32(binary.BigEndian.Uint32(p[0:4]))
			m.Contribs[i] = math.Float64frombits(binary.BigEndian.Uint64(p[4:12]))
		}
		return m, nil
	case frameApply:
		if len(payload) != 13 {
			return nil, frameErrorf(off, "apply payload %d bytes, want 13", len(payload))
		}
		flags := payload[12]
		if flags&^(applyFlagChanged|applyFlagActive) != 0 {
			return nil, frameErrorf(off, "apply flags byte %#02x has undefined bits set", flags)
		}
		return &engine.ApplyBroadcast{
			MirrorLocal: int32(binary.BigEndian.Uint32(payload[0:4])),
			Value:       math.Float64frombits(binary.BigEndian.Uint64(payload[4:12])),
			Changed:     flags&applyFlagChanged != 0,
			Active:      flags&applyFlagActive != 0,
		}, nil
	case frameActivate:
		if len(payload) != 4 {
			return nil, frameErrorf(off, "activate payload %d bytes, want 4", len(payload))
		}
		return &engine.Activate{Local: int32(binary.BigEndian.Uint32(payload))}, nil
	default:
		return nil, frameErrorf(off, "unknown data frame kind %#02x", kind)
	}
}
