package wire

import (
	"testing"

	"github.com/graphpart/graphpart/internal/engine"
)

// TestHotPathAllocs_AppendMessage is the cross-check named by the
// //graphpart:hotpath annotation on AppendMessage: framing all three
// message kinds into a presized buffer allocates nothing — the encoder
// only ever appends into the caller's slice.
func TestHotPathAllocs_AppendMessage(t *testing.T) {
	gf := &engine.GatherFlush{
		MasterLocal: 3,
		Slots:       []int32{0, 2, 5},
		Contribs:    []float64{0.5, 1.5, 2.5},
	}
	ab := &engine.ApplyBroadcast{MirrorLocal: 7, Value: 0.25, Changed: true, Active: true}
	ac := &engine.Activate{Local: 9}
	buf := make([]byte, 0, 4096)
	if allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendMessage(buf[:0], gf)
		buf = AppendMessage(buf, ab)
		buf = AppendMessage(buf, ac)
	}); allocs != 0 {
		t.Fatalf("AppendMessage into a presized buffer allocates %.1f times per batch", allocs)
	}
}
