// Package wire is the network layer of the share-nothing engine: a
// deterministic binary codec for every engine.Message kind, length-prefixed
// framing over io streams, a TCP mesh Transport whose delivery contract is
// bit-compatible with engine.MemTransport, and a process-per-machine
// cluster runner. See DESIGN.md §14 for the wire format and the argument
// that determinism survives the network.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Frame layout: [4-byte big-endian length][1-byte kind][payload], where
// length counts the kind byte plus the payload (so length >= 1 and the
// frame occupies length+4 bytes on the wire).
const (
	// FrameHeaderSize is the bytes of overhead per frame: the 4-byte
	// length prefix and the 1-byte kind.
	FrameHeaderSize = 5
	// MaxFrameSize bounds the length field a reader accepts. The largest
	// legitimate frame is a GatherFlush for a maximum-degree vertex
	// (12 bytes per neighbour); 16 MiB covers ~1.4M neighbours, far above
	// any dataset here, while keeping a corrupt length prefix from
	// provoking a giant allocation.
	MaxFrameSize = 16 << 20
)

// Frame kind bytes. Data kinds 0x01..0x03 map 1:1 onto engine message
// kinds; 0x10.. are transport/cluster control frames that never enter an
// inbox or the traffic accounting.
const (
	frameGather   byte = 0x01
	frameApply    byte = 0x02
	frameActivate byte = 0x03

	// frameBarrier ends a sender's phase on one link: payload is the
	// 4-byte Flip sequence number.
	frameBarrier byte = 0x10
	// frameHello opens a mesh data connection: payload is the 4-byte
	// sender machine id.
	frameHello byte = 0x11

	// Cluster control frames (coordinator <-> worker), see cluster.go.
	frameSpec      byte = 0x20
	frameAddr      byte = 0x21
	frameAddrs     byte = 0x22
	frameReady     byte = 0x23
	framePhase     byte = 0x24
	framePhaseDone byte = 0x25
	frameFinish    byte = 0x26
	frameResult    byte = 0x27
	// frameEdges/frameParts chunk the graph and assignment inside the spec
	// stream, keeping every frame well under MaxFrameSize for any dataset.
	frameEdges byte = 0x28
	frameParts byte = 0x29
	// frameTrace is the versioned trace-context frame the coordinator sends
	// each worker right after its hello: protocol version, trace id, and
	// whether the worker should ship telemetry back at drain.
	frameTrace byte = 0x2A
	// frameTelemetry carries a worker's encoded obs.ProcessSnapshot back to
	// the coordinator after its result frame (only when trace context
	// requested collection). Pure control plane: never counted as traffic.
	frameTelemetry byte = 0x2B
)

// FrameError is a framing or decoding failure, located by the byte offset
// of the offending frame in the stream.
type FrameError struct {
	// Offset is the stream offset of the first byte of the bad frame.
	Offset int64
	// Reason describes the failure.
	Reason string
}

// Error implements error.
func (e *FrameError) Error() string {
	return fmt.Sprintf("wire: %s (frame at byte offset %d)", e.Reason, e.Offset)
}

// frameErrorf builds a FrameError at offset off.
func frameErrorf(off int64, format string, args ...any) *FrameError {
	return &FrameError{Offset: off, Reason: fmt.Sprintf(format, args...)}
}

// Reader reads frames from a byte stream, tracking the stream offset so
// every error pinpoints the corrupt frame.
type Reader struct {
	br  *bufio.Reader
	off int64
	buf []byte
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// Offset returns the stream offset of the next unread byte.
func (r *Reader) Offset() int64 { return r.off }

// ReadFrame reads one frame and returns its kind and payload. The payload
// slice is valid only until the next ReadFrame call (it aliases an internal
// buffer). io.EOF is returned unwrapped when the stream ends cleanly on a
// frame boundary; every other failure is a *FrameError or the underlying
// I/O error.
func (r *Reader) ReadFrame() (kind byte, payload []byte, err error) {
	start := r.off
	var hdr [4]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, frameErrorf(start, "truncated length prefix: %v", err)
	}
	length := binary.BigEndian.Uint32(hdr[:])
	if length < 1 {
		return 0, nil, frameErrorf(start, "frame length %d is below the 1-byte minimum (kind byte)", length)
	}
	if length > MaxFrameSize {
		return 0, nil, frameErrorf(start, "frame length %d exceeds the %d-byte maximum", length, MaxFrameSize)
	}
	if cap(r.buf) < int(length) {
		r.buf = make([]byte, length)
	}
	body := r.buf[:length]
	if _, err := io.ReadFull(r.br, body); err != nil {
		return 0, nil, frameErrorf(start, "truncated frame: want %d body bytes: %v", length, err)
	}
	r.off += int64(4 + length)
	return body[0], body[1:], nil
}

// appendFrameHeader appends the 4-byte length prefix and kind byte for a
// payload of payloadLen bytes.
func appendFrameHeader(buf []byte, kind byte, payloadLen int) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(1+payloadLen))
	return append(buf, kind)
}

// writeFrame writes one complete frame to w.
func writeFrame(w io.Writer, kind byte, payload []byte) error {
	hdr := appendFrameHeader(make([]byte, 0, FrameHeaderSize), kind, len(payload))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}
