package wire_test

import (
	"fmt"
	"sort"
	"testing"

	graphpart "github.com/graphpart/graphpart"
	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
	"github.com/graphpart/graphpart/internal/wire"
)

// oracleGraph builds a connected random graph (random tree plus extra
// edges), the same shape the engine's own oracle tests use.
func oracleGraph(seed uint64, n, extra int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex(r.Intn(i)))
	}
	for b.NumEdgesAdded() < n-1+extra {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if u != v {
			_ = b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// TestTCPOracleBitIdentical is the acceptance oracle of the wire layer: for
// every registered partitioner, at p in {2, 8}, PageRank and connected
// components executed over real TCP sockets must return values bit-for-bit
// equal to the plain sequential loop, with the same superstep count — the
// network changes how bytes move, not what gets computed.
func TestTCPOracleBitIdentical(t *testing.T) {
	g := oracleGraph(7, 500, 2000)
	n := g.NumVertices()
	programs := []struct {
		name string
		make func() engine.Program
		max  int
	}{
		{"pagerank", func() engine.Program { return engine.NewPageRank(n, 0.85, 1e-8) }, 30},
		{"components", func() engine.Program { return &engine.Components{} }, 50},
	}
	parts := graphpart.AllPartitioners(42)
	names := make([]string, 0, len(parts))
	for name := range parts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, pr := range programs {
		want, wantSteps, err := engine.RunSequential(g, pr.make(), pr.max)
		if err != nil {
			t.Fatalf("sequential %s: %v", pr.name, err)
		}
		for _, name := range names {
			for _, p := range []int{2, 8} {
				t.Run(fmt.Sprintf("%s/%s/p%d", pr.name, name, p), func(t *testing.T) {
					a, err := parts[name].Partition(g, p)
					if err != nil {
						t.Fatalf("partition: %v", err)
					}
					e, err := engine.New(g, a)
					if err != nil {
						t.Fatalf("engine.New: %v", err)
					}
					tr := newTCP(t, p)
					got, stats, err := e.RunWith(pr.make(), pr.max, tr)
					if err != nil {
						t.Fatalf("RunWith over TCP: %v", err)
					}
					if stats.Supersteps != wantSteps {
						t.Fatalf("supersteps = %d, sequential ran %d", stats.Supersteps, wantSteps)
					}
					for v := range want {
						if got[v] != want[v] {
							t.Fatalf("vertex %d: TCP runtime %v != sequential %v (not bit-identical)",
								v, got[v], want[v])
						}
					}
				})
			}
		}
	}
}

// TestTCPTrafficMatchesMem runs the same partitioned job over MemTransport
// and TCPTransport and checks the traffic reports line up: identical message
// counts and superstep schedule, per-link and per-step, with TCP bytes equal
// to payload bytes plus the frame header per message everywhere.
func TestTCPTrafficMatchesMem(t *testing.T) {
	g := oracleGraph(13, 400, 1200)
	const p = 4
	a, err := graphpart.AllPartitioners(42)["tlp"].Partition(g, p)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	run := func(tr engine.Transport) ([]float64, engine.Stats) {
		e, err := engine.New(g, a)
		if err != nil {
			t.Fatalf("engine.New: %v", err)
		}
		prog := engine.NewPageRank(g.NumVertices(), 0.85, 1e-8)
		vals, stats, err := e.RunWith(prog, 25, tr)
		if err != nil {
			t.Fatalf("RunWith: %v", err)
		}
		return vals, stats
	}
	memVals, memStats := run(engine.NewMemTransport(p))
	tcpVals, tcpStats := run(newTCP(t, p))
	for v := range memVals {
		if memVals[v] != tcpVals[v] {
			t.Fatalf("vertex %d: mem %v != tcp %v", v, memVals[v], tcpVals[v])
		}
	}
	if memStats.Supersteps != tcpStats.Supersteps {
		t.Fatalf("supersteps: mem %d, tcp %d", memStats.Supersteps, tcpStats.Supersteps)
	}
	if memStats.Messages() != tcpStats.Messages() {
		t.Fatalf("messages: mem %d, tcp %d", memStats.Messages(), tcpStats.Messages())
	}
	wantBytes := memStats.Bytes() + wire.FrameHeaderSize*memStats.Messages()
	if tcpStats.Bytes() != wantBytes {
		t.Fatalf("tcp bytes = %d, want %d (mem payload + header per message)", tcpStats.Bytes(), wantBytes)
	}
	if len(memStats.PerStep) != len(tcpStats.PerStep) {
		t.Fatalf("per-step lengths differ: mem %d, tcp %d", len(memStats.PerStep), len(tcpStats.PerStep))
	}
	for i := range memStats.PerStep {
		ms, ts := memStats.PerStep[i], tcpStats.PerStep[i]
		if ms.Messages() != ts.Messages() {
			t.Fatalf("step %d messages: mem %d, tcp %d", i, ms.Messages(), ts.Messages())
		}
		if ts.Bytes() != ms.Bytes()+wire.FrameHeaderSize*ms.Messages() {
			t.Fatalf("step %d bytes: tcp %d, mem %d + headers", i, ts.Bytes(), ms.Bytes())
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if memStats.Links.Messages[i][j] != tcpStats.Links.Messages[i][j] {
				t.Fatalf("link %d->%d messages: mem %d, tcp %d", i, j,
					memStats.Links.Messages[i][j], tcpStats.Links.Messages[i][j])
			}
			wantLink := memStats.Links.Bytes[i][j] + wire.FrameHeaderSize*memStats.Links.Messages[i][j]
			if tcpStats.Links.Bytes[i][j] != wantLink {
				t.Fatalf("link %d->%d bytes: tcp %d, want %d", i, j, tcpStats.Links.Bytes[i][j], wantLink)
			}
		}
	}
}
