package wire

import (
	"io"
	"sync/atomic"

	"github.com/graphpart/graphpart/internal/obs"
)

// Trace-context frame layout (frameTrace, coordinator -> worker):
//
//	[u16 protocol version][u64 trace id][u8 flags]
//
// The version is checked by the worker before it trusts any later frame;
// flags bit 0 (traceFlagCollect) requests the drain-time telemetry upload.
const (
	traceCtxSize     = 2 + 8 + 1
	traceFlagCollect = 1 << 0
)

// traceSeq disambiguates trace ids minted within one clock tick.
var traceSeq atomic.Uint64

// newTraceID mints a cluster-run trace id. Uniqueness is what matters —
// the id only labels spans and snapshots (record-only), so deriving it from
// the telemetry clock keeps wire free of extra wall-clock reads.
func newTraceID() uint64 {
	return uint64(obs.Now().UnixNano()) ^ traceSeq.Add(1)<<48
}

// ClusterTelemetry is the merged observability of one traced cluster run:
// the run's trace id plus one ProcessSnapshot per worker process, shipped
// over the control connection at drain. The coordinator's own snapshot is
// captured lazily at export time so it includes the full run span.
type ClusterTelemetry struct {
	// TraceID labels every process's spans for this run.
	TraceID uint64
	// Workers holds one snapshot per machine, in machine order (lane id =
	// machine + 1; lane 0 is the coordinator).
	Workers []obs.ProcessSnapshot
}

// Snapshots returns the coordinator's current snapshot (lane 0) followed by
// the worker snapshots.
func (ct *ClusterTelemetry) Snapshots() []obs.ProcessSnapshot {
	snaps := make([]obs.ProcessSnapshot, 0, len(ct.Workers)+1)
	snaps = append(snaps, obs.CaptureSnapshot("coordinator", 0))
	return append(snaps, ct.Workers...)
}

// BarrierSkew measures per-superstep barrier skew across the worker
// processes: for each superstep, the spread between the first and the last
// machine to enter it (from the wire.worker.superstep span entry times).
func (ct *ClusterTelemetry) BarrierSkew() []obs.SkewInstant {
	return obs.ComputeBarrierSkew(ct.Workers, "wire.worker.superstep")
}

// MergedMetrics aggregates the worker metric snapshots into one
// machine-labelled view (see obs.MergeSnapshots).
func (ct *ClusterTelemetry) MergedMetrics() obs.MetricsSnapshot {
	return obs.MergeSnapshots(ct.Workers)
}

// WriteChromeTrace writes the whole cluster run as one Chrome trace-event
// document: one process lane per OS process (coordinator plus every
// worker), span parentage preserved within each lane, and a barrier-skew
// instant per superstep.
func (ct *ClusterTelemetry) WriteChromeTrace(w io.Writer) error {
	return obs.WriteMergedChromeTrace(w, ct.Snapshots(), ct.BarrierSkew())
}
