package wire

import "time"

// setupTimeout bounds every blocking step of mesh construction (listen,
// dial, handshake): a peer that never shows up turns into a clear error
// instead of a hang.
const setupTimeout = 30 * time.Second

// wallDeadline returns an I/O deadline d from now on the wall clock.
//
// This is the module's one sanctioned wall-clock read outside internal/obs
// and cmd/benchsnap: net.Conn deadlines are compared against the kernel's
// clock by the runtime poller, so they must be wall-clock by construction —
// routing them through the injectable obs.Clock would make socket I/O hang
// forever under a test's fake clock. graphlint's GL002/GL007 clock-seam
// rules allowlist internal/wire for exactly this helper; keep every
// deadline computation in the package going through it so the exemption
// stays one line wide in practice.
func wallDeadline(d time.Duration) time.Time {
	return time.Now().Add(d)
}
