package wire_test

import (
	"testing"

	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/engine/transporttest"
	"github.com/graphpart/graphpart/internal/wire"
)

// newTCP builds a loopback mesh transport and ties its sockets to the test.
func newTCP(t *testing.T, p int) *wire.TCPTransport {
	t.Helper()
	tr, err := wire.NewTCPTransport(p)
	if err != nil {
		t.Fatalf("NewTCPTransport(%d): %v", p, err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestTCPTransportConformance runs the shared transport contract suite —
// the same one MemTransport passes — against the TCP mesh.
func TestTCPTransportConformance(t *testing.T) {
	transporttest.Run(t, func(t *testing.T, p int) engine.Transport {
		return newTCP(t, p)
	})
}

// TestTCPFramedByteAccounting checks the TCP transport's byte accounting is
// exactly the MemTransport payload accounting plus the frame header per
// message: identical message counts, bytes shifted by FrameHeaderSize each.
func TestTCPFramedByteAccounting(t *testing.T) {
	run := func(tr engine.Transport) engine.Totals {
		tr.Send(0, 1, &engine.GatherFlush{MasterLocal: 1, Slots: []int32{0, 2}, Contribs: []float64{1, 2}})
		tr.Send(1, 2, &engine.ApplyBroadcast{MirrorLocal: 3, Value: 0.5, Changed: true})
		tr.Send(2, 0, &engine.Activate{Local: 4})
		tr.Flip()
		for k := 0; k < 3; k++ {
			tr.Drain(k)
		}
		return tr.Totals()
	}
	mem := run(engine.NewMemTransport(3))
	tcp := run(newTCP(t, 3))
	if tcp.Messages() != mem.Messages() {
		t.Fatalf("message counts differ: tcp %d, mem %d", tcp.Messages(), mem.Messages())
	}
	wantBytes := mem.Bytes() + wire.FrameHeaderSize*mem.Messages()
	if tcp.Bytes() != wantBytes {
		t.Fatalf("tcp bytes = %d, want mem payload %d + %d per-message header = %d",
			tcp.Bytes(), mem.Bytes(), wire.FrameHeaderSize, wantBytes)
	}
	for name, pair := range map[string][2]int64{
		"gather":   {tcp.GatherBytes, mem.GatherBytes + wire.FrameHeaderSize*mem.GatherMessages},
		"apply":    {tcp.ApplyBytes, mem.ApplyBytes + wire.FrameHeaderSize*mem.ApplyMessages},
		"activate": {tcp.ActivateBytes, mem.ActivateBytes + wire.FrameHeaderSize*mem.ActivateMessages},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s bytes = %d, want %d", name, pair[0], pair[1])
		}
	}
}

// TestTCPControlBytes checks barrier/hello overhead is visible in
// ControlBytes and excluded from message totals.
func TestTCPControlBytes(t *testing.T) {
	tr := newTCP(t, 3)
	if tr.ControlBytes() == 0 {
		t.Fatal("mesh setup sent hello frames; ControlBytes() = 0")
	}
	before := tr.ControlBytes()
	tr.Flip() // 6 barrier frames on a 3-mesh
	grew := tr.ControlBytes() - before
	if grew != 6*(wire.FrameHeaderSize+4) {
		t.Fatalf("one Flip grew ControlBytes by %d, want %d", grew, 6*(wire.FrameHeaderSize+4))
	}
	if got := tr.Totals().Bytes(); got != 0 {
		t.Fatalf("control framing leaked into message totals: %d bytes", got)
	}
}

// TestTCPCloseIdempotent checks Close can be called repeatedly and that a
// closed transport's accounting remains readable.
func TestTCPCloseIdempotent(t *testing.T) {
	tr := newTCP(t, 2)
	tr.Send(0, 1, &engine.Activate{Local: 1})
	tr.Flip()
	if got := len(tr.Drain(1)); got != 1 {
		t.Fatalf("drained %d messages, want 1", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if got := tr.Totals().Messages(); got != 1 {
		t.Fatalf("totals after Close = %d messages, want 1", got)
	}
}

// TestTCPLocalMachines checks the hosted-machine queries on both mesh modes.
func TestTCPLocalMachines(t *testing.T) {
	tr := newTCP(t, 3)
	if got := tr.LocalMachines(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("LocalMachines() = %v, want [0 1 2]", got)
	}
	lone, addr, err := wire.ListenMesh(4, 2)
	if err != nil {
		t.Fatalf("ListenMesh: %v", err)
	}
	defer lone.Close()
	if addr == "" {
		t.Fatal("ListenMesh returned an empty address")
	}
	if got := lone.LocalMachines(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("LocalMachines() = %v, want [2]", got)
	}
}
