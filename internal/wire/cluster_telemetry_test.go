package wire_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	graphpart "github.com/graphpart/graphpart"
	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/obs"
	"github.com/graphpart/graphpart/internal/wire"
)

// TestClusterRecordOnlyWithTelemetry is the record-only contract on the
// cluster path: a full RunCluster PageRank at p in {2, 8} with
// GRAPHPART_TELEMETRY=1 (inherited by every worker process) must be
// bit-identical — values, superstep count, per-step totals and the traffic
// matrix — to the untraced run over the same partition.
func TestClusterRecordOnlyWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g := oracleGraph(19, 300, 900)
	n := g.NumVertices()
	parts := graphpart.AllPartitioners(42)
	for _, p := range []int{2, 8} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			a, err := parts["tlp"].Partition(g, p)
			if err != nil {
				t.Fatalf("partition: %v", err)
			}
			prog := func() engine.Program { return engine.NewPageRank(n, 0.85, 1e-8) }

			// Untraced baseline: telemetry off in the coordinator and no
			// collection requested of workers.
			wasEnabled := obs.Enabled()
			obs.Disable()
			t.Cleanup(func() {
				if wasEnabled {
					obs.Enable()
				}
			})
			baseVals, baseStats, err := wire.RunCluster(g, a, prog(), 20, nil)
			if err != nil {
				t.Fatalf("untraced RunCluster: %v", err)
			}

			// Traced run: the env var switches recording on in every worker
			// process at startup, and the enabled coordinator requests
			// drain-time snapshot uploads.
			t.Setenv(obs.EnvEnable, "1")
			obs.Enable()
			gotVals, gotStats, ct, err := wire.RunClusterTraced(g, a, prog(), 20, nil)
			if err != nil {
				t.Fatalf("traced RunClusterTraced: %v", err)
			}

			for v := range baseVals {
				if gotVals[v] != baseVals[v] {
					t.Fatalf("vertex %d: traced %v != untraced %v (telemetry influenced output)",
						v, gotVals[v], baseVals[v])
				}
			}
			if gotStats.Supersteps != baseStats.Supersteps {
				t.Fatalf("supersteps: traced %d, untraced %d", gotStats.Supersteps, baseStats.Supersteps)
			}
			if len(gotStats.PerStep) != len(baseStats.PerStep) {
				t.Fatalf("per-step lengths: traced %d, untraced %d",
					len(gotStats.PerStep), len(baseStats.PerStep))
			}
			for i := range baseStats.PerStep {
				if gotStats.PerStep[i] != baseStats.PerStep[i] {
					t.Fatalf("step %d totals: traced %+v, untraced %+v",
						i, gotStats.PerStep[i], baseStats.PerStep[i])
				}
			}
			for i := 0; i < p; i++ {
				for j := 0; j < p; j++ {
					if gotStats.Links.Messages[i][j] != baseStats.Links.Messages[i][j] ||
						gotStats.Links.Bytes[i][j] != baseStats.Links.Bytes[i][j] {
						t.Fatalf("link %d->%d traffic differs with telemetry on", i, j)
					}
				}
			}

			// The telemetry itself: one snapshot per worker, each with the
			// root span, every superstep, and every phase recorded.
			if ct == nil {
				t.Fatal("RunClusterTraced returned nil telemetry with telemetry enabled")
			}
			if len(ct.Workers) != p {
				t.Fatalf("got %d worker snapshots, want %d", len(ct.Workers), p)
			}
			for k, ws := range ct.Workers {
				if ws.Process != fmt.Sprintf("worker%d", k) || ws.PID != k+1 {
					t.Fatalf("worker %d snapshot identity: %s/pid %d", k, ws.Process, ws.PID)
				}
				names := map[string]int{}
				for _, rec := range ws.Records {
					names[rec.Name]++
				}
				if names["wire.worker"] != 1 {
					t.Fatalf("worker %d: %d wire.worker root spans", k, names["wire.worker"])
				}
				if names["wire.worker.superstep"] != gotStats.Supersteps {
					t.Fatalf("worker %d: %d superstep spans, ran %d supersteps",
						k, names["wire.worker.superstep"], gotStats.Supersteps)
				}
				for ph := 0; ph < engine.NumPhases; ph++ {
					if names[engine.PhaseName(ph)] < gotStats.Supersteps {
						t.Fatalf("worker %d: %d %s spans, want >= %d",
							k, names[engine.PhaseName(ph)], engine.PhaseName(ph), gotStats.Supersteps)
					}
				}
			}

			// Barrier skew: one instant per superstep (every machine enters
			// every superstep), and the merged trace must validate with all
			// worker lanes present.
			skews := ct.BarrierSkew()
			if len(skews) != gotStats.Supersteps {
				t.Fatalf("%d barrier-skew instants, want %d", len(skews), gotStats.Supersteps)
			}
			for _, sk := range skews {
				if sk.SkewNanos < 0 {
					t.Fatalf("negative skew at step %d: %+v", sk.Step, sk)
				}
			}
			var buf bytes.Buffer
			if err := ct.WriteChromeTrace(&buf); err != nil {
				t.Fatalf("WriteChromeTrace: %v", err)
			}
			if _, err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("merged trace invalid: %v", err)
			}
			out := buf.String()
			for k := 0; k < p; k++ {
				if !strings.Contains(out, fmt.Sprintf("\"worker%d\"", k)) {
					t.Fatalf("merged trace missing lane for worker%d", k)
				}
			}
			if !strings.Contains(out, "\"cluster.barrier_skew\"") {
				t.Fatal("merged trace has no barrier-skew instants")
			}

			// Merged metrics carry machine-labelled counters from every
			// worker plus the cross-process aggregate.
			merged := ct.MergedMetrics()
			var perWorker int64
			for k := 0; k < p; k++ {
				perWorker += merged.Counters[fmt.Sprintf("worker%d/engine.host.steps", k)]
			}
			if agg := merged.Counters["engine.host.steps"]; agg == 0 || agg != perWorker {
				t.Fatalf("aggregate engine.host.steps = %d, per-worker sum = %d", agg, perWorker)
			}
		})
	}
}

// TestClusterTracedDisabled checks RunClusterTraced degrades to RunCluster
// when telemetry is off: same results, nil telemetry.
func TestClusterTracedDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	if obs.Enabled() {
		t.Skip("telemetry forced on in this environment")
	}
	g := oracleGraph(7, 80, 160)
	a, err := graphpart.AllPartitioners(1)["tlp"].Partition(g, 2)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	vals, stats, ct, err := wire.RunClusterTraced(g, a, engine.NewPageRank(g.NumVertices(), 0.85, 1e-8), 10, nil)
	if err != nil {
		t.Fatalf("RunClusterTraced: %v", err)
	}
	if ct != nil {
		t.Fatal("telemetry returned with recording disabled")
	}
	if len(vals) != g.NumVertices() || stats.Supersteps < 1 {
		t.Fatalf("implausible result: %d values, %d supersteps", len(vals), stats.Supersteps)
	}
}
