package wire_test

import (
	"fmt"
	"os"
	"testing"

	graphpart "github.com/graphpart/graphpart"
	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/wire"
)

// TestMain lets this test binary double as the cluster worker: RunCluster
// re-executes os.Executable() (this binary) once per machine, and
// MaybeWorker diverts those children into the worker protocol before any
// test runs.
func TestMain(m *testing.M) {
	if wire.MaybeWorker() {
		return
	}
	os.Exit(m.Run())
}

// TestClusterOracleBitIdentical runs PageRank and connected components with
// one OS process per machine at p in {2, 8} and requires bit-identical
// values and the same superstep count as the sequential loop — process
// boundaries and real sockets change nothing observable about the
// computation.
func TestClusterOracleBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g := oracleGraph(19, 300, 900)
	n := g.NumVertices()
	programs := []struct {
		name string
		make func() engine.Program
		max  int
	}{
		{"pagerank", func() engine.Program { return engine.NewPageRank(n, 0.85, 1e-8) }, 25},
		{"components", func() engine.Program { return &engine.Components{} }, 40},
	}
	parts := graphpart.AllPartitioners(42)
	for _, pr := range programs {
		want, wantSteps, err := engine.RunSequential(g, pr.make(), pr.max)
		if err != nil {
			t.Fatalf("sequential %s: %v", pr.name, err)
		}
		for _, p := range []int{2, 8} {
			t.Run(fmt.Sprintf("%s/p%d", pr.name, p), func(t *testing.T) {
				a, err := parts["tlp"].Partition(g, p)
				if err != nil {
					t.Fatalf("partition: %v", err)
				}
				got, stats, err := wire.RunCluster(g, a, pr.make(), pr.max, nil)
				if err != nil {
					t.Fatalf("RunCluster: %v", err)
				}
				if stats.Supersteps != wantSteps {
					t.Fatalf("supersteps = %d, sequential ran %d", stats.Supersteps, wantSteps)
				}
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("vertex %d: cluster %v != sequential %v (not bit-identical)",
							v, got[v], want[v])
					}
				}
			})
		}
	}
}

// TestClusterStatsMatchInProcess compares a cluster run's stats against the
// same job over an in-process TCP mesh: the message schedule and framed byte
// counts must be identical — worker processes report exactly the traffic the
// single-process mesh carries.
func TestClusterStatsMatchInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g := oracleGraph(23, 200, 600)
	const p = 4
	a, err := graphpart.AllPartitioners(42)["tlp"].Partition(g, p)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	prog := func() engine.Program { return engine.NewPageRank(g.NumVertices(), 0.85, 1e-8) }

	e, err := engine.New(g, a)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	localVals, localStats, err := e.RunWith(prog(), 20, newTCP(t, p))
	if err != nil {
		t.Fatalf("RunWith over TCP: %v", err)
	}
	clusterVals, clusterStats, err := wire.RunCluster(g, a, prog(), 20, nil)
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	for v := range localVals {
		if localVals[v] != clusterVals[v] {
			t.Fatalf("vertex %d: in-process %v != cluster %v", v, localVals[v], clusterVals[v])
		}
	}
	if localStats.Supersteps != clusterStats.Supersteps {
		t.Fatalf("supersteps: in-process %d, cluster %d", localStats.Supersteps, clusterStats.Supersteps)
	}
	if localStats.Messages() != clusterStats.Messages() || localStats.Bytes() != clusterStats.Bytes() {
		t.Fatalf("traffic: in-process %d msgs/%d bytes, cluster %d msgs/%d bytes",
			localStats.Messages(), localStats.Bytes(), clusterStats.Messages(), clusterStats.Bytes())
	}
	if localStats.TotalReplicas != clusterStats.TotalReplicas || localStats.Masters != clusterStats.Masters {
		t.Fatalf("placement: in-process %d/%d, cluster %d/%d",
			localStats.TotalReplicas, localStats.Masters, clusterStats.TotalReplicas, clusterStats.Masters)
	}
	if len(localStats.PerStep) != len(clusterStats.PerStep) {
		t.Fatalf("per-step lengths: in-process %d, cluster %d", len(localStats.PerStep), len(clusterStats.PerStep))
	}
	for i := range localStats.PerStep {
		if localStats.PerStep[i] != clusterStats.PerStep[i] {
			t.Fatalf("step %d totals: in-process %+v, cluster %+v",
				i, localStats.PerStep[i], clusterStats.PerStep[i])
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if localStats.Links.Messages[i][j] != clusterStats.Links.Messages[i][j] ||
				localStats.Links.Bytes[i][j] != clusterStats.Links.Bytes[i][j] {
				t.Fatalf("link %d->%d: in-process %d msgs/%d bytes, cluster %d msgs/%d bytes", i, j,
					localStats.Links.Messages[i][j], localStats.Links.Bytes[i][j],
					clusterStats.Links.Messages[i][j], clusterStats.Links.Bytes[i][j])
			}
		}
	}
}

// TestClusterRejectsUnknownProgram checks the spec codec's closed-world
// rule: a program outside the registered set cannot cross process
// boundaries and fails fast, before any worker is spawned.
func TestClusterRejectsUnknownProgram(t *testing.T) {
	g := oracleGraph(3, 20, 20)
	a, err := graphpart.AllPartitioners(1)["random"].Partition(g, 2)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	_, _, err = wire.RunCluster(g, a, &engine.DegreeCount{}, 5, nil)
	if err == nil {
		t.Fatal("RunCluster accepted a program with no wire spec")
	}
}
