package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, math.MaxInt32} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared style sanity check over 8 buckets.
	r := New(99)
	const buckets = 8
	const draws = 80000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from expected %.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	// Property: shuffling preserves the multiset of elements.
	f := func(seed uint64, raw []int) bool {
		r := New(seed)
		orig := make(map[int]int)
		for _, v := range raw {
			orig[v]++
		}
		s := append([]int(nil), raw...)
		r.ShuffleInts(s)
		got := make(map[int]int)
		for _, v := range s {
			got[v]++
		}
		if len(orig) != len(got) {
			return false
		}
		for k, v := range orig {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	child := parent.Split()
	// Child determined by parent state at split time.
	parent2 := New(5)
	child2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	const p = 0.25
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // = 3
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean %v, want ~%v", p, mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(1)
	if got := r.Geometric(1); got != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestHash64Stable(t *testing.T) {
	// Regression pin: hashing partitioners depend on these exact values
	// staying stable across releases.
	if Hash64(0) != Hash64(0) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1) == Hash64(2) {
		t.Fatal("Hash64 collides trivially")
	}
}

func TestHash2OrderMatters(t *testing.T) {
	if Hash2(1, 2) == Hash2(2, 1) {
		t.Fatal("Hash2 should be order-sensitive")
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Hash64(0xdeadbeef)
	for bit := 0; bit < 64; bit++ {
		flipped := Hash64(0xdeadbeef ^ (1 << bit))
		diff := base ^ flipped
		ones := 0
		for d := diff; d != 0; d &= d - 1 {
			ones++
		}
		if ones < 10 || ones > 54 {
			t.Fatalf("bit %d: only %d output bits changed", bit, ones)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
