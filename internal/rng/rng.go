// Package rng provides a small, fast, deterministic random number generator
// used throughout the repository so that every experiment is reproducible
// from a single integer seed.
//
// The generator is xoshiro256** seeded through splitmix64, the combination
// recommended by the xoshiro authors. It is NOT cryptographically secure; it
// exists to make partitioning runs and synthetic datasets repeatable across
// machines and Go versions (math/rand's global source and shuffling order
// are not guaranteed stable across releases).
package rng

import "math/bits"

// RNG is a deterministic pseudo-random number generator.
//
// The zero value is not ready for use; construct one with New. RNG is not
// safe for concurrent use; give each goroutine its own instance (see Split).
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed. Two generators built
// from the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the four xoshiro words.
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent generator from r. The derived stream is a
// deterministic function of r's current state, and advancing the parent does
// not perturb the child (or vice versa).
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

// Uint64 returns the next 64 uniformly distributed random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0, mirroring math/rand's contract.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed integer in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's nearly-divisionless method.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits scaled by 2^-53.
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Perm returns a random permutation of [0, n), like math/rand.Perm.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place using the Fisher-Yates algorithm.
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap callback, like
// math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from the geometric distribution with success
// probability prob (the number of Bernoulli(prob) failures before the first
// success). prob must be in (0, 1].
func (r *RNG) Geometric(prob float64) int {
	if prob <= 0 || prob > 1 {
		panic("rng: Geometric called with prob outside (0, 1]")
	}
	if prob == 1 {
		return 0
	}
	n := 0
	for r.Float64() >= prob {
		n++
	}
	return n
}

// Hash64 mixes x through the splitmix64 finaliser. It is a stateless helper
// used by hashing partitioners (DBH, Random) so that their placement is a
// deterministic function of the input, independent of any RNG stream.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 mixes a pair of values into a single 64-bit hash. Order matters:
// Hash2(a,b) != Hash2(b,a) in general.
func Hash2(a, b uint64) uint64 {
	return Hash64(Hash64(a) ^ (b + 0x9e3779b97f4a7c15))
}
