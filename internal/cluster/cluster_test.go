package cluster

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/graphpart/graphpart/internal/core"
	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
	"github.com/graphpart/graphpart/internal/streaming"
)

func TestRunValidation(t *testing.T) {
	fn := func(int, int, []Message, func(int, []byte)) bool { return true }
	if _, err := Run(Config{Nodes: 0, MaxSupersteps: 1}, fn); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if _, err := Run(Config{Nodes: 1, MaxSupersteps: 0}, fn); err == nil {
		t.Fatal("0 supersteps accepted")
	}
	if _, err := Run(Config{Nodes: 1, MaxSupersteps: 1}, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestRunHaltsEarly(t *testing.T) {
	stats, err := Run(Config{Nodes: 4, MaxSupersteps: 100},
		func(node, step int, inbox []Message, send func(int, []byte)) bool {
			return step >= 2
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps > 4 {
		t.Fatalf("ran %d supersteps after unanimous halt", stats.Supersteps)
	}
}

func TestRunMessageDelivery(t *testing.T) {
	// Node 0 sends its step number to node 1; node 1 records receipt.
	var received []int
	_, err := Run(Config{Nodes: 2, MaxSupersteps: 4},
		func(node, step int, inbox []Message, send func(int, []byte)) bool {
			if node == 0 && step < 2 {
				buf := make([]byte, 4)
				binary.LittleEndian.PutUint32(buf, uint32(step))
				send(1, buf)
			}
			if node == 1 {
				for _, m := range inbox {
					if m.From != 0 {
						t.Errorf("unexpected sender %d", m.From)
					}
					received = append(received, int(binary.LittleEndian.Uint32(m.Payload)))
				}
			}
			return step >= 2
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(received) != 2 || received[0] != 0 || received[1] != 1 {
		t.Fatalf("received %v, want [0 1] (BSP next-step delivery)", received)
	}
}

func TestRunCountsNetworkVsLocal(t *testing.T) {
	stats, err := Run(Config{Nodes: 3, MaxSupersteps: 2},
		func(node, step int, inbox []Message, send func(int, []byte)) bool {
			if step == 0 {
				send(node, []byte{1, 2, 3})          // local, free
				send((node+1)%3, []byte{1, 2, 3, 4}) // network, 4 bytes
			}
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LocalMessages != 3 {
		t.Fatalf("local messages %d, want 3", stats.LocalMessages)
	}
	if stats.NetworkMessages != 3 || stats.NetworkBytes != 12 {
		t.Fatalf("network %d msgs / %d bytes, want 3 / 12", stats.NetworkMessages, stats.NetworkBytes)
	}
}

func TestRunMisaddressedSendSurvives(t *testing.T) {
	stats, err := Run(Config{Nodes: 2, MaxSupersteps: 2},
		func(node, step int, inbox []Message, send func(int, []byte)) bool {
			if step == 0 && node == 0 {
				send(99, []byte{1}) // out of range: redirected to self, nil payload
			}
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NetworkMessages != 0 {
		t.Fatalf("misaddressed send counted as network traffic: %+v", stats)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	buf := appendRecord(nil, 42, 3.14)
	buf = appendRecord(buf, 7, -1.5)
	var got []struct {
		v graph.Vertex
		x float64
	}
	if err := decodeRecords(buf, func(v graph.Vertex, x float64) {
		got = append(got, struct {
			v graph.Vertex
			x float64
		}{v, x})
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].v != 42 || got[0].x != 3.14 || got[1].v != 7 || got[1].x != -1.5 {
		t.Fatalf("round trip: %+v", got)
	}
	if err := decodeRecords([]byte{1, 2, 3}, func(graph.Vertex, float64) {}); err == nil {
		t.Fatal("malformed batch accepted")
	}
}

func testGraph(seed uint64, n, extra int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex(r.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

func TestDistributedPageRankMatchesReference(t *testing.T) {
	g := testGraph(1, 120, 360)
	for _, p := range []int{1, 4, 8} {
		a, err := core.MustNew(core.Options{Seed: 2}).Partition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		const iters = 15
		values, _, err := RunDistributedPageRank(g, a, 0.85, iters)
		if err != nil {
			t.Fatal(err)
		}
		ref := engine.ReferencePageRank(g, 0.85, iters)
		for v := 0; v < g.NumVertices(); v++ {
			if math.Abs(values[v]-ref[v]) > 1e-9 {
				t.Fatalf("p=%d vertex %d: cluster %v, reference %v", p, v, values[v], ref[v])
			}
		}
	}
}

func TestDistributedPageRankValidation(t *testing.T) {
	g := testGraph(3, 20, 20)
	a, err := core.MustNew(core.Options{Seed: 4}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunDistributedPageRank(nil, a, 0.85, 5); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, _, err := RunDistributedPageRank(g, a, 0.85, 0); err == nil {
		t.Fatal("0 iterations accepted")
	}
	incomplete := partition.MustNew(g.NumEdges(), 2)
	if _, _, err := RunDistributedPageRank(g, incomplete, 0.85, 5); err == nil {
		t.Fatal("incomplete assignment accepted")
	}
}

// TestNetworkBytesTrackRF: the paper's cost model in bytes — a lower-RF
// partitioning moves fewer bytes per iteration for the same computation.
func TestNetworkBytesTrackRF(t *testing.T) {
	g := gen.PlantedCommunities(gen.CommunityConfig{
		Vertices: 600, Communities: 12, TargetEdges: 6000, IntraFraction: 0.85,
	}, rng.New(5))
	p := 8
	aTLP, err := core.MustNew(core.Options{Seed: 6}).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	aRand, err := streaming.NewRandom(6).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	rfT, err := partition.ReplicationFactor(g, aTLP)
	if err != nil {
		t.Fatal(err)
	}
	rfR, err := partition.ReplicationFactor(g, aRand)
	if err != nil {
		t.Fatal(err)
	}
	if rfT >= rfR {
		t.Skip("TLP did not beat random on this seed")
	}
	const iters = 5
	vT, sT, err := RunDistributedPageRank(g, aTLP, 0.85, iters)
	if err != nil {
		t.Fatal(err)
	}
	vR, sR, err := RunDistributedPageRank(g, aRand, 0.85, iters)
	if err != nil {
		t.Fatal(err)
	}
	if sT.NetworkBytes >= sR.NetworkBytes {
		t.Fatalf("TLP bytes %d not below random %d (RF %.3f vs %.3f)",
			sT.NetworkBytes, sR.NetworkBytes, rfT, rfR)
	}
	// Same answer regardless of partitioning.
	for v := range vT {
		if math.Abs(vT[v]-vR[v]) > 1e-9 {
			t.Fatalf("vertex %d differs across partitionings", v)
		}
	}
}

// TestBytesMatchReplicaArithmetic: per iteration, traffic is bounded by
// 2 * recordSize * (replicas - masters) — gather partials up, values down.
func TestBytesMatchReplicaArithmetic(t *testing.T) {
	g := testGraph(7, 80, 240)
	a, err := core.MustNew(core.Options{Seed: 8}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := partition.Compute(g, a)
	if err != nil {
		t.Fatal(err)
	}
	activeVerts := 0
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.Vertex(v)) > 0 {
			activeVerts++
		}
	}
	mirrors := int64(m.TotalReplicas - activeVerts)
	const iters = 3
	_, stats, err := RunDistributedPageRank(g, a, 0.85, iters)
	if err != nil {
		t.Fatal(err)
	}
	bound := 2 * int64(recordSize) * mirrors * int64(iters)
	if stats.NetworkBytes > bound {
		t.Fatalf("network bytes %d exceed replica bound %d", stats.NetworkBytes, bound)
	}
	if mirrors > 0 && stats.NetworkBytes == 0 {
		t.Fatal("no traffic despite mirrors")
	}
}

func BenchmarkDistributedPageRank(b *testing.B) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 3000, TargetEdges: 15000, Exponent: 2.1}, rng.New(9))
	a, err := core.MustNew(core.Options{Seed: 10}).Partition(g, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RunDistributedPageRank(g, a, 0.85, 5); err != nil {
			b.Fatal(err)
		}
	}
}
