package cluster

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
)

// Distributed PageRank over an edge-partitioned graph, run on the BSP
// cluster with explicit wire encoding: each logical PageRank iteration is
// two supersteps — (1) every node computes partial rank sums for its
// replicas and mirrors ship partials to masters; (2) masters combine and
// apply, then broadcast the new values back to the mirrors. Every shipped
// record costs 12 bytes on the wire (uint32 vertex id + float64 value), so
// NetworkBytes per iteration ≈ 24 * (total replicas − masters): the
// replication factor, in bytes.

// record is the 12-byte wire format.
const recordSize = 4 + 8

func appendRecord(buf []byte, v graph.Vertex, value float64) []byte {
	var tmp [recordSize]byte
	binary.LittleEndian.PutUint32(tmp[0:4], uint32(v))
	binary.LittleEndian.PutUint64(tmp[4:12], math.Float64bits(value))
	return append(buf, tmp[:]...)
}

func decodeRecords(payload []byte, fn func(v graph.Vertex, value float64)) error {
	if len(payload)%recordSize != 0 {
		return fmt.Errorf("cluster: malformed record batch of %d bytes", len(payload))
	}
	for off := 0; off < len(payload); off += recordSize {
		v := graph.Vertex(binary.LittleEndian.Uint32(payload[off : off+4]))
		val := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+4 : off+12]))
		fn(v, val)
	}
	return nil
}

// nodeState is one cluster node's replica-local view.
type nodeState struct {
	verts   []graph.Vertex       // replicas hosted here
	idx     map[graph.Vertex]int // global id -> local index
	adj     [][]graph.Vertex     // local partition adjacency
	deg     []int                // global degree of each replica
	value   []float64            // current rank of each replica
	partial []float64            // gather accumulator
	master  []bool               // is this node the vertex's master?
	// mirrors, for masters only: other nodes hosting the vertex.
	mirrors [][]int
	// masterNode, for mirrors: where to ship partials.
	masterNode []int
}

// RunDistributedPageRank executes `iterations` PageRank iterations over the
// partitioned graph on a simulated BSP cluster with one node per partition,
// returning the final ranks (indexed by vertex), the BSP stats, and the
// per-iteration network byte cost.
func RunDistributedPageRank(g *graph.Graph, a *partition.Assignment, damping float64, iterations int) ([]float64, Stats, error) {
	if g == nil {
		return nil, Stats{}, fmt.Errorf("cluster: nil graph")
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{SkipCapacity: true}); err != nil {
		return nil, Stats{}, fmt.Errorf("cluster: %w", err)
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if iterations < 1 {
		return nil, Stats{}, fmt.Errorf("cluster: need at least one iteration")
	}
	p := a.P()
	n := g.NumVertices()
	nodes, masterOf := buildNodeStates(g, a)
	initial := 1.0 / float64(n)
	for _, st := range nodes {
		for i := range st.value {
			st.value[i] = initial
		}
	}
	stats, err := Run(Config{Nodes: p, MaxSupersteps: 2 * iterations}, func(node, step int, inbox []Message, send func(int, []byte)) bool {
		st := nodes[node]
		if step%2 == 0 {
			// Phase A: first apply the master broadcasts from the
			// previous phase B so mirror values are current, then
			// gather locally; mirrors ship partials to masters.
			for _, m := range inbox {
				if err := decodeRecords(m.Payload, func(v graph.Vertex, val float64) {
					st.value[st.idx[v]] = val
				}); err != nil {
					return true
				}
			}
			for i := range st.partial {
				st.partial[i] = 0
			}
			for i, v := range st.verts {
				_ = v
				for _, u := range st.adj[i] {
					ui := st.idx[u]
					if d := st.deg[ui]; d > 0 {
						st.partial[i] += st.value[ui] / float64(d)
					}
				}
			}
			batches := make(map[int][]byte)
			for i, v := range st.verts {
				if st.master[i] || st.partial[i] == 0 {
					continue
				}
				mn := st.masterNode[i]
				batches[mn] = appendRecord(batches[mn], v, st.partial[i])
			}
			for to, buf := range batches {
				send(to, buf)
			}
			return false
		}
		// Phase B: masters combine inbox partials with their own, apply,
		// broadcast new values to mirrors; mirrors apply broadcasts from
		// the previous phase-B (delivered now? no — broadcasts sent in
		// phase B arrive in the NEXT phase A; handle both kinds below).
		for _, m := range inbox {
			if err := decodeRecords(m.Payload, func(v graph.Vertex, val float64) {
				st.partial[st.idx[v]] += val
			}); err != nil {
				// Malformed traffic is a programming error surfaced
				// through a poisoned value rather than a lost error.
				return true
			}
		}
		batches := make(map[int][]byte)
		for i, v := range st.verts {
			if !st.master[i] {
				continue
			}
			newVal := (1-damping)/float64(n) + damping*st.partial[i]
			st.value[i] = newVal
			for _, mn := range st.mirrors[i] {
				batches[mn] = appendRecord(batches[mn], v, newVal)
			}
		}
		for to, buf := range batches {
			send(to, buf)
		}
		return false
	})
	if err != nil {
		return nil, stats, err
	}
	// One more delivery round happened inside Run per phase pair; mirrors
	// consumed master broadcasts at the next even step. After the loop,
	// collect final values from masters.
	result := make([]float64, n)
	for v := 0; v < n; v++ {
		result[v] = initial // isolated vertices keep the initial rank
	}
	for node, st := range nodes {
		_ = node
		for i, v := range st.verts {
			if st.master[i] {
				result[v] = st.value[i]
			}
		}
	}
	_ = masterOf
	return result, stats, nil
}

// buildNodeStates constructs the per-node replica-local views.
func buildNodeStates(g *graph.Graph, a *partition.Assignment) ([]*nodeState, []int32) {
	p := a.P()
	n := g.NumVertices()
	// Incidence counts pick masters (most incident edges, lowest id tie).
	inc := make([][]int32, p)
	for k := range inc {
		inc[k] = make([]int32, n)
	}
	for id, e := range g.Edges() {
		k, _ := a.PartitionOf(graph.EdgeID(id))
		inc[k][e.U]++
		inc[k][e.V]++
	}
	masterOf := make([]int32, n)
	for v := 0; v < n; v++ {
		best, bestInc := int32(-1), int32(0)
		for k := 0; k < p; k++ {
			if inc[k][v] > bestInc {
				best, bestInc = int32(k), inc[k][v]
			}
		}
		masterOf[v] = best
	}
	nodes := make([]*nodeState, p)
	for k := 0; k < p; k++ {
		nodes[k] = &nodeState{idx: make(map[graph.Vertex]int)}
	}
	addReplica := func(k int, v graph.Vertex) int {
		st := nodes[k]
		if i, ok := st.idx[v]; ok {
			return i
		}
		i := len(st.verts)
		st.idx[v] = i
		st.verts = append(st.verts, v)
		st.adj = append(st.adj, nil)
		st.deg = append(st.deg, g.Degree(v))
		st.master = append(st.master, int(masterOf[v]) == k)
		st.masterNode = append(st.masterNode, int(masterOf[v]))
		st.mirrors = append(st.mirrors, nil)
		return i
	}
	for id, e := range g.Edges() {
		k, _ := a.PartitionOf(graph.EdgeID(id))
		iu := addReplica(k, e.U)
		iv := addReplica(k, e.V)
		nodes[k].adj[iu] = append(nodes[k].adj[iu], e.V)
		nodes[k].adj[iv] = append(nodes[k].adj[iv], e.U)
	}
	// Masters learn their mirror locations.
	for k := 0; k < p; k++ {
		for _, v := range nodes[k].verts {
			mk := int(masterOf[v])
			if mk == k {
				continue
			}
			mi := nodes[mk].idx[v]
			nodes[mk].mirrors[mi] = append(nodes[mk].mirrors[mi], k)
		}
	}
	for k := 0; k < p; k++ {
		nodes[k].value = make([]float64, len(nodes[k].verts))
		nodes[k].partial = make([]float64, len(nodes[k].verts))
	}
	return nodes, masterOf
}
