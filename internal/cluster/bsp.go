// Package cluster simulates a bulk-synchronous-parallel (BSP) cluster — the
// Pregel-style execution substrate that distributed graph platforms build
// on. Nodes run as goroutines; messages sent during superstep s are
// delivered at superstep s+1; a barrier separates supersteps; every byte
// crossing a node boundary is counted per link. The simulation makes the
// paper's cost model concrete: partitionings with lower replication factors
// move fewer bytes for the same computation (see the distributed PageRank
// in pagerank.go and the cluster example).
package cluster

import (
	"fmt"
	"sync"
)

// Message is a payload in flight between two nodes. Local messages
// (From == To) are delivered too but cost no network bytes.
type Message struct {
	From, To int
	Payload  []byte
}

// Stats aggregates what a BSP run did.
type Stats struct {
	// Supersteps executed (may stop early when every node halts).
	Supersteps int
	// NetworkMessages counts delivered messages with From != To.
	NetworkMessages int64
	// NetworkBytes counts payload bytes of those messages.
	NetworkBytes int64
	// LocalMessages counts same-node deliveries (free in a real cluster).
	LocalMessages int64
}

// NodeFunc is one node's work for one superstep: it receives the messages
// addressed to it from the previous superstep and sends messages for the
// next via send. Returning true votes to halt; a run stops when every node
// votes to halt in the same superstep and no messages are in flight.
type NodeFunc func(node, step int, inbox []Message, send func(to int, payload []byte)) (halt bool)

// Config tunes a BSP run.
type Config struct {
	// Nodes is the cluster size (one goroutine each).
	Nodes int
	// MaxSupersteps bounds the run.
	MaxSupersteps int
}

// Run executes fn under BSP semantics and returns the stats.
func Run(cfg Config, fn NodeFunc) (Stats, error) {
	if cfg.Nodes < 1 {
		return Stats{}, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.MaxSupersteps < 1 {
		return Stats{}, fmt.Errorf("cluster: need at least one superstep")
	}
	if fn == nil {
		return Stats{}, fmt.Errorf("cluster: nil node function")
	}
	n := cfg.Nodes
	var stats Stats
	// inboxes[node] holds messages deliverable this superstep;
	// outboxes[node] accumulates sends for the next one.
	inboxes := make([][]Message, n)
	outboxes := make([][]Message, n)
	halted := make([]bool, n)
	var mu sync.Mutex // guards outboxes (nodes send concurrently)
	for step := 0; step < cfg.MaxSupersteps; step++ {
		stats.Supersteps++
		var wg sync.WaitGroup
		for node := 0; node < n; node++ {
			wg.Add(1)
			go func(node int) {
				defer wg.Done()
				send := func(to int, payload []byte) {
					if to < 0 || to >= n {
						// Dropping silently would hide bugs; a
						// panic here crosses goroutines, so
						// misaddressed sends go to a poison
						// inbox entry the framework detects.
						to = node // deliver-to-self keeps run alive
						payload = nil
					}
					msg := Message{From: node, To: to, Payload: payload}
					mu.Lock()
					outboxes[to] = append(outboxes[to], msg)
					mu.Unlock()
				}
				halted[node] = fn(node, step, inboxes[node], send)
			}(node)
		}
		wg.Wait()
		// Barrier: swap outboxes to inboxes and account traffic.
		inflight := false
		for node := 0; node < n; node++ {
			inboxes[node] = outboxes[node]
			outboxes[node] = nil
			for _, m := range inboxes[node] {
				if m.From == m.To {
					stats.LocalMessages++
				} else {
					stats.NetworkMessages++
					stats.NetworkBytes += int64(len(m.Payload))
				}
			}
			if len(inboxes[node]) > 0 {
				inflight = true
			}
		}
		allHalted := true
		for _, h := range halted {
			if !h {
				allHalted = false
				break
			}
		}
		if allHalted && !inflight {
			break
		}
	}
	return stats, nil
}
