package partition

import (
	"fmt"
	mathbits "math/bits"
	"sort"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/invariants"
)

// stateCheckInterval is the mutation-count sampling stride for the
// graphpart_invariants full-recomputation cross-check: every
// stateCheckInterval Move operations the whole incremental structure is
// compared against a from-scratch rebuild. Sampling keeps sanitizer builds
// usable — a per-move full check would turn O(1) moves into O(m).
const stateCheckInterval = 1 << 12

// partCount is one (partition, incident-edge count) entry of a sparse
// per-vertex replica set (p > 64).
type partCount struct {
	k int32
	c int32
}

// State is a mutable, incrementally maintained view over a complete edge
// assignment: per-partition loads (delegated to the Assignment), per-vertex
// replica sets, the boundary-edge index, and running replica totals, all
// updated in O(1) amortized time per Move/Swap (a move only walks a vertex's
// incident edges when its spanned status flips, i.e. when its replica count
// crosses the 1↔2 threshold).
//
// Replica sets are a presence bitset plus a dense n×p count matrix for
// p <= 64 (the paper's regime) and sorted (partition, count) slices above.
// An edge is in the boundary index iff at least one endpoint is spanned
// (replicated in >= 2 partitions) — exactly the edges whose reassignment can
// reduce the replication factor.
//
// The State owns all mutation: reassigning edges through the underlying
// Assignment directly desynchronises the incremental structures. Reads are
// safe from multiple goroutines as long as no Move/Swap is concurrent, which
// is what lets the refiner score candidates in parallel between sequential
// application folds. Built with -tags graphpart_invariants, every
// stateCheckInterval-th mutation cross-checks the whole structure against a
// full recomputation.
type State struct {
	g *graph.Graph
	a *Assignment
	p int

	// Dense representation (p <= 64): counts[int(v)*p+k] is the number of
	// v's edges in partition k, bits[v] the presence bitset.
	counts []int32
	bits   []uint64
	// Sparse representation (p > 64): per-vertex entries sorted by k.
	sparse [][]partCount

	replicas      []int32 // replicas[v] = number of partitions containing v
	totalReplicas int
	spannedCount  int

	// Boundary-edge index with O(1) swap-removal: boundary holds the member
	// edge ids in arbitrary order, bpos[e] is e's index or -1.
	boundary []graph.EdgeID
	bpos     []int32

	ops int64 // mutation counter driving the sampled invariant check
}

// NewState builds the incremental view of a complete assignment in O(n + m).
// Unassigned edges are an error; capacity is not checked (refinement must
// accept over-capacity inputs and only ever improve them).
func NewState(g *graph.Graph, a *Assignment) (*State, error) {
	if g == nil {
		return nil, fmt.Errorf("partition: nil graph")
	}
	if a == nil {
		return nil, fmt.Errorf("partition: nil assignment")
	}
	if a.NumEdges() != g.NumEdges() {
		return nil, fmt.Errorf("partition: assignment covers %d edges, graph has %d", a.NumEdges(), g.NumEdges())
	}
	n := g.NumVertices()
	p := a.P()
	s := &State{
		g:        g,
		a:        a,
		p:        p,
		replicas: make([]int32, n),
		bpos:     make([]int32, g.NumEdges()),
	}
	if p <= 64 {
		s.counts = make([]int32, n*p)
		s.bits = make([]uint64, n)
	} else {
		s.sparse = make([][]partCount, n)
	}
	for id, e := range g.Edges() {
		k, ok := a.PartitionOf(graph.EdgeID(id))
		if !ok {
			return nil, fmt.Errorf("partition: edge %d unassigned", id)
		}
		s.inc(e.U, k)
		if e.V != e.U {
			s.inc(e.V, k)
		}
	}
	for v := range s.replicas {
		r := s.countReplicas(graph.Vertex(v))
		s.replicas[v] = int32(r)
		s.totalReplicas += r
		if r >= 2 {
			s.spannedCount++
		}
	}
	for id, e := range g.Edges() {
		if s.replicas[e.U] >= 2 || s.replicas[e.V] >= 2 {
			s.bpos[id] = int32(len(s.boundary))
			s.boundary = append(s.boundary, graph.EdgeID(id))
		} else {
			s.bpos[id] = -1
		}
	}
	return s, nil
}

// Assignment returns the underlying assignment. Callers must not mutate it
// directly while the State is live; use Move/Swap.
func (s *State) Assignment() *Assignment { return s.a }

// P returns the partition count.
func (s *State) P() int { return s.p }

// Replicas returns the number of partitions vertex v currently appears in.
func (s *State) Replicas(v graph.Vertex) int { return int(s.replicas[v]) }

// Has reports whether vertex v has at least one edge in partition k.
func (s *State) Has(v graph.Vertex, k int) bool { return s.Count(v, k) > 0 }

// Count returns the number of v's edges currently in partition k.
func (s *State) Count(v graph.Vertex, k int) int {
	if s.counts != nil {
		return int(s.counts[int(v)*s.p+k])
	}
	row := s.sparse[v]
	i := sort.Search(len(row), func(i int) bool { return row[i].k >= int32(k) })
	if i < len(row) && row[i].k == int32(k) {
		return int(row[i].c)
	}
	return 0
}

// Partitions appends the ids of the partitions containing v to buf in
// ascending order and returns the extended slice.
func (s *State) Partitions(v graph.Vertex, buf []int) []int {
	if s.bits != nil {
		for b := s.bits[v]; b != 0; b &= b - 1 {
			buf = append(buf, mathbits.TrailingZeros64(b))
		}
		return buf
	}
	for _, pc := range s.sparse[v] {
		buf = append(buf, int(pc.k))
	}
	return buf
}

// TotalReplicas returns sum_k |V(P_k)|, maintained incrementally.
func (s *State) TotalReplicas() int { return s.totalReplicas }

// SpannedVertices returns the number of vertices replicated in >= 2
// partitions.
func (s *State) SpannedVertices() int { return s.spannedCount }

// RF returns the replication factor sum_k |V(P_k)| / |V| in O(1).
func (s *State) RF() float64 {
	if n := s.g.NumVertices(); n > 0 {
		return float64(s.totalReplicas) / float64(n)
	}
	return 0
}

// Balance returns max_k |E(P_k)| / (m/p) in O(p).
func (s *State) Balance() float64 {
	m := s.g.NumEdges()
	if m == 0 {
		return 0
	}
	return float64(s.a.MaxLoad()) / (float64(m) / float64(s.p))
}

// NumBoundary returns the current boundary-edge count.
func (s *State) NumBoundary() int { return len(s.boundary) }

// IsBoundary reports whether edge e has a spanned endpoint.
func (s *State) IsBoundary(e graph.EdgeID) bool { return s.bpos[e] != -1 }

// AppendBoundary appends the boundary edges to buf in ascending edge-id
// order (the internal index is swap-mutated, so it is sorted here: every
// deterministic consumer needs this order anyway) and returns the slice.
func (s *State) AppendBoundary(buf []graph.EdgeID) []graph.EdgeID {
	start := len(buf)
	buf = append(buf, s.boundary...)
	out := buf[start:]
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return buf
}

// MoveDelta returns the change in TotalReplicas that Move(e, to) would
// cause, without mutating anything. Negative is an improvement. The two
// endpoint contributions are independent because a (simple-graph) edge has
// distinct endpoints.
func (s *State) MoveDelta(e graph.EdgeID, to int) int {
	from, ok := s.a.PartitionOf(e)
	if !ok || from == to {
		return 0
	}
	ed := s.g.Edge(e)
	d := s.endpointDelta(ed.U, from, to)
	if ed.V != ed.U {
		d += s.endpointDelta(ed.V, from, to)
	}
	return d
}

func (s *State) endpointDelta(v graph.Vertex, from, to int) int {
	d := 0
	if s.Count(v, from) == 1 {
		d--
	}
	if s.Count(v, to) == 0 {
		d++
	}
	return d
}

// Move reassigns edge e to partition `to`, updating loads, replica sets,
// totals and the boundary index, and returns the realized TotalReplicas
// delta (negative = replicas removed). Moving an edge to its own partition
// is a no-op. Moves are exactly reversible: Move(e, from) undoes Move(e, to)
// and returns the negated delta.
//
//graphpart:hotpath test=TestHotPathAllocs_MoveSwap
func (s *State) Move(e graph.EdgeID, to int) int {
	from, ok := s.a.PartitionOf(e)
	if !ok {
		panic(fmt.Sprintf("partition: Move on unassigned edge %d", e))
	}
	if from == to {
		return 0
	}
	s.a.Assign(e, to)
	ed := s.g.Edge(e)
	d := s.moveEndpoint(ed.U, from, to)
	if ed.V != ed.U {
		d += s.moveEndpoint(ed.V, from, to)
	}
	s.ops++
	if invariants.Enabled && s.ops%stateCheckInterval == 0 {
		s.AssertConsistent()
	}
	return d
}

// Swap exchanges the partitions of two edges (e1 to e2's partition and vice
// versa), leaving every load unchanged, and returns the realized
// TotalReplicas delta. Swapping edges of the same partition is a no-op.
//
//graphpart:hotpath test=TestHotPathAllocs_MoveSwap
func (s *State) Swap(e1, e2 graph.EdgeID) int {
	k1, ok1 := s.a.PartitionOf(e1)
	k2, ok2 := s.a.PartitionOf(e2)
	if !ok1 || !ok2 {
		panic(fmt.Sprintf("partition: Swap on unassigned edge (%d,%d)", e1, e2))
	}
	if k1 == k2 || e1 == e2 {
		return 0
	}
	return s.Move(e1, k2) + s.Move(e2, k1)
}

// moveEndpoint applies one endpoint's count transition for a from→to edge
// move, maintaining the replica count, totals and — when the vertex's
// spanned status flips — the boundary index.
func (s *State) moveEndpoint(v graph.Vertex, from, to int) int {
	old := s.replicas[v]
	d := 0
	if s.dec(v, from) {
		d--
	}
	if s.inc(v, to) {
		d++
	}
	if d == 0 {
		return 0
	}
	now := old + int32(d)
	s.replicas[v] = now
	s.totalReplicas += d
	if (old >= 2) != (now >= 2) {
		s.flipSpanned(v, now >= 2)
	}
	return d
}

// flipSpanned reconciles the boundary index after vertex v's spanned status
// changed: newly spanned adds all incident edges; newly unspanned removes
// the incident edges whose other endpoint is not spanned either. O(deg(v)).
func (s *State) flipSpanned(v graph.Vertex, spanned bool) {
	eids := s.g.IncidentEdges(v)
	if spanned {
		s.spannedCount++
		for _, e := range eids {
			if s.bpos[e] == -1 {
				s.bpos[e] = int32(len(s.boundary))
				s.boundary = append(s.boundary, e)
			}
		}
		return
	}
	s.spannedCount--
	nbrs := s.g.Neighbors(v)
	for i, e := range eids {
		if s.replicas[nbrs[i]] >= 2 {
			continue
		}
		// O(1) swap-removal mirroring the alive-adjacency idiom.
		pos := s.bpos[e]
		last := s.boundary[len(s.boundary)-1]
		s.boundary[pos] = last
		s.bpos[last] = pos
		s.boundary = s.boundary[:len(s.boundary)-1]
		s.bpos[e] = -1
	}
}

// inc adds one edge of v to partition k, reporting whether v newly entered k.
func (s *State) inc(v graph.Vertex, k int) bool {
	if s.counts != nil {
		i := int(v)*s.p + k
		s.counts[i]++
		if s.counts[i] == 1 {
			s.bits[v] |= uint64(1) << uint(k)
			return true
		}
		return false
	}
	row := s.sparse[v]
	i := sort.Search(len(row), func(i int) bool { return row[i].k >= int32(k) })
	if i < len(row) && row[i].k == int32(k) {
		row[i].c++
		return false
	}
	//lint:ignore GL010 amortized row growth on the sparse p>64 path only; the p<=64 hot path above is alloc-free
	row = append(row, partCount{})
	copy(row[i+1:], row[i:])
	row[i] = partCount{k: int32(k), c: 1}
	s.sparse[v] = row
	return true
}

// dec removes one edge of v from partition k, reporting whether v left k.
func (s *State) dec(v graph.Vertex, k int) bool {
	if s.counts != nil {
		i := int(v)*s.p + k
		s.counts[i]--
		if invariants.Enabled {
			invariants.Assertf(s.counts[i] >= 0,
				"vertex %d count in partition %d went negative", v, k)
		}
		if s.counts[i] == 0 {
			s.bits[v] &^= uint64(1) << uint(k)
			return true
		}
		return false
	}
	row := s.sparse[v]
	i := sort.Search(len(row), func(i int) bool { return row[i].k >= int32(k) })
	if invariants.Enabled {
		invariants.Assertf(i < len(row) && row[i].k == int32(k),
			"vertex %d has no edges in partition %d to remove", v, k)
	}
	row[i].c--
	if row[i].c > 0 {
		return false
	}
	copy(row[i:], row[i+1:])
	s.sparse[v] = row[:len(row)-1]
	return true
}

// countReplicas derives v's replica count from the representation (build
// time only; afterwards replicas[v] is maintained incrementally).
func (s *State) countReplicas(v graph.Vertex) int {
	if s.bits != nil {
		return mathbits.OnesCount64(s.bits[v])
	}
	return len(s.sparse[v])
}

// AssertConsistent cross-checks every incremental structure — per-vertex
// replica counts, totals, spanned count, load accounting and boundary
// membership — against a full recomputation from the assignment. No-op
// unless built with -tags graphpart_invariants.
func (s *State) AssertConsistent() {
	if !invariants.Enabled {
		return
	}
	assertLoadsConsistent(s.a)
	fresh := ReplicaCount(s.g, s.a)
	total, spanned := 0, 0
	for v, want := range fresh {
		invariants.Assertf(int(s.replicas[v]) == want,
			"vertex %d: incremental replica count %d, recomputed %d", v, s.replicas[v], want)
		total += want
		if want >= 2 {
			spanned++
		}
	}
	invariants.Assertf(total == s.totalReplicas,
		"total replicas: incremental %d, recomputed %d", s.totalReplicas, total)
	invariants.Assertf(spanned == s.spannedCount,
		"spanned vertices: incremental %d, recomputed %d", s.spannedCount, spanned)
	nb := 0
	for id, e := range s.g.Edges() {
		want := fresh[e.U] >= 2 || fresh[e.V] >= 2
		got := s.bpos[id] != -1
		invariants.Assertf(want == got,
			"edge %d: boundary-index membership %v, recomputed %v", id, got, want)
		if want {
			nb++
		}
		if got {
			pos := s.bpos[id]
			invariants.Assertf(int(pos) < len(s.boundary) && s.boundary[pos] == graph.EdgeID(id),
				"edge %d: bpos %d does not point back at the edge", id, pos)
		}
	}
	invariants.Assertf(nb == len(s.boundary),
		"boundary index holds %d edges, recomputation found %d", len(s.boundary), nb)
	for v := range fresh {
		invariants.Assertf(s.countReplicas(graph.Vertex(v)) == fresh[v],
			"vertex %d: representation replica count %d, recomputed %d",
			v, s.countReplicas(graph.Vertex(v)), fresh[v])
	}
}

// AssignLeftovers places every unassigned edge in the least-loaded partition
// (ties to the smallest partition id, matching a sequential argmin scan) and
// returns the number of edges placed. A binary min-heap over (load, id)
// makes it O(m log p); TLP's leftover sweep and any future incremental
// maintenance share this one implementation.
func AssignLeftovers(g *graph.Graph, a *Assignment) int {
	p := a.P()
	load := make([]int, p)
	ids := make([]int, p) // heap of partition ids, min (load, id) at ids[0]
	for k := 0; k < p; k++ {
		load[k], ids[k] = a.Load(k), k
	}
	less := func(x, y int) bool {
		if load[x] != load[y] {
			return load[x] < load[y]
		}
		return x < y
	}
	siftDown := func(i int) {
		for {
			m := i
			if l := 2*i + 1; l < p && less(ids[l], ids[m]) {
				m = l
			}
			if r := 2*i + 2; r < p && less(ids[r], ids[m]) {
				m = r
			}
			if m == i {
				return
			}
			ids[i], ids[m] = ids[m], ids[i]
			i = m
		}
	}
	for i := p/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	swept := 0
	for id := 0; id < g.NumEdges(); id++ {
		eid := graph.EdgeID(id)
		if a.IsAssigned(eid) {
			continue
		}
		k := ids[0]
		a.Assign(eid, k)
		load[k]++
		siftDown(0)
		swept++
	}
	return swept
}
