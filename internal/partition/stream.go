package partition

import (
	"fmt"
	mathbits "math/bits"

	"github.com/graphpart/graphpart/internal/source"
)

// StreamPartitioner is the contract for partitioners that consume an edge
// stream instead of a materialized graph. Implementations promise
// O(p + maintained-state) memory beyond what the source itself holds —
// typically O(n) vertex state (replica sets, degree sketches) but never
// O(|E|) edge storage besides the returned Assignment.
//
// A partitioner may implement both interfaces; the graph-based Partition is
// then equivalent to PartitionStream over a GraphSource in the
// partitioner's configured order.
type StreamPartitioner interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// PartitionStream assigns every edge of src to one of p partitions.
	// The source may be consumed multiple times (Reset) by multi-pass
	// algorithms.
	PartitionStream(src source.EdgeSource, p int) (*Assignment, error)
}

// StreamMetrics computes the paper's quality metrics from an EdgeSource
// and a complete assignment, without a CSR. It matches Compute exactly for
// any source that enumerates the edges of a simple graph once per pass
// (vertex degrees are counted from the stream, which for a simple graph
// equals the CSR degree). Requires p <= 64, which covers the paper's
// evaluation range; larger p needs the graph-based path.
func StreamMetrics(src source.EdgeSource, a *Assignment) (Metrics, error) {
	p := a.P()
	if p > 64 {
		return Metrics{}, fmt.Errorf("partition: StreamMetrics requires p <= 64, got %d", p)
	}
	if a.NumEdges() != src.NumEdges() {
		return Metrics{}, fmt.Errorf("partition: assignment covers %d edges, source has %d", a.NumEdges(), src.NumEdges())
	}
	if err := src.Reset(); err != nil {
		return Metrics{}, fmt.Errorf("partition: resetting source for metrics: %w", err)
	}
	n := src.NumVertices()
	seen := make([]uint64, n)
	deg := make([]int64, n)
	internal := make([]int64, p)
	for {
		e, ok, err := src.Next()
		if err != nil {
			return Metrics{}, fmt.Errorf("partition: streaming metrics: %w", err)
		}
		if !ok {
			break
		}
		k, assigned := a.PartitionOf(e.ID)
		if !assigned {
			return Metrics{}, fmt.Errorf("partition: edge %d unassigned", e.ID)
		}
		bit := uint64(1) << uint(k)
		seen[e.U] |= bit
		seen[e.V] |= bit
		deg[e.U]++
		deg[e.V]++
		internal[k]++
	}
	m := Metrics{P: p, MinLoad: a.MinLoad(), MaxLoad: a.MaxLoad()}
	replicas, spanned := replicaTotals(seen)
	m.TotalReplicas, m.SpannedVertices = replicas, spanned
	if n > 0 {
		m.ReplicationFactor = float64(m.TotalReplicas) / float64(n)
	}
	if src.NumEdges() > 0 {
		avg := float64(src.NumEdges()) / float64(p)
		m.Balance = float64(m.MaxLoad) / avg
	}
	degSum := make([]int64, p)
	for v := 0; v < n; v++ {
		bits := seen[v]
		for ; bits != 0; bits &= bits - 1 {
			degSum[mathbits.TrailingZeros64(bits)] += deg[v]
		}
	}
	m.Modularity = modularityFromCounts(internal, degSum)
	return m, nil
}

// StreamReplicationFactor computes only RF from a stream; cheaper than
// StreamMetrics when the other metrics are not needed.
func StreamReplicationFactor(src source.EdgeSource, a *Assignment) (float64, error) {
	m, err := StreamMetrics(src, a)
	if err != nil {
		return 0, err
	}
	return m.ReplicationFactor, nil
}
