package partition

import (
	"fmt"
	"math"

	"github.com/graphpart/graphpart/internal/graph"
)

// Metrics summarises the quality of a finished edge partitioning using the
// paper's measurements.
type Metrics struct {
	// P is the partition count.
	P int
	// ReplicationFactor is RF = sum_k |V(P_k)| / |V| (Definition 4), the
	// paper's headline quality metric; 1.0 means no vertex is spanned.
	ReplicationFactor float64
	// Balance is max_k |E(P_k)| / (m/p); 1.0 is perfectly balanced.
	Balance float64
	// MaxLoad / MinLoad are the extreme partition edge counts.
	MaxLoad, MinLoad int
	// SpannedVertices is the number of vertices replicated in >=2
	// partitions (mirrors exist for these).
	SpannedVertices int
	// TotalReplicas is sum_k |V(P_k)| (masters + mirrors).
	TotalReplicas int
	// Modularity holds the paper's per-partition modularity
	// M(P_k) = |E(P_k)| / |E_out(P_k)| (Definition 8), computed on the
	// final partitioning with E_out measured as boundary incidences (see
	// ModularityOf). Infinite modularity (no external edges) is reported
	// as math.Inf(1).
	Modularity []float64
}

// String renders the headline numbers on one line.
func (m Metrics) String() string {
	return fmt.Sprintf("p=%d RF=%.3f balance=%.3f load=[%d,%d] spanned=%d",
		m.P, m.ReplicationFactor, m.Balance, m.MinLoad, m.MaxLoad, m.SpannedVertices)
}

// Compute calculates Metrics for a complete assignment of g. Unassigned
// edges are an error — call Validate first when in doubt.
func Compute(g *graph.Graph, a *Assignment) (Metrics, error) {
	if a.NumEdges() != g.NumEdges() {
		return Metrics{}, fmt.Errorf("partition: assignment covers %d edges, graph has %d", a.NumEdges(), g.NumEdges())
	}
	p := a.P()
	m := Metrics{P: p, MinLoad: a.MinLoad(), MaxLoad: a.MaxLoad()}
	replicaSets := VertexSets(g, a)
	n := g.NumVertices()
	// presentIn[v] counts partitions containing v.
	presentIn := make([]int32, n)
	for _, set := range replicaSets {
		for _, v := range set {
			presentIn[v]++
		}
		m.TotalReplicas += len(set)
	}
	activeVertices := 0
	for _, c := range presentIn {
		if c >= 1 {
			activeVertices++
		}
		if c >= 2 {
			m.SpannedVertices++
		}
	}
	if n > 0 {
		// The paper divides by |V|; isolated vertices (degree 0) never
		// appear in any partition and still count in the denominator.
		m.ReplicationFactor = float64(m.TotalReplicas) / float64(n)
	}
	if g.NumEdges() > 0 {
		avg := float64(g.NumEdges()) / float64(p)
		m.Balance = float64(m.MaxLoad) / avg
	}
	mod, err := ModularityAll(g, a)
	if err != nil {
		return Metrics{}, err
	}
	m.Modularity = mod
	return m, nil
}

// ReplicationFactor computes only RF; cheaper than Compute when the other
// metrics are not needed.
func ReplicationFactor(g *graph.Graph, a *Assignment) (float64, error) {
	if a.NumEdges() != g.NumEdges() {
		return 0, fmt.Errorf("partition: assignment covers %d edges, graph has %d", a.NumEdges(), g.NumEdges())
	}
	n := g.NumVertices()
	if n == 0 {
		return 0, nil
	}
	// seen[v] is a bitset over partitions for small p, else a map; p is
	// small (10-20) throughout the paper, so a uint64 bitset suffices and
	// keeps this O(n + m).
	if a.P() <= 64 {
		seen := make([]uint64, n)
		for id, e := range g.Edges() {
			k, ok := a.PartitionOf(graph.EdgeID(id))
			if !ok {
				return 0, fmt.Errorf("partition: edge %d unassigned", id)
			}
			bit := uint64(1) << uint(k)
			seen[e.U] |= bit
			seen[e.V] |= bit
		}
		total := 0
		for _, bits := range seen {
			total += popcount(bits)
		}
		return float64(total) / float64(n), nil
	}
	sets := VertexSets(g, a)
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	return float64(total) / float64(n), nil
}

func popcount(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// VertexSets returns V(P_k) for every partition: the vertices incident to at
// least one edge assigned to k. Unassigned edges are skipped.
func VertexSets(g *graph.Graph, a *Assignment) [][]graph.Vertex {
	p := a.P()
	// mark[v] = last partition that recorded v, to dedupe per partition.
	sets := make([][]graph.Vertex, p)
	mark := make([][]bool, p)
	for k := range mark {
		mark[k] = make([]bool, g.NumVertices())
	}
	for id, e := range g.Edges() {
		k, ok := a.PartitionOf(graph.EdgeID(id))
		if !ok {
			continue
		}
		if !mark[k][e.U] {
			mark[k][e.U] = true
			sets[k] = append(sets[k], e.U)
		}
		if !mark[k][e.V] {
			mark[k][e.V] = true
			sets[k] = append(sets[k], e.V)
		}
	}
	return sets
}

// ModularityAll returns M(P_k) for every partition of a complete assignment.
//
// Definition 8 defines M(P_k) = |E(P_k)| / |E_out(P_k)|. On a finished
// partitioning we measure |E_out(P_k)| as the number of boundary incidences:
// sum over v in V(P_k) of the edges incident to v that are NOT in P_k. This
// is the quantity that makes the averaging identity of Claim 1
// (sum deg(v in P_k) = 2|E(P_k)| + |E_out(P_k)|) exact. Partitions with no
// external incidences get M = +Inf; empty partitions get M = 0.
func ModularityAll(g *graph.Graph, a *Assignment) ([]float64, error) {
	p := a.P()
	internal := make([]int64, p)
	degSum := make([]int64, p)
	sets := VertexSets(g, a)
	for id := range g.Edges() {
		k, ok := a.PartitionOf(graph.EdgeID(id))
		if !ok {
			return nil, fmt.Errorf("partition: edge %d unassigned", id)
		}
		internal[k]++
	}
	for k, set := range sets {
		for _, v := range set {
			degSum[k] += int64(g.Degree(v))
		}
	}
	out := make([]float64, p)
	for k := 0; k < p; k++ {
		ext := degSum[k] - 2*internal[k]
		switch {
		case internal[k] == 0:
			out[k] = 0
		case ext == 0:
			out[k] = math.Inf(1)
		default:
			out[k] = float64(internal[k]) / float64(ext)
		}
	}
	return out, nil
}

// ModularityOf returns M(P_k) for a single partition.
func ModularityOf(g *graph.Graph, a *Assignment, k int) (float64, error) {
	all, err := ModularityAll(g, a)
	if err != nil {
		return 0, err
	}
	if k < 0 || k >= len(all) {
		return 0, fmt.Errorf("partition: partition %d out of range", k)
	}
	return all[k], nil
}

// ReplicaCount returns, for every vertex, the number of partitions whose
// edge set touches it (0 for isolated vertices).
func ReplicaCount(g *graph.Graph, a *Assignment) []int {
	n := g.NumVertices()
	counts := make([]int, n)
	if a.P() <= 64 {
		seen := make([]uint64, n)
		for id, e := range g.Edges() {
			if k, ok := a.PartitionOf(graph.EdgeID(id)); ok {
				bit := uint64(1) << uint(k)
				seen[e.U] |= bit
				seen[e.V] |= bit
			}
		}
		for v, bits := range seen {
			counts[v] = popcount(bits)
		}
		return counts
	}
	for k, set := range VertexSets(g, a) {
		_ = k
		for _, v := range set {
			counts[v]++
		}
	}
	return counts
}
