package partition

import (
	"fmt"
	"math"
	mathbits "math/bits"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/parallel"
)

// parallelMetricsThreshold is the edge count below which metric scans stay
// sequential; the per-worker shard allocations outweigh the scan otherwise.
const parallelMetricsThreshold = 1 << 15

// Metrics summarises the quality of a finished edge partitioning using the
// paper's measurements.
type Metrics struct {
	// P is the partition count.
	P int
	// ReplicationFactor is RF = sum_k |V(P_k)| / |V| (Definition 4), the
	// paper's headline quality metric; 1.0 means no vertex is spanned.
	ReplicationFactor float64
	// Balance is max_k |E(P_k)| / (m/p); 1.0 is perfectly balanced.
	Balance float64
	// MaxLoad / MinLoad are the extreme partition edge counts.
	MaxLoad, MinLoad int
	// SpannedVertices is the number of vertices replicated in >=2
	// partitions (mirrors exist for these).
	SpannedVertices int
	// TotalReplicas is sum_k |V(P_k)| (masters + mirrors).
	TotalReplicas int
	// Modularity holds the paper's per-partition modularity
	// M(P_k) = |E(P_k)| / |E_out(P_k)| (Definition 8), computed on the
	// final partitioning with E_out measured as boundary incidences (see
	// ModularityOf). Infinite modularity (no external edges) is reported
	// as math.Inf(1).
	Modularity []float64
}

// String renders the headline numbers on one line.
func (m Metrics) String() string {
	return fmt.Sprintf("p=%d RF=%.3f balance=%.3f load=[%d,%d] spanned=%d",
		m.P, m.ReplicationFactor, m.Balance, m.MinLoad, m.MaxLoad, m.SpannedVertices)
}

// Compute calculates Metrics for a complete assignment of g. Unassigned
// edges are an error — call Validate first when in doubt.
//
// For the paper's partition counts (p <= 64) the whole computation is a
// bitset scan sharded over the worker pool; metrics are recomputed for every
// harness grid cell, which makes this the dominant harness overhead for the
// streaming baselines. Results are identical to the sequential scan because
// shards merge with commutative OR/sum reductions.
func Compute(g *graph.Graph, a *Assignment) (Metrics, error) {
	if a.NumEdges() != g.NumEdges() {
		return Metrics{}, fmt.Errorf("partition: assignment covers %d edges, graph has %d", a.NumEdges(), g.NumEdges())
	}
	p := a.P()
	m := Metrics{P: p, MinLoad: a.MinLoad(), MaxLoad: a.MaxLoad()}
	n := g.NumVertices()
	if p <= 64 {
		seen, internal, err := presenceScan(g, a)
		if err != nil {
			return Metrics{}, err
		}
		replicas, spanned := replicaTotals(seen)
		m.TotalReplicas, m.SpannedVertices = replicas, spanned
		assertReplicaConsistent(g, a, replicas)
		if n > 0 {
			// The paper divides by |V|; isolated vertices (degree 0)
			// never appear in any partition and still count in the
			// denominator.
			m.ReplicationFactor = float64(m.TotalReplicas) / float64(n)
		}
		if g.NumEdges() > 0 {
			avg := float64(g.NumEdges()) / float64(p)
			m.Balance = float64(m.MaxLoad) / avg
		}
		m.Modularity = modularityFromCounts(internal, degreeSums(g, seen, p))
		return m, nil
	}
	replicaSets := VertexSets(g, a)
	// presentIn[v] counts partitions containing v.
	presentIn := make([]int32, n)
	for _, set := range replicaSets {
		for _, v := range set {
			presentIn[v]++
		}
		m.TotalReplicas += len(set)
	}
	for _, c := range presentIn {
		if c >= 2 {
			m.SpannedVertices++
		}
	}
	if n > 0 {
		m.ReplicationFactor = float64(m.TotalReplicas) / float64(n)
	}
	if g.NumEdges() > 0 {
		avg := float64(g.NumEdges()) / float64(p)
		m.Balance = float64(m.MaxLoad) / avg
	}
	mod, err := ModularityAll(g, a)
	if err != nil {
		return Metrics{}, err
	}
	m.Modularity = mod
	return m, nil
}

// presenceScan computes, for every vertex, the bitset of partitions whose
// edge set touches it, together with per-partition internal edge counts.
// Requires p <= 64; unassigned edges are an error. Large graphs shard the
// edge scan over the worker pool with per-worker bitset slices merged by OR,
// so the result is independent of the worker count, and the reported
// unassigned edge (if any) is the lowest-numbered one, as in a sequential
// scan.
func presenceScan(g *graph.Graph, a *Assignment) ([]uint64, []int64, error) {
	n := g.NumVertices()
	p := a.P()
	edges := g.Edges()
	workers := parallel.Workers(0)
	seen := make([]uint64, n)
	internal := make([]int64, p)
	if workers <= 1 || len(edges) < parallelMetricsThreshold {
		for id, e := range edges {
			k, ok := a.PartitionOf(graph.EdgeID(id))
			if !ok {
				return nil, nil, fmt.Errorf("partition: edge %d unassigned", id)
			}
			bit := uint64(1) << uint(k)
			seen[e.U] |= bit
			seen[e.V] |= bit
			internal[k]++
		}
		return seen, internal, nil
	}
	// One shard per worker (not oversplit): each shard allocates an n-sized
	// bitset slice, so shard count bounds the memory overhead.
	chunks := parallel.Chunks(len(edges), workers)
	shardSeen := make([][]uint64, len(chunks))
	shardInternal := make([][]int64, len(chunks))
	err := parallel.ForEachErr(len(chunks), workers, func(c int) error {
		localSeen := make([]uint64, n)
		localInternal := make([]int64, p)
		for id := chunks[c][0]; id < chunks[c][1]; id++ {
			k, ok := a.PartitionOf(graph.EdgeID(id))
			if !ok {
				return fmt.Errorf("partition: edge %d unassigned", id)
			}
			bit := uint64(1) << uint(k)
			e := edges[id]
			localSeen[e.U] |= bit
			localSeen[e.V] |= bit
			localInternal[k]++
		}
		shardSeen[c] = localSeen
		shardInternal[c] = localInternal
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	vchunks := parallel.Chunks(n, workers*4)
	parallel.ForEach(len(vchunks), workers, func(c int) {
		for v := vchunks[c][0]; v < vchunks[c][1]; v++ {
			var acc uint64
			for _, s := range shardSeen {
				acc |= s[v]
			}
			seen[v] = acc
		}
	})
	for _, s := range shardInternal {
		for k, cnt := range s {
			internal[k] += cnt
		}
	}
	return seen, internal, nil
}

// replicaTotals reduces presence bitsets to (total replicas, spanned
// vertices), sharding the popcount scan over the pool.
func replicaTotals(seen []uint64) (replicas, spanned int) {
	workers := parallel.Workers(0)
	if workers <= 1 || len(seen) < parallelMetricsThreshold {
		for _, bits := range seen {
			c := popcount(bits)
			replicas += c
			if c >= 2 {
				spanned++
			}
		}
		return replicas, spanned
	}
	chunks := parallel.Chunks(len(seen), workers*4)
	type total struct{ replicas, spanned int }
	totals := parallel.Map(len(chunks), workers, func(c int) total {
		var t total
		for _, bits := range seen[chunks[c][0]:chunks[c][1]] {
			n := popcount(bits)
			t.replicas += n
			if n >= 2 {
				t.spanned++
			}
		}
		return t
	})
	for _, t := range totals {
		replicas += t.replicas
		spanned += t.spanned
	}
	return replicas, spanned
}

// degreeSums returns, per partition, the sum of original-graph degrees over
// the vertices present in that partition (the degSum of Claim 1), sharded
// over the pool by vertex range.
func degreeSums(g *graph.Graph, seen []uint64, p int) []int64 {
	workers := parallel.Workers(0)
	out := make([]int64, p)
	if workers <= 1 || len(seen) < parallelMetricsThreshold {
		degreeSumRange(g, seen, 0, len(seen), out)
		return out
	}
	chunks := parallel.Chunks(len(seen), workers)
	shards := parallel.Map(len(chunks), workers, func(c int) []int64 {
		local := make([]int64, p)
		degreeSumRange(g, seen, chunks[c][0], chunks[c][1], local)
		return local
	})
	for _, s := range shards {
		for k, v := range s {
			out[k] += v
		}
	}
	return out
}

func degreeSumRange(g *graph.Graph, seen []uint64, lo, hi int, out []int64) {
	for v := lo; v < hi; v++ {
		bits := seen[v]
		if bits == 0 {
			continue
		}
		deg := int64(g.Degree(graph.Vertex(v)))
		for ; bits != 0; bits &= bits - 1 {
			out[mathbits.TrailingZeros64(bits)] += deg
		}
	}
}

// modularityFromCounts derives M(P_k) from internal edge counts and degree
// sums, matching ModularityAll's conventions (0 for empty partitions, +Inf
// for partitions with no external incidences).
func modularityFromCounts(internal, degSum []int64) []float64 {
	out := make([]float64, len(internal))
	for k := range internal {
		ext := degSum[k] - 2*internal[k]
		switch {
		case internal[k] == 0:
			out[k] = 0
		case ext == 0:
			out[k] = math.Inf(1)
		default:
			out[k] = float64(internal[k]) / float64(ext)
		}
	}
	return out
}

// ReplicationFactor computes only RF; cheaper than Compute when the other
// metrics are not needed.
func ReplicationFactor(g *graph.Graph, a *Assignment) (float64, error) {
	if a.NumEdges() != g.NumEdges() {
		return 0, fmt.Errorf("partition: assignment covers %d edges, graph has %d", a.NumEdges(), g.NumEdges())
	}
	n := g.NumVertices()
	if n == 0 {
		return 0, nil
	}
	// seen[v] is a bitset over partitions for small p, else a map; p is
	// small (10-20) throughout the paper, so a uint64 bitset suffices and
	// keeps this O(n + m), with the scan sharded over the worker pool.
	if a.P() <= 64 {
		seen, _, err := presenceScan(g, a)
		if err != nil {
			return 0, err
		}
		total, _ := replicaTotals(seen)
		return float64(total) / float64(n), nil
	}
	sets := VertexSets(g, a)
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	return float64(total) / float64(n), nil
}

func popcount(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// VertexSets returns V(P_k) for every partition: the vertices incident to at
// least one edge assigned to k. Unassigned edges are skipped.
func VertexSets(g *graph.Graph, a *Assignment) [][]graph.Vertex {
	p := a.P()
	// mark[v] = last partition that recorded v, to dedupe per partition.
	sets := make([][]graph.Vertex, p)
	mark := make([][]bool, p)
	for k := range mark {
		mark[k] = make([]bool, g.NumVertices())
	}
	for id, e := range g.Edges() {
		k, ok := a.PartitionOf(graph.EdgeID(id))
		if !ok {
			continue
		}
		if !mark[k][e.U] {
			mark[k][e.U] = true
			sets[k] = append(sets[k], e.U)
		}
		if !mark[k][e.V] {
			mark[k][e.V] = true
			sets[k] = append(sets[k], e.V)
		}
	}
	return sets
}

// ModularityAll returns M(P_k) for every partition of a complete assignment.
//
// Definition 8 defines M(P_k) = |E(P_k)| / |E_out(P_k)|. On a finished
// partitioning we measure |E_out(P_k)| as the number of boundary incidences:
// sum over v in V(P_k) of the edges incident to v that are NOT in P_k. This
// is the quantity that makes the averaging identity of Claim 1
// (sum deg(v in P_k) = 2|E(P_k)| + |E_out(P_k)|) exact. Partitions with no
// external incidences get M = +Inf; empty partitions get M = 0.
func ModularityAll(g *graph.Graph, a *Assignment) ([]float64, error) {
	p := a.P()
	if p <= 64 {
		seen, internal, err := presenceScan(g, a)
		if err != nil {
			return nil, err
		}
		return modularityFromCounts(internal, degreeSums(g, seen, p)), nil
	}
	internal := make([]int64, p)
	degSum := make([]int64, p)
	sets := VertexSets(g, a)
	for id := range g.Edges() {
		k, ok := a.PartitionOf(graph.EdgeID(id))
		if !ok {
			return nil, fmt.Errorf("partition: edge %d unassigned", id)
		}
		internal[k]++
	}
	for k, set := range sets {
		for _, v := range set {
			degSum[k] += int64(g.Degree(v))
		}
	}
	return modularityFromCounts(internal, degSum), nil
}

// ModularityOf returns M(P_k) for a single partition.
func ModularityOf(g *graph.Graph, a *Assignment, k int) (float64, error) {
	all, err := ModularityAll(g, a)
	if err != nil {
		return 0, err
	}
	if k < 0 || k >= len(all) {
		return 0, fmt.Errorf("partition: partition %d out of range", k)
	}
	return all[k], nil
}

// ReplicaCount returns, for every vertex, the number of partitions whose
// edge set touches it (0 for isolated vertices).
func ReplicaCount(g *graph.Graph, a *Assignment) []int {
	n := g.NumVertices()
	counts := make([]int, n)
	if a.P() <= 64 {
		seen := make([]uint64, n)
		for id, e := range g.Edges() {
			if k, ok := a.PartitionOf(graph.EdgeID(id)); ok {
				bit := uint64(1) << uint(k)
				seen[e.U] |= bit
				seen[e.V] |= bit
			}
		}
		for v, bits := range seen {
			counts[v] = popcount(bits)
		}
		return counts
	}
	for k, set := range VertexSets(g, a) {
		_ = k
		for _, v := range set {
			counts[v]++
		}
	}
	return counts
}
