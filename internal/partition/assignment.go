// Package partition defines the shared vocabulary of every edge partitioner
// in this repository: the edge-to-partition Assignment, the quality metrics
// from the paper (replication factor, balance, per-partition modularity) and
// structural validation.
package partition

import (
	"fmt"

	"github.com/graphpart/graphpart/internal/graph"
)

// Unassigned marks an edge not yet placed in any partition.
const Unassigned int32 = -1

// Assignment maps every edge of a graph to one of P partitions.
//
// The zero value is unusable; construct with New. Assignment is not safe for
// concurrent mutation.
type Assignment struct {
	p     int
	parts []int32 // parts[e] is the partition of EdgeID e, or Unassigned
	loads []int   // loads[k] = number of edges currently in partition k
}

// New returns an all-unassigned Assignment for numEdges edges across p
// partitions. It returns an error when p < 1.
func New(numEdges, p int) (*Assignment, error) {
	if p < 1 {
		return nil, fmt.Errorf("partition: need at least one partition, got %d", p)
	}
	a := &Assignment{
		p:     p,
		parts: make([]int32, numEdges),
		loads: make([]int, p),
	}
	for i := range a.parts {
		a.parts[i] = Unassigned
	}
	return a, nil
}

// MustNew is New that panics on error; for tests and examples.
func MustNew(numEdges, p int) *Assignment {
	a, err := New(numEdges, p)
	if err != nil {
		panic(err)
	}
	return a
}

// P returns the number of partitions.
func (a *Assignment) P() int { return a.p }

// NumEdges returns the number of edges the assignment covers.
func (a *Assignment) NumEdges() int { return len(a.parts) }

// Assign places edge e in partition k, moving it if already placed.
// It panics when k is out of range — partitioners own their ids.
func (a *Assignment) Assign(e graph.EdgeID, k int) {
	if k < 0 || k >= a.p {
		panic(fmt.Sprintf("partition: partition id %d out of range [0,%d)", k, a.p))
	}
	if old := a.parts[e]; old != Unassigned {
		a.loads[old]--
	}
	a.parts[e] = int32(k)
	a.loads[k]++
}

// PartitionOf returns the partition of edge e and whether it is assigned.
func (a *Assignment) PartitionOf(e graph.EdgeID) (int, bool) {
	k := a.parts[e]
	if k == Unassigned {
		return 0, false
	}
	return int(k), true
}

// IsAssigned reports whether edge e has been placed.
func (a *Assignment) IsAssigned(e graph.EdgeID) bool { return a.parts[e] != Unassigned }

// Load returns the number of edges currently in partition k.
func (a *Assignment) Load(k int) int { return a.loads[k] }

// Loads returns a copy of all partition loads.
func (a *Assignment) Loads() []int { return append([]int(nil), a.loads...) }

// AssignedCount returns the number of edges placed so far.
func (a *Assignment) AssignedCount() int {
	total := 0
	for _, l := range a.loads {
		total += l
	}
	return total
}

// MaxLoad returns the largest partition load.
func (a *Assignment) MaxLoad() int {
	max := 0
	for _, l := range a.loads {
		if l > max {
			max = l
		}
	}
	return max
}

// MinLoad returns the smallest partition load.
func (a *Assignment) MinLoad() int {
	if a.p == 0 {
		return 0
	}
	min := a.loads[0]
	for _, l := range a.loads[1:] {
		if l < min {
			min = l
		}
	}
	return min
}

// Clone returns a deep copy of the assignment.
func (a *Assignment) Clone() *Assignment {
	return &Assignment{
		p:     a.p,
		parts: append([]int32(nil), a.parts...),
		loads: append([]int(nil), a.loads...),
	}
}

// Capacity returns the paper's per-partition edge capacity C = ceil(m/p).
func Capacity(numEdges, p int) int {
	if p < 1 {
		return numEdges
	}
	return (numEdges + p - 1) / p
}

// Partitioner is the contract every edge partitioner implements.
type Partitioner interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Partition assigns every edge of g to one of p partitions.
	Partition(g *graph.Graph, p int) (*Assignment, error)
}
