package partition

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
)

func reportFixture(t *testing.T) (*graph.Graph, *Assignment) {
	t.Helper()
	g := fig1Graph() // 8 edges, vertex 0 spans both halves
	a := MustNew(g.NumEdges(), 2)
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(graph.EdgeID(id))
		if e.U <= 2 && e.V <= 2 {
			a.Assign(graph.EdgeID(id), 0)
		} else {
			a.Assign(graph.EdgeID(id), 1)
		}
	}
	return g, a
}

func TestBuildReport(t *testing.T) {
	g, a := reportFixture(t)
	rep, err := BuildReport(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if rep.P != 2 || rep.Edges != 8 || rep.Vertices != 6 {
		t.Fatalf("header wrong: %+v", rep)
	}
	if len(rep.Partitions) != 2 {
		t.Fatalf("%d partition details", len(rep.Partitions))
	}
	// Vertex 0 (a) is the only boundary vertex; it appears in both
	// partitions but masters exactly one.
	totalBoundary := rep.Partitions[0].BoundaryVertices + rep.Partitions[1].BoundaryVertices
	if totalBoundary != 2 {
		t.Fatalf("boundary replica count %d, want 2 (one vertex in two partitions)", totalBoundary)
	}
	totalMasters := rep.Partitions[0].Masters + rep.Partitions[1].Masters
	if totalMasters != 6 {
		t.Fatalf("masters %d, want 6 (every active vertex mastered once)", totalMasters)
	}
	if rep.Partitions[0].Edges+rep.Partitions[1].Edges != 8 {
		t.Fatal("edge counts do not sum")
	}
}

func TestBuildReportIncomplete(t *testing.T) {
	g := fig1Graph()
	a := MustNew(g.NumEdges(), 2)
	if _, err := BuildReport(g, a); err == nil {
		t.Fatal("incomplete assignment accepted")
	}
}

func TestReportWriteText(t *testing.T) {
	g, a := reportFixture(t)
	rep, err := BuildReport(g, a)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"RF=", "part", "modularity"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestReportWriteJSONRoundTrip(t *testing.T) {
	g, a := reportFixture(t)
	rep, err := BuildReport(g, a)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if back.P != rep.P || len(back.Partitions) != len(rep.Partitions) {
		t.Fatal("JSON round trip lost data")
	}
}

func TestReportJSONInfModularity(t *testing.T) {
	// Two disjoint triangles wholly inside their partitions: M = +Inf,
	// which plain encoding/json rejects; the report must map it to null.
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	})
	a := MustNew(6, 2)
	for id := 0; id < 3; id++ {
		a.Assign(graph.EdgeID(id), 0)
	}
	for id := 3; id < 6; id++ {
		a.Assign(graph.EdgeID(id), 1)
	}
	rep, err := BuildReport(g, a)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("infinite modularity broke JSON encoding: %v", err)
	}
	if !strings.Contains(buf.String(), "\"modularity\": null") {
		t.Fatalf("expected null modularity in:\n%s", buf.String())
	}
	// Text rendering spells it out.
	buf.Reset()
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "inf") {
		t.Fatal("text report should print inf")
	}
}
