package partition

import (
	"fmt"

	"github.com/graphpart/graphpart/internal/graph"
)

// ValidateOptions tunes structural validation of a finished assignment.
type ValidateOptions struct {
	// Capacity is the per-partition edge bound C; zero means ceil(m/p).
	Capacity int
	// CapacitySlack multiplies Capacity before checking (some baselines,
	// e.g. hashing, only balance in expectation). Zero means 1.0 (strict).
	CapacitySlack float64
	// AllowUnassigned skips the completeness check; used mid-algorithm.
	AllowUnassigned bool
	// SkipCapacity skips the load-bound check entirely; consumers that
	// execute whatever a partitioner produced (e.g. the engine) only need
	// completeness.
	SkipCapacity bool
}

// Validate checks that a is a structurally valid balanced p-edge
// partitioning of g per Definition 3: every edge assigned exactly once (the
// Assignment representation makes double-assignment impossible, so this is a
// completeness check) and every load within capacity.
func Validate(g *graph.Graph, a *Assignment, opts ValidateOptions) error {
	if a.NumEdges() != g.NumEdges() {
		return fmt.Errorf("partition: assignment covers %d edges, graph has %d", a.NumEdges(), g.NumEdges())
	}
	assertLoadsConsistent(a)
	if !opts.AllowUnassigned {
		for id := 0; id < g.NumEdges(); id++ {
			if !a.IsAssigned(graph.EdgeID(id)) {
				e := g.Edge(graph.EdgeID(id))
				return fmt.Errorf("partition: edge %d (%d,%d) unassigned", id, e.U, e.V)
			}
		}
	}
	if opts.SkipCapacity {
		return nil
	}
	cap := opts.Capacity
	if cap <= 0 {
		cap = Capacity(g.NumEdges(), a.P())
	}
	slack := opts.CapacitySlack
	if slack <= 0 {
		slack = 1.0
	}
	bound := int(float64(cap) * slack)
	for k := 0; k < a.P(); k++ {
		if a.Load(k) > bound {
			return fmt.Errorf("partition: partition %d load %d exceeds bound %d (C=%d, slack=%.2f)",
				k, a.Load(k), bound, cap, slack)
		}
	}
	return nil
}
