package partition

import (
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
)

// TestValidateCapacityExact places exactly C = ceil(m/p) edges in one
// partition: the bound is inclusive, so the assignment must validate
// strictly, and one more edge must push it over.
func TestValidateCapacityExact(t *testing.T) {
	g := fig1Graph() // m = 8
	p := 2
	c := Capacity(g.NumEdges(), p) // ceil(8/2) = 4
	if c != 4 {
		t.Fatalf("capacity: got %d, want 4", c)
	}
	a := MustNew(g.NumEdges(), p)
	for id := 0; id < g.NumEdges(); id++ {
		k := 0
		if id >= c {
			k = 1
		}
		a.Assign(graph.EdgeID(id), k)
	}
	if err := Validate(g, a, ValidateOptions{}); err != nil {
		t.Fatalf("load exactly C rejected: %v", err)
	}
	// Move one edge across: load becomes C+1 and must be rejected unless
	// the capacity check is skipped.
	a.Assign(graph.EdgeID(g.NumEdges()-1), 0)
	if err := Validate(g, a, ValidateOptions{}); err == nil {
		t.Fatal("load C+1 accepted")
	}
	if err := Validate(g, a, ValidateOptions{SkipCapacity: true}); err != nil {
		t.Fatalf("SkipCapacity still enforced the bound: %v", err)
	}
}

// TestValidateZeroEdgePartitions accepts partitions that received no edges
// at all: an empty partition is structurally valid (just wasteful), with and
// without the capacity check.
func TestValidateZeroEdgePartitions(t *testing.T) {
	g := fig1Graph()
	a := MustNew(g.NumEdges(), 4)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), 0) // partitions 1..3 stay empty
	}
	// Everything in one partition violates C = ceil(8/4) = 2...
	if err := Validate(g, a, ValidateOptions{}); err == nil {
		t.Fatal("overfull partition accepted")
	}
	// ...but is complete, which is all SkipCapacity demands.
	if err := Validate(g, a, ValidateOptions{SkipCapacity: true}); err != nil {
		t.Fatalf("complete assignment with empty partitions rejected: %v", err)
	}
	for k := 1; k < 4; k++ {
		if a.Load(k) != 0 {
			t.Fatalf("partition %d unexpectedly has load %d", k, a.Load(k))
		}
	}
}

// TestValidateMorePartitionsThanEdges covers p > m: capacity rounds up to 1,
// at least p-m partitions stay empty, and both validation modes accept a
// spread-out assignment.
func TestValidateMorePartitionsThanEdges(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	p := 7 // m = 3
	if c := Capacity(g.NumEdges(), p); c != 1 {
		t.Fatalf("capacity: got %d, want 1", c)
	}
	a := MustNew(g.NumEdges(), p)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), id)
	}
	if err := Validate(g, a, ValidateOptions{}); err != nil {
		t.Fatalf("one-edge-per-partition rejected: %v", err)
	}
	if err := Validate(g, a, ValidateOptions{SkipCapacity: true}); err != nil {
		t.Fatalf("SkipCapacity rejected: %v", err)
	}
	// Piling two edges into one partition breaks C=1 but not completeness.
	a.Assign(graph.EdgeID(1), 0)
	if err := Validate(g, a, ValidateOptions{}); err == nil {
		t.Fatal("load 2 accepted with C=1")
	}
	if err := Validate(g, a, ValidateOptions{SkipCapacity: true}); err != nil {
		t.Fatalf("SkipCapacity rejected: %v", err)
	}
}
