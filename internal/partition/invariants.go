package partition

import (
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/invariants"
)

// assertLoadsConsistent recomputes the per-partition load histogram from the
// parts array and compares it to the incrementally tracked loads. The parts
// array gives every edge at most one partition by construction, so the
// footprint of an "edge assigned twice" bug is exactly this disagreement:
// the tracked loads sum to more edges than the parts array accounts for.
// No-op unless built with -tags graphpart_invariants.
func assertLoadsConsistent(a *Assignment) {
	if !invariants.Enabled {
		return
	}
	loads := make([]int, a.p)
	for e, k := range a.parts {
		if k == Unassigned {
			continue
		}
		invariants.Assertf(0 <= k && int(k) < a.p,
			"edge %d assigned to partition %d outside [0,%d)", e, k, a.p)
		loads[k]++
	}
	for k := range loads {
		invariants.Assertf(loads[k] == a.loads[k],
			"partition %d: %d edges in parts array but tracked load is %d (an edge was double-counted or lost)",
			k, loads[k], a.loads[k])
	}
}

// assertReplicaConsistent recomputes the total replica count the slow way —
// materialising V(P_k) per partition — and compares it to the bitset-scan
// result, so the two RF implementations police each other. No-op unless
// built with -tags graphpart_invariants.
func assertReplicaConsistent(g *graph.Graph, a *Assignment, total int) {
	if !invariants.Enabled {
		return
	}
	alt := 0
	for _, set := range VertexSets(g, a) {
		alt += len(set)
	}
	invariants.Assertf(alt == total,
		"replication disagreement: presence scan found %d replicas, vertex-set scan found %d", total, alt)
}
