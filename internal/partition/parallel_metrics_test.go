package partition

import (
	"math"
	"strings"
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/parallel"
	"github.com/graphpart/graphpart/internal/rng"
)

// bigAssigned builds a graph above parallelMetricsThreshold with every edge
// assigned pseudo-randomly across p partitions.
func bigAssigned(t *testing.T, p int) (*graph.Graph, *Assignment) {
	t.Helper()
	const n = 5000
	r := rng.New(11)
	b := graph.NewBuilder(n)
	for added := 0; added < parallelMetricsThreshold+5000; added++ {
		u := graph.Vertex(r.Intn(n))
		v := graph.Vertex(r.Intn(n))
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	a := MustNew(g.NumEdges(), p)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), int(rng.Hash64(uint64(id))%uint64(p)))
	}
	return g, a
}

func metricsEqual(t *testing.T, want, got Metrics) {
	t.Helper()
	if want.P != got.P || want.TotalReplicas != got.TotalReplicas ||
		want.SpannedVertices != got.SpannedVertices ||
		want.MaxLoad != got.MaxLoad || want.MinLoad != got.MinLoad ||
		want.ReplicationFactor != got.ReplicationFactor ||
		want.Balance != got.Balance {
		t.Fatalf("metrics differ:\nwant %+v\ngot  %+v", want, got)
	}
	if len(want.Modularity) != len(got.Modularity) {
		t.Fatalf("modularity lengths differ: %d vs %d", len(want.Modularity), len(got.Modularity))
	}
	for k := range want.Modularity {
		w, g := want.Modularity[k], got.Modularity[k]
		if w != g && !(math.IsInf(w, 1) && math.IsInf(g, 1)) {
			t.Fatalf("modularity[%d]: %v vs %v", k, w, g)
		}
	}
}

// TestComputeParallelMatchesSequential checks Compute, ReplicationFactor and
// ModularityAll are worker-count independent, bit for bit.
func TestComputeParallelMatchesSequential(t *testing.T) {
	g, a := bigAssigned(t, 13)

	t.Setenv(parallel.EnvWorkers, "1")
	seqM, err := Compute(g, a)
	if err != nil {
		t.Fatal(err)
	}
	seqRF, err := ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	seqMod, err := ModularityAll(g, a)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []string{"2", "5", "16"} {
		t.Setenv(parallel.EnvWorkers, workers)
		parM, err := Compute(g, a)
		if err != nil {
			t.Fatal(err)
		}
		metricsEqual(t, seqM, parM)
		parRF, err := ReplicationFactor(g, a)
		if err != nil {
			t.Fatal(err)
		}
		if parRF != seqRF {
			t.Fatalf("workers=%s: RF %v vs %v", workers, parRF, seqRF)
		}
		parMod, err := ModularityAll(g, a)
		if err != nil {
			t.Fatal(err)
		}
		for k := range seqMod {
			if parMod[k] != seqMod[k] && !(math.IsInf(parMod[k], 1) && math.IsInf(seqMod[k], 1)) {
				t.Fatalf("workers=%s: modularity[%d] %v vs %v", workers, k, parMod[k], seqMod[k])
			}
		}
	}
}

// TestPresenceScanUnassignedError checks the parallel scan reports the same
// lowest-numbered unassigned edge as a sequential scan would.
func TestPresenceScanUnassignedError(t *testing.T) {
	g, a := bigAssigned(t, 8)
	// Unassign two edges; the error must always name the lower id.
	fresh := MustNew(g.NumEdges(), 8)
	for id := 0; id < g.NumEdges(); id++ {
		if id == 1234 || id == 20000 {
			continue
		}
		k, _ := a.PartitionOf(graph.EdgeID(id))
		fresh.Assign(graph.EdgeID(id), k)
	}
	for _, workers := range []string{"1", "4", "16"} {
		t.Setenv(parallel.EnvWorkers, workers)
		_, err := Compute(g, fresh)
		if err == nil || !strings.Contains(err.Error(), "edge 1234 unassigned") {
			t.Fatalf("workers=%s: got %v, want edge 1234 unassigned", workers, err)
		}
	}
}
