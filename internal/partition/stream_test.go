package partition

import (
	"math"
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
	"github.com/graphpart/graphpart/internal/source"
)

// TestStreamMetricsMatchesCompute checks the CSR-free metrics pass agrees
// with Compute on every field, for streams in any order.
func TestStreamMetricsMatchesCompute(t *testing.T) {
	r := rng.New(41)
	b := graph.NewBuilder(120)
	for i := 0; i < 500; i++ {
		if err := b.AddEdge(graph.Vertex(r.Intn(120)), graph.Vertex(r.Intn(120))); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	for _, p := range []int{1, 4, 7, 64} {
		a := MustNew(g.NumEdges(), p)
		for id := 0; id < g.NumEdges(); id++ {
			a.Assign(graph.EdgeID(id), int(rng.Hash2(5, uint64(id))%uint64(p)))
		}
		want, err := Compute(g, a)
		if err != nil {
			t.Fatal(err)
		}
		for _, ord := range []source.Order{source.OrderNatural, source.OrderShuffled, source.OrderBFS} {
			got, err := StreamMetrics(source.FromGraph(g, ord, 9), a)
			if err != nil {
				t.Fatal(err)
			}
			if got.P != want.P || got.ReplicationFactor != want.ReplicationFactor ||
				got.Balance != want.Balance || got.MaxLoad != want.MaxLoad ||
				got.MinLoad != want.MinLoad || got.SpannedVertices != want.SpannedVertices ||
				got.TotalReplicas != want.TotalReplicas {
				t.Fatalf("p=%d order %d: stream metrics %+v, want %+v", p, ord, got, want)
			}
			for k := range want.Modularity {
				gm, wm := got.Modularity[k], want.Modularity[k]
				if gm != wm && !(math.IsInf(gm, 1) && math.IsInf(wm, 1)) {
					t.Fatalf("p=%d order %d: modularity[%d] = %v, want %v", p, ord, k, gm, wm)
				}
			}
		}
	}
}

func TestStreamMetricsErrors(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	src := source.FromGraph(g, source.OrderNatural, 0)
	a := MustNew(g.NumEdges(), 65)
	if _, err := StreamMetrics(src, a); err == nil {
		t.Fatal("p=65 accepted")
	}
	a2 := MustNew(g.NumEdges(), 2)
	if _, err := StreamMetrics(src, a2); err == nil {
		t.Fatal("unassigned edges accepted")
	}
	a3 := MustNew(g.NumEdges()+1, 2)
	if _, err := StreamMetrics(src, a3); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
