package partition

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"github.com/graphpart/graphpart/internal/graph"
)

// PartitionDetail describes one partition of a finished assignment.
type PartitionDetail struct {
	// ID is the partition index.
	ID int `json:"id"`
	// Edges is |E(P_k)|.
	Edges int `json:"edges"`
	// Vertices is |V(P_k)| (replicas hosted).
	Vertices int `json:"vertices"`
	// Masters counts vertices whose majority of edges live here (the
	// natural master placement); Mirrors = Vertices - Masters under the
	// most-incident-partition rule.
	Masters int `json:"masters"`
	// BoundaryVertices counts replicas shared with other partitions.
	BoundaryVertices int `json:"boundary_vertices"`
	// Modularity is the paper's M(P_k); +Inf marshals as null.
	Modularity float64 `json:"modularity"`
}

// Report is the full quality breakdown of an edge partitioning.
type Report struct {
	// P is the partition count.
	P int `json:"p"`
	// Vertices / Edges describe the input graph.
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// Capacity is C = ceil(m/p).
	Capacity int `json:"capacity"`
	// ReplicationFactor, Balance and SpannedVertices mirror Metrics.
	ReplicationFactor float64 `json:"replication_factor"`
	Balance           float64 `json:"balance"`
	SpannedVertices   int     `json:"spanned_vertices"`
	// Partitions holds the per-partition details.
	Partitions []PartitionDetail `json:"partitions"`
}

// BuildReport computes the detailed report for a complete assignment.
func BuildReport(g *graph.Graph, a *Assignment) (Report, error) {
	m, err := Compute(g, a)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		P:                 a.P(),
		Vertices:          g.NumVertices(),
		Edges:             g.NumEdges(),
		Capacity:          Capacity(g.NumEdges(), a.P()),
		ReplicationFactor: m.ReplicationFactor,
		Balance:           m.Balance,
		SpannedVertices:   m.SpannedVertices,
	}
	sets := VertexSets(g, a)
	counts := ReplicaCount(g, a)
	// Master rule: most incident edges, lowest partition id on ties —
	// matches the engine and cluster packages.
	inc := make([][]int32, a.P())
	for k := range inc {
		inc[k] = make([]int32, g.NumVertices())
	}
	for id, e := range g.Edges() {
		k, _ := a.PartitionOf(graph.EdgeID(id))
		inc[k][e.U]++
		inc[k][e.V]++
	}
	masterOf := make([]int32, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		best, bestInc := int32(-1), int32(0)
		for k := 0; k < a.P(); k++ {
			if inc[k][v] > bestInc {
				best, bestInc = int32(k), inc[k][v]
			}
		}
		masterOf[v] = best
	}
	for k := 0; k < a.P(); k++ {
		d := PartitionDetail{
			ID:         k,
			Edges:      a.Load(k),
			Vertices:   len(sets[k]),
			Modularity: m.Modularity[k],
		}
		for _, v := range sets[k] {
			if counts[v] > 1 {
				d.BoundaryVertices++
			}
			if masterOf[v] == int32(k) {
				d.Masters++
			}
		}
		rep.Partitions = append(rep.Partitions, d)
	}
	return rep, nil
}

// WriteText renders the report as an aligned table.
func (r Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "p=%d |V|=%d |E|=%d C=%d RF=%.4f balance=%.4f spanned=%d\n",
		r.P, r.Vertices, r.Edges, r.Capacity, r.ReplicationFactor, r.Balance, r.SpannedVertices)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "part\tedges\tvertices\tmasters\tboundary\tmodularity")
	for _, d := range r.Partitions {
		mod := fmt.Sprintf("%.3f", d.Modularity)
		if math.IsInf(d.Modularity, 1) {
			mod = "inf"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%s\n",
			d.ID, d.Edges, d.Vertices, d.Masters, d.BoundaryVertices, mod)
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("partition: flushing report: %w", err)
	}
	return nil
}

// MarshalJSON implements json.Marshaler, mapping +Inf modularities (which
// encoding/json rejects) to null.
func (d PartitionDetail) MarshalJSON() ([]byte, error) {
	type alias PartitionDetail
	if math.IsInf(d.Modularity, 1) || math.IsNaN(d.Modularity) {
		return json.Marshal(struct {
			alias
			Modularity *float64 `json:"modularity"`
		}{alias: alias(d), Modularity: nil})
	}
	return json.Marshal(alias(d))
}

// WriteJSON renders the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("partition: encoding report: %w", err)
	}
	return nil
}
