package partition

import (
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/invariants"
	"github.com/graphpart/graphpart/internal/rng"
)

// TestHotPathAllocs_MoveSwap is the cross-check named by the
// //graphpart:hotpath annotations on State.Move and State.Swap: once the
// boundary index has grown to its high-water mark, reversible move and swap
// round trips allocate nothing. p stays at 8 so the dense replica-count
// path (p <= 64) is the one measured — the sparse path carries its own
// suppressed GL010 for amortized row growth.
func TestHotPathAllocs_MoveSwap(t *testing.T) {
	if invariants.Enabled {
		t.Skip("invariants builds run AssertConsistent inside Move, which allocates")
	}
	r := rng.New(99)
	g, a := randomTestGraph(r, 64, 200, 8)
	s, err := NewState(g, a)
	if err != nil {
		t.Fatal(err)
	}
	e1 := graph.EdgeID(0)
	k1, _ := a.PartitionOf(e1)
	var e2 graph.EdgeID
	found := false
	for id := 1; id < g.NumEdges(); id++ {
		if k, _ := a.PartitionOf(graph.EdgeID(id)); k != k1 {
			e2, found = graph.EdgeID(id), true
			break
		}
	}
	if !found {
		t.Fatal("every edge landed in one partition")
	}
	to, _ := a.PartitionOf(e2)
	roundTrip := func() {
		s.Move(e1, to)
		s.Move(e1, k1)
		s.Swap(e1, e2)
		s.Swap(e1, e2)
	}
	// Warm up: the boundary index reaches its high-water mark on the first
	// round trip; everything after is in-place.
	for i := 0; i < 16; i++ {
		roundTrip()
	}
	if allocs := testing.AllocsPerRun(500, roundTrip); allocs != 0 {
		t.Fatalf("Move/Swap round trip allocates %.1f times", allocs)
	}
}
