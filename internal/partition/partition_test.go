package partition

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

// fig1Graph reproduces the 6-vertex example of the paper's Fig. 1:
// vertices a..f = 0..5 with a triangle a,b,c and a triangle d,e,f joined
// through a.
func fig1Graph() *graph.Graph {
	return graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, // left triangle a,b,c
		{U: 0, V: 3}, {U: 0, V: 4}, // a-d, a-e
		{U: 3, V: 4}, {U: 3, V: 5}, {U: 4, V: 5}, // right triangle d,e,f
	})
}

func TestNewRejectsBadP(t *testing.T) {
	if _, err := New(10, 0); err == nil {
		t.Fatal("accepted p=0")
	}
	if _, err := New(10, -3); err == nil {
		t.Fatal("accepted negative p")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(_, 0) did not panic")
		}
	}()
	MustNew(1, 0)
}

func TestAssignBasics(t *testing.T) {
	a := MustNew(5, 3)
	if a.AssignedCount() != 0 {
		t.Fatal("fresh assignment not empty")
	}
	if a.IsAssigned(0) {
		t.Fatal("edge 0 should start unassigned")
	}
	a.Assign(0, 2)
	if k, ok := a.PartitionOf(0); !ok || k != 2 {
		t.Fatalf("PartitionOf(0) = %d,%v", k, ok)
	}
	if a.Load(2) != 1 {
		t.Fatalf("load(2) = %d", a.Load(2))
	}
	// Reassignment moves the edge.
	a.Assign(0, 1)
	if a.Load(2) != 0 || a.Load(1) != 1 {
		t.Fatalf("reassignment loads: %v", a.Loads())
	}
	if a.AssignedCount() != 1 {
		t.Fatalf("assigned count %d", a.AssignedCount())
	}
}

func TestAssignOutOfRangePanics(t *testing.T) {
	a := MustNew(3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Assign out of range did not panic")
		}
	}()
	a.Assign(0, 2)
}

func TestLoadsAndExtremes(t *testing.T) {
	a := MustNew(6, 3)
	for e := 0; e < 6; e++ {
		a.Assign(graph.EdgeID(e), e%2) // partitions 0 and 1 get 3 each, 2 empty
	}
	if a.MaxLoad() != 3 || a.MinLoad() != 0 {
		t.Fatalf("max/min = %d/%d", a.MaxLoad(), a.MinLoad())
	}
	loads := a.Loads()
	loads[0] = 99 // must be a copy
	if a.Load(0) == 99 {
		t.Fatal("Loads() aliases internal state")
	}
}

func TestClone(t *testing.T) {
	a := MustNew(4, 2)
	a.Assign(0, 1)
	b := a.Clone()
	b.Assign(1, 0)
	if a.IsAssigned(1) {
		t.Fatal("clone shares state with original")
	}
	if k, _ := b.PartitionOf(0); k != 1 {
		t.Fatal("clone lost assignment")
	}
}

func TestCapacity(t *testing.T) {
	cases := []struct{ m, p, want int }{
		{10, 2, 5}, {10, 3, 4}, {9, 3, 3}, {1, 10, 1}, {0, 4, 0}, {7, 0, 7},
	}
	for _, c := range cases {
		if got := Capacity(c.m, c.p); got != c.want {
			t.Errorf("Capacity(%d,%d) = %d, want %d", c.m, c.p, got, c.want)
		}
	}
}

// TestRFFig1 checks RF on the paper's own Fig 1(b) example: edges split so
// vertex a is mirrored once; RF = 7/6.
func TestRFFig1(t *testing.T) {
	g := fig1Graph()
	a := MustNew(g.NumEdges(), 2)
	// Partition 0: left triangle edges; partition 1: rest. Vertex 0 (a)
	// appears in both.
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(graph.EdgeID(id))
		if e.U <= 2 && e.V <= 2 {
			a.Assign(graph.EdgeID(id), 0)
		} else {
			a.Assign(graph.EdgeID(id), 1)
		}
	}
	rf, err := ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if want := 7.0 / 6.0; math.Abs(rf-want) > 1e-12 {
		t.Fatalf("RF = %v, want %v", rf, want)
	}
	m, err := Compute(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if m.SpannedVertices != 1 {
		t.Fatalf("spanned = %d, want 1 (vertex a)", m.SpannedVertices)
	}
	if m.TotalReplicas != 7 {
		t.Fatalf("replicas = %d, want 7", m.TotalReplicas)
	}
}

func TestRFSinglePartition(t *testing.T) {
	g := fig1Graph()
	a := MustNew(g.NumEdges(), 1)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), 0)
	}
	rf, err := ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 1.0 {
		t.Fatalf("single partition RF = %v, want 1", rf)
	}
}

func TestRFIsolatedVerticesInDenominator(t *testing.T) {
	// 2 connected vertices + 2 isolated: RF = 2/4.
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}})
	a := MustNew(1, 1)
	a.Assign(0, 0)
	rf, err := ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 0.5 {
		t.Fatalf("RF = %v, want 0.5", rf)
	}
}

func TestRFUnassignedEdgeError(t *testing.T) {
	g := fig1Graph()
	a := MustNew(g.NumEdges(), 2)
	if _, err := ReplicationFactor(g, a); err == nil {
		t.Fatal("RF on incomplete assignment should error")
	}
	if _, err := Compute(g, a); err == nil {
		t.Fatal("Compute on incomplete assignment should error")
	}
}

func TestRFSizeMismatch(t *testing.T) {
	g := fig1Graph()
	a := MustNew(3, 2)
	if _, err := ReplicationFactor(g, a); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestVertexSets(t *testing.T) {
	g := fig1Graph()
	a := MustNew(g.NumEdges(), 2)
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(graph.EdgeID(id))
		if e.U <= 2 && e.V <= 2 {
			a.Assign(graph.EdgeID(id), 0)
		} else {
			a.Assign(graph.EdgeID(id), 1)
		}
	}
	sets := VertexSets(g, a)
	if len(sets[0]) != 3 || len(sets[1]) != 4 {
		t.Fatalf("set sizes %d/%d, want 3/4", len(sets[0]), len(sets[1]))
	}
}

func TestModularityFig5(t *testing.T) {
	// Fig 5(a) of the paper: a partition with 2 internal and 3 external
	// edges has M = 0.67. Build: P0 = {edge(0,1), edge(1,2)} and three
	// boundary edges from {0,1,2} assigned elsewhere.
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, // internal to P0
		{U: 0, V: 3}, {U: 1, V: 4}, {U: 2, V: 5}, // external
	})
	a := MustNew(5, 2)
	assign := func(u, v graph.Vertex, k int) {
		id, ok := g.FindEdge(u, v)
		if !ok {
			t.Fatalf("edge (%d,%d) missing", u, v)
		}
		a.Assign(id, k)
	}
	assign(0, 1, 0)
	assign(1, 2, 0)
	assign(0, 3, 1)
	assign(1, 4, 1)
	assign(2, 5, 1)
	m0, err := ModularityOf(g, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0 / 3.0; math.Abs(m0-want) > 1e-12 {
		t.Fatalf("M(P0) = %v, want %v", m0, want)
	}
}

func TestModularityInfiniteAndZero(t *testing.T) {
	// Two disjoint triangles fully in their own partitions: no external
	// incidences -> M = +Inf for both.
	g := graph.MustFromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
	})
	a := MustNew(6, 3) // partition 2 stays empty
	for id := 0; id < 3; id++ {
		a.Assign(graph.EdgeID(id), 0)
	}
	for id := 3; id < 6; id++ {
		a.Assign(graph.EdgeID(id), 1)
	}
	mods, err := ModularityAll(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(mods[0], 1) || !math.IsInf(mods[1], 1) {
		t.Fatalf("isolated partitions should have infinite modularity: %v", mods)
	}
	if mods[2] != 0 {
		t.Fatalf("empty partition modularity %v, want 0", mods[2])
	}
}

func TestModularityOfRange(t *testing.T) {
	g := fig1Graph()
	a := MustNew(g.NumEdges(), 2)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), 0)
	}
	if _, err := ModularityOf(g, a, 5); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

// TestClaim1Identity verifies the paper's Claim 1 equation (6):
// RF = 1 + (1/p) * sum_k 1/M(P_k) — exact under our boundary-incidence
// definition of E_out when every partition is nonempty... the identity as
// printed assumes sum_k(E_k + Eout_k) counts each replica's degree, i.e.
// sum_k |V(P_k)|*d ~ 2(E_k + Eout_k) holds per partition only for
// degree-regular graphs; what IS exact is the incidence identity
// sum_{v in V(Pk)} deg(v) = 2|E(P_k)| + |E_out(P_k)|. We verify that.
func TestClaim1Identity(t *testing.T) {
	r := rng.New(21)
	// Random graph, random complete assignment.
	n := 60
	b := graph.NewBuilder(n)
	for i := 0; i < 300; i++ {
		_ = b.AddEdge(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)))
	}
	g := b.Build()
	p := 4
	a := MustNew(g.NumEdges(), p)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), r.Intn(p))
	}
	sets := VertexSets(g, a)
	internal := make([]int64, p)
	for id := 0; id < g.NumEdges(); id++ {
		k, _ := a.PartitionOf(graph.EdgeID(id))
		internal[k]++
	}
	for k := 0; k < p; k++ {
		var degSum int64
		for _, v := range sets[k] {
			degSum += int64(g.Degree(v))
		}
		mods, err := ModularityAll(g, a)
		if err != nil {
			t.Fatal(err)
		}
		ext := degSum - 2*internal[k]
		if internal[k] > 0 && ext > 0 {
			if got, want := mods[k], float64(internal[k])/float64(ext); math.Abs(got-want) > 1e-12 {
				t.Fatalf("partition %d modularity %v, want %v", k, got, want)
			}
		}
	}
}

// Property: RF is always in [1, p] for complete assignments on graphs
// without isolated vertices, and equals TotalReplicas/|V|.
func TestRFBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(40)
		b := graph.NewBuilder(n)
		// Spanning path ensures no isolated vertices.
		for i := 0; i < n-1; i++ {
			_ = b.AddEdge(graph.Vertex(i), graph.Vertex(i+1))
		}
		for i := 0; i < n; i++ {
			_ = b.AddEdge(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)))
		}
		g := b.Build()
		p := 1 + r.Intn(6)
		a := MustNew(g.NumEdges(), p)
		for id := 0; id < g.NumEdges(); id++ {
			a.Assign(graph.EdgeID(id), r.Intn(p))
		}
		rf, err := ReplicationFactor(g, a)
		if err != nil {
			return false
		}
		return rf >= 1.0-1e-9 && rf <= float64(p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaCount(t *testing.T) {
	g := fig1Graph()
	a := MustNew(g.NumEdges(), 2)
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(graph.EdgeID(id))
		if e.U <= 2 && e.V <= 2 {
			a.Assign(graph.EdgeID(id), 0)
		} else {
			a.Assign(graph.EdgeID(id), 1)
		}
	}
	counts := ReplicaCount(g, a)
	if counts[0] != 2 {
		t.Fatalf("vertex a replicas = %d, want 2", counts[0])
	}
	for v := 1; v < 6; v++ {
		if counts[v] != 1 {
			t.Fatalf("vertex %d replicas = %d, want 1", v, counts[v])
		}
	}
}

func TestValidate(t *testing.T) {
	g := fig1Graph() // 8 edges
	a := MustNew(g.NumEdges(), 2)
	if err := Validate(g, a, ValidateOptions{}); err == nil {
		t.Fatal("incomplete assignment validated")
	}
	if err := Validate(g, a, ValidateOptions{AllowUnassigned: true}); err != nil {
		t.Fatalf("AllowUnassigned: %v", err)
	}
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), 0) // all in one partition: load 8 > C=4
	}
	if err := Validate(g, a, ValidateOptions{}); err == nil {
		t.Fatal("overloaded partition validated")
	}
	if err := Validate(g, a, ValidateOptions{CapacitySlack: 2.0}); err != nil {
		t.Fatalf("slack 2.0 should allow load 8 with C=4: %v", err)
	}
	if err := Validate(g, a, ValidateOptions{Capacity: 8}); err != nil {
		t.Fatalf("explicit capacity 8: %v", err)
	}
	// Balanced assignment passes strict validation.
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), id%2)
	}
	if err := Validate(g, a, ValidateOptions{}); err != nil {
		t.Fatalf("balanced assignment rejected: %v", err)
	}
}

func TestValidateSizeMismatch(t *testing.T) {
	g := fig1Graph()
	a := MustNew(2, 2)
	if err := Validate(g, a, ValidateOptions{}); err == nil {
		t.Fatal("size mismatch validated")
	}
}

func TestMetricsString(t *testing.T) {
	g := fig1Graph()
	a := MustNew(g.NumEdges(), 2)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), id%2)
	}
	m, err := Compute(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() == "" {
		t.Fatal("empty Metrics.String()")
	}
	if m.Balance != 1.0 {
		t.Fatalf("balance %v, want 1.0 for equal loads", m.Balance)
	}
}
