//go:build graphpart_invariants

package partition

import (
	"strings"
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
)

func sanitizerGraph() *graph.Graph {
	b := graph.NewBuilder(6)
	for _, e := range [][2]graph.Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}, {1, 4}} {
		_ = b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// TestCorruptedAssignmentTripsSanitizer plants the footprint of an "edge
// assigned twice" bug — the tracked loads count one more edge than the parts
// array accounts for — and checks that Validate panics instead of blessing
// the assignment.
func TestCorruptedAssignmentTripsSanitizer(t *testing.T) {
	g := sanitizerGraph()
	a := MustNew(g.NumEdges(), 2)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), id%2)
	}
	a.loads[0]++ // the double-counted edge
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Validate accepted an assignment with inconsistent loads")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "double-counted") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	_ = Validate(g, a, ValidateOptions{})
}

// TestCorruptedStateTripsSanitizer desynchronises a State from its
// assignment — the footprint of mutating the assignment behind the State's
// back — and checks that the full-recomputation cross-check panics.
func TestCorruptedStateTripsSanitizer(t *testing.T) {
	g := sanitizerGraph()
	a := MustNew(g.NumEdges(), 2)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), id%2)
	}
	s, err := NewState(g, a)
	if err != nil {
		t.Fatal(err)
	}
	s.totalReplicas++ // the phantom replica
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("AssertConsistent accepted a desynchronised State")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "total replicas") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	s.AssertConsistent()
}

// TestValidAssignmentPassesSanitizer runs the instrumented Validate and
// Compute paths on a healthy assignment: no panic, same results.
func TestValidAssignmentPassesSanitizer(t *testing.T) {
	g := sanitizerGraph()
	a := MustNew(g.NumEdges(), 2)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), id%2)
	}
	if err := Validate(g, a, ValidateOptions{}); err != nil {
		t.Fatal(err)
	}
	m, err := Compute(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if m.ReplicationFactor < 1 {
		t.Fatalf("implausible RF %v", m.ReplicationFactor)
	}
}
