package partition

import (
	"testing"
	"testing/quick"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/rng"
)

// randomTestGraph builds a connected random graph (spanning path + random
// extra edges) with a complete random assignment over p partitions.
func randomTestGraph(r *rng.RNG, n, extra, p int) (*graph.Graph, *Assignment) {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex(i+1))
	}
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)))
	}
	g := b.Build()
	a := MustNew(g.NumEdges(), p)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), r.Intn(p))
	}
	return g, a
}

// checkStateMatchesCompute compares every incremental quantity of s against
// Compute and a freshly built State.
func checkStateMatchesCompute(t *testing.T, g *graph.Graph, s *State) {
	t.Helper()
	m, err := Compute(g, s.Assignment())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if s.TotalReplicas() != m.TotalReplicas {
		t.Fatalf("TotalReplicas: state %d, Compute %d", s.TotalReplicas(), m.TotalReplicas)
	}
	if s.SpannedVertices() != m.SpannedVertices {
		t.Fatalf("SpannedVertices: state %d, Compute %d", s.SpannedVertices(), m.SpannedVertices)
	}
	if s.RF() != m.ReplicationFactor {
		t.Fatalf("RF: state %v, Compute %v", s.RF(), m.ReplicationFactor)
	}
	if s.Balance() != m.Balance {
		t.Fatalf("Balance: state %v, Compute %v", s.Balance(), m.Balance)
	}
	counts := ReplicaCount(g, s.Assignment())
	for v, want := range counts {
		if got := s.Replicas(graph.Vertex(v)); got != want {
			t.Fatalf("vertex %d replicas: state %d, recomputed %d", v, got, want)
		}
	}
	// Boundary index: membership must equal "some endpoint spanned".
	nb := 0
	for id, e := range g.Edges() {
		want := counts[e.U] >= 2 || counts[e.V] >= 2
		if got := s.IsBoundary(graph.EdgeID(id)); got != want {
			t.Fatalf("edge %d boundary: state %v, recomputed %v", id, got, want)
		}
		if want {
			nb++
		}
	}
	if s.NumBoundary() != nb {
		t.Fatalf("NumBoundary: state %d, recomputed %d", s.NumBoundary(), nb)
	}
}

func TestNewStateMatchesCompute(t *testing.T) {
	for _, p := range []int{1, 2, 8, 64, 70, 100} {
		r := rng.New(uint64(7 + p))
		g, a := randomTestGraph(r, 50, 150, p)
		s, err := NewState(g, a)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		checkStateMatchesCompute(t, g, s)
	}
}

func TestNewStateRejectsIncomplete(t *testing.T) {
	g := fig1Graph()
	a := MustNew(g.NumEdges(), 2)
	a.Assign(0, 0)
	if _, err := NewState(g, a); err == nil {
		t.Fatal("NewState accepted an incomplete assignment")
	}
	if _, err := NewState(g, MustNew(3, 2)); err == nil {
		t.Fatal("NewState accepted a size-mismatched assignment")
	}
	if _, err := NewState(nil, a); err == nil {
		t.Fatal("NewState accepted a nil graph")
	}
}

// Property: after any sequence of random Moves and Swaps, in both the dense
// (p<=64) and sparse (p>64) representations, every incremental metric equals
// a full recomputation, and MoveDelta predicts the realized Move delta.
func TestStateIncrementalMatchesRecompute(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := 2 + r.Intn(8)
		if r.Intn(4) == 0 {
			p = 65 + r.Intn(8) // exercise the sparse representation
		}
		g, a := randomTestGraph(r, 8+r.Intn(30), 40, p)
		s, err := NewState(g, a)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			e := graph.EdgeID(r.Intn(g.NumEdges()))
			if r.Intn(3) == 0 {
				e2 := graph.EdgeID(r.Intn(g.NumEdges()))
				before := s.TotalReplicas()
				d := s.Swap(e, e2)
				if s.TotalReplicas()-before != d {
					return false
				}
				continue
			}
			to := r.Intn(p)
			want := s.MoveDelta(e, to)
			before := s.TotalReplicas()
			if got := s.Move(e, to); got != want || s.TotalReplicas()-before != got {
				return false
			}
		}
		checkStateMatchesCompute(t, g, s)
		s.AssertConsistent()
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStateMoveIsReversible(t *testing.T) {
	r := rng.New(99)
	g, a := randomTestGraph(r, 40, 100, 6)
	s, err := NewState(g, a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		e := graph.EdgeID(r.Intn(g.NumEdges()))
		from, _ := s.Assignment().PartitionOf(e)
		to := r.Intn(6)
		total := s.TotalReplicas()
		d := s.Move(e, to)
		back := s.Move(e, from)
		if d+back != 0 {
			t.Fatalf("move %d->%d delta %d, revert delta %d", from, to, d, back)
		}
		if s.TotalReplicas() != total {
			t.Fatalf("revert did not restore TotalReplicas")
		}
	}
	checkStateMatchesCompute(t, g, s)
}

func TestStateSwapPreservesLoads(t *testing.T) {
	r := rng.New(5)
	g, a := randomTestGraph(r, 30, 80, 4)
	s, err := NewState(g, a)
	if err != nil {
		t.Fatal(err)
	}
	loads := s.Assignment().Loads()
	for i := 0; i < 60; i++ {
		s.Swap(graph.EdgeID(r.Intn(g.NumEdges())), graph.EdgeID(r.Intn(g.NumEdges())))
	}
	got := s.Assignment().Loads()
	for k := range loads {
		if loads[k] != got[k] {
			t.Fatalf("swap changed loads: %v -> %v", loads, got)
		}
	}
}

func TestStatePartitionsAndCounts(t *testing.T) {
	g := fig1Graph()
	for _, p := range []int{3, 70} {
		a := MustNew(g.NumEdges(), p)
		// Storage order is canonical (U,V)-sorted: ids 0,1,4 are the left
		// triangle (-> 0), ids 2,3 are a-d/a-e (-> 1), ids 5,6,7 the right
		// triangle (-> 2).
		for id, k := range []int{0, 0, 1, 1, 0, 2, 2, 2} {
			a.Assign(graph.EdgeID(id), k)
		}
		s, err := NewState(g, a)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Partitions(0, nil); len(got) != 2 || got[0] != 0 || got[1] != 1 {
			t.Fatalf("p=%d: vertex a partitions = %v", p, got)
		}
		if s.Count(0, 0) != 2 || s.Count(0, 1) != 2 || s.Count(0, 2) != 0 {
			t.Fatalf("p=%d: vertex a counts = %d,%d,%d", p, s.Count(0, 0), s.Count(0, 1), s.Count(0, 2))
		}
		if !s.Has(3, 1) || !s.Has(3, 2) || s.Has(3, 0) {
			t.Fatalf("p=%d: vertex d membership wrong", p)
		}
		if s.Replicas(5) != 1 {
			t.Fatalf("p=%d: vertex f replicas = %d", p, s.Replicas(5))
		}
	}
}

func TestStateAppendBoundarySorted(t *testing.T) {
	r := rng.New(17)
	g, a := randomTestGraph(r, 30, 60, 5)
	s, err := NewState(g, a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		s.Move(graph.EdgeID(r.Intn(g.NumEdges())), r.Intn(5))
	}
	b := s.AppendBoundary(nil)
	if len(b) != s.NumBoundary() {
		t.Fatalf("AppendBoundary returned %d edges, NumBoundary is %d", len(b), s.NumBoundary())
	}
	for i := 1; i < len(b); i++ {
		if b[i-1] >= b[i] {
			t.Fatalf("boundary not strictly ascending at %d: %v", i, b[i-1:i+1])
		}
	}
	for _, e := range b {
		if !s.IsBoundary(e) {
			t.Fatalf("edge %d in snapshot but not IsBoundary", e)
		}
	}
}

func TestAssignLeftoversMatchesArgminScan(t *testing.T) {
	r := rng.New(31)
	g, _ := randomTestGraph(r, 40, 120, 1)
	p := 5
	a := MustNew(g.NumEdges(), p)
	ref := MustNew(g.NumEdges(), p)
	// Pre-assign a random half to both.
	for id := 0; id < g.NumEdges(); id++ {
		if r.Intn(2) == 0 {
			k := r.Intn(p)
			a.Assign(graph.EdgeID(id), k)
			ref.Assign(graph.EdgeID(id), k)
		}
	}
	// Reference: sequential argmin scan with smallest-id ties.
	want := 0
	for id := 0; id < g.NumEdges(); id++ {
		eid := graph.EdgeID(id)
		if ref.IsAssigned(eid) {
			continue
		}
		best := 0
		for k := 1; k < p; k++ {
			if ref.Load(k) < ref.Load(best) {
				best = k
			}
		}
		ref.Assign(eid, best)
		want++
	}
	if got := AssignLeftovers(g, a); got != want {
		t.Fatalf("AssignLeftovers placed %d edges, want %d", got, want)
	}
	for id := 0; id < g.NumEdges(); id++ {
		ka, _ := a.PartitionOf(graph.EdgeID(id))
		kr, _ := ref.PartitionOf(graph.EdgeID(id))
		if ka != kr {
			t.Fatalf("edge %d: heap sweep chose %d, argmin scan chose %d", id, ka, kr)
		}
	}
}
