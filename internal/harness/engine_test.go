package harness

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestRunEngineComparison exercises the downstream-communication experiment
// on the small datasets and checks the claim it exists to demonstrate:
// partitioners with lower replication factor generate less synchronisation
// traffic on the share-nothing runtime.
func TestRunEngineComparison(t *testing.T) {
	cfg, buf := quickConfig(t)
	if err := RunEngineComparison(cfg, nil, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ENGINE (p=4)") || !strings.Contains(out, "pagerank") {
		t.Fatalf("engine comparison output missing content:\n%s", out)
	}
	path := filepath.Join(cfg.CSVDir, "engine_comm.csv")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("engine_comm.csv not written: %v", err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := "dataset,algorithm,p,program,rf,supersteps,messages,bytes,partition_seconds,run_seconds"
	if got := strings.Join(rows[0], ","); got != wantHeader {
		t.Fatalf("header = %q, want %q", got, wantHeader)
	}
	// 3 datasets x 10 partitioners x 2 programs (skips still emit rows).
	if want := 3*10*2 + 1; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	// RF drives traffic: per (dataset, program), TLP must beat Random on
	// both replication factor and message volume.
	type cell struct {
		rf       float64
		messages int64
	}
	cells := make(map[string]cell)
	for _, row := range rows[1:] {
		if row[4] == "" {
			continue // skipped cell
		}
		rf, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad rf %q: %v", row[4], err)
		}
		msgs, err := strconv.ParseInt(row[6], 10, 64)
		if err != nil {
			t.Fatalf("bad messages %q: %v", row[6], err)
		}
		if msgs <= 0 {
			t.Errorf("%s/%s/%s: no traffic recorded", row[0], row[1], row[3])
		}
		cells[row[0]+"/"+row[1]+"/"+row[3]] = cell{rf, msgs}
	}
	for _, d := range cfg.Datasets {
		for _, prog := range []string{"pagerank", "components"} {
			tlp := cells[d.Notation+"/TLP/"+prog]
			rnd := cells[d.Notation+"/Random/"+prog]
			if tlp.rf >= rnd.rf {
				t.Errorf("%s/%s: TLP rf %.3f not below Random rf %.3f", d.Notation, prog, tlp.rf, rnd.rf)
			}
			if tlp.messages >= rnd.messages {
				t.Errorf("%s/%s: TLP messages %d not below Random %d (rf %.3f vs %.3f)",
					d.Notation, prog, tlp.messages, rnd.messages, tlp.rf, rnd.rf)
			}
		}
	}
}
