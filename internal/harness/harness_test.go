package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/graphpart/graphpart/internal/gen"
)

// quickConfig runs everything on the small dataset variants with two tiny
// partition counts so the whole harness is exercised in well under a second
// per experiment.
func quickConfig(t *testing.T) (Config, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	return Config{
		Seed:     7,
		Datasets: gen.SmallDatasets()[:3],
		Ps:       []int{4, 6},
		Out:      &buf,
		CSVDir:   t.TempDir(),
	}, &buf
}

func TestRunTable3(t *testing.T) {
	cfg, buf := quickConfig(t)
	graphs, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 3 {
		t.Fatalf("got %d graphs", len(graphs))
	}
	out := buf.String()
	if !strings.Contains(out, "TABLE III") || !strings.Contains(out, "G1s") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(cfg.CSVDir, "table3.csv")); err != nil {
		t.Fatalf("table3.csv not written: %v", err)
	}
}

func TestRunFig8AndTable4(t *testing.T) {
	cfg, buf := quickConfig(t)
	graphs, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunFig8(cfg, graphs)
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets x 5 algorithms x 2 p values.
	if want := 3 * 5 * 2; len(results) != want {
		t.Fatalf("got %d results, want %d", len(results), want)
	}
	for _, r := range results {
		if r.RF < 1 || r.RF > float64(r.P) {
			t.Fatalf("%s/%s p=%d RF=%v out of range", r.Dataset, r.Algorithm, r.P, r.RF)
		}
	}
	if err := RunTable4(cfg, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "TABLE IV") || !strings.Contains(out, "FIG 8") {
		t.Fatalf("missing experiment headers:\n%s", out)
	}
	for _, f := range []string{"fig8.csv", "table4.csv"} {
		if _, err := os.Stat(filepath.Join(cfg.CSVDir, f)); err != nil {
			t.Fatalf("%s not written: %v", f, err)
		}
	}
}

func TestRunFigR(t *testing.T) {
	cfg, buf := quickConfig(t)
	cfg.Datasets = gen.SmallDatasets()[:2]
	graphs, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunFigR(cfg, graphs, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Per dataset: 1 TLP + 11 TLP_R.
	if want := 2 * 12; len(results) != want {
		t.Fatalf("got %d results, want %d", len(results), want)
	}
	if !strings.Contains(buf.String(), "R=0.5") {
		t.Fatal("missing R column")
	}
	if _, err := os.Stat(filepath.Join(cfg.CSVDir, "figR_p4.csv")); err != nil {
		t.Fatalf("figR csv not written: %v", err)
	}
}

func TestRunTable6(t *testing.T) {
	cfg, buf := quickConfig(t)
	cfg.Datasets = gen.SmallDatasets()[:2]
	graphs, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunTable6(cfg, graphs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE VI") {
		t.Fatal("missing table VI header")
	}
	if _, err := os.Stat(filepath.Join(cfg.CSVDir, "table6.csv")); err != nil {
		t.Fatalf("table6.csv not written: %v", err)
	}
}

func TestAlgorithmsRoster(t *testing.T) {
	algs := Algorithms(1)
	want := []string{"TLP", "METIS", "LDG", "DBH", "Random"}
	if len(algs) != len(want) {
		t.Fatalf("roster size %d", len(algs))
	}
	for i, a := range algs {
		if a.Name() != want[i] {
			t.Fatalf("roster[%d] = %s, want %s", i, a.Name(), want[i])
		}
	}
}

func TestNoCSVWhenDirEmpty(t *testing.T) {
	cfg, _ := quickConfig(t)
	cfg.CSVDir = ""
	if err := writeCSV(cfg, "x.csv", []string{"a"}, nil); err != nil {
		t.Fatalf("empty CSVDir should be a no-op: %v", err)
	}
}

func TestRunAblation(t *testing.T) {
	cfg, buf := quickConfig(t)
	cfg.Datasets = gen.SmallDatasets()[:2]
	graphs, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunAblation(cfg, graphs, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ABLATION", "TLP+refine", "TLP-SW", "KL(flat)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
	if _, err := os.Stat(filepath.Join(cfg.CSVDir, "ablation_p4.csv")); err != nil {
		t.Fatalf("ablation csv not written: %v", err)
	}
}
