package harness

import (
	"fmt"
	"strconv"
	"text/tabwriter"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/obs"
	"github.com/graphpart/graphpart/internal/parallel"
	"github.com/graphpart/graphpart/internal/refine"
)

// RefineResult is one (dataset, algorithm) cell of the refinement ablation:
// partition with the named family, then run the move/swap local search and
// record the quality deltas.
type RefineResult struct {
	Dataset   string
	Algorithm string
	P         int
	RFBefore  float64
	RFAfter   float64
	// BalanceBefore / BalanceAfter are max-load/(m/p) around refinement.
	BalanceBefore float64
	BalanceAfter  float64
	Passes        int
	Moves         int
	Swaps         int
	// ReplicasRemoved is the net replica reduction the search achieved.
	ReplicasRemoved int
	// PartitionSeconds / RefineSeconds split the initial partitioning cost
	// from the refinement cost.
	PartitionSeconds float64
	RefineSeconds    float64
	Skipped          bool
}

// RunRefineAblation partitions every dataset with every registered family at
// one partition count, refines each result in place with the move/swap local
// search, and emits refine.csv — the RF/balance improvement refinement buys
// on top of TLP, METIS, TLP-SW and the streaming families (ROADMAP item 4's
// headline table). Cells fan out over the worker pool; the refiner itself
// runs with the same worker budget and is bit-identical for any worker
// count, so rows are too.
func RunRefineAblation(cfg Config, graphs map[string]*graph.Graph, p int) error {
	cfg = cfg.withDefaults()
	var err error
	if graphs == nil {
		graphs, err = generateAll(cfg)
		if err != nil {
			return err
		}
	}
	roster := engineRoster()
	results, err := parallel.MapErr(len(cfg.Datasets)*len(roster), cfg.Workers, func(i int) (RefineResult, error) {
		d := cfg.Datasets[i/len(roster)]
		r := roster[i%len(roster)]
		g := graphs[d.Notation]
		res := RefineResult{Dataset: d.Notation, Algorithm: r.name, P: p}
		if r.maxEdges > 0 && g.NumEdges() > r.maxEdges {
			res.Skipped = true
			return res, nil
		}
		watch := obs.StartWatch()
		a, err := r.make(cfg.Seed).Partition(g, p)
		if err != nil {
			return res, fmt.Errorf("harness: refine ablation %s on %s: %w", r.name, d.Notation, err)
		}
		res.PartitionSeconds = watch.Seconds()
		watch = obs.StartWatch()
		stats, err := refine.Run(g, a, refine.Options{Workers: cfg.Workers})
		if err != nil {
			return res, fmt.Errorf("harness: refining %s on %s: %w", r.name, d.Notation, err)
		}
		res.RefineSeconds = watch.Seconds()
		res.RFBefore, res.RFAfter = stats.RFBefore, stats.RFAfter
		res.BalanceBefore, res.BalanceAfter = stats.BalanceBefore, stats.BalanceAfter
		res.Passes, res.Moves, res.Swaps = stats.Passes, stats.Moves, stats.Swaps
		res.ReplicasRemoved = stats.ReplicasRemoved
		return res, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nREFINE (p=%d): move/swap local search on top of each family\n", p)
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\talgorithm\trf before\trf after\tdelta\tbalance\tmoves\tswaps")
	var rows [][]string
	for _, res := range results {
		if res.Skipped {
			rows = append(rows, []string{res.Dataset, res.Algorithm, strconv.Itoa(p),
				"", "", "", "", "", "", "", "", "", ""})
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%+.3f\t%.3f\t%d\t%d\n",
			res.Dataset, res.Algorithm, res.RFBefore, res.RFAfter,
			res.RFAfter-res.RFBefore, res.BalanceAfter, res.Moves, res.Swaps)
		rows = append(rows, []string{res.Dataset, res.Algorithm, strconv.Itoa(p),
			fmt.Sprintf("%.4f", res.RFBefore), fmt.Sprintf("%.4f", res.RFAfter),
			fmt.Sprintf("%.4f", res.BalanceBefore), fmt.Sprintf("%.4f", res.BalanceAfter),
			strconv.Itoa(res.Passes), strconv.Itoa(res.Moves), strconv.Itoa(res.Swaps),
			strconv.Itoa(res.ReplicasRemoved),
			fmt.Sprintf("%.3f", res.PartitionSeconds), fmt.Sprintf("%.3f", res.RefineSeconds)})
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("harness: flushing refine ablation: %w", err)
	}
	return writeCSV(cfg, "refine.csv",
		[]string{"dataset", "algorithm", "p", "rf_before", "rf_after",
			"balance_before", "balance_after", "passes", "moves", "swaps",
			"replicas_removed", "partition_seconds", "refine_seconds"}, rows)
}
