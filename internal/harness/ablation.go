package harness

import (
	"errors"
	"fmt"
	"strconv"
	"text/tabwriter"

	"github.com/graphpart/graphpart/internal/core"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/metis"
	"github.com/graphpart/graphpart/internal/obs"
	"github.com/graphpart/graphpart/internal/parallel"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/refine"
	"github.com/graphpart/graphpart/internal/window"
)

// errSkipped marks an ablation cell intentionally not run (e.g. flat KL on
// a graph too large for its quadratic growth phase).
var errSkipped = errors.New("harness: ablation cell skipped")

// ablationRunner is a named partition-then-measure step; some entries add a
// refinement pass, which a plain partition.Partitioner cannot express.
type ablationRunner struct {
	name string
	run  func(g *graph.Graph, p int, seed uint64) (*partition.Assignment, error)
}

func ablationRoster() []ablationRunner {
	return []ablationRunner{
		{"TLP", func(g *graph.Graph, p int, seed uint64) (*partition.Assignment, error) {
			return core.MustNew(core.Options{Seed: seed}).Partition(g, p)
		}},
		{"TLP+maxdeg", func(g *graph.Graph, p int, seed uint64) (*partition.Assignment, error) {
			return core.MustNew(core.Options{Seed: seed, Stage1Policy: core.PolicyMaxDegree}).Partition(g, p)
		}},
		{"TLP+refine", func(g *graph.Graph, p int, seed uint64) (*partition.Assignment, error) {
			a, err := core.MustNew(core.Options{Seed: seed}).Partition(g, p)
			if err != nil {
				return nil, err
			}
			if _, err := refine.Run(g, a, refine.Options{}); err != nil {
				return nil, err
			}
			return a, nil
		}},
		{"TLP-SW", func(g *graph.Graph, p int, seed uint64) (*partition.Assignment, error) {
			// The sliding-window reference implementation scans its
			// window-bounded frontier per step; bound the cell like
			// flat KL so the ablation completes in minutes.
			if g.NumEdges() > 150000 {
				return nil, errSkipped
			}
			return window.New(window.Config{Seed: seed}).Partition(g, p)
		}},
		{"KL(flat)", func(g *graph.Graph, p int, seed uint64) (*partition.Assignment, error) {
			// Flat KL is quadratic without coarsening (the reason
			// multilevel exists); bound it to graphs it can handle.
			if g.NumEdges() > 150000 {
				return nil, errSkipped
			}
			return metis.NewFlatKL(metis.Config{Seed: seed}).Partition(g, p)
		}},
		{"METIS", func(g *graph.Graph, p int, seed uint64) (*partition.Assignment, error) {
			return metis.New(metis.Config{Seed: seed}).Partition(g, p)
		}},
	}
}

// RunAblation measures the DESIGN.md §6 design-choice ablations (Stage-I
// policy, refinement pass, sliding window, multilevel vs flat) on every
// dataset at one partition count.
func RunAblation(cfg Config, graphs map[string]*graph.Graph, p int) error {
	cfg = cfg.withDefaults()
	var err error
	if graphs == nil {
		graphs, err = generateAll(cfg)
		if err != nil {
			return err
		}
	}
	roster := ablationRoster()
	// Fan the (dataset, variant) cells out over the pool; skipped cells
	// are a result, not an error, so one skip never aborts the grid.
	type ablationCell struct {
		rf      float64
		seconds float64
		skipped bool
	}
	cells, err := parallel.MapErr(len(cfg.Datasets)*len(roster), cfg.Workers, func(i int) (ablationCell, error) {
		d := cfg.Datasets[i/len(roster)]
		r := roster[i%len(roster)]
		g := graphs[d.Notation]
		watch := obs.StartWatch()
		a, err := r.run(g, p, cfg.Seed)
		if errors.Is(err, errSkipped) {
			return ablationCell{skipped: true}, nil
		}
		if err != nil {
			return ablationCell{}, fmt.Errorf("harness: ablation %s on %s: %w", r.name, d.Notation, err)
		}
		rf, err := partition.ReplicationFactor(g, a)
		if err != nil {
			return ablationCell{}, fmt.Errorf("harness: ablation metrics %s on %s: %w", r.name, d.Notation, err)
		}
		return ablationCell{rf: rf, seconds: watch.Seconds()}, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nABLATION (p=%d): replication factor by variant\n", p)
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	header := "graph"
	for _, r := range roster {
		header += "\t" + r.name
	}
	fmt.Fprintln(tw, header)
	var rows [][]string
	for di, d := range cfg.Datasets {
		row := d.Notation
		for ri, r := range roster {
			c := cells[di*len(roster)+ri]
			if c.skipped {
				row += "\t-"
				rows = append(rows, []string{d.Notation, r.name, strconv.Itoa(p), "", ""})
				continue
			}
			row += fmt.Sprintf("\t%.3f", c.rf)
			rows = append(rows, []string{d.Notation, r.name, strconv.Itoa(p),
				fmt.Sprintf("%.4f", c.rf), fmt.Sprintf("%.3f", c.seconds)})
		}
		fmt.Fprintln(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("harness: flushing ablation: %w", err)
	}
	return writeCSV(cfg, fmt.Sprintf("ablation_p%d.csv", p),
		[]string{"dataset", "variant", "p", "rf", "seconds"}, rows)
}
