package harness

import (
	"fmt"
	"strconv"
	"text/tabwriter"

	"github.com/graphpart/graphpart/internal/core"
	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/metis"
	"github.com/graphpart/graphpart/internal/obs"
	"github.com/graphpart/graphpart/internal/parallel"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/streaming"
	"github.com/graphpart/graphpart/internal/window"
)

// engineRunner is one partitioner entry of the engine-comparison roster.
type engineRunner struct {
	name string
	// maxEdges bounds the cell (0 = unbounded); quadratic or
	// frontier-scanning baselines skip the large datasets, mirroring the
	// ablation grid.
	maxEdges int
	make     func(seed uint64) partition.Partitioner
}

// engineRoster returns every registered partitioner for the downstream
// communication comparison, quality algorithms first.
func engineRoster() []engineRunner {
	return []engineRunner{
		{"TLP", 0, func(seed uint64) partition.Partitioner { return core.MustNew(core.Options{Seed: seed}) }},
		{"METIS", 0, func(seed uint64) partition.Partitioner { return metis.New(metis.Config{Seed: seed}) }},
		{"TLP-SW", 150000, func(seed uint64) partition.Partitioner { return window.New(window.Config{Seed: seed}) }},
		{"KL(flat)", 150000, func(seed uint64) partition.Partitioner { return metis.NewFlatKL(metis.Config{Seed: seed}) }},
		{"HDRF", 0, func(seed uint64) partition.Partitioner { return streaming.NewHDRF(seed, streaming.OrderShuffled, 0) }},
		{"Greedy", 0, func(seed uint64) partition.Partitioner { return streaming.NewGreedy(seed, streaming.OrderShuffled) }},
		{"LDG", 0, func(seed uint64) partition.Partitioner { return streaming.NewLDG(seed, streaming.OrderShuffled) }},
		{"FENNEL", 0, func(seed uint64) partition.Partitioner { return streaming.NewFENNEL(seed, streaming.OrderShuffled, 0) }},
		{"DBH", 0, func(seed uint64) partition.Partitioner { return streaming.NewDBH(seed) }},
		{"Random", 0, func(seed uint64) partition.Partitioner { return streaming.NewRandom(seed) }},
	}
}

// engineProgram is one vertex program of the comparison, bounded so the
// grid measures synchronisation traffic, not convergence patience.
type engineProgram struct {
	name string
	make func(g *graph.Graph) engine.Program
	max  int
}

func enginePrograms() []engineProgram {
	return []engineProgram{
		{"pagerank", func(g *graph.Graph) engine.Program {
			return engine.NewPageRank(g.NumVertices(), 0.85, 1e-9)
		}, 8},
		{"components", func(g *graph.Graph) engine.Program {
			return &engine.Components{}
		}, 16},
	}
}

// EngineResult is one (dataset, algorithm, p, program) execution of the
// share-nothing runtime.
type EngineResult struct {
	Dataset    string
	Algorithm  string
	P          int
	Program    string
	RF         float64
	Supersteps int
	Messages   int64
	Bytes      int64
	// PartitionSeconds / RunSeconds split preprocessing from execution.
	PartitionSeconds float64
	RunSeconds       float64
	Skipped          bool
}

// RunEngineComparison executes vertex programs on the share-nothing GAS
// runtime over every registered partitioner on the standard datasets at one
// partition count, and emits engine_comm.csv — replication factor against
// actual synchronisation messages, wire bytes and wall-clock, the
// replication-factor-matters figure the paper argues from.
func RunEngineComparison(cfg Config, graphs map[string]*graph.Graph, p int) error {
	cfg = cfg.withDefaults()
	var err error
	if graphs == nil {
		graphs, err = generateAll(cfg)
		if err != nil {
			return err
		}
	}
	roster := engineRoster()
	programs := enginePrograms()
	// One cell = one (dataset, partitioner): partition once, then run
	// every program on the same engine. Cells fan out over the worker
	// pool; each returns one EngineResult per program.
	cells, err := parallel.MapErr(len(cfg.Datasets)*len(roster), cfg.Workers, func(i int) ([]EngineResult, error) {
		d := cfg.Datasets[i/len(roster)]
		r := roster[i%len(roster)]
		g := graphs[d.Notation]
		out := make([]EngineResult, len(programs))
		for pi := range out {
			out[pi] = EngineResult{Dataset: d.Notation, Algorithm: r.name, P: p, Program: programs[pi].name}
		}
		if r.maxEdges > 0 && g.NumEdges() > r.maxEdges {
			for pi := range out {
				out[pi].Skipped = true
			}
			return out, nil
		}
		watch := obs.StartWatch()
		a, err := r.make(cfg.Seed).Partition(g, p)
		if err != nil {
			return nil, fmt.Errorf("harness: engine comparison %s on %s: %w", r.name, d.Notation, err)
		}
		partSeconds := watch.Seconds()
		e, err := engine.New(g, a)
		if err != nil {
			return nil, fmt.Errorf("harness: engine build %s on %s: %w", r.name, d.Notation, err)
		}
		for pi, pr := range programs {
			watch = obs.StartWatch()
			_, stats, err := e.Run(pr.make(g), pr.max)
			if err != nil {
				return nil, fmt.Errorf("harness: engine run %s/%s on %s: %w", r.name, pr.name, d.Notation, err)
			}
			out[pi].RF = e.ReplicationFactor()
			out[pi].Supersteps = stats.Supersteps
			out[pi].Messages = stats.Messages()
			out[pi].Bytes = stats.Bytes()
			out[pi].PartitionSeconds = partSeconds
			out[pi].RunSeconds = watch.Seconds()
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nENGINE (p=%d): replication factor vs synchronisation traffic\n", p)
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\talgorithm\trf\tprogram\tsteps\tmessages\tMB")
	var rows [][]string
	for _, cell := range cells {
		for _, res := range cell {
			if res.Skipped {
				rows = append(rows, []string{res.Dataset, res.Algorithm, strconv.Itoa(p), res.Program,
					"", "", "", "", "", ""})
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%s\t%d\t%d\t%.2f\n",
				res.Dataset, res.Algorithm, res.RF, res.Program,
				res.Supersteps, res.Messages, float64(res.Bytes)/1e6)
			rows = append(rows, []string{res.Dataset, res.Algorithm, strconv.Itoa(p), res.Program,
				fmt.Sprintf("%.4f", res.RF), strconv.Itoa(res.Supersteps),
				strconv.FormatInt(res.Messages, 10), strconv.FormatInt(res.Bytes, 10),
				fmt.Sprintf("%.3f", res.PartitionSeconds), fmt.Sprintf("%.3f", res.RunSeconds)})
		}
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("harness: flushing engine comparison: %w", err)
	}
	return writeCSV(cfg, "engine_comm.csv",
		[]string{"dataset", "algorithm", "p", "program", "rf", "supersteps", "messages", "bytes",
			"partition_seconds", "run_seconds"}, rows)
}
