package harness

import (
	"path/filepath"
	"testing"

	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/obs"
)

// enableTelemetry turns recording on for one test and restores the default
// disabled state (clearing everything recorded) when the test ends. Tests
// using it share process-global state and must not run in parallel.
func enableTelemetry(t *testing.T) {
	t.Helper()
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.ResetTrace()
		obs.Default.Reset()
	})
}

// TestTelemetryDoesNotChangeOutput is the layer's hard invariant: running
// the full experiment suite with tracing and metrics recording enabled must
// render byte-identical tables and byte-identical CSV rows (timing columns
// aside) to a run with telemetry off.
func TestTelemetryDoesNotChangeOutput(t *testing.T) {
	outOff, resOff, dirOff := runEverything(t, 4)

	enableTelemetry(t)
	outOn, resOn, dirOn := runEverything(t, 4)

	if recs, _ := obs.TraceRecords(); len(recs) == 0 {
		t.Fatal("telemetry enabled but no spans recorded")
	}
	if outOff != outOn {
		t.Fatalf("rendered output differs with telemetry on:\n--- off ---\n%s\n--- on ---\n%s", outOff, outOn)
	}
	if len(resOff) != len(resOn) {
		t.Fatalf("result counts differ: %d vs %d", len(resOff), len(resOn))
	}
	for i := range resOff {
		a, b := resOff[i], resOn[i]
		if a.Dataset != b.Dataset || a.Algorithm != b.Algorithm || a.P != b.P ||
			a.RF != b.RF || a.Balance != b.Balance {
			t.Fatalf("result %d differs:\noff: %+v\non:  %+v", i, a, b)
		}
	}
	drop := map[string]bool{"seconds": true, "partition_seconds": true, "run_seconds": true}
	for _, name := range []string{"table3.csv", "fig8.csv", "table4.csv", "figR_p4.csv", "table6.csv", "ablation_p4.csv", "window_p4.csv", "engine_comm.csv"} {
		rowsOff := stripSeconds(t, filepath.Join(dirOff, name), drop)
		rowsOn := stripSeconds(t, filepath.Join(dirOn, name), drop)
		if len(rowsOff) != len(rowsOn) {
			t.Fatalf("%s: row counts differ: %d vs %d", name, len(rowsOff), len(rowsOn))
		}
		for r := range rowsOff {
			for c := range rowsOff[r] {
				if rowsOff[r][c] != rowsOn[r][c] {
					t.Fatalf("%s row %d col %d: %q (off) vs %q (on)", name, r, c, rowsOff[r][c], rowsOn[r][c])
				}
			}
		}
	}
}

// TestTelemetryUnderParallelHarness drives the fig8 grid on an 8-worker pool
// with recording on. Under `go test -race` this is the proof that the span
// ring and metric registry tolerate concurrent cells; without the race
// detector it still checks spans from every cell arrive.
func TestTelemetryUnderParallelHarness(t *testing.T) {
	enableTelemetry(t)

	cfg := Config{
		Seed:     7,
		Datasets: gen.SmallDatasets()[:3],
		Ps:       []int{4, 6},
		Out:      discard{},
		Workers:  8,
	}
	graphs, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunFig8(cfg, graphs)
	if err != nil {
		t.Fatal(err)
	}

	recs, _ := obs.TraceRecords()
	cells := 0
	for _, rec := range recs {
		if rec.Name == "harness.cell" {
			cells++
		}
	}
	if cells < len(results) {
		t.Fatalf("recorded %d harness.cell spans for %d grid cells", cells, len(results))
	}
}

// discard is an io.Writer that swallows the harness tables.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
