package harness

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/graphpart/graphpart/internal/engine"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/refine"
	"github.com/graphpart/graphpart/internal/streaming"
)

// TestRunRefineAblation exercises the refinement experiment on the small
// datasets and checks its headline claim: the move/swap local search never
// worsens the replication factor and strictly improves it on the large
// majority of the grid (the streaming families leave plenty on the table).
func TestRunRefineAblation(t *testing.T) {
	cfg, buf := quickConfig(t)
	if err := RunRefineAblation(cfg, nil, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "REFINE (p=4)") {
		t.Fatalf("refine ablation output missing content:\n%s", out)
	}
	path := filepath.Join(cfg.CSVDir, "refine.csv")
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("refine.csv not written: %v", err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := "dataset,algorithm,p,rf_before,rf_after,balance_before,balance_after," +
		"passes,moves,swaps,replicas_removed,partition_seconds,refine_seconds"
	if got := strings.Join(rows[0], ","); got != wantHeader {
		t.Fatalf("header = %q, want %q", got, wantHeader)
	}
	// 3 datasets x 10 partitioners, skips still emit rows.
	if want := 3*10 + 1; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	ran, improved := 0, 0
	for _, row := range rows[1:] {
		if row[3] == "" {
			continue // skipped cell
		}
		before, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad rf_before %q: %v", row[3], err)
		}
		after, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad rf_after %q: %v", row[4], err)
		}
		ran++
		if after > before {
			t.Errorf("%s/%s: refinement worsened RF %.4f -> %.4f", row[0], row[1], before, after)
		}
		if after < before {
			improved++
		}
	}
	if ran == 0 {
		t.Fatal("no cells ran")
	}
	if 5*improved < 4*ran {
		t.Errorf("refinement strictly improved only %d of %d cells; want >= 80%%", improved, ran)
	}
}

// TestRefinedPartitionMovesFewerMessages is the end-to-end payoff check: on
// the share-nothing runtime, a refined assignment must move strictly fewer
// synchronisation messages (and bytes) than the assignment it was refined
// from.
func TestRefinedPartitionMovesFewerMessages(t *testing.T) {
	cfg, _ := quickConfig(t)
	graphs, err := generateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graphs[cfg.Datasets[0].Notation]
	p := 4
	base, err := streaming.NewRandom(cfg.Seed).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	refined := base.Clone()
	stats, err := refine.Run(g, refined, refine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RFAfter >= stats.RFBefore {
		t.Fatalf("refinement found nothing on a random partitioning: %+v", stats)
	}
	run := func(a *partition.Assignment) engine.Stats {
		e, err := engine.New(g, a)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := e.Run(engine.NewPageRank(g.NumVertices(), 0.85, 1e-9), 8)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	before, after := run(base), run(refined)
	if after.Messages() >= before.Messages() {
		t.Fatalf("refined partition moved %d messages, unrefined %d; want strictly fewer",
			after.Messages(), before.Messages())
	}
	if after.Bytes() >= before.Bytes() {
		t.Fatalf("refined partition moved %d bytes, unrefined %d; want strictly fewer",
			after.Bytes(), before.Bytes())
	}
	t.Logf("pagerank messages %d -> %d, bytes %d -> %d (RF %.3f -> %.3f)",
		before.Messages(), after.Messages(), before.Bytes(), after.Bytes(),
		stats.RFBefore, stats.RFAfter)
}
