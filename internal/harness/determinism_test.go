package harness

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/parallel"
)

// runEverything drives every experiment once and returns the rendered text,
// the Fig. 8 results and the CSV directory.
func runEverything(t *testing.T, workers int) (string, []Result, string) {
	t.Helper()
	var buf bytes.Buffer
	cfg := Config{
		Seed:     7,
		Datasets: gen.SmallDatasets()[:3],
		Ps:       []int{4, 6},
		Out:      &buf,
		CSVDir:   t.TempDir(),
		Workers:  workers,
	}
	graphs, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunFig8(cfg, graphs)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunTable4(cfg, results); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFigR(cfg, graphs, 4); err != nil {
		t.Fatal(err)
	}
	if err := RunTable6(cfg, graphs); err != nil {
		t.Fatal(err)
	}
	if err := RunAblation(cfg, graphs, 4); err != nil {
		t.Fatal(err)
	}
	if err := RunWindowAblation(cfg, graphs, 4); err != nil {
		t.Fatal(err)
	}
	if err := RunEngineComparison(cfg, graphs, 4); err != nil {
		t.Fatal(err)
	}
	if err := RunRefineAblation(cfg, graphs, 4); err != nil {
		t.Fatal(err)
	}
	return buf.String(), results, cfg.CSVDir
}

// stripSeconds drops wall-clock columns from CSV rows so runs can be
// compared; every other column must match byte for byte.
func stripSeconds(t *testing.T, path string, dropCols map[string]bool) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		return rows
	}
	var keep []int
	for i, name := range rows[0] {
		if !dropCols[name] {
			keep = append(keep, i)
		}
	}
	out := make([][]string, len(rows))
	for r, row := range rows {
		for _, c := range keep {
			out[r] = append(out[r], row[c])
		}
	}
	return out
}

// TestHarnessWorkerCountInvariance is the PR's headline guarantee: with the
// same seed, the parallel harness renders byte-identical tables and
// byte-identical CSV rows (timing columns aside) for any worker count.
func TestHarnessWorkerCountInvariance(t *testing.T) {
	out1, res1, dir1 := runEverything(t, 1)
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 8 // still exercises the pool on single-core machines
	}
	outN, resN, dirN := runEverything(t, workers)

	if out1 != outN {
		t.Fatalf("rendered output differs between Workers=1 and Workers=%d:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			workers, out1, outN)
	}
	if len(res1) != len(resN) {
		t.Fatalf("result counts differ: %d vs %d", len(res1), len(resN))
	}
	for i := range res1 {
		a, b := res1[i], resN[i]
		if a.Dataset != b.Dataset || a.Algorithm != b.Algorithm || a.P != b.P ||
			a.RF != b.RF || a.Balance != b.Balance {
			t.Fatalf("result %d differs:\nWorkers=1: %+v\nWorkers=%d: %+v", i, a, workers, b)
		}
	}
	drop := map[string]bool{"seconds": true, "partition_seconds": true, "run_seconds": true, "refine_seconds": true}
	for _, name := range []string{"table3.csv", "fig8.csv", "table4.csv", "figR_p4.csv", "table6.csv", "ablation_p4.csv", "window_p4.csv", "engine_comm.csv", "refine.csv"} {
		rows1 := stripSeconds(t, filepath.Join(dir1, name), drop)
		rowsN := stripSeconds(t, filepath.Join(dirN, name), drop)
		if len(rows1) != len(rowsN) {
			t.Fatalf("%s: row counts differ: %d vs %d", name, len(rows1), len(rowsN))
		}
		for r := range rows1 {
			for c := range rows1[r] {
				if rows1[r][c] != rowsN[r][c] {
					t.Fatalf("%s row %d col %d: %q vs %q", name, r, c, rows1[r][c], rowsN[r][c])
				}
			}
		}
	}
}

// TestHarnessRepeatedRunsSameSeed checks that back-to-back parallel runs at
// one seed agree with each other (no hidden shared state across runs).
func TestHarnessRepeatedRunsSameSeed(t *testing.T) {
	outA, _, _ := runEverything(t, 4)
	outB, _, _ := runEverything(t, 4)
	if outA != outB {
		t.Fatalf("repeated runs differ:\n--- first ---\n%s\n--- second ---\n%s", outA, outB)
	}
}

// TestGenerateWorkerCountInvariance checks the generated graphs themselves
// (not just derived tables) are independent of the worker count used during
// CSR assembly.
func TestGenerateWorkerCountInvariance(t *testing.T) {
	d := gen.SmallDatasets()[4] // G5s: power-law family, above build threshold

	t.Setenv(parallel.EnvWorkers, "1")
	g1 := d.Generate(7)
	t.Setenv(parallel.EnvWorkers, "8")
	g8 := d.Generate(7)

	if g1.NumVertices() != g8.NumVertices() || g1.NumEdges() != g8.NumEdges() {
		t.Fatalf("sizes differ: (%d,%d) vs (%d,%d)",
			g1.NumVertices(), g1.NumEdges(), g8.NumVertices(), g8.NumEdges())
	}
	e1, e8 := g1.Edges(), g8.Edges()
	for i := range e1 {
		if e1[i] != e8[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e8[i])
		}
	}
	for v := 0; v < g1.NumVertices(); v++ {
		n1, n8 := g1.Neighbors(graph.Vertex(v)), g8.Neighbors(graph.Vertex(v))
		if len(n1) != len(n8) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range n1 {
			if n1[i] != n8[i] {
				t.Fatalf("vertex %d neighbor %d differs: %d vs %d", v, i, n1[i], n8[i])
			}
		}
	}
}

// TestGraphCacheSharesBuilds checks repeated generateAll calls at one seed
// return the same underlying graphs instead of regenerating.
func TestGraphCacheSharesBuilds(t *testing.T) {
	cfg := Config{Seed: 7, Datasets: gen.SmallDatasets()[:2], Workers: 2}
	a, err := generateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for notation, g := range a {
		if b[notation] != g {
			t.Fatalf("dataset %s regenerated instead of cached", notation)
		}
	}
}
