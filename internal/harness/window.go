package harness

import (
	"fmt"
	"strconv"
	"text/tabwriter"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/obs"
	"github.com/graphpart/graphpart/internal/parallel"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/source"
	"github.com/graphpart/graphpart/internal/window"
)

// windowMultipliers are the window sizes swept by RunWindowAblation,
// expressed as multiples of the per-partition capacity C = ceil(m/p):
// half a partition's worth of context up to the default four.
var windowMultipliers = []float64{0.5, 1, 2, 4}

// RunWindowAblation sweeps the sliding-window TLP's window size on every
// dataset at one partition count, reporting replication factor alongside the
// window behaviour counters (peak resident edges, final-sweep edges) that
// explain it: a smaller window holds less context per growth decision, so
// quality degrades and more stragglers fall to the least-load sweep.
func RunWindowAblation(cfg Config, graphs map[string]*graph.Graph, p int) error {
	cfg = cfg.withDefaults()
	var err error
	if graphs == nil {
		graphs, err = generateAll(cfg)
		if err != nil {
			return err
		}
	}
	type windowCell struct {
		rf      float64
		stats   window.Stats
		win     int
		seconds float64
		skipped bool
	}
	// Fan the (dataset, multiplier) cells out over the pool; the reference
	// implementation's per-step frontier scans make very large graphs slow,
	// so those cells are skipped like TLP-SW in RunAblation.
	cells, err := parallel.MapErr(len(cfg.Datasets)*len(windowMultipliers), cfg.Workers, func(i int) (windowCell, error) {
		d := cfg.Datasets[i/len(windowMultipliers)]
		mult := windowMultipliers[i%len(windowMultipliers)]
		g := graphs[d.Notation]
		if g.NumEdges() > 150000 {
			return windowCell{skipped: true}, nil
		}
		capC := partition.Capacity(g.NumEdges(), p)
		win := int(float64(capC) * mult)
		if win < 16 {
			win = 16
		}
		w := window.New(window.Config{Seed: cfg.Seed, WindowEdges: win})
		src := source.FromGraph(g, source.OrderBFS, cfg.Seed)
		watch := obs.StartWatch()
		a, stats, err := w.PartitionStreamStats(src, p)
		if err != nil {
			return windowCell{}, fmt.Errorf("harness: window ablation %gC on %s: %w", mult, d.Notation, err)
		}
		rf, err := partition.ReplicationFactor(g, a)
		if err != nil {
			return windowCell{}, fmt.Errorf("harness: window ablation metrics %gC on %s: %w", mult, d.Notation, err)
		}
		return windowCell{rf: rf, stats: stats, win: win, seconds: watch.Seconds()}, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nWINDOW ABLATION (p=%d): TLP-SW replication factor by window size\n", p)
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	header := "graph"
	for _, mult := range windowMultipliers {
		header += fmt.Sprintf("\t%gC\t(peak/swept)", mult)
	}
	fmt.Fprintln(tw, header)
	var rows [][]string
	for di, d := range cfg.Datasets {
		row := d.Notation
		for mi, mult := range windowMultipliers {
			c := cells[di*len(windowMultipliers)+mi]
			if c.skipped {
				row += "\t-\t"
				rows = append(rows, []string{d.Notation, fmt.Sprintf("%g", mult),
					strconv.Itoa(p), "", "", "", "", ""})
				continue
			}
			row += fmt.Sprintf("\t%.3f\t(%d/%d)", c.rf, c.stats.PeakWindowEdges, c.stats.SweptEdges)
			rows = append(rows, []string{d.Notation, fmt.Sprintf("%g", mult),
				strconv.Itoa(p), strconv.Itoa(c.win), fmt.Sprintf("%.4f", c.rf),
				strconv.Itoa(c.stats.PeakWindowEdges), strconv.Itoa(c.stats.SweptEdges),
				fmt.Sprintf("%.3f", c.seconds)})
		}
		fmt.Fprintln(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("harness: flushing window ablation: %w", err)
	}
	return writeCSV(cfg, fmt.Sprintf("window_p%d.csv", p),
		[]string{"dataset", "window_mult", "p", "window_edges", "rf", "peak_window", "swept", "seconds"}, rows)
}
