// Package harness defines and runs the paper's experiments: Table III
// (datasets), Fig. 8 (RF of five algorithms on nine graphs), Table IV
// (ΔRF between METIS and TLP), Figs. 9-11 (TLP vs TLP_R over R), and
// Table VI (per-stage average degrees). Each experiment renders the same
// rows/series the paper reports and can also emit CSV for plotting.
package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"text/tabwriter"

	"github.com/graphpart/graphpart/internal/core"
	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/metis"
	"github.com/graphpart/graphpart/internal/obs"
	"github.com/graphpart/graphpart/internal/parallel"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/streaming"
)

// Config drives an experiment run.
type Config struct {
	// Seed parameterises dataset generation and every partitioner.
	Seed uint64
	// Datasets to evaluate; nil means the full G1..G9 registry.
	Datasets []gen.Dataset
	// Ps is the list of partition counts; nil means {10, 15, 20}.
	Ps []int
	// Out receives the rendered tables; nil discards them (callers that
	// want terminal output pass os.Stdout explicitly — the library never
	// chooses the destination itself).
	Out io.Writer
	// CSVDir, when non-empty, also writes one CSV per experiment there.
	CSVDir string
	// Workers bounds how many grid cells (and dataset generations) run
	// concurrently. 0 resolves via the GRAPHPART_WORKERS environment
	// variable, then GOMAXPROCS; 1 runs fully sequentially. Every cell
	// gets its own partitioner built from the seed, and results land in
	// pre-sized slices by cell index, so tables and CSV rows are
	// identical for any worker count. Per-cell Seconds are the only
	// numbers affected (concurrent cells contend for cores); use
	// cmd/benchsnap or Workers=1 for clean timings.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Datasets == nil {
		c.Datasets = gen.Datasets()
	}
	if len(c.Ps) == 0 {
		c.Ps = []int{10, 15, 20}
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// Result is one (dataset, algorithm, p) measurement.
type Result struct {
	Dataset   string
	Algorithm string
	P         int
	RF        float64
	Balance   float64
	Seconds   float64
	// Stats carries TLP-family stage statistics when applicable.
	Stats *core.Stats
}

// algorithmFactories builds the Fig. 8 roster in the paper's order: TLP,
// METIS, LDG, DBH, Random. Factories (rather than shared instances) let the
// parallel grid give every cell its own partitioner — partitioners and
// rng.RNG are not goroutine-safe — while staying deterministic, because each
// instance is a function of the seed alone.
var algorithmFactories = []func(seed uint64) partition.Partitioner{
	func(seed uint64) partition.Partitioner { return core.MustNew(core.Options{Seed: seed}) },
	func(seed uint64) partition.Partitioner { return metis.New(metis.Config{Seed: seed}) },
	func(seed uint64) partition.Partitioner { return streaming.NewLDG(seed, streaming.OrderShuffled) },
	func(seed uint64) partition.Partitioner { return streaming.NewDBH(seed) },
	func(seed uint64) partition.Partitioner { return streaming.NewRandom(seed) },
}

// Algorithms returns the Fig. 8 roster in the paper's order: TLP, METIS,
// LDG, DBH, Random.
func Algorithms(seed uint64) []partition.Partitioner {
	out := make([]partition.Partitioner, len(algorithmFactories))
	for i, f := range algorithmFactories {
		out[i] = f(seed)
	}
	return out
}

// runOne partitions g and measures RF/balance/time.
func runOne(g *graph.Graph, pt partition.Partitioner, dataset string, p int) (Result, error) {
	sp := obs.Start("harness.cell", obs.String("dataset", dataset),
		obs.String("algorithm", pt.Name()), obs.Int("p", p))
	watch := obs.StartWatch()
	a, err := pt.Partition(g, p)
	if err != nil {
		sp.End()
		return Result{}, fmt.Errorf("harness: %s on %s p=%d: %w", pt.Name(), dataset, p, err)
	}
	elapsed := watch.Seconds()
	m, err := partition.Compute(g, a)
	if err != nil {
		sp.End()
		return Result{}, fmt.Errorf("harness: metrics for %s on %s: %w", pt.Name(), dataset, err)
	}
	sp.EndWith(obs.Float("rf", m.ReplicationFactor), obs.Float("seconds", elapsed))
	return Result{
		Dataset:   dataset,
		Algorithm: pt.Name(),
		P:         p,
		RF:        m.ReplicationFactor,
		Balance:   m.Balance,
		Seconds:   elapsed,
	}, nil
}

// RunTable3 prints the dataset statistics table (Table III analogue) and
// returns the generated graphs keyed by notation so later experiments can
// reuse them.
func RunTable3(cfg Config) (map[string]*graph.Graph, error) {
	cfg = cfg.withDefaults()
	graphs, err := generateAll(cfg)
	if err != nil {
		return nil, err
	}
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TABLE III: datasets (synthetic analogues; see DESIGN.md §4)")
	fmt.Fprintln(tw, "Graph\tNotation\t|V(G)|\t|E(G)|\t|V|+|E|\tfamily")
	var rows [][]string
	for _, d := range cfg.Datasets {
		g := graphs[d.Notation]
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%s\n",
			d.Name, d.Notation, g.NumVertices(), g.NumEdges(),
			g.NumVertices()+g.NumEdges(), d.Family)
		rows = append(rows, []string{d.Name, d.Notation,
			strconv.Itoa(g.NumVertices()), strconv.Itoa(g.NumEdges()), d.Family})
	}
	if err := tw.Flush(); err != nil {
		return nil, fmt.Errorf("harness: flushing table: %w", err)
	}
	if err := writeCSV(cfg, "table3.csv",
		[]string{"name", "notation", "vertices", "edges", "family"}, rows); err != nil {
		return nil, err
	}
	return graphs, nil
}

// RunFig8 measures RF for the five-algorithm roster on every dataset and
// partition count, printing one block per p (Fig. 8 a-c).
func RunFig8(cfg Config, graphs map[string]*graph.Graph) ([]Result, error) {
	cfg = cfg.withDefaults()
	var err error
	if graphs == nil {
		graphs, err = generateAll(cfg)
		if err != nil {
			return nil, err
		}
	}
	// Fan the (p, dataset, algorithm) grid out over the worker pool; cells
	// are independent, and each gets a fresh partitioner built from the
	// seed. Results land by cell index, in the exact order the sequential
	// loops appended them, so tables and CSV rows are unchanged.
	algNames := make([]string, len(algorithmFactories))
	for i, f := range algorithmFactories {
		algNames[i] = f(cfg.Seed).Name()
	}
	type cell struct {
		notation string
		alg      int
		p        int
	}
	cells := make([]cell, 0, len(cfg.Ps)*len(cfg.Datasets)*len(algorithmFactories))
	for _, p := range cfg.Ps {
		for _, d := range cfg.Datasets {
			for ai := range algorithmFactories {
				cells = append(cells, cell{notation: d.Notation, alg: ai, p: p})
			}
		}
	}
	results, err := parallel.MapErr(len(cells), cfg.Workers, func(i int) (Result, error) {
		c := cells[i]
		return runOne(graphs[c.notation], algorithmFactories[c.alg](cfg.Seed), c.notation, c.p)
	})
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, p := range cfg.Ps {
		fmt.Fprintf(cfg.Out, "\nFIG 8 (p=%d): replication factor by algorithm\n", p)
		tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
		header := "graph"
		for _, name := range algNames {
			header += "\t" + name
		}
		fmt.Fprintln(tw, header)
		for _, d := range cfg.Datasets {
			row := d.Notation
			for range algNames {
				row += fmt.Sprintf("\t%.3f", results[idx].RF)
				idx++
			}
			fmt.Fprintln(tw, row)
		}
		if err := tw.Flush(); err != nil {
			return nil, fmt.Errorf("harness: flushing fig8: %w", err)
		}
	}
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{r.Dataset, r.Algorithm, strconv.Itoa(r.P),
			fmt.Sprintf("%.4f", r.RF), fmt.Sprintf("%.4f", r.Balance),
			fmt.Sprintf("%.3f", r.Seconds)})
	}
	if err := writeCSV(cfg, "fig8.csv",
		[]string{"dataset", "algorithm", "p", "rf", "balance", "seconds"}, rows); err != nil {
		return nil, err
	}
	return results, nil
}

// RunTable4 derives ΔRF = RF(METIS) - RF(TLP) from Fig. 8 results
// (running them if needed) and prints the Table IV analogue.
func RunTable4(cfg Config, fig8 []Result) error {
	cfg = cfg.withDefaults()
	if fig8 == nil {
		var err error
		fig8, err = RunFig8(cfg, nil)
		if err != nil {
			return err
		}
	}
	rf := map[string]map[int]map[string]float64{} // alg -> p -> dataset -> RF
	for _, r := range fig8 {
		if rf[r.Algorithm] == nil {
			rf[r.Algorithm] = map[int]map[string]float64{}
		}
		if rf[r.Algorithm][r.P] == nil {
			rf[r.Algorithm][r.P] = map[string]float64{}
		}
		rf[r.Algorithm][r.P][r.Dataset] = r.RF
	}
	fmt.Fprintln(cfg.Out, "\nTABLE IV: dRF = RF(METIS) - RF(TLP) (positive means TLP wins)")
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	header := "p"
	for _, d := range cfg.Datasets {
		header += "\t" + d.Notation
	}
	header += "\tAverage"
	fmt.Fprintln(tw, header)
	var rows [][]string
	for _, p := range cfg.Ps {
		row := fmt.Sprintf("p=%d", p)
		sum, cnt := 0.0, 0
		for _, d := range cfg.Datasets {
			delta := rf["METIS"][p][d.Notation] - rf["TLP"][p][d.Notation]
			row += fmt.Sprintf("\t%+.2f", delta)
			rows = append(rows, []string{strconv.Itoa(p), d.Notation, fmt.Sprintf("%.4f", delta)})
			sum += delta
			cnt++
		}
		row += fmt.Sprintf("\t%+.2f", sum/float64(cnt))
		fmt.Fprintln(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("harness: flushing table4: %w", err)
	}
	return writeCSV(cfg, "table4.csv", []string{"p", "dataset", "delta_rf"}, rows)
}

// RunFigR measures TLP against TLP_R for R in {0.0 .. 1.0} at one partition
// count (Fig. 9 has p=10, Fig. 10 p=15, Fig. 11 p=20).
func RunFigR(cfg Config, graphs map[string]*graph.Graph, p int) ([]Result, error) {
	cfg = cfg.withDefaults()
	var err error
	if graphs == nil {
		graphs, err = generateAll(cfg)
		if err != nil {
			return nil, err
		}
	}
	rs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	// Fan the (dataset, variant) sweep out over the pool: variant 0 is
	// plain TLP, variants 1..len(rs) are TLP_R at rs[v-1]. Each task
	// constructs its own partitioner from the seed.
	variants := 1 + len(rs)
	results, err := parallel.MapErr(len(cfg.Datasets)*variants, cfg.Workers, func(i int) (Result, error) {
		d := cfg.Datasets[i/variants]
		g := graphs[d.Notation]
		if v := i % variants; v > 0 {
			return runOne(g, core.MustNewTLPR(rs[v-1], core.Options{Seed: cfg.Seed}), d.Notation, p)
		}
		return runOne(g, core.MustNew(core.Options{Seed: cfg.Seed}), d.Notation, p)
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(cfg.Out, "\nFIG (p=%d): TLP vs TLP_R across R\n", p)
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	header := "graph\tTLP"
	for _, r := range rs {
		header += fmt.Sprintf("\tR=%.1f", r)
	}
	fmt.Fprintln(tw, header)
	for di, d := range cfg.Datasets {
		row := d.Notation
		for v := 0; v < variants; v++ {
			row += fmt.Sprintf("\t%.3f", results[di*variants+v].RF)
		}
		fmt.Fprintln(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return nil, fmt.Errorf("harness: flushing figR: %w", err)
	}
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{r.Dataset, r.Algorithm, strconv.Itoa(r.P),
			fmt.Sprintf("%.4f", r.RF)})
	}
	return results, writeCSV(cfg, fmt.Sprintf("figR_p%d.csv", p),
		[]string{"dataset", "algorithm", "p", "rf"}, rows)
}

// RunTable6 reports the average original-graph degree of vertices selected
// in Stage I vs Stage II during TLP runs (Table VI analogue).
func RunTable6(cfg Config, graphs map[string]*graph.Graph) error {
	cfg = cfg.withDefaults()
	var err error
	if graphs == nil {
		graphs, err = generateAll(cfg)
		if err != nil {
			return err
		}
	}
	// Fan the (dataset, p) grid out over the pool with one fresh TLP per
	// cell, collecting the per-stage stats by cell index.
	stats, err := parallel.MapErr(len(cfg.Datasets)*len(cfg.Ps), cfg.Workers, func(i int) (core.Stats, error) {
		d := cfg.Datasets[i/len(cfg.Ps)]
		p := cfg.Ps[i%len(cfg.Ps)]
		tlp := core.MustNew(core.Options{Seed: cfg.Seed})
		_, st, err := tlp.PartitionStats(graphs[d.Notation], p)
		if err != nil {
			return core.Stats{}, fmt.Errorf("harness: table6 %s p=%d: %w", d.Notation, p, err)
		}
		return st, nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "\nTABLE VI: average degree of vertices selected per stage")
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	header := "graph"
	for _, p := range cfg.Ps {
		header += fmt.Sprintf("\tp=%d stage I\tp=%d stage II", p, p)
	}
	fmt.Fprintln(tw, header)
	var rows [][]string
	for di, d := range cfg.Datasets {
		row := d.Notation
		for pi, p := range cfg.Ps {
			st := stats[di*len(cfg.Ps)+pi]
			row += fmt.Sprintf("\t%.2f\t%.2f", st.AvgDegreeStage1(), st.AvgDegreeStage2())
			rows = append(rows, []string{d.Notation, strconv.Itoa(p),
				fmt.Sprintf("%.3f", st.AvgDegreeStage1()),
				fmt.Sprintf("%.3f", st.AvgDegreeStage2())})
		}
		fmt.Fprintln(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("harness: flushing table6: %w", err)
	}
	return writeCSV(cfg, "table6.csv",
		[]string{"dataset", "p", "avg_degree_stage1", "avg_degree_stage2"}, rows)
}

// RunTiming measures partitioning wall-clock per algorithm per dataset at
// one partition count — the runtime counterpart of Section III.E's
// complexity discussion (the paper reports no times; this table quantifies
// the TLP-vs-METIS trade the paper describes qualitatively).
func RunTiming(cfg Config, graphs map[string]*graph.Graph, p int) error {
	cfg = cfg.withDefaults()
	var err error
	if graphs == nil {
		graphs, err = generateAll(cfg)
		if err != nil {
			return err
		}
	}
	algNames := make([]string, len(algorithmFactories))
	for i, f := range algorithmFactories {
		algNames[i] = f(cfg.Seed).Name()
	}
	// Fan the (dataset, algorithm) cells out over the pool. Note that with
	// Workers > 1 the measured seconds include contention between
	// concurrent cells; cmd/benchsnap runs cells sequentially when clean
	// per-cell numbers are needed.
	results, err := parallel.MapErr(len(cfg.Datasets)*len(algNames), cfg.Workers, func(i int) (Result, error) {
		d := cfg.Datasets[i/len(algNames)]
		alg := algorithmFactories[i%len(algNames)](cfg.Seed)
		return runOne(graphs[d.Notation], alg, d.Notation, p)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nTIMING (p=%d): partitioning seconds by algorithm\n", p)
	tw := tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', 0)
	header := "graph"
	for _, name := range algNames {
		header += "\t" + name
	}
	fmt.Fprintln(tw, header)
	var rows [][]string
	for di, d := range cfg.Datasets {
		row := d.Notation
		for ai, name := range algNames {
			res := results[di*len(algNames)+ai]
			row += fmt.Sprintf("\t%.3f", res.Seconds)
			rows = append(rows, []string{d.Notation, name,
				strconv.Itoa(p), fmt.Sprintf("%.4f", res.Seconds)})
		}
		fmt.Fprintln(tw, row)
	}
	if err := tw.Flush(); err != nil {
		return fmt.Errorf("harness: flushing timing: %w", err)
	}
	return writeCSV(cfg, fmt.Sprintf("timing_p%d.csv", p),
		[]string{"dataset", "algorithm", "p", "seconds"}, rows)
}

// graphCache memoises Dataset.Generate results so the harness entry points
// share one build per (dataset, seed) instead of regenerating the nine
// graphs for every experiment. Graphs are immutable and a deterministic
// function of the key, so sharing is safe; the per-entry once lets distinct
// datasets generate concurrently while concurrent requests for the same
// dataset build it exactly once.
var graphCache = struct {
	sync.Mutex
	entries map[graphCacheKey]*graphCacheEntry
}{entries: map[graphCacheKey]*graphCacheEntry{}}

type graphCacheKey struct {
	seed               uint64
	notation, family   string
	vertices, numEdges int
}

type graphCacheEntry struct {
	once sync.Once
	g    *graph.Graph
}

func cachedGenerate(d gen.Dataset, seed uint64) *graph.Graph {
	key := graphCacheKey{
		seed: seed, notation: d.Notation, family: d.Family,
		vertices: d.Vertices, numEdges: d.Edges,
	}
	graphCache.Lock()
	e, ok := graphCache.entries[key]
	if !ok {
		e = &graphCacheEntry{}
		graphCache.entries[key] = e
	}
	graphCache.Unlock()
	e.once.Do(func() { e.g = d.Generate(seed) })
	return e.g
}

// generateAll builds (or fetches from cache) every configured dataset, with
// distinct datasets generating concurrently on the worker pool.
func generateAll(cfg Config) (map[string]*graph.Graph, error) {
	gs := parallel.Map(len(cfg.Datasets), cfg.Workers, func(i int) *graph.Graph {
		return cachedGenerate(cfg.Datasets[i], cfg.Seed)
	})
	graphs := make(map[string]*graph.Graph, len(cfg.Datasets))
	for i, d := range cfg.Datasets {
		graphs[d.Notation] = gs[i]
	}
	return graphs, nil
}

func writeCSV(cfg Config, name string, header []string, rows [][]string) (err error) {
	if cfg.CSVDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.CSVDir, 0o755); err != nil {
		return fmt.Errorf("harness: creating %s: %w", cfg.CSVDir, err)
	}
	path := filepath.Join(cfg.CSVDir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("harness: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("harness: closing %s: %w", path, cerr)
		}
	}()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return fmt.Errorf("harness: writing %s: %w", path, err)
	}
	if err := w.WriteAll(rows); err != nil {
		return fmt.Errorf("harness: writing %s: %w", path, err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return fmt.Errorf("harness: flushing %s: %w", path, err)
	}
	return nil
}
