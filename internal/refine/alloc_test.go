package refine

import (
	"testing"

	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
)

// TestHotPathAllocs_RefineScoring is the cross-check named by the
// //graphpart:hotpath annotations on scoreVacate, vacateGain and scoreSide.
// The vacate pair works entirely in caller scratch, so steady-state calls
// allocate nothing. scoreSide returns a fresh candidate list by contract;
// its assertion is that the allocation count is a small constant —
// independent of how many edges are scored — not zero.
func TestHotPathAllocs_RefineScoring(t *testing.T) {
	g := randomGraph(5, 200, 400)
	const p = 8
	a := partition.MustNew(g.NumEdges(), p)
	r := rng.New(11)
	for id := 0; id < g.NumEdges(); id++ {
		a.Assign(graph.EdgeID(id), r.Intn(p))
	}
	st, err := partition.NewState(g, a)
	if err != nil {
		t.Fatal(err)
	}
	run := &runner{g: g, st: st, capC: g.NumEdges(), minGain: 1, workers: 1}

	var v graph.Vertex
	found := false
	for i := 0; i < g.NumVertices(); i++ {
		if st.Replicas(graph.Vertex(i)) >= 2 {
			v, found = graph.Vertex(i), true
			break
		}
	}
	if !found {
		t.Fatal("random assignment produced no spanned vertex")
	}
	parts := make([]int, 0, p)
	others := make(map[int][]graph.Vertex, p)
	edges := make([]graph.EdgeID, 0, g.NumEdges())
	_ = run.scoreVacate(v, parts, others) // warm the scratch map's slices
	pp := st.Partitions(v, parts)
	from, to := pp[0], pp[1]
	if allocs := testing.AllocsPerRun(300, func() {
		_ = run.scoreVacate(v, parts, others)
		_, edges = run.vacateGain(v, from, to, edges[:0])
	}); allocs != 0 {
		t.Fatalf("vacate scoring allocates %.1f times per call pair", allocs)
	}

	bnd := st.AppendBoundary(nil)
	if len(bnd) < 20 {
		t.Fatalf("boundary too small to measure: %d edges", len(bnd))
	}
	measure := func(edges []graph.EdgeID) float64 {
		return testing.AllocsPerRun(300, func() {
			_ = scoreSide(st, edges, to)
		})
	}
	aSmall, aLarge := measure(bnd[:10]), measure(bnd)
	if aSmall != aLarge || aLarge > 2 {
		t.Fatalf("scoreSide allocations must be a small constant: %d edges -> %.1f, %d edges -> %.1f",
			10, aSmall, len(bnd), aLarge)
	}
}
