package refine

import (
	"testing"
	"testing/quick"

	"github.com/graphpart/graphpart/internal/core"
	"github.com/graphpart/graphpart/internal/gen"
	"github.com/graphpart/graphpart/internal/graph"
	"github.com/graphpart/graphpart/internal/partition"
	"github.com/graphpart/graphpart/internal/rng"
	"github.com/graphpart/graphpart/internal/streaming"
)

func randomGraph(seed uint64, n, extra int) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		_ = b.AddEdge(graph.Vertex(i), graph.Vertex(r.Intn(i)))
	}
	for i := 0; i < extra; i++ {
		_ = b.AddEdge(graph.Vertex(r.Intn(n)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

func TestConsolidateValidation(t *testing.T) {
	g := randomGraph(1, 20, 20)
	a := partition.MustNew(g.NumEdges(), 2)
	if _, err := Consolidate(nil, a, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Consolidate(g, a, Options{}); err == nil {
		t.Fatal("incomplete assignment accepted")
	}
}

func TestConsolidateObviousWin(t *testing.T) {
	// Path a-b-c with edges split so b is replicated, plenty of capacity:
	// moving one edge consolidates b.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	a := partition.MustNew(2, 2)
	a.Assign(0, 0)
	a.Assign(1, 1)
	before, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Consolidate(g, a, Options{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	after, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("RF %.3f -> %.3f, expected improvement", before, after)
	}
	if stats.Moves == 0 || stats.ReplicasRemoved == 0 {
		t.Fatalf("no moves recorded: %+v", stats)
	}
	if after != 1.0 {
		t.Fatalf("path should consolidate to RF 1, got %.3f", after)
	}
}

func TestConsolidateRespectsCapacity(t *testing.T) {
	// Same path but strict capacity 1 per partition: no move possible.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	a := partition.MustNew(2, 2)
	a.Assign(0, 0)
	a.Assign(1, 1)
	stats, err := Consolidate(g, a, Options{Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moves != 0 {
		t.Fatalf("capacity-violating move executed: %+v", stats)
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{Capacity: 1}); err != nil {
		t.Fatalf("assignment corrupted: %v", err)
	}
}

func TestConsolidateImprovesRandomPartitioning(t *testing.T) {
	g := gen.PlantedCommunities(gen.CommunityConfig{
		Vertices: 400, Communities: 8, TargetEdges: 4000, IntraFraction: 0.8,
	}, rng.New(2))
	p := 4
	a, err := streaming.NewRandom(3).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	before, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	// Random hashing is only balanced in expectation; allow slack.
	capC := int(1.1 * float64(partition.Capacity(g.NumEdges(), p)))
	stats, err := Consolidate(g, a, Options{Capacity: capC, MaxPasses: 6})
	if err != nil {
		t.Fatal(err)
	}
	after, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("refinement did not improve random partitioning: %.3f -> %.3f", before, after)
	}
	if err := partition.Validate(g, a, partition.ValidateOptions{Capacity: capC}); err != nil {
		t.Fatalf("refined assignment invalid: %v", err)
	}
	t.Logf("random RF %.3f -> %.3f (%d moves, %d replicas removed)",
		before, after, stats.Moves, stats.ReplicasRemoved)
}

func TestConsolidateOnTLPIsNearNoop(t *testing.T) {
	// TLP output is already locally consolidated; refinement should find
	// little and never hurt.
	g := randomGraph(4, 300, 900)
	a, err := core.MustNew(core.Options{Seed: 5}).Partition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	before, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Consolidate(g, a, Options{}); err != nil {
		t.Fatal(err)
	}
	after, err := partition.ReplicationFactor(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if after > before+1e-12 {
		t.Fatalf("refinement worsened RF: %.4f -> %.4f", before, after)
	}
}

// Property: Consolidate never increases RF, never breaks completeness, and
// respects the capacity it is given.
func TestConsolidateSafetyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(80)
		g := randomGraph(seed, n, r.Intn(3*n))
		p := 2 + r.Intn(5)
		a := partition.MustNew(g.NumEdges(), p)
		for id := 0; id < g.NumEdges(); id++ {
			a.Assign(graph.EdgeID(id), r.Intn(p))
		}
		before, err := partition.ReplicationFactor(g, a)
		if err != nil {
			return false
		}
		capC := a.MaxLoad() + 3 // whatever the random loads are, plus room
		if _, err := Consolidate(g, a, Options{Capacity: capC}); err != nil {
			return false
		}
		after, err := partition.ReplicationFactor(g, a)
		if err != nil {
			return false
		}
		if after > before+1e-12 {
			return false
		}
		return partition.Validate(g, a, partition.ValidateOptions{Capacity: capC}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConsolidate(b *testing.B) {
	g := gen.ChungLu(gen.ChungLuConfig{Vertices: 5000, TargetEdges: 25000, Exponent: 2.1}, rng.New(6))
	base, err := streaming.NewRandom(7).Partition(g, 8)
	if err != nil {
		b.Fatal(err)
	}
	capC := int(1.1 * float64(partition.Capacity(g.NumEdges(), 8)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := base.Clone()
		if _, err := Consolidate(g, a, Options{Capacity: capC}); err != nil {
			b.Fatal(err)
		}
	}
}
